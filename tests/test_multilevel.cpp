// Multilevel partitioner: validity, quality against exact optima and
// constructive cuts, and scaling to large instances.
#include <gtest/gtest.h>

#include "core/partition.hpp"
#include "core/rng.hpp"
#include "cut/brute_force.hpp"
#include "cut/constructive.hpp"
#include "cut/multilevel.hpp"
#include "topology/butterfly.hpp"
#include "topology/ccc.hpp"
#include "topology/hypercube.hpp"
#include "topology/wrapped_butterfly.hpp"

namespace bfly::cut {
namespace {

void expect_valid(const Graph& g, const CutResult& r) {
  ASSERT_EQ(r.sides.size(), g.num_nodes());
  EXPECT_TRUE(is_bisection(r.sides)) << r.method;
  EXPECT_EQ(cut_capacity(g, r.sides), r.capacity);
}

TEST(Multilevel, MatchesExactOnSmallInstances) {
  const topo::Butterfly bf(4);
  const auto exact = min_bisection_exhaustive(bf.graph());
  const auto ml = min_bisection_multilevel(bf.graph());
  expect_valid(bf.graph(), ml);
  EXPECT_EQ(ml.capacity, exact.capacity);
}

TEST(Multilevel, RecoversFolkloreOptimaOnFamilies) {
  {
    const topo::Butterfly bf(64);
    const auto ml = min_bisection_multilevel(bf.graph());
    expect_valid(bf.graph(), ml);
    EXPECT_LE(ml.capacity, 64u);
  }
  {
    const topo::WrappedButterfly wb(64);
    const auto ml = min_bisection_multilevel(wb.graph());
    expect_valid(wb.graph(), ml);
    EXPECT_EQ(ml.capacity, 64u);  // BW(W64) = 64 (Lemma 3.2)
  }
  {
    const topo::CubeConnectedCycles cc(64);
    const auto ml = min_bisection_multilevel(cc.graph());
    expect_valid(cc.graph(), ml);
    EXPECT_EQ(ml.capacity, 32u);  // BW(CCC64) = 32 (Lemma 3.3)
  }
}

TEST(Multilevel, HypercubeDimensionCut) {
  const topo::Hypercube q5(5);
  const auto ml = min_bisection_multilevel(q5.graph());
  expect_valid(q5.graph(), ml);
  EXPECT_EQ(ml.capacity, 16u);  // 2^(d-1)
}

TEST(Multilevel, LargeButterflyAtMostFolklore) {
  const topo::Butterfly bf(512);  // 5120 nodes
  const auto ml = min_bisection_multilevel(bf.graph());
  expect_valid(bf.graph(), ml);
  EXPECT_LE(ml.capacity, 512u);
}

TEST(Multilevel, DeterministicUnderSeed) {
  const topo::Butterfly bf(32);
  MultilevelOptions a, b;
  a.seed = b.seed = 9;
  const auto ra = min_bisection_multilevel(bf.graph(), a);
  const auto rb = min_bisection_multilevel(bf.graph(), b);
  EXPECT_EQ(ra.capacity, rb.capacity);
  EXPECT_EQ(ra.sides, rb.sides);
}

TEST(Multilevel, WorksOnRandomGraphs) {
  Rng rng(5);
  for (int trial = 0; trial < 4; ++trial) {
    GraphBuilder gb(40);
    for (NodeId u = 0; u < 40; ++u) {
      for (NodeId v = u + 1; v < 40; ++v) {
        if (rng.bernoulli(0.15)) gb.add_edge(u, v);
      }
    }
    const Graph g = std::move(gb).build();
    const auto ml = min_bisection_multilevel(g);
    expect_valid(g, ml);
  }
}

TEST(Multilevel, OddNodeCount) {
  GraphBuilder gb(9);
  for (NodeId v = 0; v + 1 < 9; ++v) gb.add_edge(v, v + 1);
  const Graph g = std::move(gb).build();
  const auto ml = min_bisection_multilevel(g);
  expect_valid(g, ml);
  EXPECT_EQ(ml.capacity, 1u);  // a path's bisection width is 1
}

}  // namespace
}  // namespace bfly::cut
