// Heuristic bisection solvers: validity on all families, agreement with
// the exact optimum on small instances, refinement behavior.
#include <gtest/gtest.h>

#include "core/partition.hpp"
#include "core/rng.hpp"
#include "cut/brute_force.hpp"
#include "cut/constructive.hpp"
#include "cut/fiduccia_mattheyses.hpp"
#include "cut/kernighan_lin.hpp"
#include "cut/simulated_annealing.hpp"
#include "cut/spectral_bisection.hpp"
#include "topology/butterfly.hpp"
#include "topology/ccc.hpp"
#include "topology/hypercube.hpp"
#include "topology/wrapped_butterfly.hpp"

namespace bfly::cut {
namespace {

void expect_valid(const Graph& g, const CutResult& r) {
  ASSERT_EQ(r.sides.size(), g.num_nodes());
  EXPECT_TRUE(is_bisection(r.sides)) << r.method;
  EXPECT_EQ(cut_capacity(g, r.sides), r.capacity) << r.method;
  EXPECT_EQ(r.exactness, Exactness::kHeuristic);
}

TEST(Heuristics, AllValidOnButterfly) {
  const topo::Butterfly bf(8);
  expect_valid(bf.graph(), min_bisection_kernighan_lin(bf.graph()));
  expect_valid(bf.graph(), min_bisection_fiduccia_mattheyses(bf.graph()));
  expect_valid(bf.graph(), min_bisection_simulated_annealing(bf.graph()));
  expect_valid(bf.graph(), min_bisection_spectral(bf.graph()));
}

TEST(Heuristics, MatchExactOnSmallButterfly) {
  const topo::Butterfly bf(4);
  const auto exact = min_bisection_exhaustive(bf.graph()).capacity;
  EXPECT_EQ(min_bisection_kernighan_lin(bf.graph()).capacity, exact);
  EXPECT_EQ(min_bisection_fiduccia_mattheyses(bf.graph()).capacity, exact);
  EXPECT_EQ(min_bisection_simulated_annealing(bf.graph()).capacity, exact);
}

TEST(Heuristics, FindOptimumOnW8) {
  // BW(W8) = 8; the heuristics should find a cut of that capacity.
  const topo::WrappedButterfly wb(8);
  EXPECT_EQ(min_bisection_fiduccia_mattheyses(wb.graph()).capacity, 8u);
  EXPECT_EQ(min_bisection_kernighan_lin(wb.graph()).capacity, 8u);
}

TEST(Heuristics, FindOptimumOnCCC8) {
  const topo::CubeConnectedCycles cc(8);
  EXPECT_EQ(min_bisection_fiduccia_mattheyses(cc.graph()).capacity, 4u);
}

TEST(Heuristics, HypercubeBisection) {
  // BW(Qd) = 2^(d-1): dimension cut, known optimal.
  const topo::Hypercube q4(4);
  const auto fm = min_bisection_fiduccia_mattheyses(q4.graph());
  EXPECT_EQ(fm.capacity, 8u);
}

TEST(Heuristics, FMDeterministicAcrossThreadCounts) {
  // Parallel restarts must not change the answer.
  const topo::Butterfly bf(16);
  FiducciaMattheysesOptions serial, threaded;
  serial.seed = threaded.seed = 77;
  serial.num_threads = 0;
  threaded.num_threads = 4;
  const auto a = min_bisection_fiduccia_mattheyses(bf.graph(), serial);
  const auto b = min_bisection_fiduccia_mattheyses(bf.graph(), threaded);
  EXPECT_EQ(a.capacity, b.capacity);
  EXPECT_EQ(a.sides, b.sides);
}

TEST(Heuristics, DeterministicUnderSeed) {
  const topo::Butterfly bf(8);
  FiducciaMattheysesOptions o1, o2;
  o1.seed = o2.seed = 123;
  const auto a = min_bisection_fiduccia_mattheyses(bf.graph(), o1);
  const auto b = min_bisection_fiduccia_mattheyses(bf.graph(), o2);
  EXPECT_EQ(a.capacity, b.capacity);
  EXPECT_EQ(a.sides, b.sides);
}

TEST(Refinement, NeverWorsensAConstructiveCut) {
  const topo::WrappedButterfly wb(16);
  const auto base = column_split_bisection(wb);
  const auto refined = refine_fiduccia_mattheyses(wb.graph(), base.sides);
  EXPECT_LE(refined.capacity, base.capacity);
  EXPECT_TRUE(is_bisection(refined.sides));
}

TEST(Refinement, RequiresBisectionInput) {
  const topo::Butterfly bf(4);
  std::vector<std::uint8_t> all_zero(bf.num_nodes(), 0);
  EXPECT_THROW(refine_fiduccia_mattheyses(bf.graph(), all_zero),
               PreconditionError);
}

TEST(Spectral, UnrefinedIsBalanced) {
  const topo::Butterfly bf(16);
  SpectralBisectionOptions opts;
  opts.refine = false;
  const auto r = min_bisection_spectral(bf.graph(), opts);
  EXPECT_TRUE(is_bisection(r.sides));
  EXPECT_EQ(cut_capacity(bf.graph(), r.sides), r.capacity);
}

TEST(Heuristics, LargerInstanceSanity) {
  // On B32 (192 nodes) heuristics should at least match folklore n.
  const topo::Butterfly bf(32);
  const auto fm = min_bisection_fiduccia_mattheyses(bf.graph());
  EXPECT_LE(fm.capacity, 32u);
}

}  // namespace
}  // namespace bfly::cut
