// Remaining fine-grained structural claims from the paper's Section 2
// setup, checked across sizes.
#include <gtest/gtest.h>

#include <set>

#include "algo/isomorphism.hpp"
#include "algo/subgraph.hpp"
#include "embed/factory.hpp"
#include "topology/benes.hpp"
#include "topology/butterfly.hpp"

namespace bfly {
namespace {

TEST(Lemma24, ComponentLevelIndexing) {
  // "the kth level of each component is a subset of the nodes on the
  // (i+k)th level of Bn" — component_nodes returns levels lo..hi, and
  // the nodes returned at offset k must all be on level lo+k.
  const topo::Butterfly bf(16);
  for (std::uint32_t lo = 0; lo <= 3; ++lo) {
    for (std::uint32_t hi = lo; hi <= 4; ++hi) {
      const std::uint32_t comps = bf.num_components(lo, hi);
      for (std::uint32_t c = 0; c < comps; ++c) {
        const auto nodes = bf.component_nodes(c, lo, hi);
        const std::size_t per_level = nodes.size() / (hi - lo + 1);
        for (std::size_t idx = 0; idx < nodes.size(); ++idx) {
          EXPECT_EQ(bf.level(nodes[idx]), lo + idx / per_level);
        }
      }
    }
  }
}

TEST(Lemma24, ComponentsAreIsomorphicToEachOther) {
  // All components of Bn[lo, hi] are isomorphic (to B_{2^(hi-lo)}).
  const topo::Butterfly bf(16);
  const auto first = algo::induced_subgraph(bf.graph(),
                                            bf.component_nodes(0, 1, 3));
  for (std::uint32_t c = 1; c < bf.num_components(1, 3); ++c) {
    const auto other = algo::induced_subgraph(
        bf.graph(), bf.component_nodes(c, 1, 3));
    EXPECT_TRUE(algo::are_isomorphic(first.graph, other.graph));
  }
}

TEST(Lemma25, PortPartitionHalvesLevelZero) {
  // The fold's I/O partition of L0 (even/odd columns) is an exact
  // bisection of level 0 with |I| = |O| = n/2.
  const topo::Butterfly bf(16);
  const auto fold = embed::benes_into_bn(bf);
  const topo::Benes benes(8);
  std::set<NodeId> inputs, outputs;
  for (std::uint32_t c = 0; c < 8; ++c) {
    inputs.insert(fold.emb.node_map[benes.input(c)]);
    outputs.insert(fold.emb.node_map[benes.output(c)]);
  }
  EXPECT_EQ(inputs.size(), 8u);
  EXPECT_EQ(outputs.size(), 8u);
  for (const NodeId v : inputs) {
    EXPECT_EQ(bf.level(v), 0u);
    EXPECT_EQ(bf.column(v) % 2, 0u);
    EXPECT_EQ(outputs.count(v), 0u);
  }
  for (const NodeId v : outputs) {
    EXPECT_EQ(bf.level(v), 0u);
    EXPECT_EQ(bf.column(v) % 2, 1u);
  }
}

TEST(Benes, IsTwoBackToBackButterflies) {
  // Levels 0..d of the Beneš induce a graph isomorphic to Bn, as do
  // levels d..2d.
  const topo::Benes benes(8);
  const topo::Butterfly b8(8);
  std::vector<NodeId> first_half, second_half;
  for (std::uint32_t l = 0; l <= 3; ++l) {
    for (std::uint32_t w = 0; w < 8; ++w) {
      first_half.push_back(benes.node(w, l));
      second_half.push_back(benes.node(w, l + 3));
    }
  }
  const auto g1 = algo::induced_subgraph(benes.graph(), first_half);
  const auto g2 = algo::induced_subgraph(benes.graph(), second_half);
  EXPECT_TRUE(algo::are_isomorphic(g1.graph, b8.graph()));
  EXPECT_TRUE(algo::are_isomorphic(g2.graph, b8.graph()));
}

TEST(Butterfly, SubrangeInducedGraphMatchesComponentAlgebra) {
  // The induced subgraph on levels [lo, hi] has exactly the edges the
  // component algebra predicts: 2 * span * (hi - lo) per component.
  const topo::Butterfly bf(16);
  for (std::uint32_t lo = 0; lo <= 3; ++lo) {
    for (std::uint32_t hi = lo + 1; hi <= 4; ++hi) {
      const auto nodes = bf.component_nodes(0, lo, hi);
      const auto sub = algo::induced_subgraph(bf.graph(), nodes);
      const std::size_t span = 1u << (hi - lo);
      EXPECT_EQ(sub.graph.num_edges(), 2 * span * (hi - lo));
    }
  }
}

}  // namespace
}  // namespace bfly
