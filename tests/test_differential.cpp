// Differential fuzzing: every solver against the exhaustive optimum on
// random multigraphs, plus cross-checks between independent
// implementations of the same quantity.
#include <gtest/gtest.h>

#include "core/partition.hpp"
#include "core/rng.hpp"
#include "cut/branch_bound.hpp"
#include "cut/brute_force.hpp"
#include "cut/fiduccia_mattheyses.hpp"
#include "cut/kernighan_lin.hpp"
#include "cut/multilevel.hpp"
#include "cut/simulated_annealing.hpp"
#include "expansion/expansion.hpp"
#include "expansion/local_search.hpp"

namespace bfly {
namespace {

Graph random_multigraph(NodeId n, double p, std::uint64_t seed) {
  Rng rng(seed);
  GraphBuilder gb(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (rng.bernoulli(p)) gb.add_edge(u, v);
      if (rng.bernoulli(p / 4)) gb.add_edge(u, v);  // occasional parallel
    }
  }
  // Keep the graph connected-ish: chain fallback.
  for (NodeId v = 0; v + 1 < n; ++v) {
    if (!gb.num_edges()) gb.add_edge(v, v + 1);
  }
  return std::move(gb).build();
}

class SolverFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SolverFuzz, HeuristicsNeverBeatExhaustiveAndBnBMatchesIt) {
  const Graph g = random_multigraph(11, 0.35, GetParam());
  const auto exact = cut::min_bisection_exhaustive(g);
  const auto bb = cut::min_bisection_branch_bound(g);
  ASSERT_EQ(bb.capacity, exact.capacity);

  for (const auto& r : {cut::min_bisection_kernighan_lin(g),
                        cut::min_bisection_fiduccia_mattheyses(g),
                        cut::min_bisection_simulated_annealing(g),
                        cut::min_bisection_multilevel(g)}) {
    ASSERT_GE(r.capacity, exact.capacity) << r.method;
    ASSERT_TRUE(cut::is_bisection(r.sides)) << r.method;
    ASSERT_EQ(cut_capacity(g, r.sides), r.capacity) << r.method;
  }
}

TEST_P(SolverFuzz, ExpansionSweepMatchesSizeEnumeration) {
  const Graph g = random_multigraph(10, 0.3, GetParam() * 31 + 7);
  const auto table = expansion::exact_expansion(g);
  for (const std::size_t k : {1u, 3u, 5u, 8u}) {
    const auto single = expansion::exact_expansion_of_size(g, k);
    ASSERT_EQ(single.ee, table[k].ee) << "k=" << k;
    ASSERT_EQ(single.ne, table[k].ne) << "k=" << k;
  }
}

TEST_P(SolverFuzz, LocalSearchNeverBeatsExact) {
  const Graph g = random_multigraph(10, 0.35, GetParam() * 97 + 13);
  const auto table = expansion::exact_expansion(g);
  for (const std::size_t k : {2u, 4u, 6u}) {
    const auto ee = expansion::min_ee_set_local_search(g, k);
    ASSERT_GE(ee.objective, table[k].ee);
    const auto ne = expansion::min_ne_set_local_search(g, k);
    ASSERT_GE(ne.objective, table[k].ne);
  }
}

TEST_P(SolverFuzz, SubsetBisectionAgreesAcrossEngines) {
  const Graph g = random_multigraph(10, 0.4, GetParam() * 5 + 3);
  Rng rng(GetParam());
  // Random subset of 4 nodes.
  std::vector<NodeId> subset;
  std::vector<std::uint8_t> used(g.num_nodes(), 0);
  while (subset.size() < 4) {
    const NodeId v = static_cast<NodeId>(rng.below(g.num_nodes()));
    if (!used[v]) {
      used[v] = 1;
      subset.push_back(v);
    }
  }
  const auto ex = cut::min_cut_bisecting_exhaustive(g, subset);
  cut::BranchBoundOptions opts;
  opts.bisect_subset = subset;
  const auto bb = cut::min_bisection_branch_bound(g, opts);
  ASSERT_EQ(ex.capacity, bb.capacity);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverFuzz,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace bfly
