// Differential fuzzing: every solver against the exhaustive optimum on
// random multigraphs, plus cross-checks between independent
// implementations of the same quantity.
#include <gtest/gtest.h>

#include "core/partition.hpp"
#include "core/rng.hpp"
#include "cut/branch_bound.hpp"
#include "cut/brute_force.hpp"
#include "cut/fiduccia_mattheyses.hpp"
#include "cut/kernighan_lin.hpp"
#include "cut/multilevel.hpp"
#include "cut/simulated_annealing.hpp"
#include "expansion/expansion.hpp"
#include "expansion/local_search.hpp"

namespace bfly {
namespace {

Graph random_multigraph(NodeId n, double p, std::uint64_t seed) {
  Rng rng(seed);
  GraphBuilder gb(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (rng.bernoulli(p)) gb.add_edge(u, v);
      if (rng.bernoulli(p / 4)) gb.add_edge(u, v);  // occasional parallel
    }
  }
  // Keep the graph connected-ish: chain fallback.
  for (NodeId v = 0; v + 1 < n; ++v) {
    if (!gb.num_edges()) gb.add_edge(v, v + 1);
  }
  return std::move(gb).build();
}

class SolverFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SolverFuzz, HeuristicsNeverBeatExhaustiveAndBnBMatchesIt) {
  const Graph g = random_multigraph(11, 0.35, GetParam());
  const auto exact = cut::min_bisection_exhaustive(g);
  const auto bb = cut::min_bisection_branch_bound(g);
  ASSERT_EQ(bb.capacity, exact.capacity);

  for (const auto& r : {cut::min_bisection_kernighan_lin(g),
                        cut::min_bisection_fiduccia_mattheyses(g),
                        cut::min_bisection_simulated_annealing(g),
                        cut::min_bisection_multilevel(g)}) {
    ASSERT_GE(r.capacity, exact.capacity) << r.method;
    ASSERT_TRUE(cut::is_bisection(r.sides)) << r.method;
    ASSERT_EQ(cut_capacity(g, r.sides), r.capacity) << r.method;
  }
}

TEST_P(SolverFuzz, ExpansionSweepMatchesSizeEnumeration) {
  const Graph g = random_multigraph(10, 0.3, GetParam() * 31 + 7);
  const auto table = expansion::exact_expansion(g);
  for (const std::size_t k : {1u, 3u, 5u, 8u}) {
    const auto single = expansion::exact_expansion_of_size(g, k);
    ASSERT_EQ(single.ee, table[k].ee) << "k=" << k;
    ASSERT_EQ(single.ne, table[k].ne) << "k=" << k;
  }
}

TEST_P(SolverFuzz, LocalSearchNeverBeatsExact) {
  const Graph g = random_multigraph(10, 0.35, GetParam() * 97 + 13);
  const auto table = expansion::exact_expansion(g);
  for (const std::size_t k : {2u, 4u, 6u}) {
    const auto ee = expansion::min_ee_set_local_search(g, k);
    ASSERT_GE(ee.objective, table[k].ee);
    const auto ne = expansion::min_ne_set_local_search(g, k);
    ASSERT_GE(ne.objective, table[k].ne);
  }
}

TEST_P(SolverFuzz, BranchBoundInsensitiveToInitialBoundTightness) {
  // Pruning-correctness differential for the upper-bound machinery: the
  // search must return the same optimum whether it starts from no bound,
  // a loose bound, or a bound already equal to the optimum (the
  // initial_bound is inclusive, so the optimal solution stays findable).
  const Graph g = random_multigraph(11, 0.35, GetParam() * 17 + 5);
  const auto exact = cut::min_bisection_exhaustive(g);

  cut::BranchBoundOptions loose;
  loose.initial_bound = g.num_edges();  // trivially valid upper bound
  const auto from_loose = cut::min_bisection_branch_bound(g, loose);
  ASSERT_EQ(from_loose.capacity, exact.capacity);
  ASSERT_EQ(from_loose.exactness, cut::Exactness::kExact);
  ASSERT_TRUE(cut::is_bisection(from_loose.sides));

  cut::BranchBoundOptions tight;
  tight.initial_bound = exact.capacity;
  const auto from_tight = cut::min_bisection_branch_bound(g, tight);
  ASSERT_EQ(from_tight.capacity, exact.capacity);
  ASSERT_EQ(from_tight.exactness, cut::Exactness::kExact);
  ASSERT_TRUE(cut::is_bisection(from_tight.sides));
  ASSERT_EQ(cut_capacity(g, from_tight.sides), from_tight.capacity);
}

TEST_P(SolverFuzz, BranchBoundLiveBoundSemantics) {
  // The portfolio's live incumbent bound is exclusive: with the cell one
  // above the optimum the search still recovers the optimal cut; with it
  // at the optimum the search proves no strictly better cut exists.
  const Graph g = random_multigraph(10, 0.4, GetParam() * 23 + 11);
  const auto exact = cut::min_bisection_exhaustive(g);

  std::atomic<std::size_t> above{exact.capacity + 1};
  cut::BranchBoundOptions opts;
  opts.live_bound = &above;
  const auto found = cut::min_bisection_branch_bound(g, opts);
  ASSERT_EQ(found.capacity, exact.capacity);
  ASSERT_EQ(found.exactness, cut::Exactness::kExact);

  std::atomic<std::size_t> at{exact.capacity};
  cut::BranchBoundOptions proof;
  proof.live_bound = &at;
  const auto proved = cut::min_bisection_branch_bound(g, proof);
  ASSERT_EQ(proved.capacity, static_cast<std::size_t>(-1));
  ASSERT_EQ(proved.exactness, cut::Exactness::kExact);
}

TEST_P(SolverFuzz, SubsetBisectionAgreesAcrossEngines) {
  const Graph g = random_multigraph(10, 0.4, GetParam() * 5 + 3);
  Rng rng(GetParam());
  // Random subset of 4 nodes.
  std::vector<NodeId> subset;
  std::vector<std::uint8_t> used(g.num_nodes(), 0);
  while (subset.size() < 4) {
    const NodeId v = static_cast<NodeId>(rng.below(g.num_nodes()));
    if (!used[v]) {
      used[v] = 1;
      subset.push_back(v);
    }
  }
  const auto ex = cut::min_cut_bisecting_exhaustive(g, subset);
  cut::BranchBoundOptions opts;
  opts.bisect_subset = subset;
  const auto bb = cut::min_bisection_branch_bound(g, opts);
  ASSERT_EQ(ex.capacity, bb.capacity);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverFuzz,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace bfly
