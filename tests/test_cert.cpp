// Flow-certified expansion (src/cert/): differential suite against the
// exhaustive sweeps on paper topologies, corrupted-witness rejection,
// class-wide connectivity bounds, and superconcentration certificates
// on concatenated butterfly pairs.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cert/expansion_certificate.hpp"
#include "cert/superconcentration.hpp"
#include "cut/vertex_bisection.hpp"
#include "expansion/expansion.hpp"
#include "topology/butterfly.hpp"
#include "topology/ccc.hpp"
#include "topology/complete.hpp"
#include "topology/debruijn.hpp"
#include "topology/hypercube.hpp"
#include "topology/shuffle_exchange.hpp"
#include "topology/wrapped_butterfly.hpp"

namespace bfly::cert {
namespace {

// Every witness the exhaustive sweep emits must certify at its recorded
// value, and the class-wide flow bounds must lie below every tabulated
// entry.
void expect_table_certified(const Graph& g) {
  const auto table = expansion::exact_expansion(g);
  const ExpansionClassBound bound = expansion_class_bounds(g);
  const NodeId n = g.num_nodes();
  // k = n (the full node set) has empty boundaries and no proper-subset
  // witness to certify; stop at n - 1.
  for (std::size_t k = 1; k + 1 < table.size(); ++k) {
    SCOPED_TRACE("k=" + std::to_string(k));
    const auto& entry = table[k];
    const auto ee_cert = certify_edge_boundary(
        g, entry.ee_witness, static_cast<std::int64_t>(entry.ee));
    EXPECT_TRUE(ee_cert.certified);
    EXPECT_EQ(ee_cert.flow, static_cast<std::int64_t>(entry.ee));
    const auto ne_cert = certify_node_boundary(
        g, entry.ne_witness, static_cast<std::int64_t>(entry.ne));
    EXPECT_TRUE(ne_cert.certified);
    EXPECT_EQ(ne_cert.recounted, static_cast<std::int64_t>(entry.ne));
    EXPECT_LE(ne_cert.flow, ne_cert.recounted);
    EXPECT_LE(edge_expansion_class_bound(bound),
              static_cast<std::int64_t>(entry.ee));
    EXPECT_LE(node_expansion_class_bound(bound, n, k),
              static_cast<std::int64_t>(entry.ne));
  }
}

// Same differential for ONE set size on graphs too large for the full
// 2^N sweep.
void expect_size_k_certified(const Graph& g, std::size_t k) {
  SCOPED_TRACE("k=" + std::to_string(k));
  const auto entry = expansion::exact_expansion_of_size(g, k);
  const auto ee_cert = certify_edge_boundary(
      g, entry.ee_witness, static_cast<std::int64_t>(entry.ee));
  EXPECT_TRUE(ee_cert.certified);
  const auto ne_cert = certify_node_boundary(
      g, entry.ne_witness, static_cast<std::int64_t>(entry.ne));
  EXPECT_TRUE(ne_cert.certified);
}

TEST(CertDifferential, Butterfly4) {
  expect_table_certified(topo::Butterfly(4).graph());
}

TEST(CertDifferential, WrappedButterfly8) {
  expect_table_certified(topo::WrappedButterfly(8).graph());
}

TEST(CertDifferential, CubeConnectedCycles8) {
  expect_table_certified(topo::CubeConnectedCycles(8).graph());
}

TEST(CertDifferential, Hypercube4) {
  expect_table_certified(topo::Hypercube(4).graph());
}

TEST(CertDifferential, ShuffleExchange3) {
  expect_table_certified(topo::ShuffleExchange(3).graph());
}

TEST(CertDifferential, DeBruijn3) {
  expect_table_certified(topo::DeBruijn(3).graph());
}

TEST(CertDifferential, Complete6) {
  expect_table_certified(topo::complete_graph(6));
}

TEST(CertDifferential, LargerButterfliesPerSize) {
  // B8 and B16 are beyond the 2^N sweep; the per-size enumerator still
  // gives exact small-k entries to certify against.
  for (const std::uint32_t cols : {8u, 16u}) {
    SCOPED_TRACE("B" + std::to_string(cols));
    const topo::Butterfly bf(cols);
    for (const std::size_t k : {1u, 2u, 3u}) {
      expect_size_k_certified(bf.graph(), k);
    }
  }
}

TEST(CertDifferential, WrappedButterfly16PerSize) {
  const topo::WrappedButterfly wbf(16);
  for (const std::size_t k : {1u, 2u, 3u}) {
    expect_size_k_certified(wbf.graph(), k);
  }
}

TEST(CertRejection, WrongClaimedEdgeBoundary) {
  const topo::Butterfly bf(4);
  const auto table = expansion::exact_expansion(bf.graph());
  const auto& entry = table[3];
  const auto claimed = static_cast<std::int64_t>(entry.ee);
  EXPECT_FALSE(
      certify_edge_boundary(bf.graph(), entry.ee_witness, claimed + 1)
          .certified);
  EXPECT_FALSE(
      certify_edge_boundary(bf.graph(), entry.ee_witness, claimed - 1)
          .certified);
}

TEST(CertRejection, WrongClaimedNodeBoundary) {
  const topo::Butterfly bf(4);
  const auto table = expansion::exact_expansion(bf.graph());
  const auto& entry = table[3];
  const auto claimed = static_cast<std::int64_t>(entry.ne);
  EXPECT_FALSE(
      certify_node_boundary(bf.graph(), entry.ne_witness, claimed + 1)
          .certified);
}

TEST(CertRejection, OffByOneWitnessSet) {
  // Swap one witness member for an outside node that changes the
  // boundary; the certificate must notice the claimed value no longer
  // matches the set actually presented.
  const topo::Butterfly bf(4);
  const Graph& g = bf.graph();
  const auto table = expansion::exact_expansion(g);
  const auto& entry = table[2];
  std::vector<char> in_set(g.num_nodes(), 0);
  for (const NodeId v : entry.ee_witness) in_set[v] = 1;
  bool corrupted_one = false;
  for (NodeId w = 0; w < g.num_nodes() && !corrupted_one; ++w) {
    if (in_set[w]) continue;
    std::vector<NodeId> corrupted = entry.ee_witness;
    corrupted[0] = w;
    if (expansion::edge_boundary(g, corrupted) == entry.ee) continue;
    corrupted_one = true;
    const auto cert = certify_edge_boundary(
        g, corrupted, static_cast<std::int64_t>(entry.ee));
    EXPECT_FALSE(cert.certified);
    EXPECT_EQ(cert.flow, static_cast<std::int64_t>(
                             expansion::edge_boundary(g, corrupted)));
  }
  // Some replacement must change the boundary on a 12-node butterfly.
  EXPECT_TRUE(corrupted_one);
}

TEST(CertNodeBoundary, TightOnHypercubeSingleton) {
  // N({v}) in Q4 is the 4 neighbors, and no smaller set separates v
  // from the rest (kappa = 4): the certificate must report tightness.
  const topo::Hypercube q(4);
  const std::vector<NodeId> s = {0};
  const auto cert = certify_node_boundary(q.graph(), s, 4);
  EXPECT_TRUE(cert.certified);
  EXPECT_TRUE(cert.tight);
  EXPECT_EQ(cert.flow, 4);
}

TEST(CertNodeBoundary, DegenerateNoBSide) {
  // In K6 every proper S has S ∪ N(S) = V: the degenerate branch must
  // still certify |N(S)| = n - |S|.
  const Graph k6 = topo::complete_graph(6);
  const std::vector<NodeId> s = {0, 1};
  const auto cert = certify_node_boundary(k6, s, 4);
  EXPECT_TRUE(cert.certified);
  EXPECT_TRUE(cert.tight);
}

TEST(CertClassBounds, KnownConnectivities) {
  const ExpansionClassBound q4 = expansion_class_bounds(
      topo::Hypercube(4).graph());
  EXPECT_EQ(q4.kappa, 4);
  EXPECT_EQ(q4.lambda, 4);
  const ExpansionClassBound b8 = expansion_class_bounds(
      topo::Butterfly(8).graph());
  // Butterfly connectivity equals the input degree 2.
  EXPECT_EQ(b8.kappa, 2);
  EXPECT_EQ(b8.lambda, 2);
}

TEST(Superconc, PairStructure) {
  const ConcatenatedButterflyPair pair = concatenated_butterfly_pair(8);
  EXPECT_EQ(pair.dims, 3u);
  EXPECT_EQ(pair.graph.num_nodes(), 8u * 7u);
  EXPECT_EQ(pair.graph.num_edges(), 2u * 8u * 6u);
  pair.graph.validate();
  ASSERT_EQ(pair.inputs.size(), 8u);
  ASSERT_EQ(pair.outputs.size(), 8u);
  for (const NodeId v : pair.inputs) EXPECT_EQ(pair.graph.degree(v), 2u);
  for (const NodeId v : pair.outputs) EXPECT_EQ(pair.graph.degree(v), 2u);
}

TEST(Superconc, ButterflyPairN4Exhaustive) {
  const ConcatenatedButterflyPair pair = concatenated_butterfly_pair(4);
  const auto cert = certify_superconcentration(pair.graph, pair.inputs,
                                               pair.outputs);
  EXPECT_TRUE(cert.exhaustive);
  EXPECT_EQ(cert.queries, 69u);  // C(8, 4) - 1
  EXPECT_EQ(cert.failures, 0u);
  EXPECT_TRUE(cert.certified);
}

TEST(Superconc, ButterflyPairN8Exhaustive) {
  const ConcatenatedButterflyPair pair = concatenated_butterfly_pair(8);
  const auto cert = certify_superconcentration(pair.graph, pair.inputs,
                                               pair.outputs);
  EXPECT_TRUE(cert.exhaustive);
  EXPECT_EQ(cert.queries, 12869u);  // C(16, 8) - 1
  EXPECT_TRUE(cert.certified);
}

TEST(Superconc, StarIsRejected) {
  // Two inputs and two outputs all hanging off one center: two
  // vertex-disjoint paths cannot both pass the center, so the k = 2
  // queries must fail.
  GraphBuilder gb(5);
  for (NodeId leaf = 1; leaf < 5; ++leaf) gb.add_edge(0, leaf);
  const Graph star = std::move(gb).build();
  const std::vector<NodeId> inputs = {1, 2};
  const std::vector<NodeId> outputs = {3, 4};
  const auto cert = certify_superconcentration(star, inputs, outputs);
  EXPECT_TRUE(cert.exhaustive);
  EXPECT_EQ(cert.queries, 5u);  // C(4, 2) - 1
  EXPECT_GT(cert.failures, 0u);
  EXPECT_FALSE(cert.certified);
}

TEST(Superconc, SampledModeOnN16Pair) {
  const ConcatenatedButterflyPair pair = concatenated_butterfly_pair(16);
  SuperconcOptions opts;
  opts.samples = 32;
  opts.seed = 11;
  const auto cert = certify_superconcentration(pair.graph, pair.inputs,
                                               pair.outputs, opts);
  EXPECT_FALSE(cert.exhaustive);
  EXPECT_EQ(cert.queries, 32u);
  EXPECT_TRUE(cert.certified);
  // Seeded determinism: the same options replay the same queries.
  const auto replay = certify_superconcentration(pair.graph, pair.inputs,
                                                 pair.outputs, opts);
  EXPECT_EQ(replay.failures, cert.failures);
}

TEST(VertexBisection, WidthRecountsOnKnownPartition) {
  // Q3 split into antipodal subcubes: every far-side node touches the
  // near side, width = 4 either way.
  const topo::Hypercube q(3);
  std::vector<std::uint8_t> sides(8, 0);
  for (NodeId v = 4; v < 8; ++v) sides[v] = 1;
  EXPECT_EQ(cut::vertex_boundary_width(q.graph(), sides, 0), 4u);
  EXPECT_EQ(cut::vertex_boundary_width(q.graph(), sides, 1), 4u);
}

TEST(VertexBisection, PortfolioWitnessIsValidAndScored) {
  const topo::Butterfly bf(8);
  cut::PortfolioOptions opts;
  opts.num_threads = 1;
  opts.run_branch_bound = false;
  const auto result = cut::vertex_bisection_portfolio(bf.graph(), opts);
  cut::validate_vertex_bisection(bf.graph(), result);
  EXPECT_GT(result.width, 0u);
  EXPECT_LE(result.certified_lower,
            static_cast<std::int64_t>(result.width));
  EXPECT_EQ(result.exactness, cut::Exactness::kHeuristic);
  // Deterministic replay: same options, same witness.
  const auto replay = cut::vertex_bisection_portfolio(bf.graph(), opts);
  EXPECT_EQ(replay.width, result.width);
  EXPECT_EQ(replay.sides, result.sides);
}

}  // namespace
}  // namespace bfly::cert
