// Stress and contract tests for the work-stealing shard scheduler
// (core/sharding.hpp) and the exact searches dispatched over it. Runs
// under `ctest -L tsan`: the deques, the steal scan, and the solver
// integrations (shared incumbent, pooled counters, shard merger) are
// exactly the shared state a data race would corrupt.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/sharding.hpp"
#include "cut/branch_bound.hpp"
#include "expansion/expansion.hpp"
#include "topology/butterfly.hpp"
#include "topology/wrapped_butterfly.hpp"

namespace bfly {
namespace {

TEST(WorkStealing, ExecutesEveryShardExactlyOnce) {
  constexpr std::size_t kShards = 203;  // not a multiple of the workers
  std::vector<std::atomic<int>> hits(kShards);
  for (auto& h : hits) h.store(0);
  const StealStats stats = WorkStealingScheduler::run(
      kShards,
      [&](std::size_t shard, unsigned worker) {
        EXPECT_LT(worker, 4u);
        hits[shard].fetch_add(1, std::memory_order_relaxed);
      },
      WorkStealingScheduler::Options{4, false});
  for (std::size_t i = 0; i < kShards; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "shard " << i;
  }
  EXPECT_EQ(stats.spawned, kShards);
  EXPECT_LE(stats.steals, stats.spawned);
}

TEST(WorkStealing, SeedToFirstForcesSteals) {
  // Every shard starts in worker 0's deque; workers 1..3 can only run
  // shards they stole. The barrier at entry guarantees the thieves are
  // alive before worker 0 could drain everything itself.
  constexpr std::size_t kShards = 64;
  std::atomic<unsigned> arrived{0};
  const StealStats stats = WorkStealingScheduler::run(
      kShards,
      [&](std::size_t, unsigned) {
        arrived.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      },
      WorkStealingScheduler::Options{4, true});
  EXPECT_EQ(arrived.load(), kShards);
  EXPECT_EQ(stats.spawned, kShards);
  EXPECT_GT(stats.steals, 0u);
}

TEST(WorkStealing, SerialRunsInlineInIndexOrder) {
  std::vector<std::size_t> order;
  const StealStats stats = WorkStealingScheduler::run(
      17,
      [&](std::size_t shard, unsigned worker) {
        EXPECT_EQ(worker, 0u);
        order.push_back(shard);  // serial: no synchronization needed
      },
      WorkStealingScheduler::Options{1, false});
  std::vector<std::size_t> want(17);
  std::iota(want.begin(), want.end(), 0);
  EXPECT_EQ(order, want);
  EXPECT_EQ(stats.steals, 0u);
  EXPECT_EQ(stats.spawned, 17u);
}

TEST(WorkStealing, FirstExceptionRethrownAfterDrain) {
  std::atomic<int> executed{0};
  try {
    WorkStealingScheduler::run(
        50,
        [&](std::size_t shard, unsigned) {
          executed.fetch_add(1, std::memory_order_relaxed);
          if (shard == 13) throw std::runtime_error("shard 13 failed");
        },
        WorkStealingScheduler::Options{4, false});
    FAIL() << "expected the shard exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "shard 13 failed");
  }
  // TaskGroup semantics: the failure does not cancel the other shards.
  EXPECT_EQ(executed.load(), 50);
}

TEST(WorkStealing, RepeatedSmallRoundsUnderContention) {
  // Many short rounds shake startup/termination races (the window where
  // a worker decides the pool is drained while another still runs).
  for (int round = 0; round < 40; ++round) {
    std::atomic<std::uint64_t> sum{0};
    const std::size_t shards = 1 + static_cast<std::size_t>(round % 9);
    const StealStats stats = WorkStealingScheduler::run(
        shards,
        [&](std::size_t shard, unsigned) {
          sum.fetch_add(shard + 1, std::memory_order_relaxed);
        },
        WorkStealingScheduler::Options{3, round % 2 == 1});
    EXPECT_EQ(sum.load(), shards * (shards + 1) / 2);
    EXPECT_EQ(stats.spawned, shards);
  }
}

// The solver integrations: parallel searches dispatched over the
// scheduler must prove the same optimum as serial, with live steal
// telemetry. (Witnesses may differ between capacity ties — the
// documented contract — so only values are compared.)
TEST(WorkStealing, BranchBoundParallelMatchesSerial) {
  const topo::Butterfly b8(8);
  const Graph& g = b8.graph();
  cut::BranchBoundOptions serial;
  serial.kernel = cut::BranchBoundKernel::kBitset;
  const cut::CutResult want = cut::min_bisection_branch_bound(g, serial);
  ASSERT_EQ(want.exactness, cut::Exactness::kExact);

  cut::BranchBoundOptions par = serial;
  par.num_threads = 4;
  par.seed_depth = 6;
  const cut::CutResult got = cut::min_bisection_branch_bound(g, par);
  EXPECT_EQ(got.exactness, cut::Exactness::kExact);
  EXPECT_EQ(got.capacity, want.capacity);
  EXPECT_GT(got.ws_spawned, 1u);
  EXPECT_LE(got.ws_steals, got.ws_spawned);
}

TEST(WorkStealing, ExpansionShardedMatchesSerial) {
  const topo::WrappedButterfly w4(4);
  const Graph& g = w4.graph();  // n = 8, 256 states: fast even under tsan
  expansion::ExactExpansionOptions serial;
  const expansion::ExactExpansionResult want =
      expansion::exact_expansion_full(g, serial);
  ASSERT_EQ(want.exactness, cut::Exactness::kExact);

  expansion::ExactExpansionOptions par;
  par.num_threads = 4;
  par.shard_bits = 4;
  const expansion::ExactExpansionResult got =
      expansion::exact_expansion_full(g, par);
  EXPECT_EQ(got.exactness, cut::Exactness::kExact);
  EXPECT_EQ(got.ws_spawned, 16u);
  for (std::size_t k = 1; k < want.table.size(); ++k) {
    EXPECT_EQ(got.table[k].ee, want.table[k].ee) << "k=" << k;
    EXPECT_EQ(got.table[k].ne, want.table[k].ne) << "k=" << k;
  }
}

}  // namespace
}  // namespace bfly
