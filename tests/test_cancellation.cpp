// Cancellation-propagation suite: the CancelToken deadline must be
// armable and extendable on a LIVE token (concurrent pollers — the tsan
// label makes the thread-sanitizer flavor prove it race-free), and
// every heuristic solver must honor a tight deadline — returning within
// a small multiple of it, reporting kHeuristic, never a stale kExact.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "core/thread_pool.hpp"
#include "cut/multilevel.hpp"
#include "cut/simulated_annealing.hpp"
#include "cut/spectral_bisection.hpp"
#include "topology/butterfly.hpp"

namespace bfly {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// --- CancelToken deadline race-safety ---

TEST(CancelTokenDeadline, ArmAndExtendOnLiveTokenWhilePolled) {
  // Two armer threads repeatedly move the deadline while two poller
  // threads hammer stop_requested(). Under -DBFLY_SANITIZE=thread this
  // is the regression test for the deadline being a single atomic cell;
  // in any build it checks the semantics: the last armed deadline (a
  // few ms out) eventually fires.
  CancelToken token;
  std::atomic<bool> go{true};
  std::vector<std::thread> pollers;
  pollers.reserve(2);
  for (int i = 0; i < 2; ++i) {
    pollers.emplace_back([&] {
      while (go.load(std::memory_order_relaxed)) {
        (void)token.stop_requested();
      }
    });
  }
  {
    std::vector<std::thread> armers;
    armers.reserve(2);
    for (int i = 0; i < 2; ++i) {
      armers.emplace_back([&] {
        for (int r = 0; r < 200; ++r) {
          token.set_deadline(Clock::now() + std::chrono::seconds(60));
          token.set_deadline_after(30.0);
        }
      });
    }
    for (auto& t : armers) t.join();
  }
  EXPECT_FALSE(token.stop_requested());  // every armed deadline is far out

  token.set_deadline(Clock::now() + std::chrono::milliseconds(5));
  const auto t0 = Clock::now();
  while (!token.stop_requested() && seconds_since(t0) < 5.0) {
    std::this_thread::yield();
  }
  EXPECT_TRUE(token.stop_requested());

  go.store(false, std::memory_order_relaxed);
  for (auto& t : pollers) t.join();
}

TEST(CancelTokenDeadline, FiredTokenNeverUnfires) {
  CancelToken token;
  token.request_stop();
  ASSERT_TRUE(token.stop_requested());
  // Extending the deadline after the fact must not resurrect the token.
  token.set_deadline(Clock::now() + std::chrono::hours(1));
  EXPECT_TRUE(token.stop_requested());
}

TEST(CancelTokenDeadline, ExtendingPostponesExpiry) {
  CancelToken token;
  token.set_deadline(Clock::now() + std::chrono::milliseconds(1));
  token.set_deadline(Clock::now() + std::chrono::hours(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  // The original 1 ms deadline was moved before it fired.
  EXPECT_FALSE(token.stop_requested());
}

// --- Tight-deadline propagation through the heuristic solvers ---
//
// Each solver gets work sized to run for many seconds uncancelled and a
// deadline far below that. The contract under test: return within 2x
// the deadline plus one work-unit granule (restart / V-cycle / power
// iteration — generous here so sanitizer-flavor slowdowns don't flake),
// and report kHeuristic.

constexpr double kDeadlineSeconds = 0.5;
constexpr double kLatenessBudget = 2.0 * kDeadlineSeconds + 2.0;

TEST(TightDeadline, SimulatedAnnealingStopsAndStaysHeuristic) {
  const Graph g = topo::Butterfly(16).graph();  // 80 nodes
  CancelToken token;
  token.set_deadline_after(kDeadlineSeconds);
  cut::SimulatedAnnealingOptions opts;
  opts.restarts = 1000000;  // ~forever without the deadline
  opts.cancel = &token;
  const auto t0 = Clock::now();
  const auto res = cut::min_bisection_simulated_annealing(g, opts);
  EXPECT_LT(seconds_since(t0), kLatenessBudget);
  EXPECT_EQ(res.exactness, cut::Exactness::kHeuristic);
  EXPECT_LT(res.restarts_completed, opts.restarts);
  if (!res.sides.empty()) {
    cut::validate_cut(g, res, /*require_bisection=*/true);
  }
}

TEST(TightDeadline, MultilevelStopsAndStaysHeuristic) {
  const Graph g = topo::Butterfly(16).graph();
  CancelToken token;
  token.set_deadline_after(kDeadlineSeconds);
  cut::MultilevelOptions opts;
  opts.cycles = 1000000;
  opts.cancel = &token;
  const auto t0 = Clock::now();
  const auto res = cut::min_bisection_multilevel(g, opts);
  EXPECT_LT(seconds_since(t0), kLatenessBudget);
  EXPECT_EQ(res.exactness, cut::Exactness::kHeuristic);
  if (!res.sides.empty()) {
    cut::validate_cut(g, res, /*require_bisection=*/true);
  }
}

TEST(TightDeadline, SpectralStopsMidEigensolveAndStaysValid) {
  // A pre-fired token is the tightest possible deadline: the eigensolve
  // must bail on its first iteration poll, and the solver must still
  // return a valid (unpolished median-split) bisection, not garbage.
  const Graph g = topo::Butterfly(64).graph();  // 448 nodes
  CancelToken token;
  token.request_stop();
  cut::SpectralBisectionOptions opts;
  opts.cancel = &token;
  const auto t0 = Clock::now();
  const auto res = cut::min_bisection_spectral(g, opts);
  EXPECT_LT(seconds_since(t0), kLatenessBudget);
  EXPECT_EQ(res.exactness, cut::Exactness::kHeuristic);
  EXPECT_EQ(res.method, "spectral");  // the FM-polish phase was skipped
  ASSERT_FALSE(res.sides.empty());
  cut::validate_cut(g, res, /*require_bisection=*/true);
}

TEST(TightDeadline, SpectralDeadlineDuringIterationIsHonored) {
  const Graph g = topo::Butterfly(64).graph();
  CancelToken token;
  token.set_deadline_after(kDeadlineSeconds);
  cut::SpectralBisectionOptions opts;
  opts.cancel = &token;
  const auto t0 = Clock::now();
  const auto res = cut::min_bisection_spectral(g, opts);
  EXPECT_LT(seconds_since(t0), kLatenessBudget);
  EXPECT_EQ(res.exactness, cut::Exactness::kHeuristic);
  ASSERT_FALSE(res.sides.empty());
  cut::validate_cut(g, res, /*require_bisection=*/true);
}

}  // namespace
}  // namespace bfly
