// Final property suites: automorphism composition, Beneš mirror
// symmetry, RNG uniformity sanity, and builder stress.
#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "core/graph.hpp"
#include "core/rng.hpp"
#include "topology/benes.hpp"
#include "topology/butterfly.hpp"

namespace bfly {
namespace {

TEST(Automorphisms, ComposeAndInvert) {
  // The (c0, flips) family is closed under composition with matching
  // flips, and applying (c0, flips) twice is the identity (XOR masks are
  // involutions).
  const topo::Butterfly bf(16);
  for (std::uint32_t c0 = 0; c0 < 16; c0 += 5) {
    for (std::uint32_t flips = 0; flips < 16; flips += 3) {
      const topo::ButterflyAutomorphism a(bf, c0, flips);
      for (NodeId v = 0; v < bf.num_nodes(); ++v) {
        EXPECT_EQ(a.apply(a.apply(v)), v);
      }
    }
  }
}

TEST(Automorphisms, LevelReversalIsInvolution) {
  const topo::Butterfly bf(16);
  for (NodeId v = 0; v < bf.num_nodes(); ++v) {
    EXPECT_EQ(level_reversal(bf, level_reversal(bf, v)), v);
  }
}

class BenesMirror : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(BenesMirror, CrossMasksAreMirrorSymmetric) {
  const topo::Benes benes(GetParam());
  const std::uint32_t d = benes.dims();
  for (std::uint32_t b = 0; b < 2 * d; ++b) {
    EXPECT_EQ(benes.cross_mask(b), benes.cross_mask(2 * d - 1 - b));
  }
}

TEST_P(BenesMirror, LevelReflectionIsAnAutomorphism) {
  // <w, l> -> <w, 2d - l> preserves adjacency (the back-to-back mirror).
  const topo::Benes benes(GetParam());
  const std::uint32_t d = benes.dims();
  const auto mirror = [&](NodeId v) {
    return benes.node(benes.column(v), 2 * d - benes.level(v));
  };
  for (const auto& [u, v] : benes.graph().edges()) {
    EXPECT_TRUE(benes.graph().has_edge(mirror(u), mirror(v)));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BenesMirror,
                         ::testing::Values(2u, 4u, 8u, 16u));

TEST(Rng, RoughUniformityOfBelow) {
  // Chi-square-lite: 16 buckets, 16k draws; every bucket within 20% of
  // the mean (overwhelmingly likely for a sound generator).
  Rng rng(20260707);
  std::array<int, 16> buckets{};
  for (int i = 0; i < 16384; ++i) ++buckets[rng.below(16)];
  for (const int b : buckets) {
    EXPECT_GT(b, 1024 * 0.8);
    EXPECT_LT(b, 1024 * 1.2);
  }
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(GraphBuilder, StressManyParallelEdges) {
  GraphBuilder gb(3);
  for (int i = 0; i < 1000; ++i) gb.add_edge(0, 1);
  for (int i = 0; i < 500; ++i) gb.add_edge(1, 2);
  const Graph g = std::move(gb).build();
  EXPECT_EQ(g.num_edges(), 1500u);
  EXPECT_EQ(g.edge_multiplicity(0, 1), 1000u);
  EXPECT_EQ(g.edge_multiplicity(1, 2), 500u);
  EXPECT_EQ(g.degree(1), 1500u);
  EXPECT_EQ(g.max_degree(), 1500u);
}

TEST(GraphBuilder, LargeButterflyBuildsQuickly) {
  // B4096: 53248 nodes, 98304 edges — the CSR build must handle it.
  const topo::Butterfly bf(4096);
  EXPECT_EQ(bf.num_nodes(), 4096u * 13u);
  EXPECT_EQ(bf.graph().num_edges(), 2u * 4096u * 12u);
  EXPECT_EQ(bf.graph().degree(bf.node(0, 5)), 4u);
}

}  // namespace
}  // namespace bfly
