// Max-flow substrate: Dinic on hand-built networks, Menger path counts,
// and minimum vertex cuts on butterflies.
#include <gtest/gtest.h>

#include "algo/maxflow.hpp"
#include "topology/butterfly.hpp"
#include "topology/complete.hpp"
#include "topology/hypercube.hpp"

namespace bfly::algo {
namespace {

TEST(MaxFlow, TextbookNetwork) {
  // Classic 4-node diamond: s=0, t=3; 0->1 (3), 0->2 (2), 1->2 (5),
  // 1->3 (2), 2->3 (3). Max flow = 5.
  FlowNetwork net(4);
  net.add_arc(0, 1, 3);
  net.add_arc(0, 2, 2);
  net.add_arc(1, 2, 5);
  net.add_arc(1, 3, 2);
  net.add_arc(2, 3, 3);
  EXPECT_EQ(net.max_flow(0, 3), 5);
  EXPECT_TRUE(net.on_source_side(0));
  EXPECT_FALSE(net.on_source_side(3));
}

TEST(MaxFlow, DisconnectedIsZero) {
  FlowNetwork net(3);
  net.add_arc(0, 1, 7);
  EXPECT_EQ(net.max_flow(0, 2), 0);
}

TEST(MaxFlow, FlowOnArcs) {
  FlowNetwork net(3);
  const auto a = net.add_arc(0, 1, 4);
  const auto b = net.add_arc(1, 2, 2);
  EXPECT_EQ(net.max_flow(0, 2), 2);
  EXPECT_EQ(net.flow_on(a), 2);
  EXPECT_EQ(net.flow_on(b), 2);
}

TEST(MaxFlow, EdgeDisjointPathsOnButterfly) {
  // Between the inputs and outputs of Bn there are exactly 2n edge-
  // disjoint paths (each input has degree 2; flow saturates all edges
  // out of level 0).
  const topo::Butterfly bf(8);
  const auto inputs = bf.level_nodes(0);
  const auto outputs = bf.level_nodes(bf.dims());
  EXPECT_EQ(max_edge_disjoint_paths(bf.graph(), inputs, outputs), 16);
}

TEST(MaxFlow, VertexDisjointPathsOnButterfly) {
  // Fully vertex-disjoint input-output paths: at most n (each level has
  // n nodes) and exactly n (the identity monotonic paths).
  const topo::Butterfly bf(8);
  const auto inputs = bf.level_nodes(0);
  const auto outputs = bf.level_nodes(bf.dims());
  EXPECT_EQ(max_vertex_disjoint_paths(bf.graph(), inputs, outputs), 8);
}

TEST(MaxFlow, MinVertexCutSingleTarget) {
  // Separating one internal node from the inputs requires cutting it or
  // its 2 upward neighbors; minimum is 1 (the node itself).
  const topo::Butterfly bf(8);
  const auto inputs = bf.level_nodes(0);
  const std::vector<NodeId> target = {bf.node(3, 2)};
  const auto cut = min_vertex_cut(bf.graph(), inputs, target);
  EXPECT_EQ(cut.size, 1);
  ASSERT_EQ(cut.nodes.size(), 1u);
}

TEST(MaxFlow, MinVertexCutWholeLevel) {
  // Separating all outputs from all inputs requires n nodes.
  const topo::Butterfly bf(8);
  const auto inputs = bf.level_nodes(0);
  const auto outputs = bf.level_nodes(bf.dims());
  const auto cut = min_vertex_cut(bf.graph(), inputs, outputs);
  EXPECT_EQ(cut.size, 8);
  EXPECT_EQ(cut.nodes.size(), 8u);
}

TEST(MaxFlow, MingCutMatchesMengerOnHypercube) {
  const topo::Hypercube q(4);
  const std::vector<NodeId> a = {0};
  const std::vector<NodeId> b = {15};
  // kappa(Q4) between antipodes = 4 = degree.
  EXPECT_EQ(max_edge_disjoint_paths(q.graph(), a, b), 4);
}

TEST(MaxFlow, CompleteGraphCut) {
  const Graph k6 = topo::complete_graph(6);
  const std::vector<NodeId> a = {0};
  const std::vector<NodeId> b = {5};
  EXPECT_EQ(max_edge_disjoint_paths(k6, a, b), 5);
}

}  // namespace
}  // namespace bfly::algo
