// Max-flow substrate: Dinic on hand-built networks, Menger path counts,
// minimum vertex cuts on butterflies, reusable-network semantics
// (reset / re-entry / re-wiring), the packed bitset level phase, the
// int64 overflow guard, and certified connectivities.
#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "algo/maxflow.hpp"
#include "core/error.hpp"
#include "core/rng.hpp"
#include "topology/butterfly.hpp"
#include "topology/complete.hpp"
#include "topology/hypercube.hpp"

namespace bfly::algo {
namespace {

TEST(MaxFlow, TextbookNetwork) {
  // Classic 4-node diamond: s=0, t=3; 0->1 (3), 0->2 (2), 1->2 (5),
  // 1->3 (2), 2->3 (3). Max flow = 5.
  FlowNetwork net(4);
  net.add_arc(0, 1, 3);
  net.add_arc(0, 2, 2);
  net.add_arc(1, 2, 5);
  net.add_arc(1, 3, 2);
  net.add_arc(2, 3, 3);
  EXPECT_EQ(net.max_flow(0, 3), 5);
  EXPECT_TRUE(net.on_source_side(0));
  EXPECT_FALSE(net.on_source_side(3));
}

TEST(MaxFlow, DisconnectedIsZero) {
  FlowNetwork net(3);
  net.add_arc(0, 1, 7);
  EXPECT_EQ(net.max_flow(0, 2), 0);
}

TEST(MaxFlow, FlowOnArcs) {
  FlowNetwork net(3);
  const auto a = net.add_arc(0, 1, 4);
  const auto b = net.add_arc(1, 2, 2);
  EXPECT_EQ(net.max_flow(0, 2), 2);
  EXPECT_EQ(net.flow_on(a), 2);
  EXPECT_EQ(net.flow_on(b), 2);
}

TEST(MaxFlow, EdgeDisjointPathsOnButterfly) {
  // Between the inputs and outputs of Bn there are exactly 2n edge-
  // disjoint paths (each input has degree 2; flow saturates all edges
  // out of level 0).
  const topo::Butterfly bf(8);
  const auto inputs = bf.level_nodes(0);
  const auto outputs = bf.level_nodes(bf.dims());
  EXPECT_EQ(max_edge_disjoint_paths(bf.graph(), inputs, outputs), 16);
}

TEST(MaxFlow, VertexDisjointPathsOnButterfly) {
  // Fully vertex-disjoint input-output paths: at most n (each level has
  // n nodes) and exactly n (the identity monotonic paths).
  const topo::Butterfly bf(8);
  const auto inputs = bf.level_nodes(0);
  const auto outputs = bf.level_nodes(bf.dims());
  EXPECT_EQ(max_vertex_disjoint_paths(bf.graph(), inputs, outputs), 8);
}

TEST(MaxFlow, MinVertexCutSingleTarget) {
  // Separating one internal node from the inputs requires cutting it or
  // its 2 upward neighbors; minimum is 1 (the node itself).
  const topo::Butterfly bf(8);
  const auto inputs = bf.level_nodes(0);
  const std::vector<NodeId> target = {bf.node(3, 2)};
  const auto cut = min_vertex_cut(bf.graph(), inputs, target);
  EXPECT_EQ(cut.size, 1);
  ASSERT_EQ(cut.nodes.size(), 1u);
}

TEST(MaxFlow, MinVertexCutWholeLevel) {
  // Separating all outputs from all inputs requires n nodes.
  const topo::Butterfly bf(8);
  const auto inputs = bf.level_nodes(0);
  const auto outputs = bf.level_nodes(bf.dims());
  const auto cut = min_vertex_cut(bf.graph(), inputs, outputs);
  EXPECT_EQ(cut.size, 8);
  EXPECT_EQ(cut.nodes.size(), 8u);
}

TEST(MaxFlow, MingCutMatchesMengerOnHypercube) {
  const topo::Hypercube q(4);
  const std::vector<NodeId> a = {0};
  const std::vector<NodeId> b = {15};
  // kappa(Q4) between antipodes = 4 = degree.
  EXPECT_EQ(max_edge_disjoint_paths(q.graph(), a, b), 4);
}

TEST(MaxFlow, CompleteGraphCut) {
  const Graph k6 = topo::complete_graph(6);
  const std::vector<NodeId> a = {0};
  const std::vector<NodeId> b = {5};
  EXPECT_EQ(max_edge_disjoint_paths(k6, a, b), 5);
}

// A seeded random DAG (arcs u -> v with u < v only, so no duplicate
// ordered pairs and the packed level phase is legal) with the arc list
// kept outside the network for cut recomputation.
struct DagArc {
  NodeId u, v;
  std::int64_t cap;
  std::uint32_t index;
};

std::vector<DagArc> build_random_dag(FlowNetwork& net, NodeId n,
                                     std::uint64_t seed) {
  Rng rng(seed);
  std::vector<DagArc> arcs;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (rng.below(100) < 30) {
        const auto cap = static_cast<std::int64_t>(1 + rng.below(20));
        arcs.push_back({u, v, cap, net.add_arc(u, v, cap)});
      }
    }
  }
  return arcs;
}

TEST(MaxFlowRandom, FlowEqualsCutOnRandomDags) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const NodeId n = 30;
    FlowNetwork net(n);
    const std::vector<DagArc> arcs = build_random_dag(net, n, seed);
    const NodeId s = 0, t = n - 1;
    const std::int64_t flow = net.max_flow(s, t);
    // Max-flow = min-cut from first principles: the residual-reachable
    // side defines a cut whose crossing arcs must all be saturated and
    // sum to the flow value.
    ASSERT_TRUE(net.on_source_side(s));
    ASSERT_FALSE(net.on_source_side(t));
    std::int64_t cut = 0;
    for (const DagArc& a : arcs) {
      if (net.on_source_side(a.u) && !net.on_source_side(a.v)) {
        cut += a.cap;
        EXPECT_EQ(net.flow_on(a.index), a.cap) << "unsaturated cut arc";
      }
    }
    EXPECT_EQ(flow, cut) << "seed " << seed;
    // Packed differential: the bitset level phase is a representation
    // change only — identical maximum flow.
    FlowNetwork packed(n);
    (void)build_random_dag(packed, n, seed);
    packed.enable_packed_bfs();
    EXPECT_TRUE(packed.packed_bfs_enabled());
    EXPECT_EQ(packed.max_flow(s, t), flow);
  }
}

TEST(MaxFlowReuse, ResetRestoresAndReentryIsIdempotent) {
  FlowNetwork net(4);
  const auto a01 = net.add_arc(0, 1, 3);
  net.add_arc(0, 2, 2);
  net.add_arc(1, 2, 5);
  net.add_arc(1, 3, 2);
  net.add_arc(2, 3, 3);
  EXPECT_EQ(net.max_flow(0, 3), 5);
  // Re-entry: the network is already at its maximum — the second call
  // augments nothing and leaves the flows intact.
  const std::int64_t f01 = net.flow_on(a01);
  EXPECT_EQ(net.max_flow(0, 3), 0);
  EXPECT_EQ(net.flow_on(a01), f01);
  // Reset: all flow erased, the full computation replays.
  net.reset();
  EXPECT_EQ(net.flow_on(a01), 0);
  EXPECT_EQ(net.max_flow(0, 3), 5);
}

TEST(MaxFlowReuse, SetCapacityRewiresBetweenQueries) {
  FlowNetwork net(3);
  const auto a01 = net.add_arc(0, 1, 4);
  const auto a12 = net.add_arc(1, 2, 2);
  EXPECT_EQ(net.max_flow(0, 2), 2);
  // Widening the bottleneck after a reset changes the answer; the
  // rewire persists across further resets.
  net.reset();
  net.set_capacity(a12, 10);
  EXPECT_EQ(net.max_flow(0, 2), 4);
  net.reset();
  net.set_capacity(a01, 0);
  EXPECT_EQ(net.max_flow(0, 2), 0);
  // Re-wiring an arc that carries flow is a contract violation.
  net.reset();
  net.set_capacity(a01, 4);
  EXPECT_EQ(net.max_flow(0, 2), 4);
  EXPECT_THROW(net.set_capacity(a12, 1), PreconditionError);
}

TEST(MaxFlowReuse, ReentryAugmentsTheIncrement) {
  // Adding capacity between calls makes the next call push exactly the
  // new increment, on top of the flow already in place.
  FlowNetwork net(3);
  net.add_arc(0, 1, 3);
  const auto a12 = net.add_arc(1, 2, 3);
  EXPECT_EQ(net.max_flow(0, 2), 3);
  net.add_arc(0, 2, 2);
  EXPECT_EQ(net.max_flow(0, 2), 2);
  EXPECT_EQ(net.flow_on(a12), 3);  // prior flow undisturbed
}

TEST(MaxFlowOverflow, GuardNearInt64Max) {
  constexpr std::int64_t kHuge = std::numeric_limits<std::int64_t>::max() - 1;
  FlowNetwork net(3);
  net.add_arc(0, 2, kHuge);
  net.add_arc(0, 1, kHuge);
  net.add_arc(1, 2, kHuge);
  // Each phase pushes kHuge; the second augmentation would take the
  // total past int64 — the guard must throw, not wrap.
  EXPECT_THROW((void)net.max_flow(0, 2), PreconditionError);
}

TEST(MaxFlowOverflow, LargeCapacitiesStayExact) {
  constexpr std::int64_t kBig = 1ll << 62;
  FlowNetwork net(3);
  net.add_arc(0, 1, kBig);
  net.add_arc(1, 2, kBig - 7);
  EXPECT_EQ(net.max_flow(0, 2), kBig - 7);
}

TEST(MaxFlowOverflow, ArcPairCapacityIsChecked) {
  FlowNetwork net(2);
  constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  EXPECT_THROW(net.add_arc(0, 1, kMax, kMax), PreconditionError);
  EXPECT_THROW(net.add_arc(0, 1, -1), PreconditionError);
}

TEST(MaxFlowPacked, DuplicateOrderedPairIsRejected) {
  FlowNetwork net(3);
  net.add_arc(0, 1, 1);
  net.add_arc(0, 1, 1);  // second arc on the same ordered pair
  EXPECT_THROW(net.enable_packed_bfs(), PreconditionError);
}

TEST(MaxFlowPacked, MatchesQueueBfsOnButterflyCut) {
  // The packed level phase is a pure representation change: identical
  // flow on the butterfly whole-level vertex cut, via the node-split
  // network with packed rows enabled.
  const topo::Butterfly bf(8);
  const auto inputs = bf.level_nodes(0);
  const auto outputs = bf.level_nodes(bf.dims());
  NodeSplitNetwork plain = make_node_split_network(bf.graph(), 1);
  NodeSplitNetwork packed =
      make_node_split_network(bf.graph(), 1, /*packed_bfs_node_limit=*/256);
  EXPECT_FALSE(plain.net.packed_bfs_enabled());
  EXPECT_TRUE(packed.net.packed_bfs_enabled());
  for (NodeSplitNetwork* ns : {&plain, &packed}) {
    for (const NodeId v : inputs) {
      ns->net.set_capacity(ns->source_arc(v), kUnboundedCapacity);
    }
    for (const NodeId v : outputs) {
      ns->net.set_capacity(ns->sink_arc(v), kUnboundedCapacity);
    }
  }
  EXPECT_EQ(plain.net.max_flow(plain.source(), plain.sink()), 8);
  EXPECT_EQ(packed.net.max_flow(packed.source(), packed.sink()), 8);
}

TEST(Connectivity, KnownValues) {
  EXPECT_EQ(vertex_connectivity(topo::Hypercube(4).graph()), 4);
  EXPECT_EQ(edge_connectivity(topo::Hypercube(4).graph()), 4);
  EXPECT_EQ(vertex_connectivity(topo::complete_graph(6)), 5);
  EXPECT_EQ(edge_connectivity(topo::complete_graph(6)), 5);

  GraphBuilder cycle(8);
  for (NodeId v = 0; v < 8; ++v) cycle.add_edge(v, (v + 1) % 8);
  const Graph c8 = std::move(cycle).build();
  EXPECT_EQ(vertex_connectivity(c8), 2);
  EXPECT_EQ(edge_connectivity(c8), 2);

  GraphBuilder path(5);
  for (NodeId v = 0; v + 1 < 5; ++v) path.add_edge(v, v + 1);
  const Graph p5 = std::move(path).build();
  EXPECT_EQ(vertex_connectivity(p5), 1);
  EXPECT_EQ(edge_connectivity(p5), 1);

  GraphBuilder split(4);
  split.add_edge(0, 1);
  split.add_edge(2, 3);
  const Graph disconnected = std::move(split).build();
  EXPECT_EQ(vertex_connectivity(disconnected), 0);
  EXPECT_EQ(edge_connectivity(disconnected), 0);
}

TEST(Connectivity, MinVertexSeparatorOnHypercube) {
  // Antipodal nodes of Q3 are non-adjacent with kappa(u, v) = 3.
  const topo::Hypercube q(3);
  EXPECT_EQ(min_vertex_separator(q.graph(), 0, 7), 3);
  EXPECT_THROW((void)min_vertex_separator(q.graph(), 0, 1),
               PreconditionError);
}

}  // namespace
}  // namespace bfly::algo
