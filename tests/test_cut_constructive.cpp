// Constructive cuts and the compactness/amenability machinery of
// Section 2 (Lemmas 2.8, 2.9, 2.15, 2.16).
#include <gtest/gtest.h>

#include "core/partition.hpp"
#include "core/rng.hpp"
#include "cut/branch_bound.hpp"
#include "cut/brute_force.hpp"
#include "cut/compactness.hpp"
#include "cut/constructive.hpp"
#include "cut/fiduccia_mattheyses.hpp"
#include "cut/level_balance.hpp"
#include "cut/mos_theory.hpp"
#include "topology/butterfly.hpp"
#include "topology/ccc.hpp"
#include "topology/wrapped_butterfly.hpp"

namespace bfly::cut {
namespace {

std::vector<std::uint8_t> random_sides(NodeId n, Rng& rng) {
  std::vector<std::uint8_t> s(n);
  for (auto& v : s) v = static_cast<std::uint8_t>(rng.below(2));
  return s;
}

TEST(Constructive, ColumnSplitOnBnHasCapacityN) {
  for (const std::uint32_t n : {4u, 8u, 16u, 64u}) {
    const topo::Butterfly bf(n);
    const auto r = column_split_bisection(bf);
    EXPECT_EQ(r.capacity, n);
    EXPECT_TRUE(is_bisection(r.sides));
    EXPECT_NO_THROW(validate_cut(bf.graph(), r));
  }
}

TEST(Constructive, ColumnSplitOnWnHasCapacityN) {
  for (const std::uint32_t n : {8u, 16u, 64u}) {
    const topo::WrappedButterfly wb(n);
    const auto r = column_split_bisection(wb);
    EXPECT_EQ(r.capacity, n);
    EXPECT_TRUE(is_bisection(r.sides));
  }
}

TEST(Constructive, DimensionCutOnCCCHasCapacityHalfN) {
  for (const std::uint32_t n : {8u, 16u, 32u}) {
    const topo::CubeConnectedCycles cc(n);
    const auto r = dimension_cut_bisection(cc);
    EXPECT_EQ(r.capacity, n / 2);
    EXPECT_TRUE(is_bisection(r.sides));
  }
}

TEST(Compactness, Lemma28PushTailLevelsNeverIncreasesCapacity) {
  // The Lemma 2.8 transformation (move levels 1..log n to the L0-majority
  // side) must never increase capacity — checked on random cuts.
  for (const std::uint32_t n : {4u, 8u, 16u}) {
    const topo::Butterfly bf(n);
    Rng rng(n * 7919);
    for (int trial = 0; trial < 200; ++trial) {
      const auto sides = random_sides(bf.num_nodes(), rng);
      const auto before = cut_capacity(bf.graph(), sides);
      const auto pushed = push_tail_levels(bf, sides);
      EXPECT_LE(cut_capacity(bf.graph(), pushed), before);
    }
  }
}

TEST(Compactness, Lemma28ExhaustiveOnB4) {
  // Exhaustively over ALL cuts of B4 (2^11): U = levels 1..2 is compact.
  const topo::Butterfly bf(4);
  std::vector<NodeId> tail;
  for (std::uint32_t lvl = 1; lvl <= bf.dims(); ++lvl) {
    for (const NodeId v : bf.level_nodes(lvl)) tail.push_back(v);
  }
  EXPECT_TRUE(is_compact_exhaustive(bf.graph(), tail));
}

TEST(Compactness, Lemma29ComponentsCompactInB4) {
  // Each connected component of B4[1, 2] is compact in B4, exhaustively.
  const topo::Butterfly bf(4);
  for (std::uint32_t c = 0; c < bf.num_components(1, 2); ++c) {
    const auto nodes = bf.component_nodes(c, 1, 2);
    EXPECT_TRUE(is_compact_exhaustive(bf.graph(), nodes)) << "comp " << c;
  }
}

TEST(Compactness, NonCompactSetDetected) {
  // A single middle node of a path is NOT compact: cutting around it can
  // be cheaper than absorbing it into one side... actually a middle node
  // IS compact in a path. Use a set that genuinely fails: the two
  // endpoints of a 4-path (moving both to one side can add capacity).
  GraphBuilder gb(4);
  gb.add_edge(0, 1);
  gb.add_edge(1, 2);
  gb.add_edge(2, 3);
  const Graph g = std::move(gb).build();
  const std::vector<NodeId> ends = {0, 3};
  EXPECT_FALSE(is_compact_exhaustive(g, ends));
}

TEST(Amenability, Lemma215ComponentsAmenableUnderPrecondition) {
  // B8: U = a component of B8[1,2]; cut with L0-neighbors of U on side 0
  // and L3-neighbors on side 1. Exhaustive amenability check over 2^|U|.
  const topo::Butterfly bf(8);
  const auto comp_nodes = bf.component_nodes(0, 1, 2);
  ASSERT_EQ(comp_nodes.size(), 4u);

  Rng rng(1234);
  for (int trial = 0; trial < 50; ++trial) {
    auto sides = random_sides(bf.num_nodes(), rng);
    // Enforce the Lemma 2.15 precondition on N(U).
    std::vector<std::uint8_t> in_comp(bf.num_nodes(), 0);
    for (const NodeId v : comp_nodes) in_comp[v] = 1;
    for (const NodeId v : comp_nodes) {
      for (const NodeId u : bf.graph().neighbors(v)) {
        if (in_comp[u]) continue;
        sides[u] = bf.level(u) == 0 ? 0 : 1;
      }
    }
    EXPECT_TRUE(is_amenable_exhaustive(bf.graph(), comp_nodes, sides));
  }
}

std::vector<std::uint8_t> random_bisection(NodeId n, Rng& rng) {
  std::vector<NodeId> perm(n);
  for (NodeId v = 0; v < n; ++v) perm[v] = v;
  shuffle(perm, rng);
  std::vector<std::uint8_t> sides(n, 0);
  for (NodeId i = n / 2; i < n; ++i) sides[perm[i]] = 1;
  return sides;
}

TEST(Lemma212, BalanceSomeLevelNeverIncreasesCapacity) {
  // The constructive 4-cycle transformation: from any bisection, a cut
  // of no larger capacity bisecting some level.
  for (const std::uint32_t n : {4u, 8u, 16u, 32u}) {
    const topo::Butterfly bf(n);
    Rng rng(n * 101);
    for (int trial = 0; trial < 40; ++trial) {
      const auto sides = random_bisection(bf.num_nodes(), rng);
      const auto before = cut_capacity(bf.graph(), sides);
      const auto res = balance_some_level(bf, sides);
      ASSERT_LE(res.capacity, before);
      ASSERT_EQ(cut_capacity(bf.graph(), res.sides), res.capacity);
      // The claimed level is indeed bisected.
      std::uint32_t cnt = 0;
      for (std::uint32_t w = 0; w < n; ++w) {
        cnt += res.sides[bf.node(w, res.bisected_level)] == 0;
      }
      ASSERT_EQ(cnt, n / 2);
    }
  }
}

TEST(Lemma212, OptimalBisectionYieldsLevelBisectionAtMostBW) {
  // End-to-end Lemma 2.12(1): BW(Bn, L_i) <= BW(Bn) for some i,
  // realized constructively from a minimum bisection found by FM.
  const topo::Butterfly bf(8);
  const auto fm = min_bisection_fiduccia_mattheyses(bf.graph());
  const auto res = balance_some_level(bf, fm.sides);
  EXPECT_LE(res.capacity, fm.capacity);
  // Cross-check against the exact U-bisection optimum for that level
  // (branch and bound; B8 is too big for the exhaustive sweep).
  const auto level = bf.level_nodes(res.bisected_level);
  BranchBoundOptions opts;
  opts.bisect_subset = level;
  opts.initial_bound = res.capacity;
  const auto exact = min_bisection_branch_bound(bf.graph(), opts);
  EXPECT_LE(exact.capacity, res.capacity);
}

TEST(Lemma212, AlreadyBalancedLevelIsZeroMoves) {
  const topo::Butterfly bf(8);
  const auto cs = column_split_bisection(bf);  // bisects every level
  const auto res = balance_some_level(bf, cs.sides);
  EXPECT_EQ(res.moves, 0u);
  EXPECT_EQ(res.capacity, cs.capacity);
}

TEST(Lemma216, ProducesValidBisections) {
  for (const std::uint32_t n : {16u, 64u}) {
    const topo::Butterfly bf(n);
    const auto res = lemma216_bisection(bf, 2);
    EXPECT_TRUE(is_bisection(res.cut.sides));
    EXPECT_NO_THROW(validate_cut(bf.graph(), res.cut));
    EXPECT_FALSE(res.size_requirement_met);  // needs log n >= 11 for j=2
  }
}

TEST(Lemma216, CapacityWithinPromiseOnAdmissibleShapes) {
  // Even far below the lemma's size requirement the lifted cut capacity
  // before cleanup should be 2n/j^2 * C(MOS cut tweaked); we check the
  // weaker end-to-end guarantee that the final cut is a genuine
  // bisection whose capacity is at most the promised bound plus the
  // greedy-cleanup damage (each move costs at most max degree = 4).
  const topo::Butterfly bf(64);
  const auto res = lemma216_bisection(bf, 2);
  EXPECT_LE(static_cast<double>(res.cut.capacity),
            res.promised_capacity + 4.0 * res.cleanup_moves + 1e-9);
}

TEST(Lemma216, LargerJOnLargerN) {
  const topo::Butterfly bf(256);
  const auto res = lemma216_bisection(bf, 4);
  EXPECT_TRUE(is_bisection(res.cut.sides));
  EXPECT_EQ(res.mos_capacity, mos_m2_bisection_value(4).capacity);
}

TEST(Lemma216, RejectsInfeasibleParameters) {
  const topo::Butterfly bf(16);
  EXPECT_THROW(lemma216_bisection(bf, 3), PreconditionError);   // odd j
  EXPECT_THROW(lemma216_bisection(bf, 8), PreconditionError);   // j^2 > n
}

}  // namespace
}  // namespace bfly::cut
