// VLSI layout model (paper Sections 1.1/1.2): validity of the butterfly
// channel layout, area scaling, and Thompson's A >= BW^2.
#include <gtest/gtest.h>

#include "layout/butterfly_layout.hpp"
#include "layout/grid_layout.hpp"
#include "topology/butterfly.hpp"

namespace bfly::layout {
namespace {

TEST(GridLayout, ValidatesASimplePath) {
  GraphBuilder gb(2);
  gb.add_edge(0, 1);
  const Graph g = std::move(gb).build();
  GridLayout l;
  l.position = {{0, 0}, {2, 0}};
  l.wire = {{{0, 0}, {2, 0}}};
  EXPECT_NO_THROW(validate_layout(g, l));
  EXPECT_EQ(l.width(), 3);
  EXPECT_EQ(l.height(), 1);
  EXPECT_EQ(l.area(), 3);
}

TEST(GridLayout, RejectsOverlappingWires) {
  GraphBuilder gb(3);
  gb.add_edge(0, 1);
  gb.add_edge(0, 2);
  const Graph g = std::move(gb).build();
  GridLayout l;
  l.position = {{0, 0}, {3, 0}, {2, 0}};
  l.wire = {{{0, 0}, {3, 0}}, {{0, 0}, {2, 0}}};  // collinear overlap
  EXPECT_THROW(validate_layout(g, l), PreconditionError);
}

TEST(GridLayout, AllowsPerpendicularCrossing) {
  GraphBuilder gb(4);
  gb.add_edge(0, 1);
  gb.add_edge(2, 3);
  const Graph g = std::move(gb).build();
  GridLayout l;
  l.position = {{-1, 0}, {1, 0}, {0, -1}, {0, 1}};
  l.wire = {{{-1, 0}, {1, 0}}, {{0, -1}, {0, 1}}};
  EXPECT_NO_THROW(validate_layout(g, l));
}

TEST(GridLayout, RejectsWireThroughForeignNode) {
  GraphBuilder gb(3);
  gb.add_edge(0, 1);
  const Graph g = std::move(gb).build();
  GridLayout l;
  l.position = {{0, 0}, {4, 0}, {2, 0}};  // node 2 sits on the wire
  l.wire = {{{0, 0}, {4, 0}}};
  EXPECT_THROW(validate_layout(g, l), PreconditionError);
}

TEST(GridLayout, RejectsDetachedWire) {
  GraphBuilder gb(2);
  gb.add_edge(0, 1);
  const Graph g = std::move(gb).build();
  GridLayout l;
  l.position = {{0, 0}, {2, 0}};
  l.wire = {{{0, 0}, {1, 0}}};
  EXPECT_THROW(validate_layout(g, l), PreconditionError);
}

TEST(ButterflyLayout, ValidAcrossSizes) {
  for (const std::uint32_t n : {2u, 4u, 8u, 16u, 32u}) {
    const topo::Butterfly bf(n);
    const auto l = layout_butterfly(bf);
    EXPECT_NO_THROW(validate_layout(bf.graph(), l)) << "n=" << n;
  }
}

TEST(ButterflyLayout, AreaScalesQuadratically) {
  // Width is ~4n and height ~2n + log n: the quadratic scaling of the
  // Section 1.1 fact, with an explicit constant.
  double prev_ratio = 0.0;
  for (const std::uint32_t n : {8u, 16u, 32u, 64u}) {
    const topo::Butterfly bf(n);
    const auto l = layout_butterfly(bf);
    const double ratio =
        static_cast<double>(l.area()) / (static_cast<double>(n) * n);
    EXPECT_LT(ratio, 10.0) << "n=" << n;   // small constant
    EXPECT_GT(ratio, 1.0) << "n=" << n;    // cannot beat the optimal n^2
    if (prev_ratio != 0.0) {
      EXPECT_NEAR(ratio, prev_ratio, 2.0);  // stabilizing constant
    }
    prev_ratio = ratio;
  }
}

TEST(ButterflyLayout, SatisfiesThompsonBound) {
  // A >= BW(Bn)^2, with BW = n at these sizes (folklore value, exact for
  // n <= 8).
  for (const std::uint32_t n : {4u, 8u, 16u}) {
    const topo::Butterfly bf(n);
    const auto l = layout_butterfly(bf);
    EXPECT_GE(l.area(), thompson_area_lower_bound(n)) << "n=" << n;
  }
}

}  // namespace
}  // namespace bfly::layout
