// Tests for the network generators: structure, counts, degrees, and the
// paper's Section 1.1 / Section 2 structural lemmas on concrete sizes.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "algo/components.hpp"
#include "algo/isomorphism.hpp"
#include "core/error.hpp"
#include "topology/benes.hpp"
#include "topology/butterfly.hpp"
#include "topology/ccc.hpp"
#include "topology/complete.hpp"
#include "topology/debruijn.hpp"
#include "topology/hypercube.hpp"
#include "topology/labels.hpp"
#include "topology/mesh_of_stars.hpp"
#include "topology/shuffle_exchange.hpp"
#include "topology/wrapped_butterfly.hpp"

namespace bfly::topo {
namespace {

TEST(Labels, BitHelpers) {
  EXPECT_EQ(bit_mask(3, 1), 4u);  // MSB is position 1
  EXPECT_EQ(bit_mask(3, 3), 1u);
  EXPECT_EQ(bit_at(0b101, 3, 1), 1u);
  EXPECT_EQ(bit_at(0b101, 3, 2), 0u);
  EXPECT_EQ(reverse_bits(0b110, 3), 0b011u);
  EXPECT_EQ(rotate_positions(0b100, 3, 1), 0b010u);
  EXPECT_EQ(rotate_positions(0b001, 3, 1), 0b100u);
  EXPECT_EQ(rotate_positions(0b101, 3, 3), 0b101u);
}

TEST(Butterfly, CountsMatchPaper) {
  // Figure 1: B8 has N = 32 nodes in 4 levels of 8.
  const Butterfly b8(8);
  EXPECT_EQ(b8.n(), 8u);
  EXPECT_EQ(b8.dims(), 3u);
  EXPECT_EQ(b8.num_levels(), 4u);
  EXPECT_EQ(b8.num_nodes(), 32u);
  EXPECT_EQ(b8.graph().num_edges(), 2u * 8u * 3u);  // 2n per boundary
}

TEST(Butterfly, DegreesByLevel) {
  const Butterfly b8(8);
  for (std::uint32_t w = 0; w < 8; ++w) {
    EXPECT_EQ(b8.graph().degree(b8.node(w, 0)), 2u);
    EXPECT_EQ(b8.graph().degree(b8.node(w, 3)), 2u);
    EXPECT_EQ(b8.graph().degree(b8.node(w, 1)), 4u);
    EXPECT_EQ(b8.graph().degree(b8.node(w, 2)), 4u);
  }
}

TEST(Butterfly, EdgeStructure) {
  const Butterfly b8(8);
  // <w, i> ~ <w', i+1> iff w == w' or they differ in paper bit i+1.
  EXPECT_TRUE(b8.graph().has_edge(b8.node(0, 0), b8.node(0, 1)));
  EXPECT_TRUE(b8.graph().has_edge(b8.node(0, 0), b8.node(4, 1)));  // bit 1
  EXPECT_FALSE(b8.graph().has_edge(b8.node(0, 0), b8.node(2, 1)));
  EXPECT_TRUE(b8.graph().has_edge(b8.node(0, 1), b8.node(2, 2)));  // bit 2
  EXPECT_TRUE(b8.graph().has_edge(b8.node(0, 2), b8.node(1, 3)));  // bit 3
  EXPECT_FALSE(b8.graph().has_edge(b8.node(0, 0), b8.node(0, 2)));
}

TEST(Butterfly, MonotonicPathUniqueAndValid) {
  // Lemma 2.3: unique monotonic input-output path; check validity and
  // endpoints for all pairs in B16.
  const Butterfly bf(16);
  for (std::uint32_t in = 0; in < 16; ++in) {
    for (std::uint32_t out = 0; out < 16; ++out) {
      const auto path = bf.monotonic_path(in, out);
      ASSERT_EQ(path.size(), bf.dims() + 1);
      EXPECT_EQ(path.front(), bf.node(in, 0));
      EXPECT_EQ(path.back(), bf.node(out, bf.dims()));
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        EXPECT_TRUE(bf.graph().has_edge(path[i], path[i + 1]));
      }
    }
  }
}

TEST(Butterfly, MonotonicPathCountsViaAdjacency) {
  // Uniqueness (Lemma 2.3): the number of monotonic paths from an input
  // to an output equals 1 = product of choices forced per level.
  const Butterfly bf(8);
  // Count paths from <0,0> to each output by dynamic programming.
  std::vector<std::uint32_t> ways(bf.n(), 0);
  ways[0] = 1;
  for (std::uint32_t b = 0; b < bf.dims(); ++b) {
    std::vector<std::uint32_t> next(bf.n(), 0);
    const std::uint32_t mask = bf.cross_mask(b);
    for (std::uint32_t w = 0; w < bf.n(); ++w) {
      next[w] += ways[w];
      next[w ^ mask] += ways[w];
    }
    ways = next;
  }
  for (std::uint32_t w = 0; w < bf.n(); ++w) EXPECT_EQ(ways[w], 1u);
}

TEST(Butterfly, Lemma24Components) {
  // Bn[i,j] has n/2^(j-i) components, each isomorphic to B_{2^(j-i)}.
  const Butterfly bf(16);
  for (std::uint32_t lo = 0; lo <= 4; ++lo) {
    for (std::uint32_t hi = lo; hi <= 4; ++hi) {
      const std::uint32_t expect_comps = 16u >> (hi - lo);
      EXPECT_EQ(bf.num_components(lo, hi), expect_comps);
      // Columns of all components partition [0, n).
      std::set<std::uint32_t> all;
      for (std::uint32_t c = 0; c < expect_comps; ++c) {
        for (const auto col : bf.component_columns(c, lo, hi)) {
          EXPECT_TRUE(all.insert(col).second);
          EXPECT_EQ(bf.component_id(col, lo, hi), c);
        }
      }
      EXPECT_EQ(all.size(), 16u);
    }
  }
}

TEST(Butterfly, Lemma24ComponentIsomorphicToSmallerButterfly) {
  const Butterfly bf(16);
  // Component 0 of B16[1,3] should be isomorphic to B4 as a graph.
  const auto nodes = bf.component_nodes(0, 1, 3);
  EXPECT_EQ(nodes.size(), 4u * 3u);
  // Check it is connected and 4-regular-ish (inputs/outputs degree 2).
  // Full isomorphism to B4 via the algo module:
  // (induced subgraph built by hand here to avoid a dependency cycle).
}

TEST(Butterfly, Lemma21LevelReversalIsAutomorphism) {
  const Butterfly bf(16);
  const Graph& g = bf.graph();
  // Bijectivity.
  std::set<NodeId> image;
  for (NodeId v = 0; v < bf.num_nodes(); ++v) {
    EXPECT_TRUE(image.insert(level_reversal(bf, v)).second);
  }
  // Edge preservation.
  for (const auto& [u, v] : g.edges()) {
    EXPECT_TRUE(g.has_edge(level_reversal(bf, u), level_reversal(bf, v)));
  }
  // Level i maps onto level log n - i.
  for (NodeId v = 0; v < bf.num_nodes(); ++v) {
    EXPECT_EQ(bf.level(level_reversal(bf, v)), bf.dims() - bf.level(v));
  }
}

TEST(Butterfly, Lemma22LevelPreservingAutomorphisms) {
  const Butterfly bf(8);
  const Graph& g = bf.graph();
  // Every (c0, flips) pair is an automorphism.
  for (std::uint32_t c0 = 0; c0 < 8; ++c0) {
    for (std::uint32_t flips = 0; flips < 8; ++flips) {
      const ButterflyAutomorphism a(bf, c0, flips);
      std::set<NodeId> image;
      for (NodeId v = 0; v < bf.num_nodes(); ++v) {
        const NodeId av = a.apply(v);
        EXPECT_EQ(bf.level(av), bf.level(v));
        EXPECT_TRUE(image.insert(av).second);
      }
      for (const auto& [u, v] : g.edges()) {
        EXPECT_TRUE(g.has_edge(a.apply(u), a.apply(v)));
      }
    }
  }
}

TEST(Butterfly, Lemma22MapsAnyEdgePairAligned) {
  const Butterfly bf(8);
  const Graph& g = bf.graph();
  // For every pair of boundary-0 edges, an automorphism maps one to the
  // other endpoint-wise.
  std::vector<std::pair<NodeId, NodeId>> boundary0;
  for (const auto& [u, v] : g.edges()) {
    if (bf.level(u) == 0 && bf.level(v) == 1) boundary0.emplace_back(u, v);
  }
  ASSERT_EQ(boundary0.size(), 16u);
  for (const auto& [u1, v1] : boundary0) {
    for (const auto& [u2, v2] : boundary0) {
      const auto a =
          ButterflyAutomorphism::mapping_edge(bf, u1, v1, u2, v2);
      EXPECT_EQ(a.apply(u1), u2);
      EXPECT_EQ(a.apply(v1), v2);
    }
  }
}

TEST(WrappedButterfly, CountsAndDegrees) {
  const WrappedButterfly w8(8);
  EXPECT_EQ(w8.num_nodes(), 24u);          // n log n
  EXPECT_EQ(w8.graph().num_edges(), 48u);  // 2n per boundary, d boundaries
  for (NodeId v = 0; v < w8.num_nodes(); ++v) {
    EXPECT_EQ(w8.graph().degree(v), 4u);  // every node has 4 neighbors
  }
}

TEST(WrappedButterfly, W4HasParallelEdges) {
  const WrappedButterfly w4(4);
  EXPECT_EQ(w4.num_nodes(), 8u);
  EXPECT_EQ(w4.graph().num_edges(), 16u);
  // Straight edges doubled between the two levels.
  EXPECT_EQ(w4.graph().edge_multiplicity(w4.node(0, 0), w4.node(0, 1)), 2u);
}

TEST(WrappedButterfly, LevelShiftIsAutomorphism) {
  const WrappedButterfly wb(16);
  const Graph& g = wb.graph();
  for (std::uint32_t s = 0; s < wb.dims(); ++s) {
    std::set<NodeId> image;
    for (NodeId v = 0; v < wb.num_nodes(); ++v) {
      EXPECT_TRUE(image.insert(wb.level_shift(v, s)).second);
    }
    for (const auto& [u, v] : g.edges()) {
      EXPECT_TRUE(g.has_edge(wb.level_shift(u, s), wb.level_shift(v, s)));
    }
  }
}

TEST(WrappedButterfly, ColumnXorIsAutomorphism) {
  const WrappedButterfly wb(8);
  const Graph& g = wb.graph();
  for (std::uint32_t c = 0; c < 8; ++c) {
    for (const auto& [u, v] : g.edges()) {
      EXPECT_TRUE(g.has_edge(wb.column_xor(u, c), wb.column_xor(v, c)));
    }
  }
}

TEST(CCC, CountsAndDegrees) {
  const CubeConnectedCycles c8(8);
  EXPECT_EQ(c8.num_nodes(), 24u);
  // 3 cycle edges per cycle * 8 cycles + 3 * 4 cube edges.
  EXPECT_EQ(c8.graph().num_edges(), 24u + 12u);
  for (NodeId v = 0; v < c8.num_nodes(); ++v) {
    EXPECT_EQ(c8.graph().degree(v), 3u);
  }
}

TEST(CCC, CubeEdgesMatchPositions) {
  const CubeConnectedCycles c8(8);
  // <w, i> ~ <w ^ mask(i), i>.
  for (std::uint32_t w = 0; w < 8; ++w) {
    for (std::uint32_t i = 0; i < 3; ++i) {
      EXPECT_TRUE(c8.graph().has_edge(c8.node(w, i),
                                      c8.node(w ^ c8.cube_mask(i), i)));
    }
  }
}

TEST(Benes, CountsAndMirrorStructure) {
  const Benes b(8);
  EXPECT_EQ(b.num_levels(), 7u);
  EXPECT_EQ(b.num_nodes(), 56u);
  EXPECT_EQ(b.graph().num_edges(), 2u * 8u * 6u);
  // Middle boundaries flip the same (last) bit.
  EXPECT_EQ(b.cross_mask(2), b.cross_mask(3));
  EXPECT_EQ(b.cross_mask(0), b.cross_mask(5));
}

TEST(MeshOfStars, Structure) {
  const MeshOfStars mos(3, 4);
  EXPECT_EQ(mos.num_nodes(), 3u + 12u + 4u);
  EXPECT_EQ(mos.graph().num_edges(), 2u * 12u);
  for (std::uint32_t a = 0; a < 3; ++a) {
    EXPECT_EQ(mos.graph().degree(mos.m1_node(a)), 4u);
    EXPECT_EQ(mos.level_of(mos.m1_node(a)), 1);
  }
  for (std::uint32_t b = 0; b < 4; ++b) {
    EXPECT_EQ(mos.graph().degree(mos.m3_node(b)), 3u);
    EXPECT_EQ(mos.level_of(mos.m3_node(b)), 3);
  }
  for (std::uint32_t a = 0; a < 3; ++a) {
    for (std::uint32_t b = 0; b < 4; ++b) {
      EXPECT_EQ(mos.graph().degree(mos.m2_node(a, b)), 2u);
      EXPECT_EQ(mos.level_of(mos.m2_node(a, b)), 2);
      EXPECT_TRUE(mos.graph().has_edge(mos.m1_node(a), mos.m2_node(a, b)));
      EXPECT_TRUE(mos.graph().has_edge(mos.m2_node(a, b), mos.m3_node(b)));
    }
  }
}

TEST(Hypercube, Structure) {
  const Hypercube q4(4);
  EXPECT_EQ(q4.num_nodes(), 16u);
  EXPECT_EQ(q4.graph().num_edges(), 32u);
  for (NodeId v = 0; v < 16; ++v) EXPECT_EQ(q4.graph().degree(v), 4u);
}

TEST(Complete, GraphAndBipartite) {
  const Graph k5 = complete_graph(5);
  EXPECT_EQ(k5.num_edges(), 10u);
  const Graph k5x2 = complete_graph(5, 2);
  EXPECT_EQ(k5x2.num_edges(), 20u);
  EXPECT_EQ(k5x2.edge_multiplicity(0, 1), 2u);
  const Graph k34 = complete_bipartite(3, 4);
  EXPECT_EQ(k34.num_edges(), 12u);
  EXPECT_FALSE(k34.has_edge(0, 1));
  EXPECT_TRUE(k34.has_edge(0, 3));
}

TEST(ShuffleExchange, Structure) {
  const ShuffleExchange se(3);
  EXPECT_EQ(se.num_nodes(), 8u);
  // 4 exchange edges; shuffle: necklaces {0},{7} self loops skipped,
  // {1,2,4} gives 3 edges, {3,6,5} gives 3 edges -> 6 shuffle edges.
  EXPECT_EQ(se.graph().num_edges(), 10u);
  EXPECT_TRUE(se.graph().has_edge(0, 1));        // exchange
  EXPECT_TRUE(se.graph().has_edge(1, 2));        // shuffle: 001 -> 010
  EXPECT_TRUE(se.graph().has_edge(5, 3));        // 101 -> 011
}

TEST(DeBruijn, Structure) {
  const DeBruijn db(3);
  EXPECT_EQ(db.num_nodes(), 8u);
  EXPECT_TRUE(db.graph().has_edge(1, 2));  // 001 -> 010
  EXPECT_TRUE(db.graph().has_edge(1, 3));  // 001 -> 011
  EXPECT_FALSE(db.graph().has_edge(0, 7));
  // Connected.
  EXPECT_TRUE(algo::is_connected(db.graph()));
}

TEST(Networks, Preconditions) {
  EXPECT_THROW(Butterfly(3), PreconditionError);
  EXPECT_THROW(Butterfly(1), PreconditionError);
  EXPECT_THROW(WrappedButterfly(2), PreconditionError);
  EXPECT_THROW(CubeConnectedCycles(2), PreconditionError);
  EXPECT_THROW(MeshOfStars(0, 3), PreconditionError);
}

TEST(Networks, AllConnected) {
  EXPECT_TRUE(algo::is_connected(Butterfly(16).graph()));
  EXPECT_TRUE(algo::is_connected(WrappedButterfly(16).graph()));
  EXPECT_TRUE(algo::is_connected(CubeConnectedCycles(16).graph()));
  EXPECT_TRUE(algo::is_connected(Benes(8).graph()));
  EXPECT_TRUE(algo::is_connected(MeshOfStars(4, 4).graph()));
  EXPECT_TRUE(algo::is_connected(Hypercube(5).graph()));
  EXPECT_TRUE(algo::is_connected(ShuffleExchange(4).graph()));
}

}  // namespace
}  // namespace bfly::topo
