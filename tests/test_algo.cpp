// Tests for the algorithms library: BFS, components, exact diameters
// (the Section 1.1 facts), subgraphs, spectral machinery, isomorphism.
#include <gtest/gtest.h>

#include <cmath>

#include "algo/bfs.hpp"
#include "algo/components.hpp"
#include "algo/diameter.hpp"
#include "algo/isomorphism.hpp"
#include "algo/spectral.hpp"
#include "algo/subgraph.hpp"
#include "topology/butterfly.hpp"
#include "topology/ccc.hpp"
#include "topology/hypercube.hpp"
#include "topology/wrapped_butterfly.hpp"

namespace bfly::algo {
namespace {

Graph path_graph(NodeId n) {
  GraphBuilder gb(n);
  for (NodeId v = 0; v + 1 < n; ++v) gb.add_edge(v, v + 1);
  return std::move(gb).build();
}

TEST(Bfs, DistancesOnPath) {
  const Graph g = path_graph(5);
  const auto d = bfs_distances(g, 0);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(d[v], v);
  EXPECT_EQ(eccentricity(g, 0), 4u);
  EXPECT_EQ(eccentricity(g, 2), 2u);
}

TEST(Bfs, MultiSource) {
  const Graph g = path_graph(7);
  const NodeId sources[] = {0, 6};
  const auto d = bfs_distances(g, sources);
  EXPECT_EQ(d[3], 3u);
  EXPECT_EQ(d[1], 1u);
  EXPECT_EQ(d[5], 1u);
}

TEST(Bfs, UnreachableAndShortestPath) {
  GraphBuilder gb(4);
  gb.add_edge(0, 1);
  gb.add_edge(2, 3);
  const Graph g = std::move(gb).build();
  const auto d = bfs_distances(g, 0);
  EXPECT_EQ(d[2], kUnreachable);
  EXPECT_TRUE(shortest_path(g, 0, 3).empty());
  const auto p = shortest_path(g, 0, 1);
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p.front(), 0u);
  EXPECT_EQ(p.back(), 1u);
}

TEST(Bfs, ShortestPathOnButterfly) {
  const topo::Butterfly bf(8);
  for (NodeId v = 0; v < bf.num_nodes(); v += 3) {
    const auto p = shortest_path(bf.graph(), 0, v);
    ASSERT_FALSE(p.empty());
    for (std::size_t i = 0; i + 1 < p.size(); ++i) {
      EXPECT_TRUE(bf.graph().has_edge(p[i], p[i + 1]));
    }
    EXPECT_EQ(p.size() - 1, bfs_distances(bf.graph(), 0)[v]);
  }
}

TEST(Components, CountsAndMembers) {
  const topo::Butterfly bf(16);
  // Lemma 2.4: Bn[lo, hi] splits into n/2^(hi-lo) components.
  for (std::uint32_t lo = 0; lo <= 4; ++lo) {
    for (std::uint32_t hi = lo; hi <= 4; ++hi) {
      std::vector<NodeId> nodes;
      for (std::uint32_t lvl = lo; lvl <= hi; ++lvl) {
        for (std::uint32_t w = 0; w < 16; ++w) {
          nodes.push_back(bf.node(w, lvl));
        }
      }
      const auto sub = induced_subgraph(bf.graph(), nodes);
      const auto comp = connected_components(sub.graph);
      EXPECT_EQ(comp.count, 16u >> (hi - lo))
          << "lo=" << lo << " hi=" << hi;
      for (const auto s : comp.sizes()) {
        EXPECT_EQ(s, static_cast<std::size_t>(hi - lo + 1) << (hi - lo));
      }
    }
  }
}

TEST(Diameter, PaperSection11Facts) {
  // diameter(Bn) = 2 log n.
  for (const std::uint32_t n : {4u, 8u, 16u, 32u}) {
    const topo::Butterfly bf(n);
    EXPECT_EQ(diameter(bf.graph()), 2 * bf.dims()) << "Bn n=" << n;
  }
  // diameter(Wn) = floor(3 log n / 2).
  for (const std::uint32_t n : {8u, 16u, 32u, 64u}) {
    const topo::WrappedButterfly wb(n);
    EXPECT_EQ(diameter(wb.graph()), 3 * wb.dims() / 2) << "Wn n=" << n;
  }
  // Hypercube: d.
  EXPECT_EQ(diameter(topo::Hypercube(5).graph()), 5u);
}

TEST(Diameter, DisconnectedReportsUnreachable) {
  GraphBuilder gb(4);
  gb.add_edge(0, 1);
  const Graph g = std::move(gb).build();
  EXPECT_EQ(diameter(g), kUnreachable);
}

TEST(Subgraph, PreservesEdgesAndMaps) {
  const topo::Butterfly bf(8);
  const std::vector<NodeId> nodes = {bf.node(0, 0), bf.node(0, 1),
                                     bf.node(4, 1), bf.node(2, 2)};
  const auto sub = induced_subgraph(bf.graph(), nodes);
  EXPECT_EQ(sub.graph.num_nodes(), 4u);
  // Edges among included nodes: (0,0)-(0,1), (0,0)-(4,1), (0,1)-(2,2).
  EXPECT_EQ(sub.graph.num_edges(), 3u);
  EXPECT_EQ(sub.to_original[sub.to_sub[bf.node(0, 0)]], bf.node(0, 0));
}

TEST(Spectral, FiedlerOfPathSplitsMiddle) {
  const Graph g = path_graph(8);
  const auto f = fiedler_vector(g);
  // Fiedler vector of a path is monotone: one sign change at the middle.
  int sign_changes = 0;
  for (NodeId v = 0; v + 1 < 8; ++v) {
    if ((f.vector[v] < 0) != (f.vector[v + 1] < 0)) ++sign_changes;
  }
  EXPECT_EQ(sign_changes, 1);
  // lambda_2 of P8 = 2(1 - cos(pi/8)).
  EXPECT_NEAR(f.eigenvalue, 2.0 * (1.0 - std::cos(M_PI / 8)), 1e-4);
}

TEST(Spectral, LaplacianQuadratic) {
  const Graph g = path_graph(3);
  EXPECT_DOUBLE_EQ(laplacian_quadratic(g, {0.0, 1.0, 3.0}), 1.0 + 4.0);
}

TEST(Isomorphism, ButterflyComponentsMatchSmallerButterfly) {
  // Lemma 2.4's isomorphism claim, machine-checked: every component of
  // B16[1,3] is isomorphic to B4.
  const topo::Butterfly b16(16);
  const topo::Butterfly b4(4);
  for (std::uint32_t c = 0; c < b16.num_components(1, 3); ++c) {
    const auto nodes = b16.component_nodes(c, 1, 3);
    const auto sub = induced_subgraph(b16.graph(), nodes);
    EXPECT_TRUE(are_isomorphic(sub.graph, b4.graph())) << "component " << c;
  }
}

TEST(Isomorphism, DistinguishesNonIsomorphic) {
  const Graph p4 = path_graph(4);
  GraphBuilder gb(4);
  gb.add_edge(0, 1);
  gb.add_edge(1, 2);
  gb.add_edge(1, 3);
  const Graph star = std::move(gb).build();
  EXPECT_FALSE(are_isomorphic(p4, star));
  EXPECT_NE(wl_certificate(p4), wl_certificate(star));
}

TEST(Isomorphism, RelabeledButterfliesMatch) {
  // Apply a random-looking relabeling to B8 and confirm isomorphism.
  const topo::Butterfly bf(8);
  const NodeId n = bf.num_nodes();
  std::vector<NodeId> perm(n);
  for (NodeId v = 0; v < n; ++v) perm[v] = (v * 13 + 5) % n;
  GraphBuilder gb(n);
  for (const auto& [u, v] : bf.graph().edges()) gb.add_edge(perm[u], perm[v]);
  const Graph relabeled = std::move(gb).build();
  EXPECT_TRUE(are_isomorphic(bf.graph(), relabeled));
}

TEST(Isomorphism, CertificateStableAcrossConstruction) {
  EXPECT_EQ(wl_certificate(topo::Butterfly(8).graph()),
            wl_certificate(topo::Butterfly(8).graph()));
}

TEST(Isomorphism, MultigraphMultiplicityMatters) {
  GraphBuilder a(2);
  a.add_edge(0, 1);
  a.add_edge(0, 1);
  GraphBuilder b(2);
  b.add_edge(0, 1);
  const Graph ga = std::move(a).build();
  const Graph gb2 = std::move(b).build();
  EXPECT_FALSE(are_isomorphic(ga, gb2));
}

}  // namespace
}  // namespace bfly::algo
