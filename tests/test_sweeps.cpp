// Additional parameterized property sweeps across instance families:
// embedding metrics, Beneš routing, credit schemes, MOS constructions,
// Lemma 2.16 pipelines, and packet-simulator laws.
#include <gtest/gtest.h>

#include <numeric>

#include "core/rng.hpp"
#include "cut/constructive.hpp"
#include "cut/bisection.hpp"
#include "cut/mos_theory.hpp"
#include "embed/embedding.hpp"
#include "embed/factory.hpp"
#include "expansion/constructive_sets.hpp"
#include "expansion/credit_scheme.hpp"
#include "routing/benes_route.hpp"
#include "routing/butterfly_routing.hpp"
#include "routing/packet_sim.hpp"
#include "topology/benes.hpp"
#include "topology/butterfly.hpp"
#include "topology/ccc.hpp"
#include "topology/mesh_of_stars.hpp"
#include "topology/wrapped_butterfly.hpp"

namespace bfly {
namespace {

// ------------------------------------------------ embedding metrics --

class EmbeddingSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(EmbeddingSweep, KnnIntoBnMetrics) {
  const topo::Butterfly bf(GetParam());
  const auto c = embed::knn_into_bn(bf);
  const auto m = embed::measure_embedding(c.guest, c.host, c.emb);
  EXPECT_EQ(m.load, 1u);
  EXPECT_EQ(m.congestion, GetParam() / 2);
  EXPECT_EQ(m.dilation, bf.dims());
}

TEST_P(EmbeddingSweep, BenesFoldMetrics) {
  const topo::Butterfly bf(GetParam());
  const auto c = embed::benes_into_bn(bf);
  const auto m = embed::measure_embedding(c.guest, c.host, c.emb);
  EXPECT_EQ(m.load, 1u);
  EXPECT_EQ(m.congestion, 1u);
  EXPECT_EQ(m.dilation, 3u);
}

TEST_P(EmbeddingSweep, WnIntoCccMetrics) {
  const topo::CubeConnectedCycles cc(GetParam());
  const auto c = embed::wn_into_ccc(cc);
  const auto m = embed::measure_embedding(c.guest, c.host, c.emb);
  EXPECT_EQ(m.load, 1u);
  EXPECT_EQ(m.congestion, 2u);
}

TEST_P(EmbeddingSweep, DoubledCompleteLoadOne) {
  const topo::Butterfly bf(GetParam());
  const auto c = embed::k2n_into_bn(bf);
  const auto m = embed::measure_embedding(c.guest, c.host, c.emb);
  EXPECT_EQ(m.load, 1u);
  EXPECT_EQ(c.guest.num_edges(),
            static_cast<std::size_t>(bf.num_nodes()) *
                (bf.num_nodes() - 1));
}

INSTANTIATE_TEST_SUITE_P(Sweep, EmbeddingSweep,
                         ::testing::Values(4u, 8u, 16u, 32u));

// --------------------------------------------- Lemma 2.10 parameters --

class Lemma210Sweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t,
                                                 std::uint32_t>> {};

TEST_P(Lemma210Sweep, CongestionExactlyTwoToJ) {
  const auto [i, j] = GetParam();
  const topo::Butterfly bf(16);
  if (i > bf.dims()) GTEST_SKIP();
  const auto c = embed::bk_into_bn(bf, i, j);
  const auto m = embed::measure_embedding(c.guest, c.host, c.emb);
  EXPECT_EQ(m.congestion, 1u << j);
  EXPECT_LE(m.dilation, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Lemma210Sweep,
    ::testing::Combine(::testing::Values(0u, 1u, 2u, 4u),
                       ::testing::Values(0u, 1u, 2u)));

// ----------------------------------------------------- Beneš sweeps --

class BenesSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(BenesSweep, WireAndTwoPortRoutingsAreValid) {
  const std::uint32_t n = GetParam();
  const topo::Benes benes(n);
  Rng rng(n);
  std::vector<std::uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  shuffle(perm, rng);
  const auto wire = routing::route_permutation(benes, perm);
  for (std::uint32_t l = 0; l <= 2 * benes.dims(); ++l) {
    std::set<NodeId> seen;
    for (const auto& p : wire.paths) {
      ASSERT_TRUE(seen.insert(p[l]).second);
    }
  }

  std::vector<std::uint32_t> pperm(2 * n);
  std::iota(pperm.begin(), pperm.end(), 0);
  shuffle(pperm, rng);
  const auto two = routing::route_two_port_permutation(benes, pperm);
  std::set<std::pair<NodeId, NodeId>> used;
  for (const auto& p : two.paths) {
    for (std::size_t x = 0; x + 1 < p.size(); ++x) {
      ASSERT_TRUE(used.insert({p[x], p[x + 1]}).second);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BenesSweep,
                         ::testing::Values(2u, 4u, 8u, 16u, 64u, 128u));

// ------------------------------------------------ credit conservation --

class CreditSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(CreditSweep, AllFourSchemesConserveAndRespectCaps) {
  const std::uint32_t n = GetParam();
  const topo::WrappedButterfly wb(n);
  const topo::Butterfly bf(n);
  Rng rng(n * 3 + 1);
  for (int trial = 0; trial < 10; ++trial) {
    // Random connected-ish set of moderate size.
    const std::size_t k = 2 + rng.below(wb.num_nodes() / 3);
    std::vector<NodeId> wset, bset;
    std::vector<std::uint8_t> seen_w(wb.num_nodes(), 0),
        seen_b(bf.num_nodes(), 0);
    while (wset.size() < k) {
      const NodeId v = static_cast<NodeId>(rng.below(wb.num_nodes()));
      if (!seen_w[v]) {
        seen_w[v] = 1;
        wset.push_back(v);
      }
    }
    while (bset.size() < k) {
      const NodeId v = static_cast<NodeId>(rng.below(bf.num_nodes()));
      if (!seen_b[v]) {
        seen_b[v] = 1;
        bset.push_back(v);
      }
    }
    for (const auto& rep :
         {expansion::credit_edge_wn(wb, wset),
          expansion::credit_node_wn(wb, wset),
          expansion::credit_edge_bn(bf, bset),
          expansion::credit_node_bn(bf, bset)}) {
      ASSERT_NEAR(rep.retained_by_boundary + rep.retained_elsewhere,
                  static_cast<double>(k), 1e-9);
      ASSERT_LE(rep.implied_lower_bound,
                static_cast<double>(rep.actual_boundary) + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CreditSweep,
                         ::testing::Values(8u, 16u, 32u));

// -------------------------------------------------------- MOS sweeps --

class MosSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(MosSweep, ConstructionMatchesClosedForm) {
  const std::uint32_t j = GetParam();
  const topo::MeshOfStars mos(j, j);
  const auto cutres = cut::mos_m2_bisection_cut(mos);
  EXPECT_EQ(cutres.capacity, cut::mos_m2_bisection_value(j).capacity);
  EXPECT_TRUE(cut::bisects_subset(cutres.sides, mos.m2_nodes()));
}

INSTANTIATE_TEST_SUITE_P(Sweep, MosSweep,
                         ::testing::Values(2u, 4u, 8u, 12u, 20u, 32u, 64u));

// ---------------------------------------------- Lemma 2.16 pipelines --

class Lemma216Sweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t,
                                                 std::uint32_t>> {};

TEST_P(Lemma216Sweep, AlwaysAGenuineBisection) {
  const auto [n, j] = GetParam();
  if (static_cast<std::uint64_t>(j) * j > n) GTEST_SKIP();
  const topo::Butterfly bf(n);
  const auto res = cut::lemma216_bisection(bf, j);
  EXPECT_TRUE(cut::is_bisection(res.cut.sides));
  EXPECT_NO_THROW(cut::validate_cut(bf.graph(), res.cut));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Lemma216Sweep,
    ::testing::Combine(::testing::Values(16u, 64u, 256u),
                       ::testing::Values(2u, 4u)));

// -------------------------------------------------- packet-sim laws --

class PacketSimLaws : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PacketSimLaws, MakespanDominatesLoadAndLength) {
  const topo::Butterfly bf(16);
  Rng rng(GetParam());
  std::vector<std::vector<NodeId>> paths;
  std::size_t longest = 0;
  for (int p = 0; p < 60; ++p) {
    const NodeId s = static_cast<NodeId>(rng.below(bf.num_nodes()));
    const NodeId t = static_cast<NodeId>(rng.below(bf.num_nodes()));
    auto path = routing::route_bn(bf, s, t);
    longest = std::max(longest, path.size() - 1);
    paths.push_back(std::move(path));
  }
  const auto res = routing::simulate_store_and_forward(bf.graph(), paths);
  EXPECT_EQ(res.delivered, paths.size());
  EXPECT_GE(res.makespan, longest);
  EXPECT_GE(res.makespan, res.max_link_load);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PacketSimLaws,
                         ::testing::Values(11u, 22u, 33u, 44u));

}  // namespace
}  // namespace bfly
