// End-to-end Lemma 2.13 chain: every intermediate equality of the
// paper's lower-bound machinery, numerically verified.
#include <gtest/gtest.h>

#include "core/rng.hpp"
#include "cut/branch_bound.hpp"
#include "cut/constructive.hpp"
#include "cut/lemma213.hpp"
#include "topology/butterfly.hpp"

namespace bfly::cut {
namespace {

std::vector<std::uint8_t> random_bisection(NodeId n, Rng& rng) {
  std::vector<NodeId> perm(n);
  for (NodeId v = 0; v < n; ++v) perm[v] = v;
  shuffle(perm, rng);
  std::vector<std::uint8_t> sides(n, 0);
  for (NodeId i = n / 2; i < n; ++i) sides[perm[i]] = 1;
  return sides;
}

TEST(Lemma213, ChainFromFolkloreCut) {
  for (const std::uint32_t n : {2u, 4u, 8u}) {
    const topo::Butterfly bf(n);
    const auto cs = column_split_bisection(bf);
    const auto trace = lemma213_chain(bf, cs.sides);
    EXPECT_EQ(trace.input_capacity, n);
    EXPECT_EQ(trace.lifted_capacity, n * trace.level_cut_capacity);
    EXPECT_EQ(2 * trace.mos_capacity, trace.compacted_capacity);
    EXPECT_GE(trace.mos_capacity, trace.mos_optimum);
    EXPECT_TRUE(trace.chain_holds) << "n=" << n;
  }
}

TEST(Lemma213, ChainFromOptimalBisectionOfB8) {
  const topo::Butterfly bf(8);
  BranchBoundOptions opts;
  opts.initial_bound = 8;
  const auto exact = min_bisection_branch_bound(bf.graph(), opts);
  const auto trace = lemma213_chain(bf, exact.sides);
  EXPECT_EQ(trace.input_capacity, 8u);
  EXPECT_TRUE(trace.chain_holds);
  // The chain delivers the Lemma 2.13 inequality with the analytic
  // optimum: 2 * BW(MOS_{8,8}, M2) = 56 <= 8 * 8 = 64.
  EXPECT_EQ(trace.mos_optimum, 28u);
}

TEST(Lemma213, ChainFromRandomBisections) {
  // Every step's invariant must hold whatever the starting bisection —
  // the internal BFLY_CHECKs fire on any violation.
  Rng rng(7);
  for (const std::uint32_t n : {4u, 8u}) {
    const topo::Butterfly bf(n);
    for (int trial = 0; trial < 10; ++trial) {
      const auto sides = random_bisection(bf.num_nodes(), rng);
      const auto trace = lemma213_chain(bf, sides);
      EXPECT_LE(trace.level_cut_capacity, trace.input_capacity);
      EXPECT_LE(trace.compacted_capacity, trace.lifted_capacity);
      EXPECT_TRUE(trace.chain_holds);
    }
  }
}

}  // namespace
}  // namespace bfly::cut
