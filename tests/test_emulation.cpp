// Emulation framework (Section 1.5): slowdown tracks the embedding's
// load+congestion+dilation, and SVG export of layouts is well-formed.
#include <gtest/gtest.h>

#include <sstream>

#include "layout/butterfly_layout.hpp"
#include "layout/svg.hpp"
#include "routing/emulation.hpp"
#include "topology/butterfly.hpp"
#include "topology/ccc.hpp"

namespace bfly {
namespace {

TEST(Emulation, CccEmulatesWnWithConstantSlowdown) {
  const topo::CubeConnectedCycles cc(16);
  const auto rep = routing::emulate_full_exchange(embed::wn_into_ccc(cc));
  // 2 messages per guest edge.
  EXPECT_EQ(rep.messages_per_step, 2 * 2u * 16u * 4u);
  EXPECT_GT(rep.step_makespan, 0u);
  // Constant-slowdown claim: within a small factor of l + c + d = 5.
  EXPECT_LE(rep.step_makespan, 4 * rep.lcd_reference);
}

TEST(Emulation, ButterflyEmulatesBenesAlmostLosslessly) {
  const topo::Butterfly bf(16);
  const auto rep =
      routing::emulate_full_exchange(embed::benes_into_bn(bf));
  // Congestion 1 embedding: the only contention is the two directions of
  // each guest edge sharing its 3-hop fold; makespan stays tiny.
  EXPECT_LE(rep.step_makespan, 8u);
}

TEST(Emulation, HypercubeEmulatesButterfly) {
  const topo::Butterfly bf(8);
  const auto rep =
      routing::emulate_full_exchange(embed::bn_into_hypercube(bf));
  EXPECT_LE(rep.step_makespan, 4 * rep.lcd_reference);
}

TEST(Emulation, CollapsedEmbeddingDeliversFreeMessages) {
  // Lemma 2.10 with j >= 1 collapses band edges to single host nodes:
  // those messages deliver at time 0 and the rest route normally.
  const topo::Butterfly bf(8);
  const auto rep =
      routing::emulate_full_exchange(embed::bk_into_bn(bf, 1, 1));
  EXPECT_GT(rep.messages_per_step, 0u);
  EXPECT_GT(rep.step_makespan, 0u);
}

TEST(Svg, WellFormedOutput) {
  const topo::Butterfly bf(4);
  const auto l = layout::layout_butterfly(bf);
  std::ostringstream os;
  layout::write_svg(os, l);
  const std::string svg = os.str();
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // One circle per node, one polyline per edge.
  std::size_t circles = 0, polylines = 0, pos = 0;
  while ((pos = svg.find("<circle", pos)) != std::string::npos) {
    ++circles;
    ++pos;
  }
  pos = 0;
  while ((pos = svg.find("<polyline", pos)) != std::string::npos) {
    ++polylines;
    ++pos;
  }
  EXPECT_EQ(circles, bf.num_nodes());
  EXPECT_EQ(polylines, bf.graph().num_edges());
}

TEST(Svg, EmptyLayout) {
  layout::GridLayout empty;
  std::ostringstream os;
  layout::write_svg(os, empty);
  EXPECT_NE(os.str().find("<svg"), std::string::npos);
}

}  // namespace
}  // namespace bfly
