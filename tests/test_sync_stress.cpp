// Dynamic twin of the static capability annotations (DESIGN.md §12):
// hammers the annotated primitives — the lock-striped transposition
// table, GuardedCell, and SharedIncumbent — from many threads and
// asserts schedule-independent invariants against serial ground truth.
// Runs in every flavor; under -DBFLY_SANITIZE=thread (`ctest -L tsan`)
// tsan additionally checks the lock discipline the annotations promise.
//
// The invariants are chosen to be exact under any interleaving:
//
//   * N threads inserting the SAME distinct-key set: insert-if-absent
//     counts only the winner of each per-key race, so stores == |keys|
//     no matter who wins.
//   * N threads then probing every key: each probe of a present key is
//     a hit, so hits == N * |keys| — N times the serial count.
//   * N threads bumping a GuardedCell counter K times each: the final
//     value is exactly N * K iff no increment was lost.
//   * N threads publishing capacities into a SharedIncumbent: the final
//     capacity is the global minimum, and the surviving side vector is
//     the one published with it.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <unordered_set>
#include <vector>

#include "core/rng.hpp"
#include "core/sync.hpp"
#include "core/thread_pool.hpp"
#include "cut/incumbent.hpp"
#include "cut/transposition.hpp"

namespace bfly {
namespace {

using cut::TranspositionTable;
using Key = TranspositionTable::Key;

constexpr unsigned kThreads = 8;

// Deterministic distinct keys; SplitMix64 is a bijection on 64-bit
// words, so pairing consecutive outputs never repeats a pair.
std::vector<Key> make_keys(std::size_t count, std::uint64_t seed) {
  SplitMix64 sm(seed);
  std::vector<Key> keys;
  keys.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t a = sm.next();
    const std::uint64_t b = sm.next();
    keys.emplace_back(a, b);
  }
  return keys;
}

TEST(SyncStress, StripedTableCountersMatchSerial) {
  const std::vector<Key> keys = make_keys(4096, 0xb15ec7ull);

  // Serial ground truth.
  std::uint64_t serial_hits = 0;
  {
    TranspositionTable serial(1 << 20);
    for (const Key& k : keys) serial.insert(k);
    ASSERT_EQ(serial.stores(), keys.size());
    for (const Key& k : keys) {
      if (serial.probe(k)) ++serial_hits;
    }
    ASSERT_EQ(serial_hits, keys.size());
    ASSERT_EQ(serial.hits(), serial_hits);
  }

  // Concurrent run: every thread inserts the same key set (maximal
  // same-stripe contention), then probes all of it.
  TranspositionTable tt(1 << 20);
  {
    TaskGroup group(kThreads);
    for (unsigned t = 0; t < kThreads; ++t) {
      group.add([&tt, &keys] {
        for (const Key& k : keys) tt.insert(k);
      });
    }
    group.wait();
  }
  EXPECT_EQ(tt.stores(), keys.size());

  {
    TaskGroup group(kThreads);
    for (unsigned t = 0; t < kThreads; ++t) {
      group.add([&tt, &keys] {
        for (const Key& k : keys) {
          // Present keys must always hit; a miss would mean a torn or
          // lost insert.
          ASSERT_TRUE(tt.probe(k));
        }
      });
    }
    group.wait();
  }
  EXPECT_EQ(tt.hits(), kThreads * serial_hits);
}

TEST(SyncStress, StripedTableRespectsCapacityUnderContention) {
  // max_entries 64 over 64 stripes = one slot per stripe: almost every
  // insert races a full stripe, exercising the drop path.
  const std::vector<Key> keys = make_keys(2048, 0xf0011ull);
  TranspositionTable tt(64);
  TaskGroup group(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    group.add([&tt, &keys] {
      for (const Key& k : keys) tt.insert(k);
    });
  }
  group.wait();
  // Exactly one store per non-empty stripe, at most one per stripe.
  EXPECT_GE(tt.stores(), 1u);
  EXPECT_LE(tt.stores(), 64u);
  // Everything stored must still probe as present.
  std::uint64_t present = 0;
  for (const Key& k : keys) {
    if (tt.probe(k)) ++present;
  }
  EXPECT_EQ(present, tt.stores());
}

TEST(SyncStress, GuardedCellLosesNoIncrements) {
  constexpr std::uint64_t kIncrements = 20000;
  sync::GuardedCell<std::uint64_t> cell;
  std::atomic<bool> done{false};

  std::thread reader([&cell, &done] {
    // Concurrent snapshots must be monotone partial sums, never torn.
    std::uint64_t last = 0;
    while (!done.load(std::memory_order_relaxed)) {
      const std::uint64_t v = cell.load();
      ASSERT_GE(v, last);
      ASSERT_LE(v, kThreads * kIncrements);
      last = v;
    }
  });

  TaskGroup group(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    group.add([&cell] {
      for (std::uint64_t i = 0; i < kIncrements; ++i) {
        cell.with([](std::uint64_t& v) { ++v; });
      }
    });
  }
  group.wait();
  done.store(true, std::memory_order_relaxed);
  reader.join();

  EXPECT_EQ(cell.load(), kThreads * kIncrements);
}

TEST(SyncStress, SharedIncumbentConvergesToGlobalMinimum) {
  // Thread t publishes a deterministic capacity schedule; the side
  // vector encodes the capacity so the winner's snapshot is checkable.
  constexpr std::size_t kNodes = 16;
  constexpr std::size_t kRounds = 500;
  cut::SharedIncumbent incumbent;

  auto sides_for = [](std::size_t capacity) {
    std::vector<std::uint8_t> s(kNodes, 0);
    for (std::size_t b = 0; b < kNodes; ++b) {
      s[b] = static_cast<std::uint8_t>((capacity >> b) & 1u);
    }
    return s;
  };

  std::size_t global_min = cut::SharedIncumbent::kUnset;
  std::vector<std::vector<std::size_t>> schedules(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    SplitMix64 sm(0xabcdull * (t + 1));
    auto& sched = schedules[t];
    sched.reserve(kRounds);
    for (std::size_t r = 0; r < kRounds; ++r) {
      // Capacities in [1, 2^20]: strictly positive so kUnset never wins.
      const std::size_t cap =
          static_cast<std::size_t>(sm.next() % (1u << 20)) + 1;
      sched.push_back(cap);
      global_min = std::min(global_min, cap);
    }
  }

  TaskGroup group(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    group.add([&incumbent, &schedules, &sides_for, t] {
      for (const std::size_t cap : schedules[t]) {
        incumbent.publish(cap, sides_for(cap));
      }
    });
  }
  group.wait();

  EXPECT_EQ(incumbent.capacity(), global_min);
  // The surviving snapshot must be the one published WITH the winning
  // capacity — publish() swaps capacity and sides under one lock.
  EXPECT_EQ(incumbent.sides(), sides_for(global_min));
}

}  // namespace
}  // namespace bfly
