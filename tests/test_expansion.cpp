// Expansion machinery: exact EE/NE sweeps, the paper's constructive
// extremal sets (Lemmas 4.1/4.4/4.7/4.10), the credit-scheme evaluator
// (Lemmas 4.2/4.5/4.8/4.11), and the local-search heuristics.
#include <gtest/gtest.h>

#include <cmath>

#include "cut/brute_force.hpp"
#include "expansion/constructive_sets.hpp"
#include "expansion/credit_scheme.hpp"
#include "expansion/expansion.hpp"
#include "expansion/local_search.hpp"
#include "topology/butterfly.hpp"
#include "topology/wrapped_butterfly.hpp"

namespace bfly::expansion {
namespace {

TEST(Boundary, EdgeAndNodeBasics) {
  const topo::Butterfly bf(4);
  const std::vector<NodeId> inputs = bf.level_nodes(0);
  // Each input has 2 edges, all leaving the set.
  EXPECT_EQ(edge_boundary(bf.graph(), inputs), 8u);
  // Their neighbors are exactly level 1.
  EXPECT_EQ(node_boundary(bf.graph(), inputs), 4u);
  const auto nbrs = neighbor_set(bf.graph(), inputs);
  for (const NodeId v : nbrs) EXPECT_EQ(bf.level(v), 1u);
}

TEST(ExactExpansion, AgreesWithDirectMeasurement) {
  const topo::Butterfly bf(4);  // 12 nodes -> 4096 subsets
  const auto table = exact_expansion(bf.graph());
  for (std::size_t k = 1; k <= 12; ++k) {
    ASSERT_EQ(table[k].ee_witness.size(), k);
    ASSERT_EQ(table[k].ne_witness.size(), k);
    EXPECT_EQ(edge_boundary(bf.graph(), table[k].ee_witness), table[k].ee);
    EXPECT_EQ(node_boundary(bf.graph(), table[k].ne_witness), table[k].ne);
  }
  // EE(G, N) = 0 (the whole graph), NE likewise.
  EXPECT_EQ(table[12].ee, 0u);
  EXPECT_EQ(table[12].ne, 0u);
}

TEST(ExactExpansion, MatchesMinCutOfSize) {
  const topo::Butterfly bf(4);
  const auto table = exact_expansion(bf.graph());
  for (const std::size_t k : {2u, 5u, 6u}) {
    EXPECT_EQ(table[k].ee,
              cut::min_cut_of_size_exhaustive(bf.graph(), k).capacity);
  }
}

TEST(ExactExpansion, MaxKTruncation) {
  const topo::Butterfly bf(4);
  ExactExpansionOptions opts;
  opts.max_k = 3;
  const auto table = exact_expansion(bf.graph(), opts);
  EXPECT_EQ(table.size(), 4u);
}

TEST(ExactExpansionOfSize, MatchesFullSweepOnB4) {
  const topo::Butterfly bf(4);
  const auto table = exact_expansion(bf.graph());
  for (const std::size_t k : {1u, 2u, 3u, 5u, 7u, 11u}) {
    const auto entry = exact_expansion_of_size(bf.graph(), k);
    EXPECT_EQ(entry.ee, table[k].ee) << "k=" << k;
    EXPECT_EQ(entry.ne, table[k].ne) << "k=" << k;
    EXPECT_EQ(entry.ee_witness.size(), k);
    EXPECT_EQ(edge_boundary(bf.graph(), entry.ee_witness), entry.ee);
    EXPECT_EQ(node_boundary(bf.graph(), entry.ne_witness), entry.ne);
  }
}

TEST(ExactExpansionOfSize, B8SmallSetsBeyondFullSweepReach) {
  // B8 has 32 nodes (2^32 states unreachable) but C(32, 4) = 35960.
  const topo::Butterfly bf(8);
  const auto e4 = exact_expansion_of_size(bf.graph(), 4);
  // The Lemma 4.7 input-anchored sub-butterfly (k=4) has boundary 4 and
  // is optimal at this size.
  EXPECT_EQ(e4.ee, 4u);
  EXPECT_EQ(edge_boundary(bf.graph(), e4.ee_witness), 4u);
  // NE(B8, 4): the Lemma 4.10 set (two output-anchored B1s) achieves 4;
  // verify the exact optimum is <= that and matches its witness.
  EXPECT_LE(e4.ne, 4u);
}

TEST(ExactExpansionOfSize, RefusesBlowups) {
  const topo::Butterfly bf(16);
  EXPECT_THROW(exact_expansion_of_size(bf.graph(), 30, 1e6),
               PreconditionError);
}

TEST(ConstructiveSets, WnEeSetMatchesLemma41) {
  const topo::WrappedButterfly wb(32);  // d = 5
  for (const std::uint32_t delta : {1u, 2u, 3u}) {
    const auto set = wn_ee_set(wb, delta);
    EXPECT_EQ(set.size(),
              static_cast<std::size_t>(delta + 1) << delta);
    // Inputs and outputs of the sub-butterfly each contribute 2 cut
    // edges: EE = 4 * 2^delta.
    EXPECT_EQ(edge_boundary(wb.graph(), set), 4u << delta);
  }
}

TEST(ConstructiveSets, WnNeSetMatchesLemma44) {
  const topo::WrappedButterfly wb(32);
  for (const std::uint32_t delta : {1u, 2u}) {
    const auto set = wn_ne_set(wb, delta);
    EXPECT_EQ(set.size(),
              static_cast<std::size_t>(delta + 1) << (delta + 1));
    // N(A) = 2^(delta+1) inputs of B plus 2 * 2^(delta+1) above outputs.
    EXPECT_EQ(node_boundary(wb.graph(), set), 3u << (delta + 1));
  }
}

TEST(ConstructiveSets, BnEeSetMatchesLemma47) {
  const topo::Butterfly bf(32);
  for (const std::uint32_t delta : {1u, 2u, 3u, 4u}) {
    const auto set = bn_ee_set(bf, delta);
    EXPECT_EQ(set.size(),
              static_cast<std::size_t>(delta + 1) << delta);
    // Only the sub-butterfly outputs have outside edges: 2 * 2^delta.
    EXPECT_EQ(edge_boundary(bf.graph(), set), 2u << delta);
  }
}

TEST(ConstructiveSets, BnNeSetMatchesLemma410) {
  const topo::Butterfly bf(32);
  for (const std::uint32_t delta : {1u, 2u, 3u}) {
    const auto set = bn_ne_set(bf, delta);
    EXPECT_EQ(set.size(),
              static_cast<std::size_t>(delta + 1) << (delta + 1));
    // N(A) is exactly the first level of the enclosing sub-butterfly.
    EXPECT_EQ(node_boundary(bf.graph(), set), 2u << delta);
  }
}

TEST(ConstructiveSets, AchieveExactOptimaOnSmallSizes)
{
  // On B4 the Lemma 4.7 set should tie the exhaustive optimum for its k.
  const topo::Butterfly bf(4);
  const auto table = exact_expansion(bf.graph());
  const auto set = bn_ee_set(bf, 1);  // k = 4
  EXPECT_EQ(edge_boundary(bf.graph(), set), table[set.size()].ee);
}

TEST(CreditScheme, ConservationOnWn) {
  // Total distributed credit = k, split between boundary and stranded.
  const topo::WrappedButterfly wb(16);
  const auto set = wn_ee_set(wb, 2);
  const auto rep = credit_edge_wn(wb, set);
  EXPECT_NEAR(rep.retained_by_boundary + rep.retained_elsewhere,
              static_cast<double>(set.size()), 1e-9);
}

TEST(CreditScheme, PerEdgeCapHoldsOnWn) {
  // Lemma 4.2: each cut edge retains at most (floor(log k)+1)/4.
  const topo::WrappedButterfly wb(16);
  for (const std::uint32_t delta : {1u, 2u}) {
    const auto set = wn_ee_set(wb, delta);
    const auto rep = credit_edge_wn(wb, set);
    EXPECT_LE(rep.max_per_boundary_item, rep.per_item_cap + 1e-9);
    // The implied bound is valid: it cannot exceed the actual boundary.
    EXPECT_LE(rep.implied_lower_bound,
              static_cast<double>(rep.actual_boundary) + 1e-9);
  }
}

TEST(CreditScheme, PerNodeCapHoldsOnWn) {
  const topo::WrappedButterfly wb(16);
  const auto set = wn_ne_set(wb, 1);
  const auto rep = credit_node_wn(wb, set);
  EXPECT_NEAR(rep.retained_by_boundary + rep.retained_elsewhere,
              static_cast<double>(set.size()), 1e-9);
  EXPECT_LE(rep.max_per_boundary_item, rep.per_item_cap + 1e-9);
  EXPECT_LE(rep.implied_lower_bound,
            static_cast<double>(rep.actual_boundary) + 1e-9);
}

TEST(CreditScheme, BnEdgeAndNodeVariants) {
  const topo::Butterfly bf(16);
  const auto eeset = bn_ee_set(bf, 2);
  const auto erep = credit_edge_bn(bf, eeset);
  EXPECT_NEAR(erep.retained_by_boundary + erep.retained_elsewhere,
              static_cast<double>(eeset.size()), 1e-9);
  EXPECT_LE(erep.max_per_boundary_item, erep.per_item_cap + 1e-9);
  EXPECT_LE(erep.implied_lower_bound,
            static_cast<double>(erep.actual_boundary) + 1e-9);

  const auto neset = bn_ne_set(bf, 1);
  const auto nrep = credit_node_bn(bf, neset);
  EXPECT_NEAR(nrep.retained_by_boundary + nrep.retained_elsewhere,
              static_cast<double>(neset.size()), 1e-9);
  EXPECT_LE(nrep.max_per_boundary_item, nrep.per_item_cap + 1e-9);
}

TEST(CreditScheme, ImpliedBoundIsUsefulOnSmallSets) {
  // For a small random-ish set in a big Wn (k = o(n) regime), the
  // implied bound should be a positive fraction of k/log k.
  const topo::WrappedButterfly wb(64);
  const auto set = wn_ee_set(wb, 2);  // k = 12, n = 64
  const auto rep = credit_edge_wn(wb, set);
  const double k = static_cast<double>(set.size());
  EXPECT_GT(rep.implied_lower_bound, 0.5 * k / std::log2(k));
}

TEST(LocalSearch, ValidAndMatchesExactOnSmall) {
  const topo::Butterfly bf(4);
  const auto table = exact_expansion(bf.graph());
  for (const std::size_t k : {2u, 4u, 6u}) {
    const auto ee = min_ee_set_local_search(bf.graph(), k);
    EXPECT_EQ(ee.set.size(), k);
    EXPECT_EQ(edge_boundary(bf.graph(), ee.set), ee.objective);
    EXPECT_EQ(ee.objective, table[k].ee) << "k=" << k;

    const auto ne = min_ne_set_local_search(bf.graph(), k);
    EXPECT_EQ(node_boundary(bf.graph(), ne.set), ne.objective);
    EXPECT_EQ(ne.objective, table[k].ne) << "k=" << k;
  }
}

TEST(LocalSearch, FindsSubButterflyQualityOnW16) {
  // Heuristic should match the Lemma 4.1 construction's boundary for
  // the same k on W16.
  const topo::WrappedButterfly wb(16);
  const auto target = wn_ee_set(wb, 1);  // k = 4, EE = 8
  const auto found =
      min_ee_set_local_search(wb.graph(), target.size());
  EXPECT_LE(found.objective, edge_boundary(wb.graph(), target));
}

}  // namespace
}  // namespace bfly::expansion
