// Section 1.3 dynamics: dissemination growth tracks the node-expansion
// function; local token balancing converges.
#include <gtest/gtest.h>

#include "expansion/expansion.hpp"
#include "routing/dissemination.hpp"
#include "topology/butterfly.hpp"
#include "topology/wrapped_butterfly.hpp"

namespace bfly::routing {
namespace {

TEST(Dissemination, SingleSeedCoversInEccentricitySteps) {
  const topo::Butterfly bf(8);
  const std::vector<NodeId> seed = {bf.node(0, 0)};
  const auto trace = disseminate(bf.graph(), seed);
  EXPECT_EQ(trace.informed.front(), 1u);
  EXPECT_EQ(trace.informed.back(), bf.num_nodes());
  // Coverage time = eccentricity of the seed = 2 log n from an input.
  EXPECT_EQ(trace.rounds, 2 * bf.dims());
  // Monotone growth.
  for (std::size_t i = 0; i + 1 < trace.informed.size(); ++i) {
    EXPECT_LT(trace.informed[i], trace.informed[i + 1]);
  }
}

TEST(Dissemination, StepGrowthEqualsNodeExpansionOfCurrentSet) {
  // The Section 1.3 statement: k informed nodes become k + |N(S)|.
  const topo::WrappedButterfly wb(8);
  std::vector<NodeId> seed = {wb.node(0, 0), wb.node(1, 0)};
  auto informed = seed;
  const auto trace = disseminate(wb.graph(), seed);
  for (std::uint32_t step = 0; step < trace.rounds; ++step) {
    const auto nbrs = expansion::neighbor_set(wb.graph(), informed);
    EXPECT_EQ(trace.informed[step + 1],
              trace.informed[step] + nbrs.size());
    informed.insert(informed.end(), nbrs.begin(), nbrs.end());
  }
}

TEST(Dissemination, RejectsDisconnected) {
  GraphBuilder gb(3);
  gb.add_edge(0, 1);
  const Graph g = std::move(gb).build();
  const std::vector<NodeId> seed = {0};
  EXPECT_THROW(disseminate(g, seed), PreconditionError);
}

TEST(LoadBalance, ReachesFixedPointWithDiameterDiscrepancy) {
  // At a local fixed point every edge gradient is <= 1, so the global
  // imbalance is at most the diameter — the discrepancy regime of the
  // local algorithms the paper cites.
  const topo::WrappedButterfly wb(16);
  std::vector<std::uint64_t> load(wb.num_nodes(), 0);
  load[0] = 640;  // all tokens on one node
  const auto trace = balance_tokens(wb.graph(), load);
  EXPECT_TRUE(trace.fixed_point);
  EXPECT_LE(trace.imbalance.back(), 3u * wb.dims() / 2);  // diameter(W16)
  // Imbalance is nonincreasing.
  for (std::size_t i = 0; i + 1 < trace.imbalance.size(); ++i) {
    EXPECT_GE(trace.imbalance[i], trace.imbalance[i + 1]);
  }
}

TEST(LoadBalance, AlreadyBalancedIsImmediateFixedPoint) {
  const topo::Butterfly bf(4);
  std::vector<std::uint64_t> load(bf.num_nodes(), 7);
  const auto trace = balance_tokens(bf.graph(), load);
  EXPECT_TRUE(trace.fixed_point);
  EXPECT_EQ(trace.rounds, 0u);
  EXPECT_EQ(trace.imbalance.back(), 0u);
}

TEST(LoadBalance, FixedPointOnButterflyFromTwoHotspots) {
  const topo::Butterfly bf(8);
  std::vector<std::uint64_t> load(bf.num_nodes(), 0);
  load[3] = 100;
  load[17] = 50;
  const auto trace = balance_tokens(bf.graph(), load);
  EXPECT_TRUE(trace.fixed_point);
  EXPECT_LE(trace.imbalance.back(), 2u * bf.dims());  // diameter(B8)
}

}  // namespace
}  // namespace bfly::routing
