// Additional cross-checks between independent implementations and
// remaining uncovered paths.
#include <gtest/gtest.h>

#include "core/rng.hpp"
#include "cut/brute_force.hpp"
#include "cut/spectral_bisection.hpp"
#include "expansion/expansion.hpp"
#include "routing/butterfly_routing.hpp"
#include "topology/wrapped_butterfly.hpp"
#include "variants/omega.hpp"

namespace bfly {
namespace {

TEST(CrossCheck, AllSizesSweepAgreesWithExpansionSweep) {
  // Two independently implemented exhaustive engines (cut::min_cuts_all_
  // sizes and expansion::exact_expansion) must produce identical EE
  // columns.
  const topo::WrappedButterfly wb(4);
  const auto cuts = cut::min_cuts_all_sizes(wb.graph());
  const auto table = expansion::exact_expansion(wb.graph());
  for (std::size_t k = 1; k < wb.num_nodes(); ++k) {
    EXPECT_EQ(cuts[k].capacity, table[k].ee) << "k=" << k;
  }
}

TEST(CrossCheck, OmegaSweepMatchesPerSetFunctional) {
  const variants::OmegaNetwork omega(8);
  const auto best = exact_port_expansion(omega);
  // Verify optimality at k=2 by scanning all pairs directly.
  std::size_t direct = ~0u;
  const NodeId n = omega.base().graph().num_nodes();
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = a + 1; b < n; ++b) {
      const std::vector<NodeId> set = {a, b};
      direct = std::min(direct, omega.port_edge_expansion(set));
    }
  }
  EXPECT_EQ(best[2], direct);
}

TEST(CrossCheck, OmegaSnirOnLargerSampledSets) {
  const variants::OmegaNetwork omega(16);  // base B8, 32 nodes
  Rng rng(616);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t k = 1 + rng.below(20);
    std::vector<NodeId> set;
    std::vector<std::uint8_t> used(32, 0);
    while (set.size() < k) {
      const NodeId v = static_cast<NodeId>(rng.below(32));
      if (!used[v]) {
        used[v] = 1;
        set.push_back(v);
      }
    }
    EXPECT_TRUE(omega.snir_inequality(set).holds) << "k=" << k;
  }
}

TEST(RouteWn, DegenerateWrapCases) {
  // W4 (log n = 2, parallel straight edges): every pair must route.
  const topo::WrappedButterfly wb(4);
  for (NodeId s = 0; s < wb.num_nodes(); ++s) {
    for (NodeId t = 0; t < wb.num_nodes(); ++t) {
      const auto p = routing::route_wn(wb, s, t);
      ASSERT_EQ(p.front(), s);
      ASSERT_EQ(p.back(), t);
      for (std::size_t i = 0; i + 1 < p.size(); ++i) {
        ASSERT_TRUE(wb.graph().has_edge(p[i], p[i + 1]));
      }
    }
  }
}

TEST(Spectral, ValidOnDegenerateHypercubeSpectrum) {
  // Q4's Fiedler eigenvalue has multiplicity 4, so the power iteration
  // lands on an arbitrary eigenvector mix and the median split need not
  // be a dimension cut; the result must still be a valid bisection with
  // a sane capacity (dimension cut = 8, worst reasonable <= 2x that).
  GraphBuilder gb(16);
  for (std::uint32_t w = 0; w < 16; ++w) {
    for (std::uint32_t b = 0; b < 4; ++b) {
      if ((w & (1u << b)) == 0) gb.add_edge(w, w | (1u << b));
    }
  }
  const Graph q4 = std::move(gb).build();
  const auto r = cut::min_bisection_spectral(q4);
  EXPECT_TRUE(cut::is_bisection(r.sides));
  EXPECT_GE(r.capacity, 8u);
  EXPECT_LE(r.capacity, 16u);
}

TEST(BruteForce, SubsetBisectionRejectsEmptySubset) {
  const topo::WrappedButterfly wb(4);
  const std::vector<NodeId> empty;
  EXPECT_THROW(static_cast<void>(
                   cut::min_cut_bisecting_exhaustive(wb.graph(), empty)),
               PreconditionError);
}

}  // namespace
}  // namespace bfly
