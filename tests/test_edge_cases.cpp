// Boundary conditions across the library: smallest networks, degenerate
// parameters, and API misuse that must fail loudly.
#include <gtest/gtest.h>

#include "algo/diameter.hpp"
#include "core/graph.hpp"
#include "core/partition.hpp"
#include "cut/brute_force.hpp"
#include "cut/constructive.hpp"
#include "cut/mos_theory.hpp"
#include "expansion/expansion.hpp"
#include "routing/benes_route.hpp"
#include "routing/butterfly_routing.hpp"
#include "topology/benes.hpp"
#include "topology/butterfly.hpp"
#include "topology/mesh_of_stars.hpp"

namespace bfly {
namespace {

TEST(EdgeCases, SmallestButterfly) {
  const topo::Butterfly b2(2);
  EXPECT_EQ(b2.num_nodes(), 4u);
  EXPECT_EQ(b2.graph().num_edges(), 4u);  // the 4-cycle
  EXPECT_EQ(algo::diameter(b2.graph()), 2u);
  EXPECT_EQ(cut::column_split_bisection(b2).capacity, 2u);
}

TEST(EdgeCases, SmallestBenesRoutesBothPermutations) {
  const topo::Benes b(2);
  const std::vector<std::uint32_t> id = {0, 1};
  const std::vector<std::uint32_t> swap = {1, 0};
  EXPECT_NO_THROW(routing::route_permutation(b, id));
  EXPECT_NO_THROW(routing::route_permutation(b, swap));
}

TEST(EdgeCases, MeshOfStarsOneByOne) {
  const topo::MeshOfStars mos(1, 1);
  EXPECT_EQ(mos.num_nodes(), 3u);  // a path of length 2
  EXPECT_EQ(mos.graph().num_edges(), 2u);
  EXPECT_EQ(mos.level_of(mos.m1_node(0)), 1);
  EXPECT_EQ(mos.level_of(mos.m2_node(0, 0)), 2);
  EXPECT_EQ(mos.level_of(mos.m3_node(0)), 3);
}

TEST(EdgeCases, RouteToSelfIsTrivial) {
  const topo::Butterfly bf(8);
  for (NodeId v = 0; v < bf.num_nodes(); v += 5) {
    const auto p = routing::route_bn(bf, v, v);
    EXPECT_EQ(p, std::vector<NodeId>{v});
  }
}

TEST(EdgeCases, EmptyGraphQueries) {
  GraphBuilder gb(3);
  const Graph g = std::move(gb).build();
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.degree(0), 0u);
  EXPECT_EQ(g.max_degree(), 0u);
  EXPECT_FALSE(g.has_edge(0, 1));
  // Expansion of any set in an edgeless graph is 0.
  const std::vector<NodeId> set = {0, 2};
  EXPECT_EQ(expansion::edge_boundary(g, set), 0u);
  EXPECT_EQ(expansion::node_boundary(g, set), 0u);
}

TEST(EdgeCases, SingleNodeDiameter) {
  GraphBuilder gb(1);
  const Graph g = std::move(gb).build();
  EXPECT_EQ(algo::diameter(g), 0u);
}

TEST(EdgeCases, MosTheorySmallestEvenJ) {
  const auto v = cut::mos_m2_bisection_value(2);
  EXPECT_EQ(v.capacity, 2u);
  EXPECT_DOUBLE_EQ(v.normalized, 0.5);
}

TEST(EdgeCases, ExhaustiveOnTinyGraphs) {
  GraphBuilder gb(2);
  gb.add_edge(0, 1);
  const Graph g = std::move(gb).build();
  const auto r = cut::min_bisection_exhaustive(g);
  EXPECT_EQ(r.capacity, 1u);
}

TEST(EdgeCases, PartitionOnEdgelessGraph) {
  GraphBuilder gb(4);
  const Graph g = std::move(gb).build();
  Partition p(g);
  p.move(0);
  p.move(1);
  EXPECT_EQ(p.cut_capacity(), 0u);
  EXPECT_TRUE(p.is_bisection());
}

TEST(EdgeCases, MonotonicPathSameColumn) {
  const topo::Butterfly bf(8);
  const auto p = bf.monotonic_path(5, 5);
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_EQ(bf.column(p[i]), 5u);
    EXPECT_EQ(bf.level(p[i]), i);
  }
}

TEST(EdgeCases, ExpansionWitnessesAtExtremes) {
  const topo::Butterfly bf(4);
  const auto table = expansion::exact_expansion(bf.graph());
  EXPECT_EQ(table[1].ee, 2u);   // an input node has degree 2
  EXPECT_EQ(table[1].ne, 2u);
  const NodeId n = bf.num_nodes();
  EXPECT_EQ(table[n].ee, 0u);
  EXPECT_EQ(table[n].ne, 0u);
}

}  // namespace
}  // namespace bfly
