// Symmetry subsystem (DESIGN.md §10): permutation arithmetic, the
// per-topology generator exports, group orders and orbit structure
// against the known automorphism groups, and the differential contract
// of both symmetry-pruned exact kernels — identical optimal capacities
// and expansion tables to the unpruned kernels on every instance, with
// the pruning actually biting on the butterfly family. Carries the
// `symmetry` ctest label (`ctest -L symmetry`).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "algo/automorphism.hpp"
#include "core/graph.hpp"
#include "core/rng.hpp"
#include "cut/branch_bound.hpp"
#include "expansion/expansion.hpp"
#include "topology/butterfly.hpp"
#include "topology/ccc.hpp"
#include "topology/hypercube.hpp"
#include "topology/mesh_of_stars.hpp"
#include "topology/wrapped_butterfly.hpp"

namespace bfly {
namespace {

struct Named {
  const char* name;
  const Graph* g;
  std::vector<algo::Perm> gens;
};

// The generator-export surface under test: every topology class that
// ships automorphism_generators(), across the sizes the exact kernels
// run on. (W2/CCC2 do not exist — both families need log n >= 2.)
class Instances {
 public:
  Instances()
      : b2_(2), b4_(4), b8_(8), w4_(4), w8_(8), c4_(4), c8_(8),
        q3_(3), q4_(4), q5_(5), m22_(2, 2), m23_(2, 3), m33_(3, 3),
        m44_(4, 4) {}

  [[nodiscard]] std::vector<Named> all() const {
    return {
        {"B2", &b2_.graph(), b2_.automorphism_generators()},
        {"B4", &b4_.graph(), b4_.automorphism_generators()},
        {"B8", &b8_.graph(), b8_.automorphism_generators()},
        {"W4", &w4_.graph(), w4_.automorphism_generators()},
        {"W8", &w8_.graph(), w8_.automorphism_generators()},
        {"CCC4", &c4_.graph(), c4_.automorphism_generators()},
        {"CCC8", &c8_.graph(), c8_.automorphism_generators()},
        {"Q3", &q3_.graph(), q3_.automorphism_generators()},
        {"Q4", &q4_.graph(), q4_.automorphism_generators()},
        {"Q5", &q5_.graph(), q5_.automorphism_generators()},
        {"MOS2x2", &m22_.graph(), m22_.automorphism_generators()},
        {"MOS2x3", &m23_.graph(), m23_.automorphism_generators()},
        {"MOS3x3", &m33_.graph(), m33_.automorphism_generators()},
        {"MOS4x4", &m44_.graph(), m44_.automorphism_generators()},
    };
  }

 private:
  topo::Butterfly b2_, b4_, b8_;
  topo::WrappedButterfly w4_, w8_;
  topo::CubeConnectedCycles c4_, c8_;
  topo::Hypercube q3_, q4_, q5_;
  topo::MeshOfStars m22_, m23_, m33_, m44_;
};

TEST(Automorphism, PermArithmeticRoundTrips) {
  const algo::Perm id = algo::identity_perm(6);
  EXPECT_TRUE(algo::is_permutation(id));
  const algo::Perm p = {2, 0, 1, 5, 4, 3};
  ASSERT_TRUE(algo::is_permutation(p));
  EXPECT_EQ(algo::compose(p, algo::inverse(p)), id);
  EXPECT_EQ(algo::compose(algo::inverse(p), p), id);
  // apply_to_mask agrees with pointwise application, and the inverse
  // undoes it.
  Rng rng(99);
  for (int t = 0; t < 50; ++t) {
    const std::uint64_t m = rng.next() & 0x3f;
    std::uint64_t expect = 0;
    for (NodeId v = 0; v < 6; ++v) {
      if ((m >> v) & 1u) expect |= std::uint64_t{1} << p[v];
    }
    EXPECT_EQ(algo::apply_to_mask(p, m), expect);
    EXPECT_EQ(algo::apply_to_mask(algo::inverse(p),
                                  algo::apply_to_mask(p, m)),
              m);
  }
  EXPECT_FALSE(algo::is_permutation({0, 0, 1}));
}

TEST(Automorphism, EveryExportedGeneratorIsAnAutomorphism) {
  const Instances inst;
  for (const auto& [name, g, gens] : inst.all()) {
    ASSERT_FALSE(gens.empty()) << name;
    for (std::size_t i = 0; i < gens.size(); ++i) {
      EXPECT_TRUE(algo::is_permutation(gens[i]))
          << name << " generator " << i;
      EXPECT_EQ(gens[i].size(), g->num_nodes()) << name << " generator " << i;
      EXPECT_TRUE(algo::is_automorphism(*g, gens[i]))
          << name << " generator " << i;
    }
  }
}

TEST(Automorphism, GroupOrdersMatchTheKnownGroups) {
  const Instances inst;
  // |Aut| of the generated group. For Bn: 2^log2(n) translations x level
  // reversal x ...; for Wn/CCCn (n = 2^d columns, d >= 3): 2^d * d * 2
  // (XOR translations, rotations, reflection); Qd: 2^d * d!; MOS_j,k:
  // j! * k! (x 2 swap for j = k). The d = 2 wrapped/CCC cases are
  // degenerate (multi-edges collapse symmetries).
  const std::vector<std::pair<const char*, std::size_t>> expect = {
      {"B2", 8},      {"B4", 32},     {"B8", 128},  {"W4", 16},
      {"W8", 48},     {"CCC4", 8},    {"CCC8", 48}, {"Q3", 48},
      {"Q4", 384},    {"Q5", 3840},   {"MOS2x2", 8}, {"MOS2x3", 12},
      {"MOS3x3", 72}, {"MOS4x4", 1152},
  };
  const auto all = inst.all();
  for (const auto& [name, order] : expect) {
    bool found = false;
    for (const auto& [iname, g, gens] : all) {
      if (std::string_view(iname) != name) continue;
      found = true;
      const algo::PermutationGroup grp(g->num_nodes(), gens);
      EXPECT_EQ(grp.order(), order) << name;
    }
    EXPECT_TRUE(found) << name;
  }
}

TEST(Automorphism, OrbitStructureMatchesTransitivity) {
  const Instances inst;
  for (const auto& [name, g, gens] : inst.all()) {
    const algo::PermutationGroup grp(g->num_nodes(), gens);
    const auto orbits = grp.vertex_orbits();
    // Orbits partition the vertex set.
    std::size_t covered = 0;
    for (const auto& o : orbits) covered += o.size();
    EXPECT_EQ(covered, g->num_nodes()) << name;
    const std::string_view n(name);
    if (n == "W8" || n == "CCC8" || n.substr(0, 1) == "Q") {
      // Vertex-transitive families: one orbit.
      EXPECT_EQ(orbits.size(), 1u) << name;
    } else if (n == "B4") {
      // Level reversal fuses levels {0, 2}; level 1 is its own orbit.
      EXPECT_EQ(orbits.size(), 2u) << name;
    } else if (n == "MOS3x3" || n == "MOS4x4" || n == "MOS2x2") {
      // Square mesh-of-stars: centers vs leaves.
      EXPECT_EQ(orbits.size(), 2u) << name;
    } else if (n == "MOS2x3") {
      EXPECT_EQ(orbits.size(), 3u) << name;
    }
    // orbit(v) is consistent with the partition.
    for (const auto& o : orbits) {
      for (const NodeId v : o) {
        EXPECT_EQ(grp.orbit(v), o) << name << " vertex " << v;
      }
    }
  }
}

TEST(Automorphism, ElementEnumerationHonorsItsCap) {
  const topo::Hypercube q4(4);
  // |Aut(Q4)| = 384: a cap below that must answer nullptr (degrade to
  // symmetry-off), not a partial list — and the failed enumeration is
  // cached, so the same object keeps answering nullptr even for caps
  // that would fit (documented: no redoing a blown-up closure).
  const algo::PermutationGroup capped(q4.graph().num_nodes(),
                                      q4.automorphism_generators());
  EXPECT_EQ(capped.elements(/*max_elements=*/100), nullptr);
  EXPECT_EQ(capped.elements(/*max_elements=*/500), nullptr);
  const algo::PermutationGroup fresh(q4.graph().num_nodes(),
                                     q4.automorphism_generators());
  const auto* els = fresh.elements(/*max_elements=*/500);
  ASSERT_NE(els, nullptr);
  EXPECT_EQ(els->size(), 384u);
  // A cached full list answers per-cap: big enough sees it, smaller
  // does not.
  EXPECT_EQ(fresh.elements(/*max_elements=*/100), nullptr);
  EXPECT_NE(fresh.elements(/*max_elements=*/500), nullptr);
  EXPECT_THROW((void)fresh.order(/*max_elements=*/100), PreconditionError);
}

// --- Differential contracts of the symmetry-pruned kernels ---

TEST(SymmetryPrunedSearch, IdenticalCapacitiesOnTheDifferentialSuite) {
  const Instances inst;
  for (const auto& [name, g, gens] : inst.all()) {
    const algo::PermutationGroup grp(g->num_nodes(), gens);
    cut::BranchBoundOptions plain;
    plain.kernel = cut::BranchBoundKernel::kBitset;
    const bool bitset_ok = !g->has_parallel_edges();
    if (!bitset_ok) continue;  // W4/CCC4 collapse to multigraphs
    const auto ref = cut::min_bisection_branch_bound(*g, plain);
    cut::BranchBoundOptions sym = plain;
    sym.symmetry = &grp;
    const auto pruned = cut::min_bisection_branch_bound(*g, sym);
    EXPECT_EQ(pruned.capacity, ref.capacity) << name;
    EXPECT_EQ(pruned.exactness, cut::Exactness::kExact) << name;
    EXPECT_LE(pruned.nodes_visited, ref.nodes_visited) << name;
    cut::validate_cut(*g, pruned, /*require_bisection=*/true);
  }
}

TEST(SymmetryPrunedSearch, PruningMeetsTheFourFoldFloorOnW8AndCCC8) {
  // The E21 acceptance bar: >= 4x fewer search nodes than the plain
  // bitset kernel on W8 and CCC8, proved at the same optimum.
  for (const bool wrapped : {true, false}) {
    const topo::WrappedButterfly w8(8);
    const topo::CubeConnectedCycles c8(8);
    const Graph& g = wrapped ? w8.graph() : c8.graph();
    const algo::PermutationGroup grp(
        g.num_nodes(), wrapped ? w8.automorphism_generators()
                               : c8.automorphism_generators());
    cut::BranchBoundOptions plain;
    plain.kernel = cut::BranchBoundKernel::kBitset;
    const auto ref = cut::min_bisection_branch_bound(g, plain);
    cut::BranchBoundOptions sym = plain;
    sym.symmetry = &grp;
    const auto pruned = cut::min_bisection_branch_bound(g, sym);
    EXPECT_EQ(pruned.capacity, ref.capacity);
    EXPECT_GE(ref.nodes_visited, 4 * pruned.nodes_visited)
        << (wrapped ? "W8" : "CCC8") << ": " << pruned.nodes_visited
        << " symmetry nodes vs " << ref.nodes_visited << " plain";
  }
}

TEST(SymmetryPrunedSearch, TelemetryReportsTableActivity) {
  const topo::Butterfly b8(8);
  const algo::PermutationGroup grp(b8.graph().num_nodes(),
                                   b8.automorphism_generators());
  cut::BranchBoundOptions sym;
  sym.kernel = cut::BranchBoundKernel::kBitset;
  sym.symmetry = &grp;
  const auto res = cut::min_bisection_branch_bound(b8.graph(), sym);
  EXPECT_GT(res.tt_stores, 0u);
  // Plain runs leave the counters at zero.
  const auto plain = cut::min_bisection_branch_bound(b8.graph());
  EXPECT_EQ(plain.tt_hits, 0u);
  EXPECT_EQ(plain.tt_stores, 0u);
}

TEST(SymmetryShardedExpansion, IdenticalTablesAndWeightedCoverage) {
  const Instances inst;
  for (const char* pick : {"B4", "W4", "CCC4", "Q3", "MOS3x3"}) {
    for (const auto& [name, g, gens] : inst.all()) {
      if (std::string_view(name) != pick) continue;
      const algo::PermutationGroup grp(g->num_nodes(), gens);
      expansion::ExactExpansionOptions serial;
      serial.num_threads = 1;
      const auto ref = expansion::exact_expansion_full(*g, serial);
      expansion::ExactExpansionOptions sym;
      sym.num_threads = 1;
      sym.shard_bits = 4;
      sym.symmetry = &grp;
      const auto red = expansion::exact_expansion_full(*g, sym);
      // The weighted-coverage identity is the orbit math's self-check:
      // representatives times their orbit sizes must tile all 2^N
      // subsets exactly.
      EXPECT_EQ(red.visited_states, std::uint64_t{1} << g->num_nodes())
          << name;
      EXPECT_LE(red.scanned_states, ref.scanned_states) << name;
      ASSERT_EQ(red.table.size(), ref.table.size()) << name;
      for (std::size_t k = 1; k < ref.table.size(); ++k) {
        EXPECT_EQ(red.table[k].ee, ref.table[k].ee) << name << " k=" << k;
        EXPECT_EQ(red.table[k].ne, ref.table[k].ne) << name << " k=" << k;
        expansion::validate_expansion_entry(*g, k, red.table[k]);
      }
    }
  }
}

TEST(SymmetryShardedExpansion, OrbitReductionBitesOnTheButterfly) {
  const topo::Butterfly b4(4);
  const algo::PermutationGroup grp(b4.graph().num_nodes(),
                                   b4.automorphism_generators());
  expansion::ExactExpansionOptions sym;
  sym.num_threads = 1;
  sym.shard_bits = 4;
  sym.symmetry = &grp;
  const auto red = expansion::exact_expansion_full(b4.graph(), sym);
  // 4096 states unreduced; the top-4-bit pattern orbits leave < 2048.
  EXPECT_LT(red.scanned_states, std::uint64_t{1} << 11);
  EXPECT_EQ(red.visited_states, std::uint64_t{1} << 12);
}

}  // namespace
}  // namespace bfly
