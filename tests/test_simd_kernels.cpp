// Differential suite for the runtime-dispatched SIMD kernel table
// (core/simd.hpp): every level this machine can run — scalar, AVX2,
// AVX-512 — must be bit-identical to the scalar reference on random
// inputs, including tail words (bit counts not divisible by the lane
// width), zero-length bitsets, sparse masks (which take the scalar
// delegation shortcut), and both sides of every internal tier gate
// (packed 32-bit vs wide 64-bit branching keys; field-accumulator vs
// movemask vs scalar histograms). Also pins the dispatch-control
// surface: level naming, clamping, and the runtime override.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <random>
#include <vector>

#include "core/simd.hpp"

namespace bfly::simd {
namespace {

// Every level available on this build + machine, scalar first. The
// loops below compare each against the scalar table, so on a machine
// without AVX the suite degenerates to scalar-vs-scalar (still runs).
std::vector<DispatchLevel> available_levels() {
  std::vector<DispatchLevel> levels{DispatchLevel::kScalar};
  if (detected_level() >= DispatchLevel::kAvx2) {
    levels.push_back(DispatchLevel::kAvx2);
  }
  if (detected_level() >= DispatchLevel::kAvx512) {
    levels.push_back(DispatchLevel::kAvx512);
  }
  return levels;
}

struct RandomInput {
  std::size_t nbits = 0;
  std::vector<std::uint64_t> mask;
  std::vector<std::uint64_t> other;
  std::vector<std::uint32_t> a0, a1, deg;
};

// Random bitset pair + per-bit values, honoring the Bitset64 invariant
// that bits above nbits are zero. `density` controls mask population so
// both the sparse shortcut and the dense vector paths are exercised.
RandomInput make_input(std::mt19937_64& rng, std::size_t nbits,
                       std::uint32_t max_value, double density) {
  RandomInput in;
  in.nbits = nbits;
  const std::size_t words = (nbits + 63) / 64;
  in.mask.assign(words, 0);
  in.other.assign(words, 0);
  in.a0.assign(nbits, 0);
  in.a1.assign(nbits, 0);
  in.deg.assign(nbits, 0);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::uniform_int_distribution<std::uint32_t> val(0, max_value);
  for (std::size_t i = 0; i < nbits; ++i) {
    if (coin(rng) < density) in.mask[i / 64] |= std::uint64_t{1} << (i % 64);
    if (coin(rng) < 0.5) in.other[i / 64] |= std::uint64_t{1} << (i % 64);
    in.a0[i] = val(rng);
    in.a1[i] = val(rng);
    in.deg[i] = val(rng);
  }
  return in;
}

const std::size_t kSizes[] = {0, 1, 63, 64, 65, 80, 128,
                              160, 200, 257, 448, 1000, 2100};

TEST(SimdKernels, CountAndAndCountMatchScalar) {
  std::mt19937_64 rng(7);
  const auto& ref = kernels_for(DispatchLevel::kScalar);
  for (const DispatchLevel level : available_levels()) {
    const KernelTable& kt = kernels_for(level);
    for (const std::size_t nbits : kSizes) {
      for (const double density : {0.05, 0.5, 0.97}) {
        const RandomInput in = make_input(rng, nbits, 9, density);
        const std::size_t words = in.mask.size();
        EXPECT_EQ(kt.count(in.mask.data(), words),
                  ref.count(in.mask.data(), words));
        EXPECT_EQ(kt.and_count(in.mask.data(), in.other.data(), words),
                  ref.and_count(in.mask.data(), in.other.data(), words));
      }
    }
  }
}

TEST(SimdKernels, AssignOpsMatchScalar) {
  std::mt19937_64 rng(11);
  const auto& ref = kernels_for(DispatchLevel::kScalar);
  for (const DispatchLevel level : available_levels()) {
    const KernelTable& kt = kernels_for(level);
    for (const std::size_t nbits : kSizes) {
      const RandomInput in = make_input(rng, nbits, 9, 0.5);
      const std::size_t words = in.mask.size();
      auto a_or = in.mask, a_and = in.mask, a_andnot = in.mask;
      auto r_or = in.mask, r_and = in.mask, r_andnot = in.mask;
      kt.or_assign(a_or.data(), in.other.data(), words);
      kt.and_assign(a_and.data(), in.other.data(), words);
      kt.andnot_assign(a_andnot.data(), in.other.data(), words);
      ref.or_assign(r_or.data(), in.other.data(), words);
      ref.and_assign(r_and.data(), in.other.data(), words);
      ref.andnot_assign(r_andnot.data(), in.other.data(), words);
      EXPECT_EQ(a_or, r_or);
      EXPECT_EQ(a_and, r_and);
      EXPECT_EQ(a_andnot, r_andnot);
    }
  }
}

TEST(SimdKernels, MultiAndCountMatchesScalar) {
  std::mt19937_64 rng(13);
  const auto& ref = kernels_for(DispatchLevel::kScalar);
  for (const DispatchLevel level : available_levels()) {
    const KernelTable& kt = kernels_for(level);
    for (const std::size_t nbits : {std::size_t{0}, std::size_t{80},
                                    std::size_t{200}}) {
      const std::size_t words = (nbits + 63) / 64;
      std::vector<std::vector<std::uint64_t>> rows_data;
      std::vector<const std::uint64_t*> rows;
      for (int r = 0; r < 9; ++r) {
        rows_data.push_back(make_input(rng, nbits, 1, 0.4).mask);
        rows.push_back(rows_data.back().data());
      }
      const RandomInput in = make_input(rng, nbits, 1, 0.6);
      std::vector<std::uint32_t> got(rows.size(), 0xdead);
      std::vector<std::uint32_t> want(rows.size(), 0xbeef);
      kt.multi_and_count(rows.data(), in.mask.data(), words, rows.size(),
                         got.data());
      ref.multi_and_count(rows.data(), in.mask.data(), words, rows.size(),
                          want.data());
      EXPECT_EQ(got, want);
    }
  }
}

// max_value < 1024 exercises the packed 32-bit key path; the larger
// bound forces the wide 64-bit path. Both must reproduce the scalar
// first-max-in-index-order tie break bit for bit, which the low-value
// runs stress hard (dozens of exact key ties per mask).
TEST(SimdKernels, SelectMaxKeyMatchesScalar) {
  std::mt19937_64 rng(17);
  const auto& ref = kernels_for(DispatchLevel::kScalar);
  for (const DispatchLevel level : available_levels()) {
    const KernelTable& kt = kernels_for(level);
    for (const std::size_t nbits : kSizes) {
      for (const std::uint32_t max_value : {0u, 3u, 1023u, 40000u}) {
        for (const double density : {0.08, 0.5, 1.0}) {
          const RandomInput in = make_input(rng, nbits, max_value, density);
          EXPECT_EQ(kt.select_max_key(in.mask.data(), nbits, in.a0.data(),
                                      in.a1.data(), in.deg.data(), max_value),
                    ref.select_max_key(in.mask.data(), nbits, in.a0.data(),
                                       in.a1.data(), in.deg.data(), max_value))
              << "level=" << to_string(level) << " nbits=" << nbits
              << " max_value=" << max_value << " density=" << density;
        }
      }
    }
  }
}

// Also check select against a from-scratch reference (not just the
// shipped scalar kernel), so a shared bug cannot hide.
TEST(SimdKernels, SelectMaxKeyMatchesBruteForce) {
  std::mt19937_64 rng(19);
  for (const DispatchLevel level : available_levels()) {
    const KernelTable& kt = kernels_for(level);
    for (int trial = 0; trial < 40; ++trial) {
      const std::size_t nbits = 1 + static_cast<std::size_t>(rng() % 200);
      const RandomInput in = make_input(rng, nbits, 6, 0.6);
      std::uint64_t best_key = 0;
      std::size_t best = static_cast<std::size_t>(-1);
      for (std::size_t i = 0; i < nbits; ++i) {
        if (((in.mask[i / 64] >> (i % 64)) & 1u) == 0) continue;
        const std::uint64_t d = in.a0[i] > in.a1[i] ? in.a0[i] - in.a1[i]
                                                    : in.a1[i] - in.a0[i];
        const std::uint64_t key = (d << 42) |
                                  (std::uint64_t{in.a0[i] + in.a1[i]} << 21) |
                                  in.deg[i];
        if (key + 1 > best_key) {
          best_key = key + 1;
          best = i;
        }
      }
      EXPECT_EQ(kt.select_max_key(in.mask.data(), nbits, in.a0.data(),
                                  in.a1.data(), in.deg.data(), 6),
                best);
    }
  }
}

// Sweeps max_diff across every histogram tier: <= 4 (combined signed
// field accumulator, both below and above its word-capacity gate),
// 5..16 (per-bucket movemask), > 16 (scalar fallback inside the vector
// kernel), plus sparse masks that take the delegation shortcut.
TEST(SimdKernels, DiffHistogramMatchesScalar) {
  std::mt19937_64 rng(23);
  const auto& ref = kernels_for(DispatchLevel::kScalar);
  for (const DispatchLevel level : available_levels()) {
    const KernelTable& kt = kernels_for(level);
    for (const std::size_t nbits : kSizes) {
      for (const std::uint32_t max_diff : {1u, 4u, 9u, 16u, 25u}) {
        for (const double density : {0.06, 0.5, 1.0}) {
          const RandomInput in = make_input(rng, nbits, max_diff, density);
          std::vector<std::uint32_t> gp(2, 0), wp(2, 0);
          std::vector<std::uint32_t> gb0(max_diff + 1, 0), gb1(max_diff + 1, 0);
          std::vector<std::uint32_t> wb0(max_diff + 1, 0), wb1(max_diff + 1, 0);
          kt.diff_histogram(in.mask.data(), nbits, in.a0.data(), in.a1.data(),
                            max_diff, gp.data(), gb0.data(), gb1.data());
          ref.diff_histogram(in.mask.data(), nbits, in.a0.data(), in.a1.data(),
                             max_diff, wp.data(), wb0.data(), wb1.data());
          EXPECT_EQ(gp, wp) << "level=" << to_string(level)
                            << " nbits=" << nbits << " max_diff=" << max_diff;
          EXPECT_EQ(gb0, wb0);
          EXPECT_EQ(gb1, wb1);
        }
      }
    }
  }
}

TEST(SimdDispatch, LevelNamesRoundTrip) {
  for (const DispatchLevel level :
       {DispatchLevel::kScalar, DispatchLevel::kAvx2, DispatchLevel::kAvx512}) {
    DispatchLevel parsed = DispatchLevel::kScalar;
    ASSERT_TRUE(parse_level(to_string(level), parsed));
    EXPECT_EQ(parsed, level);
  }
  DispatchLevel out = DispatchLevel::kAvx2;
  EXPECT_FALSE(parse_level("sse9", out));
  EXPECT_EQ(out, DispatchLevel::kAvx2);  // untouched on failure
}

// CI's dispatch legs (AVX2 pin, scalar-fallback pin) export
// BFLY_SIMD_DISPATCH and rely on the pin being honored at startup;
// asserted here so a broken env override fails its leg instead of
// silently exercising the wrong kernels. Unpinned runs skip.
TEST(SimdDispatch, EnvPinIsHonored) {
  const char* env = std::getenv("BFLY_SIMD_DISPATCH");
  if (env == nullptr || *env == '\0') {
    GTEST_SKIP() << "BFLY_SIMD_DISPATCH not set";
  }
  DispatchLevel requested = DispatchLevel::kScalar;
  if (!parse_level(env, requested)) {
    GTEST_SKIP() << "unparseable pin '" << env << "' (startup clamps it)";
  }
  EXPECT_EQ(active_level(), std::min(requested, detected_level()));
}

TEST(SimdDispatch, SetActiveLevelClampsAndRestores) {
  const DispatchLevel initial = active_level();
  EXPECT_LE(initial, detected_level());
  // Scalar is always available.
  EXPECT_TRUE(set_active_level(DispatchLevel::kScalar));
  EXPECT_EQ(active_level(), DispatchLevel::kScalar);
  // Above-detection requests are refused without side effects.
  if (detected_level() < DispatchLevel::kAvx512) {
    EXPECT_FALSE(set_active_level(DispatchLevel::kAvx512));
    EXPECT_EQ(active_level(), DispatchLevel::kScalar);
  }
  // The active table and the per-level table are the same object.
  EXPECT_EQ(&kernels(), &kernels_for(active_level()));
  EXPECT_TRUE(set_active_level(initial));
  EXPECT_EQ(active_level(), initial);
}

}  // namespace
}  // namespace bfly::simd
