// Differential suite for the word-level exact kernels: the bitset
// branch-and-bound and the sharded expansion sweep must reproduce their
// scalar references' values (capacity / ee / ne) exactly — on random
// graphs, on the paper's instances, in subset mode, in parallel, and
// through the cancellation/budget paths. Runs under every sanitizer
// flavor; carries the tsan label because the parallel kernels share an
// incumbent and pooled counters across worker threads.
#include <gtest/gtest.h>

#include <atomic>

#include "core/bitset64.hpp"
#include "core/rng.hpp"
#include "cut/branch_bound.hpp"
#include "expansion/expansion.hpp"
#include "topology/butterfly.hpp"
#include "topology/ccc.hpp"
#include "topology/wrapped_butterfly.hpp"

namespace bfly {
namespace {

Graph random_graph(NodeId n, double p, std::uint64_t seed) {
  Rng rng(seed);
  GraphBuilder gb(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (rng.bernoulli(p)) gb.add_edge(u, v);
    }
  }
  return std::move(gb).build();
}

// --- Bitset64 word-level primitives ---

TEST(Bitset64Ops, AndCountOrAndNot) {
  Bitset64 a(130), b(130);
  for (std::size_t i = 0; i < 130; i += 3) a.set(i);
  for (std::size_t i = 0; i < 130; i += 5) b.set(i);
  std::size_t expected = 0;
  for (std::size_t i = 0; i < 130; i += 15) ++expected;
  EXPECT_EQ(a.and_count(b), expected);

  Bitset64 u = a;
  u.or_assign(b);
  EXPECT_EQ(u.count(), a.count() + b.count() - expected);

  Bitset64 i = a;
  i.and_assign(b);
  EXPECT_EQ(i.count(), expected);

  Bitset64 d = a;
  d.andnot_assign(b);
  EXPECT_EQ(d.count(), a.count() - expected);
  EXPECT_EQ(d.and_count(b), 0u);
}

TEST(Bitset64Ops, SetAllMasksTailWord) {
  Bitset64 s(70);
  s.set_all();
  EXPECT_EQ(s.count(), 70u);
  EXPECT_EQ(s.num_words(), 2u);
  EXPECT_EQ(s.words()[1], (1ull << 6) - 1);
  s.reset(69);
  EXPECT_EQ(s.count(), 69u);
}

// --- packed adjacency cache ---

TEST(PackedAdjacency, MatchesCsrRows) {
  const Graph g = random_graph(40, 0.2, 17);
  const auto& rows = g.adjacency_bitsets();
  ASSERT_EQ(rows.size(), g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    Bitset64 expect(g.num_nodes());
    for (const NodeId w : g.neighbors(v)) expect.set(w);
    EXPECT_EQ(rows[v], expect);
    EXPECT_EQ(&g.adjacency_row(v), &rows[v]);
  }
  EXPECT_FALSE(g.has_parallel_edges());
}

TEST(PackedAdjacency, CopiesShareTheCache) {
  const Graph g = random_graph(12, 0.4, 3);
  const auto* before = &g.adjacency_bitsets();
  const Graph copy = g;  // NOLINT(performance-unnecessary-copy-initialization)
  EXPECT_EQ(&copy.adjacency_bitsets(), before);
}

TEST(PackedAdjacency, ParallelEdgesAreDetectedAndCollapse) {
  GraphBuilder gb(4);
  gb.add_edge(0, 1);
  gb.add_edge(0, 1);
  gb.add_edge(2, 3);
  const Graph g = std::move(gb).build();
  EXPECT_TRUE(g.has_parallel_edges());
  EXPECT_EQ(g.adjacency_row(0).count(), 1u);  // multiplicity collapsed
}

// --- branch-and-bound: bitset kernel vs scalar reference ---

void expect_same_capacity(const Graph& g, cut::BranchBoundOptions base = {}) {
  base.kernel = cut::BranchBoundKernel::kScalar;
  const auto scalar = cut::min_bisection_branch_bound(g, base);
  base.kernel = cut::BranchBoundKernel::kBitset;
  base.num_threads = 1;
  const auto serial = cut::min_bisection_branch_bound(g, base);
  base.num_threads = 4;
  const auto parallel = cut::min_bisection_branch_bound(g, base);

  EXPECT_EQ(scalar.exactness, cut::Exactness::kExact);
  EXPECT_EQ(serial.exactness, cut::Exactness::kExact);
  EXPECT_EQ(parallel.exactness, cut::Exactness::kExact);
  EXPECT_EQ(serial.capacity, scalar.capacity);
  EXPECT_EQ(parallel.capacity, scalar.capacity);
  // validate_cut runs inside the solver under checked builds; recheck
  // here so the differential holds in NDEBUG flavors too.
  cut::validate_cut(g, serial, base.bisect_subset.empty());
  cut::validate_cut(g, parallel, base.bisect_subset.empty());
}

TEST(BitsetBranchBound, RandomGraphsMatchScalar) {
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    const double p = 0.15 + 0.06 * static_cast<double>(seed % 5);
    const Graph g = random_graph(static_cast<NodeId>(10 + seed), p, seed);
    SCOPED_TRACE(testing::Message() << "seed=" << seed);
    expect_same_capacity(g);
  }
}

TEST(BitsetBranchBound, PaperInstancesMatchScalar) {
  expect_same_capacity(topo::Butterfly(2).graph());
  expect_same_capacity(topo::Butterfly(4).graph());
  expect_same_capacity(topo::WrappedButterfly(8).graph());
  expect_same_capacity(topo::CubeConnectedCycles(8).graph());
}

TEST(BitsetBranchBound, KnownWidths) {
  cut::BranchBoundOptions opts;
  opts.kernel = cut::BranchBoundKernel::kBitset;
  const auto b8 = cut::min_bisection_branch_bound(topo::Butterfly(8).graph(),
                                                  opts);
  EXPECT_EQ(b8.capacity, 8u);  // BW(B8) = 8 (paper Table, n = 8)
  EXPECT_EQ(b8.method, "branch-and-bound-bitset");
  EXPECT_GT(b8.nodes_visited, 0u);
}

TEST(BitsetBranchBound, SubsetModeMatchesScalar) {
  const Graph g = random_graph(14, 0.3, 23);
  const std::vector<NodeId> subset = {0, 2, 3, 5, 7, 11};
  cut::BranchBoundOptions base;
  base.bisect_subset = subset;
  base.kernel = cut::BranchBoundKernel::kScalar;
  const auto scalar = cut::min_bisection_branch_bound(g, base);
  base.kernel = cut::BranchBoundKernel::kBitset;
  for (const unsigned threads : {1u, 3u}) {
    base.num_threads = threads;
    const auto bitset = cut::min_bisection_branch_bound(g, base);
    EXPECT_EQ(bitset.capacity, scalar.capacity);
    EXPECT_TRUE(cut::bisects_subset(bitset.sides, subset));
    EXPECT_EQ(bitset.method, "branch-and-bound-bitset-subset");
  }
}

TEST(BitsetBranchBound, MultigraphsFallBackToScalarUnderAuto) {
  // W4's wraparound and CCC4's two-node cycles produce parallel edges;
  // the packed adjacency collapses them, so kAuto must route to the
  // scalar kernel (which counts multiplicities) and kBitset must refuse.
  for (const Graph& g : {topo::WrappedButterfly(4).graph(),
                         topo::CubeConnectedCycles(4).graph()}) {
    ASSERT_TRUE(g.has_parallel_edges());
    const auto res = cut::min_bisection_branch_bound(g);
    EXPECT_EQ(res.method, "branch-and-bound");  // scalar path
    cut::BranchBoundOptions opts;
    opts.kernel = cut::BranchBoundKernel::kBitset;
    EXPECT_THROW(cut::min_bisection_branch_bound(g, opts), PreconditionError);
  }
}

TEST(BitsetBranchBound, SeedDepthAndThreadCountDoNotChangeCapacity) {
  const Graph g = topo::WrappedButterfly(8).graph();
  cut::BranchBoundOptions opts;
  opts.kernel = cut::BranchBoundKernel::kBitset;
  const auto reference = cut::min_bisection_branch_bound(g, opts);
  for (const unsigned threads : {2u, 4u, 8u}) {
    for (const unsigned depth : {0u, 6u, 10u}) {
      opts.num_threads = threads;
      opts.seed_depth = depth;
      const auto res = cut::min_bisection_branch_bound(g, opts);
      EXPECT_EQ(res.capacity, reference.capacity)
          << "threads=" << threads << " seed_depth=" << depth;
      EXPECT_EQ(res.exactness, cut::Exactness::kExact);
    }
  }
}

TEST(BitsetBranchBound, NodeLimitDegradesExactness) {
  const Graph g = random_graph(18, 0.5, 3);
  cut::BranchBoundOptions opts;
  opts.kernel = cut::BranchBoundKernel::kBitset;
  opts.node_limit = 10;
  for (const unsigned threads : {1u, 4u}) {
    opts.num_threads = threads;
    const auto res = cut::min_bisection_branch_bound(g, opts);
    EXPECT_EQ(res.exactness, cut::Exactness::kHeuristic);
  }
}

TEST(BitsetBranchBound, CancelTokenAbortsParallelSearch) {
  const Graph g = random_graph(20, 0.5, 5);
  CancelToken cancel;
  cancel.request_stop();  // already fired: the search must wind down
  cut::BranchBoundOptions opts;
  opts.kernel = cut::BranchBoundKernel::kBitset;
  opts.num_threads = 4;
  opts.cancel = &cancel;
  const auto res = cut::min_bisection_branch_bound(g, opts);
  EXPECT_EQ(res.exactness, cut::Exactness::kHeuristic);
}

TEST(BitsetBranchBound, LiveBoundBelowOptimumProvesWithoutWitness) {
  const topo::Butterfly bf(4);
  const std::atomic<std::size_t> live{4};  // == BW(B4): nothing better
  cut::BranchBoundOptions opts;
  opts.kernel = cut::BranchBoundKernel::kBitset;
  opts.live_bound = &live;
  const auto res = cut::min_bisection_branch_bound(bf.graph(), opts);
  EXPECT_EQ(res.exactness, cut::Exactness::kExact);
  EXPECT_EQ(res.capacity, static_cast<std::size_t>(-1));
  EXPECT_TRUE(res.sides.empty());
}

// --- exhaustive expansion: sharded sweep vs serial reference ---

void expect_same_tables(const Graph& g) {
  expansion::ExactExpansionOptions opts;
  opts.max_states = 1ull << 27;
  const auto serial = expansion::exact_expansion_full(g, opts);
  ASSERT_EQ(serial.exactness, cut::Exactness::kExact);
  ASSERT_EQ(serial.visited_states, 1ull << g.num_nodes());

  expansion::ExactExpansionOptions sharded = opts;
  sharded.shard_bits = 3;
  for (const unsigned threads : {1u, 4u}) {
    sharded.num_threads = threads;
    const auto res = expansion::exact_expansion_full(g, sharded);
    EXPECT_EQ(res.exactness, cut::Exactness::kExact);
    EXPECT_EQ(res.visited_states, serial.visited_states);
    ASSERT_EQ(res.table.size(), serial.table.size());
    for (std::size_t k = 1; k < serial.table.size(); ++k) {
      EXPECT_EQ(res.table[k].ee, serial.table[k].ee) << "k=" << k;
      EXPECT_EQ(res.table[k].ne, serial.table[k].ne) << "k=" << k;
      expansion::validate_expansion_entry(g, k, res.table[k]);
    }
  }
}

TEST(ShardedExpansion, RandomGraphsMatchSerial) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    SCOPED_TRACE(testing::Message() << "seed=" << seed);
    expect_same_tables(random_graph(static_cast<NodeId>(11 + seed),
                                    0.25 + 0.1 * static_cast<double>(seed),
                                    seed + 41));
  }
}

TEST(ShardedExpansion, ButterflyMatchesSerial) {
  expect_same_tables(topo::Butterfly(4).graph());  // 12 nodes, 2^12 states
}

TEST(ShardedExpansion, StateBudgetDegradesExactness) {
  const Graph g = random_graph(16, 0.3, 9);
  expansion::ExactExpansionOptions opts;
  opts.state_budget = 100;
  const auto res = expansion::exact_expansion_full(g, opts);
  EXPECT_EQ(res.exactness, cut::Exactness::kHeuristic);
  EXPECT_LT(res.visited_states, 1ull << 16);
}

TEST(ShardedExpansion, CancelTokenAborts) {
  const Graph g = random_graph(18, 0.3, 9);
  CancelToken cancel;
  cancel.request_stop();
  expansion::ExactExpansionOptions opts;
  opts.cancel = &cancel;
  opts.num_threads = 4;
  const auto res = expansion::exact_expansion_full(g, opts);
  EXPECT_EQ(res.exactness, cut::Exactness::kHeuristic);
}

TEST(SizeKExpansion, WorkBudgetDegradesExactness) {
  const Graph g = topo::Butterfly(8).graph();
  expansion::SizeKExpansionOptions opts;
  opts.work_budget = 50;
  const auto res = expansion::exact_expansion_of_size_full(g, 4, opts);
  EXPECT_EQ(res.exactness, cut::Exactness::kHeuristic);
  EXPECT_LE(res.visited_subsets, 51u);
}

TEST(SizeKExpansion, CompletedRunMatchesFullSweep) {
  const topo::Butterfly bf(4);
  const auto table = expansion::exact_expansion(bf.graph());
  for (std::size_t k = 1; k <= 4; ++k) {
    const auto res = expansion::exact_expansion_of_size_full(bf.graph(), k);
    EXPECT_EQ(res.exactness, cut::Exactness::kExact);
    EXPECT_EQ(res.entry.ee, table[k].ee) << "k=" << k;
    EXPECT_EQ(res.entry.ne, table[k].ne) << "k=" << k;
    EXPECT_GT(res.visited_subsets, 0u);
  }
}

TEST(SizeKExpansion, PreFiredCancelLeavesEntryUnseen) {
  const Graph g = topo::Butterfly(8).graph();
  CancelToken cancel;
  cancel.request_stop();
  expansion::SizeKExpansionOptions opts;
  opts.cancel = &cancel;
  opts.work_budget = 1;  // force the first extension over budget
  const auto res = expansion::exact_expansion_of_size_full(g, 6, opts);
  EXPECT_EQ(res.exactness, cut::Exactness::kHeuristic);
  EXPECT_TRUE(res.entry.ee_witness.empty());
  EXPECT_EQ(res.entry.ee, static_cast<std::size_t>(-1));
}

}  // namespace
}  // namespace bfly
