// Unit tests for the core substrate: graph construction, partitions,
// bitsets, RNG, math helpers, thread pool.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "core/bitset64.hpp"
#include "core/error.hpp"
#include "core/graph.hpp"
#include "core/math_util.hpp"
#include "core/partition.hpp"
#include "core/rng.hpp"
#include "core/thread_pool.hpp"

namespace bfly {
namespace {

Graph triangle() {
  GraphBuilder gb(3);
  gb.add_edge(0, 1);
  gb.add_edge(1, 2);
  gb.add_edge(0, 2);
  return std::move(gb).build();
}

TEST(Graph, BasicConstruction) {
  const Graph g = triangle();
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 0));
  EXPECT_EQ(g.max_degree(), 2u);
  EXPECT_EQ(g.degree_sum(), 6u);
}

TEST(Graph, NeighborsSorted) {
  GraphBuilder gb(5);
  gb.add_edge(3, 0);
  gb.add_edge(3, 4);
  gb.add_edge(3, 1);
  const Graph g = std::move(gb).build();
  const auto nb = g.neighbors(3);
  ASSERT_EQ(nb.size(), 3u);
  EXPECT_TRUE(std::is_sorted(nb.begin(), nb.end()));
}

TEST(Graph, ParallelEdges) {
  GraphBuilder gb(2);
  gb.add_edge(0, 1);
  gb.add_edge(1, 0);
  gb.add_edge(0, 1);
  const Graph g = std::move(gb).build();
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.edge_multiplicity(0, 1), 3u);
  EXPECT_EQ(g.degree(0), 3u);
}

TEST(Graph, RejectsSelfLoopsAndOutOfRange) {
  GraphBuilder gb(2);
  EXPECT_THROW(gb.add_edge(0, 0), PreconditionError);
  EXPECT_THROW(gb.add_edge(0, 2), PreconditionError);
}

TEST(Graph, EdgeEndpointsNormalized) {
  GraphBuilder gb(4);
  gb.add_edge(3, 1);
  const Graph g = std::move(gb).build();
  const auto [u, v] = g.edge(0);
  EXPECT_EQ(u, 1u);
  EXPECT_EQ(v, 3u);
}

TEST(Partition, CapacityTracking) {
  const Graph g = triangle();
  Partition p(g);
  EXPECT_EQ(p.cut_capacity(), 0u);
  p.move(0);
  EXPECT_EQ(p.cut_capacity(), 2u);
  EXPECT_EQ(p.cut_capacity(), p.recompute_capacity());
  p.move(1);
  EXPECT_EQ(p.cut_capacity(), 2u);
  EXPECT_EQ(p.cut_capacity(), p.recompute_capacity());
  p.move(0);
  EXPECT_EQ(p.cut_capacity(), 2u);
  EXPECT_EQ(p.side_size(1), 1u);
}

TEST(Partition, GainMatchesMoveDelta) {
  GraphBuilder gb(6);
  gb.add_edge(0, 1);
  gb.add_edge(0, 2);
  gb.add_edge(1, 2);
  gb.add_edge(2, 3);
  gb.add_edge(3, 4);
  gb.add_edge(4, 5);
  const Graph g = std::move(gb).build();
  std::vector<std::uint8_t> sides = {0, 0, 0, 1, 1, 1};
  Partition p(g, sides);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto before = static_cast<std::int64_t>(p.cut_capacity());
    const auto gain = p.gain(v);
    p.move(v);
    EXPECT_EQ(static_cast<std::int64_t>(p.cut_capacity()), before - gain);
    EXPECT_EQ(p.cut_capacity(), p.recompute_capacity());
    p.move(v);  // restore
  }
}

TEST(Partition, IsBisection) {
  const Graph g = triangle();
  Partition p(g);
  EXPECT_FALSE(p.is_bisection());
  p.move(0);
  EXPECT_TRUE(p.is_bisection());  // 1 vs 2 with N=3 (ceil = 2)
}

TEST(Partition, SwapAcrossRequiresOppositeSides) {
  const Graph g = triangle();
  Partition p(g);
  p.move(0);
  EXPECT_NO_THROW(p.swap_across(0, 1));   // 0 and 1 are on opposite sides
  EXPECT_THROW(p.swap_across(0, 2), PreconditionError);  // both on side 0
}

TEST(Bitset64, SetTestCount) {
  Bitset64 b(130);
  EXPECT_EQ(b.count(), 0u);
  b.set(0);
  b.set(64);
  b.set(129);
  EXPECT_TRUE(b.test(64));
  EXPECT_FALSE(b.test(63));
  EXPECT_EQ(b.count(), 3u);
  b.flip(64);
  EXPECT_EQ(b.count(), 2u);
  std::vector<std::size_t> seen;
  b.for_each_set([&](std::size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<std::size_t>{0, 129}));
  b.clear();
  EXPECT_FALSE(b.any());
}

TEST(Rng, DeterministicAndInRange) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a.next(), b.next());
  EXPECT_NE(a.next(), c.next());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(a.below(17), 17u);
    const double u = a.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(7);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  shuffle(v, rng);
  std::set<int> s(v.begin(), v.end());
  EXPECT_EQ(s.size(), 100u);
}

TEST(MathUtil, PowersAndLogs) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(6));
  EXPECT_EQ(log2_exact(32), 5u);
  EXPECT_THROW(static_cast<void>(log2_exact(33)), PreconditionError);
  EXPECT_EQ(log2_floor(33), 5u);
  EXPECT_EQ(ceil_div(7, 3), 3u);
  EXPECT_EQ(ipow(3, 4), 81u);
  EXPECT_DOUBLE_EQ(binomial_approx(5, 2), 10.0);
}

TEST(ThreadPool, ParallelForCoversRange) {
  std::vector<std::atomic<int>> hits(257);
  parallel_for(257, [&](std::size_t i) { hits[i].fetch_add(1); }, 4);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, PropagatesExceptions) {
  EXPECT_THROW(
      parallel_for(
          8, [](std::size_t i) { if (i == 3) throw std::runtime_error("x"); },
          2),
      std::runtime_error);
}

TEST(CutCapacity, Standalone) {
  const Graph g = triangle();
  EXPECT_EQ(cut_capacity(g, {0, 1, 1}), 2u);
  EXPECT_EQ(cut_capacity(g, {0, 0, 0}), 0u);
  EXPECT_THROW(static_cast<void>(cut_capacity(g, {0, 1})),
               PreconditionError);
}

}  // namespace
}  // namespace bfly
