// Robustness suite: deterministic fault injection, checkpoint/resume
// of the exact bisection search, and the resilient solve supervisor
// (watchdog, retry, graceful degradation). Carries the `fault` ctest
// label — `ctest -L fault` is the CI fault-suite entry point. Tests
// that need compiled-in BFLY_FAULT_POINT hooks skip themselves in
// builds configured with -DBFLY_FAULT_INJECTION=OFF.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <thread>
#include <filesystem>
#include <new>
#include <string>
#include <vector>

#include "core/thread_pool.hpp"
#include "algo/automorphism.hpp"
#include "cut/branch_bound.hpp"
#include "robust/checkpoint.hpp"
#include "robust/fault_injection.hpp"
#include "robust/supervisor.hpp"
#include "topology/butterfly.hpp"

namespace bfly {
namespace {

std::filesystem::path temp_snapshot_path(const std::string& name) {
  auto p = std::filesystem::path(testing::TempDir()) / (name + ".snap");
  std::filesystem::remove(p);
  return p;
}

cut::BranchBoundSearchState make_state() {
  cut::BranchBoundSearchState st;
  st.seed_depth = 7;
  st.prefix_done = {1, 0, 1, 1, 0, 0, 1, 0};
  st.incumbent_capacity = 8;
  st.incumbent_sides = {0, 1, 1, 0, 1, 0, 0, 1, 1, 0, 0, 1};
  st.nodes_spent = 123456;
  st.symmetry_mode = 1;
  st.tt_hits = 77;
  st.tt_stores = 5501;
  return st;
}

void expect_state_eq(const cut::BranchBoundSearchState& a,
                     const cut::BranchBoundSearchState& b) {
  EXPECT_EQ(a.seed_depth, b.seed_depth);
  EXPECT_EQ(a.prefix_done, b.prefix_done);
  EXPECT_EQ(a.incumbent_capacity, b.incumbent_capacity);
  EXPECT_EQ(a.incumbent_sides, b.incumbent_sides);
  EXPECT_EQ(a.nodes_spent, b.nodes_spent);
  EXPECT_EQ(a.symmetry_mode, b.symmetry_mode);
  EXPECT_EQ(a.tt_hits, b.tt_hits);
  EXPECT_EQ(a.tt_stores, b.tt_stores);
}

// FNV-1a as the snapshot format uses it, for tests that re-seal a
// deliberately damaged payload behind a VALID checksum — the semantic
// validators, not the checksum, must reject those.
std::uint64_t test_fnv1a(const std::uint8_t* data, std::size_t len) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

void reseal_checksum(std::vector<std::uint8_t>& bytes) {
  const std::uint64_t h = test_fnv1a(bytes.data(), bytes.size() - 8);
  for (int i = 0; i < 8; ++i) {
    bytes[bytes.size() - 8 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(h >> (8 * i));
  }
}

// --- Fault injection mechanics ---

TEST(FaultInjection, DisarmedInjectorIsInert) {
  // Whatever the build flavor, an unarmed injector must never fire.
  const auto res =
      cut::min_bisection_branch_bound(topo::Butterfly(4).graph());
  EXPECT_EQ(res.exactness, cut::Exactness::kExact);
}

TEST(FaultInjection, ArmedPlanFiresDeterministically) {
  if (!fault::compiled_in()) {
    GTEST_SKIP() << "BFLY_FAULT_INJECTION is off in this build";
  }
  const Graph g = topo::Butterfly(4).graph();
  {
    fault::ScopedFaultPlan plan(
        fault::FaultPlan{}.set(fault::Site::kAlloc, /*fire_at_hit=*/1));
    EXPECT_THROW((void)cut::min_bisection_branch_bound(g), std::bad_alloc);
    auto& inj = fault::FaultInjector::instance();
    EXPECT_EQ(inj.fired(fault::Site::kAlloc), 1u);
    EXPECT_GE(inj.hits(fault::Site::kAlloc), 1u);
  }
  // Plan disarmed by scope exit: the same call now succeeds.
  EXPECT_EQ(cut::min_bisection_branch_bound(g).exactness,
            cut::Exactness::kExact);
}

TEST(FaultInjection, TaskSpawnFailureDoesNotLeakThreads) {
  if (!fault::compiled_in()) {
    GTEST_SKIP() << "BFLY_FAULT_INJECTION is off in this build";
  }
  // The second spawn fails; TaskGroup must join the first worker and
  // rethrow instead of destroying a joinable std::thread (which would
  // terminate the process). Leak/race flavors of the suite double-check
  // the cleanup.
  fault::ScopedFaultPlan plan(
      fault::FaultPlan{}.set(fault::Site::kTaskSpawn, /*fire_at_hit=*/2));
  std::atomic<int> ran{0};
  TaskGroup group(4);
  for (int i = 0; i < 8; ++i) {
    group.add([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  EXPECT_THROW(group.wait(), fault::FaultInjectedError);
  EXPECT_LE(ran.load(std::memory_order_relaxed), 8);
}

TEST(FaultInjection, RandomPlansAreSeedDeterministic) {
  const auto a = fault::FaultPlan::random(1234);
  const auto b = fault::FaultPlan::random(1234);
  const auto c = fault::FaultPlan::random(1235);
  bool all_equal_ac = true;
  for (unsigned i = 0; i < fault::kNumSites; ++i) {
    const auto site = static_cast<fault::Site>(i);
    EXPECT_EQ(a.rule(site).fire_at_hit, b.rule(site).fire_at_hit);
    EXPECT_EQ(a.rule(site).fire_count, b.rule(site).fire_count);
    EXPECT_EQ(a.rule(site).delay_ms, b.rule(site).delay_ms);
    all_equal_ac = all_equal_ac &&
                   a.rule(site).fire_at_hit == c.rule(site).fire_at_hit;
  }
  EXPECT_FALSE(all_equal_ac) << "different seeds produced identical plans";
}

// --- Snapshot wire format ---

TEST(Checkpoint, EncodeDecodeRoundTrip) {
  const robust::BisectionSnapshot snap{0xfeedfacecafef00dull, make_state()};
  const auto bytes = robust::encode_snapshot(snap);
  const auto back = robust::decode_snapshot(bytes);
  EXPECT_EQ(back.fingerprint, snap.fingerprint);
  expect_state_eq(back.state, snap.state);
}

TEST(Checkpoint, EmptyStateRoundTrips) {
  // A snapshot before any incumbent exists: capacity SIZE_MAX, no sides.
  robust::BisectionSnapshot snap;
  snap.fingerprint = 7;
  snap.state.seed_depth = 3;
  snap.state.prefix_done = {0, 0, 0, 0};
  const auto back = robust::decode_snapshot(robust::encode_snapshot(snap));
  expect_state_eq(back.state, snap.state);
}

TEST(Checkpoint, EveryTruncationIsRejected) {
  const auto bytes =
      robust::encode_snapshot({0x1234ull, make_state()});
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_THROW(
        (void)robust::decode_snapshot(
            std::span<const std::uint8_t>(bytes.data(), len)),
        robust::SnapshotError)
        << "truncation to " << len << " bytes decoded";
  }
}

TEST(Checkpoint, EveryByteFlipIsRejected) {
  const auto bytes =
      robust::encode_snapshot({0x1234ull, make_state()});
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    auto mutated = bytes;
    mutated[i] ^= 0xff;
    EXPECT_THROW((void)robust::decode_snapshot(mutated),
                 robust::SnapshotError)
        << "flipping byte " << i << " decoded";
  }
}

TEST(Checkpoint, StructuredFaultsAreDistinguished) {
  const auto bytes = robust::encode_snapshot({0x1234ull, make_state()});
  {
    auto m = bytes;
    m[0] = 'X';  // magic
    try {
      (void)robust::decode_snapshot(m);
      FAIL() << "bad magic decoded";
    } catch (const robust::SnapshotError& e) {
      EXPECT_EQ(e.fault(), robust::SnapshotFault::kBadMagic);
    }
  }
  {
    auto m = bytes;
    m[8] = 99;  // version
    try {
      (void)robust::decode_snapshot(m);
      FAIL() << "bad version decoded";
    } catch (const robust::SnapshotError& e) {
      EXPECT_EQ(e.fault(), robust::SnapshotFault::kBadVersion);
    }
  }
  {
    auto m = bytes;
    m[m.size() - 1] ^= 0x01;  // checksum itself
    try {
      (void)robust::decode_snapshot(m);
      FAIL() << "bad checksum decoded";
    } catch (const robust::SnapshotError& e) {
      EXPECT_EQ(e.fault(), robust::SnapshotFault::kBadChecksum);
    }
  }
}

TEST(Checkpoint, HostileSymmetryModeIsRejectedBehindAValidChecksum) {
  // Corrupt the symmetry_mode byte to an undefined value and re-seal the
  // stream with a correct checksum: only the semantic validator can
  // catch it, and it must answer kMalformed, not kBadChecksum.
  auto bytes = robust::encode_snapshot({0x1234ull, make_state()});
  // Layout from the end: checksum u64, tt_stores u64, tt_hits u64,
  // symmetry_mode u8.
  const std::size_t mode_at = bytes.size() - 8 - 8 - 8 - 1;
  bytes[mode_at] = 2;
  reseal_checksum(bytes);
  try {
    (void)robust::decode_snapshot(bytes);
    FAIL() << "undefined symmetry mode decoded";
  } catch (const robust::SnapshotError& e) {
    EXPECT_EQ(e.fault(), robust::SnapshotFault::kMalformed);
  }
}

TEST(Checkpoint, Version1SnapshotsStillDecodeAsPlainMode) {
  // A v1 stream (pre-symmetry build) is a v2 stream minus the trailing
  // mode byte and table counters, with the version field at 1. It must
  // decode with those fields zero — i.e. resume as a plain-mode run.
  auto st = make_state();
  st.symmetry_mode = 0;
  st.tt_hits = 0;
  st.tt_stores = 0;
  auto bytes = robust::encode_snapshot({0x1234ull, st});
  bytes.erase(bytes.end() - 8 - 8 - 8 - 1, bytes.end() - 8);
  bytes[8] = 1;  // version field (little-endian u32 after the magic)
  reseal_checksum(bytes);
  const auto back = robust::decode_snapshot(bytes);
  expect_state_eq(back.state, st);
}

TEST(Checkpoint, SaveLoadAndFingerprintGuard) {
  const auto path = temp_snapshot_path("roundtrip");
  const Graph g = topo::Butterfly(4).graph();
  const std::uint64_t fp = robust::graph_fingerprint(g);
  EXPECT_FALSE(robust::snapshot_exists(path));
  robust::save_snapshot(path, {fp, make_state()});
  ASSERT_TRUE(robust::snapshot_exists(path));
  const auto back = robust::load_snapshot(path, fp);
  expect_state_eq(back.state, make_state());
  try {
    (void)robust::load_snapshot(path, fp + 1);
    FAIL() << "wrong-graph snapshot loaded";
  } catch (const robust::SnapshotError& e) {
    EXPECT_EQ(e.fault(), robust::SnapshotFault::kWrongGraph);
  }
  std::filesystem::remove(path);
}

TEST(Checkpoint, FingerprintSeparatesGraphs) {
  EXPECT_EQ(robust::graph_fingerprint(topo::Butterfly(8).graph()),
            robust::graph_fingerprint(topo::Butterfly(8).graph()));
  EXPECT_NE(robust::graph_fingerprint(topo::Butterfly(8).graph()),
            robust::graph_fingerprint(topo::Butterfly(4).graph()));
}

// --- Checkpointed search: determinism and kill-and-resume ---

TEST(CheckpointedSearch, CheckpointModeProvesTheSameOptimum) {
  const Graph g = topo::Butterfly(4).graph();
  const auto plain = cut::min_bisection_branch_bound(g);

  unsigned checkpoints = 0;
  cut::BranchBoundSearchState last;
  cut::BranchBoundOptions opts;
  opts.on_checkpoint = [&](const cut::BranchBoundSearchState& st) {
    ++checkpoints;
    last = st;
  };
  const auto chk = cut::min_bisection_branch_bound(g, opts);
  EXPECT_EQ(chk.capacity, plain.capacity);
  EXPECT_EQ(chk.exactness, cut::Exactness::kExact);
  EXPECT_GT(checkpoints, 1u);
  // The final checkpoint is the completed search: every prefix done,
  // the incumbent equal to the returned optimum.
  for (const auto d : last.prefix_done) EXPECT_EQ(d, 1);
  EXPECT_EQ(last.incumbent_capacity, chk.capacity);
  EXPECT_EQ(last.nodes_spent, chk.nodes_visited);
}

// The tentpole acceptance test: a serial checkpointed B8 solve killed
// mid-search (simulated crash) and resumed from its snapshot file must
// reach the IDENTICAL optimal cut, node count, and kExact tag as the
// uninterrupted run.
TEST(CheckpointedSearch, KillAndResumeReachesIdenticalOptimum) {
  if (!fault::compiled_in()) {
    GTEST_SKIP() << "BFLY_FAULT_INJECTION is off in this build";
  }
  const Graph g = topo::Butterfly(8).graph();  // B8, 32 nodes
  const std::uint64_t fp = robust::graph_fingerprint(g);
  const auto path = temp_snapshot_path("kill_resume_b8");

  // Uninterrupted reference, in checkpoint mode (the prefix driver) so
  // the interrupted run partitions the search tree identically. The
  // armed-but-quiet plan counts kCrash hits so the crash below can be
  // planted mid-run instead of at a guessed position.
  cut::CutResult reference;
  std::uint64_t crash_hits = 0;
  {
    fault::ScopedFaultPlan quiet((fault::FaultPlan()));
    cut::BranchBoundOptions opts;
    opts.on_checkpoint = [](const cut::BranchBoundSearchState&) {};
    reference = cut::min_bisection_branch_bound(g, opts);
    crash_hits = fault::FaultInjector::instance().hits(fault::Site::kCrash);
  }
  ASSERT_EQ(reference.exactness, cut::Exactness::kExact);
  EXPECT_EQ(reference.capacity, 8u);  // BW(B8) = 8 (paper Table 1)
  ASSERT_GT(crash_hits, 4u);

  // The doomed run: crash halfway through the kCrash hit sequence,
  // checkpointing to disk as it goes.
  {
    fault::ScopedFaultPlan crash(
        fault::FaultPlan{}.set(fault::Site::kCrash, crash_hits / 2));
    cut::BranchBoundOptions opts;
    opts.on_checkpoint = [&](const cut::BranchBoundSearchState& st) {
      robust::save_snapshot(path, {fp, st});
    };
    EXPECT_THROW((void)cut::min_bisection_branch_bound(g, opts),
                 fault::SimulatedCrash);
  }
  ASSERT_TRUE(robust::snapshot_exists(path));

  // "New process": restore from disk and finish the search.
  const auto snap = robust::load_snapshot(path, fp);
  bool some_done = false, all_done = true;
  for (const auto d : snap.state.prefix_done) {
    some_done = some_done || d != 0;
    all_done = all_done && d != 0;
  }
  EXPECT_TRUE(some_done);
  EXPECT_FALSE(all_done);

  cut::BranchBoundOptions opts;
  opts.resume = &snap.state;
  opts.on_checkpoint = [&](const cut::BranchBoundSearchState& st) {
    robust::save_snapshot(path, {fp, st});
  };
  const auto resumed = cut::min_bisection_branch_bound(g, opts);
  EXPECT_EQ(resumed.exactness, cut::Exactness::kExact);
  EXPECT_EQ(resumed.capacity, reference.capacity);
  EXPECT_EQ(resumed.sides, reference.sides);
  EXPECT_EQ(resumed.nodes_visited, reference.nodes_visited);
  std::filesystem::remove(path);
}

TEST(CheckpointedSearch, ResumeRejectsForeignState) {
  const Graph g = topo::Butterfly(4).graph();
  cut::BranchBoundSearchState st;
  st.seed_depth = 5;
  st.prefix_done = {1, 0};  // cannot match the re-enumerated prefixes
  cut::BranchBoundOptions opts;
  opts.resume = &st;
  EXPECT_THROW((void)cut::min_bisection_branch_bound(g, opts),
               PreconditionError);
}

TEST(CheckpointedSearch, ResumeRefusesAcrossSymmetryModes) {
  const topo::Butterfly b4(4);
  const Graph& g = b4.graph();
  const algo::PermutationGroup grp(g.num_nodes(),
                                   b4.automorphism_generators());

  cut::BranchBoundSearchState plain_final, sym_final;
  {
    cut::BranchBoundOptions opts;
    opts.on_checkpoint = [&](const cut::BranchBoundSearchState& st) {
      plain_final = st;
    };
    (void)cut::min_bisection_branch_bound(g, opts);
  }
  {
    cut::BranchBoundOptions opts;
    opts.symmetry = &grp;
    opts.on_checkpoint = [&](const cut::BranchBoundSearchState& st) {
      sym_final = st;
    };
    (void)cut::min_bisection_branch_bound(g, opts);
  }
  EXPECT_EQ(plain_final.symmetry_mode, 0);
  EXPECT_EQ(sym_final.symmetry_mode, 1);

  // Rewind both states so a resume would have real work left.
  for (auto& d : plain_final.prefix_done) d = 0;
  for (auto& d : sym_final.prefix_done) d = 0;
  plain_final.nodes_spent = 0;
  sym_final.nodes_spent = 0;

  {
    cut::BranchBoundOptions opts;  // sym snapshot into a plain run
    opts.resume = &sym_final;
    EXPECT_THROW((void)cut::min_bisection_branch_bound(g, opts),
                 PreconditionError);
  }
  {
    cut::BranchBoundOptions opts;  // plain snapshot into a sym run
    opts.symmetry = &grp;
    opts.resume = &plain_final;
    EXPECT_THROW((void)cut::min_bisection_branch_bound(g, opts),
                 PreconditionError);
  }
  {
    cut::BranchBoundOptions opts;  // matched modes resume fine
    opts.symmetry = &grp;
    opts.resume = &sym_final;
    const auto res = cut::min_bisection_branch_bound(g, opts);
    EXPECT_EQ(res.exactness, cut::Exactness::kExact);
    EXPECT_EQ(res.capacity, cut::min_bisection_branch_bound(g).capacity);
  }
}

// --- Supervisor ---

TEST(Supervisor, CleanSolveIsExactWithUntouchedLadder) {
  const Graph g = topo::Butterfly(4).graph();
  robust::Supervisor sup;
  const auto rep = sup.solve_bisection(g);
  EXPECT_EQ(rep.status, robust::SolveStatus::kExactOptimal);
  EXPECT_EQ(rep.degradation_step, 0u);
  EXPECT_EQ(rep.retries, 0u);
  EXPECT_EQ(rep.faults_survived, 0u);
  EXPECT_EQ(rep.best.method, "supervisor/branch-and-bound-bitset");
  cut::validate_cut(g, rep.best, /*require_bisection=*/true);
}

TEST(Supervisor, CrashRetryResumesFromCheckpointAndProvesOptimal) {
  if (!fault::compiled_in()) {
    GTEST_SKIP() << "BFLY_FAULT_INJECTION is off in this build";
  }
  const Graph g = topo::Butterfly(4).graph();
  const auto reference = cut::min_bisection_branch_bound(g);

  robust::SupervisorOptions so;
  so.checkpoint_path = temp_snapshot_path("supervisor_crash");
  so.backoff.initial_ms = 1.0;
  robust::Supervisor sup(so);

  fault::ScopedFaultPlan crash(
      fault::FaultPlan{}.set(fault::Site::kCrash, /*fire_at_hit=*/5));
  const auto rep = sup.solve_bisection(g);
  EXPECT_EQ(rep.status, robust::SolveStatus::kExactOptimal);
  EXPECT_EQ(rep.best.capacity, reference.capacity);
  EXPECT_EQ(rep.faults_survived, 1u);
  EXPECT_EQ(rep.retries, 1u);
  EXPECT_TRUE(rep.resumed);  // the retry picked up the crashed attempt's file
  EXPECT_EQ(rep.degradation_step, 0u);
  // A completed exact solve cleans its snapshot up.
  EXPECT_FALSE(robust::snapshot_exists(so.checkpoint_path));
}

TEST(Supervisor, DegradationLadderAlwaysReturnsAValidCut) {
  if (!fault::compiled_in()) {
    GTEST_SKIP() << "BFLY_FAULT_INJECTION is off in this build";
  }
  const Graph g = topo::Butterfly(4).graph();
  robust::SupervisorOptions so;
  so.max_retries = 1;
  so.backoff.initial_ms = 1.0;
  robust::Supervisor sup(so);

  // Allocation failure on EVERY exact-solver entry: both exact rungs
  // exhaust their retries and the ladder degrades to multilevel.
  fault::ScopedFaultPlan alloc(fault::FaultPlan{}.set(
      fault::Site::kAlloc, /*fire_at_hit=*/1, /*fire_count=*/1u << 20));
  const auto rep = sup.solve_bisection(g);
  EXPECT_EQ(rep.status, robust::SolveStatus::kDegradedHeuristic);
  EXPECT_EQ(rep.degradation_step, 2u);
  EXPECT_EQ(rep.best.exactness, cut::Exactness::kHeuristic);
  EXPECT_EQ(rep.best.method, "supervisor/multilevel");
  EXPECT_EQ(rep.faults_survived, 4u);  // 2 attempts x 2 exact rungs
  EXPECT_EQ(rep.retries, 2u);
  ASSERT_EQ(rep.degradation_path.size(), 3u);
  EXPECT_EQ(rep.degradation_path[2], "multilevel");
  cut::validate_cut(g, rep.best, /*require_bisection=*/true);
}

TEST(Supervisor, WatchdogReplacesStalledWorkers) {
  if (!fault::compiled_in()) {
    GTEST_SKIP() << "BFLY_FAULT_INJECTION is off in this build";
  }
  const Graph g = topo::Butterfly(8).graph();
  robust::SupervisorOptions so;
  so.num_threads = 2;
  so.heartbeat_interval_ms = 25.0;
  so.stall_timeout_ms = 250.0;
  so.backoff.initial_ms = 1.0;
  robust::Supervisor sup(so);

  // Both workers' first task pulls sleep for 2 s: the progress cell
  // freezes, the watchdog cancels the attempt at ~250 ms, and the retry
  // (whose pulls are quiet again) proves the optimum.
  fault::ScopedFaultPlan stall(fault::FaultPlan{}.set(
      fault::Site::kWorkerStall, /*fire_at_hit=*/1, /*fire_count=*/2,
      /*delay_ms=*/2000));
  const auto rep = sup.solve_bisection(g);
  EXPECT_EQ(rep.status, robust::SolveStatus::kExactOptimal);
  EXPECT_EQ(rep.best.capacity, 8u);  // BW(B8) = 8
  EXPECT_GE(rep.stalls_detected, 1u);
  EXPECT_GE(rep.retries, 1u);
}

TEST(Supervisor, ExpansionLadderDegradesToPerSizeEnumeration) {
  if (!fault::compiled_in()) {
    GTEST_SKIP() << "BFLY_FAULT_INJECTION is off in this build";
  }
  const Graph g = topo::Butterfly(4).graph();  // 12 nodes
  // Reference entries, computed clean.
  const auto clean = expansion::exact_expansion(g);

  robust::SupervisorOptions so;
  so.max_retries = 1;
  so.backoff.initial_ms = 1.0;
  robust::Supervisor sup(so);
  fault::ScopedFaultPlan alloc(fault::FaultPlan{}.set(
      fault::Site::kAlloc, /*fire_at_hit=*/1, /*fire_count=*/1u << 20));
  const auto rep = sup.solve_expansion(g);
  EXPECT_EQ(rep.status, robust::SolveStatus::kDegradedHeuristic);
  EXPECT_EQ(rep.degradation_step, 2u);
  ASSERT_GE(rep.result.table.size(), 5u);
  for (std::size_t k = 1; k <= 4; ++k) {
    EXPECT_EQ(rep.result.table[k].ee, clean[k].ee) << "k=" << k;
    EXPECT_EQ(rep.result.table[k].ne, clean[k].ne) << "k=" << k;
    expansion::validate_expansion_entry(g, k, rep.result.table[k]);
  }
}

TEST(Supervisor, ExpansionCleanSolveIsExact) {
  const Graph g = topo::Butterfly(4).graph();
  robust::Supervisor sup;
  const auto rep = sup.solve_expansion(g);
  EXPECT_EQ(rep.status, robust::SolveStatus::kExactOptimal);
  EXPECT_EQ(rep.degradation_step, 0u);
  EXPECT_EQ(rep.result.exactness, cut::Exactness::kExact);
}

// --- Seeded fault sweep (CI drives BFLY_FAULT_SEED through a range) ---

TEST(FaultSweep, RandomPlanNeverCorruptsTheSolve) {
  if (!fault::compiled_in()) {
    GTEST_SKIP() << "BFLY_FAULT_INJECTION is off in this build";
  }
  std::uint64_t seed = 42;
  if (const char* env = std::getenv("BFLY_FAULT_SEED")) {
    seed = std::strtoull(env, nullptr, 10);
  }
  SCOPED_TRACE(testing::Message() << "BFLY_FAULT_SEED=" << seed);

  const Graph g = topo::Butterfly(4).graph();
  const auto reference = cut::min_bisection_branch_bound(g);

  robust::SupervisorOptions so;
  so.num_threads = 2;
  // Every random rule fires within its first ~16 hits for at most 4
  // hits; 24 retries out-lasts any combination of firing windows, so a
  // surviving supervisor must end the ladder at the exact rung.
  so.max_retries = 24;
  so.backoff.initial_ms = 1.0;
  so.backoff.multiplier = 1.0;
  so.checkpoint_path = temp_snapshot_path("fault_sweep");
  robust::Supervisor sup(so);

  fault::ScopedFaultPlan plan(fault::FaultPlan::random(seed));
  const auto rep = sup.solve_bisection(g);
  EXPECT_EQ(rep.status, robust::SolveStatus::kExactOptimal);
  EXPECT_EQ(rep.best.capacity, reference.capacity);
  cut::validate_cut(g, rep.best, /*require_bisection=*/true);
  std::filesystem::remove(so.checkpoint_path);
}

// Multi-process sharded search, simulated faithfully in one process:
// three independent solver invocations each search only their residue
// class of the seed prefixes (BranchBoundOptions::shard_count) and
// communicate ONLY through encoded snapshot bytes — the same wire
// format separate machines would exchange. The merger reassembles the
// proof: every prefix done, best incumbent, pooled node count; the
// merged, unsharded resume then certifies optimality without searching.
TEST(ShardedSearch, ShardMergeResumeProvesClosure) {
  const Graph g = topo::Butterfly(8).graph();
  const std::uint64_t fp = robust::graph_fingerprint(g);
  const auto reference = cut::min_bisection_branch_bound(g);
  ASSERT_EQ(reference.exactness, cut::Exactness::kExact);

  constexpr std::size_t kShards = 3;
  std::vector<std::vector<std::uint8_t>> wire(kShards);
  std::uint64_t shard_nodes = 0;
  for (std::size_t s = 0; s < kShards; ++s) {
    cut::BranchBoundSearchState last;
    cut::BranchBoundOptions opts;
    opts.shard_count = kShards;
    opts.shard_index = s;
    opts.on_checkpoint = [&last](const cut::BranchBoundSearchState& st) {
      last = st;
    };
    const auto res = cut::min_bisection_branch_bound(g, opts);
    // Partial by construction: a shard never claims exactness, even
    // after cleanly finishing every subtree it owns.
    EXPECT_EQ(res.exactness, cut::Exactness::kHeuristic);
    shard_nodes += res.nodes_visited;
    wire[s] = robust::encode_snapshot({fp, std::move(last)});
  }

  std::vector<robust::BisectionSnapshot> shards;
  shards.reserve(kShards);
  for (const auto& bytes : wire) {
    shards.push_back(robust::decode_snapshot(bytes));
    EXPECT_FALSE(robust::snapshot_closed(shards.back()));
  }
  const robust::BisectionSnapshot merged = robust::merge_snapshots(shards);
  EXPECT_TRUE(robust::snapshot_closed(merged));
  EXPECT_EQ(merged.state.incumbent_capacity, reference.capacity);
  EXPECT_EQ(merged.state.nodes_spent, shard_nodes);

  // The closure step: with every prefix done, the unsharded resume
  // returns the ensemble's incumbent as kExact without expanding a node.
  cut::BranchBoundOptions closing;
  closing.resume = &merged.state;
  const auto closed = cut::min_bisection_branch_bound(g, closing);
  EXPECT_EQ(closed.exactness, cut::Exactness::kExact);
  EXPECT_EQ(closed.capacity, reference.capacity);
  EXPECT_EQ(closed.nodes_visited, shard_nodes);
  cut::validate_cut(g, closed, /*require_bisection=*/true);
}

TEST(ShardedSearch, MergeRejectsMismatchedShards) {
  robust::BisectionSnapshot a;
  a.fingerprint = 1;
  a.state.seed_depth = 4;
  a.state.prefix_done = {1, 0, 1};
  robust::BisectionSnapshot b = a;

  EXPECT_THROW((void)robust::merge_snapshots({}), robust::SnapshotError);

  b.fingerprint = 2;
  std::vector<robust::BisectionSnapshot> wrong_graph{a, b};
  EXPECT_THROW((void)robust::merge_snapshots(wrong_graph),
               robust::SnapshotError);

  b = a;
  b.state.seed_depth = 5;
  std::vector<robust::BisectionSnapshot> wrong_depth{a, b};
  EXPECT_THROW((void)robust::merge_snapshots(wrong_depth),
               robust::SnapshotError);

  // A well-formed pair merges: done maps OR, counters sum, best wins.
  b = a;
  b.state.prefix_done = {0, 1, 0};
  a.state.incumbent_capacity = 9;
  a.state.nodes_spent = 10;
  b.state.incumbent_capacity = 7;
  b.state.nodes_spent = 32;
  std::vector<robust::BisectionSnapshot> ok{a, b};
  const robust::BisectionSnapshot merged = robust::merge_snapshots(ok);
  EXPECT_EQ(merged.state.prefix_done, (std::vector<std::uint8_t>{1, 1, 1}));
  EXPECT_EQ(merged.state.incumbent_capacity, 7u);
  EXPECT_EQ(merged.state.nodes_spent, 42u);
  EXPECT_TRUE(robust::snapshot_closed(merged));
}

// N concurrent supervised solves sharing one armed fault plan: the
// site counters are process-global, so the plan's fire window lands on
// whichever requests hit it first — a SUBSET of the fleet absorbs the
// faults. Degradation must stay independent: every request, faulted or
// not, retries on its own and still proves the optimum; the fleet-wide
// faults_survived total equals exactly the number of faults fired.
TEST(SupervisorConcurrency, SharedFaultPlanHitsSubsetIndependently) {
  if (!fault::compiled_in()) {
    GTEST_SKIP() << "BFLY_FAULT_INJECTION is off in this build";
  }
  const Graph g = topo::Butterfly(4).graph();
  const auto reference = cut::min_bisection_branch_bound(g);

  constexpr unsigned kRequests = 4;
  constexpr std::uint32_t kFaults = 2;  // fewer faults than requests
  fault::ScopedFaultPlan plan(fault::FaultPlan{}.set(
      fault::Site::kAlloc, /*fire_at_hit=*/1, /*fire_count=*/kFaults));

  std::vector<robust::SolveReport> reports(kRequests);
  {
    std::vector<std::thread> threads;
    threads.reserve(kRequests);
    for (unsigned i = 0; i < kRequests; ++i) {
      threads.emplace_back([&, i] {
        robust::SupervisorOptions so;
        so.backoff.initial_ms = 1.0;
        robust::Supervisor sup(so);
        reports[i] = sup.solve_bisection(g);
      });
    }
    for (std::thread& t : threads) t.join();
  }

  unsigned total_faults = 0;
  unsigned faulted_requests = 0;
  for (const auto& rep : reports) {
    // Faulted or not, every request recovers to the exact optimum —
    // max_retries (3) covers even both faults landing on one request.
    EXPECT_EQ(rep.status, robust::SolveStatus::kExactOptimal);
    EXPECT_EQ(rep.best.capacity, reference.capacity);
    EXPECT_EQ(rep.degradation_step, 0u);
    cut::validate_cut(g, rep.best, /*require_bisection=*/true);
    total_faults += rep.faults_survived;
    if (rep.faults_survived > 0) ++faulted_requests;
  }
  EXPECT_EQ(total_faults, kFaults);
  EXPECT_GE(faulted_requests, 1u);
  EXPECT_LE(faulted_requests, kFaults);
  EXPECT_EQ(fault::FaultInjector::instance().fired(fault::Site::kAlloc),
            kFaults);
}

// The same fleet under a plan that faults EVERY exact entry: each
// request degrades on its own schedule and lands on the same heuristic
// rung with a valid (not necessarily optimal) bisection — one request's
// degradation never leaks into another's report.
TEST(SupervisorConcurrency, EveryRequestDegradesIndependently) {
  if (!fault::compiled_in()) {
    GTEST_SKIP() << "BFLY_FAULT_INJECTION is off in this build";
  }
  const Graph g = topo::Butterfly(4).graph();

  constexpr unsigned kRequests = 3;
  fault::ScopedFaultPlan plan(fault::FaultPlan{}.set(
      fault::Site::kAlloc, /*fire_at_hit=*/1, /*fire_count=*/1u << 20));

  std::vector<robust::SolveReport> reports(kRequests);
  {
    std::vector<std::thread> threads;
    threads.reserve(kRequests);
    for (unsigned i = 0; i < kRequests; ++i) {
      threads.emplace_back([&, i] {
        robust::SupervisorOptions so;
        so.max_retries = 1;
        so.backoff.initial_ms = 1.0;
        robust::Supervisor sup(so);
        reports[i] = sup.solve_bisection(g);
      });
    }
    for (std::thread& t : threads) t.join();
  }

  for (const auto& rep : reports) {
    EXPECT_EQ(rep.status, robust::SolveStatus::kDegradedHeuristic);
    EXPECT_EQ(rep.degradation_step, 2u);
    EXPECT_EQ(rep.best.exactness, cut::Exactness::kHeuristic);
    // Each request absorbed its OWN ladder's faults: 2 attempts x 2
    // exact rungs, regardless of what its neighbors were doing.
    EXPECT_EQ(rep.faults_survived, 4u);
    EXPECT_EQ(rep.retries, 2u);
    cut::validate_cut(g, rep.best, /*require_bisection=*/true);
  }
}

}  // namespace
}  // namespace bfly
