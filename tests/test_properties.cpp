// Property-based sweeps (parameterized gtest): structural invariants of
// the network families across sizes, incremental-bookkeeping invariants
// of the cut machinery under random operation sequences, and the
// for-all-cuts lemmas on every size where they are exhaustively
// checkable.
#include <gtest/gtest.h>

#include <set>

#include "algo/components.hpp"
#include "algo/diameter.hpp"
#include "core/partition.hpp"
#include "core/rng.hpp"
#include "cut/compactness.hpp"
#include "cut/constructive.hpp"
#include "expansion/expansion.hpp"
#include "topology/butterfly.hpp"
#include "topology/ccc.hpp"
#include "topology/wrapped_butterfly.hpp"

namespace bfly {
namespace {

// ---------------------------------------------------------------- Bn --

class ButterflySizes : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ButterflySizes, NodeEdgeCountsFollowFormulas) {
  const std::uint32_t n = GetParam();
  const topo::Butterfly bf(n);
  const std::uint32_t d = bf.dims();
  EXPECT_EQ(bf.num_nodes(), n * (d + 1));
  EXPECT_EQ(bf.graph().num_edges(), static_cast<std::size_t>(2) * n * d);
  EXPECT_TRUE(algo::is_connected(bf.graph()));
}

TEST_P(ButterflySizes, EveryNodeDegreeMatchesLevelRule) {
  const topo::Butterfly bf(GetParam());
  for (NodeId v = 0; v < bf.num_nodes(); ++v) {
    const std::uint32_t lvl = bf.level(v);
    const std::size_t expect =
        (lvl == 0 || lvl == bf.dims()) ? 2u : 4u;
    EXPECT_EQ(bf.graph().degree(v), expect);
  }
}

TEST_P(ButterflySizes, DiameterIsTwiceLogN) {
  const topo::Butterfly bf(GetParam());
  EXPECT_EQ(algo::diameter(bf.graph()), 2 * bf.dims());
}

TEST_P(ButterflySizes, ColumnSplitCapacityIsN) {
  const topo::Butterfly bf(GetParam());
  EXPECT_EQ(cut::column_split_bisection(bf).capacity, GetParam());
}

TEST_P(ButterflySizes, MonotonicPathsValidForSampledPairs) {
  const topo::Butterfly bf(GetParam());
  Rng rng(GetParam());
  for (int trial = 0; trial < 32; ++trial) {
    const auto in = static_cast<std::uint32_t>(rng.below(bf.n()));
    const auto out = static_cast<std::uint32_t>(rng.below(bf.n()));
    const auto p = bf.monotonic_path(in, out);
    EXPECT_EQ(p.front(), bf.node(in, 0));
    EXPECT_EQ(p.back(), bf.node(out, bf.dims()));
    for (std::size_t i = 0; i + 1 < p.size(); ++i) {
      EXPECT_TRUE(bf.graph().has_edge(p[i], p[i + 1]));
    }
  }
}

TEST_P(ButterflySizes, BoundaryEdgesDecomposeIntoFourCycles) {
  // The proof of Lemma 2.12 rests on the fact that the edges between
  // consecutive levels split into disjoint 4-cycles <v,u,v',u'>.
  const topo::Butterfly bf(GetParam());
  for (std::uint32_t b = 0; b < bf.dims(); ++b) {
    const std::uint32_t mask = bf.cross_mask(b);
    std::set<std::uint32_t> covered;
    for (std::uint32_t w = 0; w < bf.n(); ++w) {
      if (covered.count(w)) continue;
      const std::uint32_t w2 = w ^ mask;
      covered.insert(w);
      covered.insert(w2);
      // 4-cycle: <w,b> - <w,b+1> - <w2,b> - <w2,b+1> - <w,b>.
      EXPECT_TRUE(bf.graph().has_edge(bf.node(w, b), bf.node(w, b + 1)));
      EXPECT_TRUE(bf.graph().has_edge(bf.node(w, b + 1), bf.node(w2, b)));
      EXPECT_TRUE(bf.graph().has_edge(bf.node(w2, b), bf.node(w2, b + 1)));
      EXPECT_TRUE(bf.graph().has_edge(bf.node(w2, b + 1), bf.node(w, b)));
    }
    EXPECT_EQ(covered.size(), bf.n());
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ButterflySizes,
                         ::testing::Values(2u, 4u, 8u, 16u, 32u, 64u));

// ---------------------------------------------------------------- Wn --

class WrappedSizes : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(WrappedSizes, RegularOfDegreeFour) {
  const topo::WrappedButterfly wb(GetParam());
  EXPECT_EQ(wb.num_nodes(), GetParam() * wb.dims());
  for (NodeId v = 0; v < wb.num_nodes(); ++v) {
    EXPECT_EQ(wb.graph().degree(v), 4u);
  }
}

TEST_P(WrappedSizes, DiameterFormula) {
  const topo::WrappedButterfly wb(GetParam());
  EXPECT_EQ(algo::diameter(wb.graph()), 3 * wb.dims() / 2);
}

TEST_P(WrappedSizes, LevelShiftAutomorphismForEveryShift) {
  const topo::WrappedButterfly wb(GetParam());
  for (std::uint32_t s = 0; s < wb.dims(); ++s) {
    for (const auto& [u, v] : wb.graph().edges()) {
      ASSERT_TRUE(wb.graph().has_edge(wb.level_shift(u, s),
                                      wb.level_shift(v, s)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, WrappedSizes,
                         ::testing::Values(8u, 16u, 32u, 64u));

// --------------------------------------------------------------- CCC --

class CccSizes : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(CccSizes, CubicAndConnected) {
  const topo::CubeConnectedCycles cc(GetParam());
  for (NodeId v = 0; v < cc.num_nodes(); ++v) {
    EXPECT_EQ(cc.graph().degree(v), 3u);
  }
  EXPECT_TRUE(algo::is_connected(cc.graph()));
  EXPECT_EQ(cut::dimension_cut_bisection(cc).capacity, GetParam() / 2);
}

INSTANTIATE_TEST_SUITE_P(Sweep, CccSizes,
                         ::testing::Values(8u, 16u, 32u, 64u));

// ----------------------------------------------- partition invariants --

class PartitionFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PartitionFuzz, IncrementalCapacityAlwaysMatchesRecompute) {
  Rng rng(GetParam());
  const topo::Butterfly bf(8);
  Partition part(bf.graph());
  for (int step = 0; step < 500; ++step) {
    const NodeId v = static_cast<NodeId>(rng.below(bf.num_nodes()));
    part.move(v);
    ASSERT_EQ(part.cut_capacity(), part.recompute_capacity());
    std::size_t zeros = 0;
    for (NodeId u = 0; u < bf.num_nodes(); ++u) {
      zeros += part.side(u) == 0;
    }
    ASSERT_EQ(part.side_size(0), zeros);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u));

// ------------------------------------------- Lemma 2.8 for all sizes --

class PushTailSizes : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(PushTailSizes, NeverIncreasesCapacity) {
  const topo::Butterfly bf(GetParam());
  Rng rng(GetParam() * 31337);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<std::uint8_t> sides(bf.num_nodes());
    for (auto& s : sides) s = static_cast<std::uint8_t>(rng.below(2));
    const auto before = cut_capacity(bf.graph(), sides);
    const auto after =
        cut_capacity(bf.graph(), cut::push_tail_levels(bf, sides));
    ASSERT_LE(after, before);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PushTailSizes,
                         ::testing::Values(4u, 8u, 16u, 32u));

// --------------------------------- expansion monotonicity properties --

class ExpansionProperties
    : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ExpansionProperties, ComplementSymmetryOfEdgeExpansion) {
  // EE(G, k) == EE(G, N-k): the same cut seen from both sides.
  const topo::Butterfly bf(GetParam());
  const auto table = expansion::exact_expansion(bf.graph());
  const NodeId n = bf.num_nodes();
  for (std::size_t k = 1; k < n; ++k) {
    ASSERT_EQ(table[k].ee, table[n - k].ee) << "k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ExpansionProperties,
                         ::testing::Values(2u, 4u));

}  // namespace
}  // namespace bfly
