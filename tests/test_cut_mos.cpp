// The mesh-of-stars theory (Section 2.2): Lemma 2.17's closed form
// against structure-free brute force, Lemma 2.18's minimum of f, and the
// Lemma 2.19 convergence of BW(MOS_{j,j}, M2)/j^2 to sqrt(2)-1.
#include <gtest/gtest.h>

#include <cmath>

#include "cut/bisection.hpp"
#include "cut/brute_force.hpp"
#include "cut/mos_theory.hpp"
#include "topology/mesh_of_stars.hpp"

namespace bfly::cut {
namespace {

constexpr double kSqrt2Minus1 = 0.41421356237309515;

TEST(MosF, Lemma218MinimumAtSqrtHalf) {
  const double x = std::sqrt(0.5);
  EXPECT_NEAR(mos_f(x, x), kSqrt2Minus1, 1e-12);
  // Scan the domain D on a fine grid: nothing beats it.
  for (int i = 0; i <= 200; ++i) {
    for (int j = 0; j <= 200; ++j) {
      const double a = i / 200.0, b = j / 200.0;
      if (a + b < 1.0) continue;
      EXPECT_GE(mos_f(a, b), kSqrt2Minus1 - 1e-12);
    }
  }
}

TEST(MosClosedForm, MatchesBruteForceJ2) {
  // MOS_{2,2} has 8 nodes: full enumeration of cuts bisecting M2.
  const topo::MeshOfStars mos(2, 2);
  const auto brute = min_cut_bisecting_exhaustive(mos.graph(),
                                                  mos.m2_nodes());
  const auto analytic = mos_m2_bisection_value(2);
  EXPECT_EQ(brute.capacity, analytic.capacity);
  EXPECT_EQ(analytic.capacity, 2u);
}

TEST(MosClosedForm, MatchesBruteForceJ4) {
  // MOS_{4,4} has 24 nodes; the Gray-code sweep covers all 2^23 cuts.
  const topo::MeshOfStars mos(4, 4);
  const auto brute = min_cut_bisecting_exhaustive(mos.graph(),
                                                  mos.m2_nodes());
  const auto analytic = mos_m2_bisection_value(4);
  EXPECT_EQ(brute.capacity, analytic.capacity);
}

TEST(MosClosedForm, CapacityFormulaSpotChecks) {
  // j = 4, a = b = 3: p_aa = 9 > half = 8, p_bb = 1, p_mix = 6:
  // capacity = 6 + 2*(9-8) = 8.
  EXPECT_EQ(mos_m2_cut_capacity(4, 3, 3), 8u);
  // a = b = 4: p_aa = 16, mix 0, cost 2*(16-8) = 16.
  EXPECT_EQ(mos_m2_cut_capacity(4, 4, 4), 16u);
  // a = 4, b = 0: all mixed -> 16.
  EXPECT_EQ(mos_m2_cut_capacity(4, 4, 0), 16u);
  // a = b = 0: p_bb = 16 > half -> 2*(16-8) = 16.
  EXPECT_EQ(mos_m2_cut_capacity(4, 0, 0), 16u);
}

TEST(MosClosedForm, ComplementSymmetric) {
  for (std::uint32_t a = 0; a <= 6; ++a) {
    for (std::uint32_t b = 0; b <= 6; ++b) {
      EXPECT_EQ(mos_m2_cut_capacity(6, a, b),
                mos_m2_cut_capacity(6, 6 - a, 6 - b));
    }
  }
}

TEST(MosOptimum, WindowScanMatchesFullGridScan) {
  // The O(j) breakpoint scan must agree with the O(j^2) full scan.
  for (std::uint32_t j = 2; j <= 128; j += 2) {
    const auto fast = mos_m2_bisection_value(j);
    std::uint64_t slow = ~0ull;
    for (std::uint32_t a = 0; a <= j; ++a) {
      for (std::uint32_t b = 0; b <= j; ++b) {
        slow = std::min(slow, mos_m2_cut_capacity(j, a, b));
      }
    }
    EXPECT_EQ(fast.capacity, slow) << "j=" << j;
  }
}

TEST(MosOptimum, Lemma219ConvergenceToSqrt2Minus1) {
  // Strictly above sqrt2-1 for every j, converging from above.
  double prev = 1.0;
  for (std::uint32_t j = 4; j <= (1u << 14); j *= 2) {
    const auto v = mos_m2_bisection_value(j);
    EXPECT_GT(v.normalized, kSqrt2Minus1) << "j=" << j;
    EXPECT_LE(v.normalized, prev + 1e-12) << "j=" << j;
    prev = v.normalized;
  }
  // By j = 2^14 the value is within 2e-4 of the limit.
  EXPECT_NEAR(mos_m2_bisection_value(1u << 14).normalized, kSqrt2Minus1,
              2e-4);
}

TEST(MosOptimum, OptimalSplitNearSqrtHalf) {
  const std::uint32_t j = 1024;
  const auto v = mos_m2_bisection_value(j);
  const double ratio_a = static_cast<double>(v.a) / j;
  const double ratio_b = static_cast<double>(v.b) / j;
  // a/j and b/j approach 1/sqrt2 ~ 0.7071 (Lemma 2.19), possibly as the
  // complementary pair (Lemma 2.17's WLOG).
  const double target = std::sqrt(0.5);
  const bool direct = std::abs(ratio_a - target) < 0.02 &&
                      std::abs(ratio_b - target) < 0.02;
  const bool complement = std::abs(1.0 - ratio_a - target) < 0.02 &&
                          std::abs(1.0 - ratio_b - target) < 0.02;
  EXPECT_TRUE(direct || complement)
      << "a/j=" << ratio_a << " b/j=" << ratio_b;
}

TEST(MosCut, ConstructionAchievesOptimum) {
  for (const std::uint32_t j : {2u, 4u, 6u, 8u, 16u}) {
    const topo::MeshOfStars mos(j, j);
    const auto cutres = mos_m2_bisection_cut(mos);
    // validate_cut re-derives the capacity from the side vector.
    EXPECT_NO_THROW(validate_cut(mos.graph(), cutres));
    EXPECT_EQ(cutres.capacity, mos_m2_bisection_value(j).capacity);
    EXPECT_TRUE(bisects_subset(cutres.sides, mos.m2_nodes()));
  }
}

TEST(Lemma216, BoundCoefficientCrossesFolkloreAtJ32) {
  // The paper's upper-bound coefficient 2 BW(MOS)/j^2 + 4/j first drops
  // below the folklore coefficient 1 at j = 32 — which Lemma 2.16
  // admits only once log n >= 32^3 + 63 = 32831.
  EXPECT_GT(lemma216_upper_bound_coefficient(16), 1.0);
  EXPECT_LT(lemma216_upper_bound_coefficient(32), 1.0);
  EXPECT_EQ(lemma216_min_log_n(32), 32831u);
}

TEST(Lemma216, BoundCoefficientConvergesTo2Sqrt2Minus2) {
  // As j grows the coefficient tends to 2(sqrt2 - 1) ~ 0.8284
  // (Theorem 2.20's constant).
  EXPECT_NEAR(lemma216_upper_bound_coefficient(1u << 14),
              2.0 * kSqrt2Minus1, 1e-3);
}

TEST(MosTheory, RejectsOddJ) {
  EXPECT_THROW(static_cast<void>(mos_m2_bisection_value(3)),
               PreconditionError);
  EXPECT_THROW(static_cast<void>(mos_m2_cut_capacity(5, 1, 1)),
               PreconditionError);
}

}  // namespace
}  // namespace bfly::cut
