// Embedding framework and the paper's embeddings: measured load,
// congestion, and dilation must match the values each lemma claims.
#include <gtest/gtest.h>

#include "embed/embedding.hpp"
#include "embed/factory.hpp"
#include "embed/lower_bounds.hpp"
#include "topology/butterfly.hpp"
#include "topology/ccc.hpp"
#include "topology/mesh_of_stars.hpp"
#include "topology/wrapped_butterfly.hpp"

namespace bfly::embed {
namespace {

TEST(Measure, DetectsBrokenPaths) {
  GraphBuilder guest_b(2);
  guest_b.add_edge(0, 1);
  const Graph guest = std::move(guest_b).build();
  GraphBuilder host_b(3);
  host_b.add_edge(0, 1);
  host_b.add_edge(1, 2);
  const Graph host = std::move(host_b).build();

  Embedding ok;
  ok.node_map = {0, 2};
  ok.paths = {{0, 1, 2}};
  const auto m = measure_embedding(guest, host, ok);
  EXPECT_EQ(m.load, 1u);
  EXPECT_EQ(m.congestion, 1u);
  EXPECT_EQ(m.dilation, 2u);

  Embedding bad = ok;
  bad.paths = {{0, 2}};  // not a host edge
  EXPECT_THROW(measure_embedding(guest, host, bad), PreconditionError);

  Embedding wrong_ends = ok;
  wrong_ends.paths = {{0, 1}};
  EXPECT_THROW(measure_embedding(guest, host, wrong_ends),
               PreconditionError);
}

TEST(Lemma31, KnnIntoBn) {
  for (const std::uint32_t n : {4u, 8u, 16u}) {
    const topo::Butterfly bf(n);
    const auto c = knn_into_bn(bf);
    const auto m = measure_embedding(c.guest, c.host, c.emb);
    EXPECT_EQ(m.load, 1u);
    EXPECT_EQ(m.congestion, n / 2) << "n=" << n;  // paper: congestion n/2
    EXPECT_EQ(m.dilation, bf.dims());             // paper: dilation log n
  }
}

TEST(Theorem43, KnIntoWn) {
  const topo::WrappedButterfly wb(8);
  const auto c = kn_into_wn(wb);
  const auto m = measure_embedding(c.guest, c.host, c.emb);
  EXPECT_EQ(m.load, 1u);
  // Congestion is O(N log n): the proof's bound is 2 N log n + N log n/2
  // per edge class; just assert the asymptotic sanity c <= 3 N log n.
  const std::size_t N = wb.num_nodes();
  EXPECT_LE(m.congestion, 3u * N * wb.dims());
  EXPECT_GT(m.congestion, 0u);
  // Dilation <= 3 log n - 2 per the paper.
  EXPECT_LE(m.dilation, 3u * wb.dims() - 2u);
}

TEST(Section42, KnIntoBn) {
  const topo::Butterfly bf(8);
  const auto c = kn_into_bn(bf);
  const auto m = measure_embedding(c.guest, c.host, c.emb);
  EXPECT_EQ(m.load, 1u);
  EXPECT_LE(m.dilation, 3u * bf.dims());
}

TEST(Section14, DoubledCompleteGraphIntoBn) {
  const topo::Butterfly bf(8);
  const auto c = k2n_into_bn(bf);
  const auto m = measure_embedding(c.guest, c.host, c.emb);
  EXPECT_EQ(m.load, 1u);
  EXPECT_LE(m.dilation, 3u * bf.dims());
  // The derived bound 2 BW(K_N)/c must not exceed the true BW(B8) = 8.
  const double bound =
      bw_lower_bound_from_kn(bf.num_nodes(), m.congestion, 2);
  EXPECT_LE(bound, 8.0 + 1e-9);
  EXPECT_GT(bound, 0.0);
}

TEST(Lemma25, BenesIntoBn) {
  // The folded Beneš: load 1, congestion 1, dilation 3 — this is the
  // substrate of the rearrangeability partition (I, O) of level 0.
  for (const std::uint32_t n : {4u, 8u, 16u, 32u}) {
    const topo::Butterfly bf(n);
    const auto c = benes_into_bn(bf);
    const auto m = measure_embedding(c.guest, c.host, c.emb);
    EXPECT_EQ(m.load, 1u) << "n=" << n;
    EXPECT_EQ(m.congestion, 1u) << "n=" << n;
    EXPECT_EQ(m.dilation, 3u) << "n=" << n;
  }
}

TEST(Lemma210, BkIntoBnProperties) {
  // Properties (1)-(5) of Lemma 2.10 on a sweep of (i, j).
  const topo::Butterfly bf(8);  // d = 3
  for (std::uint32_t i = 0; i <= 3; ++i) {
    for (std::uint32_t j = 0; j <= 2; ++j) {
      const auto c = bk_into_bn(bf, i, j);
      const auto m = measure_embedding(c.guest, c.host, c.emb);
      // (1) dilation 1.
      EXPECT_LE(m.dilation, 1u);
      // (2) congestion exactly 2^j on every used edge.
      EXPECT_EQ(m.congestion, 1u << j) << "i=" << i << " j=" << j;
      for (const auto u : m.edge_use) {
        EXPECT_EQ(u, static_cast<std::size_t>(1) << j);
      }
      // (3)-(5) load profile: level i of Bn carries (j+1) 2^j guest
      // nodes; all other levels carry 2^j.
      std::vector<std::size_t> load(c.host.num_nodes(), 0);
      for (const NodeId h : c.emb.node_map) ++load[h];
      for (NodeId h = 0; h < c.host.num_nodes(); ++h) {
        const std::uint32_t lvl = bf.level(h);
        const std::size_t expect = lvl == i
                                       ? static_cast<std::size_t>(j + 1)
                                             << j
                                       : static_cast<std::size_t>(1) << j;
        EXPECT_EQ(load[h], expect) << "i=" << i << " j=" << j;
      }
    }
  }
}

TEST(Lemma211, BnIntoMosProperties) {
  const topo::Butterfly bf(16);  // d = 4
  struct Case {
    std::uint32_t j, k;
  };
  for (const Case cs : {Case{2, 2}, Case{2, 4}, Case{4, 2}, Case{4, 4}}) {
    const auto c = bn_into_mos(bf, cs.j, cs.k);
    const auto m = measure_embedding(c.guest, c.host, c.emb);
    // (1) dilation 1.
    EXPECT_LE(m.dilation, 1u);
    // (2) congestion exactly 2n/jk on every MOS edge.
    const std::size_t expect_cong = 2u * 16u / (cs.j * cs.k);
    EXPECT_EQ(m.congestion, expect_cong) << cs.j << "x" << cs.k;
    for (const auto u : m.edge_use) EXPECT_EQ(u, expect_cong);
    // (3)-(5) uniform loads per level class.
    const topo::MeshOfStars mos(cs.j, cs.k);
    std::vector<std::size_t> load(c.host.num_nodes(), 0);
    for (const NodeId h : c.emb.node_map) ++load[h];
    const std::uint32_t tj = cs.j == 2 ? 1 : 2, tk = cs.k == 2 ? 1 : 2;
    const std::size_t m1_load = (16u / cs.j) * tk;
    const std::size_t m3_load = (16u / cs.k) * tj;
    const std::size_t m2_load =
        (16u / (cs.j * cs.k)) * (4u - tj - tk + 1u);
    for (std::uint32_t a = 0; a < cs.j; ++a) {
      EXPECT_EQ(load[mos.m1_node(a)], m1_load);
    }
    for (std::uint32_t b = 0; b < cs.k; ++b) {
      EXPECT_EQ(load[mos.m3_node(b)], m3_load);
    }
    for (std::uint32_t a = 0; a < cs.j; ++a) {
      for (std::uint32_t b = 0; b < cs.k; ++b) {
        EXPECT_EQ(load[mos.m2_node(a, b)], m2_load);
      }
    }
  }
}

TEST(Lemma33, WnIntoCCC) {
  for (const std::uint32_t n : {8u, 16u}) {
    const topo::CubeConnectedCycles cc(n);
    const auto c = wn_into_ccc(cc);
    const auto m = measure_embedding(c.guest, c.host, c.emb);
    EXPECT_EQ(m.load, 1u);
    EXPECT_EQ(m.congestion, 2u) << "n=" << n;  // paper: congestion 2
    EXPECT_LE(m.dilation, 2u);
  }
}

TEST(Section15, BnIntoHypercube) {
  const topo::Butterfly bf(8);
  const auto c = bn_into_hypercube(bf);
  const auto m = measure_embedding(c.guest, c.host, c.emb);
  EXPECT_EQ(m.load, 1u);
  EXPECT_LE(m.congestion, 2u);
  EXPECT_LE(m.dilation, 2u);
}

TEST(LowerBounds, Section14Arithmetic) {
  EXPECT_EQ(bw_complete(8), 16u);
  EXPECT_EQ(bw_complete(7), 12u);
  EXPECT_EQ(ee_complete(10, 3), 21u);
  // BW(K_N)/c with c from the measured K_{n,n} embedding on B8:
  // capacity >= n^2/2 / (n/2) = n.
  EXPECT_DOUBLE_EQ(input_bisection_lower_bound_from_knn(8, 4), 8.0);
  EXPECT_DOUBLE_EQ(bw_lower_bound_from_kn(8, 4, 2), 8.0);
  EXPECT_DOUBLE_EQ(ee_lower_bound_from_kn(8, 2, 3), 4.0);
}

TEST(LowerBounds, Lemma31ViaMeasuredEmbedding) {
  // End-to-end: measure the K_{n,n}->Bn embedding and derive the n lower
  // bound on input-bisecting cuts.
  const topo::Butterfly bf(8);
  const auto c = knn_into_bn(bf);
  const auto m = measure_embedding(c.guest, c.host, c.emb);
  EXPECT_DOUBLE_EQ(input_bisection_lower_bound_from_knn(8, m.congestion),
                   8.0);
}

}  // namespace
}  // namespace bfly::embed
