// Cross-module integration: the full Theorem 2.20 bound chain on
// materializable sizes, solver cross-validation, and end-to-end
// pipelines combining topology, cuts, embeddings, and routing.
#include <gtest/gtest.h>

#include <cmath>

#include "algo/diameter.hpp"
#include "cut/branch_bound.hpp"
#include "cut/brute_force.hpp"
#include "cut/constructive.hpp"
#include "cut/fiduccia_mattheyses.hpp"
#include "cut/mos_theory.hpp"
#include "embed/embedding.hpp"
#include "embed/factory.hpp"
#include "embed/lower_bounds.hpp"
#include "expansion/expansion.hpp"
#include "routing/butterfly_routing.hpp"
#include "routing/experiments.hpp"
#include "topology/butterfly.hpp"
#include "topology/ccc.hpp"
#include "topology/wrapped_butterfly.hpp"

namespace bfly {
namespace {

TEST(Theorem220Chain, LowerAndUpperBoundsBracketExactBW) {
  // For materializable n: the Lemma 2.13 analytic lower bound
  // 2 BW(MOS_{n,n}, M2)/n (per unit: 2 BW/n^2) must sit below the exact
  // BW(Bn)/n, which must sit at or below the folklore coefficient 1.
  struct Row {
    std::uint32_t n;
    std::size_t exact_bw;
  };
  for (const Row row : {Row{2, 2u}, Row{4, 0u}, Row{8, 8u}}) {
    const topo::Butterfly bf(row.n);
    cut::BranchBoundOptions opts;
    opts.initial_bound = cut::column_split_bisection(bf).capacity;
    const auto exact = cut::min_bisection_branch_bound(bf.graph(), opts);
    ASSERT_EQ(exact.exactness, cut::Exactness::kExact);
    if (row.exact_bw != 0) {
      EXPECT_EQ(exact.capacity, row.exact_bw);
    }

    const double lower =
        2.0 * static_cast<double>(
                  cut::mos_m2_bisection_value(row.n).capacity) /
        (static_cast<double>(row.n) * row.n);
    EXPECT_LE(lower, static_cast<double>(exact.capacity) / row.n + 1e-9);
    EXPECT_LE(exact.capacity, row.n);  // folklore upper bound
    // And the asymptotic constant is below everything here.
    EXPECT_GT(static_cast<double>(exact.capacity) / row.n,
              2.0 * (std::sqrt(2.0) - 1.0) - 1.0e-9);
  }
}

TEST(Section3Chain, WrapAroundAndCCCExactWidths) {
  // BW(Wn) = n and BW(CCCn) = n/2 end to end, with the Wn->CCC
  // congestion-2 embedding giving BW(CCC) >= BW(Wn)/2 as in Lemma 3.3.
  const topo::WrappedButterfly wb(8);
  cut::BranchBoundOptions wopts;
  wopts.initial_bound = 8;
  const auto wbw = cut::min_bisection_branch_bound(wb.graph(), wopts);
  EXPECT_EQ(wbw.capacity, 8u);

  const topo::CubeConnectedCycles cc(8);
  cut::BranchBoundOptions copts;
  copts.initial_bound = 4;
  const auto cbw = cut::min_bisection_branch_bound(cc.graph(), copts);
  EXPECT_EQ(cbw.capacity, 4u);

  const auto fold = embed::wn_into_ccc(cc);
  const auto m = embed::measure_embedding(fold.guest, fold.host, fold.emb);
  EXPECT_GE(static_cast<double>(cbw.capacity),
            static_cast<double>(wbw.capacity) / m.congestion - 1e-9);
}

TEST(ExpansionVsBisection, ExpansionAtHalfCannotExceedBW) {
  // EE(G, N/2) <= BW(G) by definition; check on W8 exactly.
  const topo::WrappedButterfly wb(8);
  const auto table = expansion::exact_expansion(wb.graph());
  const std::size_t half = wb.num_nodes() / 2;
  EXPECT_LE(table[half].ee, 8u);
}

TEST(SolverCrossValidation, AllMethodsAgreeOnSmallFamilies) {
  for (const std::uint32_t n : {4u, 8u}) {
    const topo::Butterfly bf(n);
    const auto bb = cut::min_bisection_branch_bound(bf.graph());
    const auto fm = cut::min_bisection_fiduccia_mattheyses(bf.graph());
    EXPECT_LE(bb.capacity, fm.capacity);
    if (n == 4) {
      const auto ex = cut::min_bisection_exhaustive(bf.graph());
      EXPECT_EQ(ex.capacity, bb.capacity);
      EXPECT_EQ(fm.capacity, ex.capacity);  // FM finds the optimum here
    }
  }
}

TEST(RoutingPipeline, ButterflyRandomDestinationsOnExactBisection) {
  // End to end: exact bisection of B8 feeds the Section 1.2 time bound,
  // and simulated routing always needs at least that long.
  const topo::Butterfly bf(8);
  cut::BranchBoundOptions opts;
  opts.initial_bound = 8;
  const auto exact = cut::min_bisection_branch_bound(bf.graph(), opts);

  const auto route = [&](NodeId s, NodeId t) {
    return routing::route_bn(bf, s, t);
  };
  const auto rep = routing::random_destination_experiment(
      bf.graph(), route, exact.sides, exact.capacity, 2024);
  EXPECT_EQ(rep.sim.delivered, rep.num_packets);
  // The bound is about the *aggregate* random-destination workload; for
  // one sampled instance we check the weaker consistency that the
  // simulated makespan is at least cross_bisection / (2 * BW) (each
  // direction of each cut edge moves one packet per step).
  const double per_instance_bound =
      static_cast<double>(rep.cross_bisection) /
      (2.0 * static_cast<double>(exact.capacity));
  EXPECT_GE(static_cast<double>(rep.sim.makespan),
            std::floor(per_instance_bound));
}

TEST(DiameterVsRouting, ObliviousRoutesRespectDiameter) {
  // Oblivious 3-segment routes are within 3x the diameter 2 log n on Bn.
  const topo::Butterfly bf(16);
  const auto diam = algo::diameter(bf.graph());
  EXPECT_EQ(diam, 2 * bf.dims());
  for (NodeId s = 0; s < bf.num_nodes(); s += 7) {
    for (NodeId t = 0; t < bf.num_nodes(); t += 5) {
      const auto p = routing::route_bn(bf, s, t);
      EXPECT_LE(p.size() - 1, 3u * bf.dims());
    }
  }
}

TEST(EmbeddingChain, ExpansionLowerBoundsFromKN) {
  // Section 1.4: EE(Wn, k) >= k(N-k)/c with c measured from K_N->Wn;
  // compare against exact EE on W8 for a few k.
  const topo::WrappedButterfly wb(8);
  const auto c = embed::kn_into_wn(wb);
  const auto m = embed::measure_embedding(c.guest, c.host, c.emb);
  const auto table = expansion::exact_expansion(wb.graph());
  for (const std::size_t k : {2u, 4u, 8u, 12u}) {
    const double lb =
        embed::ee_lower_bound_from_kn(wb.num_nodes(), k, m.congestion);
    EXPECT_LE(lb, static_cast<double>(table[k].ee) + 1e-9) << "k=" << k;
  }
}

}  // namespace
}  // namespace bfly
