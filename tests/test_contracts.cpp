// Negative-path tests for the contracts layer: every public precondition
// must throw PreconditionError whose message names the violated
// expression, and the deep validate() self-checks must both accept
// healthy structures and reject corrupted ones.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/error.hpp"
#include "core/graph.hpp"
#include "core/partition.hpp"
#include "core/thread_pool.hpp"
#include "cut/bisection.hpp"
#include "cut/branch_bound.hpp"
#include "cut/fiduccia_mattheyses.hpp"
#include "embed/embedding.hpp"
#include "expansion/expansion.hpp"
#include "io/ascii_butterfly.hpp"
#include "io/dot.hpp"
#include "topology/butterfly.hpp"

namespace {

using bfly::Graph;
using bfly::GraphBuilder;
using bfly::Partition;
using bfly::PreconditionError;

/// Runs fn, requires it to throw PreconditionError, and requires the
/// what() string to contain `needle` — by convention the violated
/// expression or a phrase naming it.
template <typename Fn>
void expect_precondition(Fn&& fn, const std::string& needle) {
  try {
    fn();
    FAIL() << "expected PreconditionError mentioning: " << needle;
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "message was: " << e.what();
  }
}

Graph path4() {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  return std::move(b).build();
}

// --- GraphBuilder / Graph ------------------------------------------------

TEST(Contracts, AddEdgeRejectsSelfLoop) {
  GraphBuilder b(3);
  expect_precondition([&] { b.add_edge(1, 1); }, "u != v");
}

TEST(Contracts, AddEdgeRejectsOutOfRangeEndpoint) {
  GraphBuilder b(3);
  expect_precondition([&] { b.add_edge(0, 3); },
                      "u < num_nodes_ && v < num_nodes_");
}

TEST(Contracts, GraphDeepValidateAcceptsHealthyGraphs) {
  EXPECT_NO_THROW(path4().validate());
  EXPECT_NO_THROW(bfly::topo::Butterfly(8).graph().validate());
  EXPECT_NO_THROW(Graph().validate());
}

// --- Partition -----------------------------------------------------------

TEST(Contracts, PartitionRejectsSizeMismatch) {
  const Graph g = path4();
  expect_precondition(
      [&] { Partition p(g, std::vector<std::uint8_t>{0, 1}); },
      "sides_.size() == g.num_nodes()");
}

TEST(Contracts, PartitionRejectsNonBinarySides) {
  const Graph g = path4();
  expect_precondition(
      [&] { Partition p(g, std::vector<std::uint8_t>{0, 1, 2, 1}); },
      "sides must be 0 or 1");
}

TEST(Contracts, SwapAcrossRejectsSameSide) {
  const Graph g = path4();
  Partition p(g, std::vector<std::uint8_t>{0, 0, 1, 1});
  expect_precondition([&] { p.swap_across(0, 1); },
                      "sides_[u] != sides_[v]");
}

TEST(Contracts, PartitionDeepValidateAcceptsIncrementalUpdates) {
  const Graph g = path4();
  Partition p(g, std::vector<std::uint8_t>{0, 0, 1, 1});
  p.swap_across(1, 2);
  EXPECT_NO_THROW(p.validate());
  EXPECT_EQ(p.cut_capacity(), p.recompute_capacity());
}

// --- validate_cut / bisects_subset --------------------------------------

TEST(Contracts, ValidateCutRejectsWrongSideCount) {
  const Graph g = path4();
  bfly::cut::CutResult r;
  r.sides = {0, 1};
  r.capacity = 1;
  expect_precondition([&] { bfly::cut::validate_cut(g, r); },
                      "r.sides.size() == g.num_nodes()");
}

TEST(Contracts, ValidateCutRejectsMiscountedCapacity) {
  const Graph g = path4();
  bfly::cut::CutResult r;
  r.sides = {0, 0, 1, 1};
  r.capacity = 2;  // the real cut is 1
  expect_precondition([&] { bfly::cut::validate_cut(g, r); },
                      "cut_capacity(g, r.sides) == r.capacity");
}

TEST(Contracts, ValidateCutRejectsNonBinarySide) {
  const Graph g = path4();
  bfly::cut::CutResult r;
  r.sides = {0, 0, 3, 1};
  r.capacity = 1;
  expect_precondition([&] { bfly::cut::validate_cut(g, r); },
                      "cut sides must be 0 or 1");
}

TEST(Contracts, ValidateCutEnforcesBalanceOnRequest) {
  const Graph g = path4();
  bfly::cut::CutResult r;
  r.sides = {0, 0, 0, 1};
  r.capacity = 1;
  EXPECT_NO_THROW(bfly::cut::validate_cut(g, r));  // lopsided cut is a cut
  expect_precondition(
      [&] { bfly::cut::validate_cut(g, r, /*require_bisection=*/true); },
      "is_bisection");
}

TEST(Contracts, BisectsSubsetRejectsOutOfRangeNode) {
  const std::vector<std::uint8_t> sides{0, 1, 0, 1};
  const std::vector<bfly::NodeId> subset{1, 9};
  expect_precondition(
      [&] {
        (void)bfly::cut::bisects_subset(sides, subset);
      },
      "subset node out of range");
}

// --- solvers -------------------------------------------------------------

TEST(Contracts, SolversRejectSingletonGraphs) {
  GraphBuilder b(1);
  const Graph g = std::move(b).build();
  expect_precondition(
      [&] { (void)bfly::cut::min_bisection_branch_bound(g); },
      "at least two nodes");
  expect_precondition(
      [&] { (void)bfly::cut::min_bisection_fiduccia_mattheyses(g); },
      "at least two nodes");
}

TEST(Contracts, FmRefinementRequiresBisectionStart) {
  const Graph g = path4();
  bfly::cut::CutResult seed;
  seed.sides = {0, 0, 0, 1};
  seed.capacity = 1;
  expect_precondition(
      [&] {
        (void)bfly::cut::refine_fiduccia_mattheyses(g, seed.sides);
      },
      "bisection start");
}

// --- embedding -----------------------------------------------------------

TEST(Contracts, MeasureEmbeddingRejectsWrongNodeMapSize) {
  const Graph guest = path4();
  const Graph host = path4();
  bfly::embed::Embedding e;
  e.node_map = {0, 1};  // guest has 4 nodes
  expect_precondition(
      [&] { (void)bfly::embed::measure_embedding(guest, host, e); },
      "e.node_map.size() == guest.num_nodes()");
}

TEST(Contracts, MeasureEmbeddingRejectsBrokenPath) {
  const Graph guest = path4();
  const Graph host = path4();
  bfly::embed::Embedding e;
  e.node_map = {0, 1, 2, 3};
  // Identity paths, except edge (0,1) detours through node 2: the
  // endpoints still match the guest edge, but hop 0--2 is not a host
  // edge.
  for (const auto& [u, v] : guest.edges()) {
    if (u == 0 && v == 1) {
      e.paths.push_back({0, 2, 1});
    } else {
      e.paths.push_back({u, v});
    }
  }
  expect_precondition(
      [&] { (void)bfly::embed::measure_embedding(guest, host, e); },
      "has_edge");
}

TEST(Contracts, ValidateEmbeddingRejectsStaleMetrics) {
  const Graph guest = path4();
  const Graph host = path4();
  bfly::embed::Embedding e;
  e.node_map = {0, 1, 2, 3};
  e.paths = {{0, 1}, {1, 2}, {2, 3}};
  bfly::embed::EmbeddingMetrics m =
      bfly::embed::measure_embedding(guest, host, e);
  EXPECT_NO_THROW(bfly::embed::validate_embedding(guest, host, e, m));
  m.dilation += 1;
  expect_precondition(
      [&] { bfly::embed::validate_embedding(guest, host, e, m); },
      "dilation");
}

// --- expansion -----------------------------------------------------------

TEST(Contracts, ValidateExpansionEntryRejectsWrongWitness) {
  const Graph g = path4();
  bfly::expansion::ExpansionEntry entry =
      bfly::expansion::exact_expansion_of_size(g, 2);
  EXPECT_NO_THROW(bfly::expansion::validate_expansion_entry(g, 2, entry));
  bfly::expansion::ExpansionEntry broken = entry;
  broken.ee_witness = {0, 0};
  expect_precondition(
      [&] { bfly::expansion::validate_expansion_entry(g, 2, broken); },
      "witness node repeated");
  broken = entry;
  broken.ee += 1;
  expect_precondition(
      [&] { bfly::expansion::validate_expansion_entry(g, 2, broken); },
      "edge_boundary");
}

TEST(Contracts, ExpansionRejectsOutOfRangeSetSize) {
  const Graph g = path4();
  expect_precondition(
      [&] { (void)bfly::expansion::exact_expansion_of_size(g, 9); },
      "k >= 1 && k <= g.num_nodes()");
}

// --- io parsers ----------------------------------------------------------

TEST(Contracts, ReadDotRejectsMalformedInput) {
  expect_precondition(
      [&] { (void)bfly::io::read_dot_string("graph G { a -- a; }"); },
      "self loops are not supported");
  expect_precondition(
      [&] { (void)bfly::io::read_dot_string("graph G { a -- b; } x"); },
      "trailing input");
  expect_precondition(
      [&] { (void)bfly::io::read_dot_string("graph G { a -- b "); },
      "expected ';'");
}

TEST(Contracts, ReadDotRoundTripsAButterfly) {
  const Graph g = bfly::topo::Butterfly(4).graph();
  std::ostringstream os;
  bfly::io::write_dot(os, g);
  const bfly::io::ParsedDot parsed = bfly::io::read_dot_string(os.str());
  EXPECT_EQ(parsed.graph.num_nodes(), g.num_nodes());
  EXPECT_EQ(parsed.graph.num_edges(), g.num_edges());
  EXPECT_NO_THROW(parsed.graph.validate());
}

TEST(Contracts, ReadDotHonorsResourceCaps) {
  bfly::io::DotReadOptions opts;
  opts.max_nodes = 2;
  expect_precondition(
      [&] {
        (void)bfly::io::read_dot_string("graph G { a -- b; b -- c; }",
                                        opts);
      },
      "node count exceeds the configured cap");
}

TEST(Contracts, AsciiButterflyRoundTripAndRejection) {
  const bfly::topo::Butterfly bf(8);
  const std::string text = bfly::io::render_butterfly_ascii(bf);
  const bfly::io::AsciiButterflyInfo info =
      bfly::io::parse_butterfly_ascii(text);
  EXPECT_EQ(info.n, 8u);
  EXPECT_EQ(info.dims, 3u);
  expect_precondition(
      [&] { (void)bfly::io::parse_butterfly_ascii("not a drawing"); },
      "expected 'column' header");
  // Flip one cross marker: the drawing becomes internally inconsistent.
  std::string bad = text;
  const std::size_t pos = bad.find('\\');
  ASSERT_NE(pos, std::string::npos);
  bad[pos] = '|';
  expect_precondition(
      [&] { (void)bfly::io::parse_butterfly_ascii(bad); },
      "cross marker does not match");
}

// --- cancellation --------------------------------------------------------

TEST(Contracts, CancelTokenRequestStopIsIdempotent) {
  bfly::CancelToken token;
  EXPECT_FALSE(token.stop_requested());
  token.request_stop();
  EXPECT_TRUE(token.stop_requested());
  token.request_stop();  // second fire must be a no-op, never un-fire
  token.request_stop();
  EXPECT_TRUE(token.stop_requested());
}

// --- checked_build is a real constant ------------------------------------

TEST(Contracts, CheckedBuildMatchesNdebug) {
#ifdef NDEBUG
  EXPECT_FALSE(bfly::checked_build());
#else
  EXPECT_TRUE(bfly::checked_build());
#endif
}

}  // namespace
