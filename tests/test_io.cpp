// I/O helpers: table/CSV formatting, DOT export, ASCII butterfly.
#include <gtest/gtest.h>

#include <sstream>

#include "io/ascii_butterfly.hpp"
#include "io/dot.hpp"
#include "io/table.hpp"
#include "topology/butterfly.hpp"

namespace bfly::io {
namespace {

TEST(Table, AlignedOutput) {
  Table t({"a", "long header"});
  t.add("xx", 7);
  t.add(1.5, "y");
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("| long header |"), std::string::npos);
  EXPECT_NE(s.find("xx"), std::string::npos);
  EXPECT_NE(s.find("1.5"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, CsvOutput) {
  Table t({"x", "y"});
  t.add(1, 2);
  t.add("a", "b");
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2\na,b\n");
}

TEST(Table, RejectsMismatchedRows) {
  Table t({"one", "two"});
  EXPECT_THROW(t.add_row({"only-one"}), PreconditionError);
  EXPECT_THROW(Table({}), PreconditionError);
}

TEST(Fmt, FixedPrecision) {
  EXPECT_EQ(fmt(1.0, 2), "1.00");
  EXPECT_EQ(fmt(0.41421356, 4), "0.4142");
}

TEST(Dot, ContainsNodesAndEdges) {
  const topo::Butterfly bf(2);
  std::ostringstream os;
  DotOptions opts;
  opts.graph_name = "B2";
  opts.label = [&](NodeId v) {
    return std::to_string(bf.column(v)) + "." + std::to_string(bf.level(v));
  };
  opts.node_attrs = [](NodeId v) {
    return v == 0 ? std::string("color=red") : std::string();
  };
  write_dot(os, bf.graph(), opts);
  const std::string s = os.str();
  EXPECT_NE(s.find("graph B2 {"), std::string::npos);
  EXPECT_NE(s.find("n0 [label=\"0.0\", color=red]"), std::string::npos);
  EXPECT_NE(s.find(" -- "), std::string::npos);
  // 4 edges of B2.
  std::size_t edges = 0, pos = 0;
  while ((pos = s.find(" -- ", pos)) != std::string::npos) {
    ++edges;
    pos += 4;
  }
  EXPECT_EQ(edges, 4u);
}

TEST(Ascii, RendersAllLevels) {
  const topo::Butterfly bf(8);
  const std::string art = render_butterfly_ascii(bf);
  EXPECT_NE(art.find("column"), std::string::npos);
  EXPECT_NE(art.find("000"), std::string::npos);
  EXPECT_NE(art.find("111"), std::string::npos);
  // One row of 'o' markers per level.
  std::size_t rows = 0, pos = 0;
  while ((pos = art.find(" o", pos)) != std::string::npos) {
    ++rows;
    pos += 2;
  }
  EXPECT_EQ(rows, 8u * 4u);  // 8 columns x 4 levels
}

}  // namespace
}  // namespace bfly::io
