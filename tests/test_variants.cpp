// Section 1.6 variants: Snir's Ω_n, Hong–Kung's FFT_n, and the [13]
// directed bandwidth-style bisection from Section 1.2.
#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.hpp"
#include "expansion/constructive_sets.hpp"
#include "variants/bandwidth.hpp"
#include "variants/fft.hpp"
#include "variants/omega.hpp"

namespace bfly::variants {
namespace {

TEST(Omega, PortFunctionalBasics) {
  const OmegaNetwork omega(8);  // base B4
  const auto& bf = omega.base();
  // A single input node: 2 edges + 2 ports.
  const std::vector<NodeId> one_input = {bf.node(0, 0)};
  EXPECT_EQ(omega.port_edge_expansion(one_input), 4u);
  // A single middle node: 4 edges, no ports.
  const std::vector<NodeId> one_mid = {bf.node(0, 1)};
  EXPECT_EQ(omega.port_edge_expansion(one_mid), 4u);
  // The whole base network: no cut edges, all ports = 2*(n/2) + 2*(n/2).
  std::vector<NodeId> all;
  for (NodeId v = 0; v < bf.num_nodes(); ++v) all.push_back(v);
  EXPECT_EQ(omega.port_edge_expansion(all), 16u);
}

TEST(Omega, SnirInequalityHoldsExhaustively) {
  // C log C >= 4k over EVERY nonempty subset of the Omega_8 base (B4,
  // 12 nodes, 4095 sets) — the Section 1.6 claim, machine-checked.
  const OmegaNetwork omega(8);
  const auto& g = omega.base().graph();
  const NodeId n = g.num_nodes();
  std::vector<NodeId> set;
  for (std::uint32_t bits = 1; bits < (1u << n); ++bits) {
    set.clear();
    for (NodeId v = 0; v < n; ++v) {
      if (bits & (1u << v)) set.push_back(v);
    }
    const auto chk = omega.snir_inequality(set);
    ASSERT_TRUE(chk.holds) << "violated at k=" << set.size()
                           << " C=" << chk.c;
  }
}

TEST(Omega, ExactSweepMatchesFunctional) {
  const OmegaNetwork omega(8);
  const auto best = exact_port_expansion(omega);
  // Spot check: k = 1 minimum is 4 (any node).
  EXPECT_EQ(best[1], 4u);
  // Each minimum satisfies Snir.
  for (std::size_t k = 1; k < best.size(); ++k) {
    const double lhs = static_cast<double>(best[k]) *
                       std::log2(static_cast<double>(best[k]));
    EXPECT_GE(lhs, 4.0 * static_cast<double>(k) - 1e-9) << "k=" << k;
  }
}

TEST(Omega, RejectsBadSizes) {
  EXPECT_THROW(OmegaNetwork(6), PreconditionError);
  EXPECT_THROW(OmegaNetwork(2), PreconditionError);
}

TEST(FFT, DominatorOfWholeOutputLevelIsN) {
  const topo::Butterfly bf(8);
  const auto outputs = bf.level_nodes(bf.dims());
  const auto cut = min_dominator(bf, outputs);
  EXPECT_EQ(cut.size, 8);
}

TEST(FFT, DominatorOfSingleNode) {
  const topo::Butterfly bf(8);
  const std::vector<NodeId> one = {bf.node(5, 2)};
  EXPECT_EQ(min_dominator(bf, one).size, 1);
}

TEST(FFT, HongKungHoldsOnStructuredSets) {
  const topo::Butterfly bf(16);
  // Sub-butterfly sets anchored at the outputs (the Lemma 4.10 sets):
  // their dominator is the level above, and the bound holds.
  for (const std::uint32_t delta : {1u, 2u, 3u}) {
    const auto set = expansion::bn_ne_set(bf, delta);
    const auto chk = hong_kung_check(bf, set);
    ASSERT_GE(chk.dominator_size, 2u);
    EXPECT_TRUE(chk.holds) << "delta=" << delta << " k=" << chk.k
                           << " |D|=" << chk.dominator_size;
  }
}

TEST(FFT, HongKungHoldsOnRandomSets) {
  const topo::Butterfly bf(16);
  Rng rng(4242);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t k = 2 + rng.below(24);
    std::vector<NodeId> set;
    std::vector<std::uint8_t> in(bf.num_nodes(), 0);
    while (set.size() < k) {
      const NodeId v = static_cast<NodeId>(rng.below(bf.num_nodes()));
      if (!in[v]) {
        in[v] = 1;
        set.push_back(v);
      }
    }
    const auto chk = hong_kung_check(bf, set);
    if (chk.dominator_size >= 2) {
      EXPECT_TRUE(chk.holds) << "k=" << chk.k << " |D|="
                             << chk.dominator_size;
    }
  }
}

TEST(Bandwidth, MsbCutIsHalfN) {
  for (const std::uint32_t n : {4u, 8u, 16u}) {
    const topo::Butterfly bf(n);
    EXPECT_EQ(directed_msb_cut(bf), n / 2) << "n=" << n;
  }
}

TEST(Bandwidth, ExhaustiveOnB4EqualsHalfN) {
  const topo::Butterfly bf(4);
  EXPECT_EQ(directed_io_bisection_exhaustive(bf), 2u);
}

TEST(Bandwidth, FlowBoundBracketsValue) {
  // flow LB <= value <= MSB cut; on B4 and B8 both ends equal n/2,
  // pinning the [13] bisection exactly.
  for (const std::uint32_t n : {4u, 8u}) {
    const topo::Butterfly bf(n);
    const auto lb = directed_io_bisection_flow_bound(bf);
    const auto ub = directed_msb_cut(bf);
    EXPECT_EQ(lb, n / 2) << "n=" << n;
    EXPECT_EQ(ub, n / 2) << "n=" << n;
  }
}

TEST(Bandwidth, RelationToBandwidthValue) {
  // [13]: exact bandwidth of the n-input butterfly is 2n, and bandwidth
  // <= 4 * bisection; with bisection = n/2 the inequality is tight.
  const std::uint32_t n = 8;
  const topo::Butterfly bf(n);
  const double bandwidth = 2.0 * n;  // quoted exact value from [13]
  EXPECT_LE(bandwidth,
            4.0 * static_cast<double>(directed_msb_cut(bf)) + 1e-9);
}

}  // namespace
}  // namespace bfly::variants
