// Exact bisection solvers: Gray-code exhaustive vs branch-and-bound, and
// the paper's exact bisection-width results on materializable sizes
// (Lemma 3.2: BW(Wn) = n; Lemma 3.3: BW(CCCn) = n/2; Section 2's
// machinery on Bn).
#include <gtest/gtest.h>

#include "core/partition.hpp"
#include "core/rng.hpp"
#include "cut/bisection.hpp"
#include "cut/branch_bound.hpp"
#include "cut/brute_force.hpp"
#include "cut/constructive.hpp"
#include "topology/butterfly.hpp"
#include "topology/ccc.hpp"
#include "topology/mesh_of_stars.hpp"
#include "topology/wrapped_butterfly.hpp"

namespace bfly::cut {
namespace {

Graph random_graph(NodeId n, double p, std::uint64_t seed) {
  Rng rng(seed);
  GraphBuilder gb(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (rng.bernoulli(p)) gb.add_edge(u, v);
    }
  }
  return std::move(gb).build();
}

TEST(Bisection, Helpers) {
  EXPECT_TRUE(is_bisection({0, 1}));
  EXPECT_TRUE(is_bisection({0, 1, 0}));
  EXPECT_FALSE(is_bisection({0, 0, 0, 1}));
  const std::vector<NodeId> subset = {0, 2};
  EXPECT_TRUE(bisects_subset({0, 0, 1, 1}, subset));
  EXPECT_FALSE(bisects_subset({0, 0, 0, 1}, subset));
}

TEST(Bisection, ValidateCutDetectsMismatch) {
  const topo::Butterfly bf(4);
  CutResult r = column_split_bisection(bf);
  EXPECT_NO_THROW(validate_cut(bf.graph(), r));
  r.capacity += 1;
  EXPECT_THROW(validate_cut(bf.graph(), r), PreconditionError);
}

TEST(Exhaustive, FourCycleBisection) {
  // B2 is a 4-cycle; its bisection width is 2.
  const topo::Butterfly b2(2);
  const auto r = min_bisection_exhaustive(b2.graph());
  EXPECT_EQ(r.capacity, 2u);
  EXPECT_TRUE(is_bisection(r.sides));
  EXPECT_EQ(cut_capacity(b2.graph(), r.sides), 2u);
}

TEST(Exhaustive, MatchesBranchAndBoundOnRandomGraphs) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Graph g = random_graph(12, 0.3, seed);
    const auto ex = min_bisection_exhaustive(g);
    const auto bb = min_bisection_branch_bound(g);
    EXPECT_EQ(ex.capacity, bb.capacity) << "seed " << seed;
    EXPECT_TRUE(is_bisection(bb.sides));
    EXPECT_EQ(cut_capacity(g, bb.sides), bb.capacity);
  }
}

TEST(Exhaustive, OddNodeCountBisection) {
  const Graph g = random_graph(9, 0.4, 99);
  const auto ex = min_bisection_exhaustive(g);
  const auto bb = min_bisection_branch_bound(g);
  EXPECT_EQ(ex.capacity, bb.capacity);
  EXPECT_TRUE(is_bisection(ex.sides));
}

TEST(Exhaustive, SubsetBisectionMatchesBranchAndBound) {
  const topo::MeshOfStars mos(2, 2);
  const auto m2 = mos.m2_nodes();
  const auto ex = min_cut_bisecting_exhaustive(mos.graph(), m2);
  BranchBoundOptions opts;
  opts.bisect_subset = m2;
  const auto bb = min_bisection_branch_bound(mos.graph(), opts);
  EXPECT_EQ(ex.capacity, bb.capacity);
  EXPECT_EQ(ex.capacity, 2u);  // BW(MOS_{2,2}, M2) = f-grid optimum = 2
  EXPECT_TRUE(bisects_subset(bb.sides, m2));
}

TEST(Exhaustive, AllSizesSweepConsistent) {
  const Graph g = random_graph(10, 0.4, 5);
  const auto all = min_cuts_all_sizes(g);
  for (const std::size_t k : {1u, 3u, 5u}) {
    const auto single = min_cut_of_size_exhaustive(g, k);
    EXPECT_EQ(all[k].capacity, single.capacity) << "k=" << k;
    std::size_t ones = 0;
    for (const auto s : all[k].sides) ones += s;
    EXPECT_EQ(ones, k);
  }
}

TEST(Exhaustive, RefusesOversizedGraphs) {
  const Graph g = random_graph(30, 0.2, 1);
  BruteForceOptions opts;
  opts.max_states = 1u << 20;
  EXPECT_THROW(min_bisection_exhaustive(g, opts), PreconditionError);
}

TEST(BranchBound, BW_B4_MatchesExhaustive) {
  const topo::Butterfly bf(4);
  const auto ex = min_bisection_exhaustive(bf.graph());
  const auto bb = min_bisection_branch_bound(bf.graph());
  EXPECT_EQ(ex.capacity, bb.capacity);
  // Folklore is an upper bound.
  EXPECT_LE(bb.capacity, column_split_bisection(bf).capacity);
}

TEST(BranchBound, BW_B8_EqualsFolkloreAtThisSize) {
  // At n = 8 the asymptotic 2(sqrt2-1)n construction is far out of
  // reach; the exact optimum equals the folklore n (machine-checked).
  const topo::Butterfly bf(8);
  BranchBoundOptions opts;
  opts.initial_bound = column_split_bisection(bf).capacity;
  const auto bb = min_bisection_branch_bound(bf.graph(), opts);
  EXPECT_EQ(bb.capacity, 8u);
  EXPECT_EQ(bb.exactness, Exactness::kExact);
}

TEST(BranchBound, Lemma32_BW_W8_Equals_n) {
  const topo::WrappedButterfly wb(8);
  BranchBoundOptions opts;
  opts.initial_bound = column_split_bisection(wb).capacity;
  const auto bb = min_bisection_branch_bound(wb.graph(), opts);
  EXPECT_EQ(bb.capacity, 8u);
  EXPECT_EQ(bb.exactness, Exactness::kExact);
}

TEST(BranchBound, Lemma32_BW_W16_Equals_n) {
  // 64 nodes — far beyond exhaustive reach; the branch-and-bound proves
  // BW(W16) = 16 in well under a second thanks to the assigned-neighbor
  // lower bound.
  const topo::WrappedButterfly wb(16);
  BranchBoundOptions opts;
  opts.initial_bound = column_split_bisection(wb).capacity;
  const auto bb = min_bisection_branch_bound(wb.graph(), opts);
  EXPECT_EQ(bb.capacity, 16u);
  EXPECT_EQ(bb.exactness, Exactness::kExact);
}

TEST(BranchBound, Lemma32_BW_W4_Equals_n) {
  const topo::WrappedButterfly wb(4);
  const auto ex = min_bisection_exhaustive(wb.graph());
  EXPECT_EQ(ex.capacity, 4u);
}

TEST(BranchBound, Lemma33_BW_CCC8_Equals_HalfN) {
  const topo::CubeConnectedCycles cc(8);
  BranchBoundOptions opts;
  opts.initial_bound = dimension_cut_bisection(cc).capacity;
  const auto bb = min_bisection_branch_bound(cc.graph(), opts);
  EXPECT_EQ(bb.capacity, 4u);
  EXPECT_EQ(bb.exactness, Exactness::kExact);
}

TEST(BranchBound, Lemma33_BW_CCC16_Equals_HalfN) {
  const topo::CubeConnectedCycles cc(16);  // 64 nodes, exact in ~30 ms
  BranchBoundOptions opts;
  opts.initial_bound = dimension_cut_bisection(cc).capacity;
  const auto bb = min_bisection_branch_bound(cc.graph(), opts);
  EXPECT_EQ(bb.capacity, 8u);
  EXPECT_EQ(bb.exactness, Exactness::kExact);
}

TEST(BranchBound, InitialBoundBelowOptimumReportsNoSolution) {
  const topo::Butterfly b2(2);  // BW = 2
  BranchBoundOptions opts;
  opts.initial_bound = 1;
  const auto bb = min_bisection_branch_bound(b2.graph(), opts);
  EXPECT_EQ(bb.capacity, static_cast<std::size_t>(-1));
  EXPECT_EQ(bb.exactness, Exactness::kExact);
}

TEST(BranchBound, NodeLimitDegradesExactness) {
  const Graph g = random_graph(16, 0.5, 3);
  BranchBoundOptions opts;
  opts.node_limit = 10;
  const auto bb = min_bisection_branch_bound(g, opts);
  EXPECT_EQ(bb.exactness, Exactness::kHeuristic);
}

TEST(Lemma212, SomeLevelBisectionIsNoHarderThanBisection) {
  // Lemma 2.12(1): there is a level i with BW(Bn, L_i) <= BW(Bn).
  const topo::Butterfly bf(4);
  const auto bw = min_bisection_exhaustive(bf.graph()).capacity;
  std::size_t best_level_bw = static_cast<std::size_t>(-1);
  for (std::uint32_t lvl = 0; lvl <= bf.dims(); ++lvl) {
    const auto level = bf.level_nodes(lvl);
    const auto r = min_cut_bisecting_exhaustive(bf.graph(), level);
    best_level_bw = std::min(best_level_bw, r.capacity);
  }
  EXPECT_LE(best_level_bw, bw);
}

TEST(Lemma31, CutsBisectingInputsHaveCapacityAtLeastN) {
  // Lemma 3.1 on B4: any cut bisecting the inputs has capacity >= n = 4.
  const topo::Butterfly bf(4);
  const auto inputs = bf.level_nodes(0);
  const auto r = min_cut_bisecting_exhaustive(bf.graph(), inputs);
  EXPECT_GE(r.capacity, 4u);
  // And the outputs, by the Lemma 2.1 symmetry.
  const auto outputs = bf.level_nodes(bf.dims());
  const auto r2 = min_cut_bisecting_exhaustive(bf.graph(), outputs);
  EXPECT_GE(r2.capacity, 4u);
  // Inputs and outputs pooled.
  std::vector<NodeId> io(inputs);
  io.insert(io.end(), outputs.begin(), outputs.end());
  const auto r3 = min_cut_bisecting_exhaustive(bf.graph(), io);
  EXPECT_GE(r3.capacity, 4u);
}

}  // namespace
}  // namespace bfly::cut
