// Tests for the bisection query service (DESIGN.md §14): protocol
// parsing, symmetry-canonical cache keys, the two-tier crash-safe
// cache, and the executor's admission/coalescing/deadline/fault
// behavior. Service tests stage the queue deterministically with
// autostart=false and release it with start().

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "cut/branch_bound.hpp"
#include "expansion/expansion.hpp"
#include "robust/checkpoint.hpp"
#include "robust/fault_injection.hpp"
#include "robust/supervisor.hpp"
#include "service/cache.hpp"
#include "service/daemon.hpp"
#include "service/executor.hpp"
#include "service/request.hpp"

namespace {

using namespace bfly;
namespace fs = std::filesystem;

fs::path temp_cache_dir(const std::string& name) {
  const auto dir = fs::temp_directory_path() /
                   ("bfly_test_service_" + name + "_" +
                    std::to_string(::getpid()));
  fs::remove_all(dir);
  return dir;
}

/// RAII cleanup so a failing test does not leak its cache directory
/// into the next run.
struct DirGuard {
  fs::path dir;
  explicit DirGuard(fs::path d) : dir(std::move(d)) {}
  ~DirGuard() { fs::remove_all(dir); }
};

service::Request bw(service::Family family, std::uint32_t n,
                    service::Policy policy = service::Policy::kExact) {
  service::Request r;
  r.kind = service::QueryKind::kBisectionWidth;
  r.family = family;
  r.n = n;
  r.policy = policy;
  return r;
}

service::Request boundary(service::Family family, std::uint32_t n,
                          std::uint64_t mask) {
  service::Request r;
  r.kind = service::QueryKind::kBoundary;
  r.family = family;
  r.n = n;
  r.subset_mask = mask;
  return r;
}

/// Collects async responses and lets the test block until N arrived.
struct Collector {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<service::Response> responses;

  std::function<void(service::Response)> sink() {
    return [this](service::Response r) {
      std::lock_guard<std::mutex> lock(mu);
      responses.push_back(std::move(r));
      cv.notify_all();
    };
  }

  std::vector<service::Response> wait_for(std::size_t n) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait_for(lock, std::chrono::seconds(60),
                [&] { return responses.size() >= n; });
    return responses;
  }
};

// ---------------------------------------------------------------------------
// Protocol
// ---------------------------------------------------------------------------

TEST(Protocol, ParsesMinimalBisectionLine) {
  const auto r = service::parse_request("BW b 8");
  EXPECT_EQ(r.kind, service::QueryKind::kBisectionWidth);
  EXPECT_EQ(r.family, service::Family::kButterfly);
  EXPECT_EQ(r.n, 8u);
  EXPECT_EQ(r.policy, service::Policy::kExact);
  EXPECT_EQ(r.deadline_seconds, 0.0);
  EXPECT_EQ(r.node_budget, 0u);
  EXPECT_TRUE(r.id.empty());
}

TEST(Protocol, ParsesAllOptionsAndFamilies) {
  const auto r = service::parse_request(
      "bw wrapped 16 policy=heuristic deadline_ms=500 nodes=12345 id=a.b:c-1");
  EXPECT_EQ(r.family, service::Family::kWrapped);
  EXPECT_EQ(r.n, 16u);
  EXPECT_EQ(r.policy, service::Policy::kHeuristic);
  EXPECT_DOUBLE_EQ(r.deadline_seconds, 0.5);
  EXPECT_EQ(r.node_budget, 12345u);
  EXPECT_EQ(r.id, "a.b:c-1");

  EXPECT_EQ(service::parse_request("BW ccc 8").family, service::Family::kCcc);
  EXPECT_EQ(service::parse_request("BW q 16").family,
            service::Family::kHypercube);
  EXPECT_EQ(service::parse_request("BW HYPERCUBE 16").family,
            service::Family::kHypercube);
}

TEST(Protocol, ParsesBoundaryMask) {
  const auto r = service::parse_request("BOUNDARY b 4 0f id=x");
  EXPECT_EQ(r.kind, service::QueryKind::kBoundary);
  EXPECT_EQ(r.subset_mask, 0xfu);
  EXPECT_EQ(r.id, "x");
}

TEST(Protocol, RejectsMalformedLines) {
  const char* bad[] = {
      "",                          // empty
      "FROB b 8",                  // unknown verb
      "BW martian 8",              // unknown family
      "BW b",                      // missing n
      "BW b eight",                // non-numeric n
      "BW b -8",                   // signed
      "BW b 8x",                   // trailing junk in number
      "BW b 99999999999999999999", // u32 overflow
      "BW b 8 policy=psychic",     // unknown policy
      "BW b 8 deadline_ms=86400001",  // past the 24h cap
      "BW b 8 frobnicate=1",       // unknown option
      "BW b 8 id=no/slash",        // id charset
      "BOUNDARY b 4",              // missing mask
      "BOUNDARY b 4 0xzz",         // bad hex
  };
  for (const char* line : bad) {
    EXPECT_THROW((void)service::parse_request(line), service::ProtocolError)
        << "accepted: " << line;
  }
  // id length cap (64) and the line-size cap.
  EXPECT_THROW((void)service::parse_request("BW b 8 id=" +
                                            std::string(65, 'a')),
               service::ProtocolError);
  EXPECT_THROW((void)service::parse_request(
                   "BW b 8 " + std::string(service::kMaxLineBytes, ' ')),
               service::ProtocolError);
}

TEST(Protocol, FormatResponseRoundsTripAndSanitizes) {
  service::Response ok;
  ok.status = service::Status::kOk;
  ok.id = "q1";
  ok.key = 0x1234abcd5678ef00ull;
  ok.value = 8;
  ok.exact = true;
  ok.source = service::Source::kMemory;
  ok.wall_ms = 0.25;
  const std::string line = service::format_response(ok);
  EXPECT_NE(line.find("OK id=q1 key=1234abcd5678ef00 value=8 exact=1"),
            std::string::npos)
      << line;

  service::Response err;
  err.status = service::Status::kShed;
  err.id = "q2";
  err.detail = "line one\nline two";
  const std::string eline = service::format_response(err);
  EXPECT_NE(eline.find("ERR id=q2 status=shed"), std::string::npos) << eline;
  // A newline smuggled into the detail must not split the response line.
  EXPECT_EQ(eline.find('\n'), std::string::npos) << eline;
}

// ---------------------------------------------------------------------------
// Canonical keys
// ---------------------------------------------------------------------------

TEST(CanonicalKey, SymmetricBoundaryMasksCollide) {
  // Every member of a mask's automorphism orbit must map to the same
  // cache key — that is the whole point of canonicalization.
  const auto group =
      service::automorphism_group(service::Family::kButterfly, 4);
  const std::uint64_t mask = 0x13;  // arbitrary 12-node B4 subset
  const auto orbit = group.mask_orbit(mask);
  ASSERT_GE(orbit.size(), 2u) << "B4 automorphisms should move this mask";
  const std::uint64_t key0 =
      service::canonical_key(boundary(service::Family::kButterfly, 4, mask));
  for (const std::uint64_t m : orbit) {
    EXPECT_EQ(service::canonical_key(
                  boundary(service::Family::kButterfly, 4, m)),
              key0);
  }
}

TEST(CanonicalKey, DistinguishesInstancesButNotPolicy) {
  const auto k_b8 = service::canonical_key(bw(service::Family::kButterfly, 8));
  EXPECT_NE(k_b8, service::canonical_key(bw(service::Family::kButterfly, 4)));
  EXPECT_NE(k_b8, service::canonical_key(bw(service::Family::kWrapped, 8)));
  EXPECT_NE(k_b8, service::canonical_key(
                      boundary(service::Family::kButterfly, 8, 0)));
  // Policy is not part of the identity of the answer.
  EXPECT_EQ(k_b8, service::canonical_key(bw(service::Family::kButterfly, 8,
                                            service::Policy::kHeuristic)));
}

TEST(CanonicalKey, ValidInstanceDomain) {
  EXPECT_TRUE(service::valid_instance(service::Family::kButterfly, 4));
  EXPECT_FALSE(service::valid_instance(service::Family::kButterfly, 3));
  EXPECT_FALSE(service::valid_instance(service::Family::kButterfly, 0));
  EXPECT_FALSE(service::valid_instance(service::Family::kWrapped, 2));
  EXPECT_TRUE(service::valid_instance(service::Family::kWrapped, 4));
  EXPECT_TRUE(service::valid_instance(service::Family::kHypercube, 2));
  // 4096-node service ceiling.
  EXPECT_FALSE(service::valid_instance(service::Family::kHypercube, 8192));
}

// ---------------------------------------------------------------------------
// Cache
// ---------------------------------------------------------------------------

service::CacheEntry entry_for(const service::Request& r, std::uint64_t value,
                              bool exact) {
  service::CacheEntry e;
  e.key = service::canonical_key(r);
  e.kind = r.kind;
  e.family = r.family;
  e.n = r.n;
  e.mask = r.kind == service::QueryKind::kBoundary
               ? service::canonical_mask(r.family, r.n, r.subset_mask)
               : 0;
  e.value = value;
  e.exact = exact;
  return e;
}

TEST(Cache, WireRoundTripAndEveryBitflipRejected) {
  const auto e = entry_for(boundary(service::Family::kButterfly, 4, 0x13),
                           7, true);
  const auto bytes = service::encode_entry(e);
  const auto back = service::decode_entry(bytes);
  EXPECT_EQ(back.key, e.key);
  EXPECT_EQ(back.value, e.value);
  EXPECT_EQ(back.mask, e.mask);
  EXPECT_EQ(back.exact, e.exact);

  // The checksum (or the magic/version checks) must catch any
  // single-byte corruption, and any truncation.
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    auto bad = bytes;
    bad[i] ^= 0x40;
    EXPECT_THROW((void)service::decode_entry(bad), robust::SnapshotError)
        << "byte " << i << " flip decoded";
  }
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_THROW((void)service::decode_entry(
                     std::span<const std::uint8_t>(bytes.data(), len)),
                 robust::SnapshotError)
        << "prefix " << len << " decoded";
  }
}

TEST(Cache, DecodeRejectsKeyMismatch) {
  // A syntactically intact entry whose stored key does not match its
  // instance is a mislabeled answer — the decoder must refuse it.
  auto e = entry_for(bw(service::Family::kButterfly, 4), 4, true);
  e.key ^= 1;
  const auto bytes = service::encode_entry(e);
  EXPECT_THROW((void)service::decode_entry(bytes), robust::SnapshotError);
}

TEST(Cache, LruMergeNeverDowngradesProofs) {
  service::LruCache lru(8);
  const auto req = bw(service::Family::kButterfly, 4);
  lru.put(entry_for(req, 5, /*exact=*/false));
  // A tighter heuristic bound replaces a looser one...
  EXPECT_EQ(lru.put(entry_for(req, 4, false)).value, 4u);
  EXPECT_FALSE(lru.get(service::canonical_key(req))->exact);
  // ...an exact answer replaces any heuristic...
  EXPECT_TRUE(lru.put(entry_for(req, 4, true)).exact);
  // ...and nothing replaces an exact answer.
  const auto kept = lru.put(entry_for(req, 3, false));
  EXPECT_TRUE(kept.exact);
  EXPECT_EQ(kept.value, 4u);
  EXPECT_EQ(lru.get(service::canonical_key(req))->value, 4u);
}

TEST(Cache, LruEvictsLeastRecentlyUsed) {
  service::LruCache lru(2);
  const auto a = bw(service::Family::kButterfly, 4);
  const auto b = bw(service::Family::kButterfly, 8);
  const auto c = bw(service::Family::kWrapped, 4);
  lru.put(entry_for(a, 1, true));
  lru.put(entry_for(b, 2, true));
  (void)lru.get(service::canonical_key(a));  // a is now most recent
  lru.put(entry_for(c, 3, true));            // evicts b
  EXPECT_TRUE(lru.get(service::canonical_key(a)).has_value());
  EXPECT_FALSE(lru.get(service::canonical_key(b)).has_value());
  EXPECT_TRUE(lru.get(service::canonical_key(c)).has_value());
}

TEST(Cache, PersistentStoreLoadRecover) {
  const DirGuard guard(temp_cache_dir("persist"));
  service::PersistentCache disk(guard.dir);
  const auto e = entry_for(bw(service::Family::kButterfly, 4), 4, true);
  disk.store(e);
  const auto hit = disk.load(e.key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->value, 4u);
  EXPECT_TRUE(hit->exact);
  EXPECT_FALSE(disk.load(e.key ^ 1).has_value());  // miss, not an error

  // A fresh instance over the same directory recovers the entry.
  service::PersistentCache disk2(guard.dir);
  const auto report = disk2.recover();
  ASSERT_EQ(report.entries.size(), 1u);
  EXPECT_EQ(report.entries[0].key, e.key);
  EXPECT_EQ(report.quarantined, 0u);
  EXPECT_EQ(report.tmp_removed, 0u);
}

TEST(Cache, RecoverySweepsTornWritesAndQuarantinesCorruption) {
  const DirGuard guard(temp_cache_dir("recover"));
  service::PersistentCache disk(guard.dir);
  const auto good = entry_for(bw(service::Family::kButterfly, 4), 4, true);
  const auto bad = entry_for(bw(service::Family::kButterfly, 8), 8, true);
  disk.store(good);
  disk.store(bad);

  // Corrupt one entry in place and fake a torn write.
  std::size_t corrupted = 0;
  for (const auto& de : fs::directory_iterator(guard.dir)) {
    char hex[17];
    std::snprintf(hex, sizeof hex, "%016llx",
                  static_cast<unsigned long long>(bad.key));
    if (de.path().filename() == std::string(hex) + ".bfc") {
      std::fstream f(de.path(), std::ios::in | std::ios::out |
                                    std::ios::binary);
      f.seekp(12);
      f.put('\xff');
      ++corrupted;
    }
  }
  ASSERT_EQ(corrupted, 1u);
  std::ofstream(guard.dir / "0000000000000000.bfc.tmp") << "torn";

  service::PersistentCache disk2(guard.dir);
  const auto report = disk2.recover();
  ASSERT_EQ(report.entries.size(), 1u);
  EXPECT_EQ(report.entries[0].key, good.key);
  EXPECT_EQ(report.quarantined, 1u);
  EXPECT_EQ(report.tmp_removed, 1u);
  EXPECT_EQ(disk2.quarantined(), 1u);
  // The quarantined file is set aside, not deleted: evidence survives.
  bool found_quarantined = false;
  for (const auto& de : fs::directory_iterator(guard.dir)) {
    if (de.path().extension() == ".quarantined") found_quarantined = true;
    EXPECT_NE(de.path().extension(), ".tmp");
  }
  EXPECT_TRUE(found_quarantined);
}

TEST(Cache, MislabeledFilenameQuarantined) {
  const DirGuard guard(temp_cache_dir("mislabel"));
  service::PersistentCache disk(guard.dir);
  const auto e = entry_for(bw(service::Family::kButterfly, 4), 4, true);
  disk.store(e);
  // Rename the entry under a different key's filename: the content is
  // intact but claims the wrong identity.
  fs::path src;
  for (const auto& de : fs::directory_iterator(guard.dir)) src = de.path();
  fs::rename(src, guard.dir / "00000000deadbeef.bfc");

  service::PersistentCache disk2(guard.dir);
  const auto report = disk2.recover();
  EXPECT_TRUE(report.entries.empty());
  EXPECT_EQ(report.quarantined, 1u);
}

TEST(Cache, TwoTierLookupPromotesFromDisk) {
  const DirGuard guard(temp_cache_dir("twotier"));
  // LRU of one: inserting the second entry evicts the first from
  // memory while its file stays on disk.
  service::ServiceCache cache(/*lru_capacity=*/1, guard.dir);
  const auto a = entry_for(bw(service::Family::kButterfly, 4), 4, true);
  const auto b = entry_for(bw(service::Family::kButterfly, 8), 8, true);
  EXPECT_EQ(cache.insert(a), service::ServiceCache::InsertOutcome::kPersisted);
  EXPECT_EQ(cache.insert(b), service::ServiceCache::InsertOutcome::kPersisted);

  const auto hit = cache.lookup(a.key, /*want_exact=*/true);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->source, service::Source::kDisk);
  EXPECT_EQ(hit->entry.value, 4u);
  // The disk hit was promoted: the next lookup is a memory hit.
  const auto again = cache.lookup(a.key, true);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->source, service::Source::kMemory);
}

TEST(Cache, ExactPolicySkipsHeuristicEntries) {
  service::ServiceCache cache(8, {});
  const auto req = bw(service::Family::kButterfly, 4);
  cache.insert(entry_for(req, 5, /*exact=*/false));
  const auto key = service::canonical_key(req);
  EXPECT_FALSE(cache.lookup(key, /*want_exact=*/true).has_value());
  const auto relaxed = cache.lookup(key, /*want_exact=*/false);
  ASSERT_TRUE(relaxed.has_value());
  EXPECT_EQ(relaxed->entry.value, 5u);
}

// ---------------------------------------------------------------------------
// Backoff policy
// ---------------------------------------------------------------------------

TEST(Backoff, PolicyIsDeterministicCappedAndJittered) {
  robust::BackoffPolicy p;
  p.initial_ms = 10.0;
  p.multiplier = 2.0;
  p.cap_ms = 55.0;
  EXPECT_DOUBLE_EQ(p.delay_ms(0), 10.0);
  EXPECT_DOUBLE_EQ(p.delay_ms(1), 20.0);
  EXPECT_DOUBLE_EQ(p.delay_ms(2), 40.0);
  EXPECT_DOUBLE_EQ(p.delay_ms(3), 55.0);  // capped
  EXPECT_DOUBLE_EQ(p.delay_ms(9), 55.0);

  p.jitter_fraction = 0.5;
  p.jitter_seed = 42;
  for (unsigned a = 0; a < 6; ++a) {
    const double base = std::min(10.0 * (1u << a), 55.0);
    const double d = p.delay_ms(a);
    EXPECT_GE(d, base);
    EXPECT_LT(d, base * 1.5);
    // Same (seed, attempt) always sleeps identically.
    EXPECT_DOUBLE_EQ(d, p.delay_ms(a));
  }
  auto q = p;
  q.jitter_seed = 43;
  bool any_differs = false;
  for (unsigned a = 0; a < 6; ++a) {
    any_differs = any_differs || p.delay_ms(a) != q.delay_ms(a);
  }
  EXPECT_TRUE(any_differs);
}

// ---------------------------------------------------------------------------
// Service executor
// ---------------------------------------------------------------------------

TEST(Service, ColdComputeMatchesReferenceThenWarmHit) {
  service::ServiceOptions opts;
  opts.workers = 1;
  service::Service svc(opts);

  const auto req = bw(service::Family::kButterfly, 4);
  const auto reference =
      cut::min_bisection_branch_bound(service::build_graph(req.family, req.n));

  const auto cold = svc.query(req);
  ASSERT_EQ(cold.status, service::Status::kOk) << cold.detail;
  EXPECT_EQ(cold.value, reference.capacity);
  EXPECT_TRUE(cold.exact);
  EXPECT_EQ(cold.source, service::Source::kComputed);

  const auto warm = svc.query(req);
  ASSERT_EQ(warm.status, service::Status::kOk);
  EXPECT_EQ(warm.value, cold.value);
  EXPECT_EQ(warm.source, service::Source::kMemory);

  const auto stats = svc.stats();
  EXPECT_EQ(stats.computed, 1u);
  EXPECT_EQ(stats.hits_memory, 1u);
  EXPECT_EQ(stats.ok, 2u);
}

TEST(Service, BoundaryServedInlineAndSymmetricMaskHitsSameEntry) {
  service::ServiceOptions opts;
  opts.workers = 1;
  opts.autostart = false;  // no workers: inline paths must still answer
  service::Service svc(opts);

  const Graph g = service::build_graph(service::Family::kButterfly, 4);
  const std::uint64_t mask = 0x13;
  std::vector<NodeId> set;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (((mask >> v) & 1u) != 0) set.push_back(v);
  }
  const auto expected = expansion::edge_boundary(g, set);

  const auto r1 = svc.query(boundary(service::Family::kButterfly, 4, mask));
  ASSERT_EQ(r1.status, service::Status::kOk) << r1.detail;
  EXPECT_EQ(r1.value, expected);
  EXPECT_TRUE(r1.exact);
  EXPECT_EQ(r1.source, service::Source::kComputed);

  // A symmetric sibling of the mask is a memory hit on the same entry.
  const auto group =
      service::automorphism_group(service::Family::kButterfly, 4);
  const auto orbit = group.mask_orbit(mask);
  ASSERT_GE(orbit.size(), 2u);
  const std::uint64_t sibling = orbit.back() != mask ? orbit.back()
                                                     : orbit.front();
  const auto r2 = svc.query(boundary(service::Family::kButterfly, 4, sibling));
  ASSERT_EQ(r2.status, service::Status::kOk);
  EXPECT_EQ(r2.value, expected);
  EXPECT_EQ(r2.source, service::Source::kMemory);
  EXPECT_EQ(r2.key, r1.key);
}

TEST(Service, BadRequestsRejectedInline) {
  service::ServiceOptions opts;
  opts.autostart = false;
  service::Service svc(opts);

  auto r = svc.query(bw(service::Family::kButterfly, 3));  // not a power of 2
  EXPECT_EQ(r.status, service::Status::kBadRequest);
  r = svc.query(bw(service::Family::kHypercube, 8192));    // past the ceiling
  EXPECT_EQ(r.status, service::Status::kBadRequest);
  // BOUNDARY on a >64-node instance has no mask-orbit canonicalizer.
  r = svc.query(boundary(service::Family::kButterfly, 32, 1));
  EXPECT_EQ(r.status, service::Status::kBadRequest);
  // Mask bits outside the node range.
  r = svc.query(boundary(service::Family::kButterfly, 4, 1ull << 63));
  EXPECT_EQ(r.status, service::Status::kBadRequest);
  EXPECT_EQ(svc.stats().bad_request, 4u);
}

TEST(Service, IdenticalInFlightRequestsCoalesce) {
  service::ServiceOptions opts;
  opts.workers = 1;
  opts.autostart = false;  // stage all parties before any worker runs
  service::Service svc(opts);

  constexpr std::size_t kParties = 5;
  Collector col;
  for (std::size_t i = 0; i < kParties; ++i) {
    auto req = bw(service::Family::kButterfly, 4);
    req.id = "p" + std::to_string(i);
    svc.query_async(std::move(req), col.sink());
  }
  {
    // Nothing has answered yet — the queue is staged, not running.
    std::lock_guard<std::mutex> lock(col.mu);
    EXPECT_TRUE(col.responses.empty());
  }
  svc.start();
  const auto responses = col.wait_for(kParties);
  ASSERT_EQ(responses.size(), kParties);

  std::size_t computed = 0, coalesced = 0;
  for (const auto& r : responses) {
    ASSERT_EQ(r.status, service::Status::kOk) << r.detail;
    EXPECT_EQ(r.value, responses[0].value);
    EXPECT_TRUE(r.exact);
    if (r.source == service::Source::kComputed) ++computed;
    if (r.source == service::Source::kCoalesced) ++coalesced;
  }
  EXPECT_EQ(computed, 1u);
  EXPECT_EQ(coalesced, kParties - 1);

  const auto stats = svc.stats();
  EXPECT_EQ(stats.computed, 1u);
  EXPECT_EQ(stats.coalesced, kParties - 1);
}

TEST(Service, RequestArrivingMidSolveJoinsTheRunningComputation) {
  // Unlike the staged test above, the workers run from the start: the
  // second request lands while the first's multi-ms exact B8 solve is
  // in flight (or, if timing slips, after it finished and cached).
  // Either way the invariant is one computation total — the pending
  // entry outlives the queue pop, so mid-solve arrivals join it
  // instead of popping a duplicate solve on the idle second worker.
  service::ServiceOptions opts;
  opts.workers = 2;
  service::Service svc(opts);

  Collector col;
  svc.query_async(bw(service::Family::kButterfly, 8), col.sink());
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const service::Response second =
      svc.query(bw(service::Family::kButterfly, 8));

  const auto responses = col.wait_for(1);
  ASSERT_EQ(responses.size(), 1u);
  ASSERT_EQ(responses[0].status, service::Status::kOk) << responses[0].detail;
  ASSERT_EQ(second.status, service::Status::kOk) << second.detail;
  EXPECT_EQ(second.value, responses[0].value);
  EXPECT_TRUE(second.exact);
  EXPECT_NE(second.source, service::Source::kComputed);

  const auto stats = svc.stats();
  EXPECT_EQ(stats.computed, 1u);
  EXPECT_EQ(stats.coalesced + stats.hits_memory, 1u);
}

TEST(Service, FullQueueShedsHonestly) {
  service::ServiceOptions opts;
  opts.workers = 1;
  opts.queue_capacity = 1;
  opts.autostart = false;
  service::Service svc(opts);

  Collector col;
  svc.query_async(bw(service::Family::kButterfly, 4), col.sink());
  // Same key coalesces instead of consuming a queue slot.
  svc.query_async(bw(service::Family::kButterfly, 4), col.sink());

  // A distinct computation needs a slot, and there is none: shed,
  // inline, before the workers even exist.
  std::atomic<bool> shed_inline{false};
  svc.query_async(bw(service::Family::kWrapped, 4),
                  [&](service::Response r) {
                    EXPECT_EQ(r.status, service::Status::kShed);
                    EXPECT_NE(r.detail.find("queue"), std::string::npos);
                    shed_inline.store(true);
                  });
  EXPECT_TRUE(shed_inline.load());

  svc.start();
  const auto responses = col.wait_for(2);
  ASSERT_EQ(responses.size(), 2u);
  for (const auto& r : responses) {
    EXPECT_EQ(r.status, service::Status::kOk) << r.detail;
  }
  EXPECT_EQ(svc.stats().shed, 1u);
}

TEST(Service, DeadlinePassedWhileQueuedIsHonest) {
  service::ServiceOptions opts;
  opts.workers = 1;
  opts.autostart = false;
  service::Service svc(opts);

  auto req = bw(service::Family::kButterfly, 8);
  req.deadline_seconds = 0.001;
  Collector col;
  svc.query_async(std::move(req), col.sink());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  svc.start();  // by now the deadline is long gone
  const auto responses = col.wait_for(1);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status, service::Status::kDeadline);
  EXPECT_EQ(svc.stats().deadline_expired, 1u);
}

TEST(Service, ShutdownShedsQueuedWork) {
  Collector col;
  {
    service::ServiceOptions opts;
    opts.autostart = false;  // never started: the queue drains via shed
    service::Service svc(opts);
    svc.query_async(bw(service::Family::kButterfly, 8), col.sink());
  }
  ASSERT_EQ(col.responses.size(), 1u);
  EXPECT_EQ(col.responses[0].status, service::Status::kShed);
  EXPECT_NE(col.responses[0].detail.find("shutting down"), std::string::npos);
}

TEST(Service, PersistsAcrossRestartAndRecovers) {
  const DirGuard guard(temp_cache_dir("restart"));
  std::uint64_t cold_value = 0;
  {
    service::ServiceOptions opts;
    opts.workers = 1;
    opts.cache_dir = guard.dir;
    service::Service svc(opts);
    const auto r = svc.query(bw(service::Family::kButterfly, 4));
    ASSERT_EQ(r.status, service::Status::kOk) << r.detail;
    EXPECT_TRUE(r.exact);
    cold_value = r.value;
  }
  {
    service::ServiceOptions opts;
    opts.workers = 1;
    opts.cache_dir = guard.dir;
    service::Service svc(opts);
    const auto stats0 = svc.stats();
    EXPECT_GE(stats0.recovered_entries, 1u);
    EXPECT_EQ(stats0.quarantined, 0u);
    // Recovery preloaded the LRU: the restarted daemon answers from
    // memory without recomputing.
    const auto r = svc.query(bw(service::Family::kButterfly, 4));
    ASSERT_EQ(r.status, service::Status::kOk) << r.detail;
    EXPECT_EQ(r.value, cold_value);
    EXPECT_TRUE(r.exact);
    EXPECT_EQ(r.source, service::Source::kMemory);
    EXPECT_EQ(svc.stats().computed, 0u);
  }
}

// ---------------------------------------------------------------------------
// Fault injection through the service
// ---------------------------------------------------------------------------

TEST(ServiceFaults, EnqueueFaultShedsInsteadOfCrashing) {
  if (!fault::compiled_in()) {
    GTEST_SKIP() << "BFLY_FAULT_INJECTION is off in this build";
  }
  service::ServiceOptions opts;
  opts.workers = 1;
  service::Service svc(opts);
  fault::ScopedFaultPlan plan(
      fault::FaultPlan{}.set(fault::Site::kEnqueue, /*fire_at_hit=*/1));
  const auto r = svc.query(bw(service::Family::kButterfly, 8));
  EXPECT_EQ(r.status, service::Status::kShed);
  EXPECT_NE(r.detail.find("fault"), std::string::npos);
  EXPECT_EQ(svc.stats().shed, 1u);
}

TEST(ServiceFaults, DispatchFaultFailsHonestlyAndServiceSurvives) {
  if (!fault::compiled_in()) {
    GTEST_SKIP() << "BFLY_FAULT_INJECTION is off in this build";
  }
  service::ServiceOptions opts;
  opts.workers = 1;
  opts.autostart = false;
  service::Service svc(opts);
  Collector col;
  svc.query_async(bw(service::Family::kButterfly, 4), col.sink());
  fault::ScopedFaultPlan plan(
      fault::FaultPlan{}.set(fault::Site::kDispatch, /*fire_at_hit=*/1));
  svc.start();
  const auto responses = col.wait_for(1);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status, service::Status::kFailed);

  // The worker survived the injected fault: once the plan stops firing
  // the same instance computes fine.
  const auto ok = svc.query(bw(service::Family::kButterfly, 4));
  EXPECT_EQ(ok.status, service::Status::kOk) << ok.detail;
}

TEST(ServiceFaults, CacheWriteFaultLosesPersistenceNotTheAnswer) {
  if (!fault::compiled_in()) {
    GTEST_SKIP() << "BFLY_FAULT_INJECTION is off in this build";
  }
  const DirGuard guard(temp_cache_dir("cachewrite"));
  service::ServiceOptions opts;
  opts.workers = 1;
  opts.cache_dir = guard.dir;
  service::Service svc(opts);
  const auto reference = cut::min_bisection_branch_bound(
      service::build_graph(service::Family::kButterfly, 4));
  fault::ScopedFaultPlan plan(fault::FaultPlan{}.set(
      fault::Site::kCacheWrite, /*fire_at_hit=*/1, /*fire_count=*/1u << 20));
  const auto r = svc.query(bw(service::Family::kButterfly, 4));
  ASSERT_EQ(r.status, service::Status::kOk) << r.detail;
  EXPECT_EQ(r.value, reference.capacity);
  EXPECT_GE(svc.stats().persist_failures, 1u);
  // Nothing half-written reached the persistent tier.
  std::size_t bfc_files = 0;
  for (const auto& de : fs::directory_iterator(guard.dir)) {
    if (de.path().extension() == ".bfc") ++bfc_files;
  }
  EXPECT_EQ(bfc_files, 0u);
}

// ---------------------------------------------------------------------------
// Daemon line protocol
// ---------------------------------------------------------------------------

TEST(Daemon, LineSessionEndToEnd) {
  std::istringstream in(
      "BW b 4 id=q1\n"
      "BW b 4 id=q2\n"
      "BOUNDARY b 4 0f id=q3\n"
      "BW b 3 id=q4\n"
      "this is not a protocol line\n"
      "STATS\n"
      "QUIT\n");
  std::ostringstream out;
  service::DaemonOptions opts;
  opts.service.workers = 1;
  const int rc = service::run_daemon(in, out, opts);
  EXPECT_EQ(rc, 0);

  const std::string text = out.str();
  EXPECT_EQ(text.find("READY"), 0u) << text;
  EXPECT_NE(text.find("OK id=q1"), std::string::npos) << text;
  EXPECT_NE(text.find("OK id=q2"), std::string::npos) << text;
  EXPECT_NE(text.find("OK id=q3"), std::string::npos) << text;
  EXPECT_NE(text.find("ERR id=q4 status=bad-request"), std::string::npos)
      << text;
  EXPECT_NE(text.find("ERR id=- status=bad-request"), std::string::npos)
      << text;
  EXPECT_NE(text.find("STATS"), std::string::npos) << text;

  // The four protocol lines were admitted (the garbage line never
  // reached the service); q1 and q2 are the same instance, so the pair
  // is one computation plus one coalesce or hit.
  EXPECT_NE(text.find("received=4"), std::string::npos) << text;
  EXPECT_EQ(text.find("computed=2"), std::string::npos) << text;
}

}  // namespace
