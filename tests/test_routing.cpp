// Routing substrate: the packet simulator, oblivious butterfly routes,
// and Waksman's looping algorithm (Beneš rearrangeability, the
// constructive fact behind Lemma 2.5).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>
#include <set>

#include "core/rng.hpp"
#include "embed/factory.hpp"
#include "routing/benes_route.hpp"
#include "routing/butterfly_routing.hpp"
#include "routing/experiments.hpp"
#include "routing/packet_sim.hpp"
#include "routing/rearrange_certificate.hpp"
#include "topology/benes.hpp"
#include "topology/butterfly.hpp"
#include "topology/wrapped_butterfly.hpp"

namespace bfly::routing {
namespace {

Graph path_graph(NodeId n) {
  GraphBuilder gb(n);
  for (NodeId v = 0; v + 1 < n; ++v) gb.add_edge(v, v + 1);
  return std::move(gb).build();
}

TEST(PacketSim, SinglePacketTakesPathLengthSteps) {
  const Graph g = path_graph(5);
  const auto res = simulate_store_and_forward(g, {{0, 1, 2, 3, 4}});
  EXPECT_EQ(res.makespan, 4u);
  EXPECT_EQ(res.delivered, 1u);
}

TEST(PacketSim, ContentionSerializesOnSharedLink) {
  // Two packets over the same directed edge: second waits one step.
  const Graph g = path_graph(3);
  const auto res =
      simulate_store_and_forward(g, {{0, 1, 2}, {0, 1, 2}});
  EXPECT_EQ(res.delivered, 2u);
  EXPECT_EQ(res.makespan, 3u);  // 2 steps + 1 stall
  EXPECT_EQ(res.max_link_load, 2u);
}

TEST(PacketSim, OppositeDirectionsDoNotContend) {
  const Graph g = path_graph(3);
  const auto res =
      simulate_store_and_forward(g, {{0, 1, 2}, {2, 1, 0}});
  EXPECT_EQ(res.makespan, 2u);
}

TEST(PacketSim, ZeroLengthPathsDeliverImmediately) {
  const Graph g = path_graph(2);
  const auto res = simulate_store_and_forward(g, {{0}, {1}});
  EXPECT_EQ(res.delivered, 2u);
  EXPECT_EQ(res.makespan, 0u);
}

TEST(PacketSim, RejectsInvalidPaths) {
  const Graph g = path_graph(3);
  EXPECT_THROW(static_cast<void>(simulate_store_and_forward(g, {{0, 2}})),
               PreconditionError);
}

TEST(ButterflyRouting, AllPairsValidOnB8) {
  const topo::Butterfly bf(8);
  for (NodeId s = 0; s < bf.num_nodes(); ++s) {
    for (NodeId t = 0; t < bf.num_nodes(); ++t) {
      const auto p = route_bn(bf, s, t);
      ASSERT_FALSE(p.empty());
      EXPECT_EQ(p.front(), s);
      EXPECT_EQ(p.back(), t);
      for (std::size_t i = 0; i + 1 < p.size(); ++i) {
        EXPECT_TRUE(bf.graph().has_edge(p[i], p[i + 1]));
      }
      EXPECT_LE(p.size() - 1, 3u * bf.dims());
    }
  }
}

TEST(ButterflyRouting, AllPairsValidOnW8) {
  const topo::WrappedButterfly wb(8);
  for (NodeId s = 0; s < wb.num_nodes(); ++s) {
    for (NodeId t = 0; t < wb.num_nodes(); ++t) {
      const auto p = route_wn(wb, s, t);
      ASSERT_FALSE(p.empty());
      EXPECT_EQ(p.front(), s);
      EXPECT_EQ(p.back(), t);
      for (std::size_t i = 0; i + 1 < p.size(); ++i) {
        EXPECT_TRUE(wb.graph().has_edge(p[i], p[i + 1]))
            << "s=" << s << " t=" << t << " i=" << i;
      }
    }
  }
}

void expect_valid_benes_routing(const topo::Benes& benes,
                                std::span<const std::uint32_t> perm) {
  const auto routing = route_permutation(benes, perm);
  ASSERT_EQ(routing.paths.size(), benes.n());
  // Endpoints, edge validity, one node per level, level-wise disjoint.
  for (std::uint32_t l = 0; l <= 2 * benes.dims(); ++l) {
    std::set<NodeId> seen;
    for (std::uint32_t s = 0; s < benes.n(); ++s) {
      const auto& p = routing.paths[s];
      ASSERT_EQ(p.size(), 2u * benes.dims() + 1);
      EXPECT_EQ(benes.level(p[l]), l);
      EXPECT_TRUE(seen.insert(p[l]).second)
          << "level " << l << " collision";
    }
  }
  for (std::uint32_t s = 0; s < benes.n(); ++s) {
    const auto& p = routing.paths[s];
    EXPECT_EQ(p.front(), benes.input(s));
    EXPECT_EQ(p.back(), benes.output(perm[s]));
    for (std::size_t i = 0; i + 1 < p.size(); ++i) {
      EXPECT_TRUE(benes.graph().has_edge(p[i], p[i + 1]));
    }
  }
}

TEST(BenesRouting, AllPermutationsOfFourColumns) {
  const topo::Benes benes(4);
  std::vector<std::uint32_t> perm = {0, 1, 2, 3};
  do {
    expect_valid_benes_routing(benes, perm);
  } while (std::next_permutation(perm.begin(), perm.end()));
}

TEST(BenesRouting, RandomPermutationsLarger) {
  Rng rng(77);
  for (const std::uint32_t n : {8u, 16u, 32u, 64u}) {
    const topo::Benes benes(n);
    std::vector<std::uint32_t> perm(n);
    std::iota(perm.begin(), perm.end(), 0);
    for (int trial = 0; trial < 5; ++trial) {
      shuffle(perm, rng);
      expect_valid_benes_routing(benes, perm);
    }
  }
}

TEST(BenesRouting, RejectsNonPermutations) {
  const topo::Benes benes(4);
  const std::vector<std::uint32_t> bad = {0, 0, 2, 3};
  EXPECT_THROW(route_permutation(benes, bad), PreconditionError);
}

TEST(Lemma25, BenesRoutesMapToEdgeDisjointButterflyPaths) {
  // Route a permutation through Benes_{d-1}, then push the node-disjoint
  // paths through the congestion-1 folded embedding into Bn: the images
  // must be pairwise edge-disjoint paths between even-column (I) and
  // odd-column (O) level-0 nodes — the machinery behind Lemmas 2.5/2.8.
  const topo::Butterfly bf(16);
  const topo::Benes benes(8);
  const auto fold = embed::benes_into_bn(bf);

  Rng rng(5);
  std::vector<std::uint32_t> perm(8);
  std::iota(perm.begin(), perm.end(), 0);
  shuffle(perm, rng);
  const auto routing = route_permutation(benes, perm);

  std::set<std::pair<NodeId, NodeId>> used;
  for (const auto& gpath : routing.paths) {
    // Map each guest step through the embedding's edge paths.
    std::vector<NodeId> hpath;
    hpath.push_back(fold.emb.node_map[gpath.front()]);
    for (std::size_t i = 0; i + 1 < gpath.size(); ++i) {
      // Find the guest edge id between consecutive path nodes.
      const NodeId a = gpath[i], b = gpath[i + 1];
      EdgeId guest_edge = kInvalidEdge;
      const auto nbrs = fold.guest.neighbors(a);
      const auto eids = fold.guest.incident_edges(a);
      for (std::size_t x = 0; x < nbrs.size(); ++x) {
        if (nbrs[x] == b) {
          guest_edge = eids[x];
          break;
        }
      }
      ASSERT_NE(guest_edge, kInvalidEdge);
      auto seg = fold.emb.paths[guest_edge];
      if (seg.front() != hpath.back()) {
        std::reverse(seg.begin(), seg.end());
      }
      ASSERT_EQ(seg.front(), hpath.back());
      hpath.insert(hpath.end(), seg.begin() + 1, seg.end());
    }
    // Record edges; each may be used at most once across all paths.
    for (std::size_t i = 0; i + 1 < hpath.size(); ++i) {
      auto key = std::minmax(hpath[i], hpath[i + 1]);
      EXPECT_TRUE(used.insert({key.first, key.second}).second)
          << "edge reused";
    }
    // Endpoints: I = even columns, O = odd columns, both on level 0.
    EXPECT_EQ(bf.level(hpath.front()), 0u);
    EXPECT_EQ(bf.level(hpath.back()), 0u);
    EXPECT_EQ(bf.column(hpath.front()) % 2, 0u);
    EXPECT_EQ(bf.column(hpath.back()) % 2, 1u);
  }
}

void expect_valid_two_port_routing(const topo::Benes& benes,
                                   std::span<const std::uint32_t> perm) {
  const auto routing = route_two_port_permutation(benes, perm);
  const std::uint32_t ports = 2 * benes.n();
  ASSERT_EQ(routing.paths.size(), ports);
  // Endpoints and edge validity.
  for (std::uint32_t s = 0; s < ports; ++s) {
    const auto& p = routing.paths[s];
    ASSERT_EQ(p.size(), 2u * benes.dims() + 1);
    EXPECT_EQ(p.front(), benes.input(s / 2));
    EXPECT_EQ(p.back(), benes.output(perm[s] / 2));
    for (std::size_t i = 0; i + 1 < p.size(); ++i) {
      ASSERT_TRUE(benes.graph().has_edge(p[i], p[i + 1]));
    }
  }
  // Every node hosts at most 2 paths per level; edges pairwise disjoint.
  for (std::uint32_t l = 0; l <= 2 * benes.dims(); ++l) {
    std::map<NodeId, int> host;
    for (const auto& p : routing.paths) ++host[p[l]];
    for (const auto& [node, cnt] : host) {
      EXPECT_LE(cnt, 2) << "level " << l;
    }
  }
  std::set<std::pair<NodeId, NodeId>> used;
  for (const auto& p : routing.paths) {
    for (std::size_t i = 0; i + 1 < p.size(); ++i) {
      // Directed-by-level step; undirected key suffices since paths are
      // monotone in level.
      EXPECT_TRUE(used.insert({p[i], p[i + 1]}).second)
          << "edge reused between levels " << i << " and " << i + 1;
    }
  }
}

TEST(BenesTwoPort, AllPermutationsOfFourPorts) {
  // Benes with n = 2 columns has 4 ports; all 24 bijections.
  const topo::Benes benes(2);
  std::vector<std::uint32_t> perm = {0, 1, 2, 3};
  do {
    expect_valid_two_port_routing(benes, perm);
  } while (std::next_permutation(perm.begin(), perm.end()));
}

TEST(BenesTwoPort, RandomPermutationsLarger) {
  Rng rng(123);
  for (const std::uint32_t n : {4u, 8u, 16u, 32u}) {
    const topo::Benes benes(n);
    std::vector<std::uint32_t> perm(2 * n);
    std::iota(perm.begin(), perm.end(), 0);
    for (int trial = 0; trial < 5; ++trial) {
      shuffle(perm, rng);
      expect_valid_two_port_routing(benes, perm);
    }
  }
}

TEST(Lemma25, PortPathsEdgeDisjointInButterfly) {
  const topo::Butterfly bf(16);
  Rng rng(31);
  std::vector<std::uint32_t> perm(16);
  std::iota(perm.begin(), perm.end(), 0);
  for (int trial = 0; trial < 5; ++trial) {
    shuffle(perm, rng);
    const auto paths = lemma25_paths(bf, perm);
    ASSERT_EQ(paths.size(), 16u);
    std::set<std::pair<NodeId, NodeId>> used;
    for (std::uint32_t p = 0; p < paths.size(); ++p) {
      const auto& path = paths[p];
      // Endpoints: I node (even column) to the O node of the image port.
      EXPECT_EQ(path.front(), bf.node(2 * (p / 2), 0));
      EXPECT_EQ(path.back(), bf.node(2 * (perm[p] / 2) + 1, 0));
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        ASSERT_TRUE(bf.graph().has_edge(path[i], path[i + 1]));
        const auto key = std::minmax(path[i], path[i + 1]);
        EXPECT_TRUE(used.insert({key.first, key.second}).second);
      }
    }
  }
}

TEST(Lemma28, CertificateBoundsRandomCuts) {
  // For random cuts of B8 and B16: the certificate produces exactly
  // 2|Ā∩L0| edge-disjoint straddling paths, certifying
  // C(A,Ā) >= 2|Ā∩L0| — the inequality at the heart of Lemma 2.8.
  Rng rng(99);
  for (const std::uint32_t n : {8u, 16u}) {
    const topo::Butterfly bf(n);
    for (int trial = 0; trial < 30; ++trial) {
      std::vector<std::uint8_t> sides(bf.num_nodes());
      for (auto& s : sides) s = static_cast<std::uint8_t>(rng.below(2));
      const auto cert = lemma28_certificate(bf, sides);
      EXPECT_TRUE(cert.edge_disjoint);
      EXPECT_EQ(cert.crossing_paths, 2 * cert.minority_level0);
      EXPECT_GE(cert.cut_capacity, cert.crossing_paths);
      for (const auto& p : cert.paths) {
        bool crosses = false;
        for (std::size_t i = 0; i + 1 < p.size(); ++i) {
          if (sides[p[i]] != sides[p[i + 1]]) crosses = true;
        }
        EXPECT_TRUE(crosses);
      }
    }
  }
}

TEST(Lemma28, CertificateTightOnLevelZeroBisectingCuts) {
  // A cut that bisects L0 yields 2 * (n/2) = n straddling paths,
  // certifying the full Lemma 3.1 bound C >= n.
  const topo::Butterfly bf(8);
  std::vector<std::uint8_t> sides(bf.num_nodes(), 0);
  for (std::uint32_t w = 0; w < 8; ++w) {
    for (std::uint32_t lvl = 0; lvl <= bf.dims(); ++lvl) {
      sides[bf.node(w, lvl)] = (w & 4u) ? 1 : 0;  // MSB column split
    }
  }
  const auto cert = lemma28_certificate(bf, sides);
  EXPECT_EQ(cert.minority_level0, 4u);
  EXPECT_EQ(cert.crossing_paths, 8u);
  EXPECT_TRUE(cert.edge_disjoint);
  EXPECT_EQ(cert.cut_capacity, 8u);  // the folklore cut: exactly n
}

TEST(Experiments, RandomDestinationRespectsBisectionBound) {
  const topo::Butterfly bf(16);
  const auto route = [&](NodeId s, NodeId t) { return route_bn(bf, s, t); };
  std::vector<std::uint8_t> sides(bf.num_nodes());
  for (NodeId v = 0; v < bf.num_nodes(); ++v) {
    sides[v] = (bf.column(v) & 8u) ? 1 : 0;
  }
  const auto rep = random_destination_experiment(bf.graph(), route, sides,
                                                 16, 99);
  EXPECT_EQ(rep.sim.delivered, rep.num_packets);
  EXPECT_GT(rep.sim.makespan, 0u);
  EXPECT_DOUBLE_EQ(rep.bisection_time_bound,
                   static_cast<double>(bf.num_nodes()) / 64.0);
}

}  // namespace
}  // namespace bfly::routing
