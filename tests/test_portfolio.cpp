// The parallel portfolio solver: validity, dominance over its individual
// solvers on the same seeds, the exactness tag, and the determinism
// contract (same master seed + thread count => same winning capacity; in
// fact capacity is reproducible across thread counts too).
#include <gtest/gtest.h>

#include "core/partition.hpp"
#include "core/rng.hpp"
#include "cut/brute_force.hpp"
#include "cut/fiduccia_mattheyses.hpp"
#include "cut/kernighan_lin.hpp"
#include "cut/multilevel.hpp"
#include "cut/portfolio.hpp"
#include "cut/simulated_annealing.hpp"
#include "cut/spectral_bisection.hpp"
#include "topology/butterfly.hpp"
#include "topology/ccc.hpp"

namespace bfly {
namespace {

Graph random_graph(NodeId n, double p, std::uint64_t seed) {
  Rng rng(seed);
  GraphBuilder gb(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (rng.bernoulli(p)) gb.add_edge(u, v);
    }
  }
  for (NodeId v = 0; v + 1 < n; ++v) {
    if (gb.num_edges() == 0) gb.add_edge(v, v + 1);
  }
  return std::move(gb).build();
}

TEST(Portfolio, ResultIsValidBisection) {
  const topo::Butterfly bf(8);
  for (const unsigned threads : {1u, 4u}) {
    cut::PortfolioOptions opts;
    opts.num_threads = threads;
    const auto res = cut::min_bisection_portfolio(bf.graph(), opts);
    EXPECT_TRUE(cut::is_bisection(res.best.sides)) << threads;
    EXPECT_EQ(cut_capacity(bf.graph(), res.best.sides), res.best.capacity)
        << threads;
    EXPECT_NO_THROW(cut::validate_cut(bf.graph(), res.best));
  }
}

TEST(Portfolio, CapacityNotWorseThanAnyIndividualSolverOnSameSeeds) {
  const std::uint64_t master = 0xfeedu;
  const auto seeds = cut::derive_portfolio_seeds(master);
  for (const Graph& g :
       {topo::Butterfly(8).graph(), random_graph(14, 0.4, 7)}) {
    cut::PortfolioOptions opts;
    opts.master_seed = master;
    opts.num_threads = 4;
    const auto res = cut::min_bisection_portfolio(g, opts);

    // Replay each heuristic standalone with exactly the portfolio's
    // derived seed and default tuning.
    cut::SpectralBisectionOptions sp;
    sp.seed = seeds.spectral;
    EXPECT_LE(res.best.capacity, cut::min_bisection_spectral(g, sp).capacity);
    cut::MultilevelOptions ml;
    ml.seed = seeds.multilevel;
    EXPECT_LE(res.best.capacity,
              cut::min_bisection_multilevel(g, ml).capacity);
    cut::FiducciaMattheysesOptions fm;
    fm.seed = seeds.fm;
    EXPECT_LE(res.best.capacity,
              cut::min_bisection_fiduccia_mattheyses(g, fm).capacity);
    cut::KernighanLinOptions kl;
    kl.seed = seeds.kl;
    EXPECT_LE(res.best.capacity,
              cut::min_bisection_kernighan_lin(g, kl).capacity);
    cut::SimulatedAnnealingOptions sa;
    sa.seed = seeds.sa;
    EXPECT_LE(res.best.capacity,
              cut::min_bisection_simulated_annealing(g, sa).capacity);
  }
}

TEST(Portfolio, ExactTagIffBranchBoundFinished) {
  const Graph g = random_graph(12, 0.35, 3);
  const auto exact = cut::min_bisection_exhaustive(g);

  cut::PortfolioOptions with_bb;
  with_bb.num_threads = 4;
  const auto res = cut::min_bisection_portfolio(g, with_bb);
  EXPECT_TRUE(res.proved_optimal);
  EXPECT_EQ(res.best.exactness, cut::Exactness::kExact);
  EXPECT_EQ(res.best.capacity, exact.capacity);

  cut::PortfolioOptions no_bb;
  no_bb.run_branch_bound = false;
  const auto heur = cut::min_bisection_portfolio(g, no_bb);
  EXPECT_FALSE(heur.proved_optimal);
  EXPECT_EQ(heur.best.exactness, cut::Exactness::kHeuristic);
  EXPECT_GE(heur.best.capacity, exact.capacity);

  cut::PortfolioOptions limited;
  limited.branch_bound_node_limit = 1;  // bb aborts immediately
  const auto lim = cut::min_bisection_portfolio(g, limited);
  EXPECT_FALSE(lim.proved_optimal);
  EXPECT_EQ(lim.best.exactness, cut::Exactness::kHeuristic);
}

TEST(Portfolio, WinningCapacityReproducibleSameSeedAndThreads) {
  const Graph g = random_graph(16, 0.35, 11);
  for (const unsigned threads : {1u, 4u}) {
    cut::PortfolioOptions opts;
    opts.master_seed = 0xabcdu;
    opts.num_threads = threads;
    opts.run_branch_bound = false;  // pure heuristic race, no node limit
    const auto a = cut::min_bisection_portfolio(g, opts);
    const auto b = cut::min_bisection_portfolio(g, opts);
    EXPECT_EQ(a.best.capacity, b.best.capacity) << "threads " << threads;
    EXPECT_EQ(a.winner, b.winner) << "threads " << threads;
  }
}

TEST(Portfolio, WinningCapacityIndependentOfThreadCount) {
  // The stronger documented contract: without a time budget the winning
  // capacity does not depend on the thread count at all.
  const topo::CubeConnectedCycles ccc(8);
  std::size_t cap1 = 0, cap4 = 0;
  for (const unsigned threads : {1u, 4u}) {
    cut::PortfolioOptions opts;
    opts.master_seed = 99;
    opts.num_threads = threads;
    const auto res = cut::min_bisection_portfolio(ccc.graph(), opts);
    (threads == 1 ? cap1 : cap4) = res.best.capacity;
  }
  EXPECT_EQ(cap1, cap4);
  EXPECT_EQ(cap1, 4u);  // BW(CCC8) = n/2 (Lemma 3.3)
}

TEST(Portfolio, TelemetryCoversEverySolver) {
  const topo::Butterfly bf(4);
  cut::PortfolioOptions opts;
  opts.num_threads = 2;
  const auto res = cut::min_bisection_portfolio(bf.graph(), opts);
  ASSERT_EQ(res.telemetry.size(), 6u);
  EXPECT_EQ(res.telemetry[0].solver, "spectral");
  EXPECT_EQ(res.telemetry[5].solver, "branch-bound");
  std::uint32_t published = 0;
  for (const auto& t : res.telemetry) {
    EXPECT_GE(t.wall_seconds, 0.0) << t.solver;
    published += t.improvements_published;
  }
  EXPECT_GE(published, 1u);  // someone must have set the incumbent
  EXPECT_FALSE(res.winner.empty());
  EXPECT_EQ(res.best.method, "portfolio/" + res.winner);
}

TEST(Portfolio, TinyTimeBudgetStillReturnsValidBisection) {
  const topo::Butterfly bf(16);
  cut::PortfolioOptions opts;
  opts.time_budget_seconds = 1e-9;  // everything cancels instantly
  opts.num_threads = 2;
  const auto res = cut::min_bisection_portfolio(bf.graph(), opts);
  EXPECT_TRUE(cut::is_bisection(res.best.sides));
  EXPECT_EQ(cut_capacity(bf.graph(), res.best.sides), res.best.capacity);
}

}  // namespace
}  // namespace bfly
