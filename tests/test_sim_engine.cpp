// The phase-driven SoA simulation engine (DESIGN.md §15): differential
// equivalence against the reference store-and-forward model, packet
// conservation, bound domination (C14 and the per-instance cut bound),
// virtual-channel capacity and deadlock behavior, and thread-count
// determinism (the tsan stress for the parallel stepper).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/error.hpp"
#include "cut/constructive.hpp"
#include "routing/butterfly_routing.hpp"
#include "routing/packet_sim.hpp"
#include "routing/sim_engine.hpp"
#include "routing/traffic.hpp"
#include "topology/butterfly.hpp"
#include "topology/wrapped_butterfly.hpp"

namespace bfly::routing {
namespace {

Graph path_graph(NodeId n) {
  GraphBuilder gb(n);
  for (NodeId v = 0; v + 1 < n; ++v) gb.add_edge(v, v + 1);
  return std::move(gb).build();
}

Graph triangle_graph() {
  GraphBuilder gb(3);
  gb.add_edge(0, 1);
  gb.add_edge(1, 2);
  gb.add_edge(0, 2);
  return std::move(gb).build();
}

EngineStats run_engine(const Graph& g,
                       const std::vector<std::vector<NodeId>>& paths,
                       SimOptions opts = {}) {
  SimEngine eng(g, opts);
  eng.load(paths);
  return eng.run();
}

// ---- differential equivalence with the reference model --------------

void expect_matches_reference(const Graph& g,
                              const std::vector<std::vector<NodeId>>& paths,
                              unsigned threads) {
  const SimResult ref = simulate_store_and_forward(g, paths);
  SimOptions opts;
  opts.num_threads = threads;
  const EngineStats st = run_engine(g, paths, opts);
  EXPECT_EQ(st.makespan, ref.makespan);
  EXPECT_EQ(st.max_queue, ref.max_queue);
  EXPECT_EQ(st.delivered, ref.delivered);
  EXPECT_EQ(st.max_link_load, ref.max_link_load);
  EXPECT_EQ(st.num_packets, paths.size());
}

TEST(SimEngineDifferential, MatchesReferenceOnSmallButterflies) {
  for (const std::uint32_t n : {4u, 8u}) {
    const topo::Butterfly bf(n);
    for (const char* pat : {"uniform:ppn=3:seed=11", "bitrev:ppn=2",
                            "hotspot:ppn=2:seed=5:hot=70"}) {
      const auto traffic = make_traffic(bf, parse_traffic_spec(pat));
      for (const unsigned threads : {1u, 3u}) {
        SCOPED_TRACE(std::string("B") + std::to_string(n) + " " + pat +
                     " t=" + std::to_string(threads));
        expect_matches_reference(bf.graph(), traffic.paths, threads);
      }
    }
  }
}

TEST(SimEngineDifferential, MatchesReferenceOnW8) {
  const topo::WrappedButterfly wb(8);
  for (const char* pat :
       {"uniform:ppn=4:seed=3", "transpose:ppn=3", "uniform:ppn=1:seed=9"}) {
    const auto traffic = make_traffic(wb, parse_traffic_spec(pat));
    for (const unsigned threads : {1u, 2u}) {
      SCOPED_TRACE(std::string("W8 ") + pat + " t=" +
                   std::to_string(threads));
      expect_matches_reference(wb.graph(), traffic.paths, threads);
    }
  }
}

TEST(SimEngineDifferential, MatchesReferenceOnHandScenarios) {
  const Graph g = path_graph(5);
  expect_matches_reference(g, {{0, 1, 2, 3, 4}}, 1);
  expect_matches_reference(g, {{0, 1, 2}, {0, 1, 2}}, 1);
  expect_matches_reference(g, {{0, 1, 2}, {2, 1, 0}}, 2);
  expect_matches_reference(g, {{0}, {1}}, 1);
  expect_matches_reference(g, {}, 1);
}

// ---- conservation and bound domination ------------------------------

TEST(SimEngine, ConservationAndBoundsOnEverySeededConfig) {
  const topo::Butterfly bf(16);
  const auto cutres = cut::column_split_bisection(bf);
  for (const char* pat :
       {"uniform:ppn=2:seed=1", "uniform:ppn=2:seed=2", "bitrev:ppn=2",
        "transpose:ppn=2", "hotspot:ppn=2:seed=4:hot=30",
        "cutsat:ppn=2:seed=7"}) {
    const auto traffic =
        make_traffic(bf, parse_traffic_spec(pat), &cutres.sides);
    for (const unsigned threads : {1u, 4u}) {
      SCOPED_TRACE(std::string(pat) + " t=" + std::to_string(threads));
      SimOptions opts;
      opts.num_threads = threads;
      const EngineStats st = run_engine(bf.graph(), traffic.paths, opts);
      // Conservation: every injected packet is delivered, every compiled
      // hop is traversed.
      EXPECT_EQ(st.delivered, traffic.paths.size());
      EXPECT_EQ(st.num_packets, traffic.paths.size());
      // Makespan dominates the longest route, the directional cut bound,
      // and the static congestion bound; a violation would be a
      // simulator bug, not bad luck.
      const auto bound =
          traffic_bound(traffic, cutres.capacity, st.max_link_load);
      EXPECT_GE(st.makespan, traffic.max_hops);
      EXPECT_GE(static_cast<double>(st.makespan), bound.lower_bound);
      EXPECT_GE(bound.lower_bound, bound.cut_bound);
      EXPECT_GE(bound.lower_bound,
                static_cast<double>(bound.congestion_bound));
    }
  }
}

TEST(SimEngine, C14InequalityHoldsOnUniformTraffic) {
  // The paper's C14: makespan >= num_packets / (4 BW). With packets-per-
  // node >= 4 the measured congestion comfortably dominates it on every
  // seed (deterministic Rng, so this is a fixed regression point).
  for (const std::uint32_t n : {8u, 16u}) {
    const topo::Butterfly bf(n);
    const auto cutres = cut::column_split_bisection(bf);
    for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
      TrafficSpec spec;
      spec.pattern = TrafficPattern::kUniform;
      spec.packets_per_node = 4;
      spec.seed = seed;
      const auto traffic = make_traffic(bf, spec, &cutres.sides);
      const auto bound = traffic_bound(traffic, cutres.capacity);
      const EngineStats st = run_engine(bf.graph(), traffic.paths);
      SCOPED_TRACE("B" + std::to_string(n) + " seed " +
                   std::to_string(seed));
      EXPECT_GE(static_cast<double>(st.makespan), bound.c14_bound);
    }
  }
}

TEST(SimEngine, CutSaturatingTrafficCrossesEveryPacket) {
  const topo::Butterfly bf(8);
  const auto cutres = cut::column_split_bisection(bf);
  const auto traffic = make_traffic(
      bf, parse_traffic_spec("cutsat:ppn=2:seed=1"), &cutres.sides);
  EXPECT_EQ(traffic.cross_ab + traffic.cross_ba, traffic.paths.size());
  const auto bound = traffic_bound(traffic, cutres.capacity);
  // Pinning sources/destinations on opposite sides tightens the bound to
  // roughly 2x the C14 figure (all packets cross, split two ways).
  EXPECT_GE(bound.cut_bound, 1.5 * bound.c14_bound);
}

// ---- virtual channels, capacity, deadlock ---------------------------

TEST(SimEngine, CapacityThrottlesThePipeline) {
  const Graph g = path_graph(5);
  const std::vector<std::vector<NodeId>> paths = {
      {0, 1, 2, 3, 4}, {0, 1, 2, 3, 4}, {0, 1, 2, 3, 4}};
  // Unbounded: a clean pipeline, one packet behind the other.
  EXPECT_EQ(run_engine(g, paths).makespan, 6u);
  // Capacity 1 with the one-step slot release: each packet must wait for
  // the next queue to drain fully, opening one bubble per stage.
  SimOptions opts;
  opts.vc_capacity = 1;
  const EngineStats st = run_engine(g, paths, opts);
  EXPECT_EQ(st.makespan, 8u);
  EXPECT_EQ(st.delivered, 3u);
  // A capacity at least the static load behaves exactly like unbounded.
  opts.vc_capacity = 3;
  EXPECT_EQ(run_engine(g, paths, opts).makespan, 6u);
}

TEST(SimEngine, DetectsCyclicCapacityDeadlock) {
  // Three packets chasing each other around a triangle with capacity 1:
  // no head can ever advance. The engine must detect the stall and
  // throw instead of spinning.
  const Graph g = triangle_graph();
  const std::vector<std::vector<NodeId>> paths = {
      {0, 1, 2}, {1, 2, 0}, {2, 0, 1}};
  SimOptions opts;
  opts.vc_capacity = 1;
  EXPECT_THROW(static_cast<void>(run_engine(g, paths, opts)),
               PreconditionError);
}

TEST(SimEngine, StageWeightedVcsBreakTheDeadlock) {
  // Saturating traffic on B8 under capacity 1: with a single virtual
  // channel the engine may or may not stall depending on the seed, but
  // with stage-weighted channels (one per monotone level segment of
  // route_bn) the queue dependency graph is acyclic and every
  // configuration drains.
  const topo::Butterfly bf(8);
  const auto cutres = cut::column_split_bisection(bf);
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    TrafficSpec spec;
    spec.pattern = TrafficPattern::kCutSaturating;
    spec.packets_per_node = 4;
    spec.seed = seed;
    const auto traffic = make_traffic(bf, spec, &cutres.sides);
    SimOptions opts;
    opts.vcs_per_link = 3;
    opts.vc_capacity = 1;
    opts.max_steps = 1u << 20;
    SimEngine eng(bf.graph(), opts);
    eng.load(traffic.paths, stage_weighted_vcs(bf, traffic.paths, 3));
    const EngineStats st = eng.run();
    EXPECT_EQ(st.delivered, traffic.paths.size());
    EXPECT_GE(st.makespan, traffic.max_hops);
  }
}

TEST(SimEngine, StageWeightedVcsAreMonotoneAndInRange) {
  const topo::Butterfly bf(16);
  const auto traffic = make_traffic(bf, parse_traffic_spec("uniform:ppn=2"));
  for (const std::uint32_t vcs : {1u, 2u, 3u}) {
    const auto hop_vcs = stage_weighted_vcs(bf, traffic.paths, vcs);
    ASSERT_EQ(hop_vcs.size(), traffic.paths.size());
    for (std::size_t p = 0; p < hop_vcs.size(); ++p) {
      ASSERT_EQ(hop_vcs[p].size(), traffic.paths[p].size() - 1);
      std::uint32_t prev = 0;
      for (const std::uint32_t vc : hop_vcs[p]) {
        EXPECT_LT(vc, vcs);
        EXPECT_GE(vc, prev);  // packets only ever move up in class
        prev = vc;
      }
      // route_bn has at most three monotone segments.
      if (!hop_vcs[p].empty()) {
        EXPECT_LE(hop_vcs[p].back(), 2u);
      }
    }
  }
}

// ---- determinism across thread counts (tsan stress) -----------------

TEST(SimEngineStress, ParallelStepperMatchesSerialOnB64) {
  // The two-phase stepper writes disjoint state per queue/node between
  // barriers, so any thread count must produce identical stats. Under
  // tsan this is also the data-race check for the barrier protocol.
  const topo::Butterfly bf(64);
  const auto traffic = make_traffic(
      bf, parse_traffic_spec(sanitized_build() ? "uniform:ppn=1:seed=42"
                                               : "uniform:ppn=4:seed=42"));
  const EngineStats serial = run_engine(bf.graph(), traffic.paths);
  for (const unsigned threads : {2u, 4u, 8u}) {
    SimOptions opts;
    opts.num_threads = threads;
    const EngineStats par = run_engine(bf.graph(), traffic.paths, opts);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    EXPECT_EQ(par.makespan, serial.makespan);
    EXPECT_EQ(par.max_queue, serial.max_queue);
    EXPECT_EQ(par.delivered, serial.delivered);
    EXPECT_EQ(par.total_hops, serial.total_hops);
  }
}

TEST(SimEngineStress, ParallelWithCapacityAndVcsMatchesSerial) {
  const topo::Butterfly bf(32);
  const auto cutres = cut::column_split_bisection(bf);
  const auto traffic = make_traffic(
      bf, parse_traffic_spec("cutsat:ppn=2:seed=8"), &cutres.sides);
  const auto hop_vcs = stage_weighted_vcs(bf, traffic.paths, 3);
  EngineStats serial;
  {
    SimOptions opts;
    opts.vcs_per_link = 3;
    opts.vc_capacity = 2;
    SimEngine eng(bf.graph(), opts);
    eng.load(traffic.paths, hop_vcs);
    serial = eng.run();
  }
  EXPECT_EQ(serial.delivered, traffic.paths.size());
  for (const unsigned threads : {2u, 4u}) {
    SimOptions opts;
    opts.num_threads = threads;
    opts.vcs_per_link = 3;
    opts.vc_capacity = 2;
    SimEngine eng(bf.graph(), opts);
    eng.load(traffic.paths, hop_vcs);
    const EngineStats par = eng.run();
    SCOPED_TRACE("threads=" + std::to_string(threads));
    EXPECT_EQ(par.makespan, serial.makespan);
    EXPECT_EQ(par.max_queue, serial.max_queue);
    EXPECT_EQ(par.delivered, serial.delivered);
  }
}

// ---- API contracts --------------------------------------------------

TEST(SimEngine, RejectsBadInput) {
  const Graph g = path_graph(3);
  SimEngine eng(g);
  EXPECT_THROW(eng.load({{0, 2}}), PreconditionError);   // not an edge
  EXPECT_THROW(eng.load({{}}), PreconditionError);       // empty path
  EXPECT_THROW(static_cast<void>(SimEngine(g).run()),    // no load
               PreconditionError);
  EXPECT_THROW(eng.load({{0, 1}}, {}), PreconditionError);  // vc shape
  EXPECT_THROW(eng.load({{0, 1}}, {{5}}), PreconditionError);  // vc range
  SimOptions opts;
  opts.vcs_per_link = 0;
  EXPECT_THROW(static_cast<void>(SimEngine(g, opts)), PreconditionError);
}

TEST(SimEngine, MaxStepsAborts) {
  const Graph g = path_graph(5);
  SimOptions opts;
  opts.max_steps = 2;
  EXPECT_THROW(static_cast<void>(run_engine(g, {{0, 1, 2, 3, 4}}, opts)),
               PreconditionError);
}

TEST(SimEngine, RunConsumesTheLoadAndEngineIsReusable) {
  const Graph g = path_graph(4);
  SimEngine eng(g);
  eng.load({{0, 1, 2, 3}});
  EXPECT_EQ(eng.run().makespan, 3u);
  EXPECT_THROW(static_cast<void>(eng.run()), PreconditionError);
  eng.load({{3, 2, 1, 0}, {0, 1}});
  const EngineStats st = eng.run();
  EXPECT_EQ(st.delivered, 2u);
  EXPECT_EQ(st.makespan, 3u);
}

TEST(SimEngine, ZeroHopPathsDeliverAtTimeZero) {
  const Graph g = path_graph(3);
  const EngineStats st = run_engine(g, {{0}, {2}});
  EXPECT_EQ(st.delivered, 2u);
  EXPECT_EQ(st.makespan, 0u);
  EXPECT_EQ(st.total_hops, 0u);
}

// ---- traffic spec parsing -------------------------------------------

TEST(TrafficSpec, RoundTripsThroughCanonicalText) {
  for (const char* text :
       {"uniform:ppn=16:seed=7", "bitrev:ppn=1:seed=1",
        "transpose:ppn=4:seed=2", "hotspot:ppn=2:seed=9:hot=25",
        "cutsat:ppn=32:seed=4"}) {
    const TrafficSpec spec = parse_traffic_spec(text);
    EXPECT_EQ(to_string(spec), text);
    const TrafficSpec again = parse_traffic_spec(to_string(spec));
    EXPECT_EQ(to_string(again), text);
  }
  // Defaults are filled in and canonicalized.
  EXPECT_EQ(to_string(parse_traffic_spec("uniform")), "uniform:ppn=1:seed=1");
}

TEST(TrafficSpec, RejectsMalformedText) {
  for (const char* text :
       {"", "warp", "uniform:", "uniform:ppn", "uniform:ppn=",
        "uniform:ppn=0", "uniform:ppn=4097", "uniform:ppn=1:ppn=2",
        "uniform:hot=3", "hotspot:hot=101", "uniform:ppn=1x",
        "uniform:zzz=1", "uniform:seed=abc"}) {
    SCOPED_TRACE(text);
    EXPECT_THROW(static_cast<void>(parse_traffic_spec(text)), TrafficError);
  }
}

TEST(Traffic, GeneratorsProduceValidRoutes) {
  const topo::Butterfly bf(8);
  const auto cutres = cut::column_split_bisection(bf);
  for (const char* pat : {"uniform:ppn=2:seed=6", "bitrev:ppn=2",
                          "transpose:ppn=2", "hotspot:ppn=2:seed=2",
                          "cutsat:ppn=2:seed=3"}) {
    const auto traffic =
        make_traffic(bf, parse_traffic_spec(pat), &cutres.sides);
    ASSERT_FALSE(traffic.paths.empty());
    std::size_t longest = 0;
    for (const auto& path : traffic.paths) {
      ASSERT_FALSE(path.empty());
      longest = std::max(longest, path.size() - 1);
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        ASSERT_TRUE(bf.graph().has_edge(path[i], path[i + 1]));
      }
    }
    EXPECT_EQ(traffic.max_hops, longest);
  }
  // cutsat without a witness is a contract violation, not data.
  EXPECT_THROW(
      static_cast<void>(make_traffic(bf, parse_traffic_spec("cutsat"))),
      PreconditionError);
}

}  // namespace
}  // namespace bfly::routing
