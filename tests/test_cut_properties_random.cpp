// Seeded property-based tests over random graphs and small butterflies:
// cross-solver invariants that every bisection engine must satisfy
// regardless of instance — reported capacities always match an
// independent recomputation, heuristics never beat the exact optimum,
// and one-sided kBound results sit on the correct side of it.
#include <gtest/gtest.h>

#include "core/partition.hpp"
#include "core/rng.hpp"
#include "cut/branch_bound.hpp"
#include "cut/brute_force.hpp"
#include "cut/constructive.hpp"
#include "cut/fiduccia_mattheyses.hpp"
#include "cut/kernighan_lin.hpp"
#include "cut/mos_theory.hpp"
#include "cut/multilevel.hpp"
#include "cut/simulated_annealing.hpp"
#include "cut/spectral_bisection.hpp"
#include "topology/butterfly.hpp"

namespace bfly {
namespace {

Graph gnp(NodeId n, double p, std::uint64_t seed) {
  Rng rng(seed);
  GraphBuilder gb(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (rng.bernoulli(p)) gb.add_edge(u, v);
    }
  }
  // Ensure at least one edge so every solver has work to do.
  if (gb.num_edges() == 0) gb.add_edge(0, 1);
  return std::move(gb).build();
}

// All heuristic solvers, seeded from one base so each param value
// explores a different trajectory.
std::vector<cut::CutResult> run_all_heuristics(const Graph& g,
                                               std::uint64_t seed) {
  SplitMix64 sm(seed);
  cut::KernighanLinOptions kl;
  kl.seed = sm.next();
  cut::FiducciaMattheysesOptions fm;
  fm.seed = sm.next();
  cut::SimulatedAnnealingOptions sa;
  sa.seed = sm.next();
  sa.restarts = 2;
  cut::MultilevelOptions ml;
  ml.seed = sm.next();
  cut::SpectralBisectionOptions sp;
  sp.seed = sm.next();
  return {cut::min_bisection_kernighan_lin(g, kl),
          cut::min_bisection_fiduccia_mattheyses(g, fm),
          cut::min_bisection_simulated_annealing(g, sa),
          cut::min_bisection_multilevel(g, ml),
          cut::min_bisection_spectral(g, sp)};
}

class CutProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CutProperties, GnpEverySolverCapacityMatchesRecompute) {
  const std::uint64_t seed = GetParam();
  const NodeId n = static_cast<NodeId>(8 + seed % 6);
  const double p = 0.25 + 0.05 * static_cast<double>(seed % 7);
  const Graph g = gnp(n, p, seed * 1009 + 1);
  for (const auto& r : run_all_heuristics(g, seed)) {
    EXPECT_TRUE(cut::is_bisection(r.sides)) << r.method;
    EXPECT_EQ(cut_capacity(g, r.sides), r.capacity) << r.method;
    EXPECT_EQ(r.exactness, cut::Exactness::kHeuristic) << r.method;
  }
}

TEST_P(CutProperties, GnpHeuristicsNeverBeatBruteForce) {
  const std::uint64_t seed = GetParam();
  const NodeId n = static_cast<NodeId>(8 + seed % 5);
  const Graph g = gnp(n, 0.4, seed * 733 + 5);
  const auto exact = cut::min_bisection_exhaustive(g);
  EXPECT_EQ(cut_capacity(g, exact.sides), exact.capacity);
  for (const auto& r : run_all_heuristics(g, seed * 3 + 1)) {
    EXPECT_GE(r.capacity, exact.capacity) << r.method;
  }
  // Branch-and-bound agrees with the Gray-code sweep.
  const auto bb = cut::min_bisection_branch_bound(g);
  EXPECT_EQ(bb.capacity, exact.capacity);
  EXPECT_EQ(bb.exactness, cut::Exactness::kExact);
}

TEST_P(CutProperties, ButterflyInvariantsAcrossSolvers) {
  const std::uint64_t seed = GetParam();
  for (const std::uint32_t n : {2u, 4u, 8u}) {
    const topo::Butterfly bf(n);
    const Graph& g = bf.graph();

    // Exact optimum: brute force where the state space allows, the
    // (independently validated) branch-and-bound for B8's 32 nodes.
    cut::CutResult exact;
    if (n < 8) {
      exact = cut::min_bisection_exhaustive(g);
    } else {
      cut::BranchBoundOptions opts;
      opts.initial_bound = cut::column_split_bisection(bf).capacity;
      exact = cut::min_bisection_branch_bound(g, opts);
      ASSERT_EQ(exact.exactness, cut::Exactness::kExact);
    }

    for (const auto& r : run_all_heuristics(g, seed * 17 + n)) {
      EXPECT_TRUE(cut::is_bisection(r.sides)) << "B" << n << " " << r.method;
      EXPECT_EQ(cut_capacity(g, r.sides), r.capacity)
          << "B" << n << " " << r.method;
      EXPECT_GE(r.capacity, exact.capacity) << "B" << n << " " << r.method;
    }

    // kBound upper-bound witness: the folklore column split is a valid
    // bisection whose capacity can only sit at or above the optimum.
    const auto folklore = cut::column_split_bisection(bf);
    EXPECT_EQ(folklore.exactness, cut::Exactness::kBound);
    EXPECT_TRUE(cut::is_bisection(folklore.sides));
    EXPECT_GE(folklore.capacity, exact.capacity);

    // kBound lower bound: the Lemma 2.13 chain gives
    // 2*BW(MOS_{n,n}, M2)/n^2 <= BW(Bn)/n; its value must never exceed
    // the exact optimum.
    const auto mos = cut::mos_m2_bisection_value(n);
    const double lower =
        2.0 * static_cast<double>(mos.capacity) / static_cast<double>(n);
    EXPECT_LE(lower, static_cast<double>(exact.capacity) + 1e-9) << "B" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CutProperties,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace bfly
