// Pairing-model random d-regular generator: degree sequence, seeded
// determinism, simplicity rejection, and safe interplay with the
// automorphism layer (trivial group).
#include <gtest/gtest.h>

#include <vector>

#include "algo/automorphism.hpp"
#include "core/error.hpp"
#include "expansion/expansion.hpp"
#include "topology/random_regular.hpp"

namespace bfly::topo {
namespace {

TEST(RandomRegular, ExactDegreeSequence) {
  const Graph g = random_regular(50, 3, /*seed=*/7);
  EXPECT_EQ(g.num_nodes(), 50u);
  EXPECT_EQ(g.num_edges(), 75u);
  for (NodeId v = 0; v < g.num_nodes(); ++v) EXPECT_EQ(g.degree(v), 3u);
  g.validate();
}

TEST(RandomRegular, SimpleByDefault) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Graph g = random_regular(24, 4, seed);
    EXPECT_FALSE(g.has_parallel_edges());
    g.validate();
  }
}

TEST(RandomRegular, SeededDeterminism) {
  const Graph a = random_regular(40, 4, /*seed=*/42);
  const Graph b = random_regular(40, 4, /*seed=*/42);
  const auto ea = a.edges();
  const auto eb = b.edges();
  ASSERT_EQ(ea.size(), eb.size());
  for (std::size_t i = 0; i < ea.size(); ++i) EXPECT_EQ(ea[i], eb[i]);
  // A different stream gives a different pairing (equality would need a
  // ~2^-300 coincidence, i.e. a broken generator).
  const Graph c = random_regular(40, 4, /*seed=*/43);
  const auto ec = c.edges();
  bool differs = ec.size() != ea.size();
  for (std::size_t i = 0; !differs && i < ea.size(); ++i) {
    differs = ea[i] != ec[i];
  }
  EXPECT_TRUE(differs);
}

TEST(RandomRegular, RejectsInfeasibleParameters) {
  EXPECT_THROW(random_regular(5, 3, 1), PreconditionError);   // n*d odd
  EXPECT_THROW(random_regular(4, 4, 1), PreconditionError);   // d >= n
  EXPECT_THROW(random_regular(10, 0, 1), PreconditionError);  // d = 0
}

TEST(RandomRegular, MultigraphFlagAdmitsParallelEdges) {
  // On 4 nodes at degree 3 the pairing model hits parallel edges
  // constantly; with the flag set some seed in a small window must
  // accept one (degree stays exact, counted with multiplicity).
  RandomRegularOptions opts;
  opts.allow_multigraph = true;
  bool saw_parallel = false;
  for (std::uint64_t seed = 1; seed <= 64 && !saw_parallel; ++seed) {
    const Graph g = random_regular(4, 3, seed, opts);
    for (NodeId v = 0; v < g.num_nodes(); ++v) EXPECT_EQ(g.degree(v), 3u);
    g.validate();
    saw_parallel = g.has_parallel_edges();
  }
  EXPECT_TRUE(saw_parallel);
}

TEST(RandomRegular, TrivialAutomorphismGroupIsSafe) {
  // Random regular graphs have no known generators; the symmetry layer
  // must accept the trivial group and change nothing.
  const Graph g = random_regular(12, 3, /*seed=*/5);
  const algo::PermutationGroup trivial(g.num_nodes(), {});
  EXPECT_EQ(trivial.order(), 1u);
  EXPECT_EQ(trivial.vertex_orbits().size(), g.num_nodes());

  const auto plain = expansion::exact_expansion(g);
  expansion::ExactExpansionOptions opts;
  opts.num_threads = 2;
  opts.symmetry = &trivial;
  const auto reduced = expansion::exact_expansion(g, opts);
  ASSERT_EQ(plain.size(), reduced.size());
  for (std::size_t k = 1; k < plain.size(); ++k) {
    EXPECT_EQ(plain[k].ee, reduced[k].ee) << "k=" << k;
    EXPECT_EQ(plain[k].ne, reduced[k].ne) << "k=" << k;
  }
}

}  // namespace
}  // namespace bfly::topo
