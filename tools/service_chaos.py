#!/usr/bin/env python3
"""Chaos harness for the bfly_serviced query daemon (EXPERIMENTS.md E24).

Three acts, each against a throwaway cache directory:

1. **Reference pass** — a fault-free daemon answers the full query list;
   its OK responses (value + exactness per query) become the ground
   truth for everything after.
2. **Kill and restart** — a fresh daemon is SIGKILLed mid-burst (no
   drain, no atexit), then restarted over the same cache directory. The
   restart must report ZERO quarantined entries (atomic temp-plus-rename
   means a kill can strand *.tmp litter but never a torn *.bfc), and
   every recovered answer must be bit-identical to the reference.
3. **Seeded fault sweep** — daemons run with --fault-seed S arming
   FaultPlan::random(S) (enqueue/cache-write/dispatch chaos sites
   included). Shed/failed responses are acceptable under injected
   faults; a WRONG value never is. After each seeded run a clean daemon
   restarts on the surviving cache and must again see zero quarantined
   entries and serve only reference-identical answers.

Exit status: 0 clean, 1 any violation, 2 usage/environment error.
"""

from __future__ import annotations

import argparse
import os
import re
import shutil
import subprocess
import sys
import tempfile
import threading
import time

# Cheap instances (the largest exact solve is ~10 ms) so the harness is
# a crash-consistency test, not a solver benchmark.
QUERIES = [
    "BW b 4 id=q0",
    "BW b 8 id=q1",
    "BW w 4 id=q2",
    "BW w 8 id=q3",
    "BW ccc 4 id=q4",
    "BW q 8 id=q5",
    "BW q 16 id=q6",
    "BOUNDARY b 4 0f id=q7",
    "BOUNDARY b 4 13 id=q8",
    "BW b 4 policy=portfolio id=q9",
]

OK_RE = re.compile(
    r"^OK id=(?P<id>\S*) key=(?P<key>[0-9a-f]{16}) value=(?P<value>\d+)"
    r" exact=(?P<exact>[01]) source=(?P<source>\S+)")
ERR_RE = re.compile(r"^ERR id=(?P<id>\S*) status=(?P<status>\S+)")
READY_RE = re.compile(
    r"^READY recovered=(?P<recovered>\d+) quarantined=(?P<quarantined>\d+)"
    r" tmp_removed=(?P<tmp>\d+)")


class Failure(Exception):
    pass


class Daemon:
    """One bfly_serviced process with a line-pumping reader thread."""

    def __init__(self, binary: str, cache_dir: str, fault_seed=None):
        cmd = [binary, f"--cache-dir={cache_dir}", "--workers=2"]
        if fault_seed is not None:
            cmd.append(f"--fault-seed={fault_seed}")
        self.proc = subprocess.Popen(
            cmd, stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            stderr=subprocess.PIPE, text=True, bufsize=1)
        self.lines: list[str] = []
        self._cond = threading.Condition()
        self._reader = threading.Thread(target=self._pump, daemon=True)
        self._reader.start()

    def _pump(self):
        for line in self.proc.stdout:
            with self._cond:
                self.lines.append(line.rstrip("\n"))
                self._cond.notify_all()

    def send(self, line: str):
        self.proc.stdin.write(line + "\n")
        self.proc.stdin.flush()

    def wait_lines(self, n: int, timeout: float = 60.0) -> list[str]:
        deadline = time.monotonic() + timeout
        with self._cond:
            while len(self.lines) < n:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise Failure(
                        f"timed out waiting for {n} lines, have "
                        f"{len(self.lines)}: {self.lines}")
                self._cond.wait(remaining)
            return list(self.lines)

    def ready_line(self) -> dict:
        first = self.wait_lines(1)[0]
        m = READY_RE.match(first)
        if not m:
            raise Failure(f"expected READY banner, got: {first!r}")
        return {k: int(v) for k, v in m.groupdict().items()}

    def quit(self) -> int:
        try:
            self.send("QUIT")
            self.proc.stdin.close()
        except (BrokenPipeError, ValueError):
            pass
        rc = self.proc.wait(timeout=60)
        self._reader.join(timeout=10)
        return rc

    def kill(self):
        self.proc.kill()
        self.proc.wait(timeout=60)
        self._reader.join(timeout=10)


def parse_responses(lines: list[str]) -> dict[str, dict]:
    out = {}
    for line in lines:
        m = OK_RE.match(line)
        if m:
            out[m.group("id")] = {
                "status": "ok",
                "value": int(m.group("value")),
                "exact": int(m.group("exact")),
                "source": m.group("source"),
            }
            continue
        m = ERR_RE.match(line)
        if m:
            out[m.group("id")] = {"status": m.group("status")}
    return out


def run_session(binary, cache_dir, queries, fault_seed=None):
    """Full polite session: READY, all queries, QUIT, parsed responses."""
    d = Daemon(binary, cache_dir, fault_seed)
    ready = d.ready_line()
    for q in queries:
        d.send(q)
    d.wait_lines(1 + len(queries))
    rc = d.quit()
    if rc != 0:
        raise Failure(f"daemon exited {rc}; stderr: {d.proc.stderr.read()}")
    return ready, parse_responses(d.lines)


def check_against_reference(responses, reference, label,
                            allow_errors=False):
    """Every OK answer must match the reference bit for bit."""
    violations = []
    for qid, ref in reference.items():
        got = responses.get(qid)
        if got is None or got["status"] != "ok":
            if allow_errors:
                continue
            violations.append(f"{label}: {qid} missing or not OK: {got}")
            continue
        if got["value"] != ref["value"]:
            violations.append(
                f"{label}: {qid} value {got['value']} != reference"
                f" {ref['value']} — WRONG ANSWER")
        # An unproven bound may be re-proven later, but a proof must
        # never be forgotten by the cache.
        if ref["exact"] and not got["exact"]:
            violations.append(
                f"{label}: {qid} lost exactness (reference proved it)")
    return violations


def act_reference(binary, workdir):
    cache = os.path.join(workdir, "cache_ref")
    ready, responses = run_session(binary, cache, QUERIES)
    bad = [q for q, r in responses.items() if r["status"] != "ok"]
    if bad:
        raise Failure(f"reference pass had non-OK responses: {bad}")
    if ready["quarantined"]:
        raise Failure("reference pass started with quarantined entries")
    print(f"reference: {len(responses)} OK answers")
    return responses


def act_kill_restart(binary, workdir, reference):
    cache = os.path.join(workdir, "cache_kill")
    violations = []
    # Burst, then SIGKILL as soon as half the responses are out — the
    # rest of the burst dies mid-flight, possibly mid-cache-write.
    d = Daemon(binary, cache)
    d.ready_line()
    for q in QUERIES:
        d.send(q)
    d.wait_lines(1 + len(QUERIES) // 2)
    d.kill()
    print(f"kill-restart: SIGKILL after "
          f"{len(d.lines) - 1}/{len(QUERIES)} responses")

    ready, responses = run_session(binary, cache, QUERIES)
    print(f"kill-restart: READY recovered={ready['recovered']}"
          f" quarantined={ready['quarantined']}"
          f" tmp_removed={ready['tmp']}")
    if ready["quarantined"]:
        violations.append(
            f"kill-restart: {ready['quarantined']} quarantined entries —"
            " a kill must never produce a torn committed file")
    bad = [q for q, r in responses.items() if r["status"] != "ok"]
    if bad:
        violations.append(f"kill-restart: non-OK after restart: {bad}")
    violations += check_against_reference(responses, reference,
                                          "kill-restart")
    return violations


def act_fault_sweep(binary, workdir, reference, seeds):
    violations = []
    for seed in seeds:
        cache = os.path.join(workdir, f"cache_seed{seed}")
        label = f"seed {seed}"
        try:
            _, chaotic = run_session(binary, cache, QUERIES,
                                     fault_seed=seed)
        except Failure as e:
            violations.append(f"{label}: daemon did not survive: {e}")
            continue
        ok = sum(1 for r in chaotic.values() if r["status"] == "ok")
        violations += check_against_reference(chaotic, reference, label,
                                              allow_errors=True)
        # Clean restart over whatever the chaotic run persisted.
        ready, recovered = run_session(binary, cache, QUERIES)
        if ready["quarantined"]:
            violations.append(
                f"{label}: restart quarantined {ready['quarantined']}"
                " entries persisted under injected faults")
        violations += check_against_reference(recovered, reference,
                                              f"{label} restart")
        print(f"fault sweep {label}: {ok}/{len(QUERIES)} OK under chaos,"
              f" restart recovered={ready['recovered']}"
              f" quarantined={ready['quarantined']}")
    return violations


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--daemon", required=True,
                    help="path to the bfly_serviced binary")
    ap.add_argument("--fault-seeds", default="",
                    help="comma-separated FaultPlan::random seeds (empty ="
                         " skip the sweep, e.g. a build without"
                         " BFLY_FAULT_INJECTION)")
    ap.add_argument("--workdir", default=None,
                    help="scratch directory (default: a fresh tempdir)")
    args = ap.parse_args()

    if not os.access(args.daemon, os.X_OK):
        print(f"daemon binary not executable: {args.daemon}",
              file=sys.stderr)
        return 2
    seeds = [int(s) for s in args.fault_seeds.split(",") if s.strip()]

    workdir = args.workdir or tempfile.mkdtemp(prefix="bfly_chaos_")
    os.makedirs(workdir, exist_ok=True)
    violations: list[str] = []
    try:
        reference = act_reference(args.daemon, workdir)
        violations += act_kill_restart(args.daemon, workdir, reference)
        if seeds:
            violations += act_fault_sweep(args.daemon, workdir, reference,
                                          seeds)
    except Failure as e:
        violations.append(str(e))
    finally:
        if args.workdir is None:
            shutil.rmtree(workdir, ignore_errors=True)

    for v in violations:
        print(f"FAIL: {v}", file=sys.stderr)
    if not violations:
        acts = 2 + (1 if seeds else 0)
        print(f"service chaos clean ({acts} acts,"
              f" {len(seeds)} fault seeds)")
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
