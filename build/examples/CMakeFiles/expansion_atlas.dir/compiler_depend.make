# Empty compiler generated dependencies file for expansion_atlas.
# This may be replaced when dependencies are built.
