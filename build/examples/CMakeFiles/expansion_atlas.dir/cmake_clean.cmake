file(REMOVE_RECURSE
  "CMakeFiles/expansion_atlas.dir/expansion_atlas.cpp.o"
  "CMakeFiles/expansion_atlas.dir/expansion_atlas.cpp.o.d"
  "expansion_atlas"
  "expansion_atlas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/expansion_atlas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
