file(REMOVE_RECURSE
  "CMakeFiles/bisection_explorer.dir/bisection_explorer.cpp.o"
  "CMakeFiles/bisection_explorer.dir/bisection_explorer.cpp.o.d"
  "bisection_explorer"
  "bisection_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bisection_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
