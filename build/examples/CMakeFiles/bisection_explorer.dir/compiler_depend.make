# Empty compiler generated dependencies file for bisection_explorer.
# This may be replaced when dependencies are built.
