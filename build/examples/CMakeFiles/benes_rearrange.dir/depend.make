# Empty dependencies file for benes_rearrange.
# This may be replaced when dependencies are built.
