file(REMOVE_RECURSE
  "CMakeFiles/benes_rearrange.dir/benes_rearrange.cpp.o"
  "CMakeFiles/benes_rearrange.dir/benes_rearrange.cpp.o.d"
  "benes_rearrange"
  "benes_rearrange.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/benes_rearrange.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
