file(REMOVE_RECURSE
  "CMakeFiles/layout_svg.dir/layout_svg.cpp.o"
  "CMakeFiles/layout_svg.dir/layout_svg.cpp.o.d"
  "layout_svg"
  "layout_svg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/layout_svg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
