# Empty dependencies file for layout_svg.
# This may be replaced when dependencies are built.
