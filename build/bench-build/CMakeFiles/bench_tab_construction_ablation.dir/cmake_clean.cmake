file(REMOVE_RECURSE
  "../bench/bench_tab_construction_ablation"
  "../bench/bench_tab_construction_ablation.pdb"
  "CMakeFiles/bench_tab_construction_ablation.dir/bench_tab_construction_ablation.cpp.o"
  "CMakeFiles/bench_tab_construction_ablation.dir/bench_tab_construction_ablation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab_construction_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
