file(REMOVE_RECURSE
  "../bench/bench_tab_solver_quality"
  "../bench/bench_tab_solver_quality.pdb"
  "CMakeFiles/bench_tab_solver_quality.dir/bench_tab_solver_quality.cpp.o"
  "CMakeFiles/bench_tab_solver_quality.dir/bench_tab_solver_quality.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab_solver_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
