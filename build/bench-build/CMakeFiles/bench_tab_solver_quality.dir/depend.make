# Empty dependencies file for bench_tab_solver_quality.
# This may be replaced when dependencies are built.
