file(REMOVE_RECURSE
  "../bench/bench_solvers"
  "../bench/bench_solvers.pdb"
  "CMakeFiles/bench_solvers.dir/bench_solvers.cpp.o"
  "CMakeFiles/bench_solvers.dir/bench_solvers.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_solvers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
