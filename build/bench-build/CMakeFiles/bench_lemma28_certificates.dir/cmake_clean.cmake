file(REMOVE_RECURSE
  "../bench/bench_lemma28_certificates"
  "../bench/bench_lemma28_certificates.pdb"
  "CMakeFiles/bench_lemma28_certificates.dir/bench_lemma28_certificates.cpp.o"
  "CMakeFiles/bench_lemma28_certificates.dir/bench_lemma28_certificates.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lemma28_certificates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
