# Empty dependencies file for bench_lemma28_certificates.
# This may be replaced when dependencies are built.
