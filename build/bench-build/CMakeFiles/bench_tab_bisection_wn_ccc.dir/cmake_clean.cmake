file(REMOVE_RECURSE
  "../bench/bench_tab_bisection_wn_ccc"
  "../bench/bench_tab_bisection_wn_ccc.pdb"
  "CMakeFiles/bench_tab_bisection_wn_ccc.dir/bench_tab_bisection_wn_ccc.cpp.o"
  "CMakeFiles/bench_tab_bisection_wn_ccc.dir/bench_tab_bisection_wn_ccc.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab_bisection_wn_ccc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
