# Empty compiler generated dependencies file for bench_tab_bisection_wn_ccc.
# This may be replaced when dependencies are built.
