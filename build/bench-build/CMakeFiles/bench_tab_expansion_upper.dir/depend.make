# Empty dependencies file for bench_tab_expansion_upper.
# This may be replaced when dependencies are built.
