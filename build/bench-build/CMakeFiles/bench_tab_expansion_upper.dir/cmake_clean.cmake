file(REMOVE_RECURSE
  "../bench/bench_tab_expansion_upper"
  "../bench/bench_tab_expansion_upper.pdb"
  "CMakeFiles/bench_tab_expansion_upper.dir/bench_tab_expansion_upper.cpp.o"
  "CMakeFiles/bench_tab_expansion_upper.dir/bench_tab_expansion_upper.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab_expansion_upper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
