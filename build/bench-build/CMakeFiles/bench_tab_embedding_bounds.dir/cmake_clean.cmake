file(REMOVE_RECURSE
  "../bench/bench_tab_embedding_bounds"
  "../bench/bench_tab_embedding_bounds.pdb"
  "CMakeFiles/bench_tab_embedding_bounds.dir/bench_tab_embedding_bounds.cpp.o"
  "CMakeFiles/bench_tab_embedding_bounds.dir/bench_tab_embedding_bounds.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab_embedding_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
