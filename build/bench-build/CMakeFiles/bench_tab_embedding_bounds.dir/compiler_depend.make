# Empty compiler generated dependencies file for bench_tab_embedding_bounds.
# This may be replaced when dependencies are built.
