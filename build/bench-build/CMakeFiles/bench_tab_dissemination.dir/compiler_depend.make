# Empty compiler generated dependencies file for bench_tab_dissemination.
# This may be replaced when dependencies are built.
