file(REMOVE_RECURSE
  "../bench/bench_tab_dissemination"
  "../bench/bench_tab_dissemination.pdb"
  "CMakeFiles/bench_tab_dissemination.dir/bench_tab_dissemination.cpp.o"
  "CMakeFiles/bench_tab_dissemination.dir/bench_tab_dissemination.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab_dissemination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
