# Empty compiler generated dependencies file for bench_tab_bisection_bn.
# This may be replaced when dependencies are built.
