file(REMOVE_RECURSE
  "../bench/bench_tab_bisection_bn"
  "../bench/bench_tab_bisection_bn.pdb"
  "CMakeFiles/bench_tab_bisection_bn.dir/bench_tab_bisection_bn.cpp.o"
  "CMakeFiles/bench_tab_bisection_bn.dir/bench_tab_bisection_bn.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab_bisection_bn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
