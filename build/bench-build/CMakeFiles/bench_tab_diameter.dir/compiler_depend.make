# Empty compiler generated dependencies file for bench_tab_diameter.
# This may be replaced when dependencies are built.
