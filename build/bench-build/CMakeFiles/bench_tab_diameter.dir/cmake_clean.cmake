file(REMOVE_RECURSE
  "../bench/bench_tab_diameter"
  "../bench/bench_tab_diameter.pdb"
  "CMakeFiles/bench_tab_diameter.dir/bench_tab_diameter.cpp.o"
  "CMakeFiles/bench_tab_diameter.dir/bench_tab_diameter.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab_diameter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
