file(REMOVE_RECURSE
  "../bench/bench_routing_bound"
  "../bench/bench_routing_bound.pdb"
  "CMakeFiles/bench_routing_bound.dir/bench_routing_bound.cpp.o"
  "CMakeFiles/bench_routing_bound.dir/bench_routing_bound.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_routing_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
