# Empty dependencies file for bench_routing_bound.
# This may be replaced when dependencies are built.
