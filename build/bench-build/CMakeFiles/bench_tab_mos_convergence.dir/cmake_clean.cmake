file(REMOVE_RECURSE
  "../bench/bench_tab_mos_convergence"
  "../bench/bench_tab_mos_convergence.pdb"
  "CMakeFiles/bench_tab_mos_convergence.dir/bench_tab_mos_convergence.cpp.o"
  "CMakeFiles/bench_tab_mos_convergence.dir/bench_tab_mos_convergence.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab_mos_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
