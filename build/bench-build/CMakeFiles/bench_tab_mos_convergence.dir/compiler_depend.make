# Empty compiler generated dependencies file for bench_tab_mos_convergence.
# This may be replaced when dependencies are built.
