file(REMOVE_RECURSE
  "../bench/bench_fig2_credit"
  "../bench/bench_fig2_credit.pdb"
  "CMakeFiles/bench_fig2_credit.dir/bench_fig2_credit.cpp.o"
  "CMakeFiles/bench_fig2_credit.dir/bench_fig2_credit.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_credit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
