# Empty compiler generated dependencies file for bench_tab_expansion_lower.
# This may be replaced when dependencies are built.
