file(REMOVE_RECURSE
  "../bench/bench_tab_expansion_lower"
  "../bench/bench_tab_expansion_lower.pdb"
  "CMakeFiles/bench_tab_expansion_lower.dir/bench_tab_expansion_lower.cpp.o"
  "CMakeFiles/bench_tab_expansion_lower.dir/bench_tab_expansion_lower.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab_expansion_lower.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
