file(REMOVE_RECURSE
  "../bench/bench_tab_layout"
  "../bench/bench_tab_layout.pdb"
  "CMakeFiles/bench_tab_layout.dir/bench_tab_layout.cpp.o"
  "CMakeFiles/bench_tab_layout.dir/bench_tab_layout.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
