# Empty compiler generated dependencies file for bench_tab_layout.
# This may be replaced when dependencies are built.
