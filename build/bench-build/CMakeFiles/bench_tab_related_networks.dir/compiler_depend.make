# Empty compiler generated dependencies file for bench_tab_related_networks.
# This may be replaced when dependencies are built.
