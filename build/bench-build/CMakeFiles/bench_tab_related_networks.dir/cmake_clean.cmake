file(REMOVE_RECURSE
  "../bench/bench_tab_related_networks"
  "../bench/bench_tab_related_networks.pdb"
  "CMakeFiles/bench_tab_related_networks.dir/bench_tab_related_networks.cpp.o"
  "CMakeFiles/bench_tab_related_networks.dir/bench_tab_related_networks.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab_related_networks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
