# Empty compiler generated dependencies file for bench_tab_emulation.
# This may be replaced when dependencies are built.
