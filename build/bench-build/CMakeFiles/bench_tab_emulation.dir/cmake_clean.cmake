file(REMOVE_RECURSE
  "../bench/bench_tab_emulation"
  "../bench/bench_tab_emulation.pdb"
  "CMakeFiles/bench_tab_emulation.dir/bench_tab_emulation.cpp.o"
  "CMakeFiles/bench_tab_emulation.dir/bench_tab_emulation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab_emulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
