# Empty compiler generated dependencies file for bench_tab_variants.
# This may be replaced when dependencies are built.
