file(REMOVE_RECURSE
  "../bench/bench_tab_variants"
  "../bench/bench_tab_variants.pdb"
  "CMakeFiles/bench_tab_variants.dir/bench_tab_variants.cpp.o"
  "CMakeFiles/bench_tab_variants.dir/bench_tab_variants.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
