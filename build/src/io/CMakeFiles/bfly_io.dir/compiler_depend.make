# Empty compiler generated dependencies file for bfly_io.
# This may be replaced when dependencies are built.
