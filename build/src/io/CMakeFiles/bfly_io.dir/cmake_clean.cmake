file(REMOVE_RECURSE
  "CMakeFiles/bfly_io.dir/ascii_butterfly.cpp.o"
  "CMakeFiles/bfly_io.dir/ascii_butterfly.cpp.o.d"
  "CMakeFiles/bfly_io.dir/dot.cpp.o"
  "CMakeFiles/bfly_io.dir/dot.cpp.o.d"
  "CMakeFiles/bfly_io.dir/table.cpp.o"
  "CMakeFiles/bfly_io.dir/table.cpp.o.d"
  "libbfly_io.a"
  "libbfly_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfly_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
