file(REMOVE_RECURSE
  "libbfly_io.a"
)
