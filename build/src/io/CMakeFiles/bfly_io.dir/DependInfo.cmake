
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/ascii_butterfly.cpp" "src/io/CMakeFiles/bfly_io.dir/ascii_butterfly.cpp.o" "gcc" "src/io/CMakeFiles/bfly_io.dir/ascii_butterfly.cpp.o.d"
  "/root/repo/src/io/dot.cpp" "src/io/CMakeFiles/bfly_io.dir/dot.cpp.o" "gcc" "src/io/CMakeFiles/bfly_io.dir/dot.cpp.o.d"
  "/root/repo/src/io/table.cpp" "src/io/CMakeFiles/bfly_io.dir/table.cpp.o" "gcc" "src/io/CMakeFiles/bfly_io.dir/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bfly_core.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/bfly_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
