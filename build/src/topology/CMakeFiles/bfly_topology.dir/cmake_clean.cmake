file(REMOVE_RECURSE
  "CMakeFiles/bfly_topology.dir/benes.cpp.o"
  "CMakeFiles/bfly_topology.dir/benes.cpp.o.d"
  "CMakeFiles/bfly_topology.dir/butterfly.cpp.o"
  "CMakeFiles/bfly_topology.dir/butterfly.cpp.o.d"
  "CMakeFiles/bfly_topology.dir/ccc.cpp.o"
  "CMakeFiles/bfly_topology.dir/ccc.cpp.o.d"
  "CMakeFiles/bfly_topology.dir/complete.cpp.o"
  "CMakeFiles/bfly_topology.dir/complete.cpp.o.d"
  "CMakeFiles/bfly_topology.dir/debruijn.cpp.o"
  "CMakeFiles/bfly_topology.dir/debruijn.cpp.o.d"
  "CMakeFiles/bfly_topology.dir/hypercube.cpp.o"
  "CMakeFiles/bfly_topology.dir/hypercube.cpp.o.d"
  "CMakeFiles/bfly_topology.dir/mesh_of_stars.cpp.o"
  "CMakeFiles/bfly_topology.dir/mesh_of_stars.cpp.o.d"
  "CMakeFiles/bfly_topology.dir/shuffle_exchange.cpp.o"
  "CMakeFiles/bfly_topology.dir/shuffle_exchange.cpp.o.d"
  "CMakeFiles/bfly_topology.dir/wrapped_butterfly.cpp.o"
  "CMakeFiles/bfly_topology.dir/wrapped_butterfly.cpp.o.d"
  "libbfly_topology.a"
  "libbfly_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfly_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
