# Empty dependencies file for bfly_topology.
# This may be replaced when dependencies are built.
