
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topology/benes.cpp" "src/topology/CMakeFiles/bfly_topology.dir/benes.cpp.o" "gcc" "src/topology/CMakeFiles/bfly_topology.dir/benes.cpp.o.d"
  "/root/repo/src/topology/butterfly.cpp" "src/topology/CMakeFiles/bfly_topology.dir/butterfly.cpp.o" "gcc" "src/topology/CMakeFiles/bfly_topology.dir/butterfly.cpp.o.d"
  "/root/repo/src/topology/ccc.cpp" "src/topology/CMakeFiles/bfly_topology.dir/ccc.cpp.o" "gcc" "src/topology/CMakeFiles/bfly_topology.dir/ccc.cpp.o.d"
  "/root/repo/src/topology/complete.cpp" "src/topology/CMakeFiles/bfly_topology.dir/complete.cpp.o" "gcc" "src/topology/CMakeFiles/bfly_topology.dir/complete.cpp.o.d"
  "/root/repo/src/topology/debruijn.cpp" "src/topology/CMakeFiles/bfly_topology.dir/debruijn.cpp.o" "gcc" "src/topology/CMakeFiles/bfly_topology.dir/debruijn.cpp.o.d"
  "/root/repo/src/topology/hypercube.cpp" "src/topology/CMakeFiles/bfly_topology.dir/hypercube.cpp.o" "gcc" "src/topology/CMakeFiles/bfly_topology.dir/hypercube.cpp.o.d"
  "/root/repo/src/topology/mesh_of_stars.cpp" "src/topology/CMakeFiles/bfly_topology.dir/mesh_of_stars.cpp.o" "gcc" "src/topology/CMakeFiles/bfly_topology.dir/mesh_of_stars.cpp.o.d"
  "/root/repo/src/topology/shuffle_exchange.cpp" "src/topology/CMakeFiles/bfly_topology.dir/shuffle_exchange.cpp.o" "gcc" "src/topology/CMakeFiles/bfly_topology.dir/shuffle_exchange.cpp.o.d"
  "/root/repo/src/topology/wrapped_butterfly.cpp" "src/topology/CMakeFiles/bfly_topology.dir/wrapped_butterfly.cpp.o" "gcc" "src/topology/CMakeFiles/bfly_topology.dir/wrapped_butterfly.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bfly_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
