file(REMOVE_RECURSE
  "CMakeFiles/bfly_layout.dir/butterfly_layout.cpp.o"
  "CMakeFiles/bfly_layout.dir/butterfly_layout.cpp.o.d"
  "CMakeFiles/bfly_layout.dir/grid_layout.cpp.o"
  "CMakeFiles/bfly_layout.dir/grid_layout.cpp.o.d"
  "CMakeFiles/bfly_layout.dir/svg.cpp.o"
  "CMakeFiles/bfly_layout.dir/svg.cpp.o.d"
  "libbfly_layout.a"
  "libbfly_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfly_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
