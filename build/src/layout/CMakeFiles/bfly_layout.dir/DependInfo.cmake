
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/layout/butterfly_layout.cpp" "src/layout/CMakeFiles/bfly_layout.dir/butterfly_layout.cpp.o" "gcc" "src/layout/CMakeFiles/bfly_layout.dir/butterfly_layout.cpp.o.d"
  "/root/repo/src/layout/grid_layout.cpp" "src/layout/CMakeFiles/bfly_layout.dir/grid_layout.cpp.o" "gcc" "src/layout/CMakeFiles/bfly_layout.dir/grid_layout.cpp.o.d"
  "/root/repo/src/layout/svg.cpp" "src/layout/CMakeFiles/bfly_layout.dir/svg.cpp.o" "gcc" "src/layout/CMakeFiles/bfly_layout.dir/svg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bfly_core.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/bfly_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
