file(REMOVE_RECURSE
  "CMakeFiles/bfly_routing.dir/benes_route.cpp.o"
  "CMakeFiles/bfly_routing.dir/benes_route.cpp.o.d"
  "CMakeFiles/bfly_routing.dir/butterfly_routing.cpp.o"
  "CMakeFiles/bfly_routing.dir/butterfly_routing.cpp.o.d"
  "CMakeFiles/bfly_routing.dir/dissemination.cpp.o"
  "CMakeFiles/bfly_routing.dir/dissemination.cpp.o.d"
  "CMakeFiles/bfly_routing.dir/emulation.cpp.o"
  "CMakeFiles/bfly_routing.dir/emulation.cpp.o.d"
  "CMakeFiles/bfly_routing.dir/experiments.cpp.o"
  "CMakeFiles/bfly_routing.dir/experiments.cpp.o.d"
  "CMakeFiles/bfly_routing.dir/packet_sim.cpp.o"
  "CMakeFiles/bfly_routing.dir/packet_sim.cpp.o.d"
  "CMakeFiles/bfly_routing.dir/rearrange_certificate.cpp.o"
  "CMakeFiles/bfly_routing.dir/rearrange_certificate.cpp.o.d"
  "libbfly_routing.a"
  "libbfly_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfly_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
