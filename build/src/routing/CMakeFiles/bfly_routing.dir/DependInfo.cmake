
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/benes_route.cpp" "src/routing/CMakeFiles/bfly_routing.dir/benes_route.cpp.o" "gcc" "src/routing/CMakeFiles/bfly_routing.dir/benes_route.cpp.o.d"
  "/root/repo/src/routing/butterfly_routing.cpp" "src/routing/CMakeFiles/bfly_routing.dir/butterfly_routing.cpp.o" "gcc" "src/routing/CMakeFiles/bfly_routing.dir/butterfly_routing.cpp.o.d"
  "/root/repo/src/routing/dissemination.cpp" "src/routing/CMakeFiles/bfly_routing.dir/dissemination.cpp.o" "gcc" "src/routing/CMakeFiles/bfly_routing.dir/dissemination.cpp.o.d"
  "/root/repo/src/routing/emulation.cpp" "src/routing/CMakeFiles/bfly_routing.dir/emulation.cpp.o" "gcc" "src/routing/CMakeFiles/bfly_routing.dir/emulation.cpp.o.d"
  "/root/repo/src/routing/experiments.cpp" "src/routing/CMakeFiles/bfly_routing.dir/experiments.cpp.o" "gcc" "src/routing/CMakeFiles/bfly_routing.dir/experiments.cpp.o.d"
  "/root/repo/src/routing/packet_sim.cpp" "src/routing/CMakeFiles/bfly_routing.dir/packet_sim.cpp.o" "gcc" "src/routing/CMakeFiles/bfly_routing.dir/packet_sim.cpp.o.d"
  "/root/repo/src/routing/rearrange_certificate.cpp" "src/routing/CMakeFiles/bfly_routing.dir/rearrange_certificate.cpp.o" "gcc" "src/routing/CMakeFiles/bfly_routing.dir/rearrange_certificate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bfly_core.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/bfly_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/algo/CMakeFiles/bfly_algo.dir/DependInfo.cmake"
  "/root/repo/build/src/embed/CMakeFiles/bfly_embed.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
