
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cut/bisection.cpp" "src/cut/CMakeFiles/bfly_cut.dir/bisection.cpp.o" "gcc" "src/cut/CMakeFiles/bfly_cut.dir/bisection.cpp.o.d"
  "/root/repo/src/cut/branch_bound.cpp" "src/cut/CMakeFiles/bfly_cut.dir/branch_bound.cpp.o" "gcc" "src/cut/CMakeFiles/bfly_cut.dir/branch_bound.cpp.o.d"
  "/root/repo/src/cut/brute_force.cpp" "src/cut/CMakeFiles/bfly_cut.dir/brute_force.cpp.o" "gcc" "src/cut/CMakeFiles/bfly_cut.dir/brute_force.cpp.o.d"
  "/root/repo/src/cut/compactness.cpp" "src/cut/CMakeFiles/bfly_cut.dir/compactness.cpp.o" "gcc" "src/cut/CMakeFiles/bfly_cut.dir/compactness.cpp.o.d"
  "/root/repo/src/cut/constructive.cpp" "src/cut/CMakeFiles/bfly_cut.dir/constructive.cpp.o" "gcc" "src/cut/CMakeFiles/bfly_cut.dir/constructive.cpp.o.d"
  "/root/repo/src/cut/fiduccia_mattheyses.cpp" "src/cut/CMakeFiles/bfly_cut.dir/fiduccia_mattheyses.cpp.o" "gcc" "src/cut/CMakeFiles/bfly_cut.dir/fiduccia_mattheyses.cpp.o.d"
  "/root/repo/src/cut/kernighan_lin.cpp" "src/cut/CMakeFiles/bfly_cut.dir/kernighan_lin.cpp.o" "gcc" "src/cut/CMakeFiles/bfly_cut.dir/kernighan_lin.cpp.o.d"
  "/root/repo/src/cut/lemma213.cpp" "src/cut/CMakeFiles/bfly_cut.dir/lemma213.cpp.o" "gcc" "src/cut/CMakeFiles/bfly_cut.dir/lemma213.cpp.o.d"
  "/root/repo/src/cut/level_balance.cpp" "src/cut/CMakeFiles/bfly_cut.dir/level_balance.cpp.o" "gcc" "src/cut/CMakeFiles/bfly_cut.dir/level_balance.cpp.o.d"
  "/root/repo/src/cut/mos_theory.cpp" "src/cut/CMakeFiles/bfly_cut.dir/mos_theory.cpp.o" "gcc" "src/cut/CMakeFiles/bfly_cut.dir/mos_theory.cpp.o.d"
  "/root/repo/src/cut/multilevel.cpp" "src/cut/CMakeFiles/bfly_cut.dir/multilevel.cpp.o" "gcc" "src/cut/CMakeFiles/bfly_cut.dir/multilevel.cpp.o.d"
  "/root/repo/src/cut/simulated_annealing.cpp" "src/cut/CMakeFiles/bfly_cut.dir/simulated_annealing.cpp.o" "gcc" "src/cut/CMakeFiles/bfly_cut.dir/simulated_annealing.cpp.o.d"
  "/root/repo/src/cut/spectral_bisection.cpp" "src/cut/CMakeFiles/bfly_cut.dir/spectral_bisection.cpp.o" "gcc" "src/cut/CMakeFiles/bfly_cut.dir/spectral_bisection.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bfly_core.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/bfly_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/algo/CMakeFiles/bfly_algo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
