file(REMOVE_RECURSE
  "libbfly_cut.a"
)
