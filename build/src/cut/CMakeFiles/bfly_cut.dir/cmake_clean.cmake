file(REMOVE_RECURSE
  "CMakeFiles/bfly_cut.dir/bisection.cpp.o"
  "CMakeFiles/bfly_cut.dir/bisection.cpp.o.d"
  "CMakeFiles/bfly_cut.dir/branch_bound.cpp.o"
  "CMakeFiles/bfly_cut.dir/branch_bound.cpp.o.d"
  "CMakeFiles/bfly_cut.dir/brute_force.cpp.o"
  "CMakeFiles/bfly_cut.dir/brute_force.cpp.o.d"
  "CMakeFiles/bfly_cut.dir/compactness.cpp.o"
  "CMakeFiles/bfly_cut.dir/compactness.cpp.o.d"
  "CMakeFiles/bfly_cut.dir/constructive.cpp.o"
  "CMakeFiles/bfly_cut.dir/constructive.cpp.o.d"
  "CMakeFiles/bfly_cut.dir/fiduccia_mattheyses.cpp.o"
  "CMakeFiles/bfly_cut.dir/fiduccia_mattheyses.cpp.o.d"
  "CMakeFiles/bfly_cut.dir/kernighan_lin.cpp.o"
  "CMakeFiles/bfly_cut.dir/kernighan_lin.cpp.o.d"
  "CMakeFiles/bfly_cut.dir/lemma213.cpp.o"
  "CMakeFiles/bfly_cut.dir/lemma213.cpp.o.d"
  "CMakeFiles/bfly_cut.dir/level_balance.cpp.o"
  "CMakeFiles/bfly_cut.dir/level_balance.cpp.o.d"
  "CMakeFiles/bfly_cut.dir/mos_theory.cpp.o"
  "CMakeFiles/bfly_cut.dir/mos_theory.cpp.o.d"
  "CMakeFiles/bfly_cut.dir/multilevel.cpp.o"
  "CMakeFiles/bfly_cut.dir/multilevel.cpp.o.d"
  "CMakeFiles/bfly_cut.dir/simulated_annealing.cpp.o"
  "CMakeFiles/bfly_cut.dir/simulated_annealing.cpp.o.d"
  "CMakeFiles/bfly_cut.dir/spectral_bisection.cpp.o"
  "CMakeFiles/bfly_cut.dir/spectral_bisection.cpp.o.d"
  "libbfly_cut.a"
  "libbfly_cut.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfly_cut.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
