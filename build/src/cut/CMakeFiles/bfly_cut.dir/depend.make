# Empty dependencies file for bfly_cut.
# This may be replaced when dependencies are built.
