file(REMOVE_RECURSE
  "libbfly_variants.a"
)
