# Empty compiler generated dependencies file for bfly_variants.
# This may be replaced when dependencies are built.
