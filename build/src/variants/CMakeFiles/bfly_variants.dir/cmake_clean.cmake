file(REMOVE_RECURSE
  "CMakeFiles/bfly_variants.dir/bandwidth.cpp.o"
  "CMakeFiles/bfly_variants.dir/bandwidth.cpp.o.d"
  "CMakeFiles/bfly_variants.dir/fft.cpp.o"
  "CMakeFiles/bfly_variants.dir/fft.cpp.o.d"
  "CMakeFiles/bfly_variants.dir/omega.cpp.o"
  "CMakeFiles/bfly_variants.dir/omega.cpp.o.d"
  "libbfly_variants.a"
  "libbfly_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfly_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
