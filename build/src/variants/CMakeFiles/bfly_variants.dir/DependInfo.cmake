
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/variants/bandwidth.cpp" "src/variants/CMakeFiles/bfly_variants.dir/bandwidth.cpp.o" "gcc" "src/variants/CMakeFiles/bfly_variants.dir/bandwidth.cpp.o.d"
  "/root/repo/src/variants/fft.cpp" "src/variants/CMakeFiles/bfly_variants.dir/fft.cpp.o" "gcc" "src/variants/CMakeFiles/bfly_variants.dir/fft.cpp.o.d"
  "/root/repo/src/variants/omega.cpp" "src/variants/CMakeFiles/bfly_variants.dir/omega.cpp.o" "gcc" "src/variants/CMakeFiles/bfly_variants.dir/omega.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bfly_core.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/bfly_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/algo/CMakeFiles/bfly_algo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
