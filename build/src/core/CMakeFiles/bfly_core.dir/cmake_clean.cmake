file(REMOVE_RECURSE
  "CMakeFiles/bfly_core.dir/graph.cpp.o"
  "CMakeFiles/bfly_core.dir/graph.cpp.o.d"
  "CMakeFiles/bfly_core.dir/partition.cpp.o"
  "CMakeFiles/bfly_core.dir/partition.cpp.o.d"
  "CMakeFiles/bfly_core.dir/thread_pool.cpp.o"
  "CMakeFiles/bfly_core.dir/thread_pool.cpp.o.d"
  "libbfly_core.a"
  "libbfly_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfly_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
