# Empty compiler generated dependencies file for bfly_core.
# This may be replaced when dependencies are built.
