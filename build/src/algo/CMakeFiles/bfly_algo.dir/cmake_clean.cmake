file(REMOVE_RECURSE
  "CMakeFiles/bfly_algo.dir/bfs.cpp.o"
  "CMakeFiles/bfly_algo.dir/bfs.cpp.o.d"
  "CMakeFiles/bfly_algo.dir/components.cpp.o"
  "CMakeFiles/bfly_algo.dir/components.cpp.o.d"
  "CMakeFiles/bfly_algo.dir/diameter.cpp.o"
  "CMakeFiles/bfly_algo.dir/diameter.cpp.o.d"
  "CMakeFiles/bfly_algo.dir/isomorphism.cpp.o"
  "CMakeFiles/bfly_algo.dir/isomorphism.cpp.o.d"
  "CMakeFiles/bfly_algo.dir/maxflow.cpp.o"
  "CMakeFiles/bfly_algo.dir/maxflow.cpp.o.d"
  "CMakeFiles/bfly_algo.dir/spectral.cpp.o"
  "CMakeFiles/bfly_algo.dir/spectral.cpp.o.d"
  "CMakeFiles/bfly_algo.dir/subgraph.cpp.o"
  "CMakeFiles/bfly_algo.dir/subgraph.cpp.o.d"
  "libbfly_algo.a"
  "libbfly_algo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfly_algo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
