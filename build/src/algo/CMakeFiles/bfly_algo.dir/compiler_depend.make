# Empty compiler generated dependencies file for bfly_algo.
# This may be replaced when dependencies are built.
