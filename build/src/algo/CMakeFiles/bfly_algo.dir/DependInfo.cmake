
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algo/bfs.cpp" "src/algo/CMakeFiles/bfly_algo.dir/bfs.cpp.o" "gcc" "src/algo/CMakeFiles/bfly_algo.dir/bfs.cpp.o.d"
  "/root/repo/src/algo/components.cpp" "src/algo/CMakeFiles/bfly_algo.dir/components.cpp.o" "gcc" "src/algo/CMakeFiles/bfly_algo.dir/components.cpp.o.d"
  "/root/repo/src/algo/diameter.cpp" "src/algo/CMakeFiles/bfly_algo.dir/diameter.cpp.o" "gcc" "src/algo/CMakeFiles/bfly_algo.dir/diameter.cpp.o.d"
  "/root/repo/src/algo/isomorphism.cpp" "src/algo/CMakeFiles/bfly_algo.dir/isomorphism.cpp.o" "gcc" "src/algo/CMakeFiles/bfly_algo.dir/isomorphism.cpp.o.d"
  "/root/repo/src/algo/maxflow.cpp" "src/algo/CMakeFiles/bfly_algo.dir/maxflow.cpp.o" "gcc" "src/algo/CMakeFiles/bfly_algo.dir/maxflow.cpp.o.d"
  "/root/repo/src/algo/spectral.cpp" "src/algo/CMakeFiles/bfly_algo.dir/spectral.cpp.o" "gcc" "src/algo/CMakeFiles/bfly_algo.dir/spectral.cpp.o.d"
  "/root/repo/src/algo/subgraph.cpp" "src/algo/CMakeFiles/bfly_algo.dir/subgraph.cpp.o" "gcc" "src/algo/CMakeFiles/bfly_algo.dir/subgraph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bfly_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
