file(REMOVE_RECURSE
  "libbfly_algo.a"
)
