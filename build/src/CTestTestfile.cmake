# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("core")
subdirs("topology")
subdirs("algo")
subdirs("io")
subdirs("cut")
subdirs("expansion")
subdirs("embed")
subdirs("routing")
subdirs("variants")
subdirs("layout")
