
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/embed/embedding.cpp" "src/embed/CMakeFiles/bfly_embed.dir/embedding.cpp.o" "gcc" "src/embed/CMakeFiles/bfly_embed.dir/embedding.cpp.o.d"
  "/root/repo/src/embed/factory.cpp" "src/embed/CMakeFiles/bfly_embed.dir/factory.cpp.o" "gcc" "src/embed/CMakeFiles/bfly_embed.dir/factory.cpp.o.d"
  "/root/repo/src/embed/lower_bounds.cpp" "src/embed/CMakeFiles/bfly_embed.dir/lower_bounds.cpp.o" "gcc" "src/embed/CMakeFiles/bfly_embed.dir/lower_bounds.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bfly_core.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/bfly_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/algo/CMakeFiles/bfly_algo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
