file(REMOVE_RECURSE
  "CMakeFiles/bfly_embed.dir/embedding.cpp.o"
  "CMakeFiles/bfly_embed.dir/embedding.cpp.o.d"
  "CMakeFiles/bfly_embed.dir/factory.cpp.o"
  "CMakeFiles/bfly_embed.dir/factory.cpp.o.d"
  "CMakeFiles/bfly_embed.dir/lower_bounds.cpp.o"
  "CMakeFiles/bfly_embed.dir/lower_bounds.cpp.o.d"
  "libbfly_embed.a"
  "libbfly_embed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfly_embed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
