# Empty compiler generated dependencies file for bfly_embed.
# This may be replaced when dependencies are built.
