file(REMOVE_RECURSE
  "libbfly_embed.a"
)
