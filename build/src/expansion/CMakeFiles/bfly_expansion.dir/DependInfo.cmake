
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/expansion/constructive_sets.cpp" "src/expansion/CMakeFiles/bfly_expansion.dir/constructive_sets.cpp.o" "gcc" "src/expansion/CMakeFiles/bfly_expansion.dir/constructive_sets.cpp.o.d"
  "/root/repo/src/expansion/credit_scheme.cpp" "src/expansion/CMakeFiles/bfly_expansion.dir/credit_scheme.cpp.o" "gcc" "src/expansion/CMakeFiles/bfly_expansion.dir/credit_scheme.cpp.o.d"
  "/root/repo/src/expansion/expansion.cpp" "src/expansion/CMakeFiles/bfly_expansion.dir/expansion.cpp.o" "gcc" "src/expansion/CMakeFiles/bfly_expansion.dir/expansion.cpp.o.d"
  "/root/repo/src/expansion/local_search.cpp" "src/expansion/CMakeFiles/bfly_expansion.dir/local_search.cpp.o" "gcc" "src/expansion/CMakeFiles/bfly_expansion.dir/local_search.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bfly_core.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/bfly_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/algo/CMakeFiles/bfly_algo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
