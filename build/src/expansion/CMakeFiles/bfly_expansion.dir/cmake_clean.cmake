file(REMOVE_RECURSE
  "CMakeFiles/bfly_expansion.dir/constructive_sets.cpp.o"
  "CMakeFiles/bfly_expansion.dir/constructive_sets.cpp.o.d"
  "CMakeFiles/bfly_expansion.dir/credit_scheme.cpp.o"
  "CMakeFiles/bfly_expansion.dir/credit_scheme.cpp.o.d"
  "CMakeFiles/bfly_expansion.dir/expansion.cpp.o"
  "CMakeFiles/bfly_expansion.dir/expansion.cpp.o.d"
  "CMakeFiles/bfly_expansion.dir/local_search.cpp.o"
  "CMakeFiles/bfly_expansion.dir/local_search.cpp.o.d"
  "libbfly_expansion.a"
  "libbfly_expansion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfly_expansion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
