file(REMOVE_RECURSE
  "libbfly_expansion.a"
)
