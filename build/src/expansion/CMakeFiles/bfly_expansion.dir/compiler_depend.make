# Empty compiler generated dependencies file for bfly_expansion.
# This may be replaced when dependencies are built.
