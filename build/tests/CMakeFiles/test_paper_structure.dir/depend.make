# Empty dependencies file for test_paper_structure.
# This may be replaced when dependencies are built.
