file(REMOVE_RECURSE
  "CMakeFiles/test_paper_structure.dir/test_paper_structure.cpp.o"
  "CMakeFiles/test_paper_structure.dir/test_paper_structure.cpp.o.d"
  "test_paper_structure"
  "test_paper_structure.pdb"
  "test_paper_structure[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_paper_structure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
