# Empty compiler generated dependencies file for test_cut_exact.
# This may be replaced when dependencies are built.
