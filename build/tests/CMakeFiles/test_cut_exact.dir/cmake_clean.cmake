file(REMOVE_RECURSE
  "CMakeFiles/test_cut_exact.dir/test_cut_exact.cpp.o"
  "CMakeFiles/test_cut_exact.dir/test_cut_exact.cpp.o.d"
  "test_cut_exact"
  "test_cut_exact.pdb"
  "test_cut_exact[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cut_exact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
