file(REMOVE_RECURSE
  "CMakeFiles/test_cut_heuristics.dir/test_cut_heuristics.cpp.o"
  "CMakeFiles/test_cut_heuristics.dir/test_cut_heuristics.cpp.o.d"
  "test_cut_heuristics"
  "test_cut_heuristics.pdb"
  "test_cut_heuristics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cut_heuristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
