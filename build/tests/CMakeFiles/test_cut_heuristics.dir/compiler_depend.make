# Empty compiler generated dependencies file for test_cut_heuristics.
# This may be replaced when dependencies are built.
