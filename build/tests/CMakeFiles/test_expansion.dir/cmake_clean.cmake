file(REMOVE_RECURSE
  "CMakeFiles/test_expansion.dir/test_expansion.cpp.o"
  "CMakeFiles/test_expansion.dir/test_expansion.cpp.o.d"
  "test_expansion"
  "test_expansion.pdb"
  "test_expansion[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_expansion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
