file(REMOVE_RECURSE
  "CMakeFiles/test_final_properties.dir/test_final_properties.cpp.o"
  "CMakeFiles/test_final_properties.dir/test_final_properties.cpp.o.d"
  "test_final_properties"
  "test_final_properties.pdb"
  "test_final_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_final_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
