# Empty compiler generated dependencies file for test_lemma213.
# This may be replaced when dependencies are built.
