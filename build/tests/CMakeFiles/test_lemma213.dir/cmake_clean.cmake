file(REMOVE_RECURSE
  "CMakeFiles/test_lemma213.dir/test_lemma213.cpp.o"
  "CMakeFiles/test_lemma213.dir/test_lemma213.cpp.o.d"
  "test_lemma213"
  "test_lemma213.pdb"
  "test_lemma213[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lemma213.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
