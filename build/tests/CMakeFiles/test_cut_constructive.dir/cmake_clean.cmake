file(REMOVE_RECURSE
  "CMakeFiles/test_cut_constructive.dir/test_cut_constructive.cpp.o"
  "CMakeFiles/test_cut_constructive.dir/test_cut_constructive.cpp.o.d"
  "test_cut_constructive"
  "test_cut_constructive.pdb"
  "test_cut_constructive[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cut_constructive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
