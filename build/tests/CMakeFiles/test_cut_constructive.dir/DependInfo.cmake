
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_cut_constructive.cpp" "tests/CMakeFiles/test_cut_constructive.dir/test_cut_constructive.cpp.o" "gcc" "tests/CMakeFiles/test_cut_constructive.dir/test_cut_constructive.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/io/CMakeFiles/bfly_io.dir/DependInfo.cmake"
  "/root/repo/build/src/cut/CMakeFiles/bfly_cut.dir/DependInfo.cmake"
  "/root/repo/build/src/expansion/CMakeFiles/bfly_expansion.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/bfly_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/embed/CMakeFiles/bfly_embed.dir/DependInfo.cmake"
  "/root/repo/build/src/variants/CMakeFiles/bfly_variants.dir/DependInfo.cmake"
  "/root/repo/build/src/algo/CMakeFiles/bfly_algo.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/bfly_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/bfly_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/bfly_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
