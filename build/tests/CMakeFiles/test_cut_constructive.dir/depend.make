# Empty dependencies file for test_cut_constructive.
# This may be replaced when dependencies are built.
