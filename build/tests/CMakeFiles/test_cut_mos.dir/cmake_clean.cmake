file(REMOVE_RECURSE
  "CMakeFiles/test_cut_mos.dir/test_cut_mos.cpp.o"
  "CMakeFiles/test_cut_mos.dir/test_cut_mos.cpp.o.d"
  "test_cut_mos"
  "test_cut_mos.pdb"
  "test_cut_mos[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cut_mos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
