# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_topology[1]_include.cmake")
include("/root/repo/build/tests/test_algo[1]_include.cmake")
include("/root/repo/build/tests/test_cut_exact[1]_include.cmake")
include("/root/repo/build/tests/test_cut_heuristics[1]_include.cmake")
include("/root/repo/build/tests/test_cut_mos[1]_include.cmake")
include("/root/repo/build/tests/test_cut_constructive[1]_include.cmake")
include("/root/repo/build/tests/test_expansion[1]_include.cmake")
include("/root/repo/build/tests/test_embed[1]_include.cmake")
include("/root/repo/build/tests/test_routing[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_maxflow[1]_include.cmake")
include("/root/repo/build/tests/test_variants[1]_include.cmake")
include("/root/repo/build/tests/test_io[1]_include.cmake")
include("/root/repo/build/tests/test_sweeps[1]_include.cmake")
include("/root/repo/build/tests/test_layout[1]_include.cmake")
include("/root/repo/build/tests/test_dissemination[1]_include.cmake")
include("/root/repo/build/tests/test_multilevel[1]_include.cmake")
include("/root/repo/build/tests/test_emulation[1]_include.cmake")
include("/root/repo/build/tests/test_differential[1]_include.cmake")
include("/root/repo/build/tests/test_lemma213[1]_include.cmake")
include("/root/repo/build/tests/test_paper_structure[1]_include.cmake")
include("/root/repo/build/tests/test_edge_cases[1]_include.cmake")
include("/root/repo/build/tests/test_more_coverage[1]_include.cmake")
include("/root/repo/build/tests/test_final_properties[1]_include.cmake")
