#!/usr/bin/env python3
"""Audit sanitizers/*.supp against the built binaries.

Suppression entries rot: a symbol gets renamed, a third-party library is
dropped, and the stale pattern silently keeps masking a whole class of
reports. This script fails (exit 1) when a suppression names a symbol or
library that no binary in the build directory can match, so CI notices
the rot instead of shipping it.

Matching rules, per non-comment `kind:pattern` line:

  * patterns naming a shared object (contain `.so`) must match a library
    in some executable's dynamic dependencies (ldd);
  * other patterns are symbol/path globs: the longest literal fragment
    (split on `*`) must appear in some executable's demangled symbol
    table (nm -C), falling back to a raw `strings` scan for binaries nm
    cannot read.

All four .supp files are currently comment-only, so the normal outcome
is "0 entries — nothing to audit"; the teeth only bite once someone adds
an entry.

Usage: audit_suppressions.py --build-dir build [--supp-dir sanitizers]
"""

import argparse
import os
import re
import subprocess
import sys

ENTRY_RE = re.compile(r"^(?P<kind>[A-Za-z_][\w-]*):(?P<pattern>.+)$")


def parse_entries(supp_path):
    entries = []
    with open(supp_path, encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            m = ENTRY_RE.match(line)
            if m is None:
                entries.append((lineno, "malformed", line))
                continue
            entries.append((lineno, m.group("kind"), m.group("pattern")))
    return entries


def find_executables(build_dir):
    exes = []
    for root, dirs, files in os.walk(build_dir):
        dirs[:] = [d for d in dirs if d != "CMakeFiles"]
        for name in files:
            path = os.path.join(root, name)
            if not os.access(path, os.X_OK) or os.path.isdir(path):
                continue
            try:
                with open(path, "rb") as fh:
                    if fh.read(4) == b"\x7fELF":
                        exes.append(path)
            except OSError:
                continue
    return exes


def run_tool(args):
    try:
        out = subprocess.run(
            args, capture_output=True, text=True, errors="replace", check=False
        )
        return out.stdout
    except FileNotFoundError:
        return ""


def longest_literal(pattern):
    fragments = [f for f in pattern.split("*") if f]
    return max(fragments, key=len) if fragments else ""


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build-dir", required=True)
    ap.add_argument("--supp-dir", default=os.path.dirname(os.path.abspath(__file__)))
    args = ap.parse_args()

    supp_files = sorted(
        os.path.join(args.supp_dir, f)
        for f in os.listdir(args.supp_dir)
        if f.endswith(".supp")
    )
    if not supp_files:
        print("audit_suppressions: no .supp files found", file=sys.stderr)
        return 1

    all_entries = []
    for supp in supp_files:
        for lineno, kind, pattern in parse_entries(supp):
            all_entries.append((supp, lineno, kind, pattern))

    if not all_entries:
        print(
            f"audit_suppressions: {len(supp_files)} suppression files, "
            "0 entries — nothing to audit"
        )
        return 0

    exes = find_executables(args.build_dir)
    if not exes:
        print(
            f"audit_suppressions: no executables under {args.build_dir}; "
            "build before auditing",
            file=sys.stderr,
        )
        return 1

    # Corpora are built lazily: most audits have few entries.
    ldd_corpus = None
    sym_corpus = None

    def libraries():
        nonlocal ldd_corpus
        if ldd_corpus is None:
            ldd_corpus = "\n".join(run_tool(["ldd", e]) for e in exes)
        return ldd_corpus

    def symbols():
        nonlocal sym_corpus
        if sym_corpus is None:
            parts = []
            for e in exes:
                text = run_tool(["nm", "-C", e])
                if not text:
                    text = run_tool(["strings", e])
                parts.append(text)
            sym_corpus = "\n".join(parts)
        return sym_corpus

    stale = []
    for supp, lineno, kind, pattern in all_entries:
        if kind == "malformed":
            stale.append((supp, lineno, pattern, "not a kind:pattern line"))
            continue
        if ".so" in pattern:
            needle = longest_literal(pattern)
            if needle and needle not in libraries():
                stale.append(
                    (supp, lineno, f"{kind}:{pattern}",
                     "library not in any binary's dependencies")
                )
        else:
            needle = longest_literal(pattern)
            if not needle:
                # A bare `kind:*` suppresses everything; always flag it.
                stale.append(
                    (supp, lineno, f"{kind}:{pattern}",
                     "pattern has no literal fragment (matches everything)")
                )
            elif needle not in symbols():
                stale.append(
                    (supp, lineno, f"{kind}:{pattern}",
                     "no binary defines a matching symbol")
                )

    checked = len(all_entries)
    if stale:
        print(
            f"audit_suppressions: {len(stale)}/{checked} entries are stale:",
            file=sys.stderr,
        )
        for supp, lineno, entry, reason in stale:
            rel = os.path.relpath(supp)
            print(f"  {rel}:{lineno}: {entry} — {reason}", file=sys.stderr)
        return 1

    print(
        f"audit_suppressions: {checked} entries across {len(supp_files)} "
        f"files all match {len(exes)} binaries"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
