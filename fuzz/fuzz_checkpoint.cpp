// Snapshot-decoder fuzzer: the checkpoint format is the one place the
// library parses bytes it may not have written itself (a resumed solve
// reads whatever is on disk after a crash), so the decoder must treat
// the input as hostile. Two modes per input:
//
//   * raw decode — arbitrary bytes through decode_snapshot: the only
//     acceptable outcomes are a fully validated snapshot or a
//     SnapshotError; any other exception, crash, or sanitizer report
//     is a bug. A successful decode must re-encode to bytes that decode
//     again to the same state (the format round-trips).
//   * mutate round-trip — the input also seeds a VALID snapshot, which
//     is encoded and then damaged with one input-chosen byte flip or
//     truncation; the decoder must reject the damaged stream with a
//     structured SnapshotError (the checksum or a bounds check fires),
//     never return a half-decoded state.
#include <cstdint>
#include <cstdlib>
#include <span>
#include <vector>

#include "cut/branch_bound.hpp"
#include "robust/checkpoint.hpp"

namespace {

using bfly::robust::BisectionSnapshot;

bool states_equal(const bfly::cut::BranchBoundSearchState& a,
                  const bfly::cut::BranchBoundSearchState& b) {
  return a.seed_depth == b.seed_depth && a.prefix_done == b.prefix_done &&
         a.incumbent_capacity == b.incumbent_capacity &&
         a.incumbent_sides == b.incumbent_sides &&
         a.nodes_spent == b.nodes_spent && a.symmetry_mode == b.symmetry_mode &&
         a.tt_hits == b.tt_hits && a.tt_stores == b.tt_stores;
}

/// Deterministically derives a structurally valid snapshot from the
/// fuzz input, so the mutate mode damages realistic streams rather
/// than the decoder's early reject paths only.
BisectionSnapshot derive_snapshot(const std::uint8_t* data,
                                  std::size_t size) {
  BisectionSnapshot snap;
  std::uint64_t mix = 0x9e3779b97f4a7c15ull;
  for (std::size_t i = 0; i < size; ++i) {
    mix = (mix ^ data[i]) * 0x100000001b3ull;
  }
  snap.fingerprint = mix | 1u;  // nonzero
  auto& st = snap.state;
  st.seed_depth = static_cast<unsigned>(mix % 17u);
  st.prefix_done.assign(1 + (mix >> 8) % 64u, 0);
  for (std::size_t i = 0; i < st.prefix_done.size(); ++i) {
    st.prefix_done[i] = static_cast<std::uint8_t>((mix >> (i % 32u)) & 1u);
  }
  if ((mix & 2u) != 0) {
    st.incumbent_capacity = (mix >> 16) % 1000u;
    st.incumbent_sides.assign(2 + (mix >> 24) % 62u, 0);
    for (std::size_t i = 0; i < st.incumbent_sides.size(); ++i) {
      st.incumbent_sides[i] =
          static_cast<std::uint8_t>((mix >> ((i + 7) % 32u)) & 1u);
    }
  }
  st.nodes_spent = mix >> 3;
  st.symmetry_mode = static_cast<std::uint8_t>((mix >> 5) & 1u);
  if (st.symmetry_mode != 0) {
    st.tt_hits = (mix >> 11) % 100000u;
    st.tt_stores = (mix >> 21) % 100000u;
  }
  return snap;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  // Mode 1: the raw bytes are the snapshot file.
  try {
    const BisectionSnapshot snap =
        bfly::robust::decode_snapshot({data, size});
    // The decoder accepted it, so it must be canonical: encoding the
    // decoded state and decoding again is the identity.
    const auto re = bfly::robust::encode_snapshot(snap);
    const BisectionSnapshot again = bfly::robust::decode_snapshot(re);
    if (again.fingerprint != snap.fingerprint ||
        !states_equal(again.state, snap.state)) {
      std::abort();
    }
  } catch (const bfly::robust::SnapshotError&) {
    // Structured rejection is the contract.
  }

  // Mode 2: damage a valid stream at an input-chosen point.
  if (size < 2) return 0;
  const BisectionSnapshot valid = derive_snapshot(data, size);
  const auto bytes = bfly::robust::encode_snapshot(valid);
  try {
    if (states_equal(bfly::robust::decode_snapshot(bytes).state,
                     valid.state) == false) {
      std::abort();  // clean round-trip must be lossless
    }
  } catch (const bfly::robust::SnapshotError&) {
    std::abort();  // a freshly encoded snapshot must decode
  }

  const std::size_t pos = data[0] % bytes.size();
  if ((data[1] & 1u) != 0) {
    // Single byte flip (guaranteed to change the byte).
    auto damaged = bytes;
    damaged[pos] ^= static_cast<std::uint8_t>(data[1] | 1u);
    try {
      (void)bfly::robust::decode_snapshot(damaged);
      std::abort();  // corruption slipped past the checksum
    } catch (const bfly::robust::SnapshotError&) {
    }
  } else {
    // Truncation to a strict prefix.
    try {
      (void)bfly::robust::decode_snapshot(
          std::span<const std::uint8_t>(bytes.data(), pos));
      std::abort();  // a strict prefix decoded as complete
    } catch (const bfly::robust::SnapshotError&) {
    }
  }
  return 0;
}
