// Traffic-spec + simulator fuzzer: the input bytes are thrown at the
// traffic layer twice.
//
// First as hostile text: parse_traffic_spec must either reject with
// TrafficError or produce a spec whose canonical text round-trips
// (parse(to_string(spec)) == spec) — any other exception, crash, or a
// spec that does not survive its own rendering is a trap.
//
// Then as a structured engine run: a few bytes pick the topology
// (B8/B16, memoized), pattern, ppn (clamped small), seed, virtual
// channels, per-queue capacity, and max_steps; the decoded scenario is
// generated against the constructive witness cut and run through
// SimEngine. Contracts on every successful run:
//
//   * conservation — every packet delivered, steps >= makespan;
//   * bound domination — makespan >= the certified per-instance lower
//     bound (directional cut, longest route, static congestion). C14's
//     P/(4·BW) is deliberately NOT trapped here: it is an expectation-
//     level claim, and a degenerate fuzzed workload (say, every packet
//     sent to its own node) legally beats it;
//   * PreconditionError is allowed ONLY for configs that can legally
//     stall or overrun (bounded capacity without enough stage-weighted
//     channels, or a max_steps budget); an unbounded single-channel run
//     must always drain.
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <string>

#include "core/error.hpp"
#include "cut/constructive.hpp"
#include "routing/sim_engine.hpp"
#include "routing/traffic.hpp"
#include "topology/butterfly.hpp"

namespace {

using namespace bfly;

void check_roundtrip(const routing::TrafficSpec& spec) {
  const std::string text = routing::to_string(spec);
  const routing::TrafficSpec back = routing::parse_traffic_spec(text);
  if (back.pattern != spec.pattern ||
      back.packets_per_node != spec.packets_per_node ||
      back.seed != spec.seed ||
      (spec.pattern == routing::TrafficPattern::kHotspot &&
       back.hotspot_percent != spec.hotspot_percent)) {
    std::abort();
  }
}

void fuzz_parser(const std::uint8_t* data, std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  routing::TrafficSpec spec;
  try {
    spec = routing::parse_traffic_spec(text);
  } catch (const routing::TrafficError&) {
    return;  // hostile text rejected as data — the expected outcome
  }
  check_roundtrip(spec);
}

struct Topo {
  topo::Butterfly bf;
  cut::CutResult cut;
  explicit Topo(std::uint32_t n)
      : bf(n), cut(cut::column_split_bisection(bf)) {}
};

void fuzz_engine(const std::uint8_t* data, std::size_t size) {
  if (size < 6) return;
  static const Topo b8(8);
  static const Topo b16(16);
  const Topo& topo = (data[0] & 1u) ? b16 : b8;

  routing::TrafficSpec spec;
  constexpr routing::TrafficPattern kPatterns[] = {
      routing::TrafficPattern::kUniform, routing::TrafficPattern::kBitReversal,
      routing::TrafficPattern::kTranspose, routing::TrafficPattern::kHotspot,
      routing::TrafficPattern::kCutSaturating};
  spec.pattern = kPatterns[data[1] % 5u];
  spec.packets_per_node = 1u + (data[2] % 4u);
  spec.seed = static_cast<std::uint64_t>(data[3]) << 8 | data[0];
  spec.hotspot_percent = data[4] % 101u;
  check_roundtrip(spec);

  routing::SimOptions opts;
  opts.num_threads = 1u + (data[4] % 3u);
  opts.vcs_per_link = 1u + (data[5] % 4u);
  opts.vc_capacity = data[5] >> 4 >= 8u ? 0u : (data[5] >> 4) % 4u;
  if ((data[1] & 0x80u) != 0) opts.max_steps = 16;

  const auto traffic = routing::make_traffic(topo.bf, spec, &topo.cut.sides);
  routing::SimEngine eng(topo.bf.graph(), opts);
  if (opts.vcs_per_link > 1) {
    eng.load(traffic.paths, routing::stage_weighted_vcs(
                                topo.bf, traffic.paths, opts.vcs_per_link));
  } else {
    eng.load(traffic.paths);
  }

  routing::EngineStats st;
  try {
    st = eng.run();
  } catch (const PreconditionError&) {
    // Legal only for configs that can stall (bounded capacity) or trip
    // the step budget; an unbounded run without a budget must drain.
    if (opts.vc_capacity == 0 && opts.max_steps == 0) std::abort();
    return;
  }

  if (st.delivered != st.num_packets ||
      st.num_packets != traffic.paths.size() ||
      st.steps < st.makespan) {
    std::abort();
  }
  const auto bound = routing::traffic_bound(traffic, topo.cut.capacity,
                                            st.max_link_load);
  if (static_cast<double>(st.makespan) < bound.lower_bound) std::abort();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  fuzz_parser(data, size);
  fuzz_engine(data, size);
  return 0;
}
