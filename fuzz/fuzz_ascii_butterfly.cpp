// Fuzz harness for the butterfly ASCII parser (io/ascii_butterfly.hpp).
//
// Two decode paths:
//   * odd first byte — remaining bytes go to the parser verbatim;
//   * even first byte — start from a VALID rendering of B_{2^d}
//     (d from the second byte) and apply byte-driven single-character
//     corruptions. Near-valid inputs exercise the deep consistency
//     checks (marker/mask agreement, level numbering, trailers) that
//     pure garbage never reaches.
//
// Contract under test: any input either parses into an (n, dims) pair
// that is internally consistent and re-renders/re-parses to the same
// pair, or throws ParseError. Crash/UB/other exception = finding.
#include <cstdint>
#include <cstdlib>
#include <string>

#include "core/error.hpp"
#include "io/ascii_butterfly.hpp"
#include "topology/butterfly.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size == 0) return 0;
  std::string text;
  if ((data[0] & 1u) != 0) {
    text.assign(reinterpret_cast<const char*>(data + 1), size - 1);
  } else {
    const std::uint32_t dims = size >= 2 ? 1u + (data[1] % 5u) : 2u;
    const bfly::topo::Butterfly bf(1u << dims);
    text = bfly::io::render_butterfly_ascii(bf);
    // Each subsequent byte pair corrupts one character.
    for (std::size_t i = 2; i + 1 < size; i += 2) {
      if (text.empty()) break;
      const std::size_t pos = (static_cast<std::size_t>(data[i]) * 257u +
                               static_cast<std::size_t>(i)) %
                              text.size();
      text[pos] = static_cast<char>(data[i + 1]);
    }
  }
  try {
    const bfly::io::AsciiButterflyInfo info =
        bfly::io::parse_butterfly_ascii(text);
    // Accepted input: the declared shape must be internally consistent...
    if (info.dims == 0 || info.dims > 24 ||
        info.n != (1u << info.dims)) {
      std::abort();
    }
    // ...and, at constructible sizes, round-trip through a real network.
    if (info.dims <= 6) {
      const bfly::topo::Butterfly bf(info.n);
      const bfly::io::AsciiButterflyInfo again =
          bfly::io::parse_butterfly_ascii(
              bfly::io::render_butterfly_ascii(bf));
      if (again.n != info.n || again.dims != info.dims) std::abort();
    }
  } catch (const bfly::io::ParseError&) {
    // Expected rejection path.
  }
  return 0;
}
