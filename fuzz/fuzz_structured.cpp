// Structured fuzzer: decodes the input bytes into a (topology, solver,
// seed) triple, runs the chosen bisection solver with a tiny budget, and
// checks the library's cross-solver contracts:
//
//   * every solver's result passes validate_cut with the bisection
//     constraint enforced;
//   * branch-and-bound (seeded with the heuristic's capacity as an
//     initial bound) proves an exact optimum that is never beaten by any
//     heuristic — if a heuristic ever reports a capacity below the
//     proven optimum, one of the two solvers miscounted a cut.
//
// The instances are small enough (4–32 nodes) that the exact solver is
// cheap, so each fuzz input exercises the full decode → solve → verify
// pipeline in well under a millisecond.
#include <cstdint>
#include <cstdlib>
#include <map>
#include <utility>

#include "core/error.hpp"
#include "core/graph.hpp"
#include "core/simd.hpp"
#include "cut/bisection.hpp"
#include "cut/branch_bound.hpp"
#include "cut/fiduccia_mattheyses.hpp"
#include "cut/kernighan_lin.hpp"
#include "cut/multilevel.hpp"
#include "cut/simulated_annealing.hpp"
#include "topology/butterfly.hpp"
#include "topology/ccc.hpp"
#include "topology/hypercube.hpp"
#include "topology/wrapped_butterfly.hpp"

namespace {

using bfly::Graph;
using bfly::cut::CutResult;

/// Builds the decoded topology. All variants have an even node count, so
/// a perfect bisection always exists.
Graph build_topology(std::uint8_t family, std::uint8_t size_sel) {
  switch (family % 4u) {
    case 0:  // B_2, B_4, B_8: 4, 12, 32 nodes
      return bfly::topo::Butterfly(2u << (size_sel % 3u)).graph();
    case 1:  // wrapped B_4, B_8: 8, 24 nodes
      return bfly::topo::WrappedButterfly(4u << (size_sel % 2u)).graph();
    case 2:  // CCC_2, CCC_3: 8, 24 nodes
      return bfly::topo::CubeConnectedCycles(4u << (size_sel % 2u)).graph();
    default:  // Q_1..Q_4: 2..16 nodes
      return bfly::topo::Hypercube(1u + (size_sel % 4u)).graph();
  }
}

CutResult run_solver(const Graph& g, std::uint8_t which, std::uint64_t seed) {
  switch (which % 4u) {
    case 0: {
      bfly::cut::FiducciaMattheysesOptions o;
      o.restarts = 2;
      o.max_passes = 4;
      o.seed = seed;
      return bfly::cut::min_bisection_fiduccia_mattheyses(g, o);
    }
    case 1: {
      bfly::cut::KernighanLinOptions o;
      o.restarts = 2;
      o.max_passes = 4;
      o.seed = seed;
      return bfly::cut::min_bisection_kernighan_lin(g, o);
    }
    case 2: {
      bfly::cut::SimulatedAnnealingOptions o;
      o.restarts = 1;
      o.steps_per_temperature = 16;
      o.cooling = 0.7;
      o.seed = seed;
      return bfly::cut::min_bisection_simulated_annealing(g, o);
    }
    default: {
      bfly::cut::MultilevelOptions o;
      o.coarsen_to = 8;
      o.initial_tries = 4;
      o.refine_passes = 4;
      o.cycles = 1;
      o.seed = seed;
      return bfly::cut::min_bisection_multilevel(g, o);
    }
  }
}

/// Exact bisection widths, memoized per decoded instance: the topology is
/// a pure function of (family, size_sel), so the branch-and-bound price
/// is paid once per shape across the whole fuzz run.
std::size_t exact_capacity(std::uint8_t family, std::uint8_t size_sel,
                           const Graph& g, std::size_t heuristic_cap) {
  static std::map<std::pair<unsigned, unsigned>, std::size_t> cache;
  const std::pair<unsigned, unsigned> key{family % 4u,
                                          static_cast<unsigned>(size_sel)};
  const auto it = cache.find(key);
  if (it != cache.end()) return it->second;
  bfly::cut::BranchBoundOptions o;
  o.initial_bound = heuristic_cap + 1;  // exclusive bound; keeps it cheap
  const CutResult exact = bfly::cut::min_bisection_branch_bound(g, o);
  if (exact.exactness != bfly::cut::Exactness::kExact) std::abort();
  bfly::cut::validate_cut(g, exact, /*require_bisection=*/true);
  cache.emplace(key, exact.capacity);
  return exact.capacity;
}

/// SIMD kernel differential on fuzz-shaped inputs: every dispatch level
/// this machine supports must agree with the scalar reference bit for
/// bit on the branching scan and the bound histogram — the two kernels
/// with internal tier gates (packed vs wide keys, field-accumulator vs
/// movemask vs sparse-delegation) that byte-driven sizes and densities
/// are good at straddling.
void check_simd_differential(std::uint64_t seed, std::uint8_t shape) {
  const std::size_t nbits = 1u + (static_cast<std::size_t>(shape) * 7u) % 300u;
  // One value bound per histogram tier: field accumulator (<= 4),
  // movemask (5..16), scalar fallback / wide select keys (> 1023).
  const std::uint32_t kBounds[] = {4u, 13u, 1500u};
  const std::uint32_t max_value = kBounds[shape % 3u];
  const std::size_t words = (nbits + 63) / 64;
  std::vector<std::uint64_t> mask(words, 0);
  std::vector<std::uint32_t> a0(nbits), a1(nbits), deg(nbits);
  std::uint64_t x = seed | 1u;  // splitmix64 stream from the fuzz seed
  const auto next = [&x] {
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  };
  for (std::size_t i = 0; i < nbits; ++i) {
    if ((next() & 3u) != 0) mask[i / 64] |= std::uint64_t{1} << (i % 64);
    a0[i] = static_cast<std::uint32_t>(next() % (max_value + 1));
    a1[i] = static_cast<std::uint32_t>(next() % (max_value + 1));
    deg[i] = static_cast<std::uint32_t>(next() % (max_value + 1));
  }
  using bfly::simd::DispatchLevel;
  const auto& ref = bfly::simd::kernels_for(DispatchLevel::kScalar);
  const std::size_t want_sel =
      ref.select_max_key(mask.data(), nbits, a0.data(), a1.data(), deg.data(),
                         max_value);
  std::vector<std::uint32_t> wp(2, 0), wb0(max_value + 1, 0),
      wb1(max_value + 1, 0);
  ref.diff_histogram(mask.data(), nbits, a0.data(), a1.data(), max_value,
                     wp.data(), wb0.data(), wb1.data());
  for (const DispatchLevel level : {DispatchLevel::kAvx2,
                                    DispatchLevel::kAvx512}) {
    if (bfly::simd::detected_level() < level) break;
    const auto& kt = bfly::simd::kernels_for(level);
    if (kt.select_max_key(mask.data(), nbits, a0.data(), a1.data(), deg.data(),
                          max_value) != want_sel) {
      std::abort();
    }
    std::vector<std::uint32_t> gp(2, 0), gb0(max_value + 1, 0),
        gb1(max_value + 1, 0);
    kt.diff_histogram(mask.data(), nbits, a0.data(), a1.data(), max_value,
                      gp.data(), gb0.data(), gb1.data());
    if (gp != wp || gb0 != wb0 || gb1 != wb1) std::abort();
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size < 3) return 0;
  const std::uint8_t family = data[0];
  const std::uint8_t size_sel = data[1];
  const std::uint8_t which = data[2];
  std::uint64_t seed = 0;
  for (std::size_t i = 3; i < size && i < 11; ++i) {
    seed = (seed << 8) | data[i];
  }

  const Graph g = build_topology(family, size_sel);
  const CutResult heuristic = run_solver(g, which, seed);

  // Contract 1: whatever the heuristic returns is a genuine bisection
  // whose reported capacity matches a recount.
  bfly::cut::validate_cut(g, heuristic, /*require_bisection=*/true);

  // Contract 2: no heuristic beats the proven optimum. The exact solver
  // is seeded with the heuristic's capacity, so if the heuristic's count
  // were optimistic (too low), branch-and-bound would fail to reproduce
  // it and the cached optimum would exceed it — caught right here.
  const std::size_t opt = exact_capacity(family, size_sel, g,
                                         heuristic.capacity);
  if (heuristic.capacity < opt) std::abort();

  // Contract 3: the dispatched SIMD kernels are level-invariant on this
  // input's derived masks and counters.
  check_simd_differential(seed, static_cast<std::uint8_t>(family ^ size_sel ^
                                                          which));
  return 0;
}
