// Line-protocol fuzzer: the service parser is the daemon's untrusted
// surface — every byte of every request line comes straight from a
// client socket/pipe. The only acceptable outcomes for arbitrary input
// are a syntactically valid Request or a typed ProtocolError; any other
// exception, crash, unbounded allocation, or sanitizer report is a bug.
//
// A successful parse is pushed one step further: the Request must be
// internally consistent (ids within the protocol charset and length
// cap, deadline within its ceiling), and — when it names a valid
// instance small enough for the canonicalizer — its canonical key must
// be stable under re-canonicalization (canonical_mask is idempotent).
// The cache-entry decoder is exercised on the same bytes too, since a
// hostile .bfc file is the same threat class.
#include <cctype>
#include <cstdint>
#include <span>
#include <string_view>

#include "robust/checkpoint.hpp"
#include "service/cache.hpp"
#include "service/request.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  namespace svc = bfly::service;
  const std::string_view line(reinterpret_cast<const char*>(data), size);

  try {
    const svc::Request req = svc::parse_request(line);

    // Parser post-conditions: everything it accepted is well-formed.
    if (req.id.size() > 64) __builtin_trap();
    for (const char c : req.id) {
      if ((std::isalnum(static_cast<unsigned char>(c)) == 0) && c != '.' &&
          c != '_' && c != ':' && c != '-') {
        __builtin_trap();
      }
    }
    if (req.deadline_seconds < 0.0 || req.deadline_seconds > 86'400.0) {
      __builtin_trap();
    }

    // Semantic layer: key derivation must be total and idempotent on
    // every instance the service would accept.
    if (svc::valid_instance(req.family, req.n)) {
      const std::uint64_t nodes = svc::instance_nodes(req.family, req.n);
      const bool mask_ok =
          req.kind != svc::QueryKind::kBoundary ||
          (nodes <= 64 && (nodes == 64 || (req.subset_mask >> nodes) == 0));
      if (mask_ok && nodes <= 64) {
        const std::uint64_t key = svc::canonical_key(req);
        svc::Request canon = req;
        if (req.kind == svc::QueryKind::kBoundary) {
          canon.subset_mask =
              svc::canonical_mask(req.family, req.n, req.subset_mask);
        }
        if (svc::canonical_key(canon) != key) __builtin_trap();
      }
    }
  } catch (const svc::ProtocolError&) {
    // the typed rejection path — expected for most inputs
  }

  // Same bytes through the cache-entry decoder: decode fully or throw
  // the structured SnapshotError, nothing else.
  try {
    const svc::CacheEntry e =
        svc::decode_entry(std::span<const std::uint8_t>(data, size));
    // A decoded entry re-encodes to bytes that decode identically.
    const svc::CacheEntry again = svc::decode_entry(svc::encode_entry(e));
    if (again.key != e.key || again.value != e.value ||
        again.exact != e.exact || again.mask != e.mask || again.n != e.n) {
      __builtin_trap();
    }
  } catch (const bfly::robust::SnapshotError&) {
    // structured rejection — expected
  }
  return 0;
}
