// Standalone driver for the fuzz harnesses when libFuzzer is unavailable
// (GCC builds, or Clang without -DBFLY_FUZZ_LIBFUZZER).
//
// Modes:
//   fuzz_x file1 [file2 ...]    replay corpus files through the harness
//   fuzz_x --smoke N [maxlen]   N deterministic pseudo-random inputs with
//                               lengths in [0, maxlen) (default 512)
//
// The smoke mode is what `ctest -L fuzz` and CI run: inputs derive from a
// fixed SplitMix64 stream, so a smoke run is reproducible byte-for-byte
// and a crash can be replayed by rerunning the same command under a
// debugger. Exit code is nonzero if the harness throws anything other
// than the contracts layer's PreconditionError (which harnesses are
// expected to catch themselves) or crashes the process.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

// Mirrors core/rng.hpp's SplitMix64; duplicated so the driver stays a
// single freestanding translation unit with no library dependencies.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

int run_smoke(std::uint64_t iterations, std::size_t max_len) {
  SplitMix64 rng(0xf0220ull);  // fixed: smoke runs are reproducible
  std::vector<std::uint8_t> buf;
  for (std::uint64_t i = 0; i < iterations; ++i) {
    const std::size_t len = static_cast<std::size_t>(
        rng.next() % static_cast<std::uint64_t>(max_len));
    buf.resize(len);
    for (std::size_t j = 0; j < len; ++j) {
      buf[j] = static_cast<std::uint8_t>(rng.next());
    }
    LLVMFuzzerTestOneInput(buf.data(), buf.size());
  }
  std::printf("smoke ok: %llu inputs, max length %zu\n",
              static_cast<unsigned long long>(iterations), max_len);
  return 0;
}

int run_file(const char* path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return 1;
  }
  std::vector<char> data((std::istreambuf_iterator<char>(is)),
                         std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(reinterpret_cast<const std::uint8_t*>(data.data()),
                         data.size());
  std::printf("ok: %s (%zu bytes)\n", path, data.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "--smoke") == 0) {
    const std::uint64_t iterations =
        argc >= 3 ? std::strtoull(argv[2], nullptr, 10) : 100000ull;
    const std::size_t max_len =
        argc >= 4 ? static_cast<std::size_t>(
                        std::strtoull(argv[3], nullptr, 10))
                  : 512;
    if (iterations == 0 || max_len == 0) {
      std::fprintf(stderr, "usage: %s --smoke N [maxlen]\n", argv[0]);
      return 2;
    }
    return run_smoke(iterations, max_len);
  }
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s --smoke N [maxlen] | file...\n",
                 argv[0]);
    return 2;
  }
  for (int i = 1; i < argc; ++i) {
    const int rc = run_file(argv[i]);
    if (rc != 0) return rc;
  }
  return 0;
}
