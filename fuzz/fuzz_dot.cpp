// Fuzz harness for the DOT reader (io/dot.hpp), the library's main
// untrusted-input surface.
//
// Two decode paths keep coverage high with byte-level mutation:
//   * odd first byte — the remaining bytes are fed to the parser verbatim
//     (exercises the tokenizer on arbitrary garbage);
//   * even first byte — each byte indexes a dictionary of DOT fragments,
//     so random byte strings become structurally plausible documents that
//     reach deep into the statement grammar.
//
// Contract under test: every input either parses into a ParsedDot whose
// graph passes deep validation and survives a write/re-read round trip,
// or throws ParseError/PreconditionError. Anything else (crash, UB,
// other exception) is a finding.
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <string>

#include "core/error.hpp"
#include "io/dot.hpp"

namespace {

const char* const kDictionary[] = {
    "graph ",   "G ",        "{ ",        "} ",      "n0",     "n1",
    "n2",       "n3",        " -- ",      "; ",      "[",      "]",
    "label=",   "\"x\"",     "\"",        ",",       " ",      "\n",
    "color=red", "# c\n",    "// c\n",    "_a",      "9",      "\\",
};
constexpr std::size_t kDictSize = sizeof(kDictionary) / sizeof(kDictionary[0]);

std::string decode(const std::uint8_t* data, std::size_t size) {
  if (size == 0) return {};
  std::string text;
  if ((data[0] & 1u) != 0) {
    text.assign(reinterpret_cast<const char*>(data + 1), size - 1);
  } else {
    text.reserve(size * 4);
    for (std::size_t i = 1; i < size; ++i) {
      text += kDictionary[data[i] % kDictSize];
    }
  }
  return text;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text = decode(data, size);
  bfly::io::DotReadOptions opts;
  opts.max_nodes = 1u << 12;  // keep single inputs cheap
  opts.max_edges = 1u << 14;
  try {
    const bfly::io::ParsedDot parsed = bfly::io::read_dot_string(text, opts);
    // Accepted input: the graph must satisfy every CSR invariant and
    // survive an exact write/re-read round trip.
    parsed.graph.validate();
    std::ostringstream out;
    bfly::io::write_dot(out, parsed.graph);
    const bfly::io::ParsedDot again =
        bfly::io::read_dot_string(out.str(), opts);
    const auto e0 = parsed.graph.edges();
    const auto e1 = again.graph.edges();
    if (again.graph.num_nodes() != parsed.graph.num_nodes() ||
        !std::equal(e0.begin(), e0.end(), e1.begin(), e1.end())) {
      std::abort();  // round trip changed the graph: a real bug
    }
  } catch (const bfly::PreconditionError&) {
    // Expected rejection path (ParseError derives from it).
  }
  return 0;
}
