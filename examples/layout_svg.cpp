// layout_svg — render the Theta(n^2) butterfly layout as an SVG file.
//
// Usage: layout_svg [n] [output.svg]
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "layout/butterfly_layout.hpp"
#include "layout/svg.hpp"
#include "topology/butterfly.hpp"

int main(int argc, char** argv) {
  using namespace bfly;
  const std::uint32_t n =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 8;
  const std::string out = argc > 2 ? argv[2] : "butterfly_layout.svg";

  try {
    const topo::Butterfly bf(n);
    const auto layout = layout::layout_butterfly(bf);
    layout::validate_layout(bf.graph(), layout);
    std::ofstream os(out);
    if (!os) {
      std::cerr << "cannot open " << out << "\n";
      return 1;
    }
    layout::write_svg(os, layout);
    std::cout << "B" << n << " layout: " << layout.width() << " x "
              << layout.height() << " = " << layout.area()
              << " grid units -> " << out << "\n";
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
