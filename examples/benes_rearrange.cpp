// benes_rearrange — route an arbitrary permutation through the Beneš
// network with Waksman's looping algorithm and display the node-disjoint
// paths level by level; then fold them into the butterfly via the
// Lemma 2.5 embedding and confirm edge-disjointness there.
//
// Usage: benes_rearrange [n] [seed]
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <numeric>
#include <set>

#include "core/rng.hpp"
#include "embed/factory.hpp"
#include "routing/benes_route.hpp"
#include "topology/benes.hpp"
#include "topology/butterfly.hpp"

int main(int argc, char** argv) {
  using namespace bfly;
  const std::uint32_t n =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 8;
  const std::uint64_t seed =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 7;

  try {
    const topo::Benes benes(n);
    Rng rng(seed);
    std::vector<std::uint32_t> perm(n);
    std::iota(perm.begin(), perm.end(), 0);
    shuffle(perm, rng);

    std::cout << "Beneš_" << benes.dims() << " (" << n
              << " columns), permutation:";
    for (std::uint32_t i = 0; i < n; ++i) {
      std::cout << " " << i << "->" << perm[i];
    }
    std::cout << "\n\nWaksman looping routes (column per level):\n";

    const auto routing = routing::route_permutation(benes, perm);
    for (std::uint32_t s = 0; s < n; ++s) {
      std::cout << "signal " << s << ":";
      for (const NodeId v : routing.paths[s]) {
        std::cout << " " << benes.column(v);
      }
      std::cout << "\n";
    }

    // Fold into the butterfly B_{2n} (Lemma 2.5) and check
    // edge-disjointness of the images.
    const topo::Butterfly bf(2 * n);
    const auto fold = embed::benes_into_bn(bf);
    std::set<std::pair<NodeId, NodeId>> used;
    bool disjoint = true;
    for (const auto& gpath : routing.paths) {
      for (std::size_t i = 0; i + 1 < gpath.size(); ++i) {
        const NodeId a = gpath[i], b = gpath[i + 1];
        EdgeId ge = kInvalidEdge;
        const auto nbrs = fold.guest.neighbors(a);
        const auto eids = fold.guest.incident_edges(a);
        for (std::size_t x = 0; x < nbrs.size(); ++x) {
          if (nbrs[x] == b) {
            ge = eids[x];
            break;
          }
        }
        for (std::size_t h = 0; h + 1 < fold.emb.paths[ge].size(); ++h) {
          auto key = std::minmax(fold.emb.paths[ge][h],
                                 fold.emb.paths[ge][h + 1]);
          if (!used.insert({key.first, key.second}).second) {
            disjoint = false;
          }
        }
      }
    }
    std::cout << "\nFolded into B" << 2 * n
              << " (Lemma 2.5): " << used.size()
              << " butterfly edges used, edge-disjoint: "
              << (disjoint ? "yes" : "NO") << "\n";
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
