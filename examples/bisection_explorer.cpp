// bisection_explorer — compute bisections of any supported network with
// any solver in the library.
//
// Usage: bisection_explorer [family] [n] [solver]
//   family: bn | wn | ccc | hypercube | benes | mos   (default bn)
//   n:      power of two (default 16); for mos, the side j of MOS_{j,j}
//   solver: exact | bb | kl | fm | sa | spectral | ml | portfolio |
//           folklore   (default fm; portfolio races everything at
//           hardware concurrency and prints per-solver telemetry)
#include <cstdlib>
#include <iostream>
#include <string>

#include "cut/branch_bound.hpp"
#include "cut/brute_force.hpp"
#include "cut/constructive.hpp"
#include "cut/fiduccia_mattheyses.hpp"
#include "cut/kernighan_lin.hpp"
#include "cut/multilevel.hpp"
#include "cut/portfolio.hpp"
#include "cut/simulated_annealing.hpp"
#include "cut/spectral_bisection.hpp"
#include "topology/benes.hpp"
#include "topology/butterfly.hpp"
#include "topology/ccc.hpp"
#include "topology/hypercube.hpp"
#include "topology/mesh_of_stars.hpp"
#include "topology/wrapped_butterfly.hpp"

namespace {

using namespace bfly;

cut::CutResult solve(const Graph& g, const std::string& solver) {
  if (solver == "exact") return cut::min_bisection_exhaustive(g);
  if (solver == "bb") return cut::min_bisection_branch_bound(g);
  if (solver == "kl") return cut::min_bisection_kernighan_lin(g);
  if (solver == "fm") return cut::min_bisection_fiduccia_mattheyses(g);
  if (solver == "sa") return cut::min_bisection_simulated_annealing(g);
  if (solver == "spectral") return cut::min_bisection_spectral(g);
  if (solver == "ml") return cut::min_bisection_multilevel(g);
  if (solver == "portfolio") {
    cut::PortfolioOptions opts;
    // Exact search only pays off on instances it can actually finish;
    // cap it so huge graphs degrade gracefully instead of spinning.
    opts.branch_bound_node_limit = 50'000'000;
    auto res = cut::min_bisection_portfolio(g, opts);
    cut::print_portfolio_telemetry(res, std::cout);
    return std::move(res.best);
  }
  throw PreconditionError("unknown solver: " + solver);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string family = argc > 1 ? argv[1] : "bn";
  const std::uint32_t n =
      argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 16;
  const std::string solver = argc > 3 ? argv[3] : "fm";

  try {
    Graph g;
    std::string note;
    if (family == "bn") {
      const topo::Butterfly bf(n);
      if (solver == "folklore") {
        const auto r = cut::column_split_bisection(bf);
        std::cout << "B" << n << " folklore column split: capacity "
                  << r.capacity << "\n";
        return 0;
      }
      g = bf.graph();
      note = "folklore capacity would be " + std::to_string(n);
    } else if (family == "wn") {
      const topo::WrappedButterfly wb(n);
      g = wb.graph();
      note = "paper: BW = " + std::to_string(n);
    } else if (family == "ccc") {
      const topo::CubeConnectedCycles cc(n);
      g = cc.graph();
      note = "paper: BW = " + std::to_string(n / 2);
    } else if (family == "hypercube") {
      const topo::Hypercube q(n);
      g = q.graph();
      note = "known: BW = " + std::to_string(1u << (n - 1));
    } else if (family == "benes") {
      const topo::Benes b(n);
      g = b.graph();
    } else if (family == "mos") {
      const topo::MeshOfStars mos(n, n);
      g = mos.graph();
    } else {
      std::cerr << "unknown family: " << family << "\n";
      return 1;
    }

    const auto r = solve(g, solver);
    std::cout << family << " n=" << n << " (" << g.num_nodes()
              << " nodes, " << g.num_edges() << " edges)\n"
              << "solver " << r.method << ": capacity " << r.capacity
              << " [" << cut::to_string(r.exactness) << "]\n";
    if (!note.empty()) std::cout << note << "\n";
    std::size_t side0 = 0;
    for (const auto s : r.sides) side0 += s == 0;
    std::cout << "sides: " << side0 << " / " << (r.sides.size() - side0)
              << "\n";
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
