// expansion_atlas — tabulate edge- and node-expansion of a butterfly (or
// wrapped butterfly) across set sizes, combining exact sweeps (small
// networks), local-search minima, the paper's constructive upper-bound
// sets, and the credit-scheme lower bounds.
//
// Usage: expansion_atlas [bn|wn] [n]
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <string>

#include "expansion/constructive_sets.hpp"
#include "expansion/credit_scheme.hpp"
#include "expansion/expansion.hpp"
#include "expansion/local_search.hpp"
#include "io/table.hpp"
#include "topology/butterfly.hpp"
#include "topology/wrapped_butterfly.hpp"

int main(int argc, char** argv) {
  using namespace bfly;
  const std::string family = argc > 1 ? argv[1] : "wn";
  const std::uint32_t n =
      argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 32;

  try {
    if (family == "wn") {
      const topo::WrappedButterfly wb(n);
      std::cout << "Expansion atlas of W" << n << " (" << wb.num_nodes()
                << " nodes)\n\n";
      io::Table t({"k", "EE (min found)", "credit LB", "paper LB 4k/logk",
                   "NE (min found)", "paper NE LB k/logk"});
      for (std::uint32_t delta = 1; delta + 1 <= wb.dims(); ++delta) {
        const auto set = expansion::wn_ee_set(wb, delta);
        const std::size_t k = set.size();
        expansion::LocalSearchOptions opts;
        opts.seed_sets.push_back(set);  // warm-start with Lemma 4.1's set
        const auto ee =
            expansion::min_ee_set_local_search(wb.graph(), k, opts);
        const auto ne = expansion::min_ne_set_local_search(wb.graph(), k);
        const auto credit = expansion::credit_edge_wn(wb, ee.set);
        const double logk = std::log2(static_cast<double>(k));
        t.add(std::to_string(k), std::to_string(ee.objective),
              io::fmt(credit.implied_lower_bound, 2),
              io::fmt(4.0 * k / logk, 2), std::to_string(ne.objective),
              io::fmt(k / logk, 2));
      }
      t.print(std::cout);
    } else {
      const topo::Butterfly bf(n);
      std::cout << "Expansion atlas of B" << n << " (" << bf.num_nodes()
                << " nodes)\n\n";
      io::Table t({"k", "EE (min found)", "credit LB", "paper LB 2k/logk",
                   "NE (min found)", "paper NE LB 0.5k/logk"});
      for (std::uint32_t delta = 1; delta <= bf.dims() - 1; ++delta) {
        const auto set = expansion::bn_ee_set(bf, delta);
        const std::size_t k = set.size();
        expansion::LocalSearchOptions opts;
        opts.seed_sets.push_back(set);  // warm-start with Lemma 4.7's set
        const auto ee =
            expansion::min_ee_set_local_search(bf.graph(), k, opts);
        const auto ne = expansion::min_ne_set_local_search(bf.graph(), k);
        const auto credit = expansion::credit_edge_bn(bf, ee.set);
        const double logk = std::log2(static_cast<double>(k));
        t.add(std::to_string(k), std::to_string(ee.objective),
              io::fmt(credit.implied_lower_bound, 2),
              io::fmt(2.0 * k / logk, 2), std::to_string(ne.objective),
              io::fmt(0.5 * k / logk, 2));
      }
      t.print(std::cout);
    }
    std::cout << "\nNote: the paper's lower bounds are asymptotic (k = o(n)\n"
                 "resp. o(sqrt n)); at small n/k the o(1) terms dominate.\n";
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
