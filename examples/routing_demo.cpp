// routing_demo — random-destination packet routing on a butterfly,
// relating simulated completion time to the bisection-width bound of
// Section 1.2.
//
// Usage: routing_demo [n] [seed]
#include <cstdlib>
#include <iostream>

#include "cut/constructive.hpp"
#include "io/table.hpp"
#include "routing/butterfly_routing.hpp"
#include "routing/experiments.hpp"
#include "topology/butterfly.hpp"

int main(int argc, char** argv) {
  using namespace bfly;
  const std::uint32_t n =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 32;
  const std::uint64_t seed =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 1;

  try {
    const topo::Butterfly bf(n);
    const auto bisect = cut::column_split_bisection(bf);
    const auto route = [&](NodeId s, NodeId d) {
      return routing::route_bn(bf, s, d);
    };
    const auto rep = routing::random_destination_experiment(
        bf.graph(), route, bisect.sides, bisect.capacity, seed);

    std::cout << "Random-destination routing on B" << n << " ("
              << bf.num_nodes() << " nodes), seed " << seed << "\n\n";
    io::Table t({"quantity", "value"});
    t.add("packets", std::to_string(rep.num_packets));
    t.add("messages crossing the bisection",
          std::to_string(rep.cross_bisection));
    t.add("expected crossings N/4",
          io::fmt(bf.num_nodes() / 4.0, 1));
    t.add("Section 1.2 time bound N/(4 BW)",
          io::fmt(rep.bisection_time_bound, 2));
    t.add("simulated makespan", std::to_string(rep.sim.makespan));
    t.add("max static link load", std::to_string(rep.sim.max_link_load));
    t.add("peak queue", std::to_string(rep.sim.max_queue));
    t.print(std::cout);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
