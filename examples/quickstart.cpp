// Quickstart: build a butterfly, compute its exact bisection width, and
// compare against the folklore column-split cut.
#include <iostream>

#include "cut/branch_bound.hpp"
#include "cut/constructive.hpp"
#include "topology/butterfly.hpp"

int main() {
  using namespace bfly;
  const topo::Butterfly bf(8);
  std::cout << "B8: " << bf.num_nodes() << " nodes, "
            << bf.graph().num_edges() << " edges\n";

  // The folklore cut: split columns by their most significant bit.
  const cut::CutResult folklore = cut::column_split_bisection(bf);
  std::cout << "folklore column-split capacity: " << folklore.capacity
            << "\n";

  // Exact minimum bisection by branch and bound.
  cut::BranchBoundOptions opts;
  opts.initial_bound = folklore.capacity;
  const cut::CutResult exact = cut::min_bisection_branch_bound(bf.graph(), opts);
  std::cout << "exact BW(B8) = " << exact.capacity << " ("
            << cut::to_string(exact.exactness) << ")\n";
  return 0;
}
