#include "variants/fft.hpp"

#include <cmath>

#include "core/error.hpp"

namespace bfly::variants {

algo::VertexCut min_dominator(const topo::Butterfly& bf,
                              std::span<const NodeId> set) {
  BFLY_CHECK(!set.empty(), "set must be nonempty");
  const auto inputs = bf.level_nodes(0);
  return algo::min_vertex_cut(bf.graph(), inputs, set);
}

HongKungCheck hong_kung_check(const topo::Butterfly& bf,
                              std::span<const NodeId> set) {
  HongKungCheck chk;
  chk.k = set.size();
  const auto cut = min_dominator(bf, set);
  chk.dominator_size = static_cast<std::size_t>(cut.size);
  chk.bound = 2.0 * static_cast<double>(chk.dominator_size) *
              (chk.dominator_size > 0
                   ? std::log2(static_cast<double>(chk.dominator_size))
                   : 0.0);
  chk.holds = static_cast<double>(chk.k) <= chk.bound + 1e-9;
  return chk;
}

}  // namespace bfly::variants
