#include "variants/omega.hpp"

#include <bit>
#include <cmath>
#include <limits>

#include "core/error.hpp"
#include "core/math_util.hpp"

namespace bfly::variants {

namespace {

std::uint32_t checked_half(std::uint32_t n) {
  BFLY_CHECK(is_pow2(n) && n >= 4, "n must be a power of two >= 4");
  return n / 2;
}

}  // namespace

OmegaNetwork::OmegaNetwork(std::uint32_t n)
    : n_(n), base_(checked_half(n)) {}

std::size_t OmegaNetwork::port_edge_expansion(
    std::span<const NodeId> set) const {
  const Graph& g = base_.graph();
  std::vector<std::uint8_t> in(g.num_nodes(), 0);
  for (const NodeId v : set) {
    BFLY_CHECK(v < g.num_nodes(), "set node out of range");
    in[v] = 1;
  }
  std::size_t c = 0;
  for (const auto& [u, v] : g.edges()) {
    if (in[u] != in[v]) ++c;
  }
  for (const NodeId v : set) {
    const std::uint32_t lvl = base_.level(v);
    if (lvl == 0) c += 2;                 // two input ports
    if (lvl == base_.dims()) c += 2;      // two output ports
  }
  return c;
}

OmegaNetwork::SnirCheck OmegaNetwork::snir_inequality(
    std::span<const NodeId> set) const {
  SnirCheck chk;
  chk.c = port_edge_expansion(set);
  const double lhs =
      static_cast<double>(chk.c) *
      (chk.c > 0 ? std::log2(static_cast<double>(chk.c)) : 0.0);
  chk.holds = lhs >= 4.0 * static_cast<double>(set.size()) - 1e-9;
  return chk;
}

std::vector<std::size_t> exact_port_expansion(const OmegaNetwork& omega,
                                              std::uint64_t max_states) {
  const Graph& g = omega.base().graph();
  const NodeId n = g.num_nodes();
  BFLY_CHECK(n < 63, "base butterfly too large for exhaustive sweep");
  const std::uint64_t states = 1ull << n;
  BFLY_CHECK(states <= max_states, "state space exceeds limit");

  std::vector<std::size_t> best(n + 1,
                                std::numeric_limits<std::size_t>::max());
  best[0] = 0;

  std::vector<std::uint8_t> in(n, 0);
  std::size_t cap = 0, ports = 0, size = 0;
  const std::uint32_t d = omega.base().dims();
  for (std::uint64_t i = 1; i < states; ++i) {
    const NodeId v = static_cast<NodeId>(std::countr_zero(i));
    std::size_t to_s = 0;
    for (const NodeId u : g.neighbors(v)) to_s += in[u];
    const std::uint32_t lvl = omega.base().level(v);
    const std::size_t vports =
        (lvl == 0 ? 2u : 0u) + (lvl == d ? 2u : 0u);
    if (!in[v]) {
      cap += g.degree(v) - 2 * to_s;
      ports += vports;
      in[v] = 1;
      ++size;
    } else {
      cap -= g.degree(v) - 2 * to_s;
      ports -= vports;
      in[v] = 0;
      --size;
    }
    best[size] = std::min(best[size], cap + ports);
  }
  return best;
}

}  // namespace bfly::variants
