// The Hong–Kung FFT_n variant (paper Section 1.6).
//
// FFT_n is Bn with one input port per input node and one output port per
// output node. Hong and Kung proved: if D is a set of nodes such that
// every path from an input port to a set S of k nodes passes through a
// node of D, then k <= 2 |D| log |D|. The minimum such D is exactly a
// minimum vertex cut (all nodes cuttable, including members of S and the
// input nodes themselves), which we compute by max-flow. The paper notes
// this bound "roughly corresponds" to NE(Bn,k) >= (1/2 - o(1)) k/log k.
#pragma once

#include <span>
#include <vector>

#include "algo/maxflow.hpp"
#include "core/types.hpp"
#include "topology/butterfly.hpp"

namespace bfly::variants {

/// Minimum dominator: the smallest node set D intercepting every path
/// from the input ports (level 0 of Bn) to S.
[[nodiscard]] algo::VertexCut min_dominator(const topo::Butterfly& bf,
                                            std::span<const NodeId> set);

struct HongKungCheck {
  std::size_t k = 0;
  std::size_t dominator_size = 0;
  /// 2 |D| log2 |D| (the bound's right-hand side).
  double bound = 0.0;
  /// k <= bound? Only meaningful for |D| >= 2 (the |D| = 1 case makes
  /// the RHS zero; Hong–Kung's statement concerns growing D).
  bool holds = false;
};

/// Evaluates the Hong–Kung inequality for the given set.
[[nodiscard]] HongKungCheck hong_kung_check(const topo::Butterfly& bf,
                                            std::span<const NodeId> set);

}  // namespace bfly::variants
