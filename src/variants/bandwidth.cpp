#include "variants/bandwidth.hpp"

#include <bit>
#include <limits>
#include <vector>

#include "algo/maxflow.hpp"
#include "core/error.hpp"

namespace bfly::variants {

namespace {

// Directed capacity of a side assignment: edges (u at level i, v at
// level i+1) with u in S (side 0) and v in S̄ (side 1).
std::size_t directed_capacity(const topo::Butterfly& bf,
                              const std::vector<std::uint8_t>& sides) {
  std::size_t c = 0;
  for (const auto& [a, b] : bf.graph().edges()) {
    // Edge endpoints are normalized by id; the lower id is the lower
    // level in our level-major layout.
    const NodeId lo = a, hi = b;
    if (sides[lo] == 0 && sides[hi] == 1) ++c;
  }
  return c;
}

}  // namespace

std::size_t directed_msb_cut(const topo::Butterfly& bf) {
  const std::uint32_t msb = bf.n() / 2;
  std::vector<std::uint8_t> sides(bf.num_nodes());
  for (NodeId v = 0; v < bf.num_nodes(); ++v) {
    sides[v] = (bf.column(v) & msb) ? 1 : 0;
  }
  return directed_capacity(bf, sides);
}

std::size_t directed_io_bisection_exhaustive(const topo::Butterfly& bf) {
  const NodeId n = bf.num_nodes();
  BFLY_CHECK(n < 26, "graph too large for exhaustive enumeration");
  const std::uint32_t cols = bf.n();
  const std::uint32_t d = bf.dims();

  std::size_t best = std::numeric_limits<std::size_t>::max();
  std::vector<std::uint8_t> sides(n);
  for (std::uint64_t bits = 0; bits < (1ull << n); ++bits) {
    std::uint32_t inputs_in_s = 0, outputs_in_sbar = 0;
    for (NodeId v = 0; v < n; ++v) {
      sides[v] = static_cast<std::uint8_t>((bits >> v) & 1u);
    }
    for (std::uint32_t w = 0; w < cols; ++w) {
      inputs_in_s += sides[bf.node(w, 0)] == 0;
      outputs_in_sbar += sides[bf.node(w, d)] == 1;
    }
    if (inputs_in_s < cols / 2 || outputs_in_sbar < cols / 2) continue;
    best = std::min(best, directed_capacity(bf, sides));
  }
  return best;
}

std::size_t directed_io_bisection_flow_bound(const topo::Butterfly& bf) {
  const std::uint32_t cols = bf.n();
  BFLY_CHECK(cols <= 8, "flow bound sweep limited to n <= 8");
  const std::uint32_t d = bf.dims();
  const NodeId n = bf.num_nodes();

  // Enumerate column subsets of size n/2 for I' and O'.
  std::vector<std::uint32_t> halves;
  for (std::uint32_t m = 0; m < (1u << cols); ++m) {
    if (std::popcount(m) == static_cast<int>(cols / 2)) halves.push_back(m);
  }

  std::size_t best = std::numeric_limits<std::size_t>::max();
  for (const std::uint32_t im : halves) {
    for (const std::uint32_t om : halves) {
      algo::FlowNetwork net(n + 2);
      const NodeId s = n, t = n + 1;
      for (const auto& [a, b] : bf.graph().edges()) {
        net.add_arc(a, b, 1);  // directed: lower level -> higher level
      }
      for (std::uint32_t w = 0; w < cols; ++w) {
        if (im & (1u << w)) net.add_arc(s, bf.node(w, 0), 1ll << 30);
        if (om & (1u << w)) net.add_arc(bf.node(w, d), t, 1ll << 30);
      }
      best = std::min(best,
                      static_cast<std::size_t>(net.max_flow(s, t)));
      if (best == 0) return 0;
    }
  }
  return best;
}

}  // namespace bfly::variants
