// The directed input/output bisection of Kruskal–Snir [13], quoted in
// the paper's Section 1.2.
//
// In [13] every edge of Bn is directed from level i to level i+1, and
// the "bisection width" is the minimum over cuts (S, S̄) with at least
// n/2 inputs in S and at least n/2 outputs in S̄ of the number of
// directed edges from S to S̄. The paper notes the value is n/2,
// achieved by the MSB column cut, and relates it to the exact bandwidth
// 2n via bandwidth <= 4 * bisection.
#pragma once

#include <cstdint>

#include "topology/butterfly.hpp"

namespace bfly::variants {

/// Directed capacity (# level-increasing edges from S to S̄) of the MSB
/// column cut, with S = columns whose number begins with 0. Equals n/2.
[[nodiscard]] std::size_t directed_msb_cut(const topo::Butterfly& bf);

/// Exact directed IO-bisection by exhaustive enumeration (N < 26).
[[nodiscard]] std::size_t directed_io_bisection_exhaustive(
    const topo::Butterfly& bf);

/// Flow-based lower bound: min over all choices of n/2 inputs I' and n/2
/// outputs O' of the max directed flow I' -> O' (unit edge capacities).
/// Any feasible [13]-cut separates some such pair, so this bounds the
/// directed IO-bisection from below. Cost: C(n, n/2)^2 max-flows — keep
/// n <= 8.
[[nodiscard]] std::size_t directed_io_bisection_flow_bound(
    const topo::Butterfly& bf);

}  // namespace bfly::variants
