// Snir's butterfly variant Ω_n (paper Section 1.6).
//
// Ω_n is derived from B_{n/2} by giving every input node two input ports
// and every output node two output ports. Ports are not edges, but the
// edge-expansion functional counts them:
//   EE(Ω_n, S) = C(S, S̄) + 2 |L_0 ∩ S| + 2 |L_last ∩ S|.
// Snir proved C log C >= 4k for every set S of k nodes, the precursor of
// the paper's EE(Wn, k) >= (4 - o(1)) k / log k (the paper compares the
// two after Lemma 4.2).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/types.hpp"
#include "topology/butterfly.hpp"

namespace bfly::variants {

class OmegaNetwork {
 public:
  /// Builds Ω_n from the base butterfly B_{n/2}; n must be a power of
  /// two, n >= 4.
  explicit OmegaNetwork(std::uint32_t n);

  [[nodiscard]] std::uint32_t n() const noexcept { return n_; }
  [[nodiscard]] const topo::Butterfly& base() const noexcept {
    return base_;
  }

  /// The port-counting edge-expansion functional of the set.
  [[nodiscard]] std::size_t port_edge_expansion(
      std::span<const NodeId> set) const;

  /// Snir's inequality C log2(C) >= 4k for this set; returns the pair
  /// (C, holds).
  struct SnirCheck {
    std::size_t c = 0;
    bool holds = false;
  };
  [[nodiscard]] SnirCheck snir_inequality(std::span<const NodeId> set) const;

 private:
  std::uint32_t n_;
  topo::Butterfly base_;
};

/// Exact min of the port functional over all sets of each size k
/// (exhaustive sweep; base butterfly must have < 26 nodes). Entry k of
/// the result; entry 0 is 0.
[[nodiscard]] std::vector<std::size_t> exact_port_expansion(
    const OmegaNetwork& omega, std::uint64_t max_states = 1ull << 26);

}  // namespace bfly::variants
