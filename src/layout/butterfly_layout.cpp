#include "layout/butterfly_layout.hpp"

#include <algorithm>
#include <vector>

#include "core/error.hpp"

namespace bfly::layout {

namespace {

// Greedy left-edge channel routing: assigns each interval the smallest
// track whose previous interval ends strictly before this one begins.
// Returns per-interval track ids (0-based).
std::vector<std::uint32_t> left_edge_tracks(
    std::vector<std::pair<std::int32_t, std::int32_t>> spans,
    std::vector<std::uint32_t>* order_out) {
  const std::size_t m = spans.size();
  std::vector<std::uint32_t> order(m);
  for (std::uint32_t i = 0; i < m; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    return spans[a].first < spans[b].first;
  });
  std::vector<std::int32_t> track_end;  // rightmost x used per track
  std::vector<std::uint32_t> track(m);
  for (const std::uint32_t i : order) {
    bool placed = false;
    for (std::uint32_t t = 0; t < track_end.size(); ++t) {
      if (track_end[t] < spans[i].first) {
        track[i] = t;
        track_end[t] = spans[i].second;
        placed = true;
        break;
      }
    }
    if (!placed) {
      track[i] = static_cast<std::uint32_t>(track_end.size());
      track_end.push_back(spans[i].second);
    }
  }
  if (order_out != nullptr) *order_out = std::move(order);
  return track;
}

}  // namespace

GridLayout layout_butterfly(const topo::Butterfly& bf) {
  const std::uint32_t n = bf.n();
  const std::uint32_t d = bf.dims();

  // Lanes per column w: 4w = arrivals, 4w+1 = node + straight edges,
  // 4w+2 = departures.
  const auto arrival_lane = [](std::uint32_t w) {
    return static_cast<std::int32_t>(4 * w);
  };
  const auto node_lane = [](std::uint32_t w) {
    return static_cast<std::int32_t>(4 * w + 1);
  };
  const auto departure_lane = [](std::uint32_t w) {
    return static_cast<std::int32_t>(4 * w + 2);
  };

  GridLayout out;
  out.position.resize(bf.num_nodes());
  out.wire.resize(bf.graph().num_edges());

  // First pass: per-boundary channel track assignment for cross edges.
  // Net for cross edge <w,l> -> <w^mask,l+1>: spans departure_lane(w) to
  // arrival_lane(w^mask).
  std::vector<std::vector<std::uint32_t>> tracks(d);  // per boundary, per w
  std::vector<std::uint32_t> channel_height(d);
  for (std::uint32_t b = 0; b < d; ++b) {
    const std::uint32_t mask = bf.cross_mask(b);
    std::vector<std::pair<std::int32_t, std::int32_t>> spans(n);
    for (std::uint32_t w = 0; w < n; ++w) {
      const std::int32_t from = departure_lane(w);
      const std::int32_t to = arrival_lane(w ^ mask);
      spans[w] = {std::min(from, to), std::max(from, to)};
    }
    tracks[b] = left_edge_tracks(std::move(spans), nullptr);
    channel_height[b] =
        *std::max_element(tracks[b].begin(), tracks[b].end()) + 1;
  }

  // Level rows.
  std::vector<std::int32_t> row(d + 1);
  row[0] = 0;
  for (std::uint32_t b = 0; b < d; ++b) {
    row[b + 1] = row[b] + static_cast<std::int32_t>(channel_height[b]) + 1;
  }

  for (std::uint32_t lvl = 0; lvl <= d; ++lvl) {
    for (std::uint32_t w = 0; w < n; ++w) {
      out.position[bf.node(w, lvl)] = {node_lane(w), row[lvl]};
    }
  }

  // Wires. Straight edges run down the node lane; cross edges jog to the
  // departure lane, descend to their track, run across, descend the
  // arrival lane, and jog into the target node.
  const Graph& g = bf.graph();
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    auto [u, v] = g.edge(e);
    if (bf.level(u) > bf.level(v)) std::swap(u, v);
    const std::uint32_t b = bf.level(u);
    const std::uint32_t wu = bf.column(u), wv = bf.column(v);
    if (wu == wv) {
      out.wire[e] = {{node_lane(wu), row[b]}, {node_lane(wu), row[b + 1]}};
      continue;
    }
    const std::int32_t yt =
        row[b] + 1 + static_cast<std::int32_t>(tracks[b][wu]);
    out.wire[e] = {
        {node_lane(wu), row[b]},      {departure_lane(wu), row[b]},
        {departure_lane(wu), yt},     {arrival_lane(wv), yt},
        {arrival_lane(wv), row[b + 1]}, {node_lane(wv), row[b + 1]},
    };
  }
  return out;
}

}  // namespace bfly::layout
