// SVG rendering of grid layouts — lets users actually look at the
// Theta(n^2) butterfly layouts of Section 1.1.
#pragma once

#include <ostream>

#include "layout/grid_layout.hpp"

namespace bfly::layout {

struct SvgOptions {
  int cell = 12;        ///< pixels per grid unit
  int node_radius = 3;  ///< node dot radius in pixels
};

/// Writes the layout as a standalone SVG document (nodes as dots, wires
/// as polylines).
void write_svg(std::ostream& os, const GridLayout& layout,
               const SvgOptions& opts = {});

}  // namespace bfly::layout
