// A concrete O(n^2)-area rectilinear layout of Bn.
//
// Columns are laid out left to right (four lanes per column: arrival,
// node/straight, departure, spare), levels top to bottom, and each
// boundary's cross edges run through a routing channel whose tracks are
// assigned by left-edge interval coloring. The construction realizes the
// Theta(n^2) area the paper quotes (the optimal constant is 1 by Avior
// et al. [3]; this simple channel layout achieves a small constant
// factor) and provides the concrete object for Thompson's A >= BW^2
// comparison.
#pragma once

#include "layout/grid_layout.hpp"
#include "topology/butterfly.hpp"

namespace bfly::layout {

/// Builds the channel layout of Bn; validate with validate_layout.
[[nodiscard]] GridLayout layout_butterfly(const topo::Butterfly& bf);

}  // namespace bfly::layout
