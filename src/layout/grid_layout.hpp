// Rectilinear (Thompson-model) VLSI layouts.
//
// The paper's Section 1.1/1.2 quotes layout-area facts — Bn fits in
// (1 ± o(1)) n^2 area [3], Wn in Θ(n^2) — and Thompson's lower bound
// A >= BW(G)^2, which turns the bisection-width theorem into a VLSI
// statement. This module provides the layout model: unit-grid node
// placements, axis-parallel wires, crossings allowed, same-direction
// overlaps forbidden; area = bounding-box width x height.
#pragma once

#include <cstdint>
#include <vector>

#include "core/graph.hpp"
#include "core/types.hpp"

namespace bfly::layout {

struct Point {
  std::int32_t x = 0;
  std::int32_t y = 0;
  friend bool operator==(const Point&, const Point&) = default;
};

/// A wire is a rectilinear polyline (consecutive points differ in
/// exactly one coordinate).
using Wire = std::vector<Point>;

struct GridLayout {
  std::vector<Point> position;  ///< per node
  std::vector<Wire> wire;       ///< per edge (same indexing as Graph)
  [[nodiscard]] std::int64_t width() const;
  [[nodiscard]] std::int64_t height() const;
  [[nodiscard]] std::int64_t area() const { return width() * height(); }
};

/// Validates a layout for a graph:
///  * every node has a position, every edge a wire,
///  * each wire is rectilinear and connects its edge's endpoints,
///  * no two wires overlap along a segment of positive length in the
///    same direction (perpendicular crossings are allowed, as are
///    endpoint touches at shared nodes),
///  * no wire passes straight through another node's position.
/// Throws PreconditionError on violations.
void validate_layout(const Graph& g, const GridLayout& layout);

/// Thompson's bound: any layout of G has area >= BW(G)^2.
[[nodiscard]] std::int64_t thompson_area_lower_bound(std::size_t bw);

}  // namespace bfly::layout
