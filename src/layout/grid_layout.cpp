#include "layout/grid_layout.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <unordered_set>

#include "core/error.hpp"

namespace bfly::layout {

namespace {

struct Box {
  std::int32_t min_x = std::numeric_limits<std::int32_t>::max();
  std::int32_t max_x = std::numeric_limits<std::int32_t>::min();
  std::int32_t min_y = std::numeric_limits<std::int32_t>::max();
  std::int32_t max_y = std::numeric_limits<std::int32_t>::min();

  void include(const Point& p) {
    min_x = std::min(min_x, p.x);
    max_x = std::max(max_x, p.x);
    min_y = std::min(min_y, p.y);
    max_y = std::max(max_y, p.y);
  }
};

Box bounding_box(const GridLayout& l) {
  Box b;
  for (const auto& p : l.position) b.include(p);
  for (const auto& w : l.wire) {
    for (const auto& p : w) b.include(p);
  }
  return b;
}

}  // namespace

std::int64_t GridLayout::width() const {
  const Box b = bounding_box(*this);
  return b.max_x < b.min_x ? 0 : static_cast<std::int64_t>(b.max_x) -
                                     b.min_x + 1;
}

std::int64_t GridLayout::height() const {
  const Box b = bounding_box(*this);
  return b.max_y < b.min_y ? 0 : static_cast<std::int64_t>(b.max_y) -
                                     b.min_y + 1;
}

void validate_layout(const Graph& g, const GridLayout& layout) {
  BFLY_CHECK(layout.position.size() == g.num_nodes(),
             "layout must place every node");
  BFLY_CHECK(layout.wire.size() == g.num_edges(),
             "layout must route every edge");

  // Distinct node positions.
  {
    std::unordered_set<std::uint64_t> seen;
    for (const auto& p : layout.position) {
      const std::uint64_t key =
          (static_cast<std::uint64_t>(static_cast<std::uint32_t>(p.x))
           << 32) |
          static_cast<std::uint32_t>(p.y);
      BFLY_CHECK(seen.insert(key).second, "two nodes share a position");
    }
  }

  // Wire endpoint and rectilinearity checks; collect segments.
  struct Seg {
    std::int32_t fixed;  // the shared coordinate
    std::int32_t lo, hi;
    EdgeId owner;
  };
  std::map<std::int32_t, std::vector<Seg>> horizontal, vertical;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto& w = layout.wire[e];
    BFLY_CHECK(w.size() >= 2, "wire must have at least two points");
    const auto [gu, gv] = g.edge(e);
    const bool fwd = w.front() == layout.position[gu] &&
                     w.back() == layout.position[gv];
    const bool bwd = w.front() == layout.position[gv] &&
                     w.back() == layout.position[gu];
    BFLY_CHECK(fwd || bwd, "wire does not connect its edge's endpoints");
    for (std::size_t i = 0; i + 1 < w.size(); ++i) {
      const Point a = w[i], b = w[i + 1];
      BFLY_CHECK(a.x == b.x || a.y == b.y, "wire segment not rectilinear");
      BFLY_CHECK(!(a == b), "zero-length wire segment");
      if (a.y == b.y) {
        horizontal[a.y].push_back(
            {a.y, std::min(a.x, b.x), std::max(a.x, b.x), e});
      } else {
        vertical[a.x].push_back(
            {a.x, std::min(a.y, b.y), std::max(a.y, b.y), e});
      }
    }
  }

  // Same-direction overlap check (positive-length sharing forbidden;
  // touching at one point allowed).
  const auto check_overlaps = [](std::vector<Seg>& segs, const char* dir) {
    std::sort(segs.begin(), segs.end(), [](const Seg& a, const Seg& b) {
      return a.lo < b.lo;
    });
    for (std::size_t i = 0; i + 1 < segs.size(); ++i) {
      // Only need neighbors in sorted order... but long segments can
      // overlap non-adjacent ones: track running max.
      for (std::size_t j = i + 1;
           j < segs.size() && segs[j].lo < segs[i].hi; ++j) {
        BFLY_CHECK(segs[i].owner == segs[j].owner,
                   std::string("wires overlap along a ") + dir +
                       " segment");
      }
    }
  };
  for (auto& [y, segs] : horizontal) check_overlaps(segs, "horizontal");
  for (auto& [x, segs] : vertical) check_overlaps(segs, "vertical");

  // No wire runs straight through a foreign node's position.
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [gu, gv] = g.edge(e);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (v == gu || v == gv) continue;
      const Point p = layout.position[v];
      for (std::size_t i = 0; i + 1 < layout.wire[e].size(); ++i) {
        const Point a = layout.wire[e][i], b = layout.wire[e][i + 1];
        if (a.y == b.y && p.y == a.y && p.x > std::min(a.x, b.x) &&
            p.x < std::max(a.x, b.x)) {
          BFLY_CHECK(false, "wire passes through a foreign node");
        }
        if (a.x == b.x && p.x == a.x && p.y > std::min(a.y, b.y) &&
            p.y < std::max(a.y, b.y)) {
          BFLY_CHECK(false, "wire passes through a foreign node");
        }
      }
    }
  }
}

std::int64_t thompson_area_lower_bound(std::size_t bw) {
  return static_cast<std::int64_t>(bw) * static_cast<std::int64_t>(bw);
}

}  // namespace bfly::layout
