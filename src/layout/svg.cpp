#include "layout/svg.hpp"

#include <algorithm>
#include <limits>

namespace bfly::layout {

void write_svg(std::ostream& os, const GridLayout& layout,
               const SvgOptions& opts) {
  // Compute bounds with a one-cell margin.
  std::int32_t min_x = std::numeric_limits<std::int32_t>::max();
  std::int32_t min_y = min_x;
  std::int32_t max_x = std::numeric_limits<std::int32_t>::min();
  std::int32_t max_y = max_x;
  const auto include = [&](const Point& p) {
    min_x = std::min(min_x, p.x);
    max_x = std::max(max_x, p.x);
    min_y = std::min(min_y, p.y);
    max_y = std::max(max_y, p.y);
  };
  for (const auto& p : layout.position) include(p);
  for (const auto& w : layout.wire) {
    for (const auto& p : w) include(p);
  }
  if (min_x > max_x) {
    os << "<svg xmlns=\"http://www.w3.org/2000/svg\"/>\n";
    return;
  }

  const int c = opts.cell;
  const auto px = [&](std::int32_t x) { return (x - min_x + 1) * c; };
  const auto py = [&](std::int32_t y) { return (y - min_y + 1) * c; };
  const int width = (max_x - min_x + 2) * c;
  const int height = (max_y - min_y + 2) * c;

  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width
     << "\" height=\"" << height << "\" viewBox=\"0 0 " << width << ' '
     << height << "\">\n";
  os << "  <rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  for (const auto& wire : layout.wire) {
    os << "  <polyline fill=\"none\" stroke=\"#3465a4\" "
          "stroke-width=\"1\" points=\"";
    for (std::size_t i = 0; i < wire.size(); ++i) {
      if (i != 0) os << ' ';
      os << px(wire[i].x) << ',' << py(wire[i].y);
    }
    os << "\"/>\n";
  }
  for (const auto& p : layout.position) {
    os << "  <circle cx=\"" << px(p.x) << "\" cy=\"" << py(p.y)
       << "\" r=\"" << opts.node_radius << "\" fill=\"#cc0000\"/>\n";
  }
  os << "</svg>\n";
}

}  // namespace bfly::layout
