// Shared wire-format machinery behind the BFLYSNP snapshots and the
// BFLYSVC service cache entries (DESIGN.md §9/§14).
//
// Both persistent formats follow the same hostile-input contract:
//
//   magic | u32 version | payload | u64 FNV-1a of everything before it
//
// decoded through a bounds-checked little-endian Reader that throws a
// structured SnapshotError instead of ever reading past the end or
// trusting a length field before capping it, and written through
// atomic_write_file's temp-plus-rename so a crash mid-write leaves the
// old file or none — never a torn one. This header is that machinery,
// factored out of checkpoint.cpp so the service cache is the same code
// path the kill-and-resume tests and fuzz_checkpoint already hammer,
// not a reimplementation with its own bugs.
#pragma once

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <span>
#include <string>
#include <system_error>
#include <vector>

#include "robust/checkpoint.hpp"

namespace bfly::robust::wire {

inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

[[nodiscard]] inline std::uint64_t fnv1a(std::uint64_t h,
                                         const std::uint8_t* data,
                                         std::size_t len) {
  for (std::size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= kFnvPrime;
  }
  return h;
}

[[nodiscard]] inline std::uint64_t fnv1a_u64(std::uint64_t h,
                                             std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= static_cast<std::uint8_t>(v >> (8 * i));
    h *= kFnvPrime;
  }
  return h;
}

inline void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

inline void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

/// Bounds-checked little-endian reader: every accessor throws
/// SnapshotError{kTruncated} instead of reading past the end, so the
/// decoders can consume attacker-controlled bytes without a single
/// unchecked offset. `max_count` caps every length field BEFORE the
/// allocation it would drive.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes,
                  std::uint64_t max_count = std::uint64_t{1} << 26)
      : bytes_(bytes), max_count_(max_count) {}

  [[nodiscard]] std::size_t remaining() const noexcept {
    return bytes_.size() - pos_;
  }

  /// Bytes consumed so far (the prefix a trailing checksum covers).
  [[nodiscard]] std::size_t consumed() const noexcept { return pos_; }

  std::uint8_t u8(const char* field) {
    need(1, field);
    return bytes_[pos_++];
  }

  std::uint32_t u32(const char* field) {
    need(4, field);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(bytes_[pos_ + i]) << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  std::uint64_t u64(const char* field) {
    need(8, field);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(bytes_[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  std::span<const std::uint8_t> raw(std::size_t n, const char* field) {
    need(n, field);
    auto s = bytes_.subspan(pos_, n);
    pos_ += n;
    return s;
  }

  /// A length field followed by that many bytes, with the plausibility
  /// cap applied BEFORE any allocation.
  std::vector<std::uint8_t> sized_bytes(const char* field) {
    const std::uint64_t n = u64(field);
    if (n > max_count_) {
      throw SnapshotError(SnapshotFault::kMalformed,
                          std::string(field) + " count " + std::to_string(n) +
                              " exceeds the plausibility ceiling");
    }
    if (n > remaining()) {
      throw SnapshotError(SnapshotFault::kTruncated,
                          std::string(field) + " declares " +
                              std::to_string(n) + " bytes but only " +
                              std::to_string(remaining()) + " remain");
    }
    auto s = raw(static_cast<std::size_t>(n), field);
    return {s.begin(), s.end()};
  }

 private:
  void need(std::size_t n, const char* field) const {
    if (n > remaining()) {
      throw SnapshotError(SnapshotFault::kTruncated,
                          std::string("stream ends inside ") + field);
    }
  }

  std::span<const std::uint8_t> bytes_;
  std::uint64_t max_count_;
  std::size_t pos_ = 0;
};

/// Atomically replaces `path` with `bytes`: writes a sibling temp file
/// and renames it into place, so a crash (or kill -9) mid-write leaves
/// either the old file or none. Throws SnapshotError{kIo} when the
/// filesystem refuses.
inline void atomic_write_file(const std::filesystem::path& path,
                              std::span<const std::uint8_t> bytes) {
  std::filesystem::path tmp = path;
  tmp += ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw SnapshotError(SnapshotFault::kIo,
                          "cannot open " + tmp.string() + " for writing");
    }
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      throw SnapshotError(SnapshotFault::kIo, "short write to " + tmp.string());
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    throw SnapshotError(SnapshotFault::kIo,
                        "cannot rename " + tmp.string() + " into " +
                            path.string());
  }
}

/// Reads the whole file. Throws SnapshotError{kIo} on any filesystem
/// refusal; the caller's decoder owns every other failure class.
[[nodiscard]] inline std::vector<std::uint8_t> read_file(
    const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw SnapshotError(SnapshotFault::kIo,
                        "cannot open " + path.string() + " for reading");
  }
  std::vector<std::uint8_t> bytes{std::istreambuf_iterator<char>(in),
                                  std::istreambuf_iterator<char>()};
  if (in.bad()) {
    throw SnapshotError(SnapshotFault::kIo, "read error on " + path.string());
  }
  return bytes;
}

}  // namespace bfly::robust::wire
