#include "robust/supervisor.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <new>
#include <system_error>
#include <thread>
#include <utility>

#include "core/error.hpp"
#include "core/sync.hpp"
#include "robust/checkpoint.hpp"
#include "robust/fault_injection.hpp"

namespace bfly::robust {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

// Heartbeat watchdog for one solve attempt: the engine publishes its
// pooled node count into `progress` at its flush cadence; if the cell
// freezes for stall_ms the watchdog cancels the attempt's token. The
// supervisor's retry (resuming from the last checkpoint) then replaces
// whatever was stalled.
//
// Control protocol: quit_ and fired_ live under mu_ (GUARDED_BY), and
// the poll loop sleeps in a CondVar timed wait instead of sleep_for —
// so stop() wakes the thread immediately rather than waiting out the
// rest of a poll period. The progress cell itself stays a relaxed
// atomic: it is the engines' hot-path heartbeat, not watchdog state.
class Watchdog {
 public:
  Watchdog(CancelToken& token, const std::atomic<std::uint64_t>& progress,
           double poll_ms, double stall_ms)
      : token_(token),
        progress_(progress),
        poll_ms_(std::max(1.0, poll_ms)),
        stall_ms_(stall_ms) {}

  ~Watchdog() { stop(); }
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  void start() {
    if (stall_ms_ <= 0.0) return;
    thread_ = std::thread([this] { run(); });
  }

  // Idempotent (the dtor calls it again after an explicit stop()).
  void stop() {
    {
      const sync::MutexLock lock(mu_);
      quit_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable()) thread_.join();
  }

  [[nodiscard]] bool fired() const {
    const sync::MutexLock lock(mu_);
    return fired_;
  }

 private:
  void run() {
    std::uint64_t last = progress_.load(std::memory_order_relaxed);
    Clock::time_point last_change = Clock::now();
    const auto poll = std::chrono::duration<double, std::milli>(poll_ms_);
    sync::MutexLock lock(mu_);
    while (!quit_) {
      cv_.wait_for(lock, poll);  // early wake only ever means stop()
      if (quit_) return;
      const std::uint64_t cur = progress_.load(std::memory_order_relaxed);
      if (cur != last) {
        last = cur;
        last_change = Clock::now();
        continue;
      }
      if (token_.stop_requested()) return;  // deadline got there first
      const double frozen_ms =
          seconds_between(last_change, Clock::now()) * 1e3;
      if (frozen_ms >= stall_ms_) {
        // Delayed-cancellation fault point: a firing kCancelDelay rule
        // sleeps here, modeling the stop signal arriving late. The
        // engines must still wind down correctly.
        BFLY_FAULT_POINT(kCancelDelay);
        token_.request_stop();
        fired_ = true;
        return;
      }
    }
  }

  CancelToken& token_;
  const std::atomic<std::uint64_t>& progress_;
  double poll_ms_;
  double stall_ms_;
  mutable sync::Mutex mu_;
  sync::CondVar cv_;
  bool quit_ BFLY_GUARDED_BY(mu_) = false;
  bool fired_ BFLY_GUARDED_BY(mu_) = false;
  std::thread thread_;
};

/// The transient failures the supervisor absorbs and retries. Anything
/// else — PreconditionError above all — is a caller bug and propagates.
bool is_transient(const std::exception_ptr& ep) {
  try {
    std::rethrow_exception(ep);
  } catch (const fault::FaultInjectedError&) {
    return true;
  } catch (const std::bad_alloc&) {
    return true;
  } catch (...) {
    return false;
  }
}

/// Shared deadline/backoff bookkeeping for one supervised solve.
struct DeadlineClock {
  Clock::time_point t0 = Clock::now();
  bool armed = false;
  Clock::time_point deadline{};

  explicit DeadlineClock(double deadline_seconds) {
    if (deadline_seconds > 0.0) {
      armed = true;
      deadline = t0 + std::chrono::duration_cast<Clock::duration>(
                          std::chrono::duration<double>(deadline_seconds));
    }
  }

  [[nodiscard]] bool expired() const {
    return armed && Clock::now() >= deadline;
  }

  [[nodiscard]] double elapsed() const {
    return seconds_between(t0, Clock::now());
  }

  [[nodiscard]] double remaining_seconds() const {
    if (!armed) return 0.0;
    return std::max(0.0, seconds_between(Clock::now(), deadline));
  }

  void arm_token(CancelToken& token) const {
    if (armed) token.set_deadline(deadline);
  }

  /// Policy backoff before retry `attempt`, truncated so it never
  /// sleeps past the deadline.
  void backoff(const SupervisorOptions& opts, unsigned attempt) const {
    double ms = opts.backoff.delay_ms(attempt);
    if (armed) ms = std::min(ms, remaining_seconds() * 1e3);
    if (ms > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(ms));
    }
  }
};

}  // namespace

double BackoffPolicy::delay_ms(unsigned attempt) const {
  double ms = initial_ms * std::pow(multiplier, static_cast<double>(attempt));
  if (cap_ms > 0.0) ms = std::min(ms, cap_ms);
  if (jitter_fraction > 0.0) {
    // SplitMix64 keyed by (seed, attempt): the jitter is part of the
    // schedule, not noise — replaying a policy replays its sleeps.
    SplitMix64 sm(jitter_seed ^ (0x9e3779b97f4a7c15ull * (attempt + 1)));
    const double unit =
        static_cast<double>(sm.next() >> 11) * 0x1.0p-53;  // [0, 1)
    ms += ms * jitter_fraction * unit;
  }
  return std::max(0.0, ms);
}

const char* to_string(SolveStatus s) {
  switch (s) {
    case SolveStatus::kExactOptimal: return "exact-optimal";
    case SolveStatus::kDegradedHeuristic: return "degraded-heuristic";
    case SolveStatus::kFailed: return "failed";
  }
  return "?";
}

Supervisor::Supervisor(SupervisorOptions opts) : opts_(std::move(opts)) {}

SolveReport Supervisor::solve_bisection(const Graph& g) const {
  const DeadlineClock clock(opts_.deadline_seconds);
  SolveReport rep;

  // Checkpointing rides on the bitset kernel's seed-prefix driver, so
  // it is only available when that kernel is (simple graphs).
  const bool checkpointing =
      !opts_.checkpoint_path.empty() && !g.has_parallel_edges();
  const std::uint64_t fp = checkpointing ? graph_fingerprint(g) : 0;
  cut::BranchBoundSearchState resume_state;
  bool have_resume = false;
  auto reload_snapshot = [&] {
    if (!checkpointing || !snapshot_exists(opts_.checkpoint_path)) return;
    try {
      BisectionSnapshot snap = load_snapshot(opts_.checkpoint_path, fp);
      resume_state = std::move(snap.state);
      have_resume = true;
    } catch (const SnapshotError&) {
      // Stale, foreign, or corrupt snapshot: solve from scratch rather
      // than resume into garbage. The next checkpoint overwrites it.
      have_resume = false;
    }
  };

  // Accepts a candidate result; keeps the best-known cut with honest
  // provenance. Returns true when the candidate became the best.
  auto offer = [&](cut::CutResult&& r, unsigned step) {
    if (r.sides.empty()) return false;
    const bool better =
        rep.best.sides.empty() || r.capacity < rep.best.capacity ||
        (r.capacity == rep.best.capacity &&
         r.exactness == cut::Exactness::kExact &&
         rep.best.exactness != cut::Exactness::kExact);
    if (!better) return false;
    r.method = "supervisor/" + r.method;
    rep.best = std::move(r);
    rep.degradation_step = step;
    return true;
  };

  const cut::PortfolioSeeds seeds =
      cut::derive_portfolio_seeds(opts_.master_seed);
  const char* const kSteps[] = {"exact", "exact-budgeted", "multilevel",
                                "fm"};
  bool done = false;
  for (unsigned step = 0; step < 4 && !done && !clock.expired(); ++step) {
    rep.degradation_path.emplace_back(kSteps[step]);
    const bool exact_step = step < 2;
    for (unsigned attempt = 0; attempt <= opts_.max_retries; ++attempt) {
      if (clock.expired()) break;
      if (attempt > 0) {
        ++rep.retries;
        clock.backoff(opts_, attempt - 1);
        if (clock.expired()) break;
      }
      CancelToken token;
      clock.arm_token(token);
      std::atomic<std::uint64_t> progress{0};
      // Only the exact engines feed the progress cell; arming the
      // watchdog on a heuristic step would read silence as a stall.
      Watchdog dog(token, progress,
                   opts_.heartbeat_interval_ms,
                   exact_step ? opts_.stall_timeout_ms : 0.0);
      dog.start();
      try {
        cut::CutResult r;
        switch (step) {
          case 0:
          case 1: {
            cut::BranchBoundOptions bo;
            bo.num_threads = opts_.num_threads;
            bo.cancel = &token;
            bo.progress = &progress;
            if (step == 1) bo.node_limit = opts_.budgeted_exact_nodes;
            if (step == 0 && checkpointing) {
              // A crash-retry resumes from whatever the previous
              // attempt last wrote, not from a stale in-memory copy.
              reload_snapshot();
              if (have_resume) {
                bo.resume = &resume_state;
                rep.resumed = true;
              }
              bo.on_checkpoint =
                  [this, fp](const cut::BranchBoundSearchState& st) {
                    try {
                      save_snapshot(opts_.checkpoint_path, {fp, st});
                    } catch (const SnapshotError&) {
                      // Checkpointing is best-effort; a full disk must
                      // not kill an otherwise healthy solve.
                    }
                  };
            }
            r = cut::min_bisection_branch_bound(g, bo);
            break;
          }
          case 2: {
            cut::MultilevelOptions mo;
            mo.seed = seeds.multilevel;
            mo.cancel = &token;
            r = cut::min_bisection_multilevel(g, mo);
            break;
          }
          default: {
            cut::FiducciaMattheysesOptions fo;
            fo.seed = seeds.fm;
            fo.cancel = &token;
            r = cut::min_bisection_fiduccia_mattheyses(g, fo);
            break;
          }
        }
        dog.stop();
        const bool stalled = dog.fired();
        if (stalled) ++rep.stalls_detected;
        const bool exact_proof = r.exactness == cut::Exactness::kExact;
        offer(std::move(r), step);
        if (exact_step && exact_proof) {
          if (checkpointing) {
            std::error_code ec;
            std::filesystem::remove(opts_.checkpoint_path, ec);
          }
          done = true;
          break;
        }
        if (!exact_step && !rep.best.sides.empty()) {
          done = true;
          break;
        }
        // The attempt came back degraded. A watchdog stall is worth a
        // retry (the checkpoint preserves its work); a deadline or node
        // budget is not — fall through the ladder instead.
        if (!stalled) break;
      } catch (...) {
        dog.stop();
        if (dog.fired()) ++rep.stalls_detected;
        if (!is_transient(std::current_exception())) throw;
        ++rep.faults_survived;
        // Retry; the attempt loop's backoff and deadline checks apply.
      }
    }
  }

  rep.deadline_expired = clock.expired();
  if (!rep.best.sides.empty()) {
    rep.status = rep.best.exactness == cut::Exactness::kExact
                     ? SolveStatus::kExactOptimal
                     : SolveStatus::kDegradedHeuristic;
  }
  rep.wall_seconds = clock.elapsed();
  return rep;
}

SolveReport Supervisor::solve_portfolio(const Graph& g,
                                        cut::PortfolioOptions popts) const {
  const DeadlineClock clock(opts_.deadline_seconds);
  SolveReport rep;
  rep.degradation_path.emplace_back("portfolio");
  for (unsigned attempt = 0; attempt <= opts_.max_retries; ++attempt) {
    if (clock.expired()) break;
    if (attempt > 0) {
      ++rep.retries;
      clock.backoff(opts_, attempt - 1);
      if (clock.expired()) break;
    }
    try {
      if (clock.armed) {
        // Floor at 1 ms: the portfolio reads a budget of exactly 0 as
        // "no budget", which is the opposite of an expired deadline.
        popts.time_budget_seconds =
            std::max(clock.remaining_seconds(), 1e-3);
      }
      cut::PortfolioResult pr = cut::min_bisection_portfolio(g, popts);
      if (!pr.best.sides.empty()) {
        pr.best.method = "supervisor/" + pr.best.method;
        rep.best = std::move(pr.best);
        rep.status = pr.proved_optimal ? SolveStatus::kExactOptimal
                                       : SolveStatus::kDegradedHeuristic;
      }
      break;
    } catch (...) {
      if (!is_transient(std::current_exception())) throw;
      ++rep.faults_survived;
    }
  }
  rep.deadline_expired = clock.expired();
  rep.wall_seconds = clock.elapsed();
  return rep;
}

ExpansionReport Supervisor::solve_expansion(
    const Graph& g, expansion::ExactExpansionOptions eopts) const {
  const DeadlineClock clock(opts_.deadline_seconds);
  ExpansionReport rep;

  auto table_filled = [](const expansion::ExactExpansionResult& r) {
    for (std::size_t k = 1; k < r.table.size(); ++k) {
      if (r.table[k].ee != static_cast<std::size_t>(-1)) return true;
    }
    return false;
  };
  auto offer = [&](expansion::ExactExpansionResult&& r, unsigned step) {
    if (!table_filled(r) && rep.status != SolveStatus::kFailed) return;
    if (rep.status == SolveStatus::kExactOptimal) return;
    const bool had_result = table_filled(rep.result);
    if (had_result && !table_filled(r)) return;
    rep.result = std::move(r);
    rep.degradation_step = step;
    rep.status = rep.result.exactness == cut::Exactness::kExact
                     ? SolveStatus::kExactOptimal
                     : (table_filled(rep.result) ? SolveStatus::kDegradedHeuristic
                                                 : SolveStatus::kFailed);
  };

  const char* const kSteps[] = {"exact-sweep", "budgeted-sweep",
                                "size-limited"};
  bool done = false;
  for (unsigned step = 0; step < 3 && !done && !clock.expired(); ++step) {
    rep.degradation_path.emplace_back(kSteps[step]);
    for (unsigned attempt = 0; attempt <= opts_.max_retries; ++attempt) {
      if (clock.expired()) break;
      if (attempt > 0) {
        ++rep.retries;
        clock.backoff(opts_, attempt - 1);
        if (clock.expired()) break;
      }
      CancelToken token;
      clock.arm_token(token);
      std::atomic<std::uint64_t> progress{0};
      Watchdog dog(token, progress, opts_.heartbeat_interval_ms,
                   step < 2 ? opts_.stall_timeout_ms : 0.0);
      dog.start();
      try {
        expansion::ExactExpansionResult r;
        if (step < 2) {
          expansion::ExactExpansionOptions eo = eopts;
          eo.cancel = &token;
          eo.progress = &progress;
          if (step == 1) {
            eo.state_budget =
                eo.state_budget == 0
                    ? opts_.budgeted_exact_nodes
                    : std::min(eo.state_budget, opts_.budgeted_exact_nodes);
          }
          r = expansion::exact_expansion_full(g, eo);
        } else {
          // Last rung: per-size enumeration for the small set sizes,
          // which stays feasible when 2^N sweeps are not. Each entry is
          // exact; the TABLE is incomplete, hence kHeuristic.
          const std::size_t n = g.num_nodes();
          std::size_t kmax = eopts.max_k == 0 ? n : eopts.max_k;
          kmax = std::min<std::size_t>(kmax, 4);
          r.table.assign(kmax + 1, {});
          for (std::size_t k = 1; k <= kmax; ++k) {
            r.table[k].ee = static_cast<std::size_t>(-1);
            r.table[k].ne = static_cast<std::size_t>(-1);
          }
          r.exactness = cut::Exactness::kHeuristic;
          expansion::SizeKExpansionOptions so;
          so.cancel = &token;
          for (std::size_t k = 1; k <= kmax && !token.stop_requested();
               ++k) {
            auto kr = expansion::exact_expansion_of_size_full(g, k, so);
            r.visited_states += kr.visited_subsets;
            if (kr.entry.ee != static_cast<std::size_t>(-1)) {
              r.table[k] = std::move(kr.entry);
            }
          }
        }
        dog.stop();
        const bool stalled = dog.fired();
        if (stalled) ++rep.stalls_detected;
        const bool exact = r.exactness == cut::Exactness::kExact;
        offer(std::move(r), step);
        if (exact || (step == 2 && rep.status != SolveStatus::kFailed)) {
          done = true;
          break;
        }
        if (step == 1 && rep.status == SolveStatus::kDegradedHeuristic) {
          done = true;  // the budgeted rung exists to produce exactly this
          break;
        }
        if (!stalled) break;
      } catch (...) {
        dog.stop();
        if (dog.fired()) ++rep.stalls_detected;
        if (!is_transient(std::current_exception())) throw;
        ++rep.faults_survived;
      }
    }
  }

  rep.deadline_expired = clock.expired();
  rep.wall_seconds = clock.elapsed();
  return rep;
}

}  // namespace bfly::robust
