#include "robust/checkpoint.hpp"

#include <algorithm>
#include <array>
#include <limits>
#include <system_error>

#include "robust/wire.hpp"

namespace bfly::robust {

namespace {

using wire::fnv1a;
using wire::fnv1a_u64;
using wire::put_u32;
using wire::put_u64;
using wire::Reader;

constexpr std::array<std::uint8_t, 8> kMagic = {'B', 'F', 'L', 'Y',
                                                'S', 'N', 'P', '1'};
// v2 appends the symmetry-pruning mode byte and the transposition-table
// counters; v1 snapshots (from pre-symmetry builds) still decode, with
// those fields zero — i.e. they resume as plain-mode runs.
constexpr std::uint32_t kVersion = 2;
constexpr std::uint32_t kMinVersion = 1;
constexpr std::uint64_t kNoIncumbent =
    std::numeric_limits<std::uint64_t>::max();

void require_binary(const std::vector<std::uint8_t>& v, const char* field) {
  for (const std::uint8_t b : v) {
    if (b > 1) {
      throw SnapshotError(SnapshotFault::kMalformed,
                          std::string(field) + " holds a non-0/1 value");
    }
  }
}

}  // namespace

const char* to_string(SnapshotFault f) {
  switch (f) {
    case SnapshotFault::kIo: return "io";
    case SnapshotFault::kTruncated: return "truncated";
    case SnapshotFault::kBadMagic: return "bad-magic";
    case SnapshotFault::kBadVersion: return "bad-version";
    case SnapshotFault::kBadChecksum: return "bad-checksum";
    case SnapshotFault::kMalformed: return "malformed";
    case SnapshotFault::kWrongGraph: return "wrong-graph";
  }
  return "?";
}

std::uint64_t graph_fingerprint(const Graph& g) {
  std::uint64_t h = wire::kFnvOffset;
  h = fnv1a_u64(h, g.num_nodes());
  h = fnv1a_u64(h, g.num_edges());
  for (const auto& [u, v] : g.edges()) {
    h = fnv1a_u64(h, u);
    h = fnv1a_u64(h, v);
  }
  return h;
}

std::vector<std::uint8_t> encode_snapshot(const BisectionSnapshot& snap) {
  const cut::BranchBoundSearchState& st = snap.state;
  std::vector<std::uint8_t> out;
  out.reserve(64 + st.prefix_done.size() + st.incumbent_sides.size());
  out.insert(out.end(), kMagic.begin(), kMagic.end());
  put_u32(out, kVersion);
  put_u64(out, snap.fingerprint);
  put_u32(out, st.seed_depth);
  put_u64(out, st.prefix_done.size());
  out.insert(out.end(), st.prefix_done.begin(), st.prefix_done.end());
  // SIZE_MAX ("no incumbent yet") is widened to the u64 sentinel so the
  // format is identical on 32-bit size_t platforms.
  put_u64(out, st.incumbent_capacity == static_cast<std::size_t>(-1)
                   ? kNoIncumbent
                   : static_cast<std::uint64_t>(st.incumbent_capacity));
  put_u64(out, st.incumbent_sides.size());
  out.insert(out.end(), st.incumbent_sides.begin(), st.incumbent_sides.end());
  put_u64(out, st.nodes_spent);
  out.push_back(st.symmetry_mode);
  put_u64(out, st.tt_hits);
  put_u64(out, st.tt_stores);
  put_u64(out, fnv1a(wire::kFnvOffset, out.data(), out.size()));
  return out;
}

BisectionSnapshot decode_snapshot(std::span<const std::uint8_t> bytes) {
  Reader r(bytes);
  const auto magic = r.raw(kMagic.size(), "magic");
  if (!std::equal(magic.begin(), magic.end(), kMagic.begin())) {
    throw SnapshotError(SnapshotFault::kBadMagic,
                        "file does not start with the snapshot magic");
  }
  const std::uint32_t version = r.u32("version");
  if (version < kMinVersion || version > kVersion) {
    throw SnapshotError(SnapshotFault::kBadVersion,
                        "unknown snapshot version " + std::to_string(version));
  }

  BisectionSnapshot snap;
  cut::BranchBoundSearchState& st = snap.state;
  snap.fingerprint = r.u64("fingerprint");
  st.seed_depth = r.u32("seed_depth");
  st.prefix_done = r.sized_bytes("prefix_done");
  const std::uint64_t cap = r.u64("incumbent_capacity");
  st.incumbent_capacity = cap == kNoIncumbent
                              ? static_cast<std::size_t>(-1)
                              : static_cast<std::size_t>(cap);
  st.incumbent_sides = r.sized_bytes("incumbent_sides");
  st.nodes_spent = r.u64("nodes_spent");
  if (version >= 2) {
    st.symmetry_mode = r.u8("symmetry_mode");
    st.tt_hits = r.u64("tt_hits");
    st.tt_stores = r.u64("tt_stores");
  }

  // The checksum covers every byte before it; verify before trusting
  // the semantic checks' conclusions (a flipped length byte would have
  // thrown above already, a flipped payload byte lands here).
  const std::uint64_t declared = r.u64("checksum");
  const std::uint64_t actual =
      fnv1a(wire::kFnvOffset, bytes.data(), bytes.size() - r.remaining() - 8);
  if (declared != actual) {
    throw SnapshotError(SnapshotFault::kBadChecksum,
                        "payload does not match its checksum");
  }
  if (r.remaining() != 0) {
    throw SnapshotError(SnapshotFault::kMalformed,
                        std::to_string(r.remaining()) +
                            " trailing bytes after the checksum");
  }

  // Cross-field sanity: the decoder only returns states the seed-prefix
  // driver could actually have produced.
  if (st.seed_depth > 64) {
    throw SnapshotError(SnapshotFault::kMalformed,
                        "seed_depth " + std::to_string(st.seed_depth) +
                            " is implausible");
  }
  require_binary(st.prefix_done, "prefix_done");
  require_binary(st.incumbent_sides, "incumbent_sides");
  if (st.symmetry_mode > 1) {
    throw SnapshotError(SnapshotFault::kMalformed,
                        "symmetry_mode " + std::to_string(st.symmetry_mode) +
                            " is neither plain (0) nor pruned (1)");
  }
  const bool has_incumbent =
      st.incumbent_capacity != static_cast<std::size_t>(-1);
  if (has_incumbent != !st.incumbent_sides.empty()) {
    throw SnapshotError(SnapshotFault::kMalformed,
                        "incumbent capacity and side vector disagree on "
                        "whether an incumbent exists");
  }
  return snap;
}

void save_snapshot(const std::filesystem::path& path,
                   const BisectionSnapshot& snap) {
  wire::atomic_write_file(path, encode_snapshot(snap));
}

BisectionSnapshot load_snapshot(const std::filesystem::path& path,
                                std::uint64_t expect_fingerprint) {
  const std::vector<std::uint8_t> bytes = wire::read_file(path);
  BisectionSnapshot snap = decode_snapshot(bytes);
  if (expect_fingerprint != 0 && snap.fingerprint != expect_fingerprint) {
    throw SnapshotError(SnapshotFault::kWrongGraph,
                        "snapshot was taken on a different graph");
  }
  return snap;
}

bool snapshot_exists(const std::filesystem::path& path) {
  std::error_code ec;
  return std::filesystem::exists(path, ec) && !ec &&
         std::filesystem::file_size(path, ec) >= 20 && !ec;
}

BisectionSnapshot merge_snapshots(std::span<const BisectionSnapshot> shards) {
  if (shards.empty()) {
    throw SnapshotError(SnapshotFault::kMalformed,
                        "merge_snapshots needs at least one shard");
  }
  BisectionSnapshot merged = shards[0];
  for (std::size_t i = 1; i < shards.size(); ++i) {
    const BisectionSnapshot& s = shards[i];
    if (s.fingerprint != merged.fingerprint) {
      throw SnapshotError(SnapshotFault::kWrongGraph,
                          "shard snapshots were taken on different graphs");
    }
    if (s.state.seed_depth != merged.state.seed_depth ||
        s.state.prefix_done.size() != merged.state.prefix_done.size() ||
        s.state.symmetry_mode != merged.state.symmetry_mode) {
      throw SnapshotError(
          SnapshotFault::kMalformed,
          "shard snapshots disagree on seed depth, prefix count, or "
          "symmetry mode — not shards of one run");
    }
    for (std::size_t pi = 0; pi < merged.state.prefix_done.size(); ++pi) {
      merged.state.prefix_done[pi] |= s.state.prefix_done[pi];
    }
    if (s.state.incumbent_capacity < merged.state.incumbent_capacity) {
      merged.state.incumbent_capacity = s.state.incumbent_capacity;
      merged.state.incumbent_sides = s.state.incumbent_sides;
    }
    merged.state.nodes_spent += s.state.nodes_spent;
    merged.state.tt_hits += s.state.tt_hits;
    merged.state.tt_stores += s.state.tt_stores;
  }
  return merged;
}

bool snapshot_closed(const BisectionSnapshot& snap) {
  for (const std::uint8_t done : snap.state.prefix_done) {
    if (done == 0) return false;
  }
  return !snap.state.prefix_done.empty();
}

}  // namespace bfly::robust
