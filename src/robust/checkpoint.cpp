#include "robust/checkpoint.hpp"

#include <algorithm>
#include <array>
#include <fstream>
#include <iterator>
#include <limits>
#include <system_error>

namespace bfly::robust {

namespace {

constexpr std::array<std::uint8_t, 8> kMagic = {'B', 'F', 'L', 'Y',
                                                'S', 'N', 'P', '1'};
// v2 appends the symmetry-pruning mode byte and the transposition-table
// counters; v1 snapshots (from pre-symmetry builds) still decode, with
// those fields zero — i.e. they resume as plain-mode runs.
constexpr std::uint32_t kVersion = 2;
constexpr std::uint32_t kMinVersion = 1;
constexpr std::uint64_t kNoIncumbent =
    std::numeric_limits<std::uint64_t>::max();
// Plausibility ceiling on every count field: far above any graph this
// library solves exactly (~64 nodes, thousands of seed prefixes), far
// below anything that could make a corrupt header allocate real memory.
constexpr std::uint64_t kMaxCount = std::uint64_t{1} << 26;

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

std::uint64_t fnv1a(std::uint64_t h, const std::uint8_t* data,
                    std::size_t len) {
  for (std::size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t fnv1a_u64(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= static_cast<std::uint8_t>(v >> (8 * i));
    h *= kFnvPrime;
  }
  return h;
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

// Bounds-checked little-endian reader: every accessor throws kTruncated
// instead of reading past the end, so the decoder below can consume
// attacker-controlled bytes without a single unchecked offset.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  [[nodiscard]] std::size_t remaining() const noexcept {
    return bytes_.size() - pos_;
  }

  std::uint8_t u8(const char* field) {
    need(1, field);
    return bytes_[pos_++];
  }

  std::uint32_t u32(const char* field) {
    need(4, field);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(bytes_[pos_ + i]) << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  std::uint64_t u64(const char* field) {
    need(8, field);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(bytes_[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  std::span<const std::uint8_t> raw(std::size_t n, const char* field) {
    need(n, field);
    auto s = bytes_.subspan(pos_, n);
    pos_ += n;
    return s;
  }

  /// A length field followed by that many bytes, with the plausibility
  /// cap applied BEFORE any allocation.
  std::vector<std::uint8_t> sized_bytes(const char* field) {
    const std::uint64_t n = u64(field);
    if (n > kMaxCount) {
      throw SnapshotError(SnapshotFault::kMalformed,
                          std::string(field) + " count " + std::to_string(n) +
                              " exceeds the plausibility ceiling");
    }
    if (n > remaining()) {
      throw SnapshotError(SnapshotFault::kTruncated,
                          std::string(field) + " declares " +
                              std::to_string(n) + " bytes but only " +
                              std::to_string(remaining()) + " remain");
    }
    auto s = raw(static_cast<std::size_t>(n), field);
    return {s.begin(), s.end()};
  }

 private:
  void need(std::size_t n, const char* field) const {
    if (n > remaining()) {
      throw SnapshotError(SnapshotFault::kTruncated,
                          std::string("stream ends inside ") + field);
    }
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

void require_binary(const std::vector<std::uint8_t>& v, const char* field) {
  for (const std::uint8_t b : v) {
    if (b > 1) {
      throw SnapshotError(SnapshotFault::kMalformed,
                          std::string(field) + " holds a non-0/1 value");
    }
  }
}

}  // namespace

const char* to_string(SnapshotFault f) {
  switch (f) {
    case SnapshotFault::kIo: return "io";
    case SnapshotFault::kTruncated: return "truncated";
    case SnapshotFault::kBadMagic: return "bad-magic";
    case SnapshotFault::kBadVersion: return "bad-version";
    case SnapshotFault::kBadChecksum: return "bad-checksum";
    case SnapshotFault::kMalformed: return "malformed";
    case SnapshotFault::kWrongGraph: return "wrong-graph";
  }
  return "?";
}

std::uint64_t graph_fingerprint(const Graph& g) {
  std::uint64_t h = kFnvOffset;
  h = fnv1a_u64(h, g.num_nodes());
  h = fnv1a_u64(h, g.num_edges());
  for (const auto& [u, v] : g.edges()) {
    h = fnv1a_u64(h, u);
    h = fnv1a_u64(h, v);
  }
  return h;
}

std::vector<std::uint8_t> encode_snapshot(const BisectionSnapshot& snap) {
  const cut::BranchBoundSearchState& st = snap.state;
  std::vector<std::uint8_t> out;
  out.reserve(64 + st.prefix_done.size() + st.incumbent_sides.size());
  out.insert(out.end(), kMagic.begin(), kMagic.end());
  put_u32(out, kVersion);
  put_u64(out, snap.fingerprint);
  put_u32(out, st.seed_depth);
  put_u64(out, st.prefix_done.size());
  out.insert(out.end(), st.prefix_done.begin(), st.prefix_done.end());
  // SIZE_MAX ("no incumbent yet") is widened to the u64 sentinel so the
  // format is identical on 32-bit size_t platforms.
  put_u64(out, st.incumbent_capacity == static_cast<std::size_t>(-1)
                   ? kNoIncumbent
                   : static_cast<std::uint64_t>(st.incumbent_capacity));
  put_u64(out, st.incumbent_sides.size());
  out.insert(out.end(), st.incumbent_sides.begin(), st.incumbent_sides.end());
  put_u64(out, st.nodes_spent);
  out.push_back(st.symmetry_mode);
  put_u64(out, st.tt_hits);
  put_u64(out, st.tt_stores);
  put_u64(out, fnv1a(kFnvOffset, out.data(), out.size()));
  return out;
}

BisectionSnapshot decode_snapshot(std::span<const std::uint8_t> bytes) {
  Reader r(bytes);
  const auto magic = r.raw(kMagic.size(), "magic");
  if (!std::equal(magic.begin(), magic.end(), kMagic.begin())) {
    throw SnapshotError(SnapshotFault::kBadMagic,
                        "file does not start with the snapshot magic");
  }
  const std::uint32_t version = r.u32("version");
  if (version < kMinVersion || version > kVersion) {
    throw SnapshotError(SnapshotFault::kBadVersion,
                        "unknown snapshot version " + std::to_string(version));
  }

  BisectionSnapshot snap;
  cut::BranchBoundSearchState& st = snap.state;
  snap.fingerprint = r.u64("fingerprint");
  st.seed_depth = r.u32("seed_depth");
  st.prefix_done = r.sized_bytes("prefix_done");
  const std::uint64_t cap = r.u64("incumbent_capacity");
  st.incumbent_capacity = cap == kNoIncumbent
                              ? static_cast<std::size_t>(-1)
                              : static_cast<std::size_t>(cap);
  st.incumbent_sides = r.sized_bytes("incumbent_sides");
  st.nodes_spent = r.u64("nodes_spent");
  if (version >= 2) {
    st.symmetry_mode = r.u8("symmetry_mode");
    st.tt_hits = r.u64("tt_hits");
    st.tt_stores = r.u64("tt_stores");
  }

  // The checksum covers every byte before it; verify before trusting
  // the semantic checks' conclusions (a flipped length byte would have
  // thrown above already, a flipped payload byte lands here).
  const std::uint64_t declared = r.u64("checksum");
  const std::uint64_t actual =
      fnv1a(kFnvOffset, bytes.data(), bytes.size() - r.remaining() - 8);
  if (declared != actual) {
    throw SnapshotError(SnapshotFault::kBadChecksum,
                        "payload does not match its checksum");
  }
  if (r.remaining() != 0) {
    throw SnapshotError(SnapshotFault::kMalformed,
                        std::to_string(r.remaining()) +
                            " trailing bytes after the checksum");
  }

  // Cross-field sanity: the decoder only returns states the seed-prefix
  // driver could actually have produced.
  if (st.seed_depth > 64) {
    throw SnapshotError(SnapshotFault::kMalformed,
                        "seed_depth " + std::to_string(st.seed_depth) +
                            " is implausible");
  }
  require_binary(st.prefix_done, "prefix_done");
  require_binary(st.incumbent_sides, "incumbent_sides");
  if (st.symmetry_mode > 1) {
    throw SnapshotError(SnapshotFault::kMalformed,
                        "symmetry_mode " + std::to_string(st.symmetry_mode) +
                            " is neither plain (0) nor pruned (1)");
  }
  const bool has_incumbent =
      st.incumbent_capacity != static_cast<std::size_t>(-1);
  if (has_incumbent != !st.incumbent_sides.empty()) {
    throw SnapshotError(SnapshotFault::kMalformed,
                        "incumbent capacity and side vector disagree on "
                        "whether an incumbent exists");
  }
  return snap;
}

void save_snapshot(const std::filesystem::path& path,
                   const BisectionSnapshot& snap) {
  const std::vector<std::uint8_t> bytes = encode_snapshot(snap);
  std::filesystem::path tmp = path;
  tmp += ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw SnapshotError(SnapshotFault::kIo,
                          "cannot open " + tmp.string() + " for writing");
    }
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      throw SnapshotError(SnapshotFault::kIo,
                          "short write to " + tmp.string());
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    throw SnapshotError(SnapshotFault::kIo,
                        "cannot rename snapshot into " + path.string());
  }
}

BisectionSnapshot load_snapshot(const std::filesystem::path& path,
                                std::uint64_t expect_fingerprint) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw SnapshotError(SnapshotFault::kIo,
                        "cannot open " + path.string() + " for reading");
  }
  std::vector<std::uint8_t> bytes{std::istreambuf_iterator<char>(in),
                                  std::istreambuf_iterator<char>()};
  if (in.bad()) {
    throw SnapshotError(SnapshotFault::kIo, "read error on " + path.string());
  }
  BisectionSnapshot snap = decode_snapshot(bytes);
  if (expect_fingerprint != 0 && snap.fingerprint != expect_fingerprint) {
    throw SnapshotError(SnapshotFault::kWrongGraph,
                        "snapshot was taken on a different graph");
  }
  return snap;
}

bool snapshot_exists(const std::filesystem::path& path) {
  std::error_code ec;
  return std::filesystem::exists(path, ec) && !ec &&
         std::filesystem::file_size(path, ec) >= 20 && !ec;
}

BisectionSnapshot merge_snapshots(std::span<const BisectionSnapshot> shards) {
  if (shards.empty()) {
    throw SnapshotError(SnapshotFault::kMalformed,
                        "merge_snapshots needs at least one shard");
  }
  BisectionSnapshot merged = shards[0];
  for (std::size_t i = 1; i < shards.size(); ++i) {
    const BisectionSnapshot& s = shards[i];
    if (s.fingerprint != merged.fingerprint) {
      throw SnapshotError(SnapshotFault::kWrongGraph,
                          "shard snapshots were taken on different graphs");
    }
    if (s.state.seed_depth != merged.state.seed_depth ||
        s.state.prefix_done.size() != merged.state.prefix_done.size() ||
        s.state.symmetry_mode != merged.state.symmetry_mode) {
      throw SnapshotError(
          SnapshotFault::kMalformed,
          "shard snapshots disagree on seed depth, prefix count, or "
          "symmetry mode — not shards of one run");
    }
    for (std::size_t pi = 0; pi < merged.state.prefix_done.size(); ++pi) {
      merged.state.prefix_done[pi] |= s.state.prefix_done[pi];
    }
    if (s.state.incumbent_capacity < merged.state.incumbent_capacity) {
      merged.state.incumbent_capacity = s.state.incumbent_capacity;
      merged.state.incumbent_sides = s.state.incumbent_sides;
    }
    merged.state.nodes_spent += s.state.nodes_spent;
    merged.state.tt_hits += s.state.tt_hits;
    merged.state.tt_stores += s.state.tt_stores;
  }
  return merged;
}

bool snapshot_closed(const BisectionSnapshot& snap) {
  for (const std::uint8_t done : snap.state.prefix_done) {
    if (done == 0) return false;
  }
  return !snap.state.prefix_done.empty();
}

}  // namespace bfly::robust
