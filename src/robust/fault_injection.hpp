// Deterministic fault injection for the robustness test surface.
//
// A FaultPlan is a seeded schedule of injectable failure points: each
// site carries a rule saying on which hit (a process-global, per-site
// counter) the fault fires and what it does — throw std::bad_alloc,
// throw FaultInjectedError / SimulatedCrash, or sleep to model a
// stalled worker or delayed cancellation. The FaultInjector is armed
// with a plan by tests (see ScopedFaultPlan) and consulted from
// BFLY_FAULT_POINT(site) hooks compiled into core/thread_pool,
// cut/branch_bound, cut/portfolio, and expansion/expansion.
//
// Builds configured with -DBFLY_FAULT_INJECTION=OFF (the default for
// plain Release trees, see the top-level CMakeLists.txt) compile every
// hook to ((void)0): the injector, its counters, and its branch all
// vanish, so production binaries pay nothing. Everything here is
// header-only so the lowest layer (bfly_core) can host hooks without
// depending on the bfly_robust library.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <new>
#include <stdexcept>
#include <string>
#include <thread>

#include "core/rng.hpp"

namespace bfly::fault {

/// Injectable failure points, one hit counter each.
enum class Site : unsigned {
  kAlloc = 0,     ///< allocation failure: throws std::bad_alloc
  kTaskSpawn,     ///< worker/task spawn failure: throws FaultInjectedError
  kCancelDelay,   ///< delayed cancellation: request_stop sleeps first
  kWorkerStall,   ///< stalled worker: sleeps before running its task
  kCrash,         ///< simulated crash: throws SimulatedCrash mid-search
  kEnqueue,       ///< service admission failure: throws FaultInjectedError
  kCacheWrite,    ///< service cache persist failure: throws FaultInjectedError
  kDispatch,      ///< service executor dispatch failure: throws FaultInjectedError
};
inline constexpr unsigned kNumSites = 8;

[[nodiscard]] inline const char* to_string(Site s) {
  switch (s) {
    case Site::kAlloc: return "alloc";
    case Site::kTaskSpawn: return "task-spawn";
    case Site::kCancelDelay: return "cancel-delay";
    case Site::kWorkerStall: return "worker-stall";
    case Site::kCrash: return "crash";
    case Site::kEnqueue: return "enqueue";
    case Site::kCacheWrite: return "cache-write";
    case Site::kDispatch: return "dispatch";
  }
  return "?";
}

/// True when BFLY_FAULT_POINT hooks are compiled into this build.
[[nodiscard]] constexpr bool compiled_in() noexcept {
#if BFLY_FAULT_INJECTION
  return true;
#else
  return false;
#endif
}

/// Thrown by a firing fault point (except kAlloc, which throws
/// std::bad_alloc to exercise real allocation-failure handling).
class FaultInjectedError : public std::runtime_error {
 public:
  FaultInjectedError(Site site, const std::string& what)
      : std::runtime_error("injected fault [" + std::string(to_string(site)) +
                           "]: " + what),
        site_(site) {}

  [[nodiscard]] Site site() const noexcept { return site_; }

 private:
  Site site_;
};

/// A kCrash fault: models the process dying mid-search. The supervisor
/// treats it like any transient failure (retry + resume from the last
/// checkpoint); tests use it to cut a solve short at a chosen point.
class SimulatedCrash : public FaultInjectedError {
 public:
  explicit SimulatedCrash(const std::string& what)
      : FaultInjectedError(Site::kCrash, what) {}
};

/// Per-site firing rule: fire on hits [fire_at_hit, fire_at_hit +
/// fire_count) of that site's process-global counter (1-based;
/// fire_at_hit 0 disables the site). Timing sites sleep delay_ms.
struct SiteRule {
  std::uint64_t fire_at_hit = 0;
  std::uint32_t fire_count = 1;
  std::uint32_t delay_ms = 0;
};

/// A deterministic schedule of faults: one rule per site. Identical
/// plans armed over identical (serial) executions fire identically.
struct FaultPlan {
  std::array<SiteRule, kNumSites> rules{};

  FaultPlan& set(Site site, std::uint64_t fire_at_hit,
                 std::uint32_t fire_count = 1, std::uint32_t delay_ms = 0) {
    rules[static_cast<unsigned>(site)] = {fire_at_hit, fire_count, delay_ms};
    return *this;
  }

  [[nodiscard]] const SiteRule& rule(Site site) const {
    return rules[static_cast<unsigned>(site)];
  }

  /// Seeded pseudo-random plan for the CI seed sweep: each site is
  /// enabled with probability 1/2, firing within its first ~16 hits;
  /// timing sites get short (<= 50 ms) delays so sweeps stay bounded.
  [[nodiscard]] static FaultPlan random(std::uint64_t seed) {
    SplitMix64 sm(seed);
    FaultPlan plan;
    for (unsigned i = 0; i < kNumSites; ++i) {
      const std::uint64_t r = sm.next();
      if ((r & 1u) == 0) continue;  // site stays quiet
      SiteRule& rule = plan.rules[i];
      rule.fire_at_hit = 1 + ((r >> 1) & 0xfu);
      rule.fire_count = 1 + static_cast<std::uint32_t>((r >> 5) & 0x3u);
      rule.delay_ms = 1 + static_cast<std::uint32_t>((r >> 7) & 0x1fu);
    }
    return plan;
  }
};

/// Process-global injector: counts hits per site and fires the armed
/// plan's rules. Thread-safe; counters reset on arm() so a plan's hit
/// numbers always refer to the execution it was armed for.
class FaultInjector {
 public:
  static FaultInjector& instance() {
    static FaultInjector inj;
    return inj;
  }

  void arm(const FaultPlan& plan) {
    plan_ = plan;
    for (auto& h : hits_) h.store(0, std::memory_order_relaxed);
    for (auto& f : fired_) f.store(0, std::memory_order_relaxed);
    armed_.store(true, std::memory_order_release);
  }

  void disarm() { armed_.store(false, std::memory_order_release); }

  [[nodiscard]] bool armed() const noexcept {
    return armed_.load(std::memory_order_acquire);
  }

  /// Hits observed at this site since the last arm().
  [[nodiscard]] std::uint64_t hits(Site site) const noexcept {
    return hits_[static_cast<unsigned>(site)].load(std::memory_order_relaxed);
  }

  /// Faults actually fired at this site since the last arm().
  [[nodiscard]] std::uint64_t fired(Site site) const noexcept {
    return fired_[static_cast<unsigned>(site)].load(std::memory_order_relaxed);
  }

  /// The hook body behind BFLY_FAULT_POINT: count the hit and fire the
  /// armed rule when the counter lands in its window. Only the timing
  /// sites (kCancelDelay, kWorkerStall) are safe in noexcept contexts —
  /// they sleep instead of throwing.
  void on_point(Site site) {
    if (!armed_.load(std::memory_order_acquire)) return;
    const unsigned i = static_cast<unsigned>(site);
    const SiteRule& rule = plan_.rules[i];
    const std::uint64_t hit =
        hits_[i].fetch_add(1, std::memory_order_relaxed) + 1;
    if (rule.fire_at_hit == 0 || hit < rule.fire_at_hit ||
        hit >= rule.fire_at_hit + rule.fire_count) {
      return;
    }
    fired_[i].fetch_add(1, std::memory_order_relaxed);
    switch (site) {
      case Site::kAlloc:
        throw std::bad_alloc();
      case Site::kTaskSpawn:
        throw FaultInjectedError(site, "task spawn failed");
      case Site::kCancelDelay:
      case Site::kWorkerStall:
        std::this_thread::sleep_for(std::chrono::milliseconds(rule.delay_ms));
        return;
      case Site::kCrash:
        throw SimulatedCrash("crash at " + std::string(to_string(site)) +
                             " hit " + std::to_string(hit));
      case Site::kEnqueue:
        throw FaultInjectedError(site, "admission queue rejected the request");
      case Site::kCacheWrite:
        throw FaultInjectedError(site, "cache persist failed");
      case Site::kDispatch:
        throw FaultInjectedError(site, "executor dispatch failed");
    }
  }

 private:
  FaultInjector() = default;

  std::atomic<bool> armed_{false};
  FaultPlan plan_{};  // written only while disarmed (arm is the publish)
  std::array<std::atomic<std::uint64_t>, kNumSites> hits_{};
  std::array<std::atomic<std::uint64_t>, kNumSites> fired_{};
};

/// RAII plan arming for tests: arms on construction, disarms on scope
/// exit so a throwing test cannot leak an armed plan into its siblings.
class ScopedFaultPlan {
 public:
  explicit ScopedFaultPlan(const FaultPlan& plan) {
    FaultInjector::instance().arm(plan);
  }
  ~ScopedFaultPlan() { FaultInjector::instance().disarm(); }
  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;
};

}  // namespace bfly::fault

#if BFLY_FAULT_INJECTION
#define BFLY_FAULT_POINT(site) \
  ::bfly::fault::FaultInjector::instance().on_point(::bfly::fault::Site::site)
#else
#define BFLY_FAULT_POINT(site) ((void)0)
#endif
