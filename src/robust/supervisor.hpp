// Resilient solve supervisor: deadline, watchdog, retry, degrade.
//
// Research-scale sweeps die in dumb ways — a worker wedges, an
// allocation fails at 3 a.m., the queue kills the job — and the
// difference between a lost night and a finished table is whether the
// driver survives them. The Supervisor wraps the exact bisection and
// expansion engines with exactly that machinery:
//
//   * a wall-clock deadline for the WHOLE solve, armed on the shared
//     CancelToken so every engine in the ladder honors it;
//   * a heartbeat watchdog — solvers publish their pooled node count
//     into a progress cell at their flush cadence; a watchdog thread
//     that sees the cell freeze for stall_timeout_ms cancels the
//     attempt, and the retry (resuming from the last checkpoint)
//     effectively replaces the stalled workers;
//   * bounded retry with exponential backoff around transient failures
//     (std::bad_alloc, injected faults, simulated crashes) — never
//     around PreconditionError, which is a bug, not weather;
//   * a graceful-degradation ladder: exact bitset search → node-
//     budgeted exact → multilevel → FM, so the caller ALWAYS gets the
//     best-known CutResult with honest provenance instead of an
//     exception;
//   * checkpoint/resume through robust/checkpoint: the exact step
//     snapshots its search state after every seed-prefix subtree, and
//     a rerun (same process after a crash-retry, or a fresh process
//     after SIGTERM) resumes to the identical optimum and bound.
//
// Every report says what actually happened: which ladder step produced
// the answer, how many retries and faults it took, whether a stall was
// detected, whether the solve resumed from disk.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "core/graph.hpp"
#include "cut/portfolio.hpp"
#include "expansion/expansion.hpp"

namespace bfly::robust {

/// Outcome class of a supervised solve.
enum class SolveStatus {
  kExactOptimal,        ///< the exact engine completed its proof
  kDegradedHeuristic,   ///< a valid cut/table, but no optimality claim
  kFailed,              ///< every ladder step failed; no result at all
};

[[nodiscard]] const char* to_string(SolveStatus s);

/// Retry backoff schedule: delay_ms(attempt) is a pure function of the
/// policy, so the service layer and tests can pin an exact, replayable
/// schedule (and a jittered production schedule is still deterministic
/// given its seed).
struct BackoffPolicy {
  double initial_ms = 5.0;    ///< delay before retry attempt 0
  double multiplier = 2.0;    ///< exponential growth per attempt
  double cap_ms = 2000.0;     ///< schedule ceiling (0 = uncapped)
  /// Fraction of the base delay added as deterministic jitter in
  /// [0, jitter_fraction * base), keyed by (jitter_seed, attempt) so
  /// identical policies always sleep identically. 0 = no jitter.
  double jitter_fraction = 0.0;
  std::uint64_t jitter_seed = 0;

  /// The full delay for retry `attempt` (0-based), jitter included.
  [[nodiscard]] double delay_ms(unsigned attempt) const;
};

struct SupervisorOptions {
  /// Wall-clock budget for the whole solve, every retry and ladder step
  /// included (0 = unlimited). On expiry the supervisor stops starting
  /// work and returns the best result it already holds.
  double deadline_seconds = 0.0;
  /// Transient-failure retries per ladder step.
  unsigned max_retries = 3;
  /// Backoff schedule between retries, truncated at sleep time so it
  /// never runs past the deadline.
  BackoffPolicy backoff;
  /// Watchdog poll period, and how long the progress cell may freeze
  /// before the attempt is declared stalled and cancelled
  /// (stall_timeout_ms 0 = watchdog off).
  double heartbeat_interval_ms = 25.0;
  double stall_timeout_ms = 0.0;
  /// Snapshot file for the exact step (empty = checkpointing off). An
  /// existing valid snapshot for the same graph is resumed; a completed
  /// solve removes the file.
  std::filesystem::path checkpoint_path;
  /// Worker threads for the underlying engines (1 = serial and fully
  /// deterministic, 0 = default_thread_count()).
  unsigned num_threads = 1;
  /// Node budget for the "budgeted exact" ladder step.
  std::uint64_t budgeted_exact_nodes = 1ull << 22;
  /// Seed for the heuristic ladder steps.
  std::uint64_t master_seed = 0xb15ec7ull;
};

/// What a supervised bisection solve did, and how much it survived.
struct SolveReport {
  /// Best-known cut; method is "supervisor/<underlying method>". Check
  /// status (or best.exactness) before quoting it as a width.
  cut::CutResult best;
  SolveStatus status = SolveStatus::kFailed;
  /// Ladder steps actually attempted, in order ("exact",
  /// "exact-budgeted", "multilevel", "fm").
  std::vector<std::string> degradation_path;
  /// Index into the ladder of the step that produced `best`
  /// (0 = the full exact engine; larger = further degraded).
  unsigned degradation_step = 0;
  unsigned retries = 0;          ///< transient-failure retries consumed
  unsigned faults_survived = 0;  ///< exceptions absorbed and recovered
  unsigned stalls_detected = 0;  ///< watchdog cancellations
  bool resumed = false;          ///< restored state from a checkpoint
  bool deadline_expired = false;
  double wall_seconds = 0.0;
};

/// Same survival telemetry for a supervised expansion tabulation.
struct ExpansionReport {
  expansion::ExactExpansionResult result;
  SolveStatus status = SolveStatus::kFailed;
  std::vector<std::string> degradation_path;
  unsigned degradation_step = 0;
  unsigned retries = 0;
  unsigned faults_survived = 0;
  unsigned stalls_detected = 0;
  bool deadline_expired = false;
  double wall_seconds = 0.0;
};

class Supervisor {
 public:
  explicit Supervisor(SupervisorOptions opts = {});

  /// Minimum bisection through the degradation ladder. Always returns;
  /// throws only PreconditionError (caller bug) — never a transient.
  [[nodiscard]] SolveReport solve_bisection(const Graph& g) const;

  /// The full portfolio under deadline + retry (the portfolio already
  /// owns its own racing/cancellation; the supervisor adds survival).
  [[nodiscard]] SolveReport solve_portfolio(
      const Graph& g, cut::PortfolioOptions popts = {}) const;

  /// Expansion tabulation through its own ladder: full exact sweep →
  /// state-budgeted sweep → per-size enumeration for small k.
  [[nodiscard]] ExpansionReport solve_expansion(
      const Graph& g, expansion::ExactExpansionOptions eopts = {}) const;

  [[nodiscard]] const SupervisorOptions& options() const noexcept {
    return opts_;
  }

 private:
  SupervisorOptions opts_;
};

}  // namespace bfly::robust
