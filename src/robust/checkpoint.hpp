// Versioned, checksummed snapshots of branch-and-bound search state.
//
// A BisectionSnapshot binds a cut::BranchBoundSearchState (the seed-
// prefix completion map, the incumbent, and the pooled node count — see
// cut/branch_bound.hpp) to a fingerprint of the graph it was taken on.
// The wire format is a little-endian byte stream:
//
//   magic "BFLYSNP1" | u32 version | payload | u64 FNV-1a of the above
//
// so a resumed process can refuse, with a structured SnapshotError,
// anything that is not a complete, untampered snapshot of the same
// problem: wrong magic, unknown version, truncation, flipped bits,
// implausible counts, non-0/1 side values, or a different graph. The
// decoder never trusts a length field before bounds-checking it, and
// caps every count at a plausibility limit so corrupt headers cannot
// drive huge allocations (fuzz/fuzz_checkpoint.cpp hammers exactly
// this surface).
//
// save_snapshot() writes to a sibling temp file and renames it into
// place, so a crash mid-write leaves either the old snapshot or none —
// never a torn file.
#pragma once

#include <cstdint>
#include <filesystem>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/graph.hpp"
#include "cut/branch_bound.hpp"

namespace bfly::robust {

/// Why a snapshot was rejected; carried by SnapshotError so tests and
/// the fuzz harness can assert on the failure class, not message text.
enum class SnapshotFault {
  kIo,           ///< file missing / unreadable / unwritable
  kTruncated,    ///< stream ends before a declared field
  kBadMagic,     ///< not a snapshot file at all
  kBadVersion,   ///< snapshot from an unknown format revision
  kBadChecksum,  ///< payload bytes do not match the trailing checksum
  kMalformed,    ///< fields are internally inconsistent or implausible
  kWrongGraph,   ///< fingerprint does not match the presented graph
};

[[nodiscard]] const char* to_string(SnapshotFault f);

/// Structured rejection: every failure path in this module throws this
/// (never crashes, never returns a half-decoded snapshot).
class SnapshotError : public std::runtime_error {
 public:
  SnapshotError(SnapshotFault fault, const std::string& what)
      : std::runtime_error(std::string("snapshot rejected [") +
                           to_string(fault) + "]: " + what),
        fault_(fault) {}

  [[nodiscard]] SnapshotFault fault() const noexcept { return fault_; }

 private:
  SnapshotFault fault_;
};

/// Order-independent-of-nothing fingerprint of a graph's exact edge
/// list (FNV-1a over node count, edge count, and every endpoint pair in
/// storage order). Two graphs built by the same deterministic generator
/// collide exactly when they are the same graph, which is the contract
/// resume needs.
[[nodiscard]] std::uint64_t graph_fingerprint(const Graph& g);

/// A search state bound to the graph it belongs to.
struct BisectionSnapshot {
  std::uint64_t fingerprint = 0;
  cut::BranchBoundSearchState state;
};

/// Serializes to the wire format described above. Never fails.
[[nodiscard]] std::vector<std::uint8_t> encode_snapshot(
    const BisectionSnapshot& snap);

/// Parses and fully validates a snapshot byte stream. Throws
/// SnapshotError on any defect; a returned snapshot is structurally
/// sound (counts consistent, sides 0/1, checksum verified).
[[nodiscard]] BisectionSnapshot decode_snapshot(
    std::span<const std::uint8_t> bytes);

/// Atomically replaces path with the encoded snapshot (temp + rename).
/// Throws SnapshotError{kIo} when the filesystem refuses.
void save_snapshot(const std::filesystem::path& path,
                   const BisectionSnapshot& snap);

/// Reads and decodes path. When expect_fingerprint is nonzero, also
/// checks the snapshot belongs to that graph (throws kWrongGraph).
[[nodiscard]] BisectionSnapshot load_snapshot(
    const std::filesystem::path& path, std::uint64_t expect_fingerprint = 0);

/// True when path exists and holds at least a snapshot header (cheap
/// pre-flight for "should this solve resume?" — the full validation
/// still happens in load_snapshot).
[[nodiscard]] bool snapshot_exists(const std::filesystem::path& path);

/// Reassembles a multi-process sharded search (BranchBoundOptions::
/// shard_count) into one resumable state: the shards' prefix-done maps
/// are OR-ed (each shard only ever searched — and marked — prefixes of
/// its own residue class), the best incumbent wins (capacity ties break
/// toward the earlier argument, keeping the merge order-insensitive up
/// to witness choice), and node/transposition counters sum. Every shard
/// must come from the same run shape: equal fingerprints (else
/// kWrongGraph), equal seed_depth / prefix count / symmetry_mode (else
/// kMalformed), non-empty input (else kMalformed). Resuming the merged
/// snapshot unsharded closes the proof: when every prefix is done the
/// resume returns immediately with exactness kExact.
[[nodiscard]] BisectionSnapshot merge_snapshots(
    std::span<const BisectionSnapshot> shards);

/// True when a (typically merged) snapshot's every seed prefix is done —
/// the search space is covered and an unsharded resume will simply
/// certify the incumbent instead of searching.
[[nodiscard]] bool snapshot_closed(const BisectionSnapshot& snap);

}  // namespace bfly::robust
