// Checked-precondition helpers and the contracts layer.
//
// Three tiers, from always-on to checked-build-only:
//
//   * BFLY_CHECK(expr, msg) — always on. Guards public API preconditions
//     whose violation would otherwise corrupt results silently (wrong-size
//     partition, non-power-of-two butterfly order, ...). Throws
//     PreconditionError naming the violated expression.
//   * BFLY_ASSERT(expr) / BFLY_ASSERT_MSG(expr, msg) — internal invariants
//     on hot paths (gain-bucket consistency, incumbent monotonicity, ...).
//     Active in checked builds; in NDEBUG builds the expression is
//     discarded through sizeof so it still type-checks (variables used only
//     in asserts never trigger -Wunused-variable under -Werror) but costs
//     nothing at run time.
//   * deep validate() self-checks (Graph::validate, Partition::validate,
//     cut::validate_cut, embed::validate_embedding, ...) — full-structure
//     recounts invoked at solver exit under checked builds and callable
//     from tests always.
//
// bfly::checked_build() reports at compile time which tier is active, so
// callers can gate O(N)+ validation work the same way the macros gate
// O(1) expression checks.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace bfly {

/// Exception thrown on violated API preconditions.
class PreconditionError : public std::logic_error {
 public:
  explicit PreconditionError(const std::string& what)
      : std::logic_error(what) {}
};

/// True when internal invariant checks (BFLY_ASSERT*, solver-exit deep
/// validation) are compiled in — i.e. NDEBUG is not defined.
[[nodiscard]] constexpr bool checked_build() noexcept {
#ifdef NDEBUG
  return false;
#else
  return true;
#endif
}

/// True when the build is instrumented by AddressSanitizer or
/// ThreadSanitizer. Long-running sweeps use this (alongside
/// checked_build()) to trade sweep size for instrumentation headroom:
/// a 10x-slower build re-running the biggest instances only burns CI
/// minutes without exercising any new code paths.
[[nodiscard]] constexpr bool sanitized_build() noexcept {
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  return true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
  return true;
#else
  return false;
#endif
#else
  return false;
#endif
}

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "BFLY_CHECK failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw PreconditionError(os.str());
}
}  // namespace detail

}  // namespace bfly

#define BFLY_CHECK(expr, msg)                                         \
  do {                                                                \
    if (!(expr)) {                                                    \
      ::bfly::detail::check_failed(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                 \
  } while (false)

#ifdef NDEBUG
// sizeof-discard: the expression is never evaluated but still
// type-checked, so asserts cannot rot and assert-only variables stay
// "used" under -Werror Release builds.
#define BFLY_ASSERT(expr) ((void)sizeof(!(expr)))
#define BFLY_ASSERT_MSG(expr, msg) ((void)sizeof(!(expr)), (void)sizeof(msg))
#else
#define BFLY_ASSERT(expr) BFLY_CHECK(expr, "internal invariant")
#define BFLY_ASSERT_MSG(expr, msg) BFLY_CHECK(expr, (msg))
#endif
