// Checked-precondition helpers.
//
// BFLY_CHECK is always on: it guards public API preconditions whose
// violation would otherwise corrupt results silently (wrong-size partition,
// non-power-of-two butterfly order, ...). BFLY_ASSERT compiles away in
// release builds and guards internal invariants on hot paths.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace bfly {

/// Exception thrown on violated API preconditions.
class PreconditionError : public std::logic_error {
 public:
  explicit PreconditionError(const std::string& what)
      : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "BFLY_CHECK failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw PreconditionError(os.str());
}
}  // namespace detail

}  // namespace bfly

#define BFLY_CHECK(expr, msg)                                         \
  do {                                                                \
    if (!(expr)) {                                                    \
      ::bfly::detail::check_failed(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                 \
  } while (false)

#ifdef NDEBUG
#define BFLY_ASSERT(expr) ((void)0)
#else
#define BFLY_ASSERT(expr) BFLY_CHECK(expr, "internal invariant")
#endif
