#include "core/thread_pool.hpp"

#include <algorithm>
#include <exception>

#include "core/sync.hpp"
#include "robust/fault_injection.hpp"

namespace bfly {
namespace {

// First exception observed across a fork-join region. capture() is
// called from worker threads racing on the cell; rethrow_if_set() only
// after they have all been joined, so the join barrier (not the mutex)
// is what publishes the pointer to the caller.
class ErrorCollector {
 public:
  void capture() noexcept {
    const sync::MutexLock lock(mu_);
    if (!first_) first_ = std::current_exception();
  }

  void rethrow_if_set() {
    const sync::MutexLock lock(mu_);
    if (first_) std::rethrow_exception(first_);
  }

 private:
  sync::Mutex mu_;
  std::exception_ptr first_ BFLY_GUARDED_BY(mu_);
};

}  // namespace

unsigned default_thread_count() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void parallel_for_blocked(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn,
    unsigned num_threads) {
  if (n == 0) return;
  unsigned t = num_threads == 0 ? default_thread_count() : num_threads;
  t = static_cast<unsigned>(std::min<std::size_t>(t, n));

  if (t <= 1) {
    fn(0, n);
    return;
  }

  ErrorCollector errors;
  std::vector<std::thread> workers;
  workers.reserve(t);
  const std::size_t chunk = (n + t - 1) / t;
  for (unsigned w = 0; w < t; ++w) {
    const std::size_t begin = static_cast<std::size_t>(w) * chunk;
    const std::size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    workers.emplace_back([&, begin, end] {
      try {
        fn(begin, end);
      } catch (...) {
        errors.capture();
      }
    });
  }
  for (auto& w : workers) w.join();
  errors.rethrow_if_set();
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  unsigned num_threads) {
  parallel_for_blocked(
      n,
      [&fn](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) fn(i);
      },
      num_threads);
}

TaskGroup::TaskGroup(unsigned max_concurrency)
    : max_(max_concurrency == 0 ? default_thread_count() : max_concurrency) {}

void TaskGroup::add(std::function<void()> task) {
  const sync::MutexLock lock(mu_);
  tasks_.push_back(std::move(task));
}

void TaskGroup::wait() {
  std::vector<std::function<void()>> tasks;
  {
    const sync::MutexLock lock(mu_);
    tasks.swap(tasks_);
  }
  if (tasks.empty()) return;

  const unsigned workers =
      static_cast<unsigned>(std::min<std::size_t>(max_, tasks.size()));
  if (workers <= 1) {
    for (auto& t : tasks) t();
    return;
  }

  std::atomic<std::size_t> next{0};
  ErrorCollector errors;
  std::vector<std::thread> pool;
  pool.reserve(workers);
  // Spawning can fail (std::system_error from the runtime, or the
  // kTaskSpawn fault point in checked builds): join whatever did spawn
  // before propagating, so no thread outlives its captured stack frame.
  try {
    for (unsigned w = 0; w < workers; ++w) {
      BFLY_FAULT_POINT(kTaskSpawn);
      pool.emplace_back([&] {
        for (;;) {
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= tasks.size()) return;
          // A stalled worker (fault-injected here) sleeps before pulling
          // its task; the Supervisor's watchdog is what notices.
          BFLY_FAULT_POINT(kWorkerStall);
          try {
            tasks[i]();
          } catch (...) {
            errors.capture();
          }
        }
      });
    }
  } catch (...) {
    next.store(tasks.size(), std::memory_order_relaxed);
    for (auto& t : pool) t.join();
    throw;
  }
  for (auto& t : pool) t.join();
  errors.rethrow_if_set();
}

}  // namespace bfly
