// Dynamic bitset over 64-bit words.
//
// Used by the exact solvers to represent node subsets; sized at runtime,
// supports popcount, word-level iteration, and the fused set-algebra
// kernels (and_count, or/and/andnot assignment) that the bitset-parallel
// branch-and-bound and expansion sweeps are built on. The bulk word
// kernels route through the runtime SIMD dispatch (core/simd.hpp):
// scalar on any machine, AVX2/AVX-512 where detected, bit-identical by
// contract. Bits above size() are always zero — the invariant the
// whole-word kernels rely on.
#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "core/error.hpp"
#include "core/simd.hpp"

namespace bfly {

class Bitset64 {
 public:
  Bitset64() = default;

  explicit Bitset64(std::size_t nbits)
      : nbits_(nbits), words_((nbits + 63) / 64, 0) {}

  [[nodiscard]] std::size_t size() const noexcept { return nbits_; }

  void set(std::size_t i) {
    BFLY_ASSERT(i < nbits_);
    words_[i >> 6] |= (1ull << (i & 63));
  }

  void reset(std::size_t i) {
    BFLY_ASSERT(i < nbits_);
    words_[i >> 6] &= ~(1ull << (i & 63));
  }

  void flip(std::size_t i) {
    BFLY_ASSERT(i < nbits_);
    words_[i >> 6] ^= (1ull << (i & 63));
  }

  [[nodiscard]] bool test(std::size_t i) const {
    BFLY_ASSERT(i < nbits_);
    return (words_[i >> 6] >> (i & 63)) & 1ull;
  }

  void clear() noexcept {
    for (auto& w : words_) w = 0;
  }

  [[nodiscard]] std::size_t count() const noexcept {
    return static_cast<std::size_t>(
        simd::kernels().count(words_.data(), words_.size()));
  }

  [[nodiscard]] bool any() const noexcept {
    for (auto w : words_) {
      if (w != 0) return true;
    }
    return false;
  }

  /// Calls fn(index) for every set bit, in increasing index order.
  template <typename Fn>
  void for_each_set(Fn&& fn) const {
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      std::uint64_t w = words_[wi];
      while (w != 0) {
        const int b = std::countr_zero(w);
        fn(wi * 64 + static_cast<std::size_t>(b));
        w &= w - 1;
      }
    }
  }

  /// popcount(*this & other) without materializing the intersection —
  /// the inner-loop primitive of the bitset branch-and-bound (assigned-
  /// neighbor counts are popcounts of adj[v] & side_mask).
  [[nodiscard]] std::size_t and_count(const Bitset64& other) const {
    BFLY_ASSERT(nbits_ == other.nbits_);
    return static_cast<std::size_t>(simd::kernels().and_count(
        words_.data(), other.words_.data(), words_.size()));
  }

  /// *this |= other.
  void or_assign(const Bitset64& other) {
    BFLY_ASSERT(nbits_ == other.nbits_);
    simd::kernels().or_assign(words_.data(), other.words_.data(),
                              words_.size());
  }

  /// *this &= other.
  void and_assign(const Bitset64& other) {
    BFLY_ASSERT(nbits_ == other.nbits_);
    simd::kernels().and_assign(words_.data(), other.words_.data(),
                               words_.size());
  }

  /// *this &= ~other.
  void andnot_assign(const Bitset64& other) {
    BFLY_ASSERT(nbits_ == other.nbits_);
    simd::kernels().andnot_assign(words_.data(), other.words_.data(),
                                  words_.size());
  }

  /// Sets every bit in [0, size()).
  void set_all() {
    if (nbits_ == 0) return;
    for (auto& w : words_) w = ~0ull;
    const std::size_t tail = nbits_ & 63;
    if (tail != 0) words_.back() = (1ull << tail) - 1;
  }

  /// Number of 64-bit words backing the bitset.
  [[nodiscard]] std::size_t num_words() const noexcept {
    return words_.size();
  }

  /// Read-only view of the backing words (bit i lives in word i / 64).
  /// Exposed so the exact kernels can fuse multi-operand expressions
  /// (adj[v] & side & ~assigned) in one pass without temporaries.
  [[nodiscard]] std::span<const std::uint64_t> words() const noexcept {
    return words_;
  }

  friend bool operator==(const Bitset64&, const Bitset64&) = default;

 private:
  std::size_t nbits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace bfly
