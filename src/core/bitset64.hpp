// Dynamic bitset over 64-bit words.
//
// Used by the exact solvers to represent node subsets; sized at runtime,
// supports popcount and word-level iteration which the subset-enumeration
// kernels rely on.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "core/error.hpp"

namespace bfly {

class Bitset64 {
 public:
  Bitset64() = default;

  explicit Bitset64(std::size_t nbits)
      : nbits_(nbits), words_((nbits + 63) / 64, 0) {}

  [[nodiscard]] std::size_t size() const noexcept { return nbits_; }

  void set(std::size_t i) {
    BFLY_ASSERT(i < nbits_);
    words_[i >> 6] |= (1ull << (i & 63));
  }

  void reset(std::size_t i) {
    BFLY_ASSERT(i < nbits_);
    words_[i >> 6] &= ~(1ull << (i & 63));
  }

  void flip(std::size_t i) {
    BFLY_ASSERT(i < nbits_);
    words_[i >> 6] ^= (1ull << (i & 63));
  }

  [[nodiscard]] bool test(std::size_t i) const {
    BFLY_ASSERT(i < nbits_);
    return (words_[i >> 6] >> (i & 63)) & 1ull;
  }

  void clear() noexcept {
    for (auto& w : words_) w = 0;
  }

  [[nodiscard]] std::size_t count() const noexcept {
    std::size_t c = 0;
    for (auto w : words_) c += static_cast<std::size_t>(std::popcount(w));
    return c;
  }

  [[nodiscard]] bool any() const noexcept {
    for (auto w : words_) {
      if (w != 0) return true;
    }
    return false;
  }

  /// Calls fn(index) for every set bit, in increasing index order.
  template <typename Fn>
  void for_each_set(Fn&& fn) const {
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      std::uint64_t w = words_[wi];
      while (w != 0) {
        const int b = std::countr_zero(w);
        fn(wi * 64 + static_cast<std::size_t>(b));
        w &= w - 1;
      }
    }
  }

  friend bool operator==(const Bitset64&, const Bitset64&) = default;

 private:
  std::size_t nbits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace bfly
