// Capability-annotated synchronization layer (Clang Thread Safety
// Analysis, DESIGN.md §12).
//
// Every mutex-protected protocol in the concurrent core goes through the
// wrappers in this header so that which-lock-guards-what is stated in
// the type system and checked at compile time: a `-DBFLY_THREAD_SAFETY=ON`
// Clang build promotes -Wthread-safety (and the -beta extensions) to hard
// errors over the whole tree, turning a guarded field touched without its
// mutex — or a lock released on the wrong path — into a build break
// instead of a tsan roll of the dice. Under non-Clang compilers every
// attribute macro expands to nothing and the wrappers are exactly their
// std:: counterparts; the dynamic twin of these static guarantees is the
// tsan-labeled stress suite (tests/test_sync_stress.cpp).
//
// Vocabulary (mirroring the Clang attribute names):
//
//   BFLY_CAPABILITY("mutex")   the class is a lockable capability
//   BFLY_GUARDED_BY(mu)        field may only be touched holding mu
//   BFLY_REQUIRES(mu)          function may only be called holding mu
//   BFLY_ACQUIRE/RELEASE(...)  function takes/drops the capability
//   BFLY_SCOPED_CAPABILITY     RAII type that holds one for its lifetime
//
// The analysis is intraprocedural and lexical: it cannot see through a
// join barrier (TaskGroup::wait publishing worker-private state), through
// std::call_once, or through a condition variable's internal
// release-reacquire. Those protocols keep their atomics / once_flags and
// are documented at their declaration; every deliberate
// BFLY_NO_THREAD_SAFETY_ANALYSIS escape in the tree states the invariant
// that makes it sound.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>
#include <utility>

// Attribute plumbing: real attributes under Clang (any version with TSA,
// i.e. all supported ones), no-ops elsewhere. GCC parses but ignores
// these attribute names with a warning, so they must vanish entirely.
#if defined(__clang__)
#define BFLY_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define BFLY_THREAD_ANNOTATION(x)
#endif

#define BFLY_CAPABILITY(x) BFLY_THREAD_ANNOTATION(capability(x))
#define BFLY_SCOPED_CAPABILITY BFLY_THREAD_ANNOTATION(scoped_lockable)
#define BFLY_GUARDED_BY(x) BFLY_THREAD_ANNOTATION(guarded_by(x))
#define BFLY_PT_GUARDED_BY(x) BFLY_THREAD_ANNOTATION(pt_guarded_by(x))
#define BFLY_ACQUIRE(...) \
  BFLY_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define BFLY_ACQUIRE_SHARED(...) \
  BFLY_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define BFLY_RELEASE(...) \
  BFLY_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define BFLY_RELEASE_SHARED(...) \
  BFLY_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
// Generic release: the legacy spelling releases exclusive OR shared
// holds, which is exactly what a scoped reader's destructor needs.
#define BFLY_RELEASE_GENERIC(...) \
  BFLY_THREAD_ANNOTATION(unlock_function(__VA_ARGS__))
#define BFLY_TRY_ACQUIRE(...) \
  BFLY_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define BFLY_TRY_ACQUIRE_SHARED(...) \
  BFLY_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))
#define BFLY_REQUIRES(...) \
  BFLY_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define BFLY_REQUIRES_SHARED(...) \
  BFLY_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define BFLY_EXCLUDES(...) BFLY_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define BFLY_ASSERT_CAPABILITY(x) BFLY_THREAD_ANNOTATION(assert_capability(x))
#define BFLY_RETURN_CAPABILITY(x) BFLY_THREAD_ANNOTATION(lock_returned(x))
#define BFLY_NO_THREAD_SAFETY_ANALYSIS \
  BFLY_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace bfly::sync {

class CondVar;

/// std::mutex carrying the capability attribute. Prefer MutexLock over
/// calling lock()/unlock() directly; the raw pair exists for protocols
/// (hand-over-hand, adopt) that RAII cannot express.
class BFLY_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() BFLY_ACQUIRE() { mu_.lock(); }
  void unlock() BFLY_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool try_lock() BFLY_TRY_ACQUIRE(true) {
    return mu_.try_lock();
  }

 private:
  friend class CondVar;
  friend class MutexLock;
  std::mutex mu_;
};

/// std::shared_mutex with the capability attribute: one writer or many
/// readers. Reader side via ReaderLock, writer side via lock()/MutexLock-
/// style manual pairing.
class BFLY_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() BFLY_ACQUIRE() { mu_.lock(); }
  void unlock() BFLY_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool try_lock() BFLY_TRY_ACQUIRE(true) {
    return mu_.try_lock();
  }
  void lock_shared() BFLY_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() BFLY_RELEASE_SHARED() { mu_.unlock_shared(); }
  [[nodiscard]] bool try_lock_shared() BFLY_TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared();
  }

 private:
  std::shared_mutex mu_;
};
/// RAII exclusive hold on a Mutex for the enclosing scope.
class BFLY_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) BFLY_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() BFLY_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  Mutex& mu_;
};

/// RAII shared (reader) hold on a SharedMutex.
class BFLY_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) BFLY_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  ~ReaderLock() BFLY_RELEASE_GENERIC() { mu_.unlock_shared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII exclusive (writer) hold on a SharedMutex.
class BFLY_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) BFLY_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~WriterLock() BFLY_RELEASE() { mu_.unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable paired with Mutex/MutexLock. The wait members
/// carry BFLY_NO_THREAD_SAFETY_ANALYSIS: the analysis cannot model a
/// wait's internal release-and-reacquire of the caller's mutex.
/// Invariant justifying the escape: the caller holds `lock`'s mutex on
/// entry and again on return (std::condition_variable guarantees the
/// reacquire), so the capability state the analysis tracks across the
/// call — "mutex held" — is true at both boundaries; only the interior,
/// where no caller code runs, disagrees. Guarded state must be re-read
/// after every wake, which the wait-loop idiom in the callers does.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  /// Blocks until notified (or spuriously woken); callers loop on their
  /// guarded predicate.
  void wait(MutexLock& lock) BFLY_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> ul(lock.mu_.mu_, std::adopt_lock);
    cv_.wait(ul);
    ul.release();  // the caller's MutexLock still owns the hold
  }

  /// Timed wait; true when notified before the timeout elapsed.
  template <typename Rep, typename Period>
  bool wait_for(MutexLock& lock,
                const std::chrono::duration<Rep, Period>& timeout)
      BFLY_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> ul(lock.mu_.mu_, std::adopt_lock);
    const std::cv_status st = cv_.wait_for(ul, timeout);
    ul.release();
    return st == std::cv_status::no_timeout;
  }

 private:
  std::condition_variable cv_;
};

/// One value behind one mutex, with the GUARDED_BY relation stated once
/// here instead of at every ad-hoc pairing. load/store are for cold-path
/// flags and snapshots (the hot-path heartbeat cells stay relaxed
/// atomics — see DESIGN.md §12); with() runs a functor on the guarded
/// value under the lock for read-modify-write.
template <typename T>
class GuardedCell {
 public:
  GuardedCell() = default;
  explicit GuardedCell(T initial) : value_(std::move(initial)) {}
  GuardedCell(const GuardedCell&) = delete;
  GuardedCell& operator=(const GuardedCell&) = delete;

  [[nodiscard]] T load() const {
    const MutexLock lock(mu_);
    return value_;
  }

  void store(T v) {
    const MutexLock lock(mu_);
    value_ = std::move(v);
  }

  /// Applies f to the guarded value under the lock and returns f's
  /// result. The reference handed to f must not escape the call — the
  /// analysis cannot track aliases, so an escaped reference would be an
  /// unguarded back door.
  template <typename F>
  auto with(F&& f) {
    const MutexLock lock(mu_);
    return std::forward<F>(f)(value_);
  }

  template <typename F>
  auto with(F&& f) const {
    const MutexLock lock(mu_);
    return std::forward<F>(f)(value_);
  }

 private:
  mutable Mutex mu_;
  T value_ BFLY_GUARDED_BY(mu_){};
};

}  // namespace bfly::sync
