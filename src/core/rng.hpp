// Deterministic pseudo-random number generation.
//
// Every randomized algorithm in the library takes an explicit seed so that
// benches and tests are reproducible byte-for-byte. We implement
// xoshiro256** (Blackman & Vigna) seeded through SplitMix64, both public
// domain algorithms, to avoid any dependence on the platform's
// implementation-defined std::mt19937 distributions.
#pragma once

#include <array>
#include <cstdint>

namespace bfly {

/// SplitMix64: used to expand a 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality 64-bit PRNG.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedull) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ull; }

  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) using Lemire's rejection-free-ish method
  /// (with the rare rejection loop for exactness).
  std::uint64_t below(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// True with probability p.
  bool bernoulli(double p) noexcept { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Fisher–Yates shuffle of a random-access container.
template <typename Container>
void shuffle(Container& c, Rng& rng) {
  const auto n = c.size();
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(rng.below(i));
    using std::swap;
    swap(c[i - 1], c[j]);
  }
}

}  // namespace bfly
