#include "core/sharding.hpp"

#include <atomic>
#include <chrono>
#include <deque>
#include <exception>
#include <thread>
#include <vector>

#include "core/error.hpp"
#include "core/sync.hpp"
#include "core/thread_pool.hpp"
#include "robust/fault_injection.hpp"

namespace bfly {

namespace {

// One worker's shard deque. The owner takes from the front (preserving
// its seeded order), thieves take from the back (the work the owner
// would reach last, so contention on the same end is rare even though
// one capability guards both — the annotated stand-in for Chase-Lev).
struct ShardDeque {
  sync::Mutex mu;
  std::deque<std::size_t> q BFLY_GUARDED_BY(mu);
};

struct PopResult {
  std::size_t shard = 0;
  bool got = false;
  bool stolen = false;
};

}  // namespace

StealStats WorkStealingScheduler::run(std::size_t num_shards,
                                      const ShardFn& fn) {
  return run(num_shards, fn, Options());
}

StealStats WorkStealingScheduler::run(std::size_t num_shards,
                                      const ShardFn& fn,
                                      const Options& opts) {
  StealStats stats;
  stats.spawned = num_shards;
  if (num_shards == 0) return stats;

  const unsigned workers =
      opts.num_workers == 0 ? default_thread_count() : opts.num_workers;
  if (workers <= 1 || num_shards == 1) {
    // Inline serial drain in index order: byte-identical scheduling to
    // the pre-scheduler serial drivers (checkpoint replay relies on it).
    for (std::size_t i = 0; i < num_shards; ++i) fn(i, 0);
    return stats;
  }

  std::vector<ShardDeque> deques(workers);
  for (std::size_t i = 0; i < num_shards; ++i) {
    const std::size_t owner =
        opts.seed_to_first ? 0 : i % static_cast<std::size_t>(workers);
    const sync::MutexLock lock(deques[owner].mu);
    deques[owner].q.push_back(i);
  }

  // Termination protocol: `queued` counts shards sitting in deques,
  // `inflight` counts shards between claim and completion. No shard
  // ever re-enqueues work, so once a worker observes queued == 0 then
  // inflight == 0 (in that order) nothing is left to steal and it may
  // exit; a racing claimant that already popped the last shard still
  // runs it to completion before its own exit check.
  std::atomic<std::size_t> queued{num_shards};
  std::atomic<std::size_t> inflight{0};
  std::atomic<std::uint64_t> steals{0};
  std::atomic<std::uint64_t> idle_ns{0};

  sync::Mutex err_mu;
  std::exception_ptr first_error BFLY_GUARDED_BY(err_mu);

  auto worker_loop = [&](unsigned id) {
    for (;;) {
      PopResult pop;
      {
        const sync::MutexLock lock(deques[id].mu);
        if (!deques[id].q.empty()) {
          pop.shard = deques[id].q.front();
          deques[id].q.pop_front();
          pop.got = true;
        }
      }
      if (!pop.got) {
        for (unsigned k = 1; k < workers && !pop.got; ++k) {
          ShardDeque& victim = deques[(id + k) % workers];
          const sync::MutexLock lock(victim.mu);
          if (!victim.q.empty()) {
            pop.shard = victim.q.back();
            victim.q.pop_back();
            pop.got = true;
            pop.stolen = true;
          }
        }
      }
      if (pop.got) {
        queued.fetch_sub(1, std::memory_order_relaxed);
        inflight.fetch_add(1, std::memory_order_acquire);
        // A stalled worker (fault-injected here, as in TaskGroup) sleeps
        // before running its shard; the Supervisor's watchdog is what
        // notices the frozen progress cell.
        BFLY_FAULT_POINT(kWorkerStall);
        try {
          fn(pop.shard, id);
        } catch (...) {
          const sync::MutexLock lock(err_mu);
          if (!first_error) first_error = std::current_exception();
        }
        inflight.fetch_sub(1, std::memory_order_release);
        if (pop.stolen) steals.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      if (queued.load(std::memory_order_relaxed) == 0 &&
          inflight.load(std::memory_order_acquire) == 0) {
        return;
      }
      // Every deque was empty but a peer still runs a shard (which, on
      // an oversubscribed machine, may need this core): yield, charge
      // the wait to the idle counter.
      const auto t0 = std::chrono::steady_clock::now();
      std::this_thread::yield();
      idle_ns.fetch_add(
          static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - t0)
                  .count()),
          std::memory_order_relaxed);
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  // Spawning can fail (std::system_error from the runtime, or the
  // kTaskSpawn fault point in checked builds). Whatever did spawn plus
  // the calling thread can still drain every shard — the deques were
  // seeded before any thread started — so run the pool down before
  // propagating; no thread may outlive its captured stack frame.
  std::exception_ptr spawn_error;
  try {
    for (unsigned id = 1; id < workers; ++id) {
      BFLY_FAULT_POINT(kTaskSpawn);
      pool.emplace_back(worker_loop, id);
    }
  } catch (...) {
    spawn_error = std::current_exception();
  }
  worker_loop(0);
  for (auto& t : pool) t.join();

  stats.steals = steals.load(std::memory_order_relaxed);
  stats.idle_seconds =
      static_cast<double>(idle_ns.load(std::memory_order_relaxed)) * 1e-9;
  {
    const sync::MutexLock lock(err_mu);
    if (first_error) std::rethrow_exception(first_error);
  }
  if (spawn_error) std::rethrow_exception(spawn_error);
  return stats;
}

}  // namespace bfly
