// Small integer-math helpers used throughout the butterfly constructions.
#pragma once

#include <bit>
#include <cstdint>

#include "core/error.hpp"

namespace bfly {

/// True iff x is a power of two (x > 0).
[[nodiscard]] constexpr bool is_pow2(std::uint64_t x) noexcept {
  return x != 0 && (x & (x - 1)) == 0;
}

/// Exact base-2 logarithm; requires is_pow2(x).
[[nodiscard]] inline std::uint32_t log2_exact(std::uint64_t x) {
  BFLY_CHECK(is_pow2(x), "log2_exact requires a power of two");
  return static_cast<std::uint32_t>(std::countr_zero(x));
}

/// Floor of log2(x); requires x > 0.
[[nodiscard]] inline std::uint32_t log2_floor(std::uint64_t x) {
  BFLY_CHECK(x > 0, "log2_floor requires x > 0");
  return 63u - static_cast<std::uint32_t>(std::countl_zero(x));
}

/// Ceiling division for nonnegative integers.
[[nodiscard]] constexpr std::uint64_t ceil_div(std::uint64_t a,
                                               std::uint64_t b) noexcept {
  return (a + b - 1) / b;
}

/// Integer power (small exponents).
[[nodiscard]] constexpr std::uint64_t ipow(std::uint64_t base,
                                           std::uint32_t exp) noexcept {
  std::uint64_t r = 1;
  while (exp-- > 0) r *= base;
  return r;
}

/// Binomial coefficient C(n, k) as a double (used only for search-space
/// size estimates, so floating point is fine).
[[nodiscard]] inline double binomial_approx(unsigned n, unsigned k) {
  if (k > n) return 0.0;
  if (k > n - k) k = n - k;
  double r = 1.0;
  for (unsigned i = 1; i <= k; ++i) {
    r *= static_cast<double>(n - k + i) / static_cast<double>(i);
  }
  return r;
}

}  // namespace bfly
