// Fork-join data parallelism and cooperative task groups.
//
// The HPC guides' idiom is explicit parallelism: every parallel region in
// this library goes through parallel_for with a statically blocked
// iteration space (all-pairs BFS for diameters, SA restarts, subset
// sweeps) or through TaskGroup for heterogeneous task portfolios (the
// cut-solver portfolio races exact and heuristic engines). Work items
// must be independent; the caller owns any reduction. CancelToken is the
// cooperative stop signal those tasks poll.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <functional>
#include <limits>
#include <thread>
#include <vector>

#include "core/sync.hpp"

namespace bfly {

/// Number of worker threads used by default (>= 1).
[[nodiscard]] unsigned default_thread_count() noexcept;

/// Runs fn(i) for i in [0, n), statically blocked over num_threads threads
/// (0 = default_thread_count()). Exceptions thrown by fn propagate to the
/// caller (the first one observed).
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  unsigned num_threads = 0);

/// Blocked variant: fn(begin, end) per chunk; lower per-item overhead for
/// cheap bodies.
void parallel_for_blocked(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn,
    unsigned num_threads = 0);

/// Cooperative cancellation signal shared between concurrently running
/// solvers. Long-running loops poll stop_requested() at natural work-unit
/// boundaries (restarts, temperature levels, every few thousand search
/// nodes) and wind down when it fires. An optional deadline makes the
/// token fire on its own once the wall clock passes it.
///
/// Thread safety: every member may be called from any thread, on a live
/// token. The deadline is a single atomic cell, so the robust Supervisor
/// can arm or extend it while workers concurrently poll
/// stop_requested(). Extending the deadline after the token has already
/// fired has no effect: a fired token never un-fires.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Idempotent: any number of calls from any threads leave the token
  /// fired; a fired token never un-fires (asserted at the portfolio's
  /// join point and exercised by test_contracts).
  void request_stop() noexcept {
    stop_.store(true, std::memory_order_relaxed);
  }

  /// Arms (or moves) the deadline: stop_requested() returns true once
  /// now >= tp. Relaxed-published; safe on a shared, live token.
  void set_deadline(std::chrono::steady_clock::time_point tp) noexcept {
    deadline_ns_.store(tp.time_since_epoch().count(),
                       std::memory_order_relaxed);
  }

  /// Convenience: deadline at now + seconds (ignored when seconds <= 0).
  void set_deadline_after(double seconds) noexcept {
    if (seconds <= 0.0) return;
    set_deadline(std::chrono::steady_clock::now() +
                 std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                     std::chrono::duration<double>(seconds)));
  }

  [[nodiscard]] bool stop_requested() const noexcept {
    if (stop_.load(std::memory_order_relaxed)) return true;
    const auto d = deadline_ns_.load(std::memory_order_relaxed);
    if (d != kNoDeadline &&
        std::chrono::steady_clock::now().time_since_epoch().count() >= d) {
      stop_.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

 private:
  using Rep = std::chrono::steady_clock::rep;
  static constexpr Rep kNoDeadline = std::numeric_limits<Rep>::max();

  mutable std::atomic<bool> stop_{false};
  std::atomic<Rep> deadline_ns_{kNoDeadline};
};

/// A group of independent tasks executed with bounded concurrency.
///
/// Tasks are queued with add() and run by wait(): with max_concurrency 1
/// they run serially in submission order on the calling thread; otherwise
/// up to max_concurrency worker threads pull tasks in submission order.
/// wait() blocks until every task finished and rethrows the first
/// exception observed (remaining tasks still run to completion — solvers
/// are expected to fail only on precondition violations).
///
/// The queue is guarded by its own capability, so add() may be called
/// from any thread between waits; tasks added after a wait() has drained
/// the queue run on the next wait(). Calling add() concurrently WITH an
/// in-flight wait() is still unsupported — wait() snapshots the queue
/// once at entry.
class TaskGroup {
 public:
  /// max_concurrency 0 = default_thread_count().
  explicit TaskGroup(unsigned max_concurrency = 0);

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Queues a task; it does not start until wait().
  void add(std::function<void()> task);

  /// Runs all queued tasks and blocks until they complete.
  void wait();

  [[nodiscard]] unsigned max_concurrency() const noexcept { return max_; }

 private:
  unsigned max_;
  sync::Mutex mu_;
  std::vector<std::function<void()>> tasks_ BFLY_GUARDED_BY(mu_);
};

}  // namespace bfly
