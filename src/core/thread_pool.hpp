// Fork-join data parallelism.
//
// The HPC guides' idiom is explicit parallelism: every parallel region in
// this library goes through parallel_for with a statically blocked
// iteration space (all-pairs BFS for diameters, SA restarts, subset
// sweeps). Work items must be independent; the caller owns any reduction.
#pragma once

#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

namespace bfly {

/// Number of worker threads used by default (>= 1).
[[nodiscard]] unsigned default_thread_count() noexcept;

/// Runs fn(i) for i in [0, n), statically blocked over num_threads threads
/// (0 = default_thread_count()). Exceptions thrown by fn propagate to the
/// caller (the first one observed).
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  unsigned num_threads = 0);

/// Blocked variant: fn(begin, end) per chunk; lower per-item overhead for
/// cheap bodies.
void parallel_for_blocked(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn,
    unsigned num_threads = 0);

}  // namespace bfly
