// Two-way node partition with incrementally maintained cut capacity.
//
// This is the workhorse of every bisection solver: capacity, per-node move
// gains, and side sizes are all maintained in O(deg(v)) per move, matching
// the structure Kernighan–Lin / Fiduccia–Mattheyses style algorithms need.
//
// Terminology follows the paper (Section 1.2): a cut (S, S̄) partitions the
// nodes; its capacity C(S, S̄) is the number of edges with endpoints on
// both sides; a bisection additionally requires |S|, |S̄| <= ceil(N/2).
#pragma once

#include <cstdint>
#include <vector>

#include "core/graph.hpp"
#include "core/types.hpp"

namespace bfly {

class Partition {
 public:
  /// Starts with every node on side 0.
  explicit Partition(const Graph& g);

  /// Starts from an explicit side assignment (values 0/1, size num_nodes).
  Partition(const Graph& g, const std::vector<std::uint8_t>& sides);

  [[nodiscard]] const Graph& graph() const noexcept { return *g_; }

  [[nodiscard]] int side(NodeId v) const {
    BFLY_ASSERT(v < sides_.size());
    return sides_[v];
  }

  /// Number of nodes currently on the given side.
  [[nodiscard]] std::size_t side_size(int s) const {
    return s == 0 ? size0_ : sides_.size() - size0_;
  }

  /// Current cut capacity C(S, S̄).
  [[nodiscard]] std::size_t cut_capacity() const noexcept { return cut_; }

  /// Capacity decrease if v were moved to the other side (may be negative).
  /// gain(v) = (# cross edges at v) - (# same-side edges at v).
  [[nodiscard]] std::int64_t gain(NodeId v) const;

  /// Moves v to the other side, updating capacity in O(deg(v)).
  void move(NodeId v);

  /// Swaps u and v across the cut (they must be on opposite sides).
  void swap_across(NodeId u, NodeId v);

  /// True iff |S| and |S̄| are both <= ceil(N/2).
  [[nodiscard]] bool is_bisection() const noexcept;

  /// Side assignment snapshot.
  [[nodiscard]] const std::vector<std::uint8_t>& sides() const noexcept {
    return sides_;
  }

  /// Recomputes capacity from scratch; used by tests to validate the
  /// incremental bookkeeping.
  [[nodiscard]] std::size_t recompute_capacity() const;

  /// Deep self-check: side values are 0/1, the cached side-0 count and
  /// cut capacity match a from-scratch recount. O(N + M). Throws
  /// PreconditionError on mismatch.
  void validate() const;

 private:
  const Graph* g_;
  std::vector<std::uint8_t> sides_;
  std::size_t size0_ = 0;
  std::size_t cut_ = 0;
};

/// Capacity of the cut induced by an arbitrary side assignment, computed
/// from scratch (no Partition object needed).
[[nodiscard]] std::size_t cut_capacity(const Graph& g,
                                       const std::vector<std::uint8_t>& sides);

}  // namespace bfly
