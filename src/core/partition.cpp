#include "core/partition.hpp"

#include "core/error.hpp"

namespace bfly {

Partition::Partition(const Graph& g)
    : g_(&g), sides_(g.num_nodes(), 0), size0_(g.num_nodes()) {}

Partition::Partition(const Graph& g, const std::vector<std::uint8_t>& sides)
    : g_(&g), sides_(sides) {
  BFLY_CHECK(sides_.size() == g.num_nodes(),
             "side assignment size must equal node count");
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    BFLY_CHECK(sides_[v] <= 1, "sides must be 0 or 1");
    if (sides_[v] == 0) ++size0_;
  }
  cut_ = recompute_capacity();
}

std::int64_t Partition::gain(NodeId v) const {
  const int s = sides_[v];
  std::int64_t cross = 0, same = 0;
  for (const NodeId u : g_->neighbors(v)) {
    if (sides_[u] == s) {
      ++same;
    } else {
      ++cross;
    }
  }
  return cross - same;
}

void Partition::move(NodeId v) {
  const std::int64_t gv = gain(v);
  cut_ = static_cast<std::size_t>(static_cast<std::int64_t>(cut_) - gv);
  if (sides_[v] == 0) {
    --size0_;
  } else {
    ++size0_;
  }
  sides_[v] ^= 1;
}

void Partition::swap_across(NodeId u, NodeId v) {
  BFLY_CHECK(sides_[u] != sides_[v], "swap_across requires opposite sides");
  move(u);
  move(v);
}

bool Partition::is_bisection() const noexcept {
  const std::size_t n = sides_.size();
  const std::size_t half = (n + 1) / 2;
  return size0_ <= half && (n - size0_) <= half;
}

std::size_t Partition::recompute_capacity() const {
  return bfly::cut_capacity(*g_, sides_);
}

void Partition::validate() const {
  BFLY_CHECK(sides_.size() == g_->num_nodes(),
             "partition size must equal node count");
  std::size_t zeros = 0;
  for (const auto s : sides_) {
    BFLY_CHECK(s <= 1, "sides must be 0 or 1");
    if (s == 0) ++zeros;
  }
  BFLY_CHECK(zeros == size0_, "cached side-0 count does not match recount");
  BFLY_CHECK(cut_ == recompute_capacity(),
             "cached cut capacity does not match recount");
}

std::size_t cut_capacity(const Graph& g,
                         const std::vector<std::uint8_t>& sides) {
  BFLY_CHECK(sides.size() == g.num_nodes(), "side assignment size mismatch");
  std::size_t c = 0;
  for (const auto& [u, v] : g.edges()) {
    if (sides[u] != sides[v]) ++c;
  }
  return c;
}

}  // namespace bfly
