#include "core/simd.hpp"

#include <atomic>
#include <bit>
#include <cstdio>
#include <cstdlib>

// The AVX paths use per-function target attributes, so they compile
// into every binary without global -m flags and are safe to *link* on
// any x86-64 — only calling them requires the CPU feature, which the
// cpuid gate below guarantees. Non-x86 targets, MSVC-style drivers, and
// BFLY_SIMD=OFF builds compile the scalar table only.
#if defined(BFLY_SIMD_ENABLED) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define BFLY_SIMD_X86 1
#include <immintrin.h>
#endif

namespace bfly::simd {

namespace {

// ---------------------------------------------------------------------------
// Scalar reference kernels. These ARE the semantics: every vector
// kernel below must match them bit for bit on every input.
// ---------------------------------------------------------------------------

std::uint64_t count_scalar(const std::uint64_t* a, std::size_t words) {
  std::uint64_t c = 0;
  for (std::size_t i = 0; i < words; ++i) {
    c += static_cast<std::uint64_t>(std::popcount(a[i]));
  }
  return c;
}

std::uint64_t and_count_scalar(const std::uint64_t* a, const std::uint64_t* b,
                               std::size_t words) {
  std::uint64_t c = 0;
  for (std::size_t i = 0; i < words; ++i) {
    c += static_cast<std::uint64_t>(std::popcount(a[i] & b[i]));
  }
  return c;
}

void or_assign_scalar(std::uint64_t* a, const std::uint64_t* b,
                      std::size_t words) {
  for (std::size_t i = 0; i < words; ++i) a[i] |= b[i];
}

void and_assign_scalar(std::uint64_t* a, const std::uint64_t* b,
                       std::size_t words) {
  for (std::size_t i = 0; i < words; ++i) a[i] &= b[i];
}

void andnot_assign_scalar(std::uint64_t* a, const std::uint64_t* b,
                          std::size_t words) {
  for (std::size_t i = 0; i < words; ++i) a[i] &= ~b[i];
}

void multi_and_count_scalar(const std::uint64_t* const* rows,
                            const std::uint64_t* mask, std::size_t words,
                            std::size_t num_rows, std::uint32_t* out) {
  for (std::size_t r = 0; r < num_rows; ++r) {
    out[r] = static_cast<std::uint32_t>(and_count_scalar(rows[r], mask, words));
  }
}

// The branching key of cut/branch_bound.cpp's select_next, verbatim:
// side-count difference, then activity, then degree.
inline std::uint64_t branch_key(const std::uint32_t* a0,
                                const std::uint32_t* a1,
                                const std::uint32_t* deg, std::size_t i) {
  const std::uint32_t x = a0[i];
  const std::uint32_t y = a1[i];
  const std::uint32_t diff = x > y ? x - y : y - x;
  return (static_cast<std::uint64_t>(diff) << 42) |
         (static_cast<std::uint64_t>(x + y) << 21) |
         static_cast<std::uint64_t>(deg[i]);
}

std::size_t select_max_key_scalar(const std::uint64_t* mask, std::size_t nbits,
                                  const std::uint32_t* a0,
                                  const std::uint32_t* a1,
                                  const std::uint32_t* deg,
                                  std::uint32_t /*max_value*/) {
  const std::size_t words = (nbits + 63) / 64;
  // Keys are offset by one so "nothing found" is exactly best == 0 and
  // a strictly-greater compare reproduces first-max-in-index-order.
  std::uint64_t best_key = 0;
  std::size_t best = static_cast<std::size_t>(-1);
  for (std::size_t wi = 0; wi < words; ++wi) {
    std::uint64_t w = mask[wi];
    while (w != 0) {
      const std::size_t i =
          wi * 64 + static_cast<std::size_t>(std::countr_zero(w));
      w &= w - 1;
      const std::uint64_t key = branch_key(a0, a1, deg, i) + 1;
      if (key > best_key) {
        best_key = key;
        best = i;
      }
    }
  }
  return best;
}

void diff_histogram_scalar(const std::uint64_t* mask, std::size_t nbits,
                           const std::uint32_t* a0, const std::uint32_t* a1,
                           std::uint32_t /*max_diff*/, std::uint32_t* p01,
                           std::uint32_t* bucket0, std::uint32_t* bucket1) {
  const std::size_t words = (nbits + 63) / 64;
  for (std::size_t wi = 0; wi < words; ++wi) {
    std::uint64_t w = mask[wi];
    while (w != 0) {
      const std::size_t i =
          wi * 64 + static_cast<std::size_t>(std::countr_zero(w));
      w &= w - 1;
      const std::uint32_t x = a0[i];
      const std::uint32_t y = a1[i];
      if (x > y) {
        ++p01[0];
        ++bucket0[x - y];
      } else if (y > x) {
        ++p01[1];
        ++bucket1[y - x];
      }
    }
  }
}

constexpr KernelTable kScalarTable = {
    count_scalar,        and_count_scalar,       or_assign_scalar,
    and_assign_scalar,   andnot_assign_scalar,   multi_and_count_scalar,
    select_max_key_scalar, diff_histogram_scalar,
};

// The vector candidate scans pay a fixed per-call cost (group setup,
// horizontal reduction, field-accumulator flush); with only a handful
// of set bits — the deep-in-tree common case, where most search nodes
// live — the scalar bit walk is cheaper, so those kernels delegate
// below this population. Threshold picked empirically on the B16/W32
// probes; results are bit-identical either way, so it only moves time.
inline bool sparse_mask(const std::uint64_t* mask, std::size_t words) {
  std::uint64_t pop = 0;
  for (std::size_t i = 0; i < words; ++i) {
    pop += static_cast<std::uint64_t>(std::popcount(mask[i]));
    if (pop > 16) return false;
  }
  return true;
}

#if defined(BFLY_SIMD_X86)

// ---------------------------------------------------------------------------
// AVX2 kernels: 256-bit lanes, Mula nibble-LUT popcount. 4 words per
// vector step, scalar tail. popcnt is in the target set for the scalar
// tails (every AVX2 CPU has it; the cpuid gate checks anyway).
// ---------------------------------------------------------------------------

__attribute__((target("avx2,popcnt"))) inline __m256i popcnt256(__m256i v) {
  const __m256i lut =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1,
                       1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low);
  const __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                      _mm256_shuffle_epi8(lut, hi));
  // Horizontal byte sums per 64-bit lane.
  return _mm256_sad_epu8(cnt, _mm256_setzero_si256());
}

__attribute__((target("avx2,popcnt"))) std::uint64_t count_avx2(
    const std::uint64_t* a, std::size_t words) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= words; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    acc = _mm256_add_epi64(acc, popcnt256(v));
  }
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  std::uint64_t c = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; i < words; ++i) {
    c += static_cast<std::uint64_t>(std::popcount(a[i]));
  }
  return c;
}

__attribute__((target("avx2,popcnt"))) std::uint64_t and_count_avx2(
    const std::uint64_t* a, const std::uint64_t* b, std::size_t words) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= words; i += 4) {
    const __m256i v = _mm256_and_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i)));
    acc = _mm256_add_epi64(acc, popcnt256(v));
  }
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  std::uint64_t c = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; i < words; ++i) {
    c += static_cast<std::uint64_t>(std::popcount(a[i] & b[i]));
  }
  return c;
}

__attribute__((target("avx2"))) void or_assign_avx2(std::uint64_t* a,
                                                    const std::uint64_t* b,
                                                    std::size_t words) {
  std::size_t i = 0;
  for (; i + 4 <= words; i += 4) {
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(a + i),
        _mm256_or_si256(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)),
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i))));
  }
  for (; i < words; ++i) a[i] |= b[i];
}

__attribute__((target("avx2"))) void and_assign_avx2(std::uint64_t* a,
                                                     const std::uint64_t* b,
                                                     std::size_t words) {
  std::size_t i = 0;
  for (; i + 4 <= words; i += 4) {
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(a + i),
        _mm256_and_si256(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)),
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i))));
  }
  for (; i < words; ++i) a[i] &= b[i];
}

__attribute__((target("avx2"))) void andnot_assign_avx2(std::uint64_t* a,
                                                        const std::uint64_t* b,
                                                        std::size_t words) {
  std::size_t i = 0;
  for (; i + 4 <= words; i += 4) {
    // andnot computes ~x & y, so b goes in the first operand.
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(a + i),
        _mm256_andnot_si256(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i)),
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i))));
  }
  for (; i < words; ++i) a[i] &= ~b[i];
}

__attribute__((target("avx2,popcnt"))) void multi_and_count_avx2(
    const std::uint64_t* const* rows, const std::uint64_t* mask,
    std::size_t words, std::size_t num_rows, std::uint32_t* out) {
  for (std::size_t r = 0; r < num_rows; ++r) {
    out[r] = static_cast<std::uint32_t>(and_count_avx2(rows[r], mask, words));
  }
}

// Wide-field (64-bit key) scan, 4 candidates per step: the fallback for
// graphs whose degrees overflow the packed 32-bit key. The mask word is
// walked nibble by nibble (skipping zero nibbles), each nibble selecting
// up to 4 lanes of a 4x64-bit key vector; a strictly-greater blend keeps
// the earliest index per lane, and the horizontal reduction breaks key
// ties toward the smaller index — together exactly the scalar first-max
// semantics. Keys are biased by +1 so empty lanes (key 0) never win;
// biased keys stay < 2^63, so the signed epi64 compare is order-exact.
__attribute__((target("avx2,popcnt"))) std::size_t select_max_key_avx2_wide(
    const std::uint64_t* mask, std::size_t nbits, const std::uint32_t* a0,
    const std::uint32_t* a1, const std::uint32_t* deg) {
  const std::size_t words = (nbits + 63) / 64;
  const __m256i lane_bits = _mm256_setr_epi64x(1, 2, 4, 8);
  const __m256i lane_idx = _mm256_setr_epi64x(0, 1, 2, 3);
  const __m256i one = _mm256_set1_epi64x(1);
  __m256i best_key = _mm256_setzero_si256();
  __m256i best_idx = _mm256_setzero_si256();
  // The final partial 4-group (when nbits % 4 != 0) falls back to
  // scalar; its indices are larger than every vector-processed index,
  // so a strictly-greater merge at the end preserves the tie break.
  std::uint64_t tail_key = 0;
  std::size_t tail_idx = static_cast<std::size_t>(-1);
  for (std::size_t wi = 0; wi < words; ++wi) {
    std::uint64_t w = mask[wi];
    while (w != 0) {
      const int g = std::countr_zero(w) >> 2;
      const std::uint64_t nib =
          (w >> (4 * g)) & 0xfull;
      w &= ~(0xfull << (4 * g));
      const std::size_t base = wi * 64 + 4 * static_cast<std::size_t>(g);
      if (base + 4 <= nbits) {
        const __m128i va0 =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(a0 + base));
        const __m128i va1 =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(a1 + base));
        const __m128i vdeg =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(deg + base));
        const __m128i diff = _mm_sub_epi32(_mm_max_epu32(va0, va1),
                                           _mm_min_epu32(va0, va1));
        const __m128i sum = _mm_add_epi32(va0, va1);
        __m256i key = _mm256_or_si256(
            _mm256_slli_epi64(_mm256_cvtepu32_epi64(diff), 42),
            _mm256_or_si256(
                _mm256_slli_epi64(_mm256_cvtepu32_epi64(sum), 21),
                _mm256_cvtepu32_epi64(vdeg)));
        key = _mm256_add_epi64(key, one);
        const __m256i member = _mm256_cmpeq_epi64(
            _mm256_and_si256(_mm256_set1_epi64x(static_cast<long long>(nib)),
                             lane_bits),
            lane_bits);
        key = _mm256_and_si256(key, member);
        const __m256i idx = _mm256_add_epi64(
            _mm256_set1_epi64x(static_cast<long long>(base)), lane_idx);
        const __m256i gt = _mm256_cmpgt_epi64(key, best_key);
        best_key = _mm256_blendv_epi8(best_key, key, gt);
        best_idx = _mm256_blendv_epi8(best_idx, idx, gt);
      } else {
        for (std::uint64_t bits = nib; bits != 0; bits &= bits - 1) {
          const std::size_t i =
              base + static_cast<std::size_t>(std::countr_zero(bits));
          const std::uint64_t key = branch_key(a0, a1, deg, i) + 1;
          if (key > tail_key) {
            tail_key = key;
            tail_idx = i;
          }
        }
      }
    }
  }
  alignas(32) std::uint64_t keys[4];
  alignas(32) std::uint64_t idxs[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(keys), best_key);
  _mm256_store_si256(reinterpret_cast<__m256i*>(idxs), best_idx);
  std::uint64_t bk = 0;
  std::size_t bi = static_cast<std::size_t>(-1);
  for (int l = 0; l < 4; ++l) {
    if (keys[l] > bk ||
        (keys[l] != 0 && keys[l] == bk && idxs[l] < static_cast<std::uint64_t>(bi))) {
      bk = keys[l];
      bi = static_cast<std::size_t>(idxs[l]);
    }
  }
  if (tail_key > bk) {
    bk = tail_key;
    bi = tail_idx;
  }
  return bi;
}

// Packed-key (32-bit) scan, 8 candidates per step: when every input
// value is < 1024, key32 = (diff << 21) | (sum << 10) | deg keeps the
// same (diff, sum, deg) lexicographic order as the 64-bit key with no
// field overflow (diff << 21 <= 1023 * 2^21; + sum << 10 + deg + the
// +1 bias stays < 2^31, so the signed epi32 compare is order-exact) —
// and the scan runs at twice the lane density with no widening shuffles.
// The mask word is walked byte by byte, skipping zero bytes.
__attribute__((target("avx2,popcnt"))) std::size_t select_max_key_avx2(
    const std::uint64_t* mask, std::size_t nbits, const std::uint32_t* a0,
    const std::uint32_t* a1, const std::uint32_t* deg,
    std::uint32_t max_value) {
  const std::size_t words = (nbits + 63) / 64;
  if (sparse_mask(mask, words)) {
    return select_max_key_scalar(mask, nbits, a0, a1, deg, max_value);
  }
  if (max_value >= 1024) {
    return select_max_key_avx2_wide(mask, nbits, a0, a1, deg);
  }
  const __m256i lane_bits =
      _mm256_setr_epi32(1, 2, 4, 8, 16, 32, 64, 128);
  const __m256i lane_idx = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  const __m256i one = _mm256_set1_epi32(1);
  __m256i best_key = _mm256_setzero_si256();
  __m256i best_idx = _mm256_setzero_si256();
  std::uint64_t tail_key = 0;
  std::size_t tail_idx = static_cast<std::size_t>(-1);
  for (std::size_t wi = 0; wi < words; ++wi) {
    const std::uint64_t w = mask[wi];
    if (w == 0) continue;
    // Fixed 8-group walk (predictable branches on dense masks, which is
    // what the search sees); full bytes — the common case mid-search —
    // skip the lane-membership arithmetic entirely.
    for (int g = 0; g < 8; ++g) {
      const std::uint64_t byte = (w >> (8 * g)) & 0xffull;
      if (byte == 0) continue;
      const std::size_t base = wi * 64 + 8 * static_cast<std::size_t>(g);
      if (base + 8 <= nbits) {
        const __m256i va0 =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a0 + base));
        const __m256i va1 =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a1 + base));
        const __m256i vdeg =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(deg + base));
        const __m256i diff = _mm256_sub_epi32(_mm256_max_epu32(va0, va1),
                                              _mm256_min_epu32(va0, va1));
        const __m256i sum = _mm256_add_epi32(va0, va1);
        __m256i key = _mm256_add_epi32(
            _mm256_or_si256(
                _mm256_slli_epi32(diff, 21),
                _mm256_or_si256(_mm256_slli_epi32(sum, 10), vdeg)),
            one);
        if (byte != 0xff) {
          const __m256i member = _mm256_cmpeq_epi32(
              _mm256_and_si256(_mm256_set1_epi32(static_cast<int>(byte)),
                               lane_bits),
              lane_bits);
          key = _mm256_and_si256(key, member);
        }
        const __m256i idx = _mm256_add_epi32(
            _mm256_set1_epi32(static_cast<int>(base)), lane_idx);
        const __m256i gt = _mm256_cmpgt_epi32(key, best_key);
        best_key = _mm256_blendv_epi8(best_key, key, gt);
        best_idx = _mm256_blendv_epi8(best_idx, idx, gt);
      } else {
        for (std::uint64_t bits = byte; bits != 0; bits &= bits - 1) {
          const std::size_t i =
              base + static_cast<std::size_t>(std::countr_zero(bits));
          const std::uint64_t key = branch_key(a0, a1, deg, i) + 1;
          if (key > tail_key) {
            tail_key = key;
            tail_idx = i;
          }
        }
      }
    }
  }
  // Horizontal reduction: broadcast the max key with shuffle/max steps,
  // then take the smallest index among the lanes holding it (per-lane
  // overwrites are strictly-greater only, so each such lane already
  // holds its own earliest index — the cross-lane min finishes the
  // scalar first-max tie break).
  __m256i m = _mm256_max_epu32(
      best_key, _mm256_permute2x128_si256(best_key, best_key, 1));
  m = _mm256_max_epu32(m, _mm256_shuffle_epi32(m, 0x4e));
  m = _mm256_max_epu32(m, _mm256_shuffle_epi32(m, 0xb1));
  const std::uint32_t bk = static_cast<std::uint32_t>(
      _mm256_extract_epi32(m, 0));
  std::size_t bi = static_cast<std::size_t>(-1);
  if (bk != 0) {
    unsigned hit = static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_castsi256_ps(
            _mm256_cmpeq_epi32(best_key, m))));
    alignas(32) std::uint32_t idxs[8];
    _mm256_store_si256(reinterpret_cast<__m256i*>(idxs), best_idx);
    std::uint32_t bmin = ~0u;
    for (; hit != 0; hit &= hit - 1) {
      const std::uint32_t cand =
          idxs[std::countr_zero(static_cast<std::uint32_t>(hit))];
      if (cand < bmin) bmin = cand;
    }
    bi = bmin;
  }
  // The scalar tail's 64-bit key collapses to the 32-bit packing order,
  // and its indices exceed every vector index, so strictly-greater is
  // again the exact merge. Rebuild the packed form for the comparison.
  if (tail_idx != static_cast<std::size_t>(-1)) {
    const std::uint32_t x = a0[tail_idx];
    const std::uint32_t y = a1[tail_idx];
    const std::uint32_t d = x > y ? x - y : y - x;
    const std::uint32_t packed = (d << 21) | ((x + y) << 10) | deg[tail_idx];
    if (packed + 1 > bk) {
      bi = tail_idx;
    }
  }
  return bi;
}

// 8-lane histogram. Fast path (diffs <= 4, the butterfly-family case):
// every candidate deposits ONE bit-field increment per side — the diff
// d scales to a 12-bit field at bit 12*d of a 64-bit lane accumulator
// via a variable shift, so a whole group costs one sub/bias/scale/
// widen/shift chain with no movemask/popcount domain crossings at all.
// Both sides share the accumulator: the SIGNED diff d in [-4, 4] maps
// to a 7-bit field at bit (d + 4) * 7 — bucket1 counts sit below the
// center, bucket0 counts above, and the center field 4 absorbs ties
// and non-member lanes (never read back). Field capacity 127 with one
// hit per lane per group bounds the path to 15 words (nbits <= 960),
// ample for the exact frontier (n <= 64 proofs, n <= a few hundred
// budgeted sweeps). Larger bitsets and degrees 5..16 use per-bucket
// equality movemasks; degrees above 16 fall back to the scalar
// reference. The counters are commutative sums, so every path produces
// equal results.
__attribute__((target("avx2,popcnt"))) void diff_histogram_avx2(
    const std::uint64_t* mask, std::size_t nbits, const std::uint32_t* a0,
    const std::uint32_t* a1, std::uint32_t max_diff, std::uint32_t* p01,
    std::uint32_t* bucket0, std::uint32_t* bucket1) {
  const std::size_t words = (nbits + 63) / 64;
  if (max_diff > 16 || sparse_mask(mask, words)) {
    diff_histogram_scalar(mask, nbits, a0, a1, max_diff, p01, bucket0,
                          bucket1);
    return;
  }
  const __m256i lane_bits =
      _mm256_setr_epi32(1, 2, 4, 8, 16, 32, 64, 128);
  const __m256i zero = _mm256_setzero_si256();
  const __m256i ones64 = _mm256_set1_epi64x(1);
  const __m256i bias = _mm256_set1_epi32(4);
  const bool fields = max_diff <= 4 && words <= 15;
  __m256i acc_lo = zero, acc_hi = zero;
  std::uint32_t p0 = 0, p1 = 0;
  for (std::size_t wi = 0; wi < words; ++wi) {
    const std::uint64_t w = mask[wi];
    if (w == 0) continue;
    for (int g = 0; g < 8; ++g) {
      const std::uint64_t byte = (w >> (8 * g)) & 0xffull;
      if (byte == 0) continue;
      const std::size_t base = wi * 64 + 8 * static_cast<std::size_t>(g);
      if (base + 8 <= nbits) {
        const __m256i va0 =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a0 + base));
        const __m256i va1 =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a1 + base));
        __m256i member = _mm256_set1_epi32(-1);
        if (byte != 0xff) {
          member = _mm256_cmpeq_epi32(
              _mm256_and_si256(_mm256_set1_epi32(static_cast<int>(byte)),
                               lane_bits),
              lane_bits);
        }
        if (fields) {
          // Counts are < 2^26, so the subtraction stays in signed range.
          // Non-members blend to the ignored center field (db == 4).
          const __m256i db = _mm256_blendv_epi8(
              bias,
              _mm256_add_epi32(_mm256_sub_epi32(va0, va1), bias), member);
          // Field bit offset 7*db = 8*db - db; widen per 128-bit half.
          const __m256i s = _mm256_sub_epi32(_mm256_slli_epi32(db, 3), db);
          acc_lo = _mm256_add_epi64(
              acc_lo, _mm256_sllv_epi64(ones64, _mm256_cvtepu32_epi64(
                                                    _mm256_castsi256_si128(
                                                        s))));
          acc_hi = _mm256_add_epi64(
              acc_hi, _mm256_sllv_epi64(ones64, _mm256_cvtepu32_epi64(
                                                    _mm256_extracti128_si256(
                                                        s, 1))));
        } else {
          const __m256i d0 = _mm256_and_si256(
              _mm256_max_epi32(_mm256_sub_epi32(va0, va1), zero), member);
          const __m256i d1 = _mm256_and_si256(
              _mm256_max_epi32(_mm256_sub_epi32(va1, va0), zero), member);
          p0 += static_cast<std::uint32_t>(std::popcount(
              static_cast<unsigned>(_mm256_movemask_ps(_mm256_castsi256_ps(
                  _mm256_cmpgt_epi32(d0, zero))))));
          p1 += static_cast<std::uint32_t>(std::popcount(
              static_cast<unsigned>(_mm256_movemask_ps(_mm256_castsi256_ps(
                  _mm256_cmpgt_epi32(d1, zero))))));
          for (std::uint32_t d = 1; d <= max_diff; ++d) {
            const __m256i vd = _mm256_set1_epi32(static_cast<int>(d));
            bucket0[d] += static_cast<std::uint32_t>(std::popcount(
                static_cast<unsigned>(_mm256_movemask_ps(
                    _mm256_castsi256_ps(_mm256_cmpeq_epi32(d0, vd))))));
            bucket1[d] += static_cast<std::uint32_t>(std::popcount(
                static_cast<unsigned>(_mm256_movemask_ps(
                    _mm256_castsi256_ps(_mm256_cmpeq_epi32(d1, vd))))));
          }
        }
      } else {
        for (std::uint64_t bits = byte; bits != 0; bits &= bits - 1) {
          const std::size_t i =
              base + static_cast<std::size_t>(std::countr_zero(bits));
          const std::uint32_t x = a0[i];
          const std::uint32_t y = a1[i];
          if (x > y) {
            ++p0;
            ++bucket0[x - y];
          } else if (y > x) {
            ++p1;
            ++bucket1[y - x];
          }
        }
      }
    }
  }
  if (fields) {
    alignas(32) std::uint64_t f[2][4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(f[0]), acc_lo);
    _mm256_store_si256(reinterpret_cast<__m256i*>(f[1]), acc_hi);
    // Decompose per lane (lane fields stay < 128; cross-lane sums may
    // not, so sum after extraction).
    for (std::uint32_t d = 1; d <= max_diff; ++d) {
      std::uint32_t c0 = 0, c1 = 0;
      for (int l = 0; l < 4; ++l) {
        c0 += static_cast<std::uint32_t>((f[0][l] >> (7 * (4 + d))) & 0x7f) +
              static_cast<std::uint32_t>((f[1][l] >> (7 * (4 + d))) & 0x7f);
        c1 += static_cast<std::uint32_t>((f[0][l] >> (7 * (4 - d))) & 0x7f) +
              static_cast<std::uint32_t>((f[1][l] >> (7 * (4 - d))) & 0x7f);
      }
      bucket0[d] += c0;
      bucket1[d] += c1;
      p0 += c0;
      p1 += c1;
    }
  }
  p01[0] += p0;
  p01[1] += p1;
}

constexpr KernelTable kAvx2Table = {
    count_avx2,        and_count_avx2,       or_assign_avx2,
    and_assign_avx2,   andnot_assign_avx2,   multi_and_count_avx2,
    select_max_key_avx2, diff_histogram_avx2,
};

// ---------------------------------------------------------------------------
// AVX-512 kernels: 512-bit lanes, native vpopcntq, masked 8-candidate
// branching scan. 8 words per vector step, scalar tail.
// ---------------------------------------------------------------------------

#define BFLY_AVX512_TARGET \
  target("avx512f,avx512bw,avx512vl,avx512vpopcntdq,popcnt")

__attribute__((BFLY_AVX512_TARGET)) std::uint64_t count_avx512(
    const std::uint64_t* a, std::size_t words) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= words; i += 8) {
    acc = _mm512_add_epi64(
        acc, _mm512_popcnt_epi64(_mm512_loadu_si512(a + i)));
  }
  std::uint64_t c = static_cast<std::uint64_t>(_mm512_reduce_add_epi64(acc));
  for (; i < words; ++i) {
    c += static_cast<std::uint64_t>(std::popcount(a[i]));
  }
  return c;
}

__attribute__((BFLY_AVX512_TARGET)) std::uint64_t and_count_avx512(
    const std::uint64_t* a, const std::uint64_t* b, std::size_t words) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= words; i += 8) {
    acc = _mm512_add_epi64(
        acc, _mm512_popcnt_epi64(_mm512_and_si512(
                 _mm512_loadu_si512(a + i), _mm512_loadu_si512(b + i))));
  }
  std::uint64_t c = static_cast<std::uint64_t>(_mm512_reduce_add_epi64(acc));
  for (; i < words; ++i) {
    c += static_cast<std::uint64_t>(std::popcount(a[i] & b[i]));
  }
  return c;
}

__attribute__((BFLY_AVX512_TARGET)) void or_assign_avx512(
    std::uint64_t* a, const std::uint64_t* b, std::size_t words) {
  std::size_t i = 0;
  for (; i + 8 <= words; i += 8) {
    _mm512_storeu_si512(a + i, _mm512_or_si512(_mm512_loadu_si512(a + i),
                                               _mm512_loadu_si512(b + i)));
  }
  for (; i < words; ++i) a[i] |= b[i];
}

__attribute__((BFLY_AVX512_TARGET)) void and_assign_avx512(
    std::uint64_t* a, const std::uint64_t* b, std::size_t words) {
  std::size_t i = 0;
  for (; i + 8 <= words; i += 8) {
    _mm512_storeu_si512(a + i, _mm512_and_si512(_mm512_loadu_si512(a + i),
                                                _mm512_loadu_si512(b + i)));
  }
  for (; i < words; ++i) a[i] &= b[i];
}

__attribute__((BFLY_AVX512_TARGET)) void andnot_assign_avx512(
    std::uint64_t* a, const std::uint64_t* b, std::size_t words) {
  std::size_t i = 0;
  for (; i + 8 <= words; i += 8) {
    _mm512_storeu_si512(
        a + i, _mm512_andnot_si512(_mm512_loadu_si512(b + i),
                                   _mm512_loadu_si512(a + i)));
  }
  for (; i < words; ++i) a[i] &= ~b[i];
}

__attribute__((BFLY_AVX512_TARGET)) void multi_and_count_avx512(
    const std::uint64_t* const* rows, const std::uint64_t* mask,
    std::size_t words, std::size_t num_rows, std::uint32_t* out) {
  for (std::size_t r = 0; r < num_rows; ++r) {
    out[r] = static_cast<std::uint32_t>(and_count_avx512(rows[r], mask, words));
  }
}

// Wide-field fallback, 8 candidates per step: one mask byte selects the
// lanes via a zeroing mask move, so unset candidates carry key 0. Same
// tie-break proof as the AVX2 scan (per-lane strictly-greater,
// horizontal min-index).
__attribute__((BFLY_AVX512_TARGET)) std::size_t select_max_key_avx512_wide(
    const std::uint64_t* mask, std::size_t nbits, const std::uint32_t* a0,
    const std::uint32_t* a1, const std::uint32_t* deg) {
  const std::size_t words = (nbits + 63) / 64;
  const __m512i lane_idx = _mm512_setr_epi64(0, 1, 2, 3, 4, 5, 6, 7);
  const __m512i one = _mm512_set1_epi64(1);
  __m512i best_key = _mm512_setzero_si512();
  __m512i best_idx = _mm512_setzero_si512();
  std::uint64_t tail_key = 0;
  std::size_t tail_idx = static_cast<std::size_t>(-1);
  for (std::size_t wi = 0; wi < words; ++wi) {
    std::uint64_t w = mask[wi];
    while (w != 0) {
      const int g = std::countr_zero(w) >> 3;
      const std::uint64_t byte = (w >> (8 * g)) & 0xffull;
      w &= ~(0xffull << (8 * g));
      const std::size_t base = wi * 64 + 8 * static_cast<std::size_t>(g);
      if (base + 8 <= nbits) {
        const __m256i va0 =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a0 + base));
        const __m256i va1 =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a1 + base));
        const __m256i vdeg =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(deg + base));
        const __m256i diff = _mm256_sub_epi32(_mm256_max_epu32(va0, va1),
                                              _mm256_min_epu32(va0, va1));
        const __m256i sum = _mm256_add_epi32(va0, va1);
        __m512i key = _mm512_or_si512(
            _mm512_slli_epi64(_mm512_cvtepu32_epi64(diff), 42),
            _mm512_or_si512(
                _mm512_slli_epi64(_mm512_cvtepu32_epi64(sum), 21),
                _mm512_cvtepu32_epi64(vdeg)));
        key = _mm512_maskz_mov_epi64(static_cast<__mmask8>(byte),
                                     _mm512_add_epi64(key, one));
        const __m512i idx = _mm512_add_epi64(
            _mm512_set1_epi64(static_cast<long long>(base)), lane_idx);
        const __mmask8 gt = _mm512_cmpgt_epu64_mask(key, best_key);
        best_key = _mm512_mask_mov_epi64(best_key, gt, key);
        best_idx = _mm512_mask_mov_epi64(best_idx, gt, idx);
      } else {
        for (std::uint64_t bits = byte; bits != 0; bits &= bits - 1) {
          const std::size_t i =
              base + static_cast<std::size_t>(std::countr_zero(bits));
          const std::uint64_t key = branch_key(a0, a1, deg, i) + 1;
          if (key > tail_key) {
            tail_key = key;
            tail_idx = i;
          }
        }
      }
    }
  }
  alignas(64) std::uint64_t keys[8];
  alignas(64) std::uint64_t idxs[8];
  _mm512_store_si512(keys, best_key);
  _mm512_store_si512(idxs, best_idx);
  std::uint64_t bk = 0;
  std::size_t bi = static_cast<std::size_t>(-1);
  for (int l = 0; l < 8; ++l) {
    if (keys[l] > bk ||
        (keys[l] != 0 && keys[l] == bk && idxs[l] < static_cast<std::uint64_t>(bi))) {
      bk = keys[l];
      bi = static_cast<std::size_t>(idxs[l]);
    }
  }
  if (tail_key > bk) {
    bk = tail_key;
    bi = tail_idx;
  }
  return bi;
}

// Packed-key scan, 16 candidates per step (see the AVX2 variant for the
// 32-bit key-order proof). Lane membership comes straight from 16 mask
// bits as a __mmask16 — no expansion arithmetic at all.
__attribute__((BFLY_AVX512_TARGET)) std::size_t select_max_key_avx512(
    const std::uint64_t* mask, std::size_t nbits, const std::uint32_t* a0,
    const std::uint32_t* a1, const std::uint32_t* deg,
    std::uint32_t max_value) {
  const std::size_t words = (nbits + 63) / 64;
  if (sparse_mask(mask, words)) {
    return select_max_key_scalar(mask, nbits, a0, a1, deg, max_value);
  }
  if (max_value >= 1024) {
    return select_max_key_avx512_wide(mask, nbits, a0, a1, deg);
  }
  const __m512i lane_idx =
      _mm512_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15);
  const __m512i one = _mm512_set1_epi32(1);
  __m512i best_key = _mm512_setzero_si512();
  __m512i best_idx = _mm512_setzero_si512();
  std::uint64_t tail_key = 0;
  std::size_t tail_idx = static_cast<std::size_t>(-1);
  for (std::size_t wi = 0; wi < words; ++wi) {
    const std::uint64_t w = mask[wi];
    if (w == 0) continue;
    for (int g = 0; g < 4; ++g) {
      const std::uint64_t half = (w >> (16 * g)) & 0xffffull;
      if (half == 0) continue;
      const std::size_t base = wi * 64 + 16 * static_cast<std::size_t>(g);
      if (base + 16 <= nbits) {
        const __m512i va0 = _mm512_loadu_si512(a0 + base);
        const __m512i va1 = _mm512_loadu_si512(a1 + base);
        const __m512i vdeg = _mm512_loadu_si512(deg + base);
        const __m512i diff = _mm512_sub_epi32(_mm512_max_epu32(va0, va1),
                                              _mm512_min_epu32(va0, va1));
        const __m512i sum = _mm512_add_epi32(va0, va1);
        __m512i key = _mm512_or_si512(
            _mm512_slli_epi32(diff, 21),
            _mm512_or_si512(_mm512_slli_epi32(sum, 10), vdeg));
        key = _mm512_maskz_mov_epi32(static_cast<__mmask16>(half),
                                     _mm512_add_epi32(key, one));
        const __m512i idx = _mm512_add_epi32(
            _mm512_set1_epi32(static_cast<int>(base)), lane_idx);
        const __mmask16 gt = _mm512_cmpgt_epu32_mask(key, best_key);
        best_key = _mm512_mask_mov_epi32(best_key, gt, key);
        best_idx = _mm512_mask_mov_epi32(best_idx, gt, idx);
      } else {
        for (std::uint64_t bits = half; bits != 0; bits &= bits - 1) {
          const std::size_t i =
              base + static_cast<std::size_t>(std::countr_zero(bits));
          const std::uint64_t key = branch_key(a0, a1, deg, i) + 1;
          if (key > tail_key) {
            tail_key = key;
            tail_idx = i;
          }
        }
      }
    }
  }
  alignas(64) std::uint32_t keys[16];
  alignas(64) std::uint32_t idxs[16];
  _mm512_store_si512(keys, best_key);
  _mm512_store_si512(idxs, best_idx);
  std::uint32_t bk = 0;
  std::size_t bi = static_cast<std::size_t>(-1);
  for (int l = 0; l < 16; ++l) {
    if (keys[l] > bk || (keys[l] != 0 && keys[l] == bk && idxs[l] < bi)) {
      bk = keys[l];
      bi = idxs[l];
    }
  }
  if (tail_idx != static_cast<std::size_t>(-1)) {
    const std::uint32_t x = a0[tail_idx];
    const std::uint32_t y = a1[tail_idx];
    const std::uint32_t d = x > y ? x - y : y - x;
    const std::uint32_t packed = (d << 21) | ((x + y) << 10) | deg[tail_idx];
    if (packed + 1 > bk) {
      bi = tail_idx;
    }
  }
  return bi;
}

// 16-lane histogram; mask-register compares replace the AVX2 movemask
// dance, and the same combined signed-diff field accumulator covers the
// small-degree case (one hit per lane per group, 4 groups per word, so
// field capacity 127 admits 31 words / nbits <= 1984). Same
// commutative-sum contract.
__attribute__((BFLY_AVX512_TARGET)) void diff_histogram_avx512(
    const std::uint64_t* mask, std::size_t nbits, const std::uint32_t* a0,
    const std::uint32_t* a1, std::uint32_t max_diff, std::uint32_t* p01,
    std::uint32_t* bucket0, std::uint32_t* bucket1) {
  const std::size_t words = (nbits + 63) / 64;
  if (max_diff > 16 || sparse_mask(mask, words)) {
    diff_histogram_scalar(mask, nbits, a0, a1, max_diff, p01, bucket0,
                          bucket1);
    return;
  }
  const __m512i zero = _mm512_setzero_si512();
  const __m512i ones64 = _mm512_set1_epi64(1);
  const __m512i bias = _mm512_set1_epi32(4);
  const bool fields = max_diff <= 4 && words <= 31;
  __m512i acc_lo = zero, acc_hi = zero;
  std::uint32_t p0 = 0, p1 = 0;
  for (std::size_t wi = 0; wi < words; ++wi) {
    const std::uint64_t w = mask[wi];
    if (w == 0) continue;
    for (int g = 0; g < 4; ++g) {
      const std::uint64_t half = (w >> (16 * g)) & 0xffffull;
      if (half == 0) continue;
      const std::size_t base = wi * 64 + 16 * static_cast<std::size_t>(g);
      if (base + 16 <= nbits) {
        const __mmask16 member = static_cast<__mmask16>(half);
        const __m512i va0 = _mm512_loadu_si512(a0 + base);
        const __m512i va1 = _mm512_loadu_si512(a1 + base);
        if (fields) {
          // Non-members stay at the ignored center field (db == 4).
          const __m512i db = _mm512_mask_add_epi32(
              bias, member, _mm512_sub_epi32(va0, va1), bias);
          const __m512i s = _mm512_sub_epi32(_mm512_slli_epi32(db, 3), db);
          acc_lo = _mm512_add_epi64(
              acc_lo, _mm512_sllv_epi64(ones64, _mm512_cvtepu32_epi64(
                                                    _mm512_castsi512_si256(
                                                        s))));
          acc_hi = _mm512_add_epi64(
              acc_hi,
              _mm512_sllv_epi64(ones64, _mm512_cvtepu32_epi64(
                                            _mm512_extracti64x4_epi64(s, 1))));
          continue;
        }
        const __m512i d0 = _mm512_maskz_max_epi32(
            member, _mm512_sub_epi32(va0, va1), zero);
        const __m512i d1 = _mm512_maskz_max_epi32(
            member, _mm512_sub_epi32(va1, va0), zero);
        p0 += static_cast<std::uint32_t>(std::popcount(
            static_cast<unsigned>(_mm512_cmpgt_epi32_mask(d0, zero))));
        p1 += static_cast<std::uint32_t>(std::popcount(
            static_cast<unsigned>(_mm512_cmpgt_epi32_mask(d1, zero))));
        for (std::uint32_t d = 1; d <= max_diff; ++d) {
          const __m512i vd = _mm512_set1_epi32(static_cast<int>(d));
          bucket0[d] += static_cast<std::uint32_t>(std::popcount(
              static_cast<unsigned>(_mm512_cmpeq_epi32_mask(d0, vd))));
          bucket1[d] += static_cast<std::uint32_t>(std::popcount(
              static_cast<unsigned>(_mm512_cmpeq_epi32_mask(d1, vd))));
        }
      } else {
        for (std::uint64_t bits = half; bits != 0; bits &= bits - 1) {
          const std::size_t i =
              base + static_cast<std::size_t>(std::countr_zero(bits));
          const std::uint32_t x = a0[i];
          const std::uint32_t y = a1[i];
          if (x > y) {
            ++p0;
            ++bucket0[x - y];
          } else if (y > x) {
            ++p1;
            ++bucket1[y - x];
          }
        }
      }
    }
  }
  if (fields) {
    alignas(64) std::uint64_t f[2][8];
    _mm512_store_si512(f[0], acc_lo);
    _mm512_store_si512(f[1], acc_hi);
    for (std::uint32_t d = 1; d <= max_diff; ++d) {
      std::uint32_t c0 = 0, c1 = 0;
      for (int l = 0; l < 8; ++l) {
        c0 += static_cast<std::uint32_t>((f[0][l] >> (7 * (4 + d))) & 0x7f) +
              static_cast<std::uint32_t>((f[1][l] >> (7 * (4 + d))) & 0x7f);
        c1 += static_cast<std::uint32_t>((f[0][l] >> (7 * (4 - d))) & 0x7f) +
              static_cast<std::uint32_t>((f[1][l] >> (7 * (4 - d))) & 0x7f);
      }
      bucket0[d] += c0;
      bucket1[d] += c1;
      p0 += c0;
      p1 += c1;
    }
  }
  p01[0] += p0;
  p01[1] += p1;
}

constexpr KernelTable kAvx512Table = {
    count_avx512,        and_count_avx512,       or_assign_avx512,
    and_assign_avx512,   andnot_assign_avx512,   multi_and_count_avx512,
    select_max_key_avx512, diff_histogram_avx512,
};

#endif  // BFLY_SIMD_X86

const KernelTable* table_for(DispatchLevel level) noexcept {
#if defined(BFLY_SIMD_X86)
  switch (level) {
    case DispatchLevel::kAvx512: return &kAvx512Table;
    case DispatchLevel::kAvx2: return &kAvx2Table;
    case DispatchLevel::kScalar: break;
  }
#else
  (void)level;
#endif
  return &kScalarTable;
}

DispatchLevel detect() noexcept {
#if defined(BFLY_SIMD_X86)
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512bw") &&
      __builtin_cpu_supports("avx512vl") &&
      __builtin_cpu_supports("avx512vpopcntdq") &&
      __builtin_cpu_supports("popcnt")) {
    return DispatchLevel::kAvx512;
  }
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("popcnt")) {
    return DispatchLevel::kAvx2;
  }
#endif
  return DispatchLevel::kScalar;
}

// Detection plus the BFLY_SIMD_DISPATCH pin, evaluated once. An unknown
// name or an over-detection request is reported on stderr and clamped —
// never silently honored (a test asserting "avx512 forced" on a machine
// without it should fail its level check, not fault).
DispatchLevel initial_level() noexcept {
  const DispatchLevel detected = detect();
  const char* env = std::getenv("BFLY_SIMD_DISPATCH");
  if (env == nullptr || *env == '\0') return detected;
  DispatchLevel requested;
  if (!parse_level(env, requested)) {
    std::fprintf(stderr,
                 "bfly: ignoring unknown BFLY_SIMD_DISPATCH='%s' "
                 "(expected scalar, avx2, or avx512)\n",
                 env);
    return detected;
  }
  if (requested > detected) {
    std::fprintf(stderr,
                 "bfly: BFLY_SIMD_DISPATCH=%s exceeds this build/CPU's "
                 "level %s; clamping\n",
                 to_string(requested), to_string(detected));
    return detected;
  }
  return requested;
}

std::atomic<int>& active_cell() noexcept {
  static std::atomic<int> cell{static_cast<int>(initial_level())};
  return cell;
}

}  // namespace

const char* to_string(DispatchLevel level) noexcept {
  switch (level) {
    case DispatchLevel::kScalar: return "scalar";
    case DispatchLevel::kAvx2: return "avx2";
    case DispatchLevel::kAvx512: return "avx512";
  }
  return "?";
}

bool parse_level(std::string_view name, DispatchLevel& out) noexcept {
  if (name == "scalar") {
    out = DispatchLevel::kScalar;
  } else if (name == "avx2") {
    out = DispatchLevel::kAvx2;
  } else if (name == "avx512") {
    out = DispatchLevel::kAvx512;
  } else {
    return false;
  }
  return true;
}

DispatchLevel detected_level() noexcept {
  static const DispatchLevel level = detect();
  return level;
}

DispatchLevel active_level() noexcept {
  return static_cast<DispatchLevel>(
      active_cell().load(std::memory_order_relaxed));
}

bool set_active_level(DispatchLevel level) noexcept {
  if (level > detected_level()) return false;
  active_cell().store(static_cast<int>(level), std::memory_order_relaxed);
  return true;
}

const KernelTable& kernels() noexcept { return *table_for(active_level()); }

const KernelTable& kernels_for(DispatchLevel level) noexcept {
  return *table_for(level);
}

}  // namespace bfly::simd
