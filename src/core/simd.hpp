// Runtime-dispatched SIMD kernels for the Bitset64 set algebra.
//
// The exact solvers spend almost all of their time in a handful of
// word-loop primitives: popcount reductions over `adj[v] & side_mask`,
// the fused assign/unassign sweeps, and the most-constrained branching
// scan (an argmax over the unassigned set). This header exposes those
// primitives as a table of function pointers with three implementations
// — portable scalar, AVX2, AVX-512 — selected once at startup by cpuid
// and overridable for testing:
//
//   * `BFLY_SIMD_DISPATCH={scalar,avx2,avx512}` in the environment pins
//     the level before first use (requests above the detected level are
//     clamped, loudly);
//   * set_active_level() switches at runtime for differential tests and
//     the bench's --dispatch rows. It must not race in-flight solver
//     calls — flip it between runs, not during them.
//
// Every implementation is bit-identical to the scalar reference by
// contract: same results on every input including tail words (bit
// counts not divisible by 64/256/512) and zero-length bitsets, and
// select_max_key reproduces the scalar first-max-in-index-order tie
// break exactly, so solver node counts are dispatch-invariant.
// tests/test_simd_kernels.cpp enforces this differentially; the scalar
// path is the reference, never removed.
//
// Configure-time: the AVX paths compile only under BFLY_SIMD=ON (the
// default) on x86-64 GCC/Clang, via per-function target attributes — no
// global -mavx* flags, so one binary carries all levels and plain
// builds stay portable. With BFLY_SIMD=OFF (or off-x86) only the scalar
// table exists and detected_level() reports kScalar.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace bfly::simd {

enum class DispatchLevel : int {
  kScalar = 0,  ///< portable word loops (the differential reference)
  kAvx2 = 1,    ///< 256-bit lanes, nibble-LUT popcount
  kAvx512 = 2,  ///< 512-bit lanes, vpopcntq
};

/// "scalar" / "avx2" / "avx512".
[[nodiscard]] const char* to_string(DispatchLevel level) noexcept;

/// Parses a level name (the env-override / --dispatch vocabulary).
/// Returns false and leaves `out` untouched on an unknown name.
[[nodiscard]] bool parse_level(std::string_view name,
                               DispatchLevel& out) noexcept;

/// Best level this build AND this CPU support (cpuid-detected once).
[[nodiscard]] DispatchLevel detected_level() noexcept;

/// Level the kernel table currently dispatches to. Starts at
/// detected_level() unless BFLY_SIMD_DISPATCH pinned it lower.
[[nodiscard]] DispatchLevel active_level() noexcept;

/// Switches the active level. Returns false (and changes nothing) when
/// the request exceeds detected_level(). Not safe to call while solver
/// threads are running — the table pointer is a relaxed atomic, so a
/// racing reader would see a torn *schedule*, never torn data, but the
/// differential contract (same level for a whole run) would be void.
bool set_active_level(DispatchLevel level) noexcept;

/// The dispatched primitives. All word pointers are to little-endian
/// 64-bit words; `words == 0` is valid everywhere (zero-length bitset).
/// Callers guarantee bits above a bitset's logical size are zero — the
/// Bitset64 invariant — so whole-word kernels need no tail masking.
struct KernelTable {
  /// popcount over a[0..words).
  std::uint64_t (*count)(const std::uint64_t* a, std::size_t words);
  /// popcount(a & b) without materializing the intersection.
  std::uint64_t (*and_count)(const std::uint64_t* a, const std::uint64_t* b,
                             std::size_t words);
  /// a |= b, a &= b, a &= ~b.
  void (*or_assign)(std::uint64_t* a, const std::uint64_t* b,
                    std::size_t words);
  void (*and_assign)(std::uint64_t* a, const std::uint64_t* b,
                     std::size_t words);
  void (*andnot_assign)(std::uint64_t* a, const std::uint64_t* b,
                        std::size_t words);
  /// Batched multi-row reduction: out[i] = popcount(rows[i] & mask) for
  /// i in [0, num_rows). The branch-and-bound seeds whole prefixes with
  /// one call (every adjacency row against one side mask).
  void (*multi_and_count)(const std::uint64_t* const* rows,
                          const std::uint64_t* mask, std::size_t words,
                          std::size_t num_rows, std::uint32_t* out);
  /// Most-constrained branching scan: over the set bits i of
  /// mask[0..nbits), maximize
  ///     key(i) = (|a0[i]-a1[i]| << 42) | ((a0[i]+a1[i]) << 21) | deg[i]
  /// returning the SMALLEST index among the maxima (scalar first-max
  /// semantics — ties keep the earlier index). Returns SIZE_MAX when no
  /// bit is set. a0/a1/deg have nbits entries; every field must fit its
  /// 21-bit lane (true for any graph this library solves exactly).
  /// `max_value` bounds every a0/a1/deg entry (the caller passes the
  /// graph's max degree); when it is < 1024 the vector paths compare
  /// 32-bit packed keys (diff << 21 | sum << 10 | deg) — the same field
  /// order with no overflow, hence the identical argmax — at twice the
  /// lane density.
  std::size_t (*select_max_key)(const std::uint64_t* mask, std::size_t nbits,
                                const std::uint32_t* a0,
                                const std::uint32_t* a1,
                                const std::uint32_t* deg,
                                std::uint32_t max_value);
  /// Fused preference/difference histogram over the set bits i of
  /// mask[0..nbits) — the branch-and-bound assignment-count bound's
  /// scan. For each set i with d = a0[i] - a1[i]:
  ///   d > 0: ++p01[0], ++bucket0[d];   d < 0: ++p01[1], ++bucket1[-d].
  /// Accumulates into caller-zeroed p01[2] and bucket0/bucket1[0 ..
  /// max_diff] (|d| <= max_diff, the graph's max degree; the caller
  /// sizes the buckets). Pure commutative accumulation, so lane order
  /// never shows: all levels produce equal counters.
  void (*diff_histogram)(const std::uint64_t* mask, std::size_t nbits,
                         const std::uint32_t* a0, const std::uint32_t* a1,
                         std::uint32_t max_diff, std::uint32_t* p01,
                         std::uint32_t* bucket0, std::uint32_t* bucket1);
};

/// Kernel table for the active level. One relaxed atomic load; cache
/// the reference across a tight loop if the indirection ever shows up.
[[nodiscard]] const KernelTable& kernels() noexcept;

/// Kernel table for a specific level, active or not (differential tests
/// compare levels side by side without flipping the global). Levels
/// above detected_level() return tables that would fault on this CPU —
/// callers check detected_level() first.
[[nodiscard]] const KernelTable& kernels_for(DispatchLevel level) noexcept;

}  // namespace bfly::simd
