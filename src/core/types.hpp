// Fundamental integer types shared by every module.
#pragma once

#include <cstdint>
#include <limits>

namespace bfly {

/// Node identifier. Graphs in this library are bounded by a few million
/// nodes, so 32 bits suffice and halve the memory traffic of adjacency scans.
using NodeId = std::uint32_t;

/// Edge identifier (index into the canonical edge list, one entry per
/// undirected edge; parallel edges get distinct ids).
using EdgeId = std::uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// Sentinel for "no edge".
inline constexpr EdgeId kInvalidEdge = std::numeric_limits<EdgeId>::max();

}  // namespace bfly
