// Work-stealing shard scheduler (DESIGN.md §13).
//
// One abstraction behind every sharded exact search in the tree: the
// branch-and-bound seed-prefix subtrees and the top-p-bit expansion
// sub-sweeps are both "N independent shards, run them all, merge as you
// go" workloads, previously dispatched by pushing every shard through
// one TaskGroup queue. This scheduler gives each worker its own
// capability-annotated deque (the Chase-Lev shape with the PR 7 sync
// layer standing in for the lock-free version: owner pops the front,
// thieves steal from the back, so the owner drains shards in seeding
// order while thieves take the coldest work). Shards are distributed
// round-robin at start; a worker whose deque runs dry scans the others
// and steals, so one slow shard never idles the rest of the pool.
//
// Determinism contract: the scheduler only changes WHICH worker runs a
// shard, never the shard set. Callers that merge through order-
// insensitive reductions (SharedIncumbent's strict-improvement publish,
// ShardMerger's job-index tie break) therefore produce thread-count-
// independent results — the same contract the TaskGroup drivers had.
// With num_workers <= 1 (or a single shard) everything runs inline on
// the calling thread in index order, which is byte-identical to the old
// serial drivers and keeps checkpointed runs replayable.
//
// Exception contract (mirrors TaskGroup): a shard that throws does not
// stop the remaining shards; the first exception (by completion order)
// is rethrown from run() after every worker has drained.
#pragma once

#include <cstdint>
#include <functional>

namespace bfly {

/// Steal-efficiency telemetry for one run(): how many shards existed,
/// how many were executed by a thief rather than their seeded owner,
/// and how long workers spent scanning for work with every deque empty.
/// bench_exact_kernels reports steals/spawned and idle_seconds per row.
struct StealStats {
  std::uint64_t spawned = 0;   ///< shards enqueued (== shards executed)
  std::uint64_t steals = 0;    ///< shards executed by a non-owner worker
  double idle_seconds = 0.0;   ///< summed per-worker empty-scan time
};

class WorkStealingScheduler {
 public:
  struct Options {
    /// Worker threads (0 = default_thread_count(), 1 = inline serial).
    unsigned num_workers = 0;
    /// Seed every shard into worker 0's deque instead of round-robin:
    /// all parallelism then comes from stealing. Used by the stress
    /// tests to force nonzero steal counters deterministically; also
    /// the right mode when shard costs are wildly front-loaded.
    bool seed_to_first = false;
  };

  /// fn(shard_index, worker_index) — worker_index in [0, num_workers).
  using ShardFn = std::function<void(std::size_t, unsigned)>;

  /// Runs shards 0..num_shards-1 to completion and returns the steal
  /// telemetry. Blocking; rethrows the first shard exception after all
  /// workers drain (remaining shards still run, TaskGroup semantics).
  static StealStats run(std::size_t num_shards, const ShardFn& fn,
                        const Options& opts);
  static StealStats run(std::size_t num_shards, const ShardFn& fn);
};

}  // namespace bfly
