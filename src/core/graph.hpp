// Immutable undirected graph in CSR (compressed sparse row) form.
//
// Graphs are constructed once through GraphBuilder and never mutated
// afterwards; every algorithm in the library reads them concurrently
// without synchronization. Parallel edges are representable (the 2K_N
// embedding lower bounds of Section 1.4 of the paper need them); self
// loops are rejected since none of the paper's networks contain any.
#pragma once

#include <memory>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "core/bitset64.hpp"
#include "core/error.hpp"
#include "core/types.hpp"

namespace bfly {

class Graph;

/// Mutable edge-list accumulator; call build() to freeze into a Graph.
class GraphBuilder {
 public:
  explicit GraphBuilder(NodeId num_nodes) : num_nodes_(num_nodes) {}

  /// Adds one undirected edge. Parallel edges allowed; self loops rejected.
  void add_edge(NodeId u, NodeId v);

  [[nodiscard]] NodeId num_nodes() const noexcept { return num_nodes_; }
  [[nodiscard]] std::size_t num_edges() const noexcept {
    return edges_.size();
  }

  /// Freezes the accumulated edges into an immutable Graph.
  [[nodiscard]] Graph build() &&;

 private:
  NodeId num_nodes_;
  std::vector<std::pair<NodeId, NodeId>> edges_;
};

class Graph {
 public:
  Graph() = default;

  [[nodiscard]] NodeId num_nodes() const noexcept {
    return static_cast<NodeId>(offsets_.empty() ? 0 : offsets_.size() - 1);
  }

  [[nodiscard]] std::size_t num_edges() const noexcept {
    return edges_.size();
  }

  [[nodiscard]] std::size_t degree(NodeId v) const {
    BFLY_ASSERT(v < num_nodes());
    return offsets_[v + 1] - offsets_[v];
  }

  /// Neighbors of v, sorted ascending (parallel edges appear repeated).
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId v) const {
    BFLY_ASSERT(v < num_nodes());
    return {adj_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }

  /// Edge ids incident to v, co-indexed with neighbors(v).
  [[nodiscard]] std::span<const EdgeId> incident_edges(NodeId v) const {
    BFLY_ASSERT(v < num_nodes());
    return {adj_edge_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }

  /// Endpoints of edge e, normalized so that first <= second.
  [[nodiscard]] std::pair<NodeId, NodeId> edge(EdgeId e) const {
    BFLY_ASSERT(e < edges_.size());
    return edges_[e];
  }

  /// All edges, normalized (u <= v), in id order.
  [[nodiscard]] std::span<const std::pair<NodeId, NodeId>> edges()
      const noexcept {
    return edges_;
  }

  /// True iff at least one (u, v) edge exists. O(log deg(u)).
  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const;

  /// Number of parallel (u, v) edges. O(log deg(u)).
  [[nodiscard]] std::size_t edge_multiplicity(NodeId u, NodeId v) const;

  [[nodiscard]] std::size_t max_degree() const noexcept { return max_degree_; }

  /// True iff some node pair is connected by more than one edge
  /// (computed once at build). The bitset kernels collapse parallel
  /// edges, so they consult this to decide whether the packed adjacency
  /// is a faithful view.
  [[nodiscard]] bool has_parallel_edges() const noexcept {
    return has_parallel_edges_;
  }

  /// Packed adjacency: one n-bit Bitset64 row per node, bit w set iff at
  /// least one (v, w) edge exists. Built lazily on first call and cached
  /// for the graph's lifetime (thread-safe; copies share the cache).
  /// Parallel edges collapse to a single bit — multiplicity-sensitive
  /// callers must check has_parallel_edges(). O(N²/64) words of memory.
  [[nodiscard]] const std::vector<Bitset64>& adjacency_bitsets() const;

  /// The packed adjacency row of v (see adjacency_bitsets()).
  [[nodiscard]] const Bitset64& adjacency_row(NodeId v) const {
    BFLY_ASSERT(v < num_nodes());
    return adjacency_bitsets()[v];
  }

  /// Sum of degrees == 2 * num_edges(); exposed for sanity checks.
  [[nodiscard]] std::size_t degree_sum() const noexcept { return adj_.size(); }

  /// Deep self-check of the CSR representation: offset monotonicity,
  /// degree-sum / edge-count agreement, per-row sorting, adjacency/edge-id
  /// co-indexing against the edge list, endpoint normalization and range,
  /// absence of self loops, and max_degree. O(N + M). Throws
  /// PreconditionError on the first violated invariant; called at solver
  /// exit under checked builds and from tests always.
  void validate() const;

 private:
  friend class GraphBuilder;

  // Lazily built packed adjacency. Lives behind a shared_ptr so Graph
  // stays copyable (copies of an immutable graph share one cache) and
  // the once_flag gives racing readers a single build.
  struct BitAdjacency {
    std::once_flag once;
    std::vector<Bitset64> rows;
  };

  std::vector<std::size_t> offsets_;  // size num_nodes + 1
  std::vector<NodeId> adj_;           // size 2 * num_edges
  std::vector<EdgeId> adj_edge_;      // co-indexed with adj_
  std::vector<std::pair<NodeId, NodeId>> edges_;
  std::size_t max_degree_ = 0;
  bool has_parallel_edges_ = false;
  std::shared_ptr<BitAdjacency> bit_adj_ = std::make_shared<BitAdjacency>();
};

}  // namespace bfly
