#include "core/graph.hpp"

#include <algorithm>
#include <numeric>

namespace bfly {

void GraphBuilder::add_edge(NodeId u, NodeId v) {
  BFLY_CHECK(u < num_nodes_ && v < num_nodes_, "edge endpoint out of range");
  BFLY_CHECK(u != v, "self loops are not supported");
  if (u > v) std::swap(u, v);
  edges_.emplace_back(u, v);
}

Graph GraphBuilder::build() && {
  Graph g;
  const NodeId n = num_nodes_;
  g.edges_ = std::move(edges_);
  g.offsets_.assign(static_cast<std::size_t>(n) + 1, 0);

  for (const auto& [u, v] : g.edges_) {
    ++g.offsets_[u + 1];
    ++g.offsets_[v + 1];
  }
  std::partial_sum(g.offsets_.begin(), g.offsets_.end(), g.offsets_.begin());

  const std::size_t m2 = g.edges_.size() * 2;
  g.adj_.resize(m2);
  g.adj_edge_.resize(m2);
  std::vector<std::size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (EdgeId e = 0; e < g.edges_.size(); ++e) {
    const auto [u, v] = g.edges_[e];
    g.adj_[cursor[u]] = v;
    g.adj_edge_[cursor[u]++] = e;
    g.adj_[cursor[v]] = u;
    g.adj_edge_[cursor[v]++] = e;
  }

  // Sort each adjacency row by neighbor id (co-sorting edge ids) so that
  // has_edge can binary-search.
  std::vector<std::pair<NodeId, EdgeId>> row;
  for (NodeId v = 0; v < n; ++v) {
    const std::size_t b = g.offsets_[v], e = g.offsets_[v + 1];
    row.clear();
    for (std::size_t i = b; i < e; ++i) {
      row.emplace_back(g.adj_[i], g.adj_edge_[i]);
    }
    std::sort(row.begin(), row.end());
    for (std::size_t i = b; i < e; ++i) {
      g.adj_[i] = row[i - b].first;
      g.adj_edge_[i] = row[i - b].second;
      if (i > b && g.adj_[i] == g.adj_[i - 1]) g.has_parallel_edges_ = true;
    }
    g.max_degree_ = std::max(g.max_degree_, e - b);
  }
  if (checked_build()) g.validate();
  return g;
}

const std::vector<Bitset64>& Graph::adjacency_bitsets() const {
  std::call_once(bit_adj_->once, [this] {
    const NodeId n = num_nodes();
    auto& rows = bit_adj_->rows;
    rows.assign(n, Bitset64(n));
    for (NodeId v = 0; v < n; ++v) {
      for (const NodeId w : neighbors(v)) rows[v].set(w);
    }
  });
  return bit_adj_->rows;
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  const auto nb = neighbors(u);
  return std::binary_search(nb.begin(), nb.end(), v);
}

std::size_t Graph::edge_multiplicity(NodeId u, NodeId v) const {
  const auto nb = neighbors(u);
  const auto [lo, hi] = std::equal_range(nb.begin(), nb.end(), v);
  return static_cast<std::size_t>(hi - lo);
}

void Graph::validate() const {
  const NodeId n = num_nodes();
  BFLY_CHECK(offsets_.size() == static_cast<std::size_t>(n) + 1 ||
                 (offsets_.empty() && n == 0),
             "CSR offset array has wrong size");
  if (offsets_.empty()) {
    BFLY_CHECK(adj_.empty() && adj_edge_.empty() && edges_.empty(),
               "empty graph must have no adjacency or edges");
    return;
  }
  BFLY_CHECK(offsets_.front() == 0, "CSR offsets must start at 0");
  for (NodeId v = 0; v < n; ++v) {
    BFLY_CHECK(offsets_[v] <= offsets_[v + 1],
               "CSR offsets must be non-decreasing");
  }
  BFLY_CHECK(offsets_.back() == adj_.size(),
             "CSR offsets must end at the adjacency size");
  BFLY_CHECK(adj_.size() == 2 * edges_.size(),
             "degree sum must equal twice the edge count");
  BFLY_CHECK(adj_edge_.size() == adj_.size(),
             "edge-id array must be co-indexed with adjacency");

  std::size_t observed_max_degree = 0;
  std::vector<std::size_t> edge_seen(edges_.size(), 0);
  for (NodeId v = 0; v < n; ++v) {
    const std::size_t b = offsets_[v], e = offsets_[v + 1];
    observed_max_degree = std::max(observed_max_degree, e - b);
    for (std::size_t i = b; i < e; ++i) {
      const NodeId w = adj_[i];
      BFLY_CHECK(w < n, "adjacency entry out of range");
      BFLY_CHECK(w != v, "self loop in adjacency");
      BFLY_CHECK(i == b || adj_[i - 1] <= w,
                 "adjacency rows must be sorted by neighbor id");
      const EdgeId id = adj_edge_[i];
      BFLY_CHECK(id < edges_.size(), "adjacency edge id out of range");
      const auto [a, c] = edges_[id];
      BFLY_CHECK((a == v && c == w) || (a == w && c == v),
                 "adjacency edge id does not match its endpoints");
      ++edge_seen[id];
    }
  }
  BFLY_CHECK(observed_max_degree == max_degree_,
             "cached max_degree does not match recount");
  for (EdgeId id = 0; id < edges_.size(); ++id) {
    const auto [u, v] = edges_[id];
    BFLY_CHECK(u <= v, "edge endpoints must be normalized (u <= v)");
    BFLY_CHECK(v < n, "edge endpoint out of range");
    BFLY_CHECK(u != v, "self loops are not supported");
    BFLY_CHECK(edge_seen[id] == 2,
               "each edge must appear exactly twice in the adjacency");
  }
}

}  // namespace bfly
