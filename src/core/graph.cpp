#include "core/graph.hpp"

#include <algorithm>
#include <numeric>

namespace bfly {

void GraphBuilder::add_edge(NodeId u, NodeId v) {
  BFLY_CHECK(u < num_nodes_ && v < num_nodes_, "edge endpoint out of range");
  BFLY_CHECK(u != v, "self loops are not supported");
  if (u > v) std::swap(u, v);
  edges_.emplace_back(u, v);
}

Graph GraphBuilder::build() && {
  Graph g;
  const NodeId n = num_nodes_;
  g.edges_ = std::move(edges_);
  g.offsets_.assign(static_cast<std::size_t>(n) + 1, 0);

  for (const auto& [u, v] : g.edges_) {
    ++g.offsets_[u + 1];
    ++g.offsets_[v + 1];
  }
  std::partial_sum(g.offsets_.begin(), g.offsets_.end(), g.offsets_.begin());

  const std::size_t m2 = g.edges_.size() * 2;
  g.adj_.resize(m2);
  g.adj_edge_.resize(m2);
  std::vector<std::size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (EdgeId e = 0; e < g.edges_.size(); ++e) {
    const auto [u, v] = g.edges_[e];
    g.adj_[cursor[u]] = v;
    g.adj_edge_[cursor[u]++] = e;
    g.adj_[cursor[v]] = u;
    g.adj_edge_[cursor[v]++] = e;
  }

  // Sort each adjacency row by neighbor id (co-sorting edge ids) so that
  // has_edge can binary-search.
  std::vector<std::pair<NodeId, EdgeId>> row;
  for (NodeId v = 0; v < n; ++v) {
    const std::size_t b = g.offsets_[v], e = g.offsets_[v + 1];
    row.clear();
    for (std::size_t i = b; i < e; ++i) {
      row.emplace_back(g.adj_[i], g.adj_edge_[i]);
    }
    std::sort(row.begin(), row.end());
    for (std::size_t i = b; i < e; ++i) {
      g.adj_[i] = row[i - b].first;
      g.adj_edge_[i] = row[i - b].second;
    }
    g.max_degree_ = std::max(g.max_degree_, e - b);
  }
  return g;
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  const auto nb = neighbors(u);
  return std::binary_search(nb.begin(), nb.end(), v);
}

std::size_t Graph::edge_multiplicity(NodeId u, NodeId v) const {
  const auto nb = neighbors(u);
  const auto [lo, hi] = std::equal_range(nb.begin(), nb.end(), v);
  return static_cast<std::size_t>(hi - lo);
}

}  // namespace bfly
