#include "cut/mos_theory.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "core/error.hpp"
#include "core/partition.hpp"

namespace bfly::cut {

double mos_f(double x, double y) {
  return x + y - std::min(1.0, 2.0 * x * y);
}

std::uint64_t mos_m2_cut_capacity(std::uint32_t j, std::uint32_t a,
                                  std::uint32_t b) {
  BFLY_CHECK(j >= 2 && j % 2 == 0, "j must be even and >= 2");
  BFLY_CHECK(a <= j && b <= j, "side counts out of range");
  const std::uint64_t J = j;
  const std::uint64_t total = J * J;
  const std::uint64_t half = total / 2;
  // Monotonic length-2 paths by endpoint sides.
  const std::uint64_t p_aa = static_cast<std::uint64_t>(a) * b;
  const std::uint64_t p_bb =
      static_cast<std::uint64_t>(j - a) * (j - b);
  const std::uint64_t p_mix = total - p_aa - p_bb;
  // Mixed paths cost one edge regardless of their middle node's side.
  // Same-side paths cost 0 with the middle on that side, else 2. The M2
  // bisection forces exactly `half` middles onto side A; if one same-side
  // class exceeds `half`, the excess middles must defect at cost 2 each
  // (both classes cannot exceed half simultaneously since they sum to at
  // most total). Mixed middles balance for free.
  std::uint64_t cap = p_mix;
  if (p_aa > half) cap += 2 * (p_aa - half);
  if (p_bb > half) cap += 2 * (p_bb - half);
  return cap;
}

MosM2Bisection mos_m2_bisection_value(std::uint32_t j) {
  BFLY_CHECK(j >= 2 && j % 2 == 0, "j must be even and >= 2");
  MosM2Bisection best;
  best.capacity = std::numeric_limits<std::uint64_t>::max();

  const std::uint64_t half = static_cast<std::uint64_t>(j) * j / 2;
  const auto consider = [&](std::uint32_t a, std::int64_t b_signed) {
    if (b_signed < 0 || b_signed > j) return;
    const auto b = static_cast<std::uint32_t>(b_signed);
    const std::uint64_t cap = mos_m2_cut_capacity(j, a, b);
    if (cap < best.capacity) {
      best.capacity = cap;
      best.a = a;
      best.b = b;
    }
  };

  // For fixed a, capacity is piecewise linear in b with kinks only where
  // a*b or (j-a)*(j-b) crosses j^2/2; the minimum over b is attained at a
  // kink or an endpoint.
  for (std::uint32_t a = 0; a <= j; ++a) {
    consider(a, 0);
    consider(a, j);
    if (a > 0) {
      const std::int64_t b0 = static_cast<std::int64_t>(half / a);
      consider(a, b0);
      consider(a, b0 + 1);
    }
    const std::uint32_t ja = j - a;
    if (ja > 0) {
      const std::int64_t b1 =
          static_cast<std::int64_t>(j) - static_cast<std::int64_t>(half / ja);
      consider(a, b1);
      consider(a, b1 - 1);
    }
  }
  best.normalized = static_cast<double>(best.capacity) /
                    (static_cast<double>(j) * static_cast<double>(j));
  return best;
}

CutResult mos_m2_bisection_cut(const topo::MeshOfStars& mos) {
  const std::uint32_t j = mos.j();
  BFLY_CHECK(mos.k() == j, "mos_m2_bisection_cut needs a square mesh");
  const auto opt = mos_m2_bisection_value(j);
  const std::uint32_t a = opt.a, b = opt.b;
  const std::uint64_t half = static_cast<std::uint64_t>(j) * j / 2;

  std::vector<std::uint8_t> sides(mos.num_nodes(), 1);
  for (std::uint32_t p = 0; p < a; ++p) sides[mos.m1_node(p)] = 0;
  for (std::uint32_t q = a; q < j; ++q) sides[mos.m1_node(q)] = 1;
  for (std::uint32_t p = 0; p < b; ++p) sides[mos.m3_node(p)] = 0;

  // Middle nodes: same-side paths glue to their endpoints' side; mixed
  // paths are free and fill whatever A (side 0) still needs. If A-A paths
  // alone exceed half, part of them defects (cost 2 each) — exactly the
  // accounting of mos_m2_cut_capacity.
  const std::uint64_t p_aa = static_cast<std::uint64_t>(a) * b;
  const std::uint64_t p_bb =
      static_cast<std::uint64_t>(j - a) * (j - b);
  std::uint64_t a_side_quota = half;  // middles that must end up on side 0

  std::uint64_t aa_to_a = std::min<std::uint64_t>(p_aa, a_side_quota);
  a_side_quota -= aa_to_a;
  // Mixed middles available to fill side 0.
  const std::uint64_t p_mix =
      static_cast<std::uint64_t>(j) * j - p_aa - p_bb;
  std::uint64_t mix_to_a = std::min<std::uint64_t>(p_mix, a_side_quota);
  a_side_quota -= mix_to_a;
  // If still short, B-B middles defect to side 0 (cost 2 each). Happens
  // iff p_bb > half.
  std::uint64_t bb_to_a = a_side_quota;
  BFLY_CHECK(bb_to_a <= p_bb, "middle accounting violated");

  for (std::uint32_t p = 0; p < j; ++p) {
    for (std::uint32_t q = 0; q < j; ++q) {
      const NodeId mid = mos.m2_node(p, q);
      const bool end1_a = p < a;
      const bool end3_a = q < b;
      if (end1_a && end3_a) {
        sides[mid] = aa_to_a > 0 ? (--aa_to_a, 0) : 1;
      } else if (!end1_a && !end3_a) {
        sides[mid] = bb_to_a > 0 ? (--bb_to_a, 0) : 1;
      } else {
        sides[mid] = mix_to_a > 0 ? (--mix_to_a, 0) : 1;
      }
    }
  }

  CutResult res;
  res.capacity = cut_capacity(mos.graph(), sides);
  res.sides = std::move(sides);
  res.exactness = Exactness::kExact;
  res.method = "mos-m2-bisection(a=" + std::to_string(a) +
               ",b=" + std::to_string(b) + ")";
  BFLY_CHECK(res.capacity == opt.capacity,
             "constructed cut does not match the closed form");
  return res;
}

double lemma216_upper_bound_coefficient(std::uint32_t j) {
  const auto v = mos_m2_bisection_value(j);
  return 2.0 * v.normalized + 4.0 / static_cast<double>(j);
}

std::uint64_t lemma216_min_log_n(std::uint32_t j) {
  const std::uint64_t J = j;
  return J * J * J + 2 * J - 1;
}

}  // namespace bfly::cut
