#include "cut/constructive.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "core/error.hpp"
#include "core/math_util.hpp"
#include "core/partition.hpp"
#include "cut/mos_theory.hpp"
#include "topology/mesh_of_stars.hpp"

namespace bfly::cut {

namespace {

template <typename Network>
CutResult msb_column_split(const Network& net, const char* name) {
  const std::uint32_t msb = net.n() / 2;
  std::vector<std::uint8_t> sides(net.num_nodes());
  for (NodeId v = 0; v < net.num_nodes(); ++v) {
    sides[v] = (net.column(v) & msb) ? 1 : 0;
  }
  CutResult res;
  res.capacity = cut_capacity(net.graph(), sides);
  res.sides = std::move(sides);
  res.exactness = Exactness::kBound;
  res.method = name;
  return res;
}

}  // namespace

CutResult column_split_bisection(const topo::Butterfly& bf) {
  return msb_column_split(bf, "column-split");
}

CutResult column_split_bisection(const topo::WrappedButterfly& wb) {
  return msb_column_split(wb, "column-split");
}

CutResult dimension_cut_bisection(const topo::CubeConnectedCycles& ccc) {
  const std::uint32_t msb = ccc.n() / 2;
  std::vector<std::uint8_t> sides(ccc.num_nodes());
  for (NodeId v = 0; v < ccc.num_nodes(); ++v) {
    sides[v] = (ccc.cycle(v) & msb) ? 1 : 0;
  }
  CutResult res;
  res.capacity = cut_capacity(ccc.graph(), sides);
  res.sides = std::move(sides);
  res.exactness = Exactness::kBound;
  res.method = "dimension-cut";
  return res;
}

namespace {

// Image of butterfly node v under the Lemma 2.11 embedding of Bn into
// MOS_{j,j} (t = log j): levels [0, t) map to their Bn[0, d-t] component
// in M1 (indexed by the bottom t column bits), levels (d-t, d] to their
// Bn[t, d] component in M3 (top t bits), and the middle band to M2.
NodeId mos_image(const topo::Butterfly& bf, const topo::MeshOfStars& mos,
                 std::uint32_t t, NodeId v) {
  const std::uint32_t d = bf.dims();
  const std::uint32_t col = bf.column(v);
  const std::uint32_t lvl = bf.level(v);
  const std::uint32_t p = col & ((1u << t) - 1);  // M1 index
  const std::uint32_t q = col >> (d - t);         // M3 index
  if (lvl < t) return mos.m1_node(p);
  if (lvl > d - t) return mos.m3_node(q);
  return mos.m2_node(p, q);
}

// Reassigns the Bn[t, d-t] component containing column pattern (p, q) to
// hold exactly `keep_in_a` of its nodes on side 0, using the Lemma 2.15
// "(*)" level-prefix shape: full upper levels on side 0, full lower
// levels on side 1, one mixed level. Capacity-neutral when the
// component's upper neighbors are on side 0 and lower neighbors on
// side 1.
void amenable_prefix_assign(const topo::Butterfly& bf,
                            std::vector<std::uint8_t>& sides,
                            std::uint32_t comp, std::uint32_t t,
                            std::size_t keep_in_a) {
  const std::uint32_t d = bf.dims();
  const auto cols = bf.component_columns(comp, t, d - t);
  std::size_t remaining = keep_in_a;
  for (std::uint32_t lvl = t; lvl <= d - t; ++lvl) {
    for (const std::uint32_t c : cols) {
      const NodeId v = bf.node(c, lvl);
      if (remaining > 0) {
        sides[v] = 0;
        --remaining;
      } else {
        sides[v] = 1;
      }
    }
  }
  BFLY_CHECK(remaining == 0, "component too small for requested split");
}

}  // namespace

Lemma216Result lemma216_bisection(const topo::Butterfly& bf,
                                  std::uint32_t j) {
  const std::uint32_t d = bf.dims();
  const std::uint32_t n = bf.n();
  BFLY_CHECK(j >= 2 && j % 2 == 0, "j must be even and >= 2");
  BFLY_CHECK(static_cast<std::uint64_t>(j) * j <= n,
             "need j^2 <= n for the Lemma 2.11 embedding");
  const std::uint32_t t = log2_exact(j);

  Lemma216Result out;
  out.j = j;

  // Step 1: optimal M2-bisecting cut of MOS_{j,j} (Lemma 2.17 equality).
  const topo::MeshOfStars mos(j, j);
  CutResult mos_cut = mos_m2_bisection_cut(mos);
  out.mos_capacity = mos_cut.capacity;
  out.promised_capacity =
      2.0 * static_cast<double>(n) * static_cast<double>(mos_cut.capacity) /
          (static_cast<double>(j) * j) +
      4.0 * static_cast<double>(n) / j;
  out.size_requirement_met = lemma216_min_log_n(j) <= d;

  auto& ms = mos_cut.sides;

  // Step 2: pick amenable pivots u in A∩M2 and v in Ā∩M2 whose M1
  // neighbor is on side 0 and M3 neighbor on side 1 (the Lemma 2.15
  // precondition); flip neighbors (the paper's "move at most one
  // neighbor" tweak) if no such pivot exists.
  const auto find_pivot = [&](int side) -> NodeId {
    NodeId fallback = kInvalidNode;
    for (std::uint32_t p = 0; p < j; ++p) {
      for (std::uint32_t q = 0; q < j; ++q) {
        const NodeId mid = mos.m2_node(p, q);
        if (ms[mid] != side) continue;
        if (ms[mos.m1_node(p)] == 0 && ms[mos.m3_node(q)] == 1) return mid;
        if (fallback == kInvalidNode) fallback = mid;
      }
    }
    BFLY_CHECK(fallback != kInvalidNode, "no M2 node on requested side");
    // Tweak: force the fallback pivot's neighbors onto the right sides.
    const std::uint32_t p = (fallback - j) / j;
    const std::uint32_t q = (fallback - j) % j;
    ms[mos.m1_node(p)] = 0;
    ms[mos.m3_node(q)] = 1;
    return fallback;
  };
  const NodeId pivot_a = find_pivot(0);
  const NodeId pivot_b = find_pivot(1);

  // Step 3: lift through the embedding.
  std::vector<std::uint8_t> sides(bf.num_nodes());
  for (NodeId v = 0; v < bf.num_nodes(); ++v) {
    sides[v] = ms[mos_image(bf, mos, t, v)];
  }

  // Step 4: restore balance inside the two pivot components
  // (capacity-neutral Lemma 2.15 moves).
  const auto comp_of_mid = [&](NodeId mid) {
    const std::uint32_t p = (mid - j) / j;
    const std::uint32_t q = (mid - j) % j;
    return (q << t) | p;
  };
  const std::size_t comp_size =
      static_cast<std::size_t>(n >> (2 * t)) * (d - 2 * t + 1);
  const NodeId total = bf.num_nodes();

  const auto ones = [&] {
    std::size_t c = 0;
    for (const auto s : sides) c += s;
    return c;
  };
  {
    const std::size_t side1 = ones();
    const std::size_t side0 = total - side1;
    if (side0 > side1) {
      // Side 0 heavy: push nodes of the side-0 pivot component to side 1.
      const std::size_t surplus = (side0 - side1) / 2;
      const std::size_t shift = std::min(surplus, comp_size);
      amenable_prefix_assign(bf, sides, comp_of_mid(pivot_a), t,
                             comp_size - shift);
    } else if (side1 > side0) {
      const std::size_t surplus = (side1 - side0) / 2;
      const std::size_t shift = std::min(surplus, comp_size);
      // Side 1 heavy: pull nodes of the side-1 pivot component to side 0.
      amenable_prefix_assign(bf, sides, comp_of_mid(pivot_b), t, shift);
    }
  }

  // Step 5: on sizes below the lemma's requirement the two components may
  // be too small to absorb the imbalance; finish with greedy
  // minimum-damage moves so the result is always a genuine bisection.
  Partition part(bf.graph(), sides);
  while (!part.is_bisection()) {
    const int heavy = part.side_size(0) > part.side_size(1) ? 0 : 1;
    NodeId best_v = kInvalidNode;
    std::int64_t best_gain = std::numeric_limits<std::int64_t>::min();
    for (NodeId v = 0; v < total; ++v) {
      if (part.side(v) != heavy) continue;
      const std::int64_t gn = part.gain(v);
      if (gn > best_gain) {
        best_gain = gn;
        best_v = v;
      }
    }
    part.move(best_v);
    ++out.cleanup_moves;
  }

  out.cut.sides = part.sides();
  out.cut.capacity = part.cut_capacity();
  out.cut.exactness = Exactness::kBound;
  out.cut.method = "lemma-2.16(j=" + std::to_string(j) + ")";
  return out;
}

}  // namespace bfly::cut
