#include "cut/branch_bound.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <limits>
#include <mutex>
#include <vector>

#include "core/bitset64.hpp"
#include "core/error.hpp"
#include "cut/incumbent.hpp"
#include "robust/fault_injection.hpp"

namespace bfly::cut {

namespace {

constexpr std::uint8_t kUnassigned = 2;
constexpr std::size_t kNoCapacity = std::numeric_limits<std::size_t>::max();

// BFS assignment order (per component) so the frontier — and hence the
// cut — grows early, tightening the bound. Both kernels share it, and
// the parallel driver enumerates its seed prefixes over the same order,
// so a worker's subtree is exactly the serial subtree under its prefix.
std::vector<NodeId> bfs_assignment_order(const Graph& g) {
  const NodeId n = g.num_nodes();
  std::vector<std::uint8_t> seen(n, 0);
  std::vector<NodeId> order;
  order.reserve(n);
  for (NodeId root = 0; root < n; ++root) {
    if (seen[root]) continue;
    seen[root] = 1;
    std::size_t head = order.size();
    order.push_back(root);
    while (head < order.size()) {
      const NodeId u = order[head++];
      for (const NodeId w : g.neighbors(u)) {
        if (!seen[w]) {
          seen[w] = 1;
          order.push_back(w);
        }
      }
    }
  }
  return order;
}

// Subset-bisection bookkeeping shared by both kernels.
struct SubsetState {
  std::vector<std::uint8_t> in_subset;
  bool subset_mode = false;
  std::size_t u_total = 0;
  std::size_t u_floor = 0, u_ceil = 0;
  std::size_t u1 = 0;          // subset nodes currently on side 1
  std::size_t u_assigned = 0;  // subset nodes assigned so far

  SubsetState(const Graph& g, const BranchBoundOptions& opts)
      : in_subset(g.num_nodes(), 0) {
    if (opts.bisect_subset.empty()) return;
    subset_mode = true;
    for (const NodeId v : opts.bisect_subset) {
      BFLY_CHECK(v < g.num_nodes(), "subset node out of range");
      in_subset[v] = 1;
    }
    u_total = opts.bisect_subset.size();
    u_floor = u_total / 2;
    u_ceil = (u_total + 1) / 2;
  }

  [[nodiscard]] bool feasible() const {
    if (!subset_mode) return true;
    const std::size_t remaining = u_total - u_assigned;
    // Final u1 must land in [u_floor, u_ceil].
    return u1 <= u_ceil && u1 + remaining >= u_floor;
  }
};

// ---------------------------------------------------------------------------
// Scalar reference kernel: the original byte-array walker. Retained
// verbatim as the differential-testing baseline and the multigraph path
// (it counts parallel edges with multiplicity through the CSR rows).
// ---------------------------------------------------------------------------

struct ScalarSearcher {
  const Graph& g;
  const BranchBoundOptions& opts;

  NodeId n;
  std::vector<NodeId> order;         // assignment order (BFS)
  std::vector<std::uint8_t> state;   // 0, 1, or kUnassigned
  std::vector<std::uint32_t> a[2];   // assigned-neighbor counts per side
  SubsetState sub;

  std::size_t cap_side;  // max nodes per side (bisection mode)
  std::size_t cnt[2] = {0, 0};
  std::size_t cur_cut = 0;
  std::size_t sum_min = 0;  // sum over unassigned v of min(a0, a1)

  std::size_t best_cap = kNoCapacity;
  std::vector<std::uint8_t> best_sides;
  bool have_best = false;

  std::uint64_t visited = 0;
  bool aborted = false;

  explicit ScalarSearcher(const Graph& graph, const BranchBoundOptions& o)
      : g(graph),
        opts(o),
        n(graph.num_nodes()),
        order(bfs_assignment_order(graph)),
        sub(graph, o) {
    state.assign(n, kUnassigned);
    a[0].assign(n, 0);
    a[1].assign(n, 0);
    cap_side = (static_cast<std::size_t>(n) + 1) / 2;
  }

  [[nodiscard]] std::size_t prune_threshold() const {
    std::size_t t;
    if (have_best) {
      t = best_cap;
    } else {
      t = opts.initial_bound == kNoCapacity ? kNoCapacity
                                            : opts.initial_bound + 1;
    }
    if (opts.live_bound != nullptr) {
      // A bisection of this capacity already exists elsewhere; only
      // strictly better solutions are worth visiting.
      t = std::min(t, opts.live_bound->load(std::memory_order_relaxed));
    }
    return t;
  }

  [[nodiscard]] bool side_feasible(int s) const {
    if (!sub.subset_mode) return cnt[s] < cap_side;
    return true;  // subset mode has no overall balance constraint
  }

  void assign(NodeId v, int s) {
    state[v] = static_cast<std::uint8_t>(s);
    ++cnt[s];
    cur_cut += a[1 - s][v];
    sum_min -= std::min(a[0][v], a[1][v]);
    if (sub.in_subset[v]) {
      ++sub.u_assigned;
      if (s == 1) ++sub.u1;
    }
    for (const NodeId w : g.neighbors(v)) {
      if (state[w] == kUnassigned) {
        const std::uint32_t old_min = std::min(a[0][w], a[1][w]);
        ++a[s][w];
        sum_min += std::min(a[0][w], a[1][w]) - old_min;  // grows or stays
      }
    }
  }

  void unassign(NodeId v, int s) {
    for (const NodeId w : g.neighbors(v)) {
      if (state[w] == kUnassigned) {
        const std::uint32_t old_min = std::min(a[0][w], a[1][w]);
        --a[s][w];
        sum_min -= old_min - std::min(a[0][w], a[1][w]);  // shrinks or stays
      }
    }
    if (sub.in_subset[v]) {
      --sub.u_assigned;
      if (s == 1) --sub.u1;
    }
    sum_min += std::min(a[0][v], a[1][v]);
    cur_cut -= a[1 - s][v];
    --cnt[s];
    state[v] = kUnassigned;
  }

  void dfs(NodeId depth) {
    if (aborted) return;
    ++visited;
    if (opts.node_limit != 0 && visited > opts.node_limit) {
      aborted = true;
      return;
    }
    // Poll cancellation at an amortized cadence: the flag is a relaxed
    // atomic (and possibly a clock read), so checking every node would
    // dominate the cheap bound arithmetic.
    if ((visited & 0xfffu) == 0) {
      if (opts.progress != nullptr) {
        opts.progress->store(visited, std::memory_order_relaxed);
      }
      if (opts.cancel != nullptr && opts.cancel->stop_requested()) {
        aborted = true;
        return;
      }
    }
    if (cur_cut + sum_min >= prune_threshold()) return;
    if (depth == n) {
      // Constraints were enforced along the path.
      BFLY_ASSERT_MSG(!have_best || cur_cut < best_cap,
                      "incumbent capacity must decrease monotonically");
      BFLY_ASSERT_MSG(sub.subset_mode ||
                          (cnt[0] <= cap_side && cnt[1] <= cap_side),
                      "leaf assignment violates the balance constraint");
      BFLY_ASSERT_MSG(!sub.subset_mode ||
                          (sub.u1 >= sub.u_floor && sub.u1 <= sub.u_ceil),
                      "leaf assignment violates the subset constraint");
      best_cap = cur_cut;
      best_sides = state;
      have_best = true;
      return;
    }
    const NodeId v = order[depth];
    // Try the side with more assigned neighbors first (smaller immediate
    // cut growth). Fix order[0] to side 0 (complement symmetry).
    int first = a[0][v] >= a[1][v] ? 0 : 1;
    const int sides_to_try = depth == 0 ? 1 : 2;
    if (depth == 0) first = 0;
    for (int t = 0; t < sides_to_try; ++t) {
      const int s = t == 0 ? first : 1 - first;
      if (!side_feasible(s)) continue;
      assign(v, s);
      if (sub.feasible()) dfs(depth + 1);
      unassign(v, s);
      if (aborted) return;
    }
  }
};

// ---------------------------------------------------------------------------
// Bitset kernel: word-level side masks over the graph's packed
// adjacency, a fused adj[v] & unassigned sweep in assign/unassign, an
// assignment-count lower bound on the unassigned remainder, and direct
// closure of forced subtrees. One instance per worker; workers share
// the incumbent and the pooled node budget through SearchShared.
// ---------------------------------------------------------------------------

// State shared by every worker of one (possibly parallel) search.
struct SearchShared {
  SharedIncumbent incumbent;
  std::atomic<std::uint64_t> pooled_visited{0};
  std::atomic<bool> aborted{false};
};

struct BitsetSearcher {
  const Graph& g;
  const BranchBoundOptions& opts;
  const std::vector<NodeId>& order;
  SearchShared& shared;

  NodeId n;
  const std::vector<Bitset64>& adj;  // packed rows, cached on the graph
  std::vector<std::uint8_t> state;   // 0, 1, or kUnassigned
  std::vector<std::uint32_t> a[2];   // assigned-neighbor counts per side
  Bitset64 mask[2];                  // nodes on each side
  Bitset64 unassigned;               // complement of mask[0] | mask[1]
  SubsetState sub;

  std::size_t cap_side;
  std::size_t cnt[2] = {0, 0};
  std::size_t cur_cut = 0;
  std::size_t sum_min = 0;  // sum over unassigned v of min(a0, a1)

  // Scratch for the assignment-count bound: nodes bucketed by how much
  // their worse side costs over their better one (1..max_degree).
  std::vector<std::uint32_t> diff_bucket[2];

  std::uint64_t visited = 0;        // local count, flushed to the pool
  std::uint64_t last_flushed = 0;   // portion already in pooled_visited
  std::uint64_t pool_at_flush = 0;  // pooled total seen at the last flush
  bool aborted = false;

  BitsetSearcher(const Graph& graph, const BranchBoundOptions& o,
                 const std::vector<NodeId>& ord, SearchShared& sh)
      : g(graph),
        opts(o),
        order(ord),
        shared(sh),
        n(graph.num_nodes()),
        adj(graph.adjacency_bitsets()),
        sub(graph, o) {
    state.assign(n, kUnassigned);
    a[0].assign(n, 0);
    a[1].assign(n, 0);
    mask[0] = Bitset64(n);
    mask[1] = Bitset64(n);
    unassigned = Bitset64(n);
    unassigned.set_all();
    cap_side = (static_cast<std::size_t>(n) + 1) / 2;
    diff_bucket[0].assign(g.max_degree() + 1, 0);
    diff_bucket[1].assign(g.max_degree() + 1, 0);
  }

  [[nodiscard]] std::size_t prune_threshold() const {
    // The shared incumbent is every worker's "best so far": local finds
    // are published immediately, so reading the cell back subsumes the
    // serial kernel's have_best/best_cap bookkeeping.
    std::size_t t = shared.incumbent.capacity();  // kUnset == SIZE_MAX
    if (opts.initial_bound != kNoCapacity) {
      t = std::min(t, opts.initial_bound + 1);
    }
    if (opts.live_bound != nullptr) {
      t = std::min(t, opts.live_bound->load(std::memory_order_relaxed));
    }
    return t;
  }

  [[nodiscard]] bool side_feasible(int s) const {
    if (!sub.subset_mode) return cnt[s] < cap_side;
    return true;
  }

  void assign(NodeId v, int s) {
    BFLY_ASSERT_MSG(a[1 - s][v] == adj[v].and_count(mask[1 - s]),
                    "scalar neighbor counts drifted from the side masks");
    state[v] = static_cast<std::uint8_t>(s);
    ++cnt[s];
    cur_cut += a[1 - s][v];
    sum_min -= std::min(a[0][v], a[1][v]);
    if (sub.in_subset[v]) {
      ++sub.u_assigned;
      if (s == 1) ++sub.u1;
    }
    mask[s].set(v);
    unassigned.reset(v);
    // Fused word sweep over the still-unassigned neighbors of v: one AND
    // per word replaces the per-neighbor state[w] == kUnassigned branch.
    const auto avw = adj[v].words();
    const auto uw = unassigned.words();
    for (std::size_t wi = 0; wi < avw.size(); ++wi) {
      std::uint64_t m = avw[wi] & uw[wi];
      while (m != 0) {
        const NodeId w = static_cast<NodeId>(
            wi * 64 + static_cast<std::size_t>(std::countr_zero(m)));
        m &= m - 1;
        const std::uint32_t old_min = std::min(a[0][w], a[1][w]);
        ++a[s][w];
        sum_min += std::min(a[0][w], a[1][w]) - old_min;  // grows or stays
      }
    }
  }

  void unassign(NodeId v, int s) {
    const auto avw = adj[v].words();
    const auto uw = unassigned.words();
    for (std::size_t wi = 0; wi < avw.size(); ++wi) {
      std::uint64_t m = avw[wi] & uw[wi];
      while (m != 0) {
        const NodeId w = static_cast<NodeId>(
            wi * 64 + static_cast<std::size_t>(std::countr_zero(m)));
        m &= m - 1;
        const std::uint32_t old_min = std::min(a[0][w], a[1][w]);
        --a[s][w];
        sum_min -= old_min - std::min(a[0][w], a[1][w]);  // shrinks or stays
      }
    }
    unassigned.set(v);
    mask[s].reset(v);
    if (sub.in_subset[v]) {
      --sub.u_assigned;
      if (s == 1) --sub.u1;
    }
    sum_min += std::min(a[0][v], a[1][v]);
    cur_cut -= a[1 - s][v];
    --cnt[s];
    state[v] = kUnassigned;
  }

  // Pool the local node count and poll every stop source. Called at an
  // amortized cadence from dfs and once at the end of a worker's run.
  void flush_and_poll() {
    // Simulated crash-at-node-N: models the process dying mid-search,
    // leaving whatever the checkpoint sink last wrote as the only
    // surviving state. No-op outside fault-injection builds.
    BFLY_FAULT_POINT(kCrash);
    shared.pooled_visited.fetch_add(visited - last_flushed,
                                    std::memory_order_relaxed);
    last_flushed = visited;
    pool_at_flush = shared.pooled_visited.load(std::memory_order_relaxed);
    if (opts.progress != nullptr) {
      opts.progress->store(pool_at_flush, std::memory_order_relaxed);
    }
    if (shared.aborted.load(std::memory_order_relaxed)) {
      aborted = true;
      return;
    }
    if (opts.cancel != nullptr && opts.cancel->stop_requested()) {
      abort_search();
    }
  }

  // Pooled node count as of the last flush plus everything visited here
  // since: exact when running serially, accurate to one flush interval
  // per peer worker when parallel.
  [[nodiscard]] std::uint64_t budget_estimate() const {
    return pool_at_flush + (visited - last_flushed);
  }

  void abort_search() {
    aborted = true;
    shared.aborted.store(true, std::memory_order_relaxed);
  }

  void record_solution(std::size_t capacity,
                       const std::vector<std::uint8_t>& sides) {
    // publish() only accepts strict improvements under its mutex, so
    // racing workers cannot regress the incumbent.
    shared.incumbent.publish(capacity, sides);
  }

  // Assignment-count ("fractional degree") bound on the unassigned
  // remainder: the balance constraint forces between xlo and xhi of the
  // remaining nodes onto side 0. sum_min already charges every
  // unassigned node its cheaper side; any node pushed off its preferred
  // side additionally pays |a0 - a1|. Bucketing those differences by
  // value (bounded by max_degree) makes "sum of the smallest k
  // differences" a walk over at most max_degree counters.
  [[nodiscard]] std::size_t remainder_penalty(std::size_t r,
                                              std::size_t room0,
                                              std::size_t room1) {
    const std::size_t xhi = std::min(r, room0);
    const std::size_t xlo = r > room1 ? r - room1 : 0;
    std::fill(diff_bucket[0].begin(), diff_bucket[0].end(), 0u);
    std::fill(diff_bucket[1].begin(), diff_bucket[1].end(), 0u);
    std::size_t p0 = 0, p1 = 0;  // nodes strictly preferring side 0 / 1
    unassigned.for_each_set([&](std::size_t w) {
      const std::uint32_t a0 = a[0][w], a1 = a[1][w];
      if (a0 > a1) {  // placing w on side 0 costs a1 (its cheaper side)
        ++p0;
        ++diff_bucket[0][a0 - a1];
      } else if (a1 > a0) {
        ++p1;
        ++diff_bucket[1][a1 - a0];
      }
    });
    const std::size_t ties = r - p0 - p1;
    std::size_t forced = 0;
    const std::vector<std::uint32_t>* bucket = nullptr;
    if (xhi < p0) {  // too many want side 0: some pay to move to side 1
      forced = p0 - xhi;
      bucket = &diff_bucket[0];
    } else if (xlo > p0 + ties) {  // side 0 must absorb side-1 preferrers
      forced = xlo - p0 - ties;
      bucket = &diff_bucket[1];
    }
    if (forced == 0) return 0;
    std::size_t penalty = 0;
    for (std::size_t d = 1; d < bucket->size() && forced > 0; ++d) {
      const std::size_t take = std::min<std::size_t>((*bucket)[d], forced);
      penalty += take * d;
      forced -= take;
    }
    BFLY_ASSERT_MSG(forced == 0,
                    "assignment-count bound ran out of bucketed nodes");
    return penalty;
  }

  // Both sides' remaining room forces every unassigned node onto side s:
  // the completion cost is exact, so close the subtree in O(remaining).
  void forced_completion(int s, std::size_t thr) {
    std::size_t total = cur_cut;
    unassigned.for_each_set([&](std::size_t w) {
      // Edges between two unassigned nodes stay internal to side s; only
      // edges to the other, already-assigned side cross.
      total += a[1 - s][w];
    });
    if (total >= thr) return;
    std::vector<std::uint8_t> sides = state;
    unassigned.for_each_set(
        [&](std::size_t w) { sides[w] = static_cast<std::uint8_t>(s); });
    record_solution(total, sides);
  }

  // Dynamic branching order: descend on the most constrained unassigned
  // node — largest side-count difference (its bad branch is the
  // likeliest to prune), then most assigned neighbors, then highest
  // degree, then lowest id (determinism). Word-level scan over the
  // unassigned mask. Unlike the scalar kernel's static BFS order, this
  // re-ranks after every assignment; it is the main tree-size lever of
  // the bitset kernel.
  [[nodiscard]] NodeId select_next() const {
    NodeId best = 0;
    std::uint64_t best_key = 0;
    bool found = false;
    unassigned.for_each_set([&](std::size_t w) {
      const std::uint32_t a0 = a[0][w], a1 = a[1][w];
      const std::uint32_t diff = a0 > a1 ? a0 - a1 : a1 - a0;
      const std::uint64_t key = (static_cast<std::uint64_t>(diff) << 42) |
                                (static_cast<std::uint64_t>(a0 + a1) << 21) |
                                static_cast<std::uint64_t>(g.degree(w));
      if (!found || key > best_key) {
        found = true;
        best_key = key;
        best = static_cast<NodeId>(w);
      }
    });
    BFLY_ASSERT(found);
    return best;
  }

  void dfs(NodeId num_assigned) {
    if (aborted) return;
    ++visited;
    if (opts.node_limit != 0 && budget_estimate() > opts.node_limit) {
      abort_search();
      return;
    }
    if ((visited & 0xfffu) == 0) {
      flush_and_poll();
      if (aborted) return;
    }
    const std::size_t thr = prune_threshold();
    if (cur_cut + sum_min >= thr) return;
    if (num_assigned == n) {
      BFLY_ASSERT_MSG(sub.subset_mode ||
                          (cnt[0] <= cap_side && cnt[1] <= cap_side),
                      "leaf assignment violates the balance constraint");
      BFLY_ASSERT_MSG(!sub.subset_mode ||
                          (sub.u1 >= sub.u_floor && sub.u1 <= sub.u_ceil),
                      "leaf assignment violates the subset constraint");
      record_solution(cur_cut, state);
      return;
    }
    if (!sub.subset_mode) {
      const std::size_t r = n - num_assigned;
      const std::size_t room0 = cap_side - cnt[0];
      const std::size_t room1 = cap_side - cnt[1];
      if (room0 == 0 || room1 == 0) {
        // One side is full: the rest of the assignment is forced.
        forced_completion(room0 == 0 ? 1 : 0, thr);
        return;
      }
      if ((room0 < r || room1 < r) &&
          cur_cut + sum_min + remainder_penalty(r, room0, room1) >= thr) {
        return;
      }
    }
    const NodeId v = select_next();
    int first = a[0][v] >= a[1][v] ? 0 : 1;
    // The very first assigned node can be pinned to side 0 (complement
    // symmetry) no matter which node the dynamic order picked.
    const int sides_to_try = num_assigned == 0 ? 1 : 2;
    if (num_assigned == 0) first = 0;
    for (int t = 0; t < sides_to_try; ++t) {
      const int s = t == 0 ? first : 1 - first;
      if (!side_feasible(s)) continue;
      assign(v, s);
      if (sub.feasible()) dfs(num_assigned + 1);
      unassign(v, s);
      if (aborted) return;
    }
  }
};

// Enumerates every feasible assignment of order[0..depth) as a side
// vector, mirroring the dfs constraints (order[0] pinned to side 0, per-
// side caps, partial subset feasibility) so the seeds exactly partition
// the serial search tree at that depth. Grows the depth until there are
// target_seeds seeds or max_depth is reached.
std::vector<std::vector<std::uint8_t>> enumerate_seed_prefixes(
    const Graph& g, const BranchBoundOptions& opts,
    const std::vector<NodeId>& order, std::size_t target_seeds,
    unsigned max_depth) {
  const NodeId n = g.num_nodes();
  const std::size_t cap_side = (static_cast<std::size_t>(n) + 1) / 2;
  SubsetState sub(g, opts);

  std::vector<std::vector<std::uint8_t>> cur;
  cur.emplace_back();  // the empty prefix
  for (unsigned depth = 0; depth < max_depth && cur.size() < target_seeds;
       ++depth) {
    const NodeId v = order[depth];
    std::vector<std::vector<std::uint8_t>> next;
    next.reserve(cur.size() * 2);
    for (const auto& p : cur) {
      std::size_t cnt[2] = {0, 0};
      std::size_t u1 = 0, u_assigned = 0;
      for (unsigned i = 0; i < depth; ++i) {
        ++cnt[p[i]];
        if (sub.in_subset[order[i]]) {
          ++u_assigned;
          if (p[i] == 1) ++u1;
        }
      }
      for (int s = 0; s < 2; ++s) {
        if (depth == 0 && s == 1) continue;  // complement symmetry
        if (!sub.subset_mode && cnt[s] >= cap_side) continue;
        if (sub.subset_mode && sub.in_subset[v]) {
          const std::size_t new_u1 = u1 + (s == 1 ? 1 : 0);
          const std::size_t rem = sub.u_total - (u_assigned + 1);
          if (new_u1 > sub.u_ceil || new_u1 + rem < sub.u_floor) continue;
        }
        auto q = p;
        q.push_back(static_cast<std::uint8_t>(s));
        next.push_back(std::move(q));
      }
    }
    cur.swap(next);
  }
  return cur;
}

struct BitsetRunOutcome {
  std::size_t capacity = kNoCapacity;
  std::vector<std::uint8_t> sides;
  bool aborted = false;
  std::uint64_t visited = 0;
};

BitsetRunOutcome run_bitset_search(const Graph& g,
                                   const BranchBoundOptions& opts,
                                   unsigned threads) {
  const std::vector<NodeId> order = bfs_assignment_order(g);
  SearchShared shared;
  BitsetRunOutcome out;
  // Checkpointing (either direction) forces the seed-prefix driver even
  // for serial runs: the prefix subtree is the unit of resume, so the
  // interrupted run and its continuation partition the tree identically.
  const bool checkpointing =
      opts.on_checkpoint != nullptr || opts.resume != nullptr;

  if (opts.resume != nullptr) {
    // Restore the interrupted run's incumbent and node count before any
    // worker starts, so the resumed search prunes (and reports) exactly
    // as if it had never stopped.
    const BranchBoundSearchState& rs = *opts.resume;
    shared.pooled_visited.store(rs.nodes_spent, std::memory_order_relaxed);
    if (rs.incumbent_capacity != kNoCapacity) {
      BFLY_CHECK(rs.incumbent_sides.size() == g.num_nodes(),
                 "resume incumbent does not match the graph");
      shared.incumbent.publish(rs.incumbent_capacity, rs.incumbent_sides);
    }
  }

  if (!checkpointing && (threads <= 1 || g.num_nodes() < 16)) {
    // Tiny instances gain nothing from seeding overhead; a serial run is
    // also the fully deterministic reference (witness included).
    BitsetSearcher s(g, opts, order, shared);
    s.dfs(0);
    s.flush_and_poll();
    BFLY_ASSERT_MSG(s.aborted || (s.cnt[0] == 0 && s.cnt[1] == 0 &&
                                  s.cur_cut == 0 && s.sum_min == 0 &&
                                  s.sub.u_assigned == 0 &&
                                  s.unassigned.count() == s.n),
                    "search bookkeeping did not unwind cleanly");
  } else {
    unsigned max_depth;
    std::size_t target;
    if (opts.resume != nullptr) {
      // Re-enumerate at exactly the depth of the interrupted run so the
      // completion flags line up index-for-index.
      max_depth = std::min<unsigned>(opts.resume->seed_depth, g.num_nodes());
      target = std::size_t{1} << 30;
    } else if (opts.seed_depth != 0) {
      max_depth = std::min<unsigned>(opts.seed_depth, g.num_nodes());
      target = std::size_t{1} << 30;  // honor exact depth
    } else {
      max_depth = std::min<unsigned>(12u, g.num_nodes());
      // Checkpointed runs want enough prefixes for a useful resume grain
      // even when serial; plain parallel runs just want to feed workers.
      target = checkpointing
                   ? std::max<std::size_t>(
                         32, static_cast<std::size_t>(threads) * 8)
                   : static_cast<std::size_t>(threads) * 8;
    }
    const auto prefixes =
        enumerate_seed_prefixes(g, opts, order, target, max_depth);
    const unsigned depth_used =
        prefixes.empty() ? 0 : static_cast<unsigned>(prefixes[0].size());

    if (!checkpointing) {
      TaskGroup group(threads);
      for (const auto& prefix : prefixes) {
        group.add([&g, &opts, &order, &shared, &prefix] {
          BitsetSearcher s(g, opts, order, shared);
          for (std::size_t i = 0; i < prefix.size(); ++i) {
            s.assign(order[i], prefix[i]);
          }
          // The prefix was enumerated under the same feasibility rules
          // dfs enforces, so descending from its depth is sound.
          if (s.sub.feasible()) s.dfs(static_cast<NodeId>(prefix.size()));
          s.flush_and_poll();
        });
      }
      group.wait();
    } else {
      std::vector<std::uint8_t> done(prefixes.size(), 0);
      if (opts.resume != nullptr) {
        BFLY_CHECK(opts.resume->prefix_done.size() == prefixes.size(),
                   "resume state does not match the prefix enumeration "
                   "(different graph, subset, or seed depth?)");
        done = opts.resume->prefix_done;
      }
      std::mutex chk_mutex;  // serializes done[] updates + the sink
      auto run_prefix = [&](std::size_t pi) {
        if (shared.aborted.load(std::memory_order_relaxed)) return;
        // Crash point between subtrees: everything before the last
        // checkpoint survives, the in-flight subtree re-runs on resume.
        BFLY_FAULT_POINT(kCrash);
        BitsetSearcher s(g, opts, order, shared);
        for (std::size_t i = 0; i < prefixes[pi].size(); ++i) {
          s.assign(order[i], prefixes[pi][i]);
        }
        if (s.sub.feasible()) s.dfs(static_cast<NodeId>(prefixes[pi].size()));
        s.flush_and_poll();
        if (s.aborted || shared.aborted.load(std::memory_order_relaxed)) {
          return;  // cut short — the subtree is NOT complete
        }
        const std::lock_guard<std::mutex> lock(chk_mutex);
        done[pi] = 1;
        if (opts.on_checkpoint) {
          BranchBoundSearchState st;
          st.seed_depth = depth_used;
          st.prefix_done = done;
          st.incumbent_capacity = shared.incumbent.capacity();
          if (st.incumbent_capacity != SharedIncumbent::kUnset) {
            st.incumbent_sides = shared.incumbent.sides();
          }
          // Serial runs record exactly the completed subtrees' nodes;
          // parallel runs may include partial counts flushed by peers
          // (telemetry only — never affects the proved capacity).
          st.nodes_spent =
              shared.pooled_visited.load(std::memory_order_relaxed);
          opts.on_checkpoint(st);
        }
      };
      if (threads <= 1) {
        // Serial: a thrown SimulatedCrash (or real bad_alloc) abandons
        // the remaining prefixes immediately, like a dying process.
        for (std::size_t pi = 0; pi < prefixes.size(); ++pi) {
          if (!done[pi]) run_prefix(pi);
        }
      } else {
        TaskGroup group(threads);
        for (std::size_t pi = 0; pi < prefixes.size(); ++pi) {
          if (!done[pi]) {
            group.add([&run_prefix, pi] { run_prefix(pi); });
          }
        }
        group.wait();
      }
    }
  }

  out.capacity = shared.incumbent.capacity();
  if (out.capacity != SharedIncumbent::kUnset) {
    out.sides = shared.incumbent.sides();
  }
  out.aborted = shared.aborted.load(std::memory_order_relaxed);
  out.visited = shared.pooled_visited.load(std::memory_order_relaxed);
  return out;
}

}  // namespace

CutResult min_bisection_branch_bound(const Graph& g,
                                     const BranchBoundOptions& opts) {
  BFLY_CHECK(g.num_nodes() >= 2, "bisection needs at least two nodes");
  // Allocation-failure fault point: the solver's up-front working-set
  // allocations (order, bitsets, seeds) are modeled as failing here.
  BFLY_FAULT_POINT(kAlloc);
  const bool packed_faithful = !g.has_parallel_edges();
  BranchBoundKernel kernel = opts.kernel;
  if (kernel == BranchBoundKernel::kAuto) {
    kernel = packed_faithful ? BranchBoundKernel::kBitset
                             : BranchBoundKernel::kScalar;
  } else if (kernel == BranchBoundKernel::kBitset) {
    BFLY_CHECK(packed_faithful,
               "bitset branch-and-bound kernel requires a simple graph "
               "(parallel edges collapse in the packed adjacency)");
  }

  CutResult res;
  if (kernel == BranchBoundKernel::kScalar) {
    ScalarSearcher s(g, opts);
    s.dfs(0);
    // A completed search must have unwound its incremental bookkeeping
    // back to the empty assignment; anything else means assign/unassign
    // drifted.
    BFLY_ASSERT_MSG(s.aborted || (s.cnt[0] == 0 && s.cnt[1] == 0 &&
                                  s.cur_cut == 0 && s.sum_min == 0 &&
                                  s.sub.u_assigned == 0),
                    "search bookkeeping did not unwind cleanly");
    res.method = opts.bisect_subset.empty() ? "branch-and-bound"
                                            : "branch-and-bound-subset";
    res.nodes_visited = s.visited;
    if (s.have_best) {
      res.capacity = s.best_cap;
      res.sides = std::move(s.best_sides);
    } else {
      res.capacity = kNoCapacity;
    }
    res.exactness = s.aborted ? Exactness::kHeuristic : Exactness::kExact;
  } else {
    const unsigned threads =
        opts.num_threads == 0 ? default_thread_count() : opts.num_threads;
    BitsetRunOutcome out = run_bitset_search(g, opts, threads);
    res.method = opts.bisect_subset.empty() ? "branch-and-bound-bitset"
                                            : "branch-and-bound-bitset-subset";
    res.nodes_visited = out.visited;
    res.capacity = out.capacity;
    res.sides = std::move(out.sides);
    res.exactness = out.aborted ? Exactness::kHeuristic : Exactness::kExact;
  }

  if (!res.sides.empty() && checked_build()) {
    validate_cut(g, res, /*require_bisection=*/opts.bisect_subset.empty());
    BFLY_ASSERT(opts.bisect_subset.empty() ||
                bisects_subset(res.sides, opts.bisect_subset));
  }
  return res;
}

}  // namespace bfly::cut
