#include "cut/branch_bound.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <limits>
#include <optional>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/bitset64.hpp"
#include "core/error.hpp"
#include "core/sharding.hpp"
#include "core/simd.hpp"
#include "core/sync.hpp"
#include "cut/incumbent.hpp"
#include "cut/transposition.hpp"
#include "robust/fault_injection.hpp"

namespace bfly::cut {

namespace {

constexpr std::uint8_t kUnassigned = 2;
constexpr std::size_t kNoCapacity = std::numeric_limits<std::size_t>::max();

// BFS assignment order (per component) so the frontier — and hence the
// cut — grows early, tightening the bound. Both kernels share it, and
// the parallel driver enumerates its seed prefixes over the same order,
// so a worker's subtree is exactly the serial subtree under its prefix.
std::vector<NodeId> bfs_assignment_order(const Graph& g) {
  const NodeId n = g.num_nodes();
  std::vector<std::uint8_t> seen(n, 0);
  std::vector<NodeId> order;
  order.reserve(n);
  for (NodeId root = 0; root < n; ++root) {
    if (seen[root]) continue;
    seen[root] = 1;
    std::size_t head = order.size();
    order.push_back(root);
    while (head < order.size()) {
      const NodeId u = order[head++];
      for (const NodeId w : g.neighbors(u)) {
        if (!seen[w]) {
          seen[w] = 1;
          order.push_back(w);
        }
      }
    }
  }
  return order;
}

// Subset-bisection bookkeeping shared by both kernels.
struct SubsetState {
  std::vector<std::uint8_t> in_subset;
  bool subset_mode = false;
  std::size_t u_total = 0;
  std::size_t u_floor = 0, u_ceil = 0;
  std::size_t u1 = 0;          // subset nodes currently on side 1
  std::size_t u_assigned = 0;  // subset nodes assigned so far

  SubsetState(const Graph& g, const BranchBoundOptions& opts)
      : in_subset(g.num_nodes(), 0) {
    if (opts.bisect_subset.empty()) return;
    subset_mode = true;
    for (const NodeId v : opts.bisect_subset) {
      BFLY_CHECK(v < g.num_nodes(), "subset node out of range");
      in_subset[v] = 1;
    }
    u_total = opts.bisect_subset.size();
    u_floor = u_total / 2;
    u_ceil = (u_total + 1) / 2;
  }

  [[nodiscard]] bool feasible() const {
    if (!subset_mode) return true;
    const std::size_t remaining = u_total - u_assigned;
    // Final u1 must land in [u_floor, u_ceil].
    return u1 <= u_ceil && u1 + remaining >= u_floor;
  }
};

// ---------------------------------------------------------------------------
// Canonical keys for the shared transposition table
// (cut/transposition.hpp). Symmetry pruning is restricted to n <= 64 so
// a search state's side masks fit one word each; the scalar kernel and
// subset mode never use it.
// ---------------------------------------------------------------------------

// Lexicographically smallest image of the (side-0, side-1) mask pair
// over every enumerated group element, composed with the global side
// swap. States with equal canonical pairs are connected by an
// automorphism (possibly plus a side exchange), so they have identical
// current cut, identical bound terms, and completion sets in a
// cut-preserving bijection. Keys are the exact 128-bit canonical pair —
// a table hit can never be a false positive.
std::pair<std::uint64_t, std::uint64_t> canonical_mask_pair(
    std::uint64_t m0, std::uint64_t m1,
    const std::vector<algo::Perm>& elements) {
  std::uint64_t b0 = ~std::uint64_t{0};
  std::uint64_t b1 = ~std::uint64_t{0};
  for (const algo::Perm& p : elements) {
    const std::uint64_t s0 = algo::apply_to_mask(p, m0);
    const std::uint64_t s1 = algo::apply_to_mask(p, m1);
    if (s0 < b0 || (s0 == b0 && s1 < b1)) {
      b0 = s0;
      b1 = s1;
    }
    if (s1 < b0 || (s1 == b0 && s0 < b1)) {
      b0 = s1;
      b1 = s0;
    }
  }
  return {b0, b1};
}

// ---------------------------------------------------------------------------
// Scalar reference kernel: the original byte-array walker. Retained
// verbatim as the differential-testing baseline and the multigraph path
// (it counts parallel edges with multiplicity through the CSR rows).
// ---------------------------------------------------------------------------

struct ScalarSearcher {
  const Graph& g;
  const BranchBoundOptions& opts;

  NodeId n;
  std::vector<NodeId> order;         // assignment order (BFS)
  std::vector<std::uint8_t> state;   // 0, 1, or kUnassigned
  std::vector<std::uint32_t> a[2];   // assigned-neighbor counts per side
  SubsetState sub;

  std::size_t cap_side;  // max nodes per side (bisection mode)
  std::size_t cnt[2] = {0, 0};
  std::size_t cur_cut = 0;
  std::size_t sum_min = 0;  // sum over unassigned v of min(a0, a1)

  std::size_t best_cap = kNoCapacity;
  std::vector<std::uint8_t> best_sides;
  bool have_best = false;

  std::uint64_t visited = 0;
  bool aborted = false;

  explicit ScalarSearcher(const Graph& graph, const BranchBoundOptions& o)
      : g(graph),
        opts(o),
        n(graph.num_nodes()),
        order(bfs_assignment_order(graph)),
        sub(graph, o) {
    state.assign(n, kUnassigned);
    a[0].assign(n, 0);
    a[1].assign(n, 0);
    cap_side = (static_cast<std::size_t>(n) + 1) / 2;
  }

  [[nodiscard]] std::size_t prune_threshold() const {
    std::size_t t;
    if (have_best) {
      t = best_cap;
    } else {
      t = opts.initial_bound == kNoCapacity ? kNoCapacity
                                            : opts.initial_bound + 1;
    }
    if (opts.live_bound != nullptr) {
      // A bisection of this capacity already exists elsewhere; only
      // strictly better solutions are worth visiting.
      t = std::min(t, opts.live_bound->load(std::memory_order_relaxed));
    }
    return t;
  }

  [[nodiscard]] bool side_feasible(int s) const {
    if (!sub.subset_mode) return cnt[s] < cap_side;
    return true;  // subset mode has no overall balance constraint
  }

  void assign(NodeId v, int s) {
    state[v] = static_cast<std::uint8_t>(s);
    ++cnt[s];
    cur_cut += a[1 - s][v];
    sum_min -= std::min(a[0][v], a[1][v]);
    if (sub.in_subset[v]) {
      ++sub.u_assigned;
      if (s == 1) ++sub.u1;
    }
    for (const NodeId w : g.neighbors(v)) {
      if (state[w] == kUnassigned) {
        const std::uint32_t old_min = std::min(a[0][w], a[1][w]);
        ++a[s][w];
        sum_min += std::min(a[0][w], a[1][w]) - old_min;  // grows or stays
      }
    }
  }

  void unassign(NodeId v, int s) {
    for (const NodeId w : g.neighbors(v)) {
      if (state[w] == kUnassigned) {
        const std::uint32_t old_min = std::min(a[0][w], a[1][w]);
        --a[s][w];
        sum_min -= old_min - std::min(a[0][w], a[1][w]);  // shrinks or stays
      }
    }
    if (sub.in_subset[v]) {
      --sub.u_assigned;
      if (s == 1) --sub.u1;
    }
    sum_min += std::min(a[0][v], a[1][v]);
    cur_cut -= a[1 - s][v];
    --cnt[s];
    state[v] = kUnassigned;
  }

  void dfs(NodeId depth) {
    if (aborted) return;
    ++visited;
    if (opts.node_limit != 0 && visited > opts.node_limit) {
      aborted = true;
      return;
    }
    // Poll cancellation at an amortized cadence: the flag is a relaxed
    // atomic (and possibly a clock read), so checking every node would
    // dominate the cheap bound arithmetic.
    if ((visited & 0xfffu) == 0) {
      if (opts.progress != nullptr) {
        opts.progress->store(visited, std::memory_order_relaxed);
      }
      if (opts.cancel != nullptr && opts.cancel->stop_requested()) {
        aborted = true;
        return;
      }
    }
    if (cur_cut + sum_min >= prune_threshold()) return;
    if (depth == n) {
      // Constraints were enforced along the path.
      BFLY_ASSERT_MSG(!have_best || cur_cut < best_cap,
                      "incumbent capacity must decrease monotonically");
      BFLY_ASSERT_MSG(sub.subset_mode ||
                          (cnt[0] <= cap_side && cnt[1] <= cap_side),
                      "leaf assignment violates the balance constraint");
      BFLY_ASSERT_MSG(!sub.subset_mode ||
                          (sub.u1 >= sub.u_floor && sub.u1 <= sub.u_ceil),
                      "leaf assignment violates the subset constraint");
      best_cap = cur_cut;
      best_sides = state;
      have_best = true;
      return;
    }
    const NodeId v = order[depth];
    // Try the side with more assigned neighbors first (smaller immediate
    // cut growth). Fix order[0] to side 0 (complement symmetry).
    int first = a[0][v] >= a[1][v] ? 0 : 1;
    const int sides_to_try = depth == 0 ? 1 : 2;
    if (depth == 0) first = 0;
    for (int t = 0; t < sides_to_try; ++t) {
      const int s = t == 0 ? first : 1 - first;
      if (!side_feasible(s)) continue;
      assign(v, s);
      if (sub.feasible()) dfs(depth + 1);
      unassign(v, s);
      if (aborted) return;
    }
  }
};

// ---------------------------------------------------------------------------
// Bitset kernel: word-level side masks over the graph's packed
// adjacency, a fused adj[v] & unassigned sweep in assign/unassign, an
// assignment-count lower bound on the unassigned remainder, and direct
// closure of forced subtrees. One instance per worker; workers share
// the incumbent and the pooled node budget through SearchShared.
// ---------------------------------------------------------------------------

// State shared by every worker of one (possibly parallel) search.
struct SearchShared {
  SharedIncumbent incumbent;
  std::atomic<std::uint64_t> pooled_visited{0};
  std::atomic<bool> aborted{false};
  // Symmetry pruning, both null when it is off: the enumerated group
  // elements for canonicalization and the shared transposition table.
  const std::vector<algo::Perm>* sym_elements = nullptr;
  TranspositionTable* tt = nullptr;
};

struct BitsetSearcher {
  const Graph& g;
  const BranchBoundOptions& opts;
  const std::vector<NodeId>& order;
  SearchShared& shared;

  NodeId n;
  const std::vector<Bitset64>& adj;  // packed rows, cached on the graph
  std::vector<std::uint8_t> state;   // 0, 1, or kUnassigned
  std::vector<std::uint32_t> a[2];   // assigned-neighbor counts per side
  std::vector<std::uint32_t> deg_;   // degrees, contiguous for the
                                     // vectorized branching scan
  std::uint32_t max_deg_ = 0;        // bounds every a0/a1/deg entry
  Bitset64 mask[2];                  // nodes on each side
  Bitset64 unassigned;               // complement of mask[0] | mask[1]
  SubsetState sub;

  std::size_t cap_side;
  std::size_t cnt[2] = {0, 0};
  std::size_t cur_cut = 0;
  std::size_t sum_min = 0;  // sum over unassigned v of min(a0, a1)

  // Scratch for the assignment-count bound: nodes bucketed by how much
  // their worse side costs over their better one (1..max_degree).
  std::vector<std::uint32_t> diff_bucket[2];

  std::uint64_t visited = 0;        // local count, flushed to the pool
  std::uint64_t last_flushed = 0;   // portion already in pooled_visited
  std::uint64_t pool_at_flush = 0;  // pooled total seen at the last flush
  bool aborted = false;

  BitsetSearcher(const Graph& graph, const BranchBoundOptions& o,
                 const std::vector<NodeId>& ord, SearchShared& sh)
      : g(graph),
        opts(o),
        order(ord),
        shared(sh),
        n(graph.num_nodes()),
        adj(graph.adjacency_bitsets()),
        sub(graph, o) {
    state.assign(n, kUnassigned);
    a[0].assign(n, 0);
    a[1].assign(n, 0);
    deg_.resize(n);
    for (NodeId v = 0; v < n; ++v) {
      deg_[v] = static_cast<std::uint32_t>(g.degree(v));
    }
    max_deg_ = static_cast<std::uint32_t>(g.max_degree());
    mask[0] = Bitset64(n);
    mask[1] = Bitset64(n);
    unassigned = Bitset64(n);
    unassigned.set_all();
    cap_side = (static_cast<std::size_t>(n) + 1) / 2;
    diff_bucket[0].assign(g.max_degree() + 1, 0);
    diff_bucket[1].assign(g.max_degree() + 1, 0);
  }

  [[nodiscard]] std::size_t prune_threshold() const {
    // The shared incumbent is every worker's "best so far": local finds
    // are published immediately, so reading the cell back subsumes the
    // serial kernel's have_best/best_cap bookkeeping.
    std::size_t t = shared.incumbent.capacity();  // kUnset == SIZE_MAX
    if (opts.initial_bound != kNoCapacity) {
      t = std::min(t, opts.initial_bound + 1);
    }
    if (opts.live_bound != nullptr) {
      t = std::min(t, opts.live_bound->load(std::memory_order_relaxed));
    }
    return t;
  }

  [[nodiscard]] bool side_feasible(int s) const {
    if (!sub.subset_mode) return cnt[s] < cap_side;
    return true;
  }

  void assign(NodeId v, int s) {
    BFLY_ASSERT_MSG(a[1 - s][v] == adj[v].and_count(mask[1 - s]),
                    "scalar neighbor counts drifted from the side masks");
    state[v] = static_cast<std::uint8_t>(s);
    ++cnt[s];
    cur_cut += a[1 - s][v];
    sum_min -= std::min(a[0][v], a[1][v]);
    if (sub.in_subset[v]) {
      ++sub.u_assigned;
      if (s == 1) ++sub.u1;
    }
    mask[s].set(v);
    unassigned.reset(v);
    // Fused word sweep over the still-unassigned neighbors of v: one AND
    // per word replaces the per-neighbor state[w] == kUnassigned branch.
    const auto avw = adj[v].words();
    const auto uw = unassigned.words();
    for (std::size_t wi = 0; wi < avw.size(); ++wi) {
      std::uint64_t m = avw[wi] & uw[wi];
      while (m != 0) {
        const NodeId w = static_cast<NodeId>(
            wi * 64 + static_cast<std::size_t>(std::countr_zero(m)));
        m &= m - 1;
        const std::uint32_t old_min = std::min(a[0][w], a[1][w]);
        ++a[s][w];
        sum_min += std::min(a[0][w], a[1][w]) - old_min;  // grows or stays
      }
    }
  }

  void unassign(NodeId v, int s) {
    const auto avw = adj[v].words();
    const auto uw = unassigned.words();
    for (std::size_t wi = 0; wi < avw.size(); ++wi) {
      std::uint64_t m = avw[wi] & uw[wi];
      while (m != 0) {
        const NodeId w = static_cast<NodeId>(
            wi * 64 + static_cast<std::size_t>(std::countr_zero(m)));
        m &= m - 1;
        const std::uint32_t old_min = std::min(a[0][w], a[1][w]);
        --a[s][w];
        sum_min -= old_min - std::min(a[0][w], a[1][w]);  // shrinks or stays
      }
    }
    unassigned.set(v);
    mask[s].reset(v);
    if (sub.in_subset[v]) {
      --sub.u_assigned;
      if (s == 1) --sub.u1;
    }
    sum_min += std::min(a[0][v], a[1][v]);
    cur_cut -= a[1 - s][v];
    --cnt[s];
    state[v] = kUnassigned;
  }

  // Batched prefix seeding for the sharded drivers: set the masks and
  // per-node state wholesale, then rebuild every derived quantity with
  // one dispatched multi-row and_count pass (a[s][w] = |adj[w] ∩
  // mask[s]| for ALL w at once) instead of prefix-many incremental
  // assign() sweeps. Prefix nodes end up carrying their FULL side
  // counts where sequential seeding leaves the partial counts frozen at
  // assignment time — safe, because an assigned node's counts are only
  // read again on unassignment (assign()'s drift assert checks the node
  // being newly assigned, whose counts are live either way) and prefix
  // nodes are never unassigned: the DFS unwinds only below the prefix.
  // Everything the search reads (unassigned counts, cur_cut, sum_min,
  // masks) is identical to sequential seeding, so subtree node counts
  // are unchanged.
  void seed_prefix(const std::vector<std::uint8_t>& prefix) {
    for (std::size_t i = 0; i < prefix.size(); ++i) {
      const NodeId v = order[i];
      const int s = prefix[i];
      state[v] = static_cast<std::uint8_t>(s);
      ++cnt[s];
      if (sub.in_subset[v]) {
        ++sub.u_assigned;
        if (s == 1) ++sub.u1;
      }
      mask[s].set(v);
      unassigned.reset(v);
    }
    std::vector<const std::uint64_t*> rows(n);
    for (NodeId v = 0; v < n; ++v) rows[v] = adj[v].words().data();
    const simd::KernelTable& k = simd::kernels();
    for (int s = 0; s < 2; ++s) {
      k.multi_and_count(rows.data(), mask[s].words().data(),
                        mask[s].num_words(), n, a[s].data());
    }
    // cut = cross edges within the assigned set, each counted once from
    // its side-1 endpoint; sum_min re-derived over the unassigned rest.
    cur_cut = 0;
    mask[1].for_each_set([&](std::size_t v) { cur_cut += a[0][v]; });
    sum_min = 0;
    unassigned.for_each_set([&](std::size_t v) {
      sum_min += std::min(a[0][v], a[1][v]);
    });
  }

  // Pool the local node count and poll every stop source. Called at an
  // amortized cadence from dfs and once at the end of a worker's run.
  void flush_and_poll() {
    // Simulated crash-at-node-N: models the process dying mid-search,
    // leaving whatever the checkpoint sink last wrote as the only
    // surviving state. No-op outside fault-injection builds.
    BFLY_FAULT_POINT(kCrash);
    shared.pooled_visited.fetch_add(visited - last_flushed,
                                    std::memory_order_relaxed);
    last_flushed = visited;
    pool_at_flush = shared.pooled_visited.load(std::memory_order_relaxed);
    if (opts.progress != nullptr) {
      opts.progress->store(pool_at_flush, std::memory_order_relaxed);
    }
    if (shared.aborted.load(std::memory_order_relaxed)) {
      aborted = true;
      return;
    }
    if (opts.cancel != nullptr && opts.cancel->stop_requested()) {
      abort_search();
    }
  }

  // Pooled node count as of the last flush plus everything visited here
  // since: exact when running serially, accurate to one flush interval
  // per peer worker when parallel.
  [[nodiscard]] std::uint64_t budget_estimate() const {
    return pool_at_flush + (visited - last_flushed);
  }

  void abort_search() {
    aborted = true;
    shared.aborted.store(true, std::memory_order_relaxed);
  }

  void record_solution(std::size_t capacity,
                       const std::vector<std::uint8_t>& sides) {
    // publish() only accepts strict improvements under its mutex, so
    // racing workers cannot regress the incumbent.
    shared.incumbent.publish(capacity, sides);
  }

  // Assignment-count ("fractional degree") bound on the unassigned
  // remainder: the balance constraint forces between xlo and xhi of the
  // remaining nodes onto side 0. sum_min already charges every
  // unassigned node its cheaper side; any node pushed off its preferred
  // side additionally pays |a0 - a1|. Bucketing those differences by
  // value (bounded by max_degree) makes "sum of the smallest k
  // differences" a walk over at most max_degree counters.
  [[nodiscard]] std::size_t remainder_penalty(std::size_t r,
                                              std::size_t room0,
                                              std::size_t room1) {
    const std::size_t xhi = std::min(r, room0);
    const std::size_t xlo = r > room1 ? r - room1 : 0;
    std::fill(diff_bucket[0].begin(), diff_bucket[0].end(), 0u);
    std::fill(diff_bucket[1].begin(), diff_bucket[1].end(), 0u);
    // Dispatched scan: nodes strictly preferring side 0 / 1 (placing a
    // node on side 0 costs a1, its cheaper side), differences bucketed.
    std::uint32_t p01[2] = {0, 0};
    simd::kernels().diff_histogram(unassigned.words().data(), n, a[0].data(),
                                   a[1].data(), max_deg_, p01,
                                   diff_bucket[0].data(),
                                   diff_bucket[1].data());
    const std::size_t p0 = p01[0], p1 = p01[1];
    const std::size_t ties = r - p0 - p1;
    std::size_t forced = 0;
    const std::vector<std::uint32_t>* bucket = nullptr;
    if (xhi < p0) {  // too many want side 0: some pay to move to side 1
      forced = p0 - xhi;
      bucket = &diff_bucket[0];
    } else if (xlo > p0 + ties) {  // side 0 must absorb side-1 preferrers
      forced = xlo - p0 - ties;
      bucket = &diff_bucket[1];
    }
    if (forced == 0) return 0;
    std::size_t penalty = 0;
    for (std::size_t d = 1; d < bucket->size() && forced > 0; ++d) {
      const std::size_t take = std::min<std::size_t>((*bucket)[d], forced);
      penalty += take * d;
      forced -= take;
    }
    BFLY_ASSERT_MSG(forced == 0,
                    "assignment-count bound ran out of bucketed nodes");
    return penalty;
  }

  // Both sides' remaining room forces every unassigned node onto side s:
  // the completion cost is exact, so close the subtree in O(remaining).
  void forced_completion(int s, std::size_t thr) {
    std::size_t total = cur_cut;
    unassigned.for_each_set([&](std::size_t w) {
      // Edges between two unassigned nodes stay internal to side s; only
      // edges to the other, already-assigned side cross.
      total += a[1 - s][w];
    });
    if (total >= thr) return;
    std::vector<std::uint8_t> sides = state;
    unassigned.for_each_set(
        [&](std::size_t w) { sides[w] = static_cast<std::uint8_t>(s); });
    record_solution(total, sides);
  }

  // Canonical form of the current (side-0, side-1) masks under the
  // shared group and the side swap. Only valid when symmetry pruning is
  // active, which implies n <= 64 (single-word masks).
  [[nodiscard]] TranspositionTable::Key canonical_key() const {
    BFLY_ASSERT(shared.sym_elements != nullptr && n <= 64);
    return canonical_mask_pair(mask[0].words()[0], mask[1].words()[0],
                               *shared.sym_elements);
  }

  // Images of v under the setwise stabilizer of the current masks,
  // split by how the element treats the sides. `oplus` collects sigma(v)
  // for elements fixing both masks: a completion with sigma(v) on side
  // `first` maps through sigma^-1 to an equal-cost completion of the
  // SAME state with v on `first`. `ominus` collects sigma(v) for
  // elements swapping the masks (possible only at balanced states):
  // composing sigma^-1 with the global side swap again lands on the
  // same state at equal cost, and it sends completions with sigma(v) on
  // the OTHER side to completions with v on `first`. Every collected
  // vertex is unassigned (both element kinds fix the unassigned set).
  void stabilizer_orbits(NodeId v, std::uint64_t& oplus,
                         std::uint64_t& ominus) const {
    const std::uint64_t m0 = mask[0].words()[0];
    const std::uint64_t m1 = mask[1].words()[0];
    oplus = 0;
    ominus = 0;
    for (const algo::Perm& p : *shared.sym_elements) {
      const std::uint64_t pm0 = algo::apply_to_mask(p, m0);
      const std::uint64_t pm1 = algo::apply_to_mask(p, m1);
      if (pm0 == m0 && pm1 == m1) {
        oplus |= std::uint64_t{1} << p[v];
      } else if (pm0 == m1 && pm1 == m0) {
        ominus |= std::uint64_t{1} << p[v];
      }
    }
  }

  // Twins of v among the unassigned vertices, relative to the side
  // `first` the dichotomy keeps: w is a twin when it has the same
  // unassigned neighborhood as v (ignoring v and w themselves) and v is
  // no more expensive to place on `first` than w, i.e.
  //
  //   a[other][v] - a[first][v]  <=  a[other][w] - a[first][w].
  //
  // The transposition (v w) then maps any completion with w on `first`
  // and v on the other side to one with v on `first` of cost <= it:
  // edges into the remaining unassigned set contribute identically
  // (matching neighborhoods; a possible v-w edge stays cut), and the
  // assigned-edge contribution changes by exactly the slack difference
  // above. (v w) is usually NOT a graph automorphism — this is the
  // residual local structure mid-depth states retain after the global
  // stabilizer has collapsed — and each twin carries its own witness,
  // so the set joins v's orbital dichotomy without any group closure:
  // completions with a twin on `first` are dominated by the v-on-first
  // subtree, so the second branch may force them all to the other side.
  [[nodiscard]] std::uint64_t twin_orbit(NodeId v, int first) const {
    const int other = 1 - first;
    const std::uint64_t u_word = unassigned.words()[0];
    const std::uint64_t av = adj[v].words()[0];
    const std::uint64_t bit_v = std::uint64_t{1} << v;
    const std::int32_t v_slack = static_cast<std::int32_t>(a[other][v]) -
                                 static_cast<std::int32_t>(a[first][v]);
    std::uint64_t orbit = bit_v;
    unassigned.for_each_set([&](std::size_t w) {
      if (w == v) return;
      const std::int32_t w_slack = static_cast<std::int32_t>(a[other][w]) -
                                   static_cast<std::int32_t>(a[first][w]);
      if (w_slack < v_slack) return;
      const std::uint64_t bit_w = std::uint64_t{1} << w;
      if ((av & u_word & ~bit_w) == (adj[w].words()[0] & u_word & ~bit_v)) {
        orbit |= bit_w;
      }
    });
    return orbit;
  }

  // Dynamic branching order: descend on the most constrained unassigned
  // node — largest side-count difference (its bad branch is the
  // likeliest to prune), then most assigned neighbors, then highest
  // degree, then lowest id (determinism). This re-ranks after every
  // assignment, making it an O(unassigned) sweep per expanded node —
  // the hottest scan of the bitset kernel — so it runs through the
  // dispatched select_max_key, whose vector paths reproduce the scalar
  // first-max-in-index-order argmax bit for bit (node counts are
  // therefore dispatch-invariant).
  [[nodiscard]] NodeId select_next() const {
    const std::size_t best = simd::kernels().select_max_key(
        unassigned.words().data(), n, a[0].data(), a[1].data(), deg_.data(),
        max_deg_);
    BFLY_ASSERT_MSG(best != static_cast<std::size_t>(-1),
                    "select_next called with no unassigned node");
    return static_cast<NodeId>(best);
  }

  // Strong-branching selection key used in symmetry mode: score each
  // candidate by the immediate lower-bound growth of its WORSE child
  // (cut increase minus the candidate's own sum_min term, plus the
  // neighbors whose min side-count rises), so the branch vertex is the
  // one whose dichotomy provably tightens the bound fastest — the right
  // objective in the refutation trees orbital branching leaves behind.
  // Ties fall back to the bound growth of the better child, then to the
  // plain kernel's activity key. The plain kernel keeps its original
  // static key: its node counts are the differential baseline.
  [[nodiscard]] std::uint64_t strong_key(NodeId w) const {
    const std::uint32_t a0 = a[0][w], a1 = a[1][w];
    const std::uint64_t u_word = unassigned.words()[0];
    std::uint32_t g0 = 0, g1 = 0;
    for (std::uint64_t rest =
             adj[w].words()[0] & u_word & ~(std::uint64_t{1} << w);
         rest != 0; rest &= rest - 1) {
      const auto u = static_cast<std::size_t>(std::countr_zero(rest));
      g0 += a[0][u] < a[1][u] ? 1u : 0u;
      g1 += a[1][u] < a[0][u] ? 1u : 0u;
    }
    const std::uint32_t base = a0 < a1 ? a0 : a1;
    const std::uint32_t d0 = a1 - base + g0;  // bound growth of w -> 0
    const std::uint32_t d1 = a0 - base + g1;  // bound growth of w -> 1
    const std::uint32_t lo = d0 < d1 ? d0 : d1;
    const std::uint32_t hi = d0 < d1 ? d1 : d0;
    return (static_cast<std::uint64_t>(lo) << 40) |
           (static_cast<std::uint64_t>(hi) << 24) |
           (static_cast<std::uint64_t>(a0 + a1) << 8) |
           static_cast<std::uint64_t>(g.degree(w));
  }

  [[nodiscard]] NodeId select_next_strong() const {
    NodeId best = 0;
    std::uint64_t best_key = 0;
    bool found = false;
    unassigned.for_each_set([&](std::size_t w) {
      const std::uint64_t key = strong_key(static_cast<NodeId>(w));
      if (!found || key > best_key) {
        found = true;
        best_key = key;
        best = static_cast<NodeId>(w);
      }
    });
    BFLY_ASSERT(found);
    return best;
  }

  void dfs(NodeId num_assigned) {
    if (aborted) return;
    // Transposition probe before the node is counted as expanded: a hit
    // means an equivalent subtree was already fully searched, so this
    // node is closed before any expansion work. Probing below depth 2
    // can never hit (a DFS never revisits a state; the only depth-1
    // state is its own canonical class representative).
    TranspositionTable::Key tt_key{};
    const bool tt_active = shared.tt != nullptr && num_assigned >= 2;
    if (tt_active) {
      tt_key = canonical_key();
      if (shared.tt->probe(tt_key)) return;
    }
    ++visited;
    if (opts.node_limit != 0 && budget_estimate() > opts.node_limit) {
      abort_search();
      return;
    }
    if ((visited & 0xfffu) == 0) {
      flush_and_poll();
      if (aborted) return;
    }
    const std::size_t thr = prune_threshold();
    if (cur_cut + sum_min >= thr) return;
    if (num_assigned == n) {
      BFLY_ASSERT_MSG(sub.subset_mode ||
                          (cnt[0] <= cap_side && cnt[1] <= cap_side),
                      "leaf assignment violates the balance constraint");
      BFLY_ASSERT_MSG(!sub.subset_mode ||
                          (sub.u1 >= sub.u_floor && sub.u1 <= sub.u_ceil),
                      "leaf assignment violates the subset constraint");
      record_solution(cur_cut, state);
      return;
    }
    if (!sub.subset_mode) {
      const std::size_t r = n - num_assigned;
      const std::size_t room0 = cap_side - cnt[0];
      const std::size_t room1 = cap_side - cnt[1];
      if (room0 == 0 || room1 == 0) {
        // One side is full: the rest of the assignment is forced.
        forced_completion(room0 == 0 ? 1 : 0, thr);
        return;
      }
      if ((room0 < r || room1 < r) &&
          cur_cut + sum_min + remainder_penalty(r, room0, room1) >= thr) {
        return;
      }
    }
    NodeId v = shared.sym_elements != nullptr ? select_next_strong()
                                              : select_next();
    int first = a[0][v] >= a[1][v] ? 0 : 1;
    // The very first assigned node can be pinned to side 0 (complement
    // symmetry) no matter which node the dynamic order picked.
    const int sides_to_try = num_assigned == 0 ? 1 : 2;
    if (num_assigned == 0) first = 0;
    // Orbital branching (stabilizer-chain descent, DESIGN.md §10).
    // Build v's two-sided orbit under the swap-extended setwise
    // stabilizer plus its twin set. Every completion then falls in one
    // of two classes: it puts some O+/twin vertex on side `first` or
    // some O- vertex on the other side — in which case a witness maps
    // it into the v -> first subtree at no greater cost — or it puts
    // ALL of O+ and the twins on the other side and ALL of O- on
    // `first`. Two branches replace the usual two, but the second
    // multi-assigns the whole orbit at once (and vanishes outright when
    // O+ and O- intersect — the forced sides contradict), so the
    // collapse compounds down the stabilizer chain.
    if (shared.sym_elements != nullptr && num_assigned >= 1) {
      std::uint64_t oplus = 0;
      std::uint64_t ominus = 0;
      stabilizer_orbits(v, oplus, ominus);
      // Twins extend the dichotomy past the stabilizer: their witnesses
      // are per-vertex transpositions, valid alongside the group ones.
      oplus |= twin_orbit(v, first);
      {
        // Tie-aware reselect: among unassigned vertices with the same
        // selection key (a free choice — the key order is heuristic,
        // any tied vertex is an equally ranked branch candidate),
        // prefer one whose combined orbit is larger. Every witness in a
        // candidate's orbit targets the candidate itself (stabilizer
        // elements are inverted, twin transpositions are their own
        // inverse), so the candidate becomes the branch vertex.
        const std::uint64_t vkey = strong_key(v);
        int best_sz = std::popcount(oplus) + std::popcount(ominus);
        unassigned.for_each_set([&](std::size_t w) {
          if (strong_key(static_cast<NodeId>(w)) != vkey) return;
          const int first_w = a[0][w] >= a[1][w] ? 0 : 1;
          std::uint64_t op = 0;
          std::uint64_t om = 0;
          stabilizer_orbits(static_cast<NodeId>(w), op, om);
          op |= twin_orbit(static_cast<NodeId>(w), first_w);
          const int sz = std::popcount(op) + std::popcount(om);
          if (sz > best_sz) {
            best_sz = sz;
            oplus = op;
            ominus = om;
            v = static_cast<NodeId>(w);
            first = first_w;
          }
        });
      }
      if ((oplus & (oplus - 1)) != 0 || ominus != 0) {
        if (side_feasible(first)) {
          assign(v, first);
          dfs(num_assigned + 1);
          unassign(v, first);
          if (aborted) return;
        }
        const int other = 1 - first;
        const auto osz = static_cast<std::size_t>(std::popcount(oplus));
        const auto fsz = static_cast<std::size_t>(std::popcount(ominus));
        if ((oplus & ominus) == 0 && cnt[other] + osz <= cap_side &&
            cnt[first] + fsz <= cap_side) {
          NodeId ws[64];
          int sides[64];
          int m = 0;
          for (std::uint64_t rest = oplus; rest != 0; rest &= rest - 1) {
            ws[m] = static_cast<NodeId>(std::countr_zero(rest));
            sides[m++] = other;
          }
          for (std::uint64_t rest = ominus; rest != 0; rest &= rest - 1) {
            ws[m] = static_cast<NodeId>(std::countr_zero(rest));
            sides[m++] = first;
          }
          for (int i = 0; i < m; ++i) assign(ws[i], sides[i]);
          dfs(num_assigned + static_cast<NodeId>(m));
          for (int i = m - 1; i >= 0; --i) unassign(ws[i], sides[i]);
          if (aborted) return;
        }
        if (tt_active) shared.tt->insert(tt_key);
        return;
      }
    }
    for (int t = 0; t < sides_to_try; ++t) {
      const int s = t == 0 ? first : 1 - first;
      if (!side_feasible(s)) continue;
      assign(v, s);
      if (sub.feasible()) dfs(num_assigned + 1);
      unassign(v, s);
      if (aborted) return;
    }
    // Reaching here means both children were searched to completion (or
    // pruned), never cut short: record the subtree so any equivalent
    // state elsewhere in the tree is pruned by membership alone.
    if (tt_active) shared.tt->insert(tt_key);
  }
};

// Enumerates every feasible assignment of order[0..depth) as a side
// vector, mirroring the dfs constraints (order[0] pinned to side 0, per-
// side caps, partial subset feasibility) so the seeds exactly partition
// the serial search tree at that depth. Grows the depth until there are
// target_seeds seeds or max_depth is reached.
// When sym_elements is non-null the enumerated prefixes are additionally
// deduplicated up to symmetry: only the first prefix of each canonical
// class survives, and the dropped ones are never searched — their
// subtrees are images of the kept representative's, so every completion
// they contain maps to an equal-capacity completion under the kept
// prefix. Deterministic (first in enumeration order wins), so a resumed
// run reproduces the identical prefix list.
std::vector<std::vector<std::uint8_t>> enumerate_seed_prefixes(
    const Graph& g, const BranchBoundOptions& opts,
    const std::vector<NodeId>& order, std::size_t target_seeds,
    unsigned max_depth, const std::vector<algo::Perm>* sym_elements) {
  const NodeId n = g.num_nodes();
  const std::size_t cap_side = (static_cast<std::size_t>(n) + 1) / 2;
  SubsetState sub(g, opts);

  std::vector<std::vector<std::uint8_t>> cur;
  cur.emplace_back();  // the empty prefix
  for (unsigned depth = 0; depth < max_depth && cur.size() < target_seeds;
       ++depth) {
    const NodeId v = order[depth];
    std::vector<std::vector<std::uint8_t>> next;
    next.reserve(cur.size() * 2);
    for (const auto& p : cur) {
      std::size_t cnt[2] = {0, 0};
      std::size_t u1 = 0, u_assigned = 0;
      for (unsigned i = 0; i < depth; ++i) {
        ++cnt[p[i]];
        if (sub.in_subset[order[i]]) {
          ++u_assigned;
          if (p[i] == 1) ++u1;
        }
      }
      for (int s = 0; s < 2; ++s) {
        if (depth == 0 && s == 1) continue;  // complement symmetry
        if (!sub.subset_mode && cnt[s] >= cap_side) continue;
        if (sub.subset_mode && sub.in_subset[v]) {
          const std::size_t new_u1 = u1 + (s == 1 ? 1 : 0);
          const std::size_t rem = sub.u_total - (u_assigned + 1);
          if (new_u1 > sub.u_ceil || new_u1 + rem < sub.u_floor) continue;
        }
        auto q = p;
        q.push_back(static_cast<std::uint8_t>(s));
        next.push_back(std::move(q));
      }
    }
    cur.swap(next);
  }
  if (sym_elements != nullptr && !cur.empty() && !cur.front().empty()) {
    std::unordered_set<TranspositionTable::Key, TtKeyHash> seen;
    seen.reserve(cur.size() * 2);
    std::vector<std::vector<std::uint8_t>> kept;
    kept.reserve(cur.size());
    for (auto& p : cur) {
      std::uint64_t m[2] = {0, 0};
      for (std::size_t i = 0; i < p.size(); ++i) {
        m[p[i]] |= std::uint64_t{1} << order[i];
      }
      if (seen.insert(canonical_mask_pair(m[0], m[1], *sym_elements)).second) {
        kept.push_back(std::move(p));
      }
    }
    cur = std::move(kept);
  }
  return cur;
}

// Prefix-completion bookkeeping for checkpointed runs. One capability
// serializes both the done[] flags and the checkpoint sink behind them:
// a snapshot must pair each done bit with an incumbent at least as good
// as the one that subtree proved, which holds exactly because the flag
// flip and the state capture happen under the same lock, after the
// subtree's publishes.
struct PrefixLedger {
  sync::Mutex mu;
  std::vector<std::uint8_t> done BFLY_GUARDED_BY(mu);
};

struct BitsetRunOutcome {
  std::size_t capacity = kNoCapacity;
  std::vector<std::uint8_t> sides;
  bool aborted = false;
  std::uint64_t visited = 0;
  std::uint64_t tt_hits = 0;
  std::uint64_t tt_stores = 0;
  StealStats ws;
};

BitsetRunOutcome run_bitset_search(const Graph& g,
                                   const BranchBoundOptions& opts,
                                   unsigned threads) {
  const std::vector<NodeId> order = bfs_assignment_order(g);
  SearchShared shared;
  BitsetRunOutcome out;
  // Checkpointing (either direction) forces the seed-prefix driver even
  // for serial runs: the prefix subtree is the unit of resume, so the
  // interrupted run and its continuation partition the tree identically.
  // Sharded runs (shard_count > 1) also force the prefix driver: the
  // shard filter partitions the prefix list, and each shard's emitted
  // checkpoint is what the out-of-process merger combines.
  const bool checkpointing = opts.on_checkpoint != nullptr ||
                             opts.resume != nullptr || opts.shard_count > 1;

  // Symmetry pruning is silently disabled whenever its preconditions
  // fail (subset mode, masks wider than one word, group too large to
  // enumerate): the search is then the plain bitset search, bit for bit.
  std::optional<TranspositionTable> tt;
  if (opts.symmetry != nullptr && opts.bisect_subset.empty() &&
      g.num_nodes() <= 64) {
    const std::vector<algo::Perm>* elements = opts.symmetry->elements();
    if (elements != nullptr) {
      BFLY_CHECK(opts.symmetry->degree() == g.num_nodes(),
                 "symmetry group degree does not match the graph");
      tt.emplace(opts.tt_max_entries);
      shared.sym_elements = elements;
      shared.tt = &*tt;
    }
  }

  if (opts.resume != nullptr) {
    // Restore the interrupted run's incumbent and node count before any
    // worker starts, so the resumed search prunes (and reports) exactly
    // as if it had never stopped.
    const BranchBoundSearchState& rs = *opts.resume;
    BFLY_CHECK(rs.symmetry_mode == (shared.tt != nullptr ? 1 : 0),
               "resume state was produced under a different symmetry "
               "mode; rerun with the matching BranchBoundOptions");
    shared.pooled_visited.store(rs.nodes_spent, std::memory_order_relaxed);
    if (shared.tt != nullptr) {
      shared.tt->seed_counters(rs.tt_hits, rs.tt_stores);
    }
    if (rs.incumbent_capacity != kNoCapacity) {
      BFLY_CHECK(rs.incumbent_sides.size() == g.num_nodes(),
                 "resume incumbent does not match the graph");
      shared.incumbent.publish(rs.incumbent_capacity, rs.incumbent_sides);
    }
  }

  if (!checkpointing && (threads <= 1 || g.num_nodes() < 16)) {
    // Tiny instances gain nothing from seeding overhead; a serial run is
    // also the fully deterministic reference (witness included).
    BitsetSearcher s(g, opts, order, shared);
    s.dfs(0);
    s.flush_and_poll();
    BFLY_ASSERT_MSG(s.aborted || (s.cnt[0] == 0 && s.cnt[1] == 0 &&
                                  s.cur_cut == 0 && s.sum_min == 0 &&
                                  s.sub.u_assigned == 0 &&
                                  s.unassigned.count() == s.n),
                    "search bookkeeping did not unwind cleanly");
  } else {
    unsigned max_depth;
    std::size_t target;
    if (opts.resume != nullptr) {
      // Re-enumerate at exactly the depth of the interrupted run so the
      // completion flags line up index-for-index.
      max_depth = std::min<unsigned>(opts.resume->seed_depth, g.num_nodes());
      target = std::size_t{1} << 30;
    } else if (opts.seed_depth != 0) {
      max_depth = std::min<unsigned>(opts.seed_depth, g.num_nodes());
      target = std::size_t{1} << 30;  // honor exact depth
    } else {
      max_depth = std::min<unsigned>(12u, g.num_nodes());
      // Checkpointed runs want enough prefixes for a useful resume grain
      // even when serial; plain parallel runs just want to feed workers.
      target = checkpointing
                   ? std::max<std::size_t>(
                         32, static_cast<std::size_t>(threads) * 8)
                   : static_cast<std::size_t>(threads) * 8;
    }
    const auto prefixes = enumerate_seed_prefixes(g, opts, order, target,
                                                  max_depth,
                                                  shared.sym_elements);
    const unsigned depth_used =
        prefixes.empty() ? 0 : static_cast<unsigned>(prefixes[0].size());

    if (!checkpointing) {
      WorkStealingScheduler::Options wopts;
      wopts.num_workers = threads;
      out.ws = WorkStealingScheduler::run(
          prefixes.size(),
          [&g, &opts, &order, &shared, &prefixes](std::size_t pi, unsigned) {
            BitsetSearcher s(g, opts, order, shared);
            s.seed_prefix(prefixes[pi]);
            // The prefix was enumerated under the same feasibility rules
            // dfs enforces, so descending from its depth is sound.
            if (s.sub.feasible()) {
              s.dfs(static_cast<NodeId>(prefixes[pi].size()));
            }
            s.flush_and_poll();
          },
          wopts);
    } else {
      PrefixLedger ledger;
      {
        const sync::MutexLock lock(ledger.mu);
        ledger.done.assign(prefixes.size(), 0);
        if (opts.resume != nullptr) {
          BFLY_CHECK(opts.resume->prefix_done.size() == prefixes.size(),
                     "resume state does not match the prefix enumeration "
                     "(different graph, subset, or seed depth?)");
          ledger.done = opts.resume->prefix_done;
        }
      }
      auto run_prefix = [&](std::size_t pi) {
        if (shared.aborted.load(std::memory_order_relaxed)) return;
        // Crash point between subtrees: everything before the last
        // checkpoint survives, the in-flight subtree re-runs on resume.
        BFLY_FAULT_POINT(kCrash);
        BitsetSearcher s(g, opts, order, shared);
        s.seed_prefix(prefixes[pi]);
        if (s.sub.feasible()) s.dfs(static_cast<NodeId>(prefixes[pi].size()));
        s.flush_and_poll();
        if (s.aborted || shared.aborted.load(std::memory_order_relaxed)) {
          return;  // cut short — the subtree is NOT complete
        }
        const sync::MutexLock lock(ledger.mu);
        ledger.done[pi] = 1;
        if (opts.on_checkpoint) {
          BranchBoundSearchState st;
          st.seed_depth = depth_used;
          st.prefix_done = ledger.done;
          st.incumbent_capacity = shared.incumbent.capacity();
          if (st.incumbent_capacity != SharedIncumbent::kUnset) {
            st.incumbent_sides = shared.incumbent.sides();
          }
          // Serial runs record exactly the completed subtrees' nodes;
          // parallel runs may include partial counts flushed by peers
          // (telemetry only — never affects the proved capacity).
          st.nodes_spent =
              shared.pooled_visited.load(std::memory_order_relaxed);
          st.symmetry_mode = shared.tt != nullptr ? 1 : 0;
          if (shared.tt != nullptr) {
            st.tt_hits = shared.tt->hits();
            st.tt_stores = shared.tt->stores();
          }
          opts.on_checkpoint(st);
        }
      };
      // Work list snapshot before any worker starts: a prefix pending
      // here can only be completed by its own run_prefix call. The shard
      // filter (shard_index picks every shard_count-th prefix) composes
      // with the resume flags, so a sharded resume re-runs exactly its
      // own unfinished subtrees.
      std::vector<std::size_t> todo;
      {
        const sync::MutexLock lock(ledger.mu);
        for (std::size_t pi = 0; pi < prefixes.size(); ++pi) {
          if (ledger.done[pi]) continue;
          if (opts.shard_count > 1 &&
              pi % opts.shard_count != opts.shard_index) {
            continue;
          }
          todo.push_back(pi);
        }
      }
      // With one worker the scheduler drains inline in index order, so a
      // thrown SimulatedCrash (or real bad_alloc) abandons the remaining
      // prefixes immediately, like a dying process — byte-identical to
      // the old serial loop, which checkpoint replay relies on.
      WorkStealingScheduler::Options wopts;
      wopts.num_workers = threads;
      out.ws = WorkStealingScheduler::run(
          todo.size(),
          [&run_prefix, &todo](std::size_t i, unsigned) {
            run_prefix(todo[i]);
          },
          wopts);
    }
  }

  out.capacity = shared.incumbent.capacity();
  if (out.capacity != SharedIncumbent::kUnset) {
    out.sides = shared.incumbent.sides();
  }
  out.aborted = shared.aborted.load(std::memory_order_relaxed);
  out.visited = shared.pooled_visited.load(std::memory_order_relaxed);
  if (shared.tt != nullptr) {
    out.tt_hits = shared.tt->hits();
    out.tt_stores = shared.tt->stores();
  }
  return out;
}

}  // namespace

CutResult min_bisection_branch_bound(const Graph& g,
                                     const BranchBoundOptions& opts) {
  BFLY_CHECK(g.num_nodes() >= 2, "bisection needs at least two nodes");
  // Allocation-failure fault point: the solver's up-front working-set
  // allocations (order, bitsets, seeds) are modeled as failing here.
  BFLY_FAULT_POINT(kAlloc);
  const bool packed_faithful = !g.has_parallel_edges();
  BranchBoundKernel kernel = opts.kernel;
  if (kernel == BranchBoundKernel::kAuto) {
    kernel = packed_faithful ? BranchBoundKernel::kBitset
                             : BranchBoundKernel::kScalar;
  } else if (kernel == BranchBoundKernel::kBitset) {
    BFLY_CHECK(packed_faithful,
               "bitset branch-and-bound kernel requires a simple graph "
               "(parallel edges collapse in the packed adjacency)");
  }

  CutResult res;
  if (kernel == BranchBoundKernel::kScalar) {
    ScalarSearcher s(g, opts);
    s.dfs(0);
    // A completed search must have unwound its incremental bookkeeping
    // back to the empty assignment; anything else means assign/unassign
    // drifted.
    BFLY_ASSERT_MSG(s.aborted || (s.cnt[0] == 0 && s.cnt[1] == 0 &&
                                  s.cur_cut == 0 && s.sum_min == 0 &&
                                  s.sub.u_assigned == 0),
                    "search bookkeeping did not unwind cleanly");
    res.method = opts.bisect_subset.empty() ? "branch-and-bound"
                                            : "branch-and-bound-subset";
    res.nodes_visited = s.visited;
    if (s.have_best) {
      res.capacity = s.best_cap;
      res.sides = std::move(s.best_sides);
    } else {
      res.capacity = kNoCapacity;
    }
    res.exactness = s.aborted ? Exactness::kHeuristic : Exactness::kExact;
  } else {
    BFLY_CHECK(opts.shard_count >= 1 && opts.shard_index < opts.shard_count,
               "shard_index must be < shard_count (and shard_count >= 1)");
    const unsigned threads =
        opts.num_threads == 0 ? default_thread_count() : opts.num_threads;
    BitsetRunOutcome out = run_bitset_search(g, opts, threads);
    res.method = opts.bisect_subset.empty() ? "branch-and-bound-bitset"
                                            : "branch-and-bound-bitset-subset";
    res.nodes_visited = out.visited;
    res.tt_hits = out.tt_hits;
    res.tt_stores = out.tt_stores;
    res.ws_spawned = out.ws.spawned;
    res.ws_steals = out.ws.steals;
    res.ws_idle_seconds = out.ws.idle_seconds;
    res.capacity = out.capacity;
    res.sides = std::move(out.sides);
    // A sharded run searched only its slice of the prefix list: even a
    // clean finish is a partial proof, so it never claims exactness —
    // the merged, unsharded resume makes that claim for the ensemble.
    res.exactness = out.aborted || opts.shard_count > 1
                        ? Exactness::kHeuristic
                        : Exactness::kExact;
  }

  if (!res.sides.empty() && checked_build()) {
    validate_cut(g, res, /*require_bisection=*/opts.bisect_subset.empty());
    BFLY_ASSERT(opts.bisect_subset.empty() ||
                bisects_subset(res.sides, opts.bisect_subset));
  }
  return res;
}

}  // namespace bfly::cut
