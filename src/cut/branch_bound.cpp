#include "cut/branch_bound.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "core/error.hpp"

namespace bfly::cut {

namespace {

constexpr std::uint8_t kUnassigned = 2;

struct Searcher {
  const Graph& g;
  const BranchBoundOptions& opts;

  NodeId n;
  std::vector<NodeId> order;         // assignment order (BFS)
  std::vector<std::uint8_t> state;   // 0, 1, or kUnassigned
  std::vector<std::uint32_t> a[2];   // assigned-neighbor counts per side
  std::vector<std::uint8_t> in_subset;

  std::size_t cap_side;       // max nodes per side (bisection mode)
  bool subset_mode = false;
  std::size_t u_total = 0;    // |U|
  std::size_t u_floor = 0, u_ceil = 0;

  std::size_t cnt[2] = {0, 0};
  std::size_t u1 = 0;          // subset nodes currently on side 1
  std::size_t u_assigned = 0;  // subset nodes assigned so far
  std::size_t cur_cut = 0;
  std::size_t sum_min = 0;     // sum over unassigned v of min(a0, a1)

  std::size_t best_cap = std::numeric_limits<std::size_t>::max();
  std::vector<std::uint8_t> best_sides;
  bool have_best = false;

  std::uint64_t visited = 0;
  bool aborted = false;

  explicit Searcher(const Graph& graph, const BranchBoundOptions& o)
      : g(graph), opts(o), n(graph.num_nodes()) {
    state.assign(n, kUnassigned);
    a[0].assign(n, 0);
    a[1].assign(n, 0);
    in_subset.assign(n, 0);
    cap_side = (static_cast<std::size_t>(n) + 1) / 2;

    if (!opts.bisect_subset.empty()) {
      subset_mode = true;
      for (const NodeId v : opts.bisect_subset) {
        BFLY_CHECK(v < n, "subset node out of range");
        in_subset[v] = 1;
      }
      u_total = opts.bisect_subset.size();
      u_floor = u_total / 2;
      u_ceil = (u_total + 1) / 2;
    }

    // BFS assignment order (per component) so the frontier — and hence the
    // cut — grows early, tightening the bound.
    std::vector<std::uint8_t> seen(n, 0);
    order.reserve(n);
    for (NodeId root = 0; root < n; ++root) {
      if (seen[root]) continue;
      seen[root] = 1;
      std::size_t head = order.size();
      order.push_back(root);
      while (head < order.size()) {
        const NodeId u = order[head++];
        for (const NodeId w : g.neighbors(u)) {
          if (!seen[w]) {
            seen[w] = 1;
            order.push_back(w);
          }
        }
      }
    }
  }

  [[nodiscard]] std::size_t prune_threshold() const {
    std::size_t t;
    if (have_best) {
      t = best_cap;
    } else {
      t = opts.initial_bound == std::numeric_limits<std::size_t>::max()
              ? std::numeric_limits<std::size_t>::max()
              : opts.initial_bound + 1;
    }
    if (opts.live_bound != nullptr) {
      // A bisection of this capacity already exists elsewhere; only
      // strictly better solutions are worth visiting.
      t = std::min(t, opts.live_bound->load(std::memory_order_relaxed));
    }
    return t;
  }

  [[nodiscard]] bool side_feasible(int s) const {
    if (!subset_mode) return cnt[s] < cap_side;
    return true;  // subset mode has no overall balance constraint
  }

  [[nodiscard]] bool subset_feasible() const {
    if (!subset_mode) return true;
    const std::size_t remaining = u_total - u_assigned;
    // Final u1 must land in [u_floor, u_ceil].
    return u1 <= u_ceil && u1 + remaining >= u_floor;
  }

  void assign(NodeId v, int s) {
    state[v] = static_cast<std::uint8_t>(s);
    ++cnt[s];
    cur_cut += a[1 - s][v];
    sum_min -= std::min(a[0][v], a[1][v]);
    if (in_subset[v]) {
      ++u_assigned;
      if (s == 1) ++u1;
    }
    for (const NodeId w : g.neighbors(v)) {
      if (state[w] == kUnassigned) {
        const std::uint32_t old_min = std::min(a[0][w], a[1][w]);
        ++a[s][w];
        sum_min += std::min(a[0][w], a[1][w]) - old_min;  // grows or stays
      }
    }
  }

  void unassign(NodeId v, int s) {
    for (const NodeId w : g.neighbors(v)) {
      if (state[w] == kUnassigned) {
        const std::uint32_t old_min = std::min(a[0][w], a[1][w]);
        --a[s][w];
        sum_min -= old_min - std::min(a[0][w], a[1][w]);  // shrinks or stays
      }
    }
    if (in_subset[v]) {
      --u_assigned;
      if (s == 1) --u1;
    }
    sum_min += std::min(a[0][v], a[1][v]);
    cur_cut -= a[1 - s][v];
    --cnt[s];
    state[v] = kUnassigned;
  }

  void dfs(NodeId depth) {
    if (aborted) return;
    ++visited;
    if (opts.node_limit != 0 && visited > opts.node_limit) {
      aborted = true;
      return;
    }
    // Poll cancellation at an amortized cadence: the flag is a relaxed
    // atomic (and possibly a clock read), so checking every node would
    // dominate the cheap bound arithmetic.
    if (opts.cancel != nullptr && (visited & 0xfffu) == 0 &&
        opts.cancel->stop_requested()) {
      aborted = true;
      return;
    }
    if (cur_cut + sum_min >= prune_threshold()) return;
    if (depth == n) {
      // Constraints were enforced along the path.
      BFLY_ASSERT_MSG(!have_best || cur_cut < best_cap,
                      "incumbent capacity must decrease monotonically");
      BFLY_ASSERT_MSG(subset_mode ||
                          (cnt[0] <= cap_side && cnt[1] <= cap_side),
                      "leaf assignment violates the balance constraint");
      BFLY_ASSERT_MSG(!subset_mode || (u1 >= u_floor && u1 <= u_ceil),
                      "leaf assignment violates the subset constraint");
      best_cap = cur_cut;
      best_sides = state;
      have_best = true;
      return;
    }
    const NodeId v = order[depth];
    // Try the side with more assigned neighbors first (smaller immediate
    // cut growth). Fix order[0] to side 0 (complement symmetry).
    int first = a[0][v] >= a[1][v] ? 0 : 1;
    const int sides_to_try = depth == 0 ? 1 : 2;
    if (depth == 0) first = 0;
    for (int t = 0; t < sides_to_try; ++t) {
      const int s = t == 0 ? first : 1 - first;
      if (!side_feasible(s)) continue;
      assign(v, s);
      if (subset_feasible()) dfs(depth + 1);
      unassign(v, s);
      if (aborted) return;
    }
  }
};

}  // namespace

CutResult min_bisection_branch_bound(const Graph& g,
                                     const BranchBoundOptions& opts) {
  BFLY_CHECK(g.num_nodes() >= 2, "bisection needs at least two nodes");
  Searcher s(g, opts);
  s.dfs(0);
  // A completed search must have unwound its incremental bookkeeping back
  // to the empty assignment; anything else means assign/unassign drifted.
  BFLY_ASSERT_MSG(s.aborted || (s.cnt[0] == 0 && s.cnt[1] == 0 &&
                                s.cur_cut == 0 && s.sum_min == 0 &&
                                s.u_assigned == 0),
                  "search bookkeeping did not unwind cleanly");

  CutResult res;
  res.method = opts.bisect_subset.empty() ? "branch-and-bound"
                                          : "branch-and-bound-subset";
  if (s.have_best) {
    res.capacity = s.best_cap;
    res.sides = std::move(s.best_sides);
    res.exactness = s.aborted ? Exactness::kHeuristic : Exactness::kExact;
    if (checked_build()) {
      validate_cut(g, res, /*require_bisection=*/opts.bisect_subset.empty());
      BFLY_ASSERT(opts.bisect_subset.empty() ||
                  bisects_subset(res.sides, opts.bisect_subset));
    }
  } else {
    // No solution at or below the supplied bound (or search aborted).
    res.capacity = std::numeric_limits<std::size_t>::max();
    res.exactness = s.aborted ? Exactness::kHeuristic : Exactness::kExact;
  }
  return res;
}

}  // namespace bfly::cut
