// Fiduccia–Mattheyses-style bisection refinement: single-node moves with
// balance control, lazy max-gain priority queues, one-move-per-node passes
// with best-balanced-prefix rollback, random restarts. Scales to the
// larger instances Kernighan–Lin's O(n^3) passes cannot handle.
#pragma once

#include <cstdint>
#include <vector>

#include "core/graph.hpp"
#include "core/thread_pool.hpp"
#include "cut/bisection.hpp"
#include "cut/incumbent.hpp"

namespace bfly::cut {

struct FiducciaMattheysesOptions {
  std::uint32_t restarts = 8;
  std::uint32_t max_passes = 24;  ///< per restart
  std::uint64_t seed = 0x666du;   // "fm"
  /// Worker threads for the independent restarts (0 = serial). The
  /// result is deterministic regardless of thread count: every restart
  /// derives its own seed, and ties break toward the lowest restart
  /// index.
  std::uint32_t num_threads = 0;
  /// Cooperative cancellation, checked before each restart. A cancelled
  /// run returns the best bisection among restarts that did run.
  const CancelToken* cancel = nullptr;
  /// Portfolio hook: each restart's final bisection is offered to the
  /// shared incumbent (one-way; never read back, so the result stays
  /// deterministic).
  IncumbentPublisher* incumbent = nullptr;
  /// Candidate selection structure. true (default) = the classic FM
  /// gain-bucket array with O(1) relinks per gain change; false = the
  /// original lazy max-heaps, kept as the differential reference. Both
  /// select max gain with ties to the highest node id, so the move
  /// sequence — and therefore every capacity and witness — is identical.
  bool gain_buckets = true;
};

[[nodiscard]] CutResult min_bisection_fiduccia_mattheyses(
    const Graph& g, const FiducciaMattheysesOptions& opts = {});

/// Refines an existing side assignment in place (no restarts); returns the
/// refined result. Used to polish spectral/constructive cuts.
[[nodiscard]] CutResult refine_fiduccia_mattheyses(
    const Graph& g, std::vector<std::uint8_t> sides,
    std::uint32_t max_passes = 24);

}  // namespace bfly::cut
