// Spectral bisection: split at the median of the Fiedler vector,
// optionally polished by FM refinement.
#pragma once

#include <cstdint>

#include "core/graph.hpp"
#include "core/thread_pool.hpp"
#include "cut/bisection.hpp"

namespace bfly::cut {

struct SpectralBisectionOptions {
  bool refine = true;  ///< run FM passes on the spectral split
  std::uint64_t seed = 0x5bec7ull;
  /// Cooperative cancellation, polled per power iteration inside the
  /// Fiedler solve and again at the refine boundary. A cancelled run
  /// still returns a valid (median-split) bisection, just built from
  /// whatever iterate the eigensolver had and without FM polish.
  const CancelToken* cancel = nullptr;
};

[[nodiscard]] CutResult min_bisection_spectral(
    const Graph& g, const SpectralBisectionOptions& opts = {});

}  // namespace bfly::cut
