// Constructive cuts: the folklore column split, the CCC dimension cut,
// and the paper's Lemma 2.16 mesh-of-stars-lifted bisection of Bn.
#pragma once

#include <cstdint>

#include "cut/bisection.hpp"
#include "topology/butterfly.hpp"
#include "topology/ccc.hpp"
#include "topology/wrapped_butterfly.hpp"

namespace bfly::cut {

/// The "folklore" bisection: side = most significant column bit. Capacity
/// is exactly n for Bn — the cut the community believed optimal before
/// Theorem 2.20.
[[nodiscard]] CutResult column_split_bisection(const topo::Butterfly& bf);

/// Same construction on Wn; capacity n, which Section 3 proves optimal.
[[nodiscard]] CutResult column_split_bisection(
    const topo::WrappedButterfly& wb);

/// Dimension cut of CCCn (capacity n/2, optimal per Lemma 3.3).
[[nodiscard]] CutResult dimension_cut_bisection(
    const topo::CubeConnectedCycles& ccc);

struct Lemma216Result {
  CutResult cut;
  std::uint32_t j = 0;           ///< mesh parameter used
  std::uint64_t mos_capacity = 0;  ///< BW(MOS_{j,j}, M2)
  /// Paper bound 2n*BW(MOS)/j^2 + 4n/j that the construction is promised
  /// to meet when j^3 + 2j - 1 <= log n.
  double promised_capacity = 0.0;
  /// True iff this n satisfies the lemma's size requirement for j.
  bool size_requirement_met = false;
  /// Nodes moved by the final greedy cleanup (0 when the amenable
  /// rebalancing alone restored balance).
  std::size_t cleanup_moves = 0;
};

/// The Lemma 2.16 pipeline on a materializable Bn: build the optimal
/// M2-bisecting cut of MOS_{j,j}, lift it through the Lemma 2.11
/// embedding, restore balance via the Lemma 2.15 amenable prefix
/// reassignment inside two M2-components, and (on sizes too small for the
/// lemma's guarantee) finish with greedy capacity-minimal moves. Always
/// returns a genuine bisection of Bn; the capacity is an upper bound on
/// BW(Bn). Requires j even, j^2 <= n/2.
[[nodiscard]] Lemma216Result lemma216_bisection(const topo::Butterfly& bf,
                                                std::uint32_t j);

}  // namespace bfly::cut
