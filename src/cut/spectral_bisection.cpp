#include "cut/spectral_bisection.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "algo/spectral.hpp"
#include "core/partition.hpp"
#include "cut/fiduccia_mattheyses.hpp"

namespace bfly::cut {

CutResult min_bisection_spectral(const Graph& g,
                                 const SpectralBisectionOptions& opts) {
  const NodeId n = g.num_nodes();
  algo::FiedlerOptions fo;
  fo.seed = opts.seed;
  fo.cancel = opts.cancel;
  const auto fiedler = algo::fiedler_vector(g, fo);

  std::vector<NodeId> by_value(n);
  std::iota(by_value.begin(), by_value.end(), 0);
  std::stable_sort(by_value.begin(), by_value.end(),
                   [&](NodeId a, NodeId b) {
                     return fiedler.vector[a] < fiedler.vector[b];
                   });

  std::vector<std::uint8_t> sides(n, 0);
  for (NodeId i = n / 2; i < n; ++i) sides[by_value[i]] = 1;

  // Phase boundary: a stop that fired during (or right after) the
  // eigensolve skips the FM polish and returns the raw median split.
  const bool stopped =
      opts.cancel != nullptr && opts.cancel->stop_requested();
  if (opts.refine && !stopped) {
    auto refined = refine_fiduccia_mattheyses(g, std::move(sides));
    refined.method = "spectral+fm";
    return refined;
  }
  CutResult res;
  res.capacity = cut_capacity(g, sides);
  res.sides = std::move(sides);
  res.exactness = Exactness::kHeuristic;
  res.method = "spectral";
  return res;
}

}  // namespace bfly::cut
