#include "cut/level_balance.hpp"

#include "core/error.hpp"
#include "core/partition.hpp"
#include "cut/bisection.hpp"

namespace bfly::cut {

LevelBalanceResult balance_some_level(const topo::Butterfly& bf,
                                      const std::vector<std::uint8_t>& sides) {
  BFLY_CHECK(sides.size() == bf.num_nodes(), "side vector size mismatch");
  BFLY_CHECK(is_bisection(sides), "input must be a bisection");
  const std::uint32_t n = bf.n();
  const std::uint32_t d = bf.dims();

  Partition part(bf.graph(), sides);
  LevelBalanceResult out;
  out.moves = 0;

  // Per-level side-0 counts.
  std::vector<std::uint32_t> cnt(d + 1, 0);
  for (std::uint32_t lvl = 0; lvl <= d; ++lvl) {
    for (std::uint32_t w = 0; w < n; ++w) {
      cnt[lvl] += part.side(bf.node(w, lvl)) == 0;
    }
  }

  const auto find_bisected = [&]() -> std::int64_t {
    for (std::uint32_t lvl = 0; lvl <= d; ++lvl) {
      if (cnt[lvl] == n / 2) return lvl;
    }
    return -1;
  };

  std::int64_t done = find_bisected();
  while (done < 0) {
    // Locate an adjacent straddling pair (counts on both sides of n/2).
    std::uint32_t b = d;  // boundary index
    for (std::uint32_t i = 0; i < d; ++i) {
      if ((cnt[i] < n / 2) != (cnt[i + 1] < n / 2)) {
        b = i;
        break;
      }
    }
    BFLY_CHECK(b < d, "no straddling boundary despite imbalanced levels");
    const std::uint32_t lo_lvl = cnt[b] < n / 2 ? b : b + 1;
    const std::uint32_t hi_lvl = lo_lvl == b ? b + 1 : b;
    const std::uint32_t mask = bf.cross_mask(b);

    // Find a 4-cycle with fewer side-0 nodes on the deficient level.
    bool moved = false;
    for (std::uint32_t w = 0; w < n && !moved; ++w) {
      if (w & mask) continue;  // enumerate each column pair once
      const NodeId lo1 = bf.node(w, lo_lvl), lo2 = bf.node(w ^ mask, lo_lvl);
      const NodeId hi1 = bf.node(w, hi_lvl), hi2 = bf.node(w ^ mask, hi_lvl);
      const int a_lo = (part.side(lo1) == 0) + (part.side(lo2) == 0);
      const int a_hi = (part.side(hi1) == 0) + (part.side(hi2) == 0);
      if (a_lo >= a_hi) continue;
      [[maybe_unused]] const std::size_t cap_before = part.cut_capacity();
      if (a_hi == 2) {
        // Both upper 4-cycle nodes in A: pull a lower non-A node in —
        // its two boundary edges stop crossing; at most two on the other
        // side start.
        const NodeId v = part.side(lo1) != 0 ? lo1 : lo2;
        part.move(v);
        ++cnt[lo_lvl];
      } else {
        // a_lo == 0, a_hi == 1: push the upper A-node out.
        const NodeId u = part.side(hi1) == 0 ? hi1 : hi2;
        part.move(u);
        --cnt[hi_lvl];
      }
      BFLY_ASSERT(part.cut_capacity() <= cap_before);
      ++out.moves;
      moved = true;
    }
    BFLY_CHECK(moved, "no eligible 4-cycle despite straddling counts");
    done = find_bisected();
  }

  out.sides = part.sides();
  out.capacity = part.cut_capacity();
  out.bisected_level = static_cast<std::uint32_t>(done);
  return out;
}

}  // namespace bfly::cut
