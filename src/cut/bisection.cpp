#include "cut/bisection.hpp"

#include "core/error.hpp"
#include "core/partition.hpp"

namespace bfly::cut {

const char* to_string(Exactness e) {
  switch (e) {
    case Exactness::kExact:
      return "exact";
    case Exactness::kBound:
      return "bound";
    case Exactness::kHeuristic:
      return "heuristic";
  }
  return "?";
}

bool is_bisection(const std::vector<std::uint8_t>& sides) {
  std::size_t ones = 0;
  for (const auto s : sides) ones += s;
  const std::size_t n = sides.size();
  const std::size_t half = (n + 1) / 2;
  return ones <= half && (n - ones) <= half;
}

bool bisects_subset(const std::vector<std::uint8_t>& sides,
                    std::span<const NodeId> subset) {
  std::size_t ones = 0;
  for (const NodeId v : subset) {
    BFLY_CHECK(v < sides.size(), "subset node out of range");
    ones += sides[v];
  }
  const std::size_t u = subset.size();
  const std::size_t half = (u + 1) / 2;
  return ones <= half && (u - ones) <= half;
}

void validate_cut(const Graph& g, const CutResult& r,
                  bool require_bisection) {
  BFLY_CHECK(r.sides.size() == g.num_nodes(),
             "cut side vector does not match graph");
  for (const auto s : r.sides) {
    BFLY_CHECK(s <= 1, "cut sides must be 0 or 1");
  }
  BFLY_CHECK(cut_capacity(g, r.sides) == r.capacity,
             "cut capacity does not match side vector");
  if (require_bisection) {
    BFLY_CHECK(is_bisection(r.sides),
               "cut does not satisfy the bisection balance constraint");
  }
}

}  // namespace bfly::cut
