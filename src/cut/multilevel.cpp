#include "cut/multilevel.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <queue>
#include <vector>

#include "core/error.hpp"
#include "core/partition.hpp"
#include "core/rng.hpp"

namespace bfly::cut {

namespace {

// One level of the multilevel hierarchy: a (multi)graph whose parallel
// edges act as integer edge weights, integer node weights, and the map
// from the finer level's nodes onto this one.
struct Level {
  Graph graph;
  std::vector<std::uint32_t> node_weight;
  std::vector<NodeId> parent;  // finer node -> this level's node
};

// Heavy-edge matching: visit nodes in random order; match each unmatched
// node with the unmatched neighbor of maximum connection multiplicity.
Level coarsen(const Graph& g, const std::vector<std::uint32_t>& weight,
              Rng& rng) {
  const NodeId n = g.num_nodes();
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), 0);
  shuffle(order, rng);

  std::vector<NodeId> mate(n, kInvalidNode);
  std::vector<std::uint32_t> conn(n, 0);  // scratch: multiplicity to v
  std::vector<NodeId> touched;
  for (const NodeId v : order) {
    if (mate[v] != kInvalidNode) continue;
    touched.clear();
    for (const NodeId u : g.neighbors(v)) {
      if (mate[u] != kInvalidNode || u == v) continue;
      if (conn[u] == 0) touched.push_back(u);
      ++conn[u];
    }
    NodeId best = kInvalidNode;
    std::uint32_t best_conn = 0;
    for (const NodeId u : touched) {
      if (conn[u] > best_conn) {
        best_conn = conn[u];
        best = u;
      }
      conn[u] = 0;
    }
    if (best != kInvalidNode) {
      mate[v] = best;
      mate[best] = v;
    } else {
      mate[v] = v;  // stays single
    }
  }

  Level level;
  level.parent.assign(n, kInvalidNode);
  NodeId coarse_n = 0;
  for (const NodeId v : order) {
    if (level.parent[v] != kInvalidNode) continue;
    const NodeId m = mate[v];
    level.parent[v] = coarse_n;
    level.parent[m] = coarse_n;  // m == v for singletons
    ++coarse_n;
  }
  level.node_weight.assign(coarse_n, 0);
  for (NodeId v = 0; v < n; ++v) {
    level.node_weight[level.parent[v]] += weight[v];
  }
  GraphBuilder gb(coarse_n);
  for (const auto& [a, b] : g.edges()) {
    const NodeId ca = level.parent[a], cb = level.parent[b];
    if (ca != cb) gb.add_edge(ca, cb);  // parallels accumulate as weight
  }
  level.graph = std::move(gb).build();
  return level;
}

// Weighted FM pass with best-balanced-prefix rollback. Balance: both
// side weights within ceil(W/2) + slack, where slack is the heaviest
// node (coarse nodes cannot split).
bool weighted_fm_pass(const Graph& g,
                      const std::vector<std::uint32_t>& weight,
                      std::vector<std::uint8_t>& sides,
                      std::uint64_t slack) {
  const NodeId n = g.num_nodes();
  std::uint64_t total = 0, w0 = 0;
  for (NodeId v = 0; v < n; ++v) {
    total += weight[v];
    if (sides[v] == 0) w0 += weight[v];
  }
  const std::uint64_t cap = (total + 1) / 2 + slack;

  const auto gain = [&](NodeId v) {
    std::int64_t cross = 0, same = 0;
    for (const NodeId u : g.neighbors(v)) {
      (sides[u] == sides[v] ? same : cross) += 1;
    }
    return cross - same;
  };

  std::size_t cut = cut_capacity(g, sides);
  const std::size_t start_cut = cut;

  using Entry = std::pair<std::int64_t, NodeId>;
  std::priority_queue<Entry> pq[2];
  std::vector<std::uint8_t> locked(n, 0);
  for (NodeId v = 0; v < n; ++v) pq[sides[v]].emplace(gain(v), v);

  std::vector<NodeId> moves;
  const auto balanced = [&] {
    return w0 <= cap && (total - w0) <= cap;
  };
  const bool start_balanced = balanced();
  std::size_t best_cut =
      start_balanced ? cut : std::numeric_limits<std::size_t>::max();
  std::size_t best_prefix = 0;
  bool found_balanced_prefix = false;

  for (NodeId step = 0; step < n; ++step) {
    const int from = w0 >= total - w0 ? 0 : 1;
    NodeId v = kInvalidNode;
    int side_used = from;
    for (int attempt = 0; attempt < 2 && v == kInvalidNode; ++attempt) {
      auto& q = pq[side_used];
      while (!q.empty()) {
        const auto [gn, cand] = q.top();
        if (locked[cand] || sides[cand] != side_used) {
          q.pop();
          continue;
        }
        if (gn != gain(cand)) {
          q.pop();
          q.emplace(gain(cand), cand);
          continue;
        }
        v = cand;
        break;
      }
      if (v == kInvalidNode) side_used = 1 - side_used;
    }
    if (v == kInvalidNode) break;
    pq[side_used].pop();
    cut = static_cast<std::size_t>(
        static_cast<std::int64_t>(cut) - gain(v));
    if (sides[v] == 0) {
      w0 -= weight[v];
    } else {
      w0 += weight[v];
    }
    sides[v] ^= 1;
    locked[v] = 1;
    moves.push_back(v);
    for (const NodeId u : g.neighbors(v)) {
      if (!locked[u]) pq[sides[u]].emplace(gain(u), u);
    }
    if (balanced() && cut < best_cut) {
      best_cut = cut;
      best_prefix = moves.size();
      found_balanced_prefix = true;
    }
  }

  // Keep the best balanced prefix. From a balanced start we only accept
  // strict improvements; from an unbalanced start any balanced prefix is
  // progress even if the cut grew.
  const bool keep = start_balanced ? (found_balanced_prefix &&
                                      best_cut < start_cut)
                                   : found_balanced_prefix;
  const std::size_t prefix = keep ? best_prefix : 0;
  for (std::size_t i = moves.size(); i > prefix; --i) {
    sides[moves[i - 1]] ^= 1;
  }
  // After rolling back to the kept prefix, the tracked cut value must
  // agree with a from-scratch recount of the surviving side vector.
  BFLY_ASSERT_MSG(cut_capacity(g, sides) ==
                      (keep ? best_cut : start_cut),
                  "weighted FM cut tracking drifted from recount");
  return keep;
}

// Greedy region growing on the coarsest graph: BFS from a random seed,
// absorbing nodes until half the total weight is reached.
std::vector<std::uint8_t> grow_initial(const Graph& g,
                                       const std::vector<std::uint32_t>& w,
                                       Rng& rng) {
  const NodeId n = g.num_nodes();
  std::uint64_t total = 0;
  for (const auto x : w) total += x;

  std::vector<std::uint8_t> sides(n, 1);
  std::vector<std::uint8_t> seen(n, 0);
  std::queue<NodeId> q;
  const NodeId seed = static_cast<NodeId>(rng.below(n));
  q.push(seed);
  seen[seed] = 1;
  std::uint64_t grown = 0;
  while (!q.empty() && grown * 2 < total) {
    const NodeId v = q.front();
    q.pop();
    sides[v] = 0;
    grown += w[v];
    for (const NodeId u : g.neighbors(v)) {
      if (!seen[u]) {
        seen[u] = 1;
        q.push(u);
      }
    }
  }
  return sides;
}

}  // namespace

CutResult min_bisection_multilevel(const Graph& g,
                                   const MultilevelOptions& opts) {
  const NodeId n = g.num_nodes();
  BFLY_CHECK(n >= 2, "bisection needs at least two nodes");
  Rng rng(opts.seed);

  CutResult best;
  best.capacity = std::numeric_limits<std::size_t>::max();
  best.exactness = Exactness::kHeuristic;
  best.method = "multilevel";

  for (std::uint32_t cycle = 0; cycle < std::max(1u, opts.cycles); ++cycle) {
    if (opts.cancel != nullptr && opts.cancel->stop_requested()) break;
    // --- coarsen ---------------------------------------------------
    std::vector<Level> hierarchy;
    const Graph* cur = &g;
    std::vector<std::uint32_t> cur_weight(n, 1);
    while (cur->num_nodes() > opts.coarsen_to) {
      Level level = coarsen(*cur, cur_weight, rng);
      if (level.graph.num_nodes() == cur->num_nodes()) break;  // stuck
      cur_weight = level.node_weight;
      hierarchy.push_back(std::move(level));
      cur = &hierarchy.back().graph;
    }

    // --- initial partition on the coarsest graph -------------------
    const Graph& coarsest = hierarchy.empty() ? g : hierarchy.back().graph;
    if (hierarchy.empty()) cur_weight.assign(n, 1);
    const std::vector<std::uint32_t>& cw = cur_weight;
    const std::uint32_t max_w = *std::max_element(cw.begin(), cw.end());

    std::vector<std::uint8_t> sides;
    std::size_t sides_cut = std::numeric_limits<std::size_t>::max();
    for (std::uint32_t t = 0; t < std::max(1u, opts.initial_tries); ++t) {
      auto cand = grow_initial(coarsest, cw, rng);
      for (std::uint32_t p = 0; p < opts.refine_passes; ++p) {
        if (!weighted_fm_pass(coarsest, cw, cand, max_w)) break;
      }
      const std::size_t c = cut_capacity(coarsest, cand);
      if (c < sides_cut) {
        sides_cut = c;
        sides = std::move(cand);
      }
    }

    // --- uncoarsen + refine ----------------------------------------
    for (std::size_t lev = hierarchy.size(); lev-- > 0;) {
      const Level& level = hierarchy[lev];
      const Graph& fine =
          lev == 0 ? g : hierarchy[lev - 1].graph;
      std::vector<std::uint8_t> fine_sides(fine.num_nodes());
      for (NodeId v = 0; v < fine.num_nodes(); ++v) {
        fine_sides[v] = sides[level.parent[v]];
      }
      std::vector<std::uint32_t> fine_weight(fine.num_nodes(), 1);
      if (lev != 0) fine_weight = hierarchy[lev - 1].node_weight;
      const std::uint32_t fine_max =
          *std::max_element(fine_weight.begin(), fine_weight.end());
      const std::uint64_t slack = lev == 0 ? 0 : fine_max;
      for (std::uint32_t p = 0; p < opts.refine_passes; ++p) {
        if (!weighted_fm_pass(fine, fine_weight, fine_sides, slack)) break;
      }
      sides = std::move(fine_sides);
    }

    // At the finest level all weights are 1, so balance means a genuine
    // bisection; run a final strict pass if needed.
    if (!is_bisection(sides)) {
      std::vector<std::uint32_t> unit(n, 1);
      for (std::uint32_t p = 0; p < opts.refine_passes; ++p) {
        weighted_fm_pass(g, unit, sides, 0);
        if (is_bisection(sides)) break;
      }
    }
    if (is_bisection(sides)) {
      const std::size_t c = cut_capacity(g, sides);
      if (opts.incumbent != nullptr) opts.incumbent->publish(c, sides);
      if (c < best.capacity) {
        best.capacity = c;
        best.sides = sides;
      }
    }
    ++best.restarts_completed;
  }
  // A run cancelled before its first cycle legitimately has no cut yet;
  // an uncancelled run must always produce one.
  if (best.restarts_completed == 0 && opts.cancel != nullptr &&
      opts.cancel->stop_requested()) {
    return best;
  }
  BFLY_CHECK(!best.sides.empty(),
             "multilevel failed to produce a bisection");
  if (checked_build()) validate_cut(g, best, /*require_bisection=*/true);
  return best;
}

}  // namespace bfly::cut
