// Kernighan–Lin bisection heuristic (pair-swap passes with best-prefix
// rollback), with random restarts. One of the baselines the paper's exact
// machinery is compared against in bench_solvers.
#pragma once

#include <cstdint>

#include "core/graph.hpp"
#include "core/thread_pool.hpp"
#include "cut/bisection.hpp"
#include "cut/incumbent.hpp"

namespace bfly::cut {

struct KernighanLinOptions {
  std::uint32_t restarts = 8;
  std::uint32_t max_passes = 16;  ///< per restart
  std::uint64_t seed = 0x6b6cu;  // "kl"
  /// Cooperative cancellation, checked between restarts and passes. A
  /// cancelled run still returns the best bisection found so far.
  const CancelToken* cancel = nullptr;
  /// Portfolio hook: every restart's final bisection is offered to the
  /// shared incumbent. Publishing is one-way — the solver's own
  /// trajectory never depends on what other solvers found, which keeps
  /// its result deterministic.
  IncumbentPublisher* incumbent = nullptr;
};

[[nodiscard]] CutResult min_bisection_kernighan_lin(
    const Graph& g, const KernighanLinOptions& opts = {});

}  // namespace bfly::cut
