// Kernighan–Lin bisection heuristic (pair-swap passes with best-prefix
// rollback), with random restarts. One of the baselines the paper's exact
// machinery is compared against in bench_solvers.
#pragma once

#include <cstdint>

#include "core/graph.hpp"
#include "cut/bisection.hpp"

namespace bfly::cut {

struct KernighanLinOptions {
  std::uint32_t restarts = 8;
  std::uint32_t max_passes = 16;  ///< per restart
  std::uint64_t seed = 0x6b6cu;  // "kl"
};

[[nodiscard]] CutResult min_bisection_kernighan_lin(
    const Graph& g, const KernighanLinOptions& opts = {});

}  // namespace bfly::cut
