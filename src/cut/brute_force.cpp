#include "cut/brute_force.hpp"

#include <bit>
#include <limits>
#include <vector>

#include "core/error.hpp"
#include "core/math_util.hpp"

namespace bfly::cut {

namespace {

// Walks side assignments in binary-reflected Gray-code order, flipping one
// node per step. `fix_node0` halves the space using complement symmetry
// (valid when the objective and constraints are complement-invariant).
// visit(sides, capacity, ones, flipped) is called for every visited state;
// flipped is kInvalidNode for the all-zeros start.
template <typename Visit>
void gray_walk(const Graph& g, bool fix_node0, std::uint64_t max_states,
               Visit&& visit) {
  const NodeId n = g.num_nodes();
  const NodeId bits = fix_node0 ? n - 1 : n;
  BFLY_CHECK(bits < 63, "graph too large for exhaustive enumeration");
  const std::uint64_t states = 1ull << bits;
  BFLY_CHECK(states <= max_states,
             "exhaustive enumeration exceeds the configured state limit");

  std::vector<std::uint8_t> sides(n, 0);
  std::size_t capacity = 0;
  std::size_t ones = 0;
  visit(sides, capacity, ones, kInvalidNode);

  for (std::uint64_t i = 1; i < states; ++i) {
    const NodeId v = static_cast<NodeId>(std::countr_zero(i)) +
                     (fix_node0 ? 1u : 0u);
    // Flipping v: each same-side neighbor edge becomes crossing and vice
    // versa.
    std::int64_t same = 0, cross = 0;
    for (const NodeId u : g.neighbors(v)) {
      if (sides[u] == sides[v]) {
        ++same;
      } else {
        ++cross;
      }
    }
    capacity = static_cast<std::size_t>(
        static_cast<std::int64_t>(capacity) + same - cross);
    ones += sides[v] ? -1 : +1;
    sides[v] ^= 1;
    visit(sides, capacity, ones, v);
  }
}

}  // namespace

CutResult min_bisection_exhaustive(const Graph& g,
                                   const BruteForceOptions& opts) {
  const NodeId n = g.num_nodes();
  BFLY_CHECK(n >= 2, "bisection needs at least two nodes");
  const std::size_t half = (n + 1) / 2;

  CutResult best;
  best.capacity = std::numeric_limits<std::size_t>::max();
  best.exactness = Exactness::kExact;
  best.method = "exhaustive";

  gray_walk(g, /*fix_node0=*/true, opts.max_states,
            [&](const std::vector<std::uint8_t>& sides, std::size_t cap,
                std::size_t ones, NodeId /*flipped*/) {
              if (ones > half || (n - ones) > half) return;
              if (cap < best.capacity) {
                best.capacity = cap;
                best.sides = sides;
              }
            });
  return best;
}

CutResult min_cut_bisecting_exhaustive(const Graph& g,
                                       std::span<const NodeId> subset,
                                       const BruteForceOptions& opts) {
  const NodeId n = g.num_nodes();
  BFLY_CHECK(!subset.empty(), "subset must be nonempty");
  std::vector<std::uint8_t> in_subset(n, 0);
  for (const NodeId v : subset) {
    BFLY_CHECK(v < n, "subset node out of range");
    in_subset[v] = 1;
  }
  const std::size_t u = subset.size();
  const std::size_t uhalf = (u + 1) / 2;

  CutResult best;
  best.capacity = std::numeric_limits<std::size_t>::max();
  best.exactness = Exactness::kExact;
  best.method = "exhaustive-subset-bisection";

  std::size_t subset_ones = 0;
  gray_walk(g, /*fix_node0=*/true, opts.max_states,
            [&](const std::vector<std::uint8_t>& sides, std::size_t cap,
                std::size_t /*ones*/, NodeId flipped) {
              if (flipped != kInvalidNode && in_subset[flipped]) {
                subset_ones += sides[flipped] ? +1 : -1;
              }
              if (subset_ones > uhalf || (u - subset_ones) > uhalf) return;
              if (cap < best.capacity) {
                best.capacity = cap;
                best.sides = sides;
              }
            });
  return best;
}

std::vector<CutResult> min_cuts_all_sizes(const Graph& g,
                                          const BruteForceOptions& opts) {
  const NodeId n = g.num_nodes();
  std::vector<CutResult> best(n + 1);
  for (std::size_t k = 0; k <= n; ++k) {
    best[k].capacity = std::numeric_limits<std::size_t>::max();
    best[k].exactness = Exactness::kExact;
    best[k].method = "exhaustive-size-" + std::to_string(k);
  }
  gray_walk(g, /*fix_node0=*/false, opts.max_states,
            [&](const std::vector<std::uint8_t>& sides, std::size_t cap,
                std::size_t ones, NodeId /*flipped*/) {
              auto& b = best[ones];
              if (cap < b.capacity) {
                b.capacity = cap;
                b.sides = sides;
              }
            });
  return best;
}

CutResult min_cut_of_size_exhaustive(const Graph& g, std::size_t k,
                                     const BruteForceOptions& opts) {
  const NodeId n = g.num_nodes();
  BFLY_CHECK(k <= n, "subset size exceeds node count");

  CutResult best;
  best.capacity = std::numeric_limits<std::size_t>::max();
  best.exactness = Exactness::kExact;
  best.method = "exhaustive-size-" + std::to_string(k);

  gray_walk(g, /*fix_node0=*/false, opts.max_states,
            [&](const std::vector<std::uint8_t>& sides, std::size_t cap,
                std::size_t ones, NodeId /*flipped*/) {
              if (ones != k) return;
              if (cap < best.capacity) {
                best.capacity = cap;
                best.sides = sides;
              }
            });
  return best;
}

}  // namespace bfly::cut
