// Exact minimum bisection by exhaustive enumeration.
//
// A binary-reflected Gray code walks all 2^(N-1) side assignments with one
// node fixed (complement symmetry); each step flips a single node, so
// capacity and balance counters update in O(deg). Practical to ~26 nodes;
// beyond that use branch_bound.
#pragma once

#include <cstdint>
#include <span>

#include "core/graph.hpp"
#include "cut/bisection.hpp"

namespace bfly::cut {

struct BruteForceOptions {
  /// Refuse to enumerate more states than this (guards accidental blowups).
  std::uint64_t max_states = 1ull << 28;
};

/// Exact BW(G): minimum capacity over all bisections.
[[nodiscard]] CutResult min_bisection_exhaustive(
    const Graph& g, const BruteForceOptions& opts = {});

/// Exact BW(G, U): minimum capacity over all cuts that bisect the subset U
/// (the cut itself need not be balanced) — paper Section 2.1.
[[nodiscard]] CutResult min_cut_bisecting_exhaustive(
    const Graph& g, std::span<const NodeId> subset,
    const BruteForceOptions& opts = {});

/// Exact edge-expansion value EE(G, k) = min over |S| = k of C(S, S̄)
/// (Section 1.3), same Gray-code engine with a cardinality filter.
[[nodiscard]] CutResult min_cut_of_size_exhaustive(
    const Graph& g, std::size_t k, const BruteForceOptions& opts = {});

/// One sweep computing min_cut_of_size for EVERY k in [0, N] (entry k of
/// the result); vastly cheaper than N separate sweeps when tabulating the
/// whole edge-expansion function EE(G, ·).
[[nodiscard]] std::vector<CutResult> min_cuts_all_sizes(
    const Graph& g, const BruteForceOptions& opts = {});

}  // namespace bfly::cut
