#include "cut/compactness.hpp"

#include <bit>
#include <limits>

#include "core/error.hpp"
#include "core/partition.hpp"

namespace bfly::cut {

bool is_compact_exhaustive(const Graph& g, std::span<const NodeId> subset,
                           std::uint64_t max_states) {
  const NodeId n = g.num_nodes();
  BFLY_CHECK(n >= 1 && n < 63, "graph too large for exhaustive check");
  const std::uint64_t states = 1ull << (n - 1);
  BFLY_CHECK(states <= max_states, "state space exceeds limit");

  std::vector<std::uint8_t> sides(n, 0);
  for (std::uint64_t bits = 0; bits < states; ++bits) {
    for (NodeId v = 1; v < n; ++v) {
      sides[v] = static_cast<std::uint8_t>((bits >> (v - 1)) & 1u);
    }
    sides[0] = 0;
    const std::size_t cap = cut_capacity(g, sides);

    auto with_subset_on = [&](std::uint8_t side) {
      std::vector<std::uint8_t> s2 = sides;
      for (const NodeId v : subset) s2[v] = side;
      return cut_capacity(g, s2);
    };
    if (with_subset_on(0) > cap && with_subset_on(1) > cap) return false;
  }
  return true;
}

bool is_amenable_exhaustive(const Graph& g, std::span<const NodeId> subset,
                            const std::vector<std::uint8_t>& sides) {
  const std::size_t u = subset.size();
  BFLY_CHECK(u >= 1 && u < 26, "subset too large for exhaustive check");
  BFLY_CHECK(sides.size() == g.num_nodes(), "side vector size mismatch");
  const std::size_t base_cap = cut_capacity(g, sides);

  // best[k] = min capacity over assignments with k subset nodes on side 0.
  std::vector<std::size_t> best(u + 1,
                                std::numeric_limits<std::size_t>::max());
  std::vector<std::uint8_t> s2 = sides;
  const std::uint64_t states = 1ull << u;
  for (std::uint64_t bits = 0; bits < states; ++bits) {
    std::size_t zeros = 0;
    for (std::size_t i = 0; i < u; ++i) {
      const std::uint8_t side = static_cast<std::uint8_t>((bits >> i) & 1u);
      s2[subset[i]] = side;
      zeros += side == 0;
    }
    const std::size_t cap = cut_capacity(g, s2);
    best[zeros] = std::min(best[zeros], cap);
  }
  for (std::size_t k = 0; k <= u; ++k) {
    if (best[k] > base_cap) return false;
  }
  return true;
}

std::vector<std::uint8_t> push_tail_levels(const topo::Butterfly& bf,
                                           std::vector<std::uint8_t> sides) {
  BFLY_CHECK(sides.size() == bf.num_nodes(), "side vector size mismatch");
  // Majority side of level 0 (the paper's WLOG |Ā∩L0| <= |A∩L0|).
  std::size_t on1 = 0;
  for (std::uint32_t w = 0; w < bf.n(); ++w) on1 += sides[bf.node(w, 0)];
  const std::uint8_t majority = on1 * 2 >= bf.n() ? 1 : 0;
  for (std::uint32_t lvl = 1; lvl <= bf.dims(); ++lvl) {
    for (std::uint32_t w = 0; w < bf.n(); ++w) {
      sides[bf.node(w, lvl)] = majority;
    }
  }
  return sides;
}

}  // namespace bfly::cut
