// Vertex bisection (arXiv 2211.03206): over balanced partitions (A, B)
// of the nodes, minimize the number of B-nodes adjacent to A — i.e. the
// node boundary |N(A)| of the A side. This is the vertex analogue of
// the paper's bisection width and the scenario family where the
// random d-regular corpus competes.
//
// The heuristic here rides the existing edge-bisection portfolio: edge
// and vertex objectives are strongly correlated on bounded-degree
// graphs (every crossing edge contributes a boundary node, every
// boundary node at most deg crossing edges), so the portfolio's
// balanced witness is a good vertex witness after choosing the cheaper
// orientation. The result is then scored against a FLOW certificate:
// the maximum number of vertex-disjoint paths from A to B \ N(A) is a
// certified lower bound on ANY separator between those blocks, so
// width == flow proves the returned boundary is a minimum separator
// for its split (`flow_certified`). The certificate is per-witness; no
// global optimality is claimed (exactness stays kHeuristic).
#pragma once

#include <cstdint>
#include <vector>

#include "core/graph.hpp"
#include "core/types.hpp"
#include "cut/portfolio.hpp"

namespace bfly::cut {

struct VertexBisectionResult {
  /// Balanced 0/1 partition; the boundary is counted on side
  /// `boundary_side` (the cheaper orientation).
  std::vector<std::uint8_t> sides;
  std::uint8_t boundary_side = 0;
  /// |N(boundary side)|, the vertex bisection objective.
  std::size_t width = 0;
  /// Flow lower bound: minimum vertex separator between the boundary
  /// side and the far interior (<= width always).
  std::int64_t certified_lower = 0;
  /// width == certified_lower: the witness boundary is a provably
  /// minimum separator for this split.
  bool flow_certified = false;
  Exactness exactness = Exactness::kHeuristic;
  std::string method;
};

/// |N(S)| where S = {v : sides[v] == side}.
[[nodiscard]] std::size_t vertex_boundary_width(
    const Graph& g, const std::vector<std::uint8_t>& sides,
    std::uint8_t side);

/// Vertex bisection via the edge-bisection portfolio plus flow
/// certification. Deterministic for fixed options (inherits the
/// portfolio's determinism contract).
[[nodiscard]] VertexBisectionResult vertex_bisection_portfolio(
    const Graph& g, const PortfolioOptions& opts = {});

/// Structural self-check: sides balanced, width recounts, certificate
/// consistent. Throws PreconditionError on violation.
void validate_vertex_bisection(const Graph& g,
                               const VertexBisectionResult& result);

}  // namespace bfly::cut
