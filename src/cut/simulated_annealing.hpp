// Simulated-annealing bisection: balance-preserving cross swaps under a
// geometric cooling schedule, with restarts. A deliberately generic
// baseline against the paper's structure-aware constructions.
#pragma once

#include <cstdint>

#include "core/graph.hpp"
#include "core/thread_pool.hpp"
#include "cut/bisection.hpp"
#include "cut/incumbent.hpp"

namespace bfly::cut {

struct SimulatedAnnealingOptions {
  std::uint32_t restarts = 4;
  std::uint32_t steps_per_temperature = 0;  ///< 0 = 8 * num_nodes
  double initial_temperature = 0.0;         ///< 0 = max_degree
  double final_temperature = 0.05;
  double cooling = 0.95;
  std::uint64_t seed = 0x5au;  // "sa"
  /// Cooperative cancellation, checked between temperature levels and
  /// restarts. A cancelled run returns the best bisection found so far.
  const CancelToken* cancel = nullptr;
  /// Portfolio hook: improvements are published to the shared incumbent
  /// as they are found (one-way; never read back).
  IncumbentPublisher* incumbent = nullptr;
};

[[nodiscard]] CutResult min_bisection_simulated_annealing(
    const Graph& g, const SimulatedAnnealingOptions& opts = {});

}  // namespace bfly::cut
