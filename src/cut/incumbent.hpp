// Shared incumbent bound for the parallel solver portfolio.
//
// Heuristic solvers racing on the same graph publish every improvement
// they find here; the exact branch-and-bound engine reads the capacity
// cell as a live pruning bound. The capacity is a relaxed atomic (a
// monotone watermark — stale reads only cost pruning opportunities, never
// correctness) while the authoritative capacity and the side vector
// snapshot live under the annotated mutex (DESIGN.md §12).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/error.hpp"
#include "core/sync.hpp"

namespace bfly::cut {

/// The best bisection found so far by any solver in a portfolio run.
class SharedIncumbent {
 public:
  static constexpr std::size_t kUnset =
      std::numeric_limits<std::size_t>::max();

  SharedIncumbent() = default;
  SharedIncumbent(const SharedIncumbent&) = delete;
  SharedIncumbent& operator=(const SharedIncumbent&) = delete;

  /// Records (capacity, sides) iff it strictly improves the incumbent.
  /// Returns true when the incumbent was updated.
  bool publish(std::size_t capacity,
               const std::vector<std::uint8_t>& sides) {
    // Fast reject without the lock; the watermark only decreases, so a
    // stale read can only let a soon-to-lose candidate through to the
    // authoritative check below.
    if (capacity >= capacity_.load(std::memory_order_relaxed)) return false;
    const sync::MutexLock lock(mutex_);
    if (capacity >= best_capacity_) return false;
    // All solvers in one portfolio race the same graph, so every
    // published side vector must agree on the node count.
    BFLY_CHECK(sides_.empty() || sides.size() == sides_.size(),
               "published side vectors must agree on node count");
    best_capacity_ = capacity;
    sides_ = sides;
    capacity_.store(capacity, std::memory_order_relaxed);
    return true;
  }

  /// Best capacity published so far (kUnset when nothing published).
  [[nodiscard]] std::size_t capacity() const noexcept {
    return capacity_.load(std::memory_order_relaxed);
  }

  /// The atomic capacity cell, for solvers that want to poll it in an
  /// inner loop (branch-and-bound's live pruning bound).
  [[nodiscard]] const std::atomic<std::size_t>& capacity_cell()
      const noexcept {
    return capacity_;
  }

  /// Snapshot of the incumbent side vector (empty when unset).
  [[nodiscard]] std::vector<std::uint8_t> sides() const {
    const sync::MutexLock lock(mutex_);
    return sides_;
  }

 private:
  std::atomic<std::size_t> capacity_{kUnset};
  mutable sync::Mutex mutex_;
  // Authoritative copies: the atomic cell above is the lock-free shadow
  // published last, so readers of the cell never see a capacity without
  // a matching side vector already stored here.
  std::size_t best_capacity_ BFLY_GUARDED_BY(mutex_) = kUnset;
  std::vector<std::uint8_t> sides_ BFLY_GUARDED_BY(mutex_);
};

/// Per-solver handle onto a SharedIncumbent: forwards publishes and
/// counts how many of them improved the incumbent, so portfolio telemetry
/// can attribute improvements to solvers. A null target turns publishing
/// into a no-op, letting solvers take the hook unconditionally.
class IncumbentPublisher {
 public:
  IncumbentPublisher() = default;
  explicit IncumbentPublisher(SharedIncumbent* target) : target_(target) {}

  bool publish(std::size_t capacity,
               const std::vector<std::uint8_t>& sides) {
    if (target_ == nullptr) return false;
    const bool improved = target_->publish(capacity, sides);
    if (improved) improvements_.fetch_add(1, std::memory_order_relaxed);
    return improved;
  }

  /// Number of publishes that improved the incumbent. Stable once the
  /// publishing solver has been joined.
  [[nodiscard]] std::uint32_t improvements() const noexcept {
    return improvements_.load(std::memory_order_relaxed);
  }

 private:
  SharedIncumbent* target_ = nullptr;
  std::atomic<std::uint32_t> improvements_{0};
};

}  // namespace bfly::cut
