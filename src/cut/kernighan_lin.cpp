#include "cut/kernighan_lin.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <vector>

#include "core/error.hpp"
#include "core/partition.hpp"
#include "core/rng.hpp"

namespace bfly::cut {

namespace {

// One KL pass: greedily pick the best swap among unlocked cross pairs,
// apply it tentatively, and finally roll back to the best prefix.
// Returns true if the pass improved the capacity.
bool kl_pass(Partition& part) {
  const Graph& g = part.graph();
  const NodeId n = g.num_nodes();
  const std::size_t start_cap = part.cut_capacity();

  std::vector<std::uint8_t> locked(n, 0);
  std::vector<NodeId> swap_a, swap_b;
  std::size_t best_cap = start_cap;
  std::size_t best_prefix = 0;

  const std::size_t pairs =
      std::min(part.side_size(0), part.side_size(1));
  for (std::size_t step = 0; step < pairs; ++step) {
    // Find the unlocked cross pair with the largest combined gain.
    std::int64_t best_gain = std::numeric_limits<std::int64_t>::min();
    NodeId pa = kInvalidNode, pb = kInvalidNode;
    for (NodeId u = 0; u < n; ++u) {
      if (locked[u] || part.side(u) != 0) continue;
      const std::int64_t gu = part.gain(u);
      for (NodeId v = 0; v < n; ++v) {
        if (locked[v] || part.side(v) != 1) continue;
        const std::int64_t w =
            static_cast<std::int64_t>(g.edge_multiplicity(u, v));
        const std::int64_t gain = gu + part.gain(v) - 2 * w;
        if (gain > best_gain) {
          best_gain = gain;
          pa = u;
          pb = v;
        }
      }
    }
    if (pa == kInvalidNode) break;
    part.swap_across(pa, pb);
    locked[pa] = locked[pb] = 1;
    swap_a.push_back(pa);
    swap_b.push_back(pb);
    if (part.cut_capacity() < best_cap) {
      best_cap = part.cut_capacity();
      best_prefix = swap_a.size();
    }
  }

  // Roll back swaps beyond the best prefix.
  for (std::size_t i = swap_a.size(); i > best_prefix; --i) {
    part.swap_across(swap_b[i - 1], swap_a[i - 1]);
  }
  BFLY_ASSERT(part.cut_capacity() == best_cap);
  BFLY_ASSERT_MSG(part.recompute_capacity() == part.cut_capacity(),
                  "incremental capacity drifted from recount");
  return best_cap < start_cap;
}

std::vector<std::uint8_t> random_balanced_sides(NodeId n, Rng& rng) {
  std::vector<NodeId> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  shuffle(perm, rng);
  std::vector<std::uint8_t> sides(n, 0);
  for (NodeId i = n / 2; i < n; ++i) sides[perm[i]] = 1;
  return sides;
}

}  // namespace

CutResult min_bisection_kernighan_lin(const Graph& g,
                                      const KernighanLinOptions& opts) {
  const NodeId n = g.num_nodes();
  BFLY_CHECK(n >= 2, "bisection needs at least two nodes");
  Rng rng(opts.seed);

  CutResult best;
  best.capacity = std::numeric_limits<std::size_t>::max();
  best.exactness = Exactness::kHeuristic;
  best.method = "kernighan-lin";

  for (std::uint32_t r = 0; r < std::max(1u, opts.restarts); ++r) {
    if (opts.cancel != nullptr && opts.cancel->stop_requested()) break;
    Partition part(g, random_balanced_sides(n, rng));
    for (std::uint32_t pass = 0; pass < opts.max_passes; ++pass) {
      if (!kl_pass(part)) break;
      if (opts.cancel != nullptr && opts.cancel->stop_requested()) break;
    }
    ++best.restarts_completed;
    if (opts.incumbent != nullptr) {
      opts.incumbent->publish(part.cut_capacity(), part.sides());
    }
    if (part.cut_capacity() < best.capacity) {
      best.capacity = part.cut_capacity();
      best.sides = part.sides();
    }
  }
  if (checked_build() && !best.sides.empty()) {
    validate_cut(g, best, /*require_bisection=*/true);
  }
  return best;
}

}  // namespace bfly::cut
