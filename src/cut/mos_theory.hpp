// Exact M2-bisection width of the mesh of stars (paper Section 2.2).
//
// Lemma 2.17 is an *equality*: among cuts of MOS_{j,j} that bisect M2 and
// put a nodes of M1 and b nodes of M3 on side A, the minimum capacity has
// the closed form implemented by mos_m2_cut_capacity. Minimizing it over
// the integer (a, b) grid therefore computes BW(MOS_{j,j}, M2) exactly —
// for any j, including sizes whose graphs could never be materialized.
// Lemma 2.18/2.19: the normalized value converges to sqrt(2) - 1 from
// above, which is the constant in the paper's headline Theorem 2.20.
#pragma once

#include <cstdint>

#include "cut/bisection.hpp"
#include "topology/mesh_of_stars.hpp"

namespace bfly::cut {

/// The paper's f(x, y) = x + y - min(1, 2xy) on D = {0<=x,y<=1, x+y>=1}
/// (Lemma 2.17/2.18). Global minimum f(1/sqrt2, 1/sqrt2) = sqrt2 - 1.
[[nodiscard]] double mos_f(double x, double y);

/// Exact minimum capacity over cuts of MOS_{j,j} that bisect M2 with
/// |A ∩ M1| = a and |A ∩ M3| = b. Requires j even (so j^2/2 is integral,
/// as in Lemma 2.17).
[[nodiscard]] std::uint64_t mos_m2_cut_capacity(std::uint32_t j,
                                                std::uint32_t a,
                                                std::uint32_t b);

struct MosM2Bisection {
  std::uint64_t capacity = 0;   ///< exact BW(MOS_{j,j}, M2)
  std::uint32_t a = 0, b = 0;   ///< optimal |A ∩ M1|, |A ∩ M3|
  double normalized = 0.0;      ///< capacity / j^2 — converges to sqrt2-1
};

/// Exact BW(MOS_{j,j}, M2) by minimizing the closed form over the integer
/// grid. O(j) time: for fixed a the capacity is piecewise linear in b, so
/// only hyperbola breakpoints and endpoints need evaluation.
[[nodiscard]] MosM2Bisection mos_m2_bisection_value(std::uint32_t j);

/// Constructs an actual side assignment of MOS_{j,j} achieving
/// mos_m2_bisection_value (j = k = mos.j() even).
[[nodiscard]] CutResult mos_m2_bisection_cut(const topo::MeshOfStars& mos);

/// Lemma 2.16's upper-bound coefficient 2*BW(MOS_{j,j},M2)/j^2 + 4/j:
/// BW(Bn)/n is at most this for any even j with j^3 + 2j - 1 <= log n.
[[nodiscard]] double lemma216_upper_bound_coefficient(std::uint32_t j);

/// Smallest log n for which Lemma 2.16 admits this j.
[[nodiscard]] std::uint64_t lemma216_min_log_n(std::uint32_t j);

}  // namespace bfly::cut
