// Parallel portfolio bisection solver.
//
// Races the library's heuristic engines (spectral+FM, multilevel, FM, KL,
// SA) and optionally the exact branch-and-bound engine on the same graph,
// with bounded concurrency. The solvers cooperate through two channels:
//
//   * a SharedIncumbent — every heuristic publishes each improvement it
//     finds; branch-and-bound reads the capacity cell as a live pruning
//     bound, so a good heuristic cut shrinks the exact search tree even
//     when both run concurrently (and, under serial execution, the
//     heuristics finish first and hand branch-and-bound a tight bound);
//   * a CancelToken — once branch-and-bound proves optimality it cancels
//     the still-running heuristics (their work can no longer change the
//     winning capacity), and an optional wall-clock budget arms the same
//     token as a deadline.
//
// Determinism contract: with no time budget, the same graph + master seed
// + thread count (indeed, ANY thread count) reproduce the identical
// winning capacity. Each solver's per-task seed is derived from the
// master seed in a fixed order, publishing is one-way (no heuristic ever
// reads the incumbent), and branch-and-bound's live bound only prunes —
// its completed searches prove the same optimum no matter when bounds
// arrived. Cancellation fires only after optimality is proven, so it
// cannot change the winner's capacity either. The winning *cut* may
// differ across thread counts only when several solvers tie on capacity
// and a cancelled heuristic stopped before producing its tying cut; the
// reported capacity is unaffected. With a time budget, determinism of
// the capacity is guaranteed only on runs where branch-and-bound
// completes inside the budget.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/graph.hpp"
#include "cut/bisection.hpp"
#include "cut/branch_bound.hpp"
#include "cut/fiduccia_mattheyses.hpp"
#include "cut/kernighan_lin.hpp"
#include "cut/multilevel.hpp"
#include "cut/simulated_annealing.hpp"
#include "cut/spectral_bisection.hpp"

namespace bfly::cut {

/// The per-task seeds a portfolio run derives from its master seed, in a
/// fixed order independent of thread count or scheduling. Exposed so
/// tests can replay an individual solver with exactly the seed the
/// portfolio used.
struct PortfolioSeeds {
  std::uint64_t spectral = 0;
  std::uint64_t multilevel = 0;
  std::uint64_t fm = 0;
  std::uint64_t kl = 0;
  std::uint64_t sa = 0;
};

[[nodiscard]] PortfolioSeeds derive_portfolio_seeds(
    std::uint64_t master_seed);

struct PortfolioOptions {
  std::uint64_t master_seed = 0xb15ec7ull;  // "bisect"
  /// Concurrency across solver tasks (0 = default_thread_count(), 1 =
  /// serial in fixed order). The winning capacity does not depend on it.
  unsigned num_threads = 0;
  /// Race the exact engine too. When it finishes, the portfolio result
  /// is tagged kExact and the remaining heuristics are cancelled.
  bool run_branch_bound = true;
  /// Safety valve for instances beyond exact reach: abort the exact
  /// search after this many nodes (0 = unlimited), degrading it to a
  /// heuristic participant.
  std::uint64_t branch_bound_node_limit = 0;
  /// Wall-clock budget in seconds (0 = none). Arms the shared token's
  /// deadline: heuristics stop at the next restart boundary, the exact
  /// engine within a few thousand search nodes. See the determinism note
  /// in the header comment.
  double time_budget_seconds = 0.0;
  /// Per-solver tuning. The seed fields (and fm.num_threads, which is
  /// forced to 1 — the portfolio already owns the parallelism) are
  /// overridden; cancel/incumbent hooks are installed by the portfolio.
  KernighanLinOptions kl;
  FiducciaMattheysesOptions fm;
  SimulatedAnnealingOptions sa;
  MultilevelOptions multilevel;
  SpectralBisectionOptions spectral;
};

/// What one solver task did during a portfolio run.
struct SolverTelemetry {
  std::string solver;
  /// Best capacity this solver found (SIZE_MAX if it produced nothing,
  /// e.g. cancelled before its first work unit, or branch-and-bound
  /// proving the incumbent optimal without beating it).
  std::size_t capacity = static_cast<std::size_t>(-1);
  Exactness exactness = Exactness::kHeuristic;
  std::uint32_t restarts_completed = 0;
  std::uint32_t improvements_published = 0;
  double wall_seconds = 0.0;
  bool cancelled = false;  ///< stopped before its planned work finished
};

struct PortfolioResult {
  /// The winning bisection; method is "portfolio/<solver>". Tagged
  /// kExact iff branch-and-bound completed its search.
  CutResult best;
  std::string winner;
  bool proved_optimal = false;  ///< branch-and-bound finished
  std::vector<SolverTelemetry> telemetry;  ///< fixed solver order
  double wall_seconds = 0.0;
};

[[nodiscard]] PortfolioResult min_bisection_portfolio(
    const Graph& g, const PortfolioOptions& opts = {});

/// Renders the per-solver telemetry as an io::Table.
void print_portfolio_telemetry(const PortfolioResult& result,
                               std::ostream& os);

}  // namespace bfly::cut
