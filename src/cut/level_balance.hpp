// Constructive Lemma 2.12(1): from any bisection of Bn, derive a cut of
// no larger capacity that bisects some level L_i.
//
// The paper's proof picks a boundary where the per-level counts of A
// straddle n/2 and uses the 4-cycle structure of boundary edges: in a
// 4-cycle v-u-v'-u'-v with strictly more A-nodes on the upper level,
// either both lower nodes are outside A (then moving one upper A-node
// down-and-out removes two crossing edges and adds at most two) or both
// upper nodes are in A (symmetrically, move a lower node in). Each move
// shrinks the imbalance by one without increasing capacity, terminating
// with a bisected level.
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.hpp"
#include "topology/butterfly.hpp"

namespace bfly::cut {

struct LevelBalanceResult {
  std::vector<std::uint8_t> sides;
  std::uint32_t bisected_level = 0;  ///< some L_i the output cut bisects
  std::size_t capacity = 0;
  std::size_t moves = 0;  ///< 4-cycle moves performed
};

/// Applies the Lemma 2.12(1) transformation. `sides` must be a bisection
/// of Bn. The result satisfies capacity <= the input capacity and
/// bisects level `bisected_level`.
[[nodiscard]] LevelBalanceResult balance_some_level(
    const topo::Butterfly& bf, const std::vector<std::uint8_t>& sides);

}  // namespace bfly::cut
