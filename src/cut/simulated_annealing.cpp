#include "cut/simulated_annealing.hpp"

#include <cmath>
#include <limits>
#include <numeric>
#include <vector>

#include "core/error.hpp"
#include "core/partition.hpp"
#include "core/rng.hpp"

namespace bfly::cut {

CutResult min_bisection_simulated_annealing(
    const Graph& g, const SimulatedAnnealingOptions& opts) {
  const NodeId n = g.num_nodes();
  BFLY_CHECK(n >= 2, "bisection needs at least two nodes");
  Rng rng(opts.seed);

  const std::uint32_t steps = opts.steps_per_temperature == 0
                                  ? 8 * n
                                  : opts.steps_per_temperature;
  const double t0 = opts.initial_temperature == 0.0
                        ? static_cast<double>(g.max_degree())
                        : opts.initial_temperature;

  CutResult best;
  best.capacity = std::numeric_limits<std::size_t>::max();
  best.exactness = Exactness::kHeuristic;
  best.method = "simulated-annealing";

  std::vector<NodeId> perm(n);
  std::iota(perm.begin(), perm.end(), 0);

  for (std::uint32_t r = 0; r < std::max(1u, opts.restarts); ++r) {
    if (opts.cancel != nullptr && opts.cancel->stop_requested()) break;
    shuffle(perm, rng);
    std::vector<std::uint8_t> sides(n, 0);
    for (NodeId i = n / 2; i < n; ++i) sides[perm[i]] = 1;
    Partition part(g, sides);

    // Maintain per-side node lists for O(1) random cross-pair picks; the
    // lists track positions so swaps stay O(1).
    std::vector<NodeId> side_nodes[2];
    for (const NodeId v : perm) side_nodes[part.side(v)].push_back(v);

    for (double temp = t0; temp > opts.final_temperature;
         temp *= opts.cooling) {
      if (opts.cancel != nullptr && opts.cancel->stop_requested()) break;
      for (std::uint32_t s = 0; s < steps; ++s) {
        auto& s0 = side_nodes[0];
        auto& s1 = side_nodes[1];
        const std::size_t i0 = rng.below(s0.size());
        const std::size_t i1 = rng.below(s1.size());
        const NodeId u = s0[i0];
        const NodeId v = s1[i1];
        const std::int64_t w =
            static_cast<std::int64_t>(g.edge_multiplicity(u, v));
        const std::int64_t delta = -(part.gain(u) + part.gain(v) - 2 * w);
        if (delta <= 0 ||
            rng.uniform() < std::exp(-static_cast<double>(delta) / temp)) {
          part.swap_across(u, v);
          std::swap(s0[i0], s1[i1]);
        }
      }
      if (part.cut_capacity() < best.capacity && part.is_bisection()) {
        best.capacity = part.cut_capacity();
        best.sides = part.sides();
        if (opts.incumbent != nullptr) {
          opts.incumbent->publish(best.capacity, best.sides);
        }
      }
    }
    if (part.cut_capacity() < best.capacity && part.is_bisection()) {
      best.capacity = part.cut_capacity();
      best.sides = part.sides();
      if (opts.incumbent != nullptr) {
        opts.incumbent->publish(best.capacity, best.sides);
      }
    }
    ++best.restarts_completed;
  }
  return best;
}

}  // namespace bfly::cut
