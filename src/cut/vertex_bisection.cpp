#include "cut/vertex_bisection.hpp"

#include <algorithm>

#include "cert/expansion_certificate.hpp"
#include "core/error.hpp"

namespace bfly::cut {

std::size_t vertex_boundary_width(const Graph& g,
                                  const std::vector<std::uint8_t>& sides,
                                  std::uint8_t side) {
  BFLY_CHECK(sides.size() == g.num_nodes(), "sides size mismatch");
  std::size_t width = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (sides[v] == side) continue;
    for (const NodeId u : g.neighbors(v)) {
      if (sides[u] == side) {
        ++width;
        break;
      }
    }
  }
  return width;
}

VertexBisectionResult vertex_bisection_portfolio(
    const Graph& g, const PortfolioOptions& opts) {
  const PortfolioResult pr = min_bisection_portfolio(g, opts);
  BFLY_CHECK(!pr.best.sides.empty(),
             "portfolio produced no vertex-bisection witness");
  VertexBisectionResult r;
  r.sides = pr.best.sides;
  const std::size_t w0 = vertex_boundary_width(g, r.sides, 0);
  const std::size_t w1 = vertex_boundary_width(g, r.sides, 1);
  r.boundary_side = w1 < w0 ? 1 : 0;
  r.width = std::min(w0, w1);
  r.method = "vertex/" + pr.best.method;
  std::vector<NodeId> s_nodes;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (r.sides[v] == r.boundary_side) s_nodes.push_back(v);
  }
  const cert::NodeBoundaryCertificate nb = cert::certify_node_boundary(
      g, s_nodes, static_cast<std::int64_t>(r.width));
  r.certified_lower = nb.flow;
  r.flow_certified = nb.certified && nb.tight;
  return r;
}

void validate_vertex_bisection(const Graph& g,
                               const VertexBisectionResult& result) {
  BFLY_CHECK(is_bisection(result.sides), "sides are not a bisection");
  BFLY_CHECK(result.sides.size() == g.num_nodes(), "sides size mismatch");
  BFLY_CHECK(result.width == vertex_boundary_width(g, result.sides,
                                                   result.boundary_side),
             "recorded width does not recount");
  BFLY_CHECK(result.certified_lower >= 0 &&
                 result.certified_lower <=
                     static_cast<std::int64_t>(result.width),
             "flow bound must lower-bound the width");
  BFLY_CHECK(!result.flow_certified ||
                 result.certified_lower ==
                     static_cast<std::int64_t>(result.width),
             "certified results must meet their flow bound");
}

}  // namespace bfly::cut
