#include "cut/portfolio.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <limits>
#include <ostream>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "core/sync.hpp"
#include "core/thread_pool.hpp"
#include "cut/incumbent.hpp"
#include "io/table.hpp"
#include "robust/fault_injection.hpp"

namespace bfly::cut {

namespace {

constexpr std::size_t kNoCapacity = std::numeric_limits<std::size_t>::max();

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

PortfolioSeeds derive_portfolio_seeds(std::uint64_t master_seed) {
  // Fixed derivation order — part of the determinism contract; tests
  // replay individual solvers with these seeds.
  SplitMix64 sm(master_seed);
  PortfolioSeeds s;
  s.spectral = sm.next();
  s.multilevel = sm.next();
  s.fm = sm.next();
  s.kl = sm.next();
  s.sa = sm.next();
  return s;
}

PortfolioResult min_bisection_portfolio(const Graph& g,
                                        const PortfolioOptions& opts) {
  BFLY_CHECK(g.num_nodes() >= 2, "bisection needs at least two nodes");
  // Allocation-failure fault point: the portfolio's task table, shared
  // incumbent, and publisher pool are modeled as failing here.
  BFLY_FAULT_POINT(kAlloc);
  const auto t_start = std::chrono::steady_clock::now();
  const PortfolioSeeds seeds = derive_portfolio_seeds(opts.master_seed);

  SharedIncumbent incumbent;
  CancelToken token;
  token.set_deadline_after(opts.time_budget_seconds);

  // Heuristics first: under bounded (or serial) concurrency they publish
  // incumbents before the exact engine starts, which is exactly the
  // bound it wants for pruning.
  struct Task {
    std::string name;
    std::uint32_t planned_units;  // restarts/cycles; 1 for single-shot
    std::function<CutResult(IncumbentPublisher&)> run;
  };
  std::vector<Task> tasks;

  {
    SpectralBisectionOptions o = opts.spectral;
    o.seed = seeds.spectral;
    o.cancel = &token;
    tasks.push_back({"spectral", 1, [&g, o](IncumbentPublisher& pub) {
                       auto r = min_bisection_spectral(g, o);
                       r.restarts_completed = 1;
                       pub.publish(r.capacity, r.sides);
                       return r;
                     }});
  }
  {
    MultilevelOptions o = opts.multilevel;
    o.seed = seeds.multilevel;
    o.cancel = &token;
    tasks.push_back({"multilevel", std::max(1u, o.cycles),
                     [&g, o](IncumbentPublisher& pub) {
                       MultilevelOptions local = o;
                       local.incumbent = &pub;
                       return min_bisection_multilevel(g, local);
                     }});
  }
  {
    FiducciaMattheysesOptions o = opts.fm;
    o.seed = seeds.fm;
    o.cancel = &token;
    o.num_threads = 1;  // the portfolio owns the parallelism
    tasks.push_back({"fm", std::max(1u, o.restarts),
                     [&g, o](IncumbentPublisher& pub) {
                       FiducciaMattheysesOptions local = o;
                       local.incumbent = &pub;
                       return min_bisection_fiduccia_mattheyses(g, local);
                     }});
  }
  {
    KernighanLinOptions o = opts.kl;
    o.seed = seeds.kl;
    o.cancel = &token;
    tasks.push_back({"kl", std::max(1u, o.restarts),
                     [&g, o](IncumbentPublisher& pub) {
                       KernighanLinOptions local = o;
                       local.incumbent = &pub;
                       return min_bisection_kernighan_lin(g, local);
                     }});
  }
  {
    SimulatedAnnealingOptions o = opts.sa;
    o.seed = seeds.sa;
    o.cancel = &token;
    tasks.push_back({"sa", std::max(1u, o.restarts),
                     [&g, o](IncumbentPublisher& pub) {
                       SimulatedAnnealingOptions local = o;
                       local.incumbent = &pub;
                       return min_bisection_simulated_annealing(g, local);
                     }});
  }
  // Written by the bb task on its own thread, read after wait(); the
  // cell's lock makes that explicit rather than leaning on the join
  // barrier alone (the analysis cannot see through joins).
  sync::GuardedCell<bool> bb_completed;
  if (opts.run_branch_bound) {
    tasks.push_back(
        {"branch-bound", 1,
         [&g, &opts, &incumbent, &token, &bb_completed](
             IncumbentPublisher& pub) {
           BranchBoundOptions o;
           o.node_limit = opts.branch_bound_node_limit;
           o.live_bound = &incumbent.capacity_cell();
           o.cancel = &token;
           auto r = min_bisection_branch_bound(g, o);
           if (!r.sides.empty()) pub.publish(r.capacity, r.sides);
           if (r.exactness == Exactness::kExact) {
             bb_completed.store(true);
             // Optimality is proven: no further heuristic work can
             // change the winning capacity.
             token.request_stop();
           }
           return r;
         }});
  }

  const std::size_t num_tasks = tasks.size();
  std::vector<CutResult> results(num_tasks);
  // deque: IncumbentPublisher holds an atomic and cannot relocate.
  std::deque<IncumbentPublisher> publishers;
  for (std::size_t i = 0; i < num_tasks; ++i) {
    publishers.emplace_back(&incumbent);
  }
  std::vector<double> wall(num_tasks, 0.0);

  TaskGroup group(opts.num_threads);
  for (std::size_t i = 0; i < num_tasks; ++i) {
    // Each task writes only its own slot of results[]/wall[] (disjoint
    // indices, published to this thread by the wait() join), so the
    // vectors need no lock of their own.
    group.add([&, i] {
      const auto t0 = std::chrono::steady_clock::now();
      results[i] = tasks[i].run(publishers[i]);
      wall[i] = seconds_since(t0);
    });
  }
  group.wait();
  const bool proved_optimal = bb_completed.load();
  // request_stop is idempotent and must be visible once the tasks have
  // been joined: a bb-completed run always leaves the token fired.
  BFLY_ASSERT_MSG(!proved_optimal || token.stop_requested(),
                  "cancel token lost the branch-and-bound stop request");

  PortfolioResult out;
  out.proved_optimal = proved_optimal;
  out.telemetry.reserve(num_tasks);
  for (std::size_t i = 0; i < num_tasks; ++i) {
    SolverTelemetry t;
    t.solver = tasks[i].name;
    t.capacity = results[i].sides.empty() ? kNoCapacity
                                          : results[i].capacity;
    t.exactness = results[i].exactness;
    t.restarts_completed = results[i].restarts_completed;
    t.improvements_published = publishers[i].improvements();
    t.wall_seconds = wall[i];
    if (tasks[i].name == "branch-bound") {
      t.cancelled = results[i].exactness != Exactness::kExact;
    } else {
      t.cancelled = results[i].restarts_completed < tasks[i].planned_units;
    }
    out.telemetry.push_back(std::move(t));
  }

  // Winner: minimum capacity over solvers that produced a cut, ties
  // broken by fixed task order (so the choice is deterministic).
  std::size_t win = num_tasks;
  for (std::size_t i = 0; i < num_tasks; ++i) {
    if (results[i].sides.empty()) continue;
    if (win == num_tasks || results[i].capacity < results[win].capacity) {
      win = i;
    }
  }
  if (win == num_tasks) {
    // Every task was cancelled before producing a cut (pathologically
    // small time budget). Fall back to the deterministic single-shot
    // spectral solver, ignoring the deadline.
    SpectralBisectionOptions o = opts.spectral;
    o.seed = seeds.spectral;
    out.best = min_bisection_spectral(g, o);
    out.winner = "spectral-fallback";
  } else {
    out.best = std::move(results[win]);
    out.winner = tasks[win].name;
  }
  out.best.exactness =
      proved_optimal ? Exactness::kExact : Exactness::kHeuristic;
  out.best.method = "portfolio/" + out.winner;
  out.wall_seconds = seconds_since(t_start);
  if (checked_build()) {
    // The winner must be a genuine bisection whose stored capacity
    // recounts, and no losing solver may have beaten it.
    validate_cut(g, out.best, /*require_bisection=*/true);
    for (const auto& t : out.telemetry) {
      BFLY_ASSERT_MSG(t.capacity == kNoCapacity ||
                          out.best.capacity <= t.capacity,
                      "portfolio winner lost to a reported capacity");
    }
  }
  return out;
}

void print_portfolio_telemetry(const PortfolioResult& result,
                               std::ostream& os) {
  io::Table t({"solver", "capacity", "tag", "restarts", "published",
               "wall_ms", "cancelled"});
  for (const auto& s : result.telemetry) {
    t.add(s.solver,
          s.capacity == kNoCapacity ? std::string("-")
                                    : std::to_string(s.capacity),
          to_string(s.exactness), std::to_string(s.restarts_completed),
          std::to_string(s.improvements_published),
          io::fmt(s.wall_seconds * 1e3, 2), s.cancelled ? "yes" : "no");
  }
  t.print(os);
  os << "winner: " << result.winner << " (capacity "
     << result.best.capacity << ", "
     << (result.proved_optimal ? "proved optimal" : "heuristic") << ", "
     << io::fmt(result.wall_seconds * 1e3, 2) << " ms total)\n";
}

}  // namespace bfly::cut
