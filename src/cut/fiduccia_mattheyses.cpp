#include "cut/fiduccia_mattheyses.hpp"

#include <limits>
#include <numeric>
#include <queue>
#include <vector>

#include "core/error.hpp"
#include "core/partition.hpp"
#include "core/rng.hpp"
#include "core/thread_pool.hpp"

namespace bfly::cut {

namespace {

// One FM pass: every node moves exactly once, chosen greedily by gain from
// the side currently at or above half; the best balanced prefix is kept.
// Lazy priority queues tolerate stale gain entries (validated on pop).
bool fm_pass(Partition& part) {
  const Graph& g = part.graph();
  const NodeId n = g.num_nodes();
  const std::size_t start_cap = part.cut_capacity();

  using Entry = std::pair<std::int64_t, NodeId>;  // (gain, node)
  std::priority_queue<Entry> pq[2];
  std::vector<std::uint8_t> locked(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    pq[part.side(v)].emplace(part.gain(v), v);
  }

  std::vector<NodeId> moves;
  moves.reserve(n);
  std::size_t best_cap = start_cap;
  std::size_t best_prefix = 0;

  for (NodeId step = 0; step < n; ++step) {
    // Move from the larger side (keeps the walk near balance); on ties
    // prefer whichever side offers the better (fresh) gain.
    int from;
    if (part.side_size(0) != part.side_size(1)) {
      from = part.side_size(0) > part.side_size(1) ? 0 : 1;
    } else {
      from = 0;
    }
    // Pop until a fresh, unlocked entry appears; fall back to the other
    // side when this one is exhausted.
    NodeId v = kInvalidNode;
    for (int attempt = 0; attempt < 2 && v == kInvalidNode; ++attempt) {
      auto& q = pq[from];
      while (!q.empty()) {
        const auto [gain, cand] = q.top();
        if (locked[cand] || part.side(cand) != from) {
          q.pop();
          continue;
        }
        if (gain != part.gain(cand)) {
          q.pop();
          q.emplace(part.gain(cand), cand);
          continue;
        }
        v = cand;
        break;
      }
      if (v == kInvalidNode) from = 1 - from;
    }
    if (v == kInvalidNode) break;

    pq[from].pop();
    part.move(v);
    locked[v] = 1;
    moves.push_back(v);
    // Neighbors' gains changed; push fresh entries (stale ones remain and
    // are skipped on pop).
    for (const NodeId w : g.neighbors(v)) {
      if (!locked[w]) pq[part.side(w)].emplace(part.gain(w), w);
    }
    if (part.is_bisection() && part.cut_capacity() < best_cap) {
      best_cap = part.cut_capacity();
      best_prefix = moves.size();
    }
  }

  for (std::size_t i = moves.size(); i > best_prefix; --i) {
    part.move(moves[i - 1]);
  }
  BFLY_ASSERT(part.cut_capacity() == best_cap);
  BFLY_ASSERT(part.is_bisection());
  // The incremental gain/capacity bookkeeping must agree with a
  // from-scratch recount after a full pass of moves and rollbacks.
  BFLY_ASSERT_MSG(part.recompute_capacity() == part.cut_capacity(),
                  "incremental capacity drifted from recount");
  return best_cap < start_cap;
}

std::vector<std::uint8_t> random_balanced_sides(NodeId n, Rng& rng) {
  std::vector<NodeId> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  shuffle(perm, rng);
  std::vector<std::uint8_t> sides(n, 0);
  for (NodeId i = n / 2; i < n; ++i) sides[perm[i]] = 1;
  return sides;
}

}  // namespace

CutResult min_bisection_fiduccia_mattheyses(
    const Graph& g, const FiducciaMattheysesOptions& opts) {
  const NodeId n = g.num_nodes();
  BFLY_CHECK(n >= 2, "bisection needs at least two nodes");
  const std::uint32_t restarts = std::max(1u, opts.restarts);

  // Each restart is independent with a derived seed, so the restarts can
  // run on any number of threads with a deterministic outcome. Restarts
  // skipped by cancellation are left at capacity SIZE_MAX and ignored.
  std::vector<CutResult> results(restarts);
  for (auto& r : results) {
    r.capacity = std::numeric_limits<std::size_t>::max();
  }
  std::atomic<std::uint32_t> completed{0};
  const auto run_restart = [&](std::size_t r) {
    if (opts.cancel != nullptr && opts.cancel->stop_requested()) return;
    SplitMix64 sm(opts.seed + 0x9e37u * (r + 1));
    Rng rng(sm.next());
    Partition part(g, random_balanced_sides(n, rng));
    for (std::uint32_t pass = 0; pass < opts.max_passes; ++pass) {
      if (!fm_pass(part)) break;
    }
    results[r].capacity = part.cut_capacity();
    results[r].sides = part.sides();
    completed.fetch_add(1, std::memory_order_relaxed);
    if (opts.incumbent != nullptr) {
      opts.incumbent->publish(part.cut_capacity(), part.sides());
    }
  };
  if (opts.num_threads > 1) {
    parallel_for(restarts, run_restart, opts.num_threads);
  } else {
    for (std::uint32_t r = 0; r < restarts; ++r) run_restart(r);
  }

  CutResult best;
  best.capacity = std::numeric_limits<std::size_t>::max();
  best.exactness = Exactness::kHeuristic;
  best.method = "fiduccia-mattheyses";
  best.restarts_completed = completed.load(std::memory_order_relaxed);
  for (auto& r : results) {
    if (is_bisection(r.sides) && r.capacity < best.capacity) {
      best.capacity = r.capacity;
      best.sides = std::move(r.sides);
    }
  }
  if (checked_build() && !best.sides.empty()) {
    validate_cut(g, best, /*require_bisection=*/true);
  }
  return best;
}

CutResult refine_fiduccia_mattheyses(const Graph& g,
                                     std::vector<std::uint8_t> sides,
                                     std::uint32_t max_passes) {
  BFLY_CHECK(is_bisection(sides), "FM refinement needs a bisection start");
  Partition part(g, sides);
  for (std::uint32_t pass = 0; pass < max_passes; ++pass) {
    if (!fm_pass(part)) break;
  }
  CutResult res;
  res.capacity = part.cut_capacity();
  res.sides = part.sides();
  res.exactness = Exactness::kHeuristic;
  res.method = "fm-refined";
  return res;
}

}  // namespace bfly::cut
