#include "cut/fiduccia_mattheyses.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <queue>
#include <vector>

#include "core/error.hpp"
#include "core/partition.hpp"
#include "core/rng.hpp"
#include "core/thread_pool.hpp"

namespace bfly::cut {

namespace {

// Classic FM gain-bucket array: one doubly-linked list of nodes per gain
// value (gain is bounded by the maximum degree), intrusive links indexed
// by node, plus a high-water bucket pointer. Insert, erase, and gain
// update are O(1); extracting the best candidate walks the pointer down
// to the first nonempty bucket. Within that bucket ties break toward
// the HIGHEST node id — exactly the order the lazy priority queues pop
// (their entries compare (gain, node)), so the two structures yield
// bit-identical passes and either can differentially validate the
// other.
class GainBuckets {
 public:
  GainBuckets(NodeId n, std::int64_t max_abs_gain)
      : offset_(max_abs_gain),
        heads_(2 * static_cast<std::size_t>(max_abs_gain) + 1, kNil),
        next_(n, kNil),
        prev_(n, kNil),
        bucket_(n, kNil) {}

  void insert(NodeId v, std::int64_t gain) {
    const std::size_t b = static_cast<std::size_t>(gain + offset_);
    BFLY_ASSERT(b < heads_.size());
    next_[v] = heads_[b];
    prev_[v] = kNil;
    if (heads_[b] != kNil) prev_[heads_[b]] = v;
    heads_[b] = v;
    bucket_[v] = static_cast<NodeId>(b);
    if (static_cast<std::ptrdiff_t>(b) > max_bucket_) {
      max_bucket_ = static_cast<std::ptrdiff_t>(b);
    }
  }

  void erase(NodeId v) {
    const NodeId b = bucket_[v];
    BFLY_ASSERT(b != kNil);
    if (prev_[v] != kNil) {
      next_[prev_[v]] = next_[v];
    } else {
      heads_[b] = next_[v];
    }
    if (next_[v] != kNil) prev_[next_[v]] = prev_[v];
    bucket_[v] = kNil;
  }

  void update(NodeId v, std::int64_t gain) {
    erase(v);
    insert(v, gain);
  }

  /// Best unlocked node (max gain, then max id), kNil when empty. Does
  /// not remove it.
  [[nodiscard]] NodeId top() {
    while (max_bucket_ >= 0 &&
           heads_[static_cast<std::size_t>(max_bucket_)] == kNil) {
      --max_bucket_;
    }
    if (max_bucket_ < 0) return kInvalidNode;
    NodeId best = kNil;
    for (NodeId v = heads_[static_cast<std::size_t>(max_bucket_)]; v != kNil;
         v = next_[v]) {
      if (best == kNil || v > best) best = v;
    }
    return best;
  }

 private:
  static constexpr NodeId kNil = kInvalidNode;
  std::int64_t offset_;
  std::vector<NodeId> heads_;
  std::vector<NodeId> next_, prev_;
  std::vector<NodeId> bucket_;  ///< bucket index a node currently sits in
  std::ptrdiff_t max_bucket_ = -1;
};

// One FM pass: every node moves exactly once, chosen greedily by gain from
// the side currently at or above half; the best balanced prefix is kept.
// Candidate selection runs on the gain-bucket array by default; the
// original lazy priority queues (which tolerate stale entries, validated
// on pop) are retained as the differential reference. Both produce the
// identical move sequence.
bool fm_pass(Partition& part, bool gain_buckets) {
  const Graph& g = part.graph();
  const NodeId n = g.num_nodes();
  const std::size_t start_cap = part.cut_capacity();

  std::int64_t max_deg = 1;
  for (NodeId v = 0; v < n; ++v) {
    max_deg = std::max(max_deg, static_cast<std::int64_t>(g.degree(v)));
  }

  using Entry = std::pair<std::int64_t, NodeId>;  // (gain, node)
  std::priority_queue<Entry> pq[2];
  std::vector<GainBuckets> gb;
  std::vector<std::uint8_t> locked(n, 0);
  if (gain_buckets) {
    gb.emplace_back(n, max_deg);
    gb.emplace_back(n, max_deg);
  }
  for (NodeId v = 0; v < n; ++v) {
    if (gain_buckets) {
      gb[part.side(v)].insert(v, part.gain(v));
    } else {
      pq[part.side(v)].emplace(part.gain(v), v);
    }
  }

  std::vector<NodeId> moves;
  moves.reserve(n);
  std::size_t best_cap = start_cap;
  std::size_t best_prefix = 0;

  for (NodeId step = 0; step < n; ++step) {
    // Move from the larger side (keeps the walk near balance); on ties
    // prefer whichever side offers the better (fresh) gain.
    int from;
    if (part.side_size(0) != part.side_size(1)) {
      from = part.side_size(0) > part.side_size(1) ? 0 : 1;
    } else {
      from = 0;
    }
    NodeId v = kInvalidNode;
    if (gain_buckets) {
      v = gb[from].top();
      if (v == kInvalidNode) {
        from = 1 - from;
        v = gb[from].top();
      }
      if (v == kInvalidNode) break;
      gb[from].erase(v);
    } else {
      // Pop until a fresh, unlocked entry appears; fall back to the other
      // side when this one is exhausted.
      for (int attempt = 0; attempt < 2 && v == kInvalidNode; ++attempt) {
        auto& q = pq[from];
        while (!q.empty()) {
          const auto [gain, cand] = q.top();
          if (locked[cand] || part.side(cand) != from) {
            q.pop();
            continue;
          }
          if (gain != part.gain(cand)) {
            q.pop();
            q.emplace(part.gain(cand), cand);
            continue;
          }
          v = cand;
          break;
        }
        if (v == kInvalidNode) from = 1 - from;
      }
      if (v == kInvalidNode) break;
      pq[from].pop();
    }

    part.move(v);
    locked[v] = 1;
    moves.push_back(v);
    // Neighbors' gains changed; refresh them (buckets relink in place,
    // the queues push fresh entries and skip stale ones on pop).
    for (const NodeId w : g.neighbors(v)) {
      if (locked[w]) continue;
      if (gain_buckets) {
        gb[part.side(w)].update(w, part.gain(w));
      } else {
        pq[part.side(w)].emplace(part.gain(w), w);
      }
    }
    if (part.is_bisection() && part.cut_capacity() < best_cap) {
      best_cap = part.cut_capacity();
      best_prefix = moves.size();
    }
  }

  for (std::size_t i = moves.size(); i > best_prefix; --i) {
    part.move(moves[i - 1]);
  }
  BFLY_ASSERT(part.cut_capacity() == best_cap);
  BFLY_ASSERT(part.is_bisection());
  // The incremental gain/capacity bookkeeping must agree with a
  // from-scratch recount after a full pass of moves and rollbacks.
  BFLY_ASSERT_MSG(part.recompute_capacity() == part.cut_capacity(),
                  "incremental capacity drifted from recount");
  return best_cap < start_cap;
}

std::vector<std::uint8_t> random_balanced_sides(NodeId n, Rng& rng) {
  std::vector<NodeId> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  shuffle(perm, rng);
  std::vector<std::uint8_t> sides(n, 0);
  for (NodeId i = n / 2; i < n; ++i) sides[perm[i]] = 1;
  return sides;
}

}  // namespace

CutResult min_bisection_fiduccia_mattheyses(
    const Graph& g, const FiducciaMattheysesOptions& opts) {
  const NodeId n = g.num_nodes();
  BFLY_CHECK(n >= 2, "bisection needs at least two nodes");
  const std::uint32_t restarts = std::max(1u, opts.restarts);

  // Each restart is independent with a derived seed, so the restarts can
  // run on any number of threads with a deterministic outcome. Restarts
  // skipped by cancellation are left at capacity SIZE_MAX and ignored.
  std::vector<CutResult> results(restarts);
  for (auto& r : results) {
    r.capacity = std::numeric_limits<std::size_t>::max();
  }
  std::atomic<std::uint32_t> completed{0};
  const auto run_restart = [&](std::size_t r) {
    if (opts.cancel != nullptr && opts.cancel->stop_requested()) return;
    SplitMix64 sm(opts.seed + 0x9e37u * (r + 1));
    Rng rng(sm.next());
    Partition part(g, random_balanced_sides(n, rng));
    for (std::uint32_t pass = 0; pass < opts.max_passes; ++pass) {
      if (!fm_pass(part, opts.gain_buckets)) break;
    }
    results[r].capacity = part.cut_capacity();
    results[r].sides = part.sides();
    completed.fetch_add(1, std::memory_order_relaxed);
    if (opts.incumbent != nullptr) {
      opts.incumbent->publish(part.cut_capacity(), part.sides());
    }
  };
  if (opts.num_threads > 1) {
    parallel_for(restarts, run_restart, opts.num_threads);
  } else {
    for (std::uint32_t r = 0; r < restarts; ++r) run_restart(r);
  }

  CutResult best;
  best.capacity = std::numeric_limits<std::size_t>::max();
  best.exactness = Exactness::kHeuristic;
  best.method = "fiduccia-mattheyses";
  best.restarts_completed = completed.load(std::memory_order_relaxed);
  for (auto& r : results) {
    if (is_bisection(r.sides) && r.capacity < best.capacity) {
      best.capacity = r.capacity;
      best.sides = std::move(r.sides);
    }
  }
  if (checked_build() && !best.sides.empty()) {
    validate_cut(g, best, /*require_bisection=*/true);
  }
  return best;
}

CutResult refine_fiduccia_mattheyses(const Graph& g,
                                     std::vector<std::uint8_t> sides,
                                     std::uint32_t max_passes) {
  BFLY_CHECK(is_bisection(sides), "FM refinement needs a bisection start");
  Partition part(g, sides);
  for (std::uint32_t pass = 0; pass < max_passes; ++pass) {
    if (!fm_pass(part, /*gain_buckets=*/true)) break;
  }
  CutResult res;
  res.capacity = part.cut_capacity();
  res.sides = part.sides();
  res.exactness = Exactness::kHeuristic;
  res.method = "fm-refined";
  return res;
}

}  // namespace bfly::cut
