#include "cut/lemma213.hpp"

#include <algorithm>

#include "core/error.hpp"
#include "core/partition.hpp"
#include "cut/bisection.hpp"
#include "cut/level_balance.hpp"
#include "cut/mos_theory.hpp"
#include "topology/mesh_of_stars.hpp"

namespace bfly::cut {

Lemma213Trace lemma213_chain(const topo::Butterfly& bf,
                             const std::vector<std::uint8_t>& sides) {
  const std::uint32_t n = bf.n();
  const std::uint32_t d = bf.dims();
  BFLY_CHECK(n >= 2 && n <= 16, "chain materializes B_{n^2}; keep n <= 16");

  Lemma213Trace trace;
  trace.input_capacity = cut_capacity(bf.graph(), sides);

  // Step 1 — Lemma 2.12(1).
  const auto lb = balance_some_level(bf, sides);
  trace.level_cut_capacity = lb.capacity;
  trace.bisected_level = lb.bisected_level;
  BFLY_CHECK(trace.level_cut_capacity <= trace.input_capacity,
             "level balancing increased capacity");

  // Step 2 — lift through the Lemma 2.10 embedding (i = bisected level,
  // j = log n) into B_{n^2}.
  const topo::Butterfly guest(n * n);
  const std::uint32_t D = 2 * d;
  const std::uint32_t i = lb.bisected_level;
  const auto host_image = [&](NodeId gv) {
    const std::uint32_t w = guest.column(gv);
    const std::uint32_t l = guest.level(gv);
    const std::uint32_t top = i == 0 ? 0u : w >> (D - i);
    const std::uint32_t bot =
        (d - i) == 0 ? 0u : w & ((1u << (d - i)) - 1);
    const std::uint32_t col = (top << (d - i)) | bot;
    const std::uint32_t lvl = l < i ? l : (l <= i + d ? i : l - d);
    return bf.node(col, lvl);
  };
  std::vector<std::uint8_t> lifted(guest.num_nodes());
  for (NodeId gv = 0; gv < guest.num_nodes(); ++gv) {
    lifted[gv] = lb.sides[host_image(gv)];
  }
  trace.lifted_capacity = cut_capacity(guest.graph(), lifted);
  BFLY_CHECK(trace.lifted_capacity ==
                 static_cast<std::size_t>(n) * trace.level_cut_capacity,
             "lift did not multiply capacity by the congestion n");
  // Property (5): level log n of the guest is bisected.
  {
    std::uint32_t cnt = 0;
    for (std::uint32_t w = 0; w < n * n; ++w) {
      cnt += lifted[guest.node(w, d)] == 0;
    }
    BFLY_CHECK(cnt == n * n / 2, "lifted cut does not bisect level log n");
  }

  // Step 3 — make every M1/M3 component preimage monochromatic, moving
  // each to its cheaper side. Compactness (Lemma 2.9) promises this
  // never increases capacity; we assert it.
  const auto component_nodes_m1 = [&](std::uint32_t p) {
    // Levels [0, d-1], columns with bottom d bits == p.
    std::vector<NodeId> out;
    for (std::uint32_t hi = 0; hi < n; ++hi) {
      const std::uint32_t col = (hi << d) | p;
      for (std::uint32_t lvl = 0; lvl < d; ++lvl) {
        out.push_back(guest.node(col, lvl));
      }
    }
    return out;
  };
  const auto component_nodes_m3 = [&](std::uint32_t q) {
    // Levels [d+1, 2d], columns with top d bits == q.
    std::vector<NodeId> out;
    for (std::uint32_t lo = 0; lo < n; ++lo) {
      const std::uint32_t col = (q << d) | lo;
      for (std::uint32_t lvl = d + 1; lvl <= D; ++lvl) {
        out.push_back(guest.node(col, lvl));
      }
    }
    return out;
  };
  std::size_t current = trace.lifted_capacity;
  const auto monochromatize = [&](const std::vector<NodeId>& comp) {
    std::vector<std::uint8_t> to0 = lifted, to1 = lifted;
    for (const NodeId v : comp) {
      to0[v] = 0;
      to1[v] = 1;
    }
    const std::size_t c0 = cut_capacity(guest.graph(), to0);
    const std::size_t c1 = cut_capacity(guest.graph(), to1);
    BFLY_CHECK(std::min(c0, c1) <= current,
               "compactness violated (Lemma 2.9)");
    if (c0 <= c1) {
      lifted = std::move(to0);
      current = c0;
    } else {
      lifted = std::move(to1);
      current = c1;
    }
  };
  for (std::uint32_t p = 0; p < n; ++p) {
    monochromatize(component_nodes_m1(p));
  }
  for (std::uint32_t q = 0; q < n; ++q) {
    monochromatize(component_nodes_m3(q));
  }
  trace.compacted_capacity = current;

  // Step 4 — project onto MOS_{n,n} (Lemma 2.11 with j = k = n;
  // congestion exactly 2).
  const topo::MeshOfStars mos(n, n);
  std::vector<std::uint8_t> mos_sides(mos.num_nodes());
  for (std::uint32_t p = 0; p < n; ++p) {
    mos_sides[mos.m1_node(p)] = lifted[component_nodes_m1(p).front()];
  }
  for (std::uint32_t q = 0; q < n; ++q) {
    mos_sides[mos.m3_node(q)] = lifted[component_nodes_m3(q).front()];
  }
  for (std::uint32_t w = 0; w < n * n; ++w) {
    const std::uint32_t p = w & (n - 1);
    const std::uint32_t q = w >> d;
    mos_sides[mos.m2_node(p, q)] = lifted[guest.node(w, d)];
  }
  trace.mos_capacity = cut_capacity(mos.graph(), mos_sides);
  BFLY_CHECK(2 * trace.mos_capacity == trace.compacted_capacity,
             "projection did not halve the capacity");
  BFLY_CHECK(bisects_subset(mos_sides, mos.m2_nodes()),
             "projected cut does not bisect M2");

  trace.mos_optimum = mos_m2_bisection_value(n).capacity;
  BFLY_CHECK(trace.mos_capacity >= trace.mos_optimum,
             "projected cut beats the analytic MOS optimum");
  // 2 BW(MOS)/n^2 <= C(input)/n  <=>  2 BW(MOS) <= n * C(input).
  trace.chain_holds =
      2 * trace.mos_optimum <=
      static_cast<std::uint64_t>(n) * trace.input_capacity;
  return trace;
}

}  // namespace bfly::cut
