// Lock-striped canonical transposition table for symmetry pruning
// (DESIGN.md §10; capability annotations §12).
//
// Shared by every worker of one branch-and-bound search. Membership
// alone is the prune certificate: entries are inserted only after a
// subtree was exhaustively expanded (never on node-limit or cancellation
// aborts), and the prune threshold is monotone non-increasing over a
// run, so any completion of an equivalent subtree that could beat the
// *current* threshold had already been published when the stored subtree
// was searched.
//
// Concurrency: the table is 64 independent stripes, each a distinct
// capability — Stripe::mu guards exactly that stripe's set, stated with
// BFLY_GUARDED_BY and enforced by probe_locked/insert_locked carrying
// BFLY_REQUIRES(s.mu). No path ever holds two stripes (stripe_for is a
// pure hash), so stripe locks are leaves of the lock order. The hit and
// store counters are relaxed atomics bumped outside the stripe lock:
// they are telemetry totals whose final values are read after the
// workers have been joined.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <unordered_set>
#include <utility>

#include "core/sync.hpp"

namespace bfly::cut {

struct TtKeyHash {
  std::size_t operator()(
      const std::pair<std::uint64_t, std::uint64_t>& k) const noexcept {
    // splitmix64-style finisher over both words; also used to pick the
    // table stripe.
    std::uint64_t x = k.first ^ (k.second * 0x9e3779b97f4a7c15ull);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return static_cast<std::size_t>(x);
  }
};

class TranspositionTable {
 public:
  using Key = std::pair<std::uint64_t, std::uint64_t>;

  explicit TranspositionTable(std::size_t max_entries)
      : stripe_cap_(std::max<std::size_t>(1, max_entries / kStripes)) {}

  TranspositionTable(const TranspositionTable&) = delete;
  TranspositionTable& operator=(const TranspositionTable&) = delete;

  // True (and counted as a hit) iff an equivalent subtree was already
  // fully searched.
  [[nodiscard]] bool probe(const Key& key) {
    Stripe& s = stripe_for(key);
    bool hit;
    {
      const sync::MutexLock lock(s.mu);
      hit = probe_locked(s, key);
    }
    if (hit) hits_.fetch_add(1, std::memory_order_relaxed);
    return hit;
  }

  // Records a fully-searched subtree. Drops the entry once the stripe is
  // full: the table is a pruning cache, so dropping only costs future
  // hits, never correctness.
  void insert(const Key& key) {
    Stripe& s = stripe_for(key);
    bool stored;
    {
      const sync::MutexLock lock(s.mu);
      stored = insert_locked(s, key);
    }
    if (stored) stores_.fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t hits() const {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t stores() const {
    return stores_.load(std::memory_order_relaxed);
  }

  // Seeds the telemetry counters from a resumed run so reported counts
  // are cumulative across interruptions. The entries themselves are not
  // checkpointed — the table is rebuilt from scratch, which only costs
  // re-derived prunes.
  void seed_counters(std::uint64_t hits, std::uint64_t stores) {
    hits_.store(hits, std::memory_order_relaxed);
    stores_.store(stores, std::memory_order_relaxed);
  }

 private:
  static constexpr std::size_t kStripes = 64;
  struct Stripe {
    sync::Mutex mu;
    std::unordered_set<Key, TtKeyHash> set BFLY_GUARDED_BY(mu);
  };

  [[nodiscard]] static bool probe_locked(const Stripe& s, const Key& key)
      BFLY_REQUIRES(s.mu) {
    return s.set.contains(key);
  }

  // True iff the key was newly stored (false: duplicate or full stripe).
  [[nodiscard]] bool insert_locked(Stripe& s, const Key& key)
      BFLY_REQUIRES(s.mu) {
    if (s.set.size() >= stripe_cap_) return false;
    return s.set.insert(key).second;
  }

  Stripe& stripe_for(const Key& key) {
    return stripes_[TtKeyHash{}(key) % kStripes];
  }

  std::size_t stripe_cap_;
  std::array<Stripe, kStripes> stripes_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> stores_{0};
};

}  // namespace bfly::cut
