// The Lemma 2.13 lower-bound chain, executed end to end on concrete
// instances:
//
//   1. From a bisection of Bn, produce a cut bisecting some level L_i
//      without capacity increase (Lemma 2.12(1), 4-cycle moves).
//   2. Lift it through the Lemma 2.10 embedding of B_{n^2} into Bn
//      (j = log n): capacity multiplies by exactly the congestion n, and
//      the lifted cut bisects level log n of B_{n^2} (property (5)).
//   3. Move each M1/M3 component preimage entirely to its cheaper side —
//      capacity cannot increase because those sets are compact
//      (Lemma 2.9); this step machine-checks compactness at sizes far
//      beyond exhaustive reach.
//   4. Project onto MOS_{n,n} through the Lemma 2.11 embedding
//      (congestion exactly 2): the projected cut bisects M2 and has
//      exactly half the lifted capacity.
//
// Conclusion per instance: 2 BW(MOS_{n,n}, M2)/n^2 <= BW(Bn)/n, with
// every intermediate equality verified numerically.
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.hpp"
#include "topology/butterfly.hpp"

namespace bfly::cut {

struct Lemma213Trace {
  std::size_t input_capacity = 0;      ///< C of the input bisection of Bn
  std::size_t level_cut_capacity = 0;  ///< after Lemma 2.12(1)
  std::uint32_t bisected_level = 0;
  std::size_t lifted_capacity = 0;     ///< on B_{n^2}; == n * level_cut
  std::size_t compacted_capacity = 0;  ///< after Lemma 2.9 moves (<= lifted)
  std::size_t mos_capacity = 0;        ///< == compacted / 2, bisects M2
  std::uint64_t mos_optimum = 0;       ///< analytic BW(MOS_{n,n}, M2)
  /// The chain's verdict: 2*mos_optimum/n^2 <= input_capacity/n.
  bool chain_holds = false;
};

/// Runs the chain from the given bisection of Bn. Materializes B_{n^2},
/// so n <= 8 (B64 has 448 nodes) stays comfortable; n <= 16 is feasible.
[[nodiscard]] Lemma213Trace lemma213_chain(
    const topo::Butterfly& bf, const std::vector<std::uint8_t>& sides);

}  // namespace bfly::cut
