// Common vocabulary for bisection solvers (paper Section 1.2).
//
// A cut (S, S̄) is stored as a 0/1 side vector; its capacity is the number
// of edges crossing it. A bisection requires both sides <= ceil(N/2). The
// U-bisection width BW(G, U) (Section 2.1) minimizes capacity over cuts
// that bisect the subset U.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/graph.hpp"
#include "core/types.hpp"

namespace bfly::cut {

/// How trustworthy a reported capacity is; benches print this tag.
enum class Exactness {
  kExact,      ///< provably optimal for the stated constraint
  kBound,      ///< a valid one-sided bound from a construction/analysis
  kHeuristic,  ///< best found by a heuristic; no optimality claim
};

[[nodiscard]] const char* to_string(Exactness e);

struct CutResult {
  std::vector<std::uint8_t> sides;  ///< 0/1 per node (may be empty for
                                    ///< purely analytic results)
  std::size_t capacity = 0;
  Exactness exactness = Exactness::kHeuristic;
  std::string method;
  /// Restart / V-cycle work units the solver actually completed (0 for
  /// single-shot and exact solvers). Portfolio telemetry reports this so
  /// cancelled runs show how far they got.
  std::uint32_t restarts_completed = 0;
  /// Search-tree nodes expanded (exact solvers; 0 for heuristics).
  /// bench_exact_kernels records this so bound-strength changes show up
  /// as visited-node deltas, not just wall time.
  std::uint64_t nodes_visited = 0;
  /// Canonical transposition-table telemetry (symmetry-pruned
  /// branch-and-bound only; zero otherwise): subtrees pruned because an
  /// equivalent state had already been searched, and states stored.
  std::uint64_t tt_hits = 0;
  std::uint64_t tt_stores = 0;
  /// Work-stealing scheduler telemetry (parallel seed-prefix driver
  /// only; zero otherwise): shards spawned, shards executed by a thief
  /// rather than their seeded owner, and summed worker idle-scan time.
  std::uint64_t ws_spawned = 0;
  std::uint64_t ws_steals = 0;
  double ws_idle_seconds = 0.0;
};

/// True iff the side vector is a bisection of all its nodes.
[[nodiscard]] bool is_bisection(const std::vector<std::uint8_t>& sides);

/// True iff the cut bisects the subset U: |A ∩ U| and |Ā ∩ U| differ by
/// at most one (paper Section 2.1).
[[nodiscard]] bool bisects_subset(const std::vector<std::uint8_t>& sides,
                                  std::span<const NodeId> subset);

/// Validates a CutResult against its graph: side vector size, 0/1 side
/// values, capacity consistency, and (when require_bisection) the balance
/// constraint. Throws PreconditionError on mismatch (used by tests, and
/// by solvers at exit under checked builds).
void validate_cut(const Graph& g, const CutResult& r,
                  bool require_bisection = false);

}  // namespace bfly::cut
