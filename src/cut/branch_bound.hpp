// Exact minimum bisection by branch and bound.
//
// Nodes are assigned in BFS order (so the cut materializes early); the
// bound is current capacity plus, for every unassigned node, the smaller
// of its assigned-neighbor counts on each side — a valid additive lower
// bound because those edges are attributed to their unique unassigned
// endpoint. Supports the plain bisection constraint and the paper's
// U-bisection constraint (Section 2.1). Practical to ~40 nodes on the
// butterfly-family instances.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>

#include "core/graph.hpp"
#include "core/thread_pool.hpp"
#include "cut/bisection.hpp"

namespace bfly::cut {

struct BranchBoundOptions {
  /// Optional incumbent capacity (exclusive upper bound on the search);
  /// supply a heuristic solution's capacity to speed things up. The solver
  /// still proves optimality.
  std::size_t initial_bound = static_cast<std::size_t>(-1);
  /// Abort after this many search-tree nodes (0 = unlimited). When hit,
  /// the result's exactness degrades to kHeuristic.
  std::uint64_t node_limit = 0;
  /// If nonempty, minimize over cuts bisecting this subset instead of over
  /// balanced bisections.
  std::span<const NodeId> bisect_subset;
  /// Live incumbent capacity from a concurrently running portfolio: a
  /// bisection of this capacity already exists elsewhere, so the search
  /// prunes everything >= it and only reports strictly better solutions.
  /// When the search completes without finding one, the result's capacity
  /// stays SIZE_MAX with exactness kExact — a proof that the published
  /// incumbent is optimal. The pointed-to value may shrink while the
  /// search runs (each read must be a valid capacity of some bisection).
  const std::atomic<std::size_t>* live_bound = nullptr;
  /// Cooperative cancellation, polled every few thousand search nodes.
  /// When it fires mid-search the result degrades to kHeuristic, exactly
  /// like an exhausted node_limit.
  const CancelToken* cancel = nullptr;
};

[[nodiscard]] CutResult min_bisection_branch_bound(
    const Graph& g, const BranchBoundOptions& opts = {});

}  // namespace bfly::cut
