// Exact minimum bisection by branch and bound.
//
// Nodes are assigned in BFS order (so the cut materializes early); the
// bound is current capacity plus, for every unassigned node, the smaller
// of its assigned-neighbor counts on each side — a valid additive lower
// bound because those edges are attributed to their unique unassigned
// endpoint. Supports the plain bisection constraint and the paper's
// U-bisection constraint (Section 2.1).
//
// Two kernels implement the same search:
//
//   * the byte-array scalar kernel — the original reference walker,
//     retained for differential testing and as the fallback for
//     multigraphs (parallel edges collapse in a packed adjacency);
//   * the word-level bitset kernel — side masks and the unassigned set
//     are Bitset64 words over the graph's cached packed adjacency, the
//     per-neighbor updates run over adj[v] & unassigned in one fused
//     word sweep, and an assignment-count lower bound on the unassigned
//     remainder (how many nodes MUST land on their worse side once a
//     side fills up) prunes on top of the classic sum-of-min bound.
//     When both sides' remaining room forces the rest of the graph onto
//     one side, the subtree is closed in O(remaining) instead of
//     descending further.
//
// The bitset kernel can also run in parallel: every feasible assignment
// of the first seed_depth BFS-order nodes becomes a subproblem seed,
// dispatched over the work-stealing shard scheduler (core/sharding.hpp,
// one deque per worker); workers share one incumbent (the
// portfolio's SharedIncumbent machinery), so any improvement found by
// one worker immediately tightens every other worker's pruning bound.
// The proven optimal capacity is identical for any thread count; only
// the witness cut may differ between capacity ties (same contract as
// the portfolio, DESIGN.md §5). Practical to ~64 nodes on the
// butterfly-family instances.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "algo/automorphism.hpp"
#include "core/graph.hpp"
#include "core/thread_pool.hpp"
#include "cut/bisection.hpp"

namespace bfly::cut {

/// A consistent snapshot of the seed-prefix driver's search state, the
/// unit of checkpoint/resume (robust/checkpoint.{hpp,cpp} serializes it
/// to disk). The search tree is partitioned into the subtrees under
/// every feasible assignment of the first seed_depth BFS-order nodes;
/// prefix_done records which subtrees have been fully searched, and the
/// incumbent plus the pooled node count carry everything else a resumed
/// run needs to prove the identical optimum with the identical bound.
struct BranchBoundSearchState {
  /// BFS-prefix depth the seed prefixes were enumerated at. A resumed
  /// run re-enumerates at exactly this depth, so prefix indices match.
  unsigned seed_depth = 0;
  /// One flag per seed prefix, in enumeration order: 1 = subtree fully
  /// searched (never set for subtrees cut short by cancellation).
  std::vector<std::uint8_t> prefix_done;
  /// Best bisection found so far (SIZE_MAX / empty when none yet).
  std::size_t incumbent_capacity = static_cast<std::size_t>(-1);
  std::vector<std::uint8_t> incumbent_sides;
  /// Pooled search-tree nodes spent so far; restored so node budgets
  /// and nodes_visited telemetry span interruptions.
  std::uint64_t nodes_spent = 0;
  /// 1 when the run used symmetry pruning (automorphism group + canonical
  /// transposition table), 0 otherwise. A resumed run must be configured
  /// with the same mode: the seed-prefix list and the set of reachable
  /// states differ between modes, so prefix indices would silently
  /// mismatch. Enforced by a BFLY_CHECK on resume.
  std::uint8_t symmetry_mode = 0;
  /// Transposition-table telemetry carried across interruptions so a
  /// resumed run reports cumulative counts (the table itself is rebuilt
  /// from scratch — it is a cache, not part of the proof state).
  std::uint64_t tt_hits = 0;
  std::uint64_t tt_stores = 0;
};

/// Which branch-and-bound search kernel to run.
enum class BranchBoundKernel {
  kAuto,    ///< bitset when the graph is simple, scalar otherwise
  kScalar,  ///< byte-array reference kernel (always applicable)
  kBitset,  ///< word-level kernel; rejects graphs with parallel edges
};

struct BranchBoundOptions {
  /// Optional incumbent capacity (exclusive upper bound on the search);
  /// supply a heuristic solution's capacity to speed things up. The solver
  /// still proves optimality.
  std::size_t initial_bound = static_cast<std::size_t>(-1);
  /// Abort after this many search-tree nodes (0 = unlimited). When hit,
  /// the result's exactness degrades to kHeuristic. Under the parallel
  /// kernel the limit applies to the workers' pooled node count and is
  /// enforced at the cancellation-poll cadence, so the abort lands
  /// within a few thousand nodes of the limit rather than exactly on it.
  std::uint64_t node_limit = 0;
  /// If nonempty, minimize over cuts bisecting this subset instead of over
  /// balanced bisections.
  std::span<const NodeId> bisect_subset;
  /// Live incumbent capacity from a concurrently running portfolio: a
  /// bisection of this capacity already exists elsewhere, so the search
  /// prunes everything >= it and only reports strictly better solutions.
  /// When the search completes without finding one, the result's capacity
  /// stays SIZE_MAX with exactness kExact — a proof that the published
  /// incumbent is optimal. The pointed-to value may shrink while the
  /// search runs (each read must be a valid capacity of some bisection).
  const std::atomic<std::size_t>* live_bound = nullptr;
  /// Cooperative cancellation, polled every few thousand search nodes.
  /// When it fires mid-search the result degrades to kHeuristic, exactly
  /// like an exhausted node_limit.
  const CancelToken* cancel = nullptr;
  /// Kernel selection; kAuto picks the bitset kernel whenever the packed
  /// adjacency is faithful (no parallel edges).
  BranchBoundKernel kernel = BranchBoundKernel::kAuto;
  /// Worker threads for the bitset kernel (1 = serial, 0 =
  /// default_thread_count()). The scalar reference kernel always runs
  /// serially. Serial runs are fully deterministic including the witness;
  /// parallel runs prove the same capacity but may return a different
  /// optimal cut between ties.
  unsigned num_threads = 1;
  /// BFS-prefix depth used to enumerate parallel subproblem seeds
  /// (0 = auto: grow until there are several seeds per worker). Ignored
  /// by serial runs unless checkpointing forces the prefix driver.
  unsigned seed_depth = 0;
  /// Live progress cell for an external watchdog: the kernels store the
  /// pooled visited-node count here at their flush cadence, so a reader
  /// that sees the value stop moving has found a stalled search.
  std::atomic<std::uint64_t>* progress = nullptr;
  /// Resume a previous run from its checkpointed search state: restores
  /// the shared incumbent, skips completed seed prefixes, and continues
  /// the pooled node count. The graph, subset constraint, and kernel
  /// must match the run that produced the state (the serialized form in
  /// robust/checkpoint carries a graph fingerprint to enforce this).
  /// Bitset kernel only.
  const BranchBoundSearchState* resume = nullptr;
  /// Automorphism group of the graph for symmetry pruning (nullptr =
  /// off, the default). When set, the bitset kernel (a) deduplicates
  /// seed prefixes up to symmetry, searching one representative per
  /// orbit, and (b) consults a canonical transposition table before
  /// expanding a subtree: the state's side masks are canonicalized over
  /// the enumerated group elements (and the side swap), and a subtree
  /// whose canonical form was already fully searched is pruned. Sound
  /// because the prune threshold only tightens over time, so a
  /// previously searched equivalent subtree has already published any
  /// completion that could beat the current bound (DESIGN.md §10).
  /// Requires n <= 64 and is ignored in subset mode, by the scalar
  /// kernel, and when the group exceeds the enumeration cap. The group
  /// must consist of automorphisms of g (checked builds verify a
  /// sample); a wrong group silently breaks optimality.
  const algo::PermutationGroup* symmetry = nullptr;
  /// Transposition-table entry cap across all stripes (new states are
  /// dropped once full; correctness is unaffected — the table is a
  /// pruning cache, never a proof obligation).
  std::size_t tt_max_entries = std::size_t{1} << 20;
  /// Shard the seed-prefix work list for multi-process search: of the
  /// enumerated prefixes, this run searches only those with
  /// index % shard_count == shard_index (1 = unsharded, the default).
  /// A sharded run is partial BY CONSTRUCTION, so its result reports
  /// kHeuristic even when every shard subtree closed; the proof is
  /// reassembled out of process by merging the shards' checkpoints
  /// (robust::merge_snapshots) and resuming the merged state unsharded
  /// — with every prefix done, that resume returns kExact immediately.
  /// Forces the prefix driver; composes with resume. Bitset kernel only.
  std::size_t shard_count = 1;
  std::size_t shard_index = 0;
  /// Checkpoint sink: called with a consistent snapshot after every
  /// seed-prefix subtree completes (calls are serialized; under the
  /// parallel driver they arrive on worker threads). Setting this — or
  /// resume — forces the seed-prefix driver even for serial runs, so a
  /// serial checkpointed run and its resumed continuation replay the
  /// identical publish sequence. Bitset kernel only.
  std::function<void(const BranchBoundSearchState&)> on_checkpoint;
};

[[nodiscard]] CutResult min_bisection_branch_bound(
    const Graph& g, const BranchBoundOptions& opts = {});

}  // namespace bfly::cut
