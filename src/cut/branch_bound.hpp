// Exact minimum bisection by branch and bound.
//
// Nodes are assigned in BFS order (so the cut materializes early); the
// bound is current capacity plus, for every unassigned node, the smaller
// of its assigned-neighbor counts on each side — a valid additive lower
// bound because those edges are attributed to their unique unassigned
// endpoint. Supports the plain bisection constraint and the paper's
// U-bisection constraint (Section 2.1). Practical to ~40 nodes on the
// butterfly-family instances.
#pragma once

#include <cstdint>
#include <span>

#include "core/graph.hpp"
#include "cut/bisection.hpp"

namespace bfly::cut {

struct BranchBoundOptions {
  /// Optional incumbent capacity (exclusive upper bound on the search);
  /// supply a heuristic solution's capacity to speed things up. The solver
  /// still proves optimality.
  std::size_t initial_bound = static_cast<std::size_t>(-1);
  /// Abort after this many search-tree nodes (0 = unlimited). When hit,
  /// the result's exactness degrades to kHeuristic.
  std::uint64_t node_limit = 0;
  /// If nonempty, minimize over cuts bisecting this subset instead of over
  /// balanced bisections.
  std::span<const NodeId> bisect_subset;
};

[[nodiscard]] CutResult min_bisection_branch_bound(
    const Graph& g, const BranchBoundOptions& opts = {});

}  // namespace bfly::cut
