// Multilevel bisection (METIS-style): heavy-edge-matching coarsening,
// greedy region-growing initial partitions on the coarsest graph, and
// weighted FM refinement during uncoarsening.
//
// This is the practical workhorse for partitioning the larger butterfly
// instances (B1024 and up) where flat KL/FM from random starts becomes
// slow or unreliable; on the paper's families it routinely recovers the
// folklore-optimal cuts in milliseconds.
#pragma once

#include <cstdint>

#include "core/graph.hpp"
#include "core/thread_pool.hpp"
#include "cut/bisection.hpp"
#include "cut/incumbent.hpp"

namespace bfly::cut {

struct MultilevelOptions {
  std::uint32_t coarsen_to = 24;      ///< stop coarsening at this size
  std::uint32_t initial_tries = 16;   ///< region-growing attempts
  std::uint32_t refine_passes = 12;   ///< FM passes per level
  std::uint32_t cycles = 2;           ///< independent V-cycles
  std::uint64_t seed = 0x313371u;
  /// Cooperative cancellation, checked between V-cycles. A run cancelled
  /// before its first cycle completes returns capacity SIZE_MAX with an
  /// empty side vector.
  const CancelToken* cancel = nullptr;
  /// Portfolio hook: each V-cycle's bisection is offered to the shared
  /// incumbent (one-way; never read back).
  IncumbentPublisher* incumbent = nullptr;
};

[[nodiscard]] CutResult min_bisection_multilevel(
    const Graph& g, const MultilevelOptions& opts = {});

}  // namespace bfly::cut
