// Machine checks for the paper's compactness and amenability notions
// (Section 2 definitions, Lemmas 2.6–2.9 and 2.14–2.15).
//
// A node set U is *compact* in G if any cut can be transformed — moving
// only nodes of U, all to one side — without increasing capacity. U is
// *amenable* w.r.t. a cut if, moving only nodes of U, every count
// 0..|U| of U-nodes can be placed on side A without increasing capacity.
// These are for-all-cuts statements over finite structures, so they are
// exhaustively checkable on small instances; that is what these helpers
// do, plus the concrete capacity-nonincreasing transformations the paper
// builds from them.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/graph.hpp"
#include "core/types.hpp"
#include "topology/butterfly.hpp"

namespace bfly::cut {

/// Exhaustively verifies that U is compact in g: for every cut (2^(N-1)
/// of them), moving U entirely to one side (keeping everything else
/// fixed) must not increase capacity. Practical to ~22 nodes.
[[nodiscard]] bool is_compact_exhaustive(const Graph& g,
                                         std::span<const NodeId> subset,
                                         std::uint64_t max_states = 1ull
                                                                    << 26);

/// Verifies the amenability of U with respect to the specific cut
/// `sides`: for every k in [0, |U|] there must be an assignment of U
/// (others fixed) with exactly k U-nodes on side 0 and capacity at most
/// the original. Exhaustive over 2^|U| assignments; |U| <= ~22.
[[nodiscard]] bool is_amenable_exhaustive(const Graph& g,
                                          std::span<const NodeId> subset,
                                          const std::vector<std::uint8_t>&
                                              sides);

/// The Lemma 2.8 transformation: returns the cut with U = levels
/// 1..log n of Bn moved entirely to the side holding the majority of
/// level 0 (the paper proves this never increases capacity).
[[nodiscard]] std::vector<std::uint8_t> push_tail_levels(
    const topo::Butterfly& bf, std::vector<std::uint8_t> sides);

}  // namespace bfly::cut
