// Two-tier result cache for the query service (DESIGN.md §14).
//
// Tier 1 is a plain in-memory LRU. Tier 2 is a crash-safe directory of
// one-entry BFLYSVC files riding the same wire machinery as the BFLYSNP
// checkpoints (robust/wire.hpp): versioned, checksummed, written with
// atomic temp-plus-rename, decoded through the bounds-checked Reader.
// A corrupted entry is quarantined (renamed aside) and treated as a
// miss — the daemon never crashes on, and never serves, a bad file.
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <list>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/sync.hpp"
#include "service/request.hpp"

namespace bfly::service {

/// One cached answer, exactly what the persistent tier serializes.
struct CacheEntry {
  std::uint64_t key = 0;     ///< canonical_key of the instance
  QueryKind kind = QueryKind::kBisectionWidth;
  Family family = Family::kButterfly;
  std::uint32_t n = 0;
  std::uint64_t mask = 0;    ///< canonical mask (BOUNDARY) or 0
  std::uint64_t value = 0;
  bool exact = false;
};

/// BFLYSVC wire format: magic | u32 version | payload | u64 FNV-1a.
/// Throws robust::SnapshotError on any defect (same taxonomy as the
/// snapshot decoder — the service maps every error to quarantine).
[[nodiscard]] std::vector<std::uint8_t> encode_entry(const CacheEntry& e);
[[nodiscard]] CacheEntry decode_entry(std::span<const std::uint8_t> bytes);

/// In-memory LRU keyed by canonical key. Not internally locked; the
/// ServiceCache holds its mutex across every call. The merge rule
/// protects proofs: an exact entry is never overwritten by a heuristic
/// one, and between two heuristic bounds the smaller (tighter) wins.
class LruCache {
 public:
  explicit LruCache(std::size_t capacity) : capacity_(capacity) {}

  [[nodiscard]] std::optional<CacheEntry> get(std::uint64_t key);

  /// Applies the merge rule; returns the entry now cached under the key
  /// (which may be the stronger pre-existing one).
  CacheEntry put(const CacheEntry& e);

  [[nodiscard]] std::size_t size() const noexcept { return order_.size(); }

 private:
  std::size_t capacity_;
  std::list<CacheEntry> order_;  // front = most recent
  std::unordered_map<std::uint64_t, std::list<CacheEntry>::iterator> map_;
};

/// Crash-safe persistent tier: one <16-hex-key>.bfc file per entry in
/// one directory. An empty directory path disables the tier.
class PersistentCache {
 public:
  explicit PersistentCache(std::filesystem::path dir);

  [[nodiscard]] bool enabled() const noexcept { return !dir_.empty(); }
  [[nodiscard]] const std::filesystem::path& dir() const noexcept {
    return dir_;
  }

  struct RecoveryReport {
    std::vector<CacheEntry> entries;  ///< every intact entry on disk
    std::size_t quarantined = 0;      ///< corrupt files renamed aside
    std::size_t tmp_removed = 0;      ///< torn writes swept away
  };

  /// Startup scan: removes *.tmp leftovers from a crash mid-write,
  /// quarantines undecodable or mislabeled entries, returns the intact
  /// ones for warm-starting the LRU. Never throws on bad content.
  [[nodiscard]] RecoveryReport recover();

  /// Loads one entry; a missing file is a miss (nullopt), a corrupt or
  /// mislabeled file is quarantined and a miss. Never throws on bad
  /// content.
  [[nodiscard]] std::optional<CacheEntry> load(std::uint64_t key);

  /// Persists one entry via atomic temp-plus-rename. Throws
  /// SnapshotError{kIo} on filesystem refusal and carries the
  /// BFLY_FAULT_POINT(kCacheWrite) chaos site — callers treat both as
  /// "result stays in memory only".
  void store(const CacheEntry& e);

  /// Corrupt entries quarantined since construction (recover + load).
  [[nodiscard]] std::uint64_t quarantined() const noexcept;

 private:
  [[nodiscard]] std::filesystem::path entry_path(std::uint64_t key) const;
  void quarantine(const std::filesystem::path& path);

  std::filesystem::path dir_;
  std::atomic<std::uint64_t> quarantined_{0};
};

/// The two tiers behind one lookup/insert surface, with the locking the
/// executor relies on: the LRU sits behind mem_mu_, disk I/O behind
/// disk_mu_ (file reads never run under the memory lock, so a slow disk
/// cannot stall cache hits).
class ServiceCache {
 public:
  struct Hit {
    CacheEntry entry;
    Source source = Source::kMemory;
  };

  enum class InsertOutcome : std::uint8_t {
    kPersisted,      ///< in the LRU and on disk
    kMemoryOnly,     ///< persistence disabled
    kPersistFailed,  ///< disk write refused (fault or I/O); LRU still holds it
  };

  ServiceCache(std::size_t lru_capacity, std::filesystem::path dir);

  /// want_exact skips heuristic entries (an exact-policy request must
  /// not be satisfied by an unproven bound).
  [[nodiscard]] std::optional<Hit> lookup(std::uint64_t key, bool want_exact);

  InsertOutcome insert(const CacheEntry& e);

  [[nodiscard]] std::uint64_t quarantined() const noexcept {
    return disk_.quarantined();
  }
  [[nodiscard]] std::size_t recovered_entries() const noexcept {
    return recovered_entries_;
  }
  [[nodiscard]] std::size_t tmp_removed() const noexcept {
    return tmp_removed_;
  }
  [[nodiscard]] bool persistent() const noexcept { return disk_.enabled(); }
  [[nodiscard]] const std::filesystem::path& dir() const noexcept {
    return disk_.dir();
  }

 private:
  sync::Mutex mem_mu_;
  LruCache lru_ BFLY_GUARDED_BY(mem_mu_);
  sync::Mutex disk_mu_;  ///< serializes tier-2 file I/O
  PersistentCache disk_;
  std::size_t recovered_entries_ = 0;
  std::size_t tmp_removed_ = 0;
};

}  // namespace bfly::service
