// Request/response model and line protocol for the bisection query
// service (DESIGN.md §14).
//
// A Request names a paper instance (topology family + width parameter),
// the quantity wanted (bisection width, or the edge boundary of a
// subset), a solver policy, and budgets. The cache key is canonical
// under the instance's automorphism group: BOUNDARY masks are replaced
// by the lexicographically smallest member of their orbit (the same
// PermutationGroup machinery the symmetry-pruned exact search uses), so
// queries identical up to symmetry share one cache entry and one
// in-flight computation.
//
// The line protocol is the untrusted surface (fuzz/fuzz_service_proto
// drives it): parse_request either returns a syntactically valid
// Request or throws a typed ProtocolError — it never crashes, never
// allocates proportionally to a hostile length field, and never lets a
// malformed number through as zero.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "algo/automorphism.hpp"
#include "core/graph.hpp"

namespace bfly::service {

/// Topology families the service answers for, keyed by the paper's
/// width parameter n (number of columns; power of two). For hypercubes
/// n is the number of nodes, so Q8 is the 3-cube.
enum class Family : std::uint8_t {
  kButterfly = 0,   ///< Bn: (log n + 1) levels x n columns
  kWrapped,         ///< Wn: log n levels x n columns, wrapped
  kCcc,             ///< CCCn: log n cycles x n positions
  kHypercube,       ///< Qd with d = log n
};

enum class QueryKind : std::uint8_t {
  kBisectionWidth = 0,  ///< BW: minimum bisection capacity
  kBoundary,            ///< BOUNDARY: edge boundary of a subset mask
};

enum class Policy : std::uint8_t {
  kExact = 0,   ///< Supervisor ladder starting at the exact engine
  kPortfolio,   ///< full heuristic portfolio racing the exact engine
  kHeuristic,   ///< heuristics only (no exactness claim possible)
};

[[nodiscard]] const char* to_string(Family f);
[[nodiscard]] const char* to_string(QueryKind k);
[[nodiscard]] const char* to_string(Policy p);

struct Request {
  QueryKind kind = QueryKind::kBisectionWidth;
  Family family = Family::kButterfly;
  std::uint32_t n = 4;
  std::uint64_t subset_mask = 0;   ///< BOUNDARY only; bit v = node v in S
  Policy policy = Policy::kExact;
  double deadline_seconds = 0.0;   ///< 0 = service default
  std::uint64_t node_budget = 0;   ///< 0 = service default
  std::string id;                  ///< client tag echoed in the response
};

/// Honest outcome classes: a shed or expired request says so instead of
/// blocking forever or returning a half-computed number.
enum class Status : std::uint8_t {
  kOk = 0,
  kShed,         ///< admission control rejected (queue full / enqueue fault)
  kDeadline,     ///< the request's deadline passed before compute started
  kBadRequest,   ///< semantically invalid instance
  kFailed,       ///< every ladder step failed (or a dispatch fault fired)
};

/// Where an OK answer came from.
enum class Source : std::uint8_t {
  kNone = 0,
  kMemory,      ///< in-memory LRU hit
  kDisk,        ///< persistent-tier hit (promoted to the LRU)
  kComputed,    ///< this request ran the solver
  kCoalesced,   ///< rode an identical in-flight computation
};

[[nodiscard]] const char* to_string(Status s);
[[nodiscard]] const char* to_string(Source s);

struct Response {
  Status status = Status::kFailed;
  std::string id;
  std::uint64_t key = 0;     ///< canonical instance key (0 for bad requests)
  std::uint64_t value = 0;   ///< the bound; meaningful only when kOk
  bool exact = false;        ///< value carries an optimality proof
  Source source = Source::kNone;
  double wall_ms = 0.0;      ///< admission-to-response wall time
  std::string detail;        ///< human-readable context for non-OK statuses
};

/// Thrown by parse_request on any syntactic defect in an input line.
class ProtocolError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Hard cap on an input line; longer lines are rejected before any
/// tokenization so a hostile client cannot make the parser allocate big.
inline constexpr std::size_t kMaxLineBytes = 4096;

/// True when (family, n) names an instance the service will solve:
/// n a power of two within the family's domain, and the node count
/// within the service ceiling (4096 nodes; 64 for BOUNDARY queries,
/// which need the <= 64-node mask-orbit canonicalizer).
[[nodiscard]] bool valid_instance(Family family, std::uint32_t n);
[[nodiscard]] std::uint64_t instance_nodes(Family family, std::uint32_t n);

/// Builds the instance graph (valid_instance must hold).
[[nodiscard]] Graph build_graph(Family family, std::uint32_t n);

/// The instance's automorphism group from the topology's published
/// generators (valid_instance must hold).
[[nodiscard]] algo::PermutationGroup automorphism_group(Family family,
                                                        std::uint32_t n);

/// Lexicographically smallest member of the mask's orbit under the
/// instance's automorphism group. Requires instance_nodes <= 64.
[[nodiscard]] std::uint64_t canonical_mask(Family family, std::uint32_t n,
                                           std::uint64_t mask);

/// Canonical cache key: FNV over (kind, family, n) plus, for BOUNDARY,
/// the canonical mask — so symmetric queries collide by construction.
/// Policy is deliberately excluded: the cache stores the best-known
/// value with its exactness flag, and exact-policy lookups simply skip
/// non-exact entries.
[[nodiscard]] std::uint64_t canonical_key(const Request& r);

/// Parses one protocol line:
///
///   BW <family> <n> [policy=exact|portfolio|heuristic]
///                   [deadline_ms=<u32>] [nodes=<u64>] [id=<tag>]
///   BOUNDARY <family> <n> <mask-hex> [id=<tag>] [...]
///
/// Family tokens (case-insensitive): b/butterfly, w/wrapped, ccc,
/// q/hypercube. Numbers parse strictly (full token, no sign, range
/// checked); ids are <= 64 chars of [A-Za-z0-9._:-]. Throws
/// ProtocolError on anything else. Semantic validation (power-of-two n,
/// mask within the node range) is the service's job, not the parser's.
[[nodiscard]] Request parse_request(std::string_view line);

/// One response line:
///   OK id=<id> key=<16 hex> value=<u64> exact=<0|1> source=<s> ms=<ms>
///   ERR id=<id> status=<shed|deadline|bad-request|failed> detail=<text>
[[nodiscard]] std::string format_response(const Response& r);

}  // namespace bfly::service
