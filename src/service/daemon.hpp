// Line-protocol front end over the Service executor: one request per
// input line, one response line per request, written as each completes
// (out of order under load — clients correlate by id). The stream pair
// is abstract so tests drive a daemon through stringstreams and the
// bfly_serviced binary just passes std::cin/std::cout.
#pragma once

#include <iosfwd>

#include "service/executor.hpp"

namespace bfly::service {

struct DaemonOptions {
  ServiceOptions service;
  /// Print "READY ..." once recovery is done, so a driver (the chaos
  /// harness) knows when the daemon is accepting queries.
  bool announce_ready = true;
};

/// Runs the read-parse-submit loop until EOF or a QUIT line, then
/// drains outstanding responses and returns 0. Daemon-level verbs:
/// QUIT/EXIT end the session, STATS prints a counter line. A line the
/// parser rejects yields an ERR bad-request response; nothing a client
/// writes can bring the loop down.
int run_daemon(std::istream& in, std::ostream& out,
               const DaemonOptions& opts);

}  // namespace bfly::service
