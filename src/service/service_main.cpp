// bfly_serviced: the bisection query daemon over stdin/stdout.
//
//   bfly_serviced [--cache-dir=DIR] [--workers=N] [--queue=N] [--lru=N]
//                 [--deadline-ms=MS] [--fault-seed=S]
//
// Protocol: see service/request.hpp (and the README "Service" section).
// --fault-seed arms fault::FaultPlan::random(S) for the whole session —
// the chaos harness's seeded sweep — and is a no-op (with a warning)
// when the build lacks BFLY_FAULT_INJECTION.

#include <charconv>
#include <cstdlib>
#include <iostream>
#include <string_view>

#include "robust/fault_injection.hpp"
#include "service/daemon.hpp"

namespace {

bool parse_flag(std::string_view arg, std::string_view name,
                std::string_view& value) {
  if (arg.size() <= name.size() + 1 || arg.substr(0, name.size()) != name ||
      arg[name.size()] != '=') {
    return false;
  }
  value = arg.substr(name.size() + 1);
  return true;
}

std::uint64_t parse_num(std::string_view value, const char* flag) {
  std::uint64_t v = 0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), v);
  if (ec != std::errc() || ptr != value.data() + value.size()) {
    std::cerr << "bfly_serviced: bad value for " << flag << ": " << value
              << '\n';
    std::exit(2);
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  bfly::service::DaemonOptions opts;
  bool fault_seed_set = false;
  std::uint64_t fault_seed = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    std::string_view value;
    if (parse_flag(arg, "--cache-dir", value)) {
      opts.service.cache_dir = std::filesystem::path(value);
    } else if (parse_flag(arg, "--workers", value)) {
      opts.service.workers =
          static_cast<unsigned>(parse_num(value, "--workers"));
    } else if (parse_flag(arg, "--queue", value)) {
      opts.service.queue_capacity =
          static_cast<std::size_t>(parse_num(value, "--queue"));
    } else if (parse_flag(arg, "--lru", value)) {
      opts.service.lru_capacity =
          static_cast<std::size_t>(parse_num(value, "--lru"));
    } else if (parse_flag(arg, "--deadline-ms", value)) {
      opts.service.default_deadline_seconds =
          static_cast<double>(parse_num(value, "--deadline-ms")) / 1e3;
    } else if (parse_flag(arg, "--fault-seed", value)) {
      fault_seed = parse_num(value, "--fault-seed");
      fault_seed_set = true;
    } else {
      std::cerr << "bfly_serviced: unknown argument " << arg << '\n'
                << "usage: bfly_serviced [--cache-dir=DIR] [--workers=N]"
                   " [--queue=N] [--lru=N] [--deadline-ms=MS]"
                   " [--fault-seed=S]\n";
      return 2;
    }
  }
  if (!fault_seed_set) {
    if (const char* env = std::getenv("BFLY_SERVICE_FAULT_SEED")) {
      fault_seed = parse_num(env, "BFLY_SERVICE_FAULT_SEED");
      fault_seed_set = true;
    }
  }
  if (fault_seed_set) {
    if (bfly::fault::compiled_in()) {
      bfly::fault::FaultInjector::instance().arm(
          bfly::fault::FaultPlan::random(fault_seed));
    } else {
      std::cerr << "bfly_serviced: fault seed ignored"
                   " (built without BFLY_FAULT_INJECTION)\n";
    }
  }

  return bfly::service::run_daemon(std::cin, std::cout, opts);
}
