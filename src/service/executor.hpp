// The query executor behind the daemon (DESIGN.md §14): admission
// control, fair-share scheduling, coalescing, and the two-tier cache,
// multiplexing concurrent requests over a small worker pool whose
// solver calls ride the Supervisor's retry/degradation ladder.
//
// Fair share by construction: cache hits, BOUNDARY computations, and
// every rejection are served inline on the submitting thread — they
// never enter the solver queue, so a giant exact request grinding in a
// worker cannot add a microsecond to a warm lookup. Only bisection
// cache misses queue; the bounded queue sheds (kShed) when full, a
// request whose deadline passed while queued is dropped honestly
// (kDeadline), and identical in-flight (canonical key, policy) pairs
// coalesce into one computation.
//
// Chaos sites: kEnqueue (admission), kDispatch (worker pickup), and
// kCacheWrite (inside the persistent tier) — each injected fault
// surfaces as an honest status or a lost persistence, never a wrong
// value and never a dead daemon.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/sync.hpp"
#include "robust/supervisor.hpp"
#include "service/cache.hpp"
#include "service/request.hpp"

namespace bfly::service {

struct ServiceOptions {
  /// Solver worker threads draining the miss queue.
  unsigned workers = 2;
  /// Bounded admission queue; a miss arriving when this many distinct
  /// computations are queued is shed.
  std::size_t queue_capacity = 64;
  std::size_t lru_capacity = 1024;
  /// Persistent-tier directory (empty = memory-only service).
  std::filesystem::path cache_dir;
  /// Applied when a request carries no deadline (0 = unlimited).
  double default_deadline_seconds = 30.0;
  /// Applied when a request carries no node budget.
  std::uint64_t default_node_budget = 1ull << 20;
  /// Threads inside each solver call (1 = deterministic serial solves).
  unsigned solver_threads = 1;
  /// Retry backoff pinned for the whole service, so replayed fault
  /// schedules sleep identically (see robust::BackoffPolicy).
  robust::BackoffPolicy backoff;
  /// Spin workers in the constructor. Tests set false to stage the
  /// queue deterministically, then call start().
  bool autostart = true;
};

/// Monotonic counters; stats() returns a coherent-enough snapshot
/// (individual counters are exact, cross-counter sums can be mid-update
/// by one request).
struct ServiceStats {
  std::uint64_t received = 0;
  std::uint64_t ok = 0;
  std::uint64_t shed = 0;
  std::uint64_t deadline_expired = 0;
  std::uint64_t bad_request = 0;
  std::uint64_t failed = 0;
  std::uint64_t hits_memory = 0;
  std::uint64_t hits_disk = 0;
  std::uint64_t computed = 0;
  std::uint64_t coalesced = 0;
  std::uint64_t persist_failures = 0;
  std::uint64_t quarantined = 0;      ///< corrupt cache files set aside
  std::uint64_t recovered_entries = 0;  ///< intact entries found at startup
  std::uint64_t tmp_removed = 0;        ///< torn writes swept at startup
};

class Service {
 public:
  explicit Service(ServiceOptions opts);
  ~Service();
  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Starts the worker pool (idempotent; the constructor already did it
  /// unless opts.autostart was false).
  void start();

  /// Submits a request; `done` runs exactly once — inline for cache
  /// hits, boundaries, and rejections, or on a worker thread later.
  void query_async(Request req, std::function<void(Response)> done);

  /// Blocking convenience around query_async.
  [[nodiscard]] Response query(const Request& req);

  /// Stops workers and sheds everything still queued. Idempotent; the
  /// destructor calls it.
  void shutdown();

  [[nodiscard]] ServiceStats stats() const;

  [[nodiscard]] const ServiceOptions& options() const noexcept {
    return opts_;
  }

 private:
  /// One requester: a queued leader or a coalesced follower.
  struct Party {
    Request req;
    std::uint64_t key = 0;
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline_tp{};
    std::chrono::steady_clock::time_point t0{};
    bool coalesced = false;
    std::function<void(Response)> done;
  };

  /// One in-flight computation — queued or already running on a
  /// worker. The entry lives until the computation finishes, so an
  /// identical request arriving mid-solve joins it (`parties` holds the
  /// late joiners; the pre-pop parties travel with the worker).
  struct Pending {
    std::vector<Party> parties;
    bool running = false;
  };

  void respond(Party& party, Response r) const;
  void worker_loop();
  void run_computation(std::uint64_t pkey, std::vector<Party> parties);
  /// Removes the pending entry and returns the parties that joined
  /// after the worker picked the computation up (idempotent: a second
  /// call, or a call after the entry was never created, returns empty).
  [[nodiscard]] std::vector<Party> detach_pending(std::uint64_t pkey);
  [[nodiscard]] Response solve_bisection_for(
      const Party& party, double remaining_seconds) const;

  ServiceOptions opts_;
  ServiceCache cache_;

  mutable sync::Mutex mu_;
  sync::CondVar work_cv_;
  std::deque<std::uint64_t> queue_ BFLY_GUARDED_BY(mu_);
  std::unordered_map<std::uint64_t, Pending> pending_ BFLY_GUARDED_BY(mu_);
  bool stopping_ BFLY_GUARDED_BY(mu_) = false;
  bool started_ BFLY_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;

  struct Counters {
    std::atomic<std::uint64_t> received{0}, ok{0}, shed{0}, deadline{0},
        bad_request{0}, failed{0}, hits_memory{0}, hits_disk{0}, computed{0},
        coalesced{0}, persist_failures{0};
  };
  mutable Counters counters_;
};

}  // namespace bfly::service
