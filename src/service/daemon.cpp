#include "service/daemon.hpp"

#include <cctype>
#include <istream>
#include <ostream>
#include <string>
#include <string_view>

#include "core/sync.hpp"

namespace bfly::service {

namespace {

[[nodiscard]] std::string stats_line(const ServiceStats& s) {
  std::string out = "STATS";
  const auto field = [&out](const char* name, std::uint64_t v) {
    out += ' ';
    out += name;
    out += '=';
    out += std::to_string(v);
  };
  field("received", s.received);
  field("ok", s.ok);
  field("shed", s.shed);
  field("deadline", s.deadline_expired);
  field("bad_request", s.bad_request);
  field("failed", s.failed);
  field("hits_memory", s.hits_memory);
  field("hits_disk", s.hits_disk);
  field("computed", s.computed);
  field("coalesced", s.coalesced);
  field("persist_failures", s.persist_failures);
  field("quarantined", s.quarantined);
  field("recovered", s.recovered_entries);
  field("tmp_removed", s.tmp_removed);
  return out;
}

[[nodiscard]] bool is_verb(const std::string& line, const char* verb) {
  std::size_t i = 0;
  while (i < line.size() &&
         std::isspace(static_cast<unsigned char>(line[i])) != 0) {
    ++i;
  }
  std::size_t j = i;
  while (j < line.size() &&
         std::isspace(static_cast<unsigned char>(line[j])) == 0) {
    ++j;
  }
  const std::string_view tok(line.data() + i, j - i);
  if (tok.size() != std::string_view(verb).size()) return false;
  for (std::size_t k = 0; k < tok.size(); ++k) {
    if (std::toupper(static_cast<unsigned char>(tok[k])) != verb[k]) {
      return false;
    }
  }
  return !tok.empty();
}

}  // namespace

int run_daemon(std::istream& in, std::ostream& out,
               const DaemonOptions& opts) {
  Service service(opts.service);

  // Responses land from worker threads; one mutex keeps lines whole.
  sync::Mutex out_mu;
  std::uint64_t outstanding = 0;
  sync::Mutex count_mu;
  sync::CondVar drained_cv;

  const ServiceStats boot = service.stats();
  if (opts.announce_ready) {
    sync::MutexLock lock(out_mu);
    out << "READY recovered=" << boot.recovered_entries
        << " quarantined=" << boot.quarantined
        << " tmp_removed=" << boot.tmp_removed << '\n'
        << std::flush;
  }

  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (is_verb(line, "QUIT") || is_verb(line, "EXIT")) break;
    if (is_verb(line, "STATS")) {
      const std::string s = stats_line(service.stats());
      sync::MutexLock lock(out_mu);
      out << s << '\n' << std::flush;
      continue;
    }

    Request req;
    try {
      req = parse_request(line);
    } catch (const ProtocolError& e) {
      Response bad;
      bad.status = Status::kBadRequest;
      bad.detail = e.what();
      sync::MutexLock lock(out_mu);
      out << format_response(bad) << '\n' << std::flush;
      continue;
    }

    {
      sync::MutexLock lock(count_mu);
      ++outstanding;
    }
    service.query_async(std::move(req), [&](Response resp) {
      {
        sync::MutexLock lock(out_mu);
        out << format_response(resp) << '\n' << std::flush;
      }
      sync::MutexLock lock(count_mu);
      --outstanding;
      drained_cv.notify_all();
    });
  }

  // Wait for in-flight responses before tearing the service down, so
  // every admitted request gets its line even on a QUIT-under-load.
  {
    sync::MutexLock lock(count_mu);
    while (outstanding != 0) drained_cv.wait(lock);
  }
  service.shutdown();
  return 0;
}

}  // namespace bfly::service
