#include "service/request.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdio>
#include <limits>
#include <vector>

#include "core/error.hpp"
#include "robust/wire.hpp"
#include "topology/butterfly.hpp"
#include "topology/ccc.hpp"
#include "topology/hypercube.hpp"
#include "topology/wrapped_butterfly.hpp"

namespace bfly::service {

namespace {

[[nodiscard]] bool is_pow2(std::uint32_t n) {
  return n != 0 && (n & (n - 1)) == 0;
}

[[nodiscard]] std::uint32_t log2_u32(std::uint32_t n) {
  std::uint32_t d = 0;
  while ((1u << d) < n) ++d;
  return d;
}

/// Service ceiling: instances past this are a capacity-planning job,
/// not a query (heuristics on 4k nodes still answer within a deadline).
constexpr std::uint64_t kMaxNodes = 4096;
constexpr std::uint64_t kMaxBoundaryNodes = 64;
constexpr std::size_t kMaxIdChars = 64;

[[nodiscard]] bool id_char_ok(char c) {
  return (std::isalnum(static_cast<unsigned char>(c)) != 0) || c == '.' ||
         c == '_' || c == ':' || c == '-';
}

[[nodiscard]] std::string upper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::toupper(c));
  });
  return out;
}

[[nodiscard]] std::uint64_t parse_u64(std::string_view tok, const char* what,
                                      std::uint64_t max_value, int base = 10) {
  std::uint64_t v = 0;
  std::string_view body = tok;
  if (base == 16 && body.size() > 2 &&
      (body.substr(0, 2) == "0x" || body.substr(0, 2) == "0X")) {
    body.remove_prefix(2);
  }
  if (body.empty()) {
    throw ProtocolError(std::string(what) + " is empty");
  }
  const auto [ptr, ec] =
      std::from_chars(body.data(), body.data() + body.size(), v, base);
  if (ec != std::errc() || ptr != body.data() + body.size()) {
    throw ProtocolError(std::string(what) + " '" + std::string(tok) +
                        "' is not a valid number");
  }
  if (v > max_value) {
    throw ProtocolError(std::string(what) + " " + std::to_string(v) +
                        " exceeds the protocol ceiling " +
                        std::to_string(max_value));
  }
  return v;
}

[[nodiscard]] Family parse_family(std::string_view tok) {
  const std::string t = upper(tok);
  if (t == "B" || t == "BF" || t == "BUTTERFLY") return Family::kButterfly;
  if (t == "W" || t == "WRAPPED") return Family::kWrapped;
  if (t == "CCC") return Family::kCcc;
  if (t == "Q" || t == "HYPERCUBE") return Family::kHypercube;
  throw ProtocolError("unknown family '" + std::string(tok) + "'");
}

[[nodiscard]] Policy parse_policy(std::string_view tok) {
  const std::string t = upper(tok);
  if (t == "EXACT") return Policy::kExact;
  if (t == "PORTFOLIO") return Policy::kPortfolio;
  if (t == "HEURISTIC") return Policy::kHeuristic;
  throw ProtocolError("unknown policy '" + std::string(tok) + "'");
}

[[nodiscard]] std::vector<std::string_view> tokenize(std::string_view line) {
  std::vector<std::string_view> toks;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i])) != 0) {
      ++i;
    }
    std::size_t j = i;
    while (j < line.size() &&
           std::isspace(static_cast<unsigned char>(line[j])) == 0) {
      ++j;
    }
    if (j > i) toks.push_back(line.substr(i, j - i));
    i = j;
  }
  return toks;
}

void append_hex16(std::string& out, std::uint64_t v) {
  static const char* kHex = "0123456789abcdef";
  for (int shift = 60; shift >= 0; shift -= 4) {
    out.push_back(kHex[(v >> shift) & 0xf]);
  }
}

}  // namespace

const char* to_string(Family f) {
  switch (f) {
    case Family::kButterfly: return "B";
    case Family::kWrapped: return "W";
    case Family::kCcc: return "CCC";
    case Family::kHypercube: return "Q";
  }
  return "?";
}

const char* to_string(QueryKind k) {
  switch (k) {
    case QueryKind::kBisectionWidth: return "BW";
    case QueryKind::kBoundary: return "BOUNDARY";
  }
  return "?";
}

const char* to_string(Policy p) {
  switch (p) {
    case Policy::kExact: return "exact";
    case Policy::kPortfolio: return "portfolio";
    case Policy::kHeuristic: return "heuristic";
  }
  return "?";
}

const char* to_string(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kShed: return "shed";
    case Status::kDeadline: return "deadline";
    case Status::kBadRequest: return "bad-request";
    case Status::kFailed: return "failed";
  }
  return "?";
}

const char* to_string(Source s) {
  switch (s) {
    case Source::kNone: return "none";
    case Source::kMemory: return "memory";
    case Source::kDisk: return "disk";
    case Source::kComputed: return "computed";
    case Source::kCoalesced: return "coalesced";
  }
  return "?";
}

std::uint64_t instance_nodes(Family family, std::uint32_t n) {
  if (!is_pow2(n)) return 0;
  const std::uint64_t d = log2_u32(n);
  switch (family) {
    case Family::kButterfly: return (d + 1) * n;
    case Family::kWrapped: return d * n;
    case Family::kCcc: return d * n;
    case Family::kHypercube: return n;
  }
  return 0;
}

bool valid_instance(Family family, std::uint32_t n) {
  if (!is_pow2(n)) return false;
  switch (family) {
    case Family::kButterfly:
      if (n < 2) return false;
      break;
    case Family::kWrapped:
    case Family::kCcc:
      if (n < 4) return false;  // the builders need log n >= 2
      break;
    case Family::kHypercube:
      if (n < 2) return false;
      break;
  }
  const std::uint64_t nodes = instance_nodes(family, n);
  return nodes > 0 && nodes <= kMaxNodes;
}

Graph build_graph(Family family, std::uint32_t n) {
  BFLY_ASSERT(valid_instance(family, n));
  switch (family) {
    case Family::kButterfly: return topo::Butterfly(n).graph();
    case Family::kWrapped: return topo::WrappedButterfly(n).graph();
    case Family::kCcc: return topo::CubeConnectedCycles(n).graph();
    case Family::kHypercube: return topo::Hypercube(log2_u32(n)).graph();
  }
  BFLY_ASSERT(false);
  return {};
}

algo::PermutationGroup automorphism_group(Family family, std::uint32_t n) {
  BFLY_ASSERT(valid_instance(family, n));
  const NodeId nodes = static_cast<NodeId>(instance_nodes(family, n));
  switch (family) {
    case Family::kButterfly:
      return {nodes, topo::Butterfly(n).automorphism_generators()};
    case Family::kWrapped:
      return {nodes, topo::WrappedButterfly(n).automorphism_generators()};
    case Family::kCcc:
      return {nodes, topo::CubeConnectedCycles(n).automorphism_generators()};
    case Family::kHypercube:
      return {nodes, topo::Hypercube(log2_u32(n)).automorphism_generators()};
  }
  BFLY_ASSERT(false);
  return {};
}

std::uint64_t canonical_mask(Family family, std::uint32_t n,
                             std::uint64_t mask) {
  BFLY_ASSERT(instance_nodes(family, n) <= 64);
  const algo::PermutationGroup group = automorphism_group(family, n);
  const std::vector<std::uint64_t> orbit = group.mask_orbit(mask);
  BFLY_ASSERT(!orbit.empty());
  return orbit.front();  // sorted ascending: front is the lex-min
}

std::uint64_t canonical_key(const Request& r) {
  namespace wire = robust::wire;
  std::uint64_t h = wire::kFnvOffset;
  h = wire::fnv1a_u64(h, 0x42464c59u);  // 'BFLY' domain tag
  h = wire::fnv1a_u64(h, static_cast<std::uint64_t>(r.kind));
  h = wire::fnv1a_u64(h, static_cast<std::uint64_t>(r.family));
  h = wire::fnv1a_u64(h, r.n);
  if (r.kind == QueryKind::kBoundary) {
    h = wire::fnv1a_u64(h, canonical_mask(r.family, r.n, r.subset_mask));
  }
  return h;
}

Request parse_request(std::string_view line) {
  if (line.size() > kMaxLineBytes) {
    throw ProtocolError("line exceeds " + std::to_string(kMaxLineBytes) +
                        " bytes");
  }
  const std::vector<std::string_view> toks = tokenize(line);
  if (toks.empty()) {
    throw ProtocolError("empty request line");
  }

  Request r;
  const std::string verb = upper(toks[0]);
  std::size_t pos = 1;
  if (verb == "BW") {
    r.kind = QueryKind::kBisectionWidth;
  } else if (verb == "BOUNDARY") {
    r.kind = QueryKind::kBoundary;
  } else {
    throw ProtocolError("unknown verb '" + std::string(toks[0]) + "'");
  }

  if (pos >= toks.size()) throw ProtocolError("missing family");
  r.family = parse_family(toks[pos++]);
  if (pos >= toks.size()) throw ProtocolError("missing width parameter n");
  r.n = static_cast<std::uint32_t>(
      parse_u64(toks[pos++], "n", std::uint64_t{1} << 20));
  if (r.kind == QueryKind::kBoundary) {
    if (pos >= toks.size()) throw ProtocolError("missing subset mask");
    r.subset_mask = parse_u64(toks[pos++], "mask",
                              std::numeric_limits<std::uint64_t>::max(), 16);
  }

  for (; pos < toks.size(); ++pos) {
    const std::string_view tok = toks[pos];
    const std::size_t eq = tok.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      throw ProtocolError("expected key=value, got '" + std::string(tok) +
                          "'");
    }
    const std::string key = upper(tok.substr(0, eq));
    const std::string_view val = tok.substr(eq + 1);
    if (key == "POLICY") {
      r.policy = parse_policy(val);
    } else if (key == "DEADLINE_MS") {
      r.deadline_seconds =
          static_cast<double>(parse_u64(val, "deadline_ms", 86'400'000)) /
          1e3;
    } else if (key == "NODES") {
      r.node_budget = parse_u64(val, "nodes",
                                std::numeric_limits<std::uint64_t>::max());
    } else if (key == "ID") {
      if (val.empty() || val.size() > kMaxIdChars) {
        throw ProtocolError("id must be 1.." + std::to_string(kMaxIdChars) +
                            " chars");
      }
      for (const char c : val) {
        if (!id_char_ok(c)) {
          throw ProtocolError("id holds a character outside [A-Za-z0-9._:-]");
        }
      }
      r.id = std::string(val);
    } else {
      throw ProtocolError("unknown option '" + key + "'");
    }
  }
  return r;
}

std::string format_response(const Response& r) {
  std::string out;
  out.reserve(96);
  const std::string& id = r.id.empty() ? std::string("-") : r.id;
  if (r.status == Status::kOk) {
    out += "OK id=";
    out += id;
    out += " key=";
    append_hex16(out, r.key);
    out += " value=" + std::to_string(r.value);
    out += " exact=";
    out += r.exact ? '1' : '0';
    out += " source=";
    out += to_string(r.source);
    char ms[32];
    std::snprintf(ms, sizeof ms, " ms=%.3f", r.wall_ms);
    out += ms;
  } else {
    out += "ERR id=";
    out += id;
    out += " status=";
    out += to_string(r.status);
    if (!r.detail.empty()) {
      out += " detail=";
      for (const char c : r.detail) {
        out.push_back(c == '\n' || c == '\r' ? ' ' : c);
      }
    }
  }
  return out;
}

}  // namespace bfly::service
