#include "service/cache.hpp"

#include <algorithm>
#include <array>
#include <system_error>
#include <utility>

#include "robust/checkpoint.hpp"
#include "robust/fault_injection.hpp"
#include "robust/wire.hpp"

namespace bfly::service {

namespace {

namespace wire = robust::wire;
using robust::SnapshotError;
using robust::SnapshotFault;

constexpr std::array<std::uint8_t, 8> kMagic = {'B', 'F', 'L', 'Y',
                                                'S', 'V', 'C', '1'};
constexpr std::uint32_t kVersion = 1;

[[nodiscard]] std::string key_hex(std::uint64_t key) {
  static const char* kHex = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 0; i < 16; ++i) {
    out[i] = kHex[(key >> (60 - 4 * i)) & 0xf];
  }
  return out;
}

}  // namespace

std::vector<std::uint8_t> encode_entry(const CacheEntry& e) {
  std::vector<std::uint8_t> out;
  out.reserve(64);
  out.insert(out.end(), kMagic.begin(), kMagic.end());
  wire::put_u32(out, kVersion);
  wire::put_u64(out, e.key);
  out.push_back(static_cast<std::uint8_t>(e.kind));
  out.push_back(static_cast<std::uint8_t>(e.family));
  wire::put_u32(out, e.n);
  wire::put_u64(out, e.mask);
  wire::put_u64(out, e.value);
  out.push_back(e.exact ? 1 : 0);
  wire::put_u64(out, wire::fnv1a(wire::kFnvOffset, out.data(), out.size()));
  return out;
}

CacheEntry decode_entry(std::span<const std::uint8_t> bytes) {
  wire::Reader r(bytes);
  const auto magic = r.raw(kMagic.size(), "magic");
  if (!std::equal(magic.begin(), magic.end(), kMagic.begin())) {
    throw SnapshotError(SnapshotFault::kBadMagic,
                        "file does not start with the BFLYSVC magic");
  }
  const std::uint32_t version = r.u32("version");
  if (version != kVersion) {
    throw SnapshotError(SnapshotFault::kBadVersion,
                        "unknown cache-entry version " +
                            std::to_string(version));
  }
  CacheEntry e;
  e.key = r.u64("key");
  const std::uint8_t kind = r.u8("kind");
  const std::uint8_t family = r.u8("family");
  e.n = r.u32("n");
  e.mask = r.u64("mask");
  e.value = r.u64("value");
  const std::uint8_t exact = r.u8("exact");

  const std::uint64_t declared = r.u64("checksum");
  const std::uint64_t actual =
      wire::fnv1a(wire::kFnvOffset, bytes.data(), r.consumed() - 8);
  if (declared != actual) {
    throw SnapshotError(SnapshotFault::kBadChecksum,
                        "cache entry does not match its checksum");
  }
  if (r.remaining() != 0) {
    throw SnapshotError(SnapshotFault::kMalformed,
                        std::to_string(r.remaining()) +
                            " trailing bytes after the checksum");
  }

  if (kind > static_cast<std::uint8_t>(QueryKind::kBoundary)) {
    throw SnapshotError(SnapshotFault::kMalformed,
                        "kind " + std::to_string(kind) + " is not a query");
  }
  if (family > static_cast<std::uint8_t>(Family::kHypercube)) {
    throw SnapshotError(SnapshotFault::kMalformed,
                        "family " + std::to_string(family) + " is unknown");
  }
  if (exact > 1) {
    throw SnapshotError(SnapshotFault::kMalformed,
                        "exact flag is neither 0 nor 1");
  }
  e.kind = static_cast<QueryKind>(kind);
  e.family = static_cast<Family>(family);
  e.exact = exact == 1;

  // An entry whose instance is outside the service domain, or whose
  // stored key disagrees with the canonical key of its own fields, is
  // hostile or stale — never serve it.
  if (!valid_instance(e.family, e.n)) {
    throw SnapshotError(SnapshotFault::kMalformed,
                        "entry names an instance outside the service domain");
  }
  Request probe;
  probe.kind = e.kind;
  probe.family = e.family;
  probe.n = e.n;
  probe.subset_mask = e.mask;
  if (e.kind == QueryKind::kBoundary) {
    const std::uint64_t nodes = instance_nodes(e.family, e.n);
    if (nodes > 64 || (nodes < 64 && (e.mask >> nodes) != 0)) {
      throw SnapshotError(SnapshotFault::kMalformed,
                          "boundary mask is outside the instance's node range");
    }
  }
  if (canonical_key(probe) != e.key) {
    throw SnapshotError(SnapshotFault::kWrongGraph,
                        "entry key does not match its own fields");
  }
  return e;
}

std::optional<CacheEntry> LruCache::get(std::uint64_t key) {
  const auto it = map_.find(key);
  if (it == map_.end()) return std::nullopt;
  order_.splice(order_.begin(), order_, it->second);
  return *it->second;
}

CacheEntry LruCache::put(const CacheEntry& e) {
  const auto it = map_.find(e.key);
  if (it != map_.end()) {
    CacheEntry& held = *it->second;
    const bool stronger = (e.exact && !held.exact) ||
                          (e.exact == held.exact && e.value < held.value);
    if (stronger) held = e;
    order_.splice(order_.begin(), order_, it->second);
    return held;
  }
  if (capacity_ == 0) return e;
  if (order_.size() >= capacity_) {
    map_.erase(order_.back().key);
    order_.pop_back();
  }
  order_.push_front(e);
  map_[e.key] = order_.begin();
  return e;
}

PersistentCache::PersistentCache(std::filesystem::path dir)
    : dir_(std::move(dir)) {
  if (!dir_.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec) {
      throw SnapshotError(SnapshotFault::kIo,
                          "cannot create cache directory " + dir_.string());
    }
  }
}

std::filesystem::path PersistentCache::entry_path(std::uint64_t key) const {
  return dir_ / (key_hex(key) + ".bfc");
}

void PersistentCache::quarantine(const std::filesystem::path& path) {
  quarantined_.fetch_add(1, std::memory_order_relaxed);
  std::filesystem::path aside = path;
  aside += ".quarantined";
  std::error_code ec;
  std::filesystem::rename(path, aside, ec);
  if (ec) std::filesystem::remove(path, ec);
}

PersistentCache::RecoveryReport PersistentCache::recover() {
  RecoveryReport report;
  if (!enabled()) return report;
  std::error_code ec;
  for (const auto& de : std::filesystem::directory_iterator(dir_, ec)) {
    const std::filesystem::path& path = de.path();
    if (path.extension() == ".tmp") {
      std::error_code rec;
      std::filesystem::remove(path, rec);
      ++report.tmp_removed;
      continue;
    }
    if (path.extension() != ".bfc") continue;
    try {
      const CacheEntry e = decode_entry(wire::read_file(path));
      if (path.stem().string() != key_hex(e.key)) {
        // An entry copied over another key's file would otherwise serve
        // the wrong instance under that key.
        throw SnapshotError(SnapshotFault::kWrongGraph,
                            "file name does not match the entry key");
      }
      report.entries.push_back(e);
    } catch (const SnapshotError&) {
      quarantine(path);
      ++report.quarantined;
    }
  }
  return report;
}

std::optional<CacheEntry> PersistentCache::load(std::uint64_t key) {
  if (!enabled()) return std::nullopt;
  const std::filesystem::path path = entry_path(key);
  std::error_code ec;
  if (!std::filesystem::exists(path, ec) || ec) return std::nullopt;
  try {
    CacheEntry e = decode_entry(wire::read_file(path));
    if (e.key != key) {
      throw SnapshotError(SnapshotFault::kWrongGraph,
                          "entry key does not match the requested key");
    }
    return e;
  } catch (const SnapshotError& err) {
    if (err.fault() != SnapshotFault::kIo) quarantine(path);
    return std::nullopt;
  }
}

void PersistentCache::store(const CacheEntry& e) {
  if (!enabled()) return;
  BFLY_FAULT_POINT(kCacheWrite);
  wire::atomic_write_file(entry_path(e.key), encode_entry(e));
}

std::uint64_t PersistentCache::quarantined() const noexcept {
  return quarantined_.load(std::memory_order_relaxed);
}

ServiceCache::ServiceCache(std::size_t lru_capacity,
                           std::filesystem::path dir)
    : lru_(lru_capacity), disk_(std::move(dir)) {
  PersistentCache::RecoveryReport report = disk_.recover();
  recovered_entries_ = report.entries.size();
  tmp_removed_ = report.tmp_removed;
  sync::MutexLock lock(mem_mu_);
  for (const CacheEntry& e : report.entries) lru_.put(e);
}

std::optional<ServiceCache::Hit> ServiceCache::lookup(std::uint64_t key,
                                                      bool want_exact) {
  {
    sync::MutexLock lock(mem_mu_);
    if (std::optional<CacheEntry> e = lru_.get(key)) {
      if (!want_exact || e->exact) return Hit{*e, Source::kMemory};
    }
  }
  std::optional<CacheEntry> e;
  {
    sync::MutexLock lock(disk_mu_);
    e = disk_.load(key);
  }
  if (!e || (want_exact && !e->exact)) return std::nullopt;
  CacheEntry merged;
  {
    sync::MutexLock lock(mem_mu_);
    merged = lru_.put(*e);
  }
  return Hit{merged, Source::kDisk};
}

ServiceCache::InsertOutcome ServiceCache::insert(const CacheEntry& e) {
  CacheEntry merged;
  {
    sync::MutexLock lock(mem_mu_);
    merged = lru_.put(e);
  }
  if (!disk_.enabled()) return InsertOutcome::kMemoryOnly;
  try {
    sync::MutexLock lock(disk_mu_);
    disk_.store(merged);
    return InsertOutcome::kPersisted;
  } catch (const std::exception&) {
    // An injected kCacheWrite fault or a real I/O refusal: the answer
    // stays correct and in memory; only durability is lost.
    return InsertOutcome::kPersistFailed;
  }
}

}  // namespace bfly::service
