#include "service/executor.hpp"

#include <algorithm>
#include <chrono>
#include <future>
#include <utility>

#include "expansion/expansion.hpp"
#include "robust/fault_injection.hpp"
#include "robust/wire.hpp"

namespace bfly::service {

namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// Queue key: canonical instance key folded with the policy, so an
/// exact request never coalesces onto a heuristic computation (their
/// answers carry different claims).
[[nodiscard]] std::uint64_t pending_key(std::uint64_t key, Policy policy) {
  return robust::wire::fnv1a_u64(key, static_cast<std::uint64_t>(policy));
}

[[nodiscard]] std::string key_hex(std::uint64_t key) {
  static const char* kHex = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 0; i < 16; ++i) {
    out[i] = kHex[(key >> (60 - 4 * i)) & 0xf];
  }
  return out;
}

[[nodiscard]] Response make_error(Status status, std::string detail) {
  Response r;
  r.status = status;
  r.detail = std::move(detail);
  return r;
}

}  // namespace

Service::Service(ServiceOptions opts)
    : opts_(std::move(opts)),
      cache_(opts_.lru_capacity, opts_.cache_dir) {
  if (opts_.autostart) start();
}

Service::~Service() { shutdown(); }

void Service::start() {
  unsigned spawn = 0;
  {
    sync::MutexLock lock(mu_);
    if (started_ || stopping_) return;
    started_ = true;
    spawn = std::max(1u, opts_.workers);
  }
  workers_.reserve(spawn);
  for (unsigned i = 0; i < spawn; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void Service::shutdown() {
  {
    sync::MutexLock lock(mu_);
    stopping_ = true;
    work_cv_.notify_all();
  }
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
  // Everything still queued is shed honestly instead of silently lost.
  std::vector<Party> orphans;
  {
    sync::MutexLock lock(mu_);
    for (auto& [pkey, pending] : pending_) {
      for (Party& p : pending.parties) orphans.push_back(std::move(p));
    }
    pending_.clear();
    queue_.clear();
  }
  for (Party& p : orphans) {
    respond(p, make_error(Status::kShed, "service shutting down"));
  }
}

void Service::respond(Party& party, Response r) const {
  r.id = party.req.id;
  if (r.key == 0) r.key = party.key;
  r.wall_ms = ms_since(party.t0);
  switch (r.status) {
    case Status::kOk: counters_.ok.fetch_add(1); break;
    case Status::kShed: counters_.shed.fetch_add(1); break;
    case Status::kDeadline: counters_.deadline.fetch_add(1); break;
    case Status::kBadRequest: counters_.bad_request.fetch_add(1); break;
    case Status::kFailed: counters_.failed.fetch_add(1); break;
  }
  party.done(std::move(r));
}

void Service::query_async(Request req, std::function<void(Response)> done) {
  counters_.received.fetch_add(1);
  Party party;
  party.t0 = Clock::now();
  party.req = std::move(req);
  party.done = std::move(done);
  const Request& r = party.req;

  if (!valid_instance(r.family, r.n)) {
    respond(party, make_error(Status::kBadRequest,
                              std::string(to_string(r.family)) +
                                  std::to_string(r.n) +
                                  " is outside the service domain"));
    return;
  }
  if (r.kind == QueryKind::kBoundary) {
    const std::uint64_t nodes = instance_nodes(r.family, r.n);
    if (nodes > 64) {
      respond(party,
              make_error(Status::kBadRequest,
                         "boundary queries need a <= 64-node instance"));
      return;
    }
    if (nodes < 64 && (r.subset_mask >> nodes) != 0) {
      respond(party, make_error(Status::kBadRequest,
                                "mask holds bits past the last node"));
      return;
    }
  }
  party.key = canonical_key(r);
  const bool want_exact = r.policy == Policy::kExact;

  // Fast path, inline on the submitting thread: hits (and cheap
  // boundary computes below) never touch the solver queue.
  if (std::optional<ServiceCache::Hit> hit =
          cache_.lookup(party.key, want_exact)) {
    (hit->source == Source::kMemory ? counters_.hits_memory
                                    : counters_.hits_disk)
        .fetch_add(1);
    Response resp;
    resp.status = Status::kOk;
    resp.value = hit->entry.value;
    resp.exact = hit->entry.exact;
    resp.source = hit->source;
    respond(party, std::move(resp));
    return;
  }

  if (r.kind == QueryKind::kBoundary) {
    const Graph g = build_graph(r.family, r.n);
    std::vector<NodeId> set;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (((r.subset_mask >> v) & 1u) != 0) set.push_back(v);
    }
    CacheEntry entry;
    entry.key = party.key;
    entry.kind = r.kind;
    entry.family = r.family;
    entry.n = r.n;
    entry.mask = canonical_mask(r.family, r.n, r.subset_mask);
    entry.value = expansion::edge_boundary(g, set);
    entry.exact = true;  // a boundary count is a count, not a bound
    if (cache_.insert(entry) == ServiceCache::InsertOutcome::kPersistFailed) {
      counters_.persist_failures.fetch_add(1);
    }
    counters_.computed.fetch_add(1);
    Response resp;
    resp.status = Status::kOk;
    resp.value = entry.value;
    resp.exact = true;
    resp.source = Source::kComputed;
    respond(party, std::move(resp));
    return;
  }

  // Bisection miss: admission control.
  const double deadline_s = r.deadline_seconds > 0.0
                                ? r.deadline_seconds
                                : opts_.default_deadline_seconds;
  if (deadline_s > 0.0) {
    party.has_deadline = true;
    party.deadline_tp =
        party.t0 + std::chrono::duration_cast<Clock::duration>(
                       std::chrono::duration<double>(deadline_s));
  }
  const std::uint64_t pkey = pending_key(party.key, r.policy);
  enum class Verdict { kQueued, kCoalesced, kQueueFull, kEnqueueFault };
  Verdict verdict;
  {
    sync::MutexLock lock(mu_);
    const auto it = pending_.find(pkey);
    if (it != pending_.end()) {
      party.coalesced = true;
      counters_.coalesced.fetch_add(1);
      it->second.parties.push_back(std::move(party));
      verdict = Verdict::kCoalesced;
    } else if (queue_.size() >= opts_.queue_capacity) {
      verdict = Verdict::kQueueFull;
    } else {
      try {
        BFLY_FAULT_POINT(kEnqueue);
        queue_.push_back(pkey);
        pending_[pkey].parties.push_back(std::move(party));
        work_cv_.notify_one();
        verdict = Verdict::kQueued;
      } catch (const fault::FaultInjectedError&) {
        verdict = Verdict::kEnqueueFault;
      }
    }
  }
  switch (verdict) {
    case Verdict::kQueued:
    case Verdict::kCoalesced:
      return;  // a worker responds later
    case Verdict::kQueueFull:
      respond(party, make_error(Status::kShed, "admission queue full"));
      return;
    case Verdict::kEnqueueFault:
      respond(party, make_error(Status::kShed, "injected enqueue fault"));
      return;
  }
}

Response Service::query(const Request& req) {
  std::promise<Response> promise;
  std::future<Response> future = promise.get_future();
  query_async(req, [&promise](Response r) { promise.set_value(std::move(r)); });
  return future.get();
}

void Service::worker_loop() {
  for (;;) {
    std::vector<Party> parties;
    std::uint64_t pkey_out = 0;
    {
      sync::MutexLock lock(mu_);
      while (queue_.empty() && !stopping_) work_cv_.wait(lock);
      if (stopping_) return;  // shutdown() sheds what remains
      const std::uint64_t pkey = queue_.front();
      queue_.pop_front();
      const auto it = pending_.find(pkey);
      if (it == pending_.end()) continue;
      // Take the parties but leave the entry: an identical request
      // arriving mid-solve joins it instead of recomputing. The entry
      // is erased by detach_pending() when the computation resolves.
      parties = std::move(it->second.parties);
      it->second.parties.clear();
      it->second.running = true;
      pkey_out = pkey;
    }
    run_computation(pkey_out, std::move(parties));
  }
}

std::vector<Service::Party> Service::detach_pending(std::uint64_t pkey) {
  std::vector<Party> late;
  sync::MutexLock lock(mu_);
  const auto it = pending_.find(pkey);
  if (it != pending_.end()) {
    late = std::move(it->second.parties);
    pending_.erase(it);
  }
  return late;
}

void Service::run_computation(std::uint64_t pkey, std::vector<Party> parties) {
  // Drop the parties whose deadline passed while queued — honestly,
  // before spending any solver time on them.
  const Clock::time_point now = Clock::now();
  std::vector<Party> live;
  live.reserve(parties.size());
  for (Party& p : parties) {
    if (p.has_deadline && now >= p.deadline_tp) {
      respond(p, make_error(Status::kDeadline,
                            "deadline passed while queued"));
    } else {
      live.push_back(std::move(p));
    }
  }
  if (live.empty()) {
    // Every original party expired, but identical requests may have
    // coalesced onto this slot since the pop; compute for the fresh
    // ones (they just arrived, so their deadlines haven't lapsed).
    live = detach_pending(pkey);
    if (live.empty()) return;
  }

  const std::uint64_t key = live.front().key;
  const bool want_exact = live.front().req.policy == Policy::kExact;

  // The cache may have filled while this job queued (an identical
  // computation admitted earlier finished in the meantime).
  if (std::optional<ServiceCache::Hit> hit = cache_.lookup(key, want_exact)) {
    for (Party& late : detach_pending(pkey)) live.push_back(std::move(late));
    for (Party& p : live) {
      (hit->source == Source::kMemory ? counters_.hits_memory
                                      : counters_.hits_disk)
          .fetch_add(1);
      Response resp;
      resp.status = Status::kOk;
      resp.value = hit->entry.value;
      resp.exact = hit->entry.exact;
      resp.source = hit->source;
      respond(p, std::move(resp));
    }
    return;
  }

  try {
    BFLY_FAULT_POINT(kDispatch);
  } catch (const fault::FaultInjectedError& e) {
    for (Party& late : detach_pending(pkey)) live.push_back(std::move(late));
    for (Party& p : live) {
      respond(p, make_error(Status::kFailed, e.what()));
    }
    return;
  }

  // One computation serves every coalesced party; its deadline is the
  // most generous remaining one (a party whose own deadline lapses
  // mid-solve still gets the shared result, just late).
  double remaining = 0.0;
  bool unlimited = false;
  for (const Party& p : live) {
    if (!p.has_deadline) {
      unlimited = true;
    } else {
      remaining = std::max(
          remaining,
          std::chrono::duration<double>(p.deadline_tp - now).count());
    }
  }
  if (unlimited) remaining = 0.0;

  Response solved = solve_bisection_for(live.front(), remaining);
  counters_.computed.fetch_add(1);
  if (solved.status == Status::kOk) {
    CacheEntry entry;
    entry.key = key;
    entry.kind = live.front().req.kind;
    entry.family = live.front().req.family;
    entry.n = live.front().req.n;
    entry.value = solved.value;
    entry.exact = solved.exact;
    if (cache_.insert(entry) == ServiceCache::InsertOutcome::kPersistFailed) {
      counters_.persist_failures.fetch_add(1);
    }
  }
  // Detach AFTER the cache insert: a request arriving past this point
  // misses the pending entry but finds the fresh cache entry instead.
  for (Party& late : detach_pending(pkey)) live.push_back(std::move(late));
  for (Party& p : live) {
    Response resp = solved;
    resp.source = solved.status == Status::kOk
                      ? (p.coalesced ? Source::kCoalesced : Source::kComputed)
                      : Source::kNone;
    respond(p, std::move(resp));
  }
}

Response Service::solve_bisection_for(const Party& party,
                                      double remaining_seconds) const {
  const Request& r = party.req;
  const Graph g = build_graph(r.family, r.n);

  robust::SupervisorOptions so;
  so.deadline_seconds = remaining_seconds;
  so.backoff = opts_.backoff;
  so.num_threads = opts_.solver_threads;
  so.budgeted_exact_nodes =
      r.node_budget != 0 ? r.node_budget : opts_.default_node_budget;
  if (r.policy == Policy::kExact && cache_.persistent()) {
    // A SIGKILL mid-exact-solve leaves this snapshot behind; the
    // restarted daemon's retry resumes it instead of starting over.
    so.checkpoint_path = cache_.dir() / (key_hex(party.key) + ".snap");
  }
  const robust::Supervisor supervisor(so);

  robust::SolveReport report;
  if (r.policy == Policy::kExact) {
    report = supervisor.solve_bisection(g);
  } else {
    cut::PortfolioOptions po;
    po.run_branch_bound = r.policy == Policy::kPortfolio;
    po.num_threads = opts_.solver_threads;
    report = supervisor.solve_portfolio(g, po);
  }

  Response resp;
  resp.key = party.key;
  if (report.status == robust::SolveStatus::kFailed) {
    resp.status = Status::kFailed;
    resp.detail = "every ladder step failed";
    return resp;
  }
  resp.status = Status::kOk;
  resp.value = report.best.capacity;
  resp.exact = report.best.exactness == cut::Exactness::kExact;
  if (report.deadline_expired) resp.detail = "deadline-degraded";
  return resp;
}

ServiceStats Service::stats() const {
  ServiceStats s;
  s.received = counters_.received.load();
  s.ok = counters_.ok.load();
  s.shed = counters_.shed.load();
  s.deadline_expired = counters_.deadline.load();
  s.bad_request = counters_.bad_request.load();
  s.failed = counters_.failed.load();
  s.hits_memory = counters_.hits_memory.load();
  s.hits_disk = counters_.hits_disk.load();
  s.computed = counters_.computed.load();
  s.coalesced = counters_.coalesced.load();
  s.persist_failures = counters_.persist_failures.load();
  s.quarantined = cache_.quarantined();
  s.recovered_entries = cache_.recovered_entries();
  s.tmp_removed = cache_.tmp_removed();
  return s;
}

}  // namespace bfly::service
