// Shared self-check for the per-topology automorphism generator
// factories: under checked builds every exported generator is verified
// against the graph's edge multiset before it leaves the factory, so a
// wrong symmetry formula fails loudly at construction instead of
// silently corrupting the symmetry-pruned exact kernels.
#pragma once

#include <vector>

#include "algo/automorphism.hpp"
#include "core/error.hpp"
#include "core/graph.hpp"

namespace bfly::topo {

inline std::vector<algo::Perm> verified_generators(
    const Graph& g, std::vector<algo::Perm> gens) {
  if (checked_build()) {
    for (const algo::Perm& gen : gens) {
      BFLY_CHECK(algo::is_automorphism(g, gen),
                 "exported generator is not an automorphism");
    }
  }
  return gens;
}

}  // namespace bfly::topo
