// The j x k mesh of stars MOS_{j,k} (Section 2.1).
//
// Obtained from the complete bipartite graph K_{j,k} by replacing every
// edge with a path of length two. Three "levels": M1 (j nodes), M2 (j*k
// middle nodes, one per K_{j,k} edge), M3 (k nodes). This is the highly
// symmetric network the butterfly is reduced to when proving
// BW(Bn) = 2(sqrt 2 - 1) n + o(n).
#pragma once

#include <cstdint>
#include <vector>

#include "algo/automorphism.hpp"
#include "core/graph.hpp"
#include "core/types.hpp"

namespace bfly::topo {

class MeshOfStars {
 public:
  MeshOfStars(std::uint32_t j, std::uint32_t k);

  [[nodiscard]] std::uint32_t j() const noexcept { return j_; }
  [[nodiscard]] std::uint32_t k() const noexcept { return k_; }

  [[nodiscard]] NodeId num_nodes() const noexcept {
    return j_ + static_cast<NodeId>(j_) * k_ + k_;
  }

  [[nodiscard]] NodeId m1_node(std::uint32_t a) const {
    BFLY_ASSERT(a < j_);
    return a;
  }

  [[nodiscard]] NodeId m2_node(std::uint32_t a, std::uint32_t b) const {
    BFLY_ASSERT(a < j_ && b < k_);
    return j_ + static_cast<NodeId>(a) * k_ + b;
  }

  [[nodiscard]] NodeId m3_node(std::uint32_t b) const {
    BFLY_ASSERT(b < k_);
    return j_ + static_cast<NodeId>(j_) * k_ + b;
  }

  /// 1, 2, or 3 depending on which level v belongs to.
  [[nodiscard]] int level_of(NodeId v) const {
    BFLY_ASSERT(v < num_nodes());
    if (v < j_) return 1;
    if (v < j_ + static_cast<NodeId>(j_) * k_) return 2;
    return 3;
  }

  [[nodiscard]] std::vector<NodeId> m1_nodes() const;
  [[nodiscard]] std::vector<NodeId> m2_nodes() const;
  [[nodiscard]] std::vector<NodeId> m3_nodes() const;

  [[nodiscard]] const Graph& graph() const noexcept { return graph_; }

  /// Generators of an automorphism group of MOS_{j,k}: adjacent M1-row
  /// swaps, adjacent M3-column swaps, and — when j == k — the
  /// transpose exchanging M1 with M3; group order j! * k! (doubled for
  /// j == k). Verified by algo::is_automorphism under checked builds.
  [[nodiscard]] std::vector<algo::Perm> automorphism_generators() const;

 private:
  std::uint32_t j_;
  std::uint32_t k_;
  Graph graph_;
};

}  // namespace bfly::topo
