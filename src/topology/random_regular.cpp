#include "topology/random_regular.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "core/error.hpp"
#include "core/rng.hpp"

namespace bfly::topo {

Graph random_regular(NodeId n, std::uint32_t degree, std::uint64_t seed,
                     const RandomRegularOptions& opts) {
  BFLY_CHECK(degree >= 1, "degree must be positive");
  BFLY_CHECK(n > degree, "need n > degree");
  const std::uint64_t stubs =
      static_cast<std::uint64_t>(n) * degree;
  BFLY_CHECK(stubs % 2 == 0, "n * degree must be even");
  Rng rng(seed);
  std::vector<NodeId> stub(stubs);
  std::vector<std::uint64_t> keys;
  for (std::uint32_t attempt = 0; attempt < opts.max_attempts; ++attempt) {
    for (std::uint64_t i = 0; i < stubs; ++i) {
      stub[i] = static_cast<NodeId>(i / degree);
    }
    shuffle(stub, rng);
    keys.clear();
    keys.reserve(stubs / 2);
    bool ok = true;
    for (std::uint64_t i = 0; i < stubs && ok; i += 2) {
      const NodeId u = std::min(stub[i], stub[i + 1]);
      const NodeId v = std::max(stub[i], stub[i + 1]);
      ok = u != v;  // self-loops always retry
      keys.push_back((static_cast<std::uint64_t>(u) << 32) | v);
    }
    if (ok && !opts.allow_multigraph) {
      std::sort(keys.begin(), keys.end());
      ok = std::adjacent_find(keys.begin(), keys.end()) == keys.end();
    }
    if (!ok) continue;
    GraphBuilder gb(n);
    for (const std::uint64_t key : keys) {
      gb.add_edge(static_cast<NodeId>(key >> 32),
                  static_cast<NodeId>(key & 0xffffffffu));
    }
    return std::move(gb).build();
  }
  BFLY_CHECK(false, "pairing-model rejection budget exhausted");
  // Unreachable; BFLY_CHECK(false, ...) always throws.
  return GraphBuilder(0).build();
}

}  // namespace bfly::topo
