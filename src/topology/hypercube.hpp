// The d-dimensional hypercube Qd (Section 1.5 related networks).
#pragma once

#include <cstdint>

#include "core/graph.hpp"
#include "core/types.hpp"

namespace bfly::topo {

class Hypercube {
 public:
  explicit Hypercube(std::uint32_t dims);

  [[nodiscard]] std::uint32_t dims() const noexcept { return dims_; }
  [[nodiscard]] NodeId num_nodes() const noexcept { return 1u << dims_; }
  [[nodiscard]] const Graph& graph() const noexcept { return graph_; }

 private:
  std::uint32_t dims_;
  Graph graph_;
};

}  // namespace bfly::topo
