// The d-dimensional hypercube Qd (Section 1.5 related networks).
#pragma once

#include <cstdint>
#include <vector>

#include "algo/automorphism.hpp"
#include "core/graph.hpp"
#include "core/types.hpp"

namespace bfly::topo {

class Hypercube {
 public:
  explicit Hypercube(std::uint32_t dims);

  [[nodiscard]] std::uint32_t dims() const noexcept { return dims_; }
  [[nodiscard]] NodeId num_nodes() const noexcept { return 1u << dims_; }
  [[nodiscard]] const Graph& graph() const noexcept { return graph_; }

  /// Generators of Aut(Qd) = Z_2^d x S_d (order 2^d * d!): the per-bit
  /// XOR translations and the adjacent coordinate transpositions.
  /// Verified by algo::is_automorphism under checked builds.
  [[nodiscard]] std::vector<algo::Perm> automorphism_generators() const;

 private:
  std::uint32_t dims_;
  Graph graph_;
};

}  // namespace bfly::topo
