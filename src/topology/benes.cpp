#include "topology/benes.hpp"

#include "core/math_util.hpp"

namespace bfly::topo {

Benes::Benes(std::uint32_t n) : n_(n), dims_(log2_exact(n)) {
  BFLY_CHECK(n >= 2, "Benes network needs at least 2 columns");
  GraphBuilder gb(num_nodes());
  for (std::uint32_t b = 0; b < 2 * dims_; ++b) {
    const std::uint32_t mask = cross_mask(b);
    for (std::uint32_t w = 0; w < n_; ++w) {
      gb.add_edge(node(w, b), node(w, b + 1));
      gb.add_edge(node(w, b), node(w ^ mask, b + 1));
    }
  }
  graph_ = std::move(gb).build();
}

}  // namespace bfly::topo
