#include "topology/ccc.hpp"

#include "core/math_util.hpp"

namespace bfly::topo {

CubeConnectedCycles::CubeConnectedCycles(std::uint32_t n)
    : n_(n), dims_(log2_exact(n)) {
  BFLY_CHECK(n >= 4, "cube-connected cycles needs log n >= 2");
  GraphBuilder gb(num_nodes());
  for (std::uint32_t w = 0; w < n_; ++w) {
    // Cycle edges: one per consecutive position pair. For dims == 2 this
    // naturally yields the doubled <w,0>-<w,1> edge of a 2-cycle.
    for (std::uint32_t i = 0; i < dims_; ++i) {
      gb.add_edge(node(w, i), node(w, (i + 1) % dims_));
    }
    // Cube edges (each once: only from the 0-bit side).
    for (std::uint32_t i = 0; i < dims_; ++i) {
      const std::uint32_t mask = cube_mask(i);
      if ((w & mask) == 0) gb.add_edge(node(w, i), node(w ^ mask, i));
    }
  }
  graph_ = std::move(gb).build();
}

}  // namespace bfly::topo
