#include "topology/ccc.hpp"

#include "core/math_util.hpp"
#include "topology/generators.hpp"

namespace bfly::topo {

CubeConnectedCycles::CubeConnectedCycles(std::uint32_t n)
    : n_(n), dims_(log2_exact(n)) {
  BFLY_CHECK(n >= 4, "cube-connected cycles needs log n >= 2");
  GraphBuilder gb(num_nodes());
  for (std::uint32_t w = 0; w < n_; ++w) {
    // Cycle edges: one per consecutive position pair. For dims == 2 this
    // naturally yields the doubled <w,0>-<w,1> edge of a 2-cycle.
    for (std::uint32_t i = 0; i < dims_; ++i) {
      gb.add_edge(node(w, i), node(w, (i + 1) % dims_));
    }
    // Cube edges (each once: only from the 0-bit side).
    for (std::uint32_t i = 0; i < dims_; ++i) {
      const std::uint32_t mask = cube_mask(i);
      if ((w & mask) == 0) gb.add_edge(node(w, i), node(w ^ mask, i));
    }
  }
  graph_ = std::move(gb).build();
}

std::vector<algo::Perm> CubeConnectedCycles::automorphism_generators() const {
  const NodeId nn = num_nodes();
  const auto tabulate = [nn](auto&& f) {
    algo::Perm p(nn);
    for (NodeId v = 0; v < nn; ++v) p[v] = f(v);
    return p;
  };
  std::vector<algo::Perm> gens;
  gens.reserve(dims_ + 2);
  // Position rotation: the cube dimension used at position i is paper
  // bit i+1, so rotating positions by one must rotate the bits with it.
  gens.push_back(tabulate([this](NodeId v) {
    return node(rotate_positions(cycle(v), dims_, 1),
                (position(v) + 1) % dims_);
  }));
  for (std::uint32_t b = 0; b < dims_; ++b) {
    gens.push_back(tabulate([this, b](NodeId v) {
      return node(cycle(v) ^ (1u << b), position(v));
    }));
  }
  // Position reflection i -> -i mod d: position i uses paper bit i+1,
  // so bit 1 (machine bit d-1) is fixed and paper bit p >= 2 maps to
  // d+2-p, i.e. machine bit j in [0, d-2] maps to d-2-j.
  gens.push_back(tabulate([this](NodeId v) {
    const std::uint32_t w = cycle(v);
    std::uint32_t r = w & (1u << (dims_ - 1));
    for (std::uint32_t j = 0; j + 1 < dims_; ++j) {
      if ((w >> j) & 1u) r |= 1u << (dims_ - 2 - j);
    }
    return node(r, (dims_ - position(v)) % dims_);
  }));
  return verified_generators(graph_, std::move(gens));
}

}  // namespace bfly::topo
