#include "topology/wrapped_butterfly.hpp"

#include "core/math_util.hpp"
#include "topology/generators.hpp"

namespace bfly::topo {

WrappedButterfly::WrappedButterfly(std::uint32_t n)
    : n_(n), dims_(log2_exact(n)) {
  BFLY_CHECK(n >= 4, "wrapped butterfly needs log n >= 2");
  GraphBuilder gb(num_nodes());
  for (std::uint32_t b = 0; b < dims_; ++b) {
    const std::uint32_t nxt = (b + 1) % dims_;
    const std::uint32_t mask = cross_mask(b);
    for (std::uint32_t w = 0; w < n_; ++w) {
      gb.add_edge(node(w, b), node(w, nxt));         // straight
      gb.add_edge(node(w, b), node(w ^ mask, nxt));  // cross
    }
  }
  graph_ = std::move(gb).build();
}

std::vector<NodeId> WrappedButterfly::level_nodes(std::uint32_t lvl) const {
  BFLY_CHECK(lvl < dims_, "level out of range");
  std::vector<NodeId> out;
  out.reserve(n_);
  for (std::uint32_t w = 0; w < n_; ++w) out.push_back(node(w, lvl));
  return out;
}

NodeId WrappedButterfly::level_shift(NodeId v, std::uint32_t s) const {
  const std::uint32_t lvl = (level(v) + s) % dims_;
  return node(rotate_positions(column(v), dims_, s), lvl);
}

std::vector<algo::Perm> WrappedButterfly::automorphism_generators() const {
  const NodeId nn = num_nodes();
  const auto tabulate = [nn](auto&& f) {
    algo::Perm p(nn);
    for (NodeId v = 0; v < nn; ++v) p[v] = f(v);
    return p;
  };
  std::vector<algo::Perm> gens;
  gens.reserve(dims_ + 2);
  gens.push_back(tabulate([this](NodeId v) { return level_shift(v, 1); }));
  for (std::uint32_t b = 0; b < dims_; ++b) {
    gens.push_back(
        tabulate([this, b](NodeId v) { return column_xor(v, 1u << b); }));
  }
  // Level reflection: boundary i (flipping paper position i+1) maps to
  // boundary d-1-i (flipping position d-i), so the column bits reverse.
  gens.push_back(tabulate([this](NodeId v) {
    return node(reverse_bits(column(v), dims_),
                (dims_ - level(v)) % dims_);
  }));
  return verified_generators(graph_, std::move(gens));
}

}  // namespace bfly::topo
