#include "topology/complete.hpp"

#include "core/error.hpp"

namespace bfly::topo {

Graph complete_graph(NodeId num_nodes, std::uint32_t multiplicity) {
  BFLY_CHECK(multiplicity >= 1, "multiplicity must be positive");
  GraphBuilder gb(num_nodes);
  for (NodeId u = 0; u < num_nodes; ++u) {
    for (NodeId v = u + 1; v < num_nodes; ++v) {
      for (std::uint32_t m = 0; m < multiplicity; ++m) gb.add_edge(u, v);
    }
  }
  return std::move(gb).build();
}

Graph complete_bipartite(NodeId a, NodeId b) {
  GraphBuilder gb(a + b);
  for (NodeId u = 0; u < a; ++u) {
    for (NodeId v = 0; v < b; ++v) gb.add_edge(u, a + v);
  }
  return std::move(gb).build();
}

}  // namespace bfly::topo
