// Bit-string column-label helpers shared by the butterfly-family networks.
//
// The paper numbers bit positions 1..d with the MOST significant bit being
// position 1 (Section 1.1). All helpers here follow that convention: a
// column is a d-bit unsigned value, and position p corresponds to the
// machine bit (d - p).
#pragma once

#include <cstdint>

#include "core/error.hpp"

namespace bfly::topo {

/// Machine mask of paper bit position p (1-based, MSB first) in a d-bit word.
[[nodiscard]] constexpr std::uint32_t bit_mask(std::uint32_t d,
                                               std::uint32_t p) noexcept {
  return 1u << (d - p);
}

/// Value of paper bit position p of column w.
[[nodiscard]] constexpr std::uint32_t bit_at(std::uint32_t w, std::uint32_t d,
                                             std::uint32_t p) noexcept {
  return (w >> (d - p)) & 1u;
}

/// Reverses the d-bit string w (position p <-> position d+1-p).
[[nodiscard]] inline std::uint32_t reverse_bits(std::uint32_t w,
                                                std::uint32_t d) {
  std::uint32_t r = 0;
  for (std::uint32_t i = 0; i < d; ++i) {
    r = (r << 1) | ((w >> i) & 1u);
  }
  return r;
}

/// Rotates the d-bit string so that paper position p moves to position
/// p + s (mod d). In machine terms this is a rotate-right by s of the low
/// d bits.
[[nodiscard]] inline std::uint32_t rotate_positions(std::uint32_t w,
                                                    std::uint32_t d,
                                                    std::uint32_t s) {
  BFLY_ASSERT(d > 0 && d < 32);
  s %= d;
  if (s == 0) return w;
  const std::uint32_t mask = (1u << d) - 1;
  return ((w >> s) | (w << (d - s))) & mask;
}

}  // namespace bfly::topo
