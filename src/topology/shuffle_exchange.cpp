#include "topology/shuffle_exchange.hpp"

#include "core/error.hpp"

namespace bfly::topo {

ShuffleExchange::ShuffleExchange(std::uint32_t dims) : dims_(dims) {
  BFLY_CHECK(dims >= 2 && dims < 31, "shuffle-exchange dimension out of range");
  GraphBuilder gb(num_nodes());
  for (std::uint32_t w = 0; w < num_nodes(); ++w) {
    // Exchange edge, once per pair.
    if ((w & 1u) == 0) gb.add_edge(w, w ^ 1u);
    // Shuffle edge {w, shuffle(w)}: each necklace-cycle edge is generated
    // exactly once from its source, except on 2-cycles where both endpoints
    // generate the same undirected pair — keep only the smaller endpoint's.
    const std::uint32_t s = shuffle(w);
    if (s == w) continue;  // self loop (all zeros / all ones)
    if (shuffle(s) == w && w > s) continue;
    gb.add_edge(w, s);
  }
  graph_ = std::move(gb).build();
}

}  // namespace bfly::topo
