// Random d-regular graphs by the pairing (configuration) model.
//
// The comparison family of arXiv 2211.03206 ("On Vertex Bisection Width
// of Random d-Regular Graphs"): n·d stubs are shuffled and paired;
// pairings with self-loops (which the Graph type rejects) are always
// retried, pairings with parallel edges are retried unless the
// multigraph flag accepts them. Conditioned on simplicity the result is
// uniform over simple d-regular graphs, and for fixed d the acceptance
// probability tends to exp(-(d^2 - 1) / 4) > 0, so the expected number
// of retries is O(1). Fully deterministic for a fixed seed.
#pragma once

#include <cstdint>

#include "core/graph.hpp"
#include "core/types.hpp"

namespace bfly::topo {

struct RandomRegularOptions {
  /// Accept parallel edges (self-loops are always rejected — the Graph
  /// type has no representation for them). The degree sequence is then
  /// still exactly d with multiplicity.
  bool allow_multigraph = false;
  /// Retry budget for the rejection loop; exceeding it throws. The
  /// default is astronomically above the O(1) expected retries for the
  /// d <= 8 instances the corpus uses.
  std::uint32_t max_attempts = 1000;
};

/// A uniformly random d-regular (multi)graph on n nodes. Requires
/// n > d >= 1 and n * d even.
[[nodiscard]] Graph random_regular(NodeId n, std::uint32_t degree,
                                   std::uint64_t seed,
                                   const RandomRegularOptions& opts = {});

}  // namespace bfly::topo
