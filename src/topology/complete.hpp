// Complete and complete bipartite graphs.
//
// K_N (optionally with uniform edge multiplicity, e.g. 2K_N as used in the
// Section 1.4 embedding lower bounds) and K_{a,b} (used to prove
// Lemma 3.1 via the K_{n,n} -> Bn embedding).
#pragma once

#include <cstdint>

#include "core/graph.hpp"
#include "core/types.hpp"

namespace bfly::topo {

/// K_N with every pair joined by `multiplicity` parallel edges.
[[nodiscard]] Graph complete_graph(NodeId num_nodes,
                                   std::uint32_t multiplicity = 1);

/// K_{a,b}: left side nodes are ids [0, a), right side [a, a+b).
[[nodiscard]] Graph complete_bipartite(NodeId a, NodeId b);

}  // namespace bfly::topo
