#include "topology/hypercube.hpp"

#include "core/error.hpp"

namespace bfly::topo {

Hypercube::Hypercube(std::uint32_t dims) : dims_(dims) {
  BFLY_CHECK(dims >= 1 && dims < 31, "hypercube dimension out of range");
  GraphBuilder gb(num_nodes());
  for (std::uint32_t w = 0; w < num_nodes(); ++w) {
    for (std::uint32_t b = 0; b < dims_; ++b) {
      if ((w & (1u << b)) == 0) gb.add_edge(w, w | (1u << b));
    }
  }
  graph_ = std::move(gb).build();
}

}  // namespace bfly::topo
