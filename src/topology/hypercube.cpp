#include "topology/hypercube.hpp"

#include "core/error.hpp"
#include "topology/generators.hpp"

namespace bfly::topo {

Hypercube::Hypercube(std::uint32_t dims) : dims_(dims) {
  BFLY_CHECK(dims >= 1 && dims < 31, "hypercube dimension out of range");
  GraphBuilder gb(num_nodes());
  for (std::uint32_t w = 0; w < num_nodes(); ++w) {
    for (std::uint32_t b = 0; b < dims_; ++b) {
      if ((w & (1u << b)) == 0) gb.add_edge(w, w | (1u << b));
    }
  }
  graph_ = std::move(gb).build();
}

std::vector<algo::Perm> Hypercube::automorphism_generators() const {
  const NodeId nn = num_nodes();
  const auto tabulate = [nn](auto&& f) {
    algo::Perm p(nn);
    for (NodeId v = 0; v < nn; ++v) p[v] = f(v);
    return p;
  };
  std::vector<algo::Perm> gens;
  gens.reserve(2 * dims_ - 1);
  for (std::uint32_t b = 0; b < dims_; ++b) {
    gens.push_back(tabulate([b](NodeId v) { return v ^ (1u << b); }));
  }
  for (std::uint32_t b = 0; b + 1 < dims_; ++b) {
    gens.push_back(tabulate([b](NodeId v) {
      const std::uint32_t lo = (v >> b) & 1u;
      const std::uint32_t hi = (v >> (b + 1)) & 1u;
      return lo == hi ? v : v ^ (1u << b) ^ (1u << (b + 1));
    }));
  }
  return verified_generators(graph_, std::move(gens));
}

}  // namespace bfly::topo
