#include "topology/butterfly.hpp"

#include "core/math_util.hpp"
#include "topology/generators.hpp"

namespace bfly::topo {

Butterfly::Butterfly(std::uint32_t n) : n_(n), dims_(log2_exact(n)) {
  BFLY_CHECK(n >= 2, "butterfly needs at least 2 columns");
  GraphBuilder gb(num_nodes());
  for (std::uint32_t b = 0; b < dims_; ++b) {
    const std::uint32_t mask = cross_mask(b);
    for (std::uint32_t w = 0; w < n_; ++w) {
      gb.add_edge(node(w, b), node(w, b + 1));         // straight
      gb.add_edge(node(w, b), node(w ^ mask, b + 1));  // cross
    }
  }
  graph_ = std::move(gb).build();
}

std::vector<NodeId> Butterfly::level_nodes(std::uint32_t lvl) const {
  BFLY_CHECK(lvl <= dims_, "level out of range");
  std::vector<NodeId> out;
  out.reserve(n_);
  for (std::uint32_t w = 0; w < n_; ++w) out.push_back(node(w, lvl));
  return out;
}

std::vector<NodeId> Butterfly::monotonic_path(std::uint32_t in_col,
                                              std::uint32_t out_col) const {
  BFLY_CHECK(in_col < n_ && out_col < n_, "column out of range");
  std::vector<NodeId> path;
  path.reserve(dims_ + 1);
  for (std::uint32_t lvl = 0; lvl <= dims_; ++lvl) {
    // After crossing boundaries 0..lvl-1 the first lvl paper positions have
    // been fixed to out_col's bits; the rest still carry in_col's bits.
    const std::uint32_t high_mask =
        lvl == 0 ? 0u : ~((1u << (dims_ - lvl)) - 1) & (n_ - 1);
    const std::uint32_t col = (out_col & high_mask) | (in_col & ~high_mask);
    path.push_back(node(col & (n_ - 1), lvl));
  }
  return path;
}

std::uint32_t Butterfly::component_id(std::uint32_t column, std::uint32_t lo,
                                      std::uint32_t hi) const {
  BFLY_CHECK(lo <= hi && hi <= dims_, "invalid level range");
  const std::uint32_t top = lo == 0 ? 0u : column >> (dims_ - lo);
  const std::uint32_t bottom_bits = dims_ - hi;
  const std::uint32_t bottom =
      bottom_bits == 0 ? 0u : column & ((1u << bottom_bits) - 1);
  return (top << bottom_bits) | bottom;
}

std::vector<std::uint32_t> Butterfly::component_columns(
    std::uint32_t comp, std::uint32_t lo, std::uint32_t hi) const {
  BFLY_CHECK(lo <= hi && hi <= dims_, "invalid level range");
  BFLY_CHECK(comp < num_components(lo, hi), "component index out of range");
  const std::uint32_t bottom_bits = dims_ - hi;
  const std::uint32_t free_bits = hi - lo;
  const std::uint32_t top = comp >> bottom_bits;
  const std::uint32_t bottom =
      bottom_bits == 0 ? 0u : comp & ((1u << bottom_bits) - 1);
  std::vector<std::uint32_t> cols;
  cols.reserve(1u << free_bits);
  for (std::uint32_t f = 0; f < (1u << free_bits); ++f) {
    cols.push_back((top << (dims_ - lo)) | (f << bottom_bits) | bottom);
  }
  return cols;
}

std::vector<NodeId> Butterfly::component_nodes(std::uint32_t comp,
                                               std::uint32_t lo,
                                               std::uint32_t hi) const {
  const auto cols = component_columns(comp, lo, hi);
  std::vector<NodeId> nodes;
  nodes.reserve(cols.size() * (hi - lo + 1));
  for (std::uint32_t lvl = lo; lvl <= hi; ++lvl) {
    for (const std::uint32_t c : cols) nodes.push_back(node(c, lvl));
  }
  return nodes;
}

std::vector<algo::Perm> Butterfly::automorphism_generators() const {
  const NodeId nn = num_nodes();
  const auto tabulate = [nn](auto&& f) {
    algo::Perm p(nn);
    for (NodeId v = 0; v < nn; ++v) p[v] = f(v);
    return p;
  };
  std::vector<algo::Perm> gens;
  gens.reserve(2 * dims_ + 1);
  for (std::uint32_t b = 0; b < dims_; ++b) {
    const ButterflyAutomorphism xo(*this, 1u << b, 0);
    gens.push_back(tabulate([&xo](NodeId v) { return xo.apply(v); }));
    const ButterflyAutomorphism twist(*this, 0, 1u << b);
    gens.push_back(tabulate([&twist](NodeId v) { return twist.apply(v); }));
  }
  gens.push_back(
      tabulate([this](NodeId v) { return level_reversal(*this, v); }));
  return verified_generators(graph_, std::move(gens));
}

NodeId ButterflyAutomorphism::apply(NodeId v) const {
  const std::uint32_t lvl = bf_->level(v);
  const std::uint32_t d = bf_->dims();
  // Restrict flips to paper positions 1..lvl, i.e. the top lvl machine bits.
  const std::uint32_t high_mask =
      lvl == 0 ? 0u : (~((1u << (d - lvl)) - 1)) & (bf_->n() - 1);
  const std::uint32_t c = c0_ ^ (flips_ & high_mask);
  return bf_->node(bf_->column(v) ^ c, lvl);
}

ButterflyAutomorphism ButterflyAutomorphism::mapping_edge(const Butterfly& bf,
                                                          NodeId v, NodeId u,
                                                          NodeId v2,
                                                          NodeId u2) {
  BFLY_CHECK(bf.level(v) == bf.level(v2) && bf.level(u) == bf.level(u2),
             "endpoints must be level-aligned");
  BFLY_CHECK(bf.level(u) == bf.level(v) + 1, "expected a boundary edge");
  const std::uint32_t b = bf.level(v);  // boundary index
  const std::uint32_t mask = bf.cross_mask(b);
  const std::uint32_t c0 = bf.column(v) ^ bf.column(v2);
  // Edge {v,u} is "cross" iff the columns differ; same for {v2,u2}. If the
  // two edges have different types we twist bit position b+1 at boundary b.
  const bool cross1 = bf.column(u) != bf.column(v);
  const bool cross2 = bf.column(u2) != bf.column(v2);
  const std::uint32_t flips = (cross1 != cross2) ? mask : 0u;
  return ButterflyAutomorphism(bf, c0, flips);
}

NodeId level_reversal(const Butterfly& bf, NodeId v) {
  return bf.node(reverse_bits(bf.column(v), bf.dims()),
                 bf.dims() - bf.level(v));
}

}  // namespace bfly::topo
