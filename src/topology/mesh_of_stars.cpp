#include "topology/mesh_of_stars.hpp"

#include "core/error.hpp"
#include "topology/generators.hpp"

namespace bfly::topo {

MeshOfStars::MeshOfStars(std::uint32_t j, std::uint32_t k) : j_(j), k_(k) {
  BFLY_CHECK(j >= 1 && k >= 1, "mesh of stars needs j, k >= 1");
  GraphBuilder gb(num_nodes());
  for (std::uint32_t a = 0; a < j_; ++a) {
    for (std::uint32_t b = 0; b < k_; ++b) {
      gb.add_edge(m1_node(a), m2_node(a, b));
      gb.add_edge(m2_node(a, b), m3_node(b));
    }
  }
  graph_ = std::move(gb).build();
}

std::vector<algo::Perm> MeshOfStars::automorphism_generators() const {
  const NodeId nn = num_nodes();
  const auto tabulate = [nn](auto&& f) {
    algo::Perm p(nn);
    for (NodeId v = 0; v < nn; ++v) p[v] = f(v);
    return p;
  };
  const auto row_of = [this](NodeId v) { return (v - j_) / k_; };
  const auto col_of = [this](NodeId v) { return (v - j_) % k_; };
  std::vector<algo::Perm> gens;
  // Adjacent M1-row swaps: exchange rows a and a+1 of M2 along with the
  // two M1 endpoints.
  for (std::uint32_t a = 0; a + 1 < j_; ++a) {
    gens.push_back(tabulate([&, a](NodeId v) -> NodeId {
      switch (level_of(v)) {
        case 1:
          if (v == m1_node(a)) return m1_node(a + 1);
          if (v == m1_node(a + 1)) return m1_node(a);
          return v;
        case 2: {
          const std::uint32_t r = row_of(v);
          if (r == a) return m2_node(a + 1, col_of(v));
          if (r == a + 1) return m2_node(a, col_of(v));
          return v;
        }
        default:
          return v;
      }
    }));
  }
  // Adjacent M3-column swaps, symmetric to the row swaps.
  for (std::uint32_t b = 0; b + 1 < k_; ++b) {
    gens.push_back(tabulate([&, b](NodeId v) -> NodeId {
      switch (level_of(v)) {
        case 3:
          if (v == m3_node(b)) return m3_node(b + 1);
          if (v == m3_node(b + 1)) return m3_node(b);
          return v;
        case 2: {
          const std::uint32_t c = col_of(v);
          if (c == b) return m2_node(row_of(v), b + 1);
          if (c == b + 1) return m2_node(row_of(v), b);
          return v;
        }
        default:
          return v;
      }
    }));
  }
  // The square mesh also has the M1 <-> M3 transpose.
  if (j_ == k_) {
    gens.push_back(tabulate([&](NodeId v) -> NodeId {
      switch (level_of(v)) {
        case 1: return m3_node(static_cast<std::uint32_t>(v));
        case 2: return m2_node(col_of(v), row_of(v));
        default: return m1_node(static_cast<std::uint32_t>(
            v - j_ - static_cast<NodeId>(j_) * k_));
      }
    }));
  }
  return verified_generators(graph_, std::move(gens));
}

std::vector<NodeId> MeshOfStars::m1_nodes() const {
  std::vector<NodeId> out;
  out.reserve(j_);
  for (std::uint32_t a = 0; a < j_; ++a) out.push_back(m1_node(a));
  return out;
}

std::vector<NodeId> MeshOfStars::m2_nodes() const {
  std::vector<NodeId> out;
  out.reserve(static_cast<std::size_t>(j_) * k_);
  for (std::uint32_t a = 0; a < j_; ++a) {
    for (std::uint32_t b = 0; b < k_; ++b) out.push_back(m2_node(a, b));
  }
  return out;
}

std::vector<NodeId> MeshOfStars::m3_nodes() const {
  std::vector<NodeId> out;
  out.reserve(k_);
  for (std::uint32_t b = 0; b < k_; ++b) out.push_back(m3_node(b));
  return out;
}

}  // namespace bfly::topo
