#include "topology/mesh_of_stars.hpp"

#include "core/error.hpp"

namespace bfly::topo {

MeshOfStars::MeshOfStars(std::uint32_t j, std::uint32_t k) : j_(j), k_(k) {
  BFLY_CHECK(j >= 1 && k >= 1, "mesh of stars needs j, k >= 1");
  GraphBuilder gb(num_nodes());
  for (std::uint32_t a = 0; a < j_; ++a) {
    for (std::uint32_t b = 0; b < k_; ++b) {
      gb.add_edge(m1_node(a), m2_node(a, b));
      gb.add_edge(m2_node(a, b), m3_node(b));
    }
  }
  graph_ = std::move(gb).build();
}

std::vector<NodeId> MeshOfStars::m1_nodes() const {
  std::vector<NodeId> out;
  out.reserve(j_);
  for (std::uint32_t a = 0; a < j_; ++a) out.push_back(m1_node(a));
  return out;
}

std::vector<NodeId> MeshOfStars::m2_nodes() const {
  std::vector<NodeId> out;
  out.reserve(static_cast<std::size_t>(j_) * k_);
  for (std::uint32_t a = 0; a < j_; ++a) {
    for (std::uint32_t b = 0; b < k_; ++b) out.push_back(m2_node(a, b));
  }
  return out;
}

std::vector<NodeId> MeshOfStars::m3_nodes() const {
  std::vector<NodeId> out;
  out.reserve(k_);
  for (std::uint32_t b = 0; b < k_; ++b) out.push_back(m3_node(b));
  return out;
}

}  // namespace bfly::topo
