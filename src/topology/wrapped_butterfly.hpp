// The (log n)-dimensional butterfly with wraparound, Wn (Section 1.1).
//
// Wn is Bn with the level-0 and level-(log n) node of each column
// identified, leaving n log n nodes on log n levels. Cross edges between
// level i and level (i+1 mod log n) flip paper bit position i+1.
//
// For log n == 2 the identification produces parallel straight edges
// (exactly as the paper's definition implies); the Graph class represents
// them faithfully and every cut counts them individually.
#pragma once

#include <cstdint>
#include <vector>

#include "algo/automorphism.hpp"
#include "core/graph.hpp"
#include "core/types.hpp"
#include "topology/labels.hpp"

namespace bfly::topo {

class WrappedButterfly {
 public:
  /// Builds Wn; n must be a power of two, n >= 4 (so log n >= 2).
  explicit WrappedButterfly(std::uint32_t n);

  [[nodiscard]] std::uint32_t n() const noexcept { return n_; }
  [[nodiscard]] std::uint32_t dims() const noexcept { return dims_; }
  [[nodiscard]] std::uint32_t num_levels() const noexcept { return dims_; }

  [[nodiscard]] NodeId num_nodes() const noexcept {
    return static_cast<NodeId>(n_) * dims_;
  }

  [[nodiscard]] NodeId node(std::uint32_t column, std::uint32_t level) const {
    BFLY_ASSERT(column < n_ && level < dims_);
    return static_cast<NodeId>(level) * n_ + column;
  }

  [[nodiscard]] std::uint32_t column(NodeId v) const {
    BFLY_ASSERT(v < num_nodes());
    return v % n_;
  }

  [[nodiscard]] std::uint32_t level(NodeId v) const {
    BFLY_ASSERT(v < num_nodes());
    return v / n_;
  }

  [[nodiscard]] const Graph& graph() const noexcept { return graph_; }

  [[nodiscard]] std::vector<NodeId> level_nodes(std::uint32_t level) const;

  /// Machine mask flipped by cross edges between level `boundary` and
  /// level (boundary+1) mod dims (paper bit position boundary+1).
  [[nodiscard]] std::uint32_t cross_mask(std::uint32_t boundary) const {
    BFLY_ASSERT(boundary < dims_);
    return bit_mask(dims_, boundary + 1);
  }

  /// The level-shift automorphism <w, i> -> <rot(w), i+s mod log n>,
  /// where rot moves paper position p to position p+s (mod log n).
  [[nodiscard]] NodeId level_shift(NodeId v, std::uint32_t s) const;

  /// The column-XOR automorphism <w, i> -> <w ^ c, i>.
  [[nodiscard]] NodeId column_xor(NodeId v, std::uint32_t c) const {
    return node(column(v) ^ (c & (n_ - 1)), level(v));
  }

  /// Generators of an automorphism group of Wn: the level-shift
  /// rotation, the per-bit column XORs, and the level reflection
  /// <w, i> -> <reverse(w), -i mod log n> — group order
  /// 2 * dims * 2^dims. Verified by algo::is_automorphism under
  /// checked builds.
  [[nodiscard]] std::vector<algo::Perm> automorphism_generators() const;

 private:
  std::uint32_t n_;
  std::uint32_t dims_;
  Graph graph_;
};

}  // namespace bfly::topo
