// The d-dimensional Beneš network (Section 1.5).
//
// Two back-to-back d-dimensional butterflies sharing their level-d nodes:
// 2d+1 levels of n = 2^d columns. The boundary between levels l and l+1
// flips paper bit position l+1 for l < d, and position 2d-l for l >= d
// (the mirrored second half). Level 0 nodes are the inputs, level 2d nodes
// the outputs; each input/output node carries two logical ports, making
// the network rearrangeable for any permutation of 2n ports (Lemma 2.5's
// substrate, machine-verified by routing/benes_route).
#pragma once

#include <cstdint>
#include <vector>

#include "core/graph.hpp"
#include "core/types.hpp"
#include "topology/labels.hpp"

namespace bfly::topo {

class Benes {
 public:
  /// Builds the d-dimensional Beneš network with n = 2^d columns (n >= 2).
  explicit Benes(std::uint32_t n);

  [[nodiscard]] std::uint32_t n() const noexcept { return n_; }
  [[nodiscard]] std::uint32_t dims() const noexcept { return dims_; }
  [[nodiscard]] std::uint32_t num_levels() const noexcept {
    return 2 * dims_ + 1;
  }

  [[nodiscard]] NodeId num_nodes() const noexcept {
    return static_cast<NodeId>(n_) * num_levels();
  }

  [[nodiscard]] NodeId node(std::uint32_t column, std::uint32_t level) const {
    BFLY_ASSERT(column < n_ && level <= 2 * dims_);
    return static_cast<NodeId>(level) * n_ + column;
  }

  [[nodiscard]] std::uint32_t column(NodeId v) const {
    BFLY_ASSERT(v < num_nodes());
    return v % n_;
  }

  [[nodiscard]] std::uint32_t level(NodeId v) const {
    BFLY_ASSERT(v < num_nodes());
    return v / n_;
  }

  /// Machine mask flipped by cross edges between levels b and b+1.
  [[nodiscard]] std::uint32_t cross_mask(std::uint32_t b) const {
    BFLY_ASSERT(b < 2 * dims_);
    const std::uint32_t pos = b < dims_ ? b + 1 : 2 * dims_ - b;
    return bit_mask(dims_, pos);
  }

  [[nodiscard]] NodeId input(std::uint32_t column) const {
    return node(column, 0);
  }
  [[nodiscard]] NodeId output(std::uint32_t column) const {
    return node(column, 2 * dims_);
  }

  [[nodiscard]] const Graph& graph() const noexcept { return graph_; }

 private:
  std::uint32_t n_;
  std::uint32_t dims_;
  Graph graph_;
};

}  // namespace bfly::topo
