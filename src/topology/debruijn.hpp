// The d-dimensional de Bruijn network (Section 1.5).
//
// Nodes are d-bit strings; w is adjacent to 2w mod 2^d and 2w+1 mod 2^d
// (undirected, self loops omitted, coincident pairs deduplicated).
#pragma once

#include <cstdint>

#include "core/graph.hpp"
#include "core/types.hpp"

namespace bfly::topo {

class DeBruijn {
 public:
  explicit DeBruijn(std::uint32_t dims);

  [[nodiscard]] std::uint32_t dims() const noexcept { return dims_; }
  [[nodiscard]] NodeId num_nodes() const noexcept { return 1u << dims_; }
  [[nodiscard]] const Graph& graph() const noexcept { return graph_; }

 private:
  std::uint32_t dims_;
  Graph graph_;
};

}  // namespace bfly::topo
