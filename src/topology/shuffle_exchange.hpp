// The d-dimensional shuffle-exchange network (Section 1.5).
//
// Nodes are d-bit strings. Exchange edges join w and w^1 (last bit
// flipped); shuffle edges join w and its left rotation. Self loops
// (the all-zero and all-one strings shuffle to themselves) are omitted,
// matching the standard simple-graph convention.
#pragma once

#include <cstdint>

#include "core/graph.hpp"
#include "core/types.hpp"

namespace bfly::topo {

class ShuffleExchange {
 public:
  explicit ShuffleExchange(std::uint32_t dims);

  [[nodiscard]] std::uint32_t dims() const noexcept { return dims_; }
  [[nodiscard]] NodeId num_nodes() const noexcept { return 1u << dims_; }
  [[nodiscard]] const Graph& graph() const noexcept { return graph_; }

  /// Left rotation of the d-bit string w (the "shuffle" permutation).
  [[nodiscard]] std::uint32_t shuffle(std::uint32_t w) const {
    const std::uint32_t top = (w >> (dims_ - 1)) & 1u;
    return ((w << 1) | top) & (num_nodes() - 1);
  }

 private:
  std::uint32_t dims_;
  Graph graph_;
};

}  // namespace bfly::topo
