// The (log n)-dimensional cube-connected cycles network CCCn (Section 1.1).
//
// CCCn consists of n = 2^d cycles of d = log n nodes each. Node <w, i>
// (cycle w, position i, 0-indexed here; the paper uses 1..log n) has cycle
// edges to <w, i±1 mod d> and one cube edge to <w', i> where w' differs
// from w exactly in paper bit position i+1.
#pragma once

#include <cstdint>
#include <vector>

#include "algo/automorphism.hpp"
#include "core/graph.hpp"
#include "core/types.hpp"
#include "topology/labels.hpp"

namespace bfly::topo {

class CubeConnectedCycles {
 public:
  /// Builds CCCn; n must be a power of two with log n >= 2. (For
  /// log n == 2 the two-node "cycles" become parallel edges, represented
  /// faithfully.)
  explicit CubeConnectedCycles(std::uint32_t n);

  [[nodiscard]] std::uint32_t n() const noexcept { return n_; }
  [[nodiscard]] std::uint32_t dims() const noexcept { return dims_; }

  [[nodiscard]] NodeId num_nodes() const noexcept {
    return static_cast<NodeId>(n_) * dims_;
  }

  [[nodiscard]] NodeId node(std::uint32_t cycle, std::uint32_t pos) const {
    BFLY_ASSERT(cycle < n_ && pos < dims_);
    return static_cast<NodeId>(pos) * n_ + cycle;
  }

  [[nodiscard]] std::uint32_t cycle(NodeId v) const {
    BFLY_ASSERT(v < num_nodes());
    return v % n_;
  }

  [[nodiscard]] std::uint32_t position(NodeId v) const {
    BFLY_ASSERT(v < num_nodes());
    return v / n_;
  }

  /// Machine mask of the cube dimension used at position `pos`.
  [[nodiscard]] std::uint32_t cube_mask(std::uint32_t pos) const {
    BFLY_ASSERT(pos < dims_);
    return bit_mask(dims_, pos + 1);
  }

  [[nodiscard]] const Graph& graph() const noexcept { return graph_; }

  /// Generators of an automorphism group of CCCn: the position rotation
  /// <w, i> -> <rot(w), i+1 mod d> (cube dimensions follow the cycle
  /// positions), the per-bit cycle XORs, and the position reflection
  /// i -> -i mod d with its matching bit reflection — group order
  /// 2 * dims * 2^dims. Verified by algo::is_automorphism under
  /// checked builds.
  [[nodiscard]] std::vector<algo::Perm> automorphism_generators() const;

 private:
  std::uint32_t n_;
  std::uint32_t dims_;
  Graph graph_;
};

}  // namespace bfly::topo
