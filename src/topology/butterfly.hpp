// The (log n)-dimensional butterfly network Bn (paper Section 1.1).
//
// Bn has N = n(log n + 1) nodes arranged in log n + 1 levels of n nodes
// each. Node <w, i> (column w, level i) connects to <w', i+1> iff w' == w
// ("straight" edge) or w and w' differ exactly in paper bit position i+1
// ("cross" edge). Bit positions are numbered 1..log n, MSB = position 1.
//
// Node ids are level-major: id = level * n + column. This keeps each level
// contiguous, which the cut machinery exploits.
#pragma once

#include <cstdint>
#include <vector>

#include "algo/automorphism.hpp"
#include "core/graph.hpp"
#include "core/types.hpp"
#include "topology/labels.hpp"

namespace bfly::topo {

class Butterfly {
 public:
  /// Builds Bn; n (the number of inputs/columns) must be a power of two.
  explicit Butterfly(std::uint32_t n);

  /// Number of columns (= inputs = outputs).
  [[nodiscard]] std::uint32_t n() const noexcept { return n_; }

  /// Dimension log n.
  [[nodiscard]] std::uint32_t dims() const noexcept { return dims_; }

  /// Number of levels (= dims + 1).
  [[nodiscard]] std::uint32_t num_levels() const noexcept {
    return dims_ + 1;
  }

  [[nodiscard]] NodeId num_nodes() const noexcept {
    return static_cast<NodeId>(n_) * num_levels();
  }

  [[nodiscard]] NodeId node(std::uint32_t column, std::uint32_t level) const {
    BFLY_ASSERT(column < n_ && level <= dims_);
    return static_cast<NodeId>(level) * n_ + column;
  }

  [[nodiscard]] std::uint32_t column(NodeId v) const {
    BFLY_ASSERT(v < num_nodes());
    return v % n_;
  }

  [[nodiscard]] std::uint32_t level(NodeId v) const {
    BFLY_ASSERT(v < num_nodes());
    return v / n_;
  }

  [[nodiscard]] const Graph& graph() const noexcept { return graph_; }

  /// All node ids on the given level, in column order.
  [[nodiscard]] std::vector<NodeId> level_nodes(std::uint32_t level) const;

  /// Machine mask of the column bit flipped by cross edges between level
  /// `boundary` and `boundary + 1` (paper bit position boundary+1).
  [[nodiscard]] std::uint32_t cross_mask(std::uint32_t boundary) const {
    BFLY_ASSERT(boundary < dims_);
    return bit_mask(dims_, boundary + 1);
  }

  /// The unique monotonic input-to-output path (Lemma 2.3) from
  /// <in_col, 0> to <out_col, log n>, returned as dims()+1 node ids.
  [[nodiscard]] std::vector<NodeId> monotonic_path(
      std::uint32_t in_col, std::uint32_t out_col) const;

  // --- Lemma 2.4 machinery: components of Bn[lo, hi] ------------------
  //
  // Bn[lo, hi] is the subgraph induced by levels lo..hi. It splits into
  // n / 2^(hi-lo) connected components, each isomorphic to B_{2^(hi-lo)};
  // a component is identified by the column bits OUTSIDE paper positions
  // lo+1..hi (those positions are the only ones cross edges can change).

  [[nodiscard]] std::uint32_t num_components(std::uint32_t lo,
                                             std::uint32_t hi) const {
    BFLY_ASSERT(lo <= hi && hi <= dims_);
    return n_ >> (hi - lo);
  }

  /// Component index (in [0, num_components)) of `column` within
  /// Bn[lo, hi]: the fixed bits packed together (top bits 1..lo followed
  /// by bottom bits hi+1..dims).
  [[nodiscard]] std::uint32_t component_id(std::uint32_t column,
                                           std::uint32_t lo,
                                           std::uint32_t hi) const;

  /// The columns belonging to component `comp` of Bn[lo, hi], in
  /// increasing order (2^(hi-lo) of them).
  [[nodiscard]] std::vector<std::uint32_t> component_columns(
      std::uint32_t comp, std::uint32_t lo, std::uint32_t hi) const;

  /// All node ids of component `comp` of Bn[lo, hi] (levels lo..hi).
  [[nodiscard]] std::vector<NodeId> component_nodes(std::uint32_t comp,
                                                    std::uint32_t lo,
                                                    std::uint32_t hi) const;

  /// Generators of an automorphism group of Bn: the per-bit column-XOR
  /// and boundary-twist translations (Lemma 2.2's (c0, flips) family)
  /// plus the level reversal of Lemma 2.1 — group order 2 * 4^dims.
  /// Verified by algo::is_automorphism under checked builds.
  [[nodiscard]] std::vector<algo::Perm> automorphism_generators() const;

 private:
  std::uint32_t n_;
  std::uint32_t dims_;
  Graph graph_;
};

/// A level-preserving automorphism of Bn (the family underlying
/// Lemma 2.2): level i's columns are translated by
///   c_i = c0 XOR (flips restricted to paper positions 1..i),
/// i.e. crossing boundary i optionally "twists" bit position i+1. Every
/// (c0, flips) pair yields an automorphism; c0 alone gives the plain
/// column-XOR translations.
class ButterflyAutomorphism {
 public:
  ButterflyAutomorphism(const Butterfly& bf, std::uint32_t c0,
                        std::uint32_t flips)
      : bf_(&bf), c0_(c0), flips_(flips) {}

  [[nodiscard]] NodeId apply(NodeId v) const;

  /// Constructs the automorphism mapping edge {v,u} onto edge {v2,u2}
  /// (Lemma 2.2); v,v2 must share a level, u,u2 must share the next level.
  static ButterflyAutomorphism mapping_edge(const Butterfly& bf, NodeId v,
                                            NodeId u, NodeId v2, NodeId u2);

 private:
  const Butterfly* bf_;
  std::uint32_t c0_;
  std::uint32_t flips_;
};

/// The level-reversing automorphism of Lemma 2.1:
/// <w, i> -> <reverse(w), log n - i>. Returns the image node id.
[[nodiscard]] NodeId level_reversal(const Butterfly& bf, NodeId v);

}  // namespace bfly::topo
