#include "topology/debruijn.hpp"

#include <algorithm>
#include <set>
#include <utility>

#include "core/error.hpp"

namespace bfly::topo {

DeBruijn::DeBruijn(std::uint32_t dims) : dims_(dims) {
  BFLY_CHECK(dims >= 2 && dims < 31, "de Bruijn dimension out of range");
  const std::uint32_t n = num_nodes();
  std::set<std::pair<std::uint32_t, std::uint32_t>> seen;
  GraphBuilder gb(n);
  for (std::uint32_t w = 0; w < n; ++w) {
    for (std::uint32_t bit = 0; bit <= 1; ++bit) {
      const std::uint32_t v = ((w << 1) | bit) & (n - 1);
      if (v == w) continue;  // self loop at 00..0 / 11..1
      const auto key = std::minmax(w, v);
      if (seen.insert({key.first, key.second}).second) {
        gb.add_edge(w, v);
      }
    }
  }
  graph_ = std::move(gb).build();
}

}  // namespace bfly::topo
