// Numerical evaluator for the paper's credit-distribution lower-bound
// arguments (Lemmas 4.2, 4.5, 4.8, 4.11).
//
// Each node of a set A distributes one unit of credit through down-/up-
// trees; credit sticks to cut edges (edge version) or neighbor nodes
// (node version), or is stranded on tree leaves. The lemmas bound (a) how
// little credit can strand and (b) how much a single boundary item can
// retain; together they force the boundary to be large. This module
// replays the distribution exactly, so tests can machine-check both
// halves of the argument on concrete sets and benches can report the
// implied lower bounds next to measured minima.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/types.hpp"
#include "topology/butterfly.hpp"
#include "topology/wrapped_butterfly.hpp"

namespace bfly::expansion {

struct CreditReport {
  /// Credit retained by boundary items (cut edges / neighbor nodes).
  double retained_by_boundary = 0.0;
  /// Credit stranded on tree-leaf edges/nodes inside A.
  double retained_elsewhere = 0.0;
  /// Largest credit on a single boundary item (the lemmas cap this).
  double max_per_boundary_item = 0.0;
  /// The lemma's per-item cap for |A| = k.
  double per_item_cap = 0.0;
  /// retained_by_boundary / per_item_cap — a valid lower bound on the
  /// boundary size of THIS set (and, minimized over sets, on EE/NE).
  double implied_lower_bound = 0.0;
  /// The set's actual boundary size (C(A, Ā) or |N(A)|).
  std::size_t actual_boundary = 0;
};

/// Lemma 4.2: edge credits on Wn (each u sends 1/2 down Tu, 1/2 up Tu').
[[nodiscard]] CreditReport credit_edge_wn(const topo::WrappedButterfly& wb,
                                          std::span<const NodeId> set);

/// Lemma 4.5: node credits on Wn.
[[nodiscard]] CreditReport credit_node_wn(const topo::WrappedButterfly& wb,
                                          std::span<const NodeId> set);

/// Lemma 4.8: edge credits on Bn (upper-half nodes send 1 unit down,
/// lower-half nodes send 1 unit up).
[[nodiscard]] CreditReport credit_edge_bn(const topo::Butterfly& bf,
                                          std::span<const NodeId> set);

/// Lemma 4.11: node credits on Bn.
[[nodiscard]] CreditReport credit_node_bn(const topo::Butterfly& bf,
                                          std::span<const NodeId> set);

}  // namespace bfly::expansion
