#include "expansion/constructive_sets.hpp"

#include "core/error.hpp"

namespace bfly::expansion {

std::vector<NodeId> wn_ee_set(const topo::WrappedButterfly& wb,
                              std::uint32_t delta) {
  const std::uint32_t d = wb.dims();
  BFLY_CHECK(delta + 1 <= d, "sub-butterfly does not fit");
  std::vector<NodeId> set;
  set.reserve((delta + 1) << delta);
  for (std::uint32_t lvl = 0; lvl <= delta; ++lvl) {
    for (std::uint32_t f = 0; f < (1u << delta); ++f) {
      // Free bits are paper positions 1..delta (the top machine bits).
      set.push_back(wb.node(f << (d - delta), lvl % d));
    }
  }
  return set;
}

std::vector<NodeId> wn_ne_set(const topo::WrappedButterfly& wb,
                              std::uint32_t delta) {
  const std::uint32_t d = wb.dims();
  BFLY_CHECK(delta + 2 <= d, "enclosing sub-butterfly does not fit");
  std::vector<NodeId> set;
  set.reserve(static_cast<std::size_t>(delta + 1) << (delta + 1));
  // The enclosing (delta+1)-dimensional sub-butterfly spans levels
  // 0..delta+1 on columns with free paper positions 1..delta+1; the set
  // omits its first level, splitting into B' (position 1 bit = 0) and
  // B'' (bit = 1).
  for (std::uint32_t lvl = 1; lvl <= delta + 1; ++lvl) {
    for (std::uint32_t f = 0; f < (2u << delta); ++f) {
      set.push_back(wb.node(f << (d - delta - 1), lvl % d));
    }
  }
  return set;
}

std::vector<NodeId> bn_ee_set(const topo::Butterfly& bf,
                              std::uint32_t delta) {
  const std::uint32_t d = bf.dims();
  BFLY_CHECK(delta <= d, "sub-butterfly does not fit");
  std::vector<NodeId> set;
  set.reserve(static_cast<std::size_t>(delta + 1) << delta);
  for (std::uint32_t lvl = 0; lvl <= delta; ++lvl) {
    for (std::uint32_t f = 0; f < (1u << delta); ++f) {
      set.push_back(bf.node(delta == d ? f : f << (d - delta), lvl));
    }
  }
  return set;
}

std::vector<NodeId> bn_ne_set(const topo::Butterfly& bf,
                              std::uint32_t delta) {
  const std::uint32_t d = bf.dims();
  BFLY_CHECK(delta + 1 <= d, "enclosing sub-butterfly does not fit");
  std::vector<NodeId> set;
  set.reserve(static_cast<std::size_t>(delta + 1) << (delta + 1));
  // Enclosing (delta+1)-dimensional sub-butterfly on levels
  // d-delta-1 .. d with free paper positions d-delta..d (bottom machine
  // bits); the set omits its first level.
  for (std::uint32_t lvl = d - delta; lvl <= d; ++lvl) {
    for (std::uint32_t f = 0; f < (2u << delta); ++f) {
      set.push_back(bf.node(f, lvl));
    }
  }
  return set;
}

}  // namespace bfly::expansion
