// Edge- and node-expansion (paper Section 1.3).
//
// EE(G, k) = min over |S| = k of C(S, S̄); NE(G, k) = min over |S| = k of
// |N(S)|. Exact values come from an exhaustive Gray-code sweep over all
// subsets (practical to ~26 nodes), tracking both quantities
// incrementally. The sweep can be sharded: fixing the top p bits of the
// subset word splits the 2^N states into 2^p independent sub-sweeps
// (O(N) seeding each, then a Gray-code walk over the low N-p bits) that
// run on a TaskGroup and merge their per-size tables in shard order, so
// the tabulated ee/ne values are identical for every thread count. Both
// sweeps honor cooperative cancellation and a state budget, degrading
// the result to Exactness::kHeuristic on abort — the same contract as
// the branch-and-bound bisection solver.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "algo/automorphism.hpp"
#include "core/graph.hpp"
#include "core/thread_pool.hpp"
#include "core/types.hpp"
#include "cut/bisection.hpp"  // for cut::Exactness (header-only enum)

namespace bfly::expansion {

/// Number of edges leaving the set (its edge expansion C(S, S̄)).
[[nodiscard]] std::size_t edge_boundary(const Graph& g,
                                        std::span<const NodeId> set);

/// The neighbor set N(S) (nodes outside S adjacent to S).
[[nodiscard]] std::vector<NodeId> neighbor_set(const Graph& g,
                                               std::span<const NodeId> set);

/// |N(S)| (the set's node expansion).
[[nodiscard]] std::size_t node_boundary(const Graph& g,
                                        std::span<const NodeId> set);

struct ExpansionEntry {
  std::size_t ee = 0;               ///< EE(G, k)
  std::size_t ne = 0;               ///< NE(G, k)
  std::vector<NodeId> ee_witness;   ///< a set attaining EE(G, k)
  std::vector<NodeId> ne_witness;   ///< a set attaining NE(G, k)
};

struct ExactExpansionOptions {
  std::uint64_t max_states = 1ull << 26;
  /// Only tabulate k <= max_k (0 = all k up to N).
  std::size_t max_k = 0;
  bool keep_witnesses = true;
  /// Cooperative cancellation, polled every few thousand states; firing
  /// mid-sweep degrades the result to kHeuristic.
  const CancelToken* cancel = nullptr;
  /// Abort after this many visited states (0 = unlimited; pooled across
  /// workers when sharded). Aborted sweeps report kHeuristic.
  std::uint64_t state_budget = 0;
  /// Worker threads for the sharded sweep (1 = classic serial sweep,
  /// 0 = default_thread_count()).
  unsigned num_threads = 1;
  /// Fix this many top bits of the subset word per shard (0 = auto:
  /// several shards per worker; forced to 0 when running serially).
  /// Sharding changes only the enumeration order — tabulated ee/ne
  /// values are identical; a witness may differ between ties.
  unsigned shard_bits = 0;
  /// Live progress cell for an external watchdog (robust/supervisor):
  /// the sweep stores its pooled visited-state count here at the flush
  /// cadence, so a frozen value means a stalled sweep.
  std::atomic<std::uint64_t>* progress = nullptr;
  /// Automorphism group of the graph for symmetry-reduced sharding
  /// (nullptr = off, the default). When set and the sweep is sharded,
  /// group elements that setwise-stabilize the top-p node block induce
  /// permutations of the p pattern bits; only one shard per pattern
  /// orbit is scanned and its states count with the orbit size as
  /// weight, so a completed sweep still proves (weighted) coverage of
  /// all 2^N subsets. Tabulated ee/ne values are identical to the
  /// unreduced sweep — an automorphism preserves both boundaries — but
  /// witnesses may be any orbit representative. Ignored for unsharded
  /// sweeps and when the group exceeds the enumeration cap. The group
  /// must consist of automorphisms of g; a wrong group silently breaks
  /// the tabulated minima.
  const algo::PermutationGroup* symmetry = nullptr;
};

struct ExactExpansionResult {
  /// Entry index k (index 0 unused). After an aborted sweep, sizes never
  /// reached have ee == ne == SIZE_MAX and empty witnesses.
  std::vector<ExpansionEntry> table;
  cut::Exactness exactness = cut::Exactness::kExact;
  /// Subset states covered, counting each scanned state with its shard's
  /// orbit weight (2^N for a completed sweep, symmetric or not — the
  /// weighted-coverage identity doubles as a check on the orbit math).
  std::uint64_t visited_states = 0;
  /// Subset states actually enumerated. Equal to visited_states for
  /// unreduced sweeps; smaller under symmetry-reduced sharding, where
  /// the ratio is the realized orbit compression. The state budget and
  /// progress cell track this count (it is the real work done).
  std::uint64_t scanned_states = 0;
  /// Work-stealing scheduler telemetry (multi-shard sweeps; zero for
  /// the single-shard serial path): shards spawned, shards executed by
  /// a thief rather than their seeded owner, and summed idle-scan time.
  std::uint64_t ws_spawned = 0;
  std::uint64_t ws_steals = 0;
  double ws_idle_seconds = 0.0;
};

/// Exact EE(G, k) and NE(G, k) for every k in [1, max_k] by exhaustive
/// (optionally sharded) sweep, with abort telemetry.
[[nodiscard]] ExactExpansionResult exact_expansion_full(
    const Graph& g, const ExactExpansionOptions& opts = {});

/// Table-only convenience wrapper around exact_expansion_full().
[[nodiscard]] std::vector<ExpansionEntry> exact_expansion(
    const Graph& g, const ExactExpansionOptions& opts = {});

/// Deep self-check of one tabulated entry: each kept witness has exactly
/// k distinct in-range nodes and its recounted boundary equals the
/// recorded ee/ne value. Throws PreconditionError on mismatch; called by
/// tests and, under checked builds, by the expansion sweeps at exit.
void validate_expansion_entry(const Graph& g, std::size_t k,
                              const ExpansionEntry& entry);

struct SizeKExpansionOptions {
  /// Guard against accidental C(N, k) blowups.
  double max_subsets = 5e7;
  /// Cooperative cancellation, polled every few thousand set extensions.
  const CancelToken* cancel = nullptr;
  /// Abort after this many set extensions (0 = unlimited).
  std::uint64_t work_budget = 0;
};

struct SizeKExpansionResult {
  /// After an abort before any full k-subset was reached, ee and ne stay
  /// SIZE_MAX with empty witnesses.
  ExpansionEntry entry;
  cut::Exactness exactness = cut::Exactness::kExact;
  /// Set extensions performed (enumeration work units).
  std::uint64_t visited_subsets = 0;
};

/// Exact EE(G, k) and NE(G, k) for ONE set size by depth-first
/// enumeration of k-subsets with incremental boundary maintenance —
/// feasible when C(N, k) is modest even if 2^N is not (e.g. B8 with
/// k <= 8: C(32,8) ~ 10^7).
[[nodiscard]] SizeKExpansionResult exact_expansion_of_size_full(
    const Graph& g, std::size_t k, const SizeKExpansionOptions& opts = {});

/// Entry-only convenience wrapper around exact_expansion_of_size_full().
[[nodiscard]] ExpansionEntry exact_expansion_of_size(
    const Graph& g, std::size_t k, double max_subsets = 5e7);

}  // namespace bfly::expansion
