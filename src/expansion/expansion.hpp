// Edge- and node-expansion (paper Section 1.3).
//
// EE(G, k) = min over |S| = k of C(S, S̄); NE(G, k) = min over |S| = k of
// |N(S)|. Exact values come from one Gray-code sweep over all subsets
// (practical to ~26 nodes), tracking both quantities incrementally.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/graph.hpp"
#include "core/types.hpp"

namespace bfly::expansion {

/// Number of edges leaving the set (its edge expansion C(S, S̄)).
[[nodiscard]] std::size_t edge_boundary(const Graph& g,
                                        std::span<const NodeId> set);

/// The neighbor set N(S) (nodes outside S adjacent to S).
[[nodiscard]] std::vector<NodeId> neighbor_set(const Graph& g,
                                               std::span<const NodeId> set);

/// |N(S)| (the set's node expansion).
[[nodiscard]] std::size_t node_boundary(const Graph& g,
                                        std::span<const NodeId> set);

struct ExpansionEntry {
  std::size_t ee = 0;               ///< EE(G, k)
  std::size_t ne = 0;               ///< NE(G, k)
  std::vector<NodeId> ee_witness;   ///< a set attaining EE(G, k)
  std::vector<NodeId> ne_witness;   ///< a set attaining NE(G, k)
};

struct ExactExpansionOptions {
  std::uint64_t max_states = 1ull << 26;
  /// Only tabulate k <= max_k (0 = all k up to N).
  std::size_t max_k = 0;
  bool keep_witnesses = true;
};

/// Exact EE(G, k) and NE(G, k) for every k in [1, max_k] by exhaustive
/// sweep; entry index k (index 0 unused).
[[nodiscard]] std::vector<ExpansionEntry> exact_expansion(
    const Graph& g, const ExactExpansionOptions& opts = {});

/// Deep self-check of one tabulated entry: each kept witness has exactly
/// k distinct in-range nodes and its recounted boundary equals the
/// recorded ee/ne value. Throws PreconditionError on mismatch; called by
/// tests and, under checked builds, by the expansion sweeps at exit.
void validate_expansion_entry(const Graph& g, std::size_t k,
                              const ExpansionEntry& entry);

/// Exact EE(G, k) and NE(G, k) for ONE set size by depth-first
/// enumeration of k-subsets with incremental boundary maintenance —
/// feasible when C(N, k) is modest even if 2^N is not (e.g. B8 with
/// k <= 8: C(32,8) ~ 10^7). `max_subsets` guards accidental blowups.
[[nodiscard]] ExpansionEntry exact_expansion_of_size(
    const Graph& g, std::size_t k, double max_subsets = 5e7);

}  // namespace bfly::expansion
