#include "expansion/local_search.hpp"

#include <limits>

#include "core/error.hpp"
#include "core/rng.hpp"

namespace bfly::expansion {

namespace {

// Incrementally maintained set with both expansion objectives.
class DynamicSet {
 public:
  explicit DynamicSet(const Graph& g)
      : g_(&g), in_(g.num_nodes(), 0), nbr_cnt_(g.num_nodes(), 0) {}

  [[nodiscard]] bool contains(NodeId v) const { return in_[v]; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t edge_boundary() const { return cap_; }
  [[nodiscard]] std::size_t node_boundary() const { return ne_; }

  void add(NodeId v) {
    BFLY_ASSERT(!in_[v]);
    if (nbr_cnt_[v] > 0) --ne_;
    std::size_t to_s = 0;
    for (const NodeId u : g_->neighbors(v)) {
      if (in_[u]) {
        ++to_s;
      } else if (nbr_cnt_[u] == 0) {
        ++ne_;
      }
      ++nbr_cnt_[u];
    }
    cap_ += g_->degree(v) - 2 * to_s;
    in_[v] = 1;
    ++size_;
  }

  void remove(NodeId v) {
    BFLY_ASSERT(in_[v]);
    std::size_t to_s = 0;
    for (const NodeId u : g_->neighbors(v)) {
      --nbr_cnt_[u];
      if (in_[u]) {
        ++to_s;
      } else if (nbr_cnt_[u] == 0) {
        --ne_;
      }
    }
    cap_ -= g_->degree(v) - 2 * to_s;
    in_[v] = 0;
    --size_;
    if (nbr_cnt_[v] > 0) ++ne_;
  }

  /// Edges from v into the set.
  [[nodiscard]] std::uint32_t edges_into(NodeId v) const {
    return nbr_cnt_[v];
  }

  [[nodiscard]] std::vector<NodeId> members() const {
    std::vector<NodeId> out;
    out.reserve(size_);
    for (NodeId v = 0; v < in_.size(); ++v) {
      if (in_[v]) out.push_back(v);
    }
    return out;
  }

 private:
  const Graph* g_;
  std::vector<std::uint8_t> in_;
  std::vector<std::uint32_t> nbr_cnt_;
  std::size_t size_ = 0, cap_ = 0, ne_ = 0;
};

template <bool kNodeObjective>
SetResult search(const Graph& g, std::size_t k,
                 const LocalSearchOptions& opts) {
  const NodeId n = g.num_nodes();
  BFLY_CHECK(k >= 1 && k <= n, "set size out of range");
  Rng rng(opts.seed);

  SetResult best;
  best.objective = std::numeric_limits<std::size_t>::max();

  const auto objective = [](const DynamicSet& s) {
    return kNodeObjective ? s.node_boundary() : s.edge_boundary();
  };

  const std::uint32_t random_restarts = std::max(1u, opts.restarts);
  const std::uint32_t total_runs =
      random_restarts + static_cast<std::uint32_t>(opts.seed_sets.size());
  for (std::uint32_t r = 0; r < total_runs; ++r) {
    DynamicSet set(g);
    if (r >= random_restarts) {
      // Warm start from a caller-provided set.
      const auto& warm = opts.seed_sets[r - random_restarts];
      BFLY_CHECK(warm.size() == k, "seed set size must equal k");
      for (const NodeId v : warm) set.add(v);
    } else {
      set.add(static_cast<NodeId>(rng.below(n)));
      // Greedy growth: add the outside node that minimizes the objective.
      while (set.size() < k) {
        NodeId pick = kInvalidNode;
        std::size_t pick_obj = std::numeric_limits<std::size_t>::max();
        for (NodeId v = 0; v < n; ++v) {
          if (set.contains(v)) continue;
          set.add(v);
          const std::size_t obj = objective(set);
          set.remove(v);
          if (obj < pick_obj) {
            pick_obj = obj;
            pick = v;
          }
        }
        set.add(pick);
      }
    }

    // Swap passes: first-improvement over (u in S, v outside) pairs.
    for (std::uint32_t pass = 0; pass < opts.max_passes; ++pass) {
      bool improved = false;
      const auto mem = set.members();
      for (const NodeId u : mem) {
        const std::size_t before = objective(set);
        set.remove(u);
        NodeId pick = kInvalidNode;
        std::size_t pick_obj = before;
        for (NodeId v = 0; v < n; ++v) {
          if (set.contains(v) || v == u) continue;
          set.add(v);
          const std::size_t obj = objective(set);
          set.remove(v);
          if (obj < pick_obj) {
            pick_obj = obj;
            pick = v;
          }
        }
        if (pick != kInvalidNode) {
          set.add(pick);
          improved = true;
        } else {
          set.add(u);
        }
      }
      if (!improved) break;
    }

    if (objective(set) < best.objective) {
      best.objective = objective(set);
      best.set = set.members();
    }
  }
  return best;
}

}  // namespace

SetResult min_ee_set_local_search(const Graph& g, std::size_t k,
                                  const LocalSearchOptions& opts) {
  return search<false>(g, k, opts);
}

SetResult min_ne_set_local_search(const Graph& g, std::size_t k,
                                  const LocalSearchOptions& opts) {
  return search<true>(g, k, opts);
}

}  // namespace bfly::expansion
